//! The incremental admission layer must be **bit-identically** equivalent
//! to the seed clone-and-retest path: for every task set, strategy,
//! processor count and uniprocessor test, `Partition::build` with the
//! test's native `AdmissionState` produces the exact same task→processor
//! map (or the exact same `PartitionError`) as building through the
//! `OneShot` bridge, which re-runs the one-shot test per attempt.
//!
//! Two layers of evidence:
//!
//! * proptests over unconstrained random task sets (implicit and
//!   constrained deadlines), all five tests;
//! * a deterministic generator-shaped corpus (≥ 500 sets across
//!   implicit/constrained workloads × all five tests), matching the
//!   acceptance criterion of the incremental-admission milestone.

use mcsched::analysis::{
    AdmissionState, AmcMax, AmcRtb, Ecdf, EdfVd, Ey, IncrementalTest, OneShot, SchedulabilityTest,
};
use mcsched::core::{presets, Partition};
use mcsched::gen::{DeadlineModel, GridPoint, TaskSetSpec};
use mcsched::model::{Task, TaskSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An arbitrary valid task: period 2..=60, budgets inside it, optional
/// criticality/constrained deadline.
fn arb_task(id: u32) -> impl Strategy<Value = Task> {
    (2u64..=60, any::<bool>()).prop_flat_map(move |(period, is_hi)| {
        (1u64..=period, Just(period), Just(is_hi)).prop_flat_map(move |(c_lo, period, is_hi)| {
            if is_hi {
                (c_lo..=period, Just(period), Just(c_lo))
                    .prop_flat_map(move |(c_hi, period, c_lo)| {
                        (c_hi..=period).prop_map(move |d| {
                            Task::hi_constrained(id, period, c_lo, c_hi, d).expect("valid")
                        })
                    })
                    .boxed()
            } else {
                (c_lo..=period)
                    .prop_map(move |d| Task::lo_constrained(id, period, c_lo, d).expect("valid"))
                    .boxed()
            }
        })
    })
}

/// An arbitrary task set of 1..=8 tasks with distinct ids.
fn arb_taskset() -> impl Strategy<Value = TaskSet> {
    (1usize..=8).prop_flat_map(|n| {
        let tasks: Vec<_> = (0..n as u32).map(arb_task).collect();
        tasks.prop_map(|ts| TaskSet::try_from_tasks(ts).expect("distinct ids"))
    })
}

/// A test, its clone-and-retest reference, and a display name.
type TestPair = (
    Box<dyn SchedulabilityTest>,
    Box<dyn SchedulabilityTest>,
    &'static str,
);

/// The five uniprocessor tests paired with their clone-and-retest
/// reference.
fn test_pairs() -> Vec<TestPair> {
    vec![
        (
            Box::new(EdfVd::new()),
            Box::new(OneShot(EdfVd::new())),
            "EDF-VD",
        ),
        (Box::new(Ey::new()), Box::new(OneShot(Ey::new())), "EY"),
        (
            Box::new(Ecdf::new()),
            Box::new(OneShot(Ecdf::new())),
            "ECDF",
        ),
        (
            Box::new(AmcRtb::new()),
            Box::new(OneShot(AmcRtb::new())),
            "AMC-rtb",
        ),
        (
            Box::new(AmcMax::new()),
            Box::new(OneShot(AmcMax::new())),
            "AMC-max",
        ),
    ]
}

/// Asserts bit-identical builds for one set across strategies, tests and
/// processor counts; returns how many comparisons were made.
fn assert_equivalent(ts: &TaskSet, m_values: &[usize]) -> usize {
    let mut compared = 0;
    for (incremental, one_shot, name) in test_pairs() {
        for strategy in [presets::ca_udp(), presets::cu_udp(), presets::ca_f_f()] {
            for &m in m_values {
                let fast = Partition::build(&strategy, &incremental, ts, m);
                let slow = Partition::build(&strategy, &one_shot, ts, m);
                assert_eq!(
                    fast,
                    slow,
                    "{name}/{} diverged at m={m} on {ts}",
                    strategy.name()
                );
                compared += 1;
            }
        }
    }
    compared
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_build_is_bit_identical(ts in arb_taskset(), m in 1usize..=4) {
        assert_equivalent(&ts, &[m]);
    }

    #[test]
    fn incremental_states_agree_step_by_step(ts in arb_taskset()) {
        // Below the partitioner: drive each native state task by task and
        // compare every single admission verdict with the one-shot test.
        for (incremental, _, name) in test_pairs() {
            let mut state = incremental.admission_state();
            for task in &ts {
                let mut union = state.tasks().clone();
                union.push_unchecked(*task);
                let expected = incremental.is_schedulable(&union);
                prop_assert_eq!(state.try_admit(task), expected, "{} on {}", name, task);
                if expected {
                    state.commit(*task);
                }
            }
            // The cached summary is bit-identical to a recomputation.
            let cached = state.summary();
            let fresh = state.tasks().system_utilization();
            prop_assert_eq!(cached.u_ll.to_bits(), fresh.u_ll.to_bits());
            prop_assert_eq!(cached.u_hl.to_bits(), fresh.u_hl.to_bits());
            prop_assert_eq!(cached.u_hh.to_bits(), fresh.u_hh.to_bits());
        }
    }
}

/// The seeded corpus acceptance criterion: ≥ 500 generator-shaped task
/// sets across implicit and constrained deadlines, every build compared
/// bit-for-bit across all five tests.
#[test]
fn seeded_corpus_equivalence() {
    let workloads = [
        (2usize, DeadlineModel::Implicit, 0.55, 0.30, 0.35, 1u64),
        (2, DeadlineModel::Constrained, 0.70, 0.35, 0.40, 2),
        (4, DeadlineModel::Implicit, 0.80, 0.40, 0.45, 3),
        (4, DeadlineModel::Constrained, 0.60, 0.25, 0.50, 4),
    ];
    let mut generated = 0usize;
    let mut compared = 0usize;
    for (m, deadlines, u_hh, u_hl, u_ll, seed) in workloads {
        let spec = TaskSetSpec::paper_defaults(m, GridPoint { u_hh, u_hl, u_ll }, deadlines);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut made = 0usize;
        let mut guard = 0usize;
        while made < 130 && guard < 2000 {
            guard += 1;
            let Ok(ts) = spec.generate(&mut rng) else {
                continue;
            };
            made += 1;
            compared += assert_equivalent(&ts, &[m]);
        }
        assert_eq!(made, 130, "generator starved at m={m} {deadlines}");
        generated += made;
    }
    assert!(generated >= 500, "corpus too small: {generated}");
    assert!(compared >= 500 * 5, "comparisons too few: {compared}");
}

/// EDF-VD states answer every query in O(1); a full sweep-sized build
/// must therefore never fall back to a full re-analysis.
#[test]
fn edfvd_states_never_run_full_analyses() {
    let spec = TaskSetSpec::paper_defaults(
        4,
        GridPoint {
            u_hh: 0.7,
            u_hl: 0.35,
            u_ll: 0.4,
        },
        DeadlineModel::Implicit,
    );
    let mut rng = StdRng::seed_from_u64(9);
    let ts = loop {
        if let Ok(ts) = spec.generate(&mut rng) {
            break ts;
        }
    };
    let (_, stats) = Partition::build_reporting(&presets::ca_udp(), &EdfVd::new(), &ts, 4);
    assert!(stats.attempts > 0);
    assert_eq!(stats.full, 0);
    assert_eq!(stats.incremental, stats.attempts);
}

/// The typed `IncrementalTest` interface and the object-safe
/// `admission_state` hook hand out equivalent states.
#[test]
fn typed_and_dyn_states_agree() {
    let test = AmcMax::new();
    let mut typed = test.new_state();
    let mut dynamic = (&test as &dyn SchedulabilityTest).admission_state();
    let tasks = [
        Task::hi(0, 10, 2, 4).unwrap(),
        Task::lo(1, 15, 4).unwrap(),
        Task::hi(2, 30, 3, 9).unwrap(),
    ];
    for t in tasks {
        let a = typed.try_admit(&t);
        let b = dynamic.try_admit(&t);
        assert_eq!(a, b);
        if a {
            typed.commit(t);
            dynamic.commit(t);
        }
    }
    assert_eq!(typed.tasks(), dynamic.tasks());
}
