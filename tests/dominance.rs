//! Cross-test dominance and consistency relations on generator-random
//! sets — the orderings the paper's evaluation quietly relies on.

use mcsched::analysis::{AmcMax, AmcRtb, ClassicEdf, Ecdf, EdfVd, Ey, SchedulabilityTest};
use mcsched::gen::{DeadlineModel, GridPoint, TaskSetSpec};
use mcsched::model::TaskSet;
use rand::{rngs::StdRng, SeedableRng};

fn sets(deadlines: DeadlineModel, count: usize, seed: u64) -> Vec<TaskSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = [
        GridPoint {
            u_hh: 0.4,
            u_hl: 0.2,
            u_ll: 0.35,
        },
        GridPoint {
            u_hh: 0.6,
            u_hl: 0.3,
            u_ll: 0.45,
        },
        GridPoint {
            u_hh: 0.7,
            u_hl: 0.45,
            u_ll: 0.35,
        },
        GridPoint {
            u_hh: 0.85,
            u_hl: 0.35,
            u_ll: 0.25,
        },
        GridPoint {
            u_hh: 0.9,
            u_hl: 0.55,
            u_ll: 0.35,
        },
    ];
    let mut out = Vec::new();
    let mut i = 0;
    while out.len() < count && i < count * 20 {
        let spec = TaskSetSpec::paper_defaults(1, points[i % points.len()], deadlines);
        i += 1;
        if let Ok(ts) = spec.generate(&mut rng) {
            out.push(ts);
        }
    }
    out
}

#[test]
fn ecdf_dominates_ey() {
    for deadlines in [DeadlineModel::Implicit, DeadlineModel::Constrained] {
        let mut ey_accepts = 0;
        let mut ecdf_extra = 0;
        for ts in sets(deadlines, 150, 0xD0) {
            let ey = Ey::new().is_schedulable(&ts);
            let ecdf = Ecdf::new().is_schedulable(&ts);
            if ey {
                ey_accepts += 1;
                assert!(ecdf, "ECDF must accept whatever EY accepts: {ts}");
            }
            if ecdf && !ey {
                ecdf_extra += 1;
            }
        }
        assert!(ey_accepts > 10, "{deadlines:?}: coverage {ey_accepts}");
        // Not required pointwise, but over 150 sets the stronger search
        // should win somewhere at least once across both deadline models.
        let _ = ecdf_extra;
    }
}

#[test]
fn ecdf_strictly_beats_ey_somewhere() {
    let mut extra = 0;
    for deadlines in [DeadlineModel::Implicit, DeadlineModel::Constrained] {
        for ts in sets(deadlines, 200, 0xD1) {
            if Ecdf::new().is_schedulable(&ts) && !Ey::new().is_schedulable(&ts) {
                extra += 1;
            }
        }
    }
    assert!(extra > 0, "expected ECDF to accept some EY-rejected set");
}

#[test]
fn amc_max_dominates_rtb() {
    for deadlines in [DeadlineModel::Implicit, DeadlineModel::Constrained] {
        let mut rtb_accepts = 0;
        for ts in sets(deadlines, 150, 0xA0) {
            let rtb = AmcRtb::new().is_schedulable(&ts);
            let max = AmcMax::new().is_schedulable(&ts);
            if rtb {
                rtb_accepts += 1;
                assert!(max, "AMC-max must accept whatever AMC-rtb accepts: {ts}");
            }
        }
        assert!(rtb_accepts > 10, "{deadlines:?}: coverage {rtb_accepts}");
    }
}

#[test]
fn mc_accept_implies_lo_projection_feasible() {
    // Necessary condition: if any MC test accepts, the low-mode projection
    // (every task at C^L, real deadlines) must be plain-EDF feasible.
    let lo_edf = ClassicEdf::lo_mode();
    for ts in sets(DeadlineModel::Implicit, 100, 0x10) {
        for test in [
            &EdfVd::new() as &dyn SchedulabilityTest,
            &Ey::new(),
            &Ecdf::new(),
        ] {
            if test.is_schedulable(&ts) {
                assert!(
                    lo_edf.is_schedulable(&ts),
                    "{} accepted a set whose LO projection is EDF-infeasible: {ts}",
                    test.name()
                );
            }
        }
    }
}

#[test]
fn own_level_reservation_implies_every_mc_test() {
    // Sufficient condition the other way: if reserving C^H everywhere fits
    // under EDF (utilization ≤ 1 implicit), EDF-VD accepts (x = 1 path),
    // and the dbf tests accept too.
    for ts in sets(DeadlineModel::Implicit, 100, 0x20) {
        if ClassicEdf::own_level().is_schedulable(&ts) {
            assert!(
                EdfVd::new().is_schedulable(&ts),
                "EDF-VD rejected a fully-reservable set: {ts}"
            );
            assert!(
                Ecdf::new().is_schedulable(&ts),
                "ECDF rejected a fully-reservable set: {ts}"
            );
        }
    }
}

#[test]
fn partitioned_udp_monotone_in_processors() {
    use mcsched::core::{presets, MultiprocessorTest, PartitionedAlgorithm};
    let algo = PartitionedAlgorithm::new(presets::cu_udp(), EdfVd::new());
    let mut rng = StdRng::seed_from_u64(0x30);
    let mut checked = 0;
    for _ in 0..60 {
        let spec = TaskSetSpec::paper_defaults(
            2,
            GridPoint {
                u_hh: 0.7,
                u_hl: 0.35,
                u_ll: 0.4,
            },
            DeadlineModel::Implicit,
        );
        let Ok(ts) = spec.generate(&mut rng) else {
            continue;
        };
        for m in 1..4 {
            if algo.accepts(&ts, m) {
                checked += 1;
                assert!(
                    algo.accepts(&ts, m + 1),
                    "accepted on {m} but rejected on {} processors: {ts}",
                    m + 1
                );
            }
        }
    }
    assert!(checked > 10);
}

#[test]
fn udp_never_loses_to_nosort_baseline_in_aggregate() {
    // Pointwise UDP can lose on adversarial sets; in aggregate over random
    // sets it must not (this is the paper's Fig. 3 in miniature).
    use mcsched::core::{presets, MultiprocessorTest, PartitionedAlgorithm};
    let udp = PartitionedAlgorithm::new(presets::cu_udp(), EdfVd::new());
    let base = PartitionedAlgorithm::new(presets::ca_nosort_f_f(), EdfVd::new());
    let mut rng = StdRng::seed_from_u64(0x40);
    let (mut udp_wins, mut base_wins) = (0u32, 0u32);
    for _ in 0..200 {
        let spec = TaskSetSpec::paper_defaults(
            2,
            GridPoint {
                u_hh: 0.8,
                u_hl: 0.4,
                u_ll: 0.4,
            },
            DeadlineModel::Implicit,
        );
        let Ok(ts) = spec.generate(&mut rng) else {
            continue;
        };
        match (udp.accepts(&ts, 2), base.accepts(&ts, 2)) {
            (true, false) => udp_wins += 1,
            (false, true) => base_wins += 1,
            _ => {}
        }
    }
    assert!(
        udp_wins >= base_wins,
        "UDP won {udp_wins} vs baseline {base_wins}"
    );
    assert!(udp_wins > 0, "expected UDP to win somewhere in this regime");
}
