//! Workspace smoke test: one small task set driven through the whole
//! facade path — generator → CU-UDP / CA-UDP partitioning with EDF-VD
//! admission → partitioned simulation — exactly as the crate-level
//! quickstart advertises. If this fails, the workspace wiring (not a
//! single algorithm) is broken.

use mcsched::analysis::EdfVd;
use mcsched::core::{presets, verify_partition, PartitionedAlgorithm};
use mcsched::gen::{DeadlineModel, GridPoint, TaskSetSpec};
use mcsched::model::TaskSet;
use mcsched::sim::{PartitionedSimulator, Policy, Scenario};
use rand::{rngs::StdRng, SeedableRng};

const M: usize = 2;

/// A light-load grid point every strategy should handle.
fn small_generated_set() -> TaskSet {
    let point = GridPoint {
        u_hh: 0.3,
        u_hl: 0.15,
        u_ll: 0.2,
    };
    let spec = TaskSetSpec::paper_defaults(M, point, DeadlineModel::Implicit);
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..64 {
        if let Ok(ts) = spec.generate(&mut rng) {
            return ts;
        }
    }
    panic!("generator produced no feasible task set at a light-load point");
}

#[test]
fn generator_to_partition_to_simulation() {
    let ts = small_generated_set();
    assert!(ts.validate().is_ok());

    let mut accepted = 0usize;
    for strategy in [presets::cu_udp(), presets::ca_udp()] {
        let name = strategy.name().to_owned();
        let algo = PartitionedAlgorithm::new(strategy, EdfVd::new());
        let partition = match algo.partition(&ts, M) {
            Ok(p) => p,
            // A light-load set can still be rejected by a sufficient
            // test; that is a valid analysis outcome, not a smoke
            // failure — but both UDP strategies rejecting the same
            // light-load set would be (checked after the loop).
            Err(_) => continue,
        };
        accepted += 1;
        assert_eq!(partition.processor_count(), M);
        assert_eq!(partition.task_count(), ts.len());
        assert!(
            verify_partition(&partition, &EdfVd::new()),
            "{name}: a processor in the committed partition fails its own admission test"
        );

        // Every processor accepted by EDF-VD must survive simulation in
        // both modes: no overruns, and every HC job overrunning at once.
        let sim = PartitionedSimulator::from_partition(&partition, |proc_ts| {
            let x = EdfVd::new()
                .scaling_factor(proc_ts)
                .expect("admitted processor must have a scaling factor");
            Policy::edf_vd_scaled(proc_ts, x)
        });
        for scenario in [Scenario::lo_only(), Scenario::all_hi()] {
            for report in sim.run(&scenario, 2_000) {
                assert!(
                    report.is_success(),
                    "{name}: deadline misses under {scenario:?}: {:?}",
                    report.misses()
                );
            }
        }
    }
    assert!(
        accepted > 0,
        "both CU-UDP and CA-UDP rejected a light-load set — the wiring, not the analysis, is broken"
    );
}
