//! The chaos soak as a tier-1 test: ≥ 8 seeded fault schedules driven
//! through the full protocol state machine behind a faulty transport
//! (torn frames, short writes, read delays, mid-frame disconnects,
//! bounded corruption). Every seed must finish without a panic, and
//! every surviving session must be bit-identical across three views:
//! the live in-memory cluster, the journal-recovered rebuild, and the
//! clone-and-retest oracle replaying the same committed operations.
//!
//! This is the test-harness twin of `mcexp chaos` (the CI job runs the
//! binary and uploads CHAOS.json; this runs the same soak in-process).

use mcsched::exp::chaos::{render_chaos, run_chaos, ChaosConfig};

#[test]
fn eight_seed_soak_survives_and_agrees() {
    let config = ChaosConfig {
        seeds: 8,
        ..ChaosConfig::default()
    };
    let report = run_chaos(&config);
    assert_eq!(report.seeds.len(), 8, "every seed reports");
    assert!(report.passed(), "divergence:\n{}", render_chaos(&report));
    // The soak is only meaningful if the faults actually fired and at
    // least some sessions survived with committed state to compare.
    let faults: u64 = report
        .seeds
        .iter()
        .map(|s| s.disconnects + s.shorts + s.corrupted_bytes + s.delays)
        .sum();
    assert!(faults > 0, "fault plan injected nothing");
    assert!(
        report.seeds.iter().any(|s| s.recovered_tasks > 0),
        "no seed recovered any committed state — nothing was compared"
    );
    assert!(
        report.seeds.iter().any(|s| s.tier == "exact")
            && report.seeds.iter().any(|s| s.tier == "degraded"),
        "both admission tiers must be soaked"
    );
}
