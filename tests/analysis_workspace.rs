//! The workspace-backed analysis hot path must be **exactly** equivalent
//! to the retained seed (allocating) implementations:
//!
//! * the streaming AMC-max candidate walk visits exactly the
//!   sorted-deduplicated candidate set the seed path materialised, and
//!   returns identical response bounds;
//! * every test's `is_schedulable_in` (one reused workspace) agrees with
//!   `is_schedulable` on every set;
//! * both hold across unconstrained proptest sets *and* a deterministic
//!   generator-shaped corpus.

use mcsched::analysis::amc::{amc_rtb_bounds_batched, lo_responses_batched, reference};
use mcsched::analysis::vdtune::reference as vd_reference;
use mcsched::analysis::{AmcMax, AmcRtb, AnalysisWorkspace, Ecdf, EdfVd, Ey, SchedulabilityTest};
use mcsched::gen::{DeadlineModel, GridPoint, TaskSetSpec};
use mcsched::model::{Criticality, Task, TaskSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An arbitrary valid task: period 2..=60, budgets inside it, optional
/// criticality/constrained deadline.
fn arb_task(id: u32) -> impl Strategy<Value = Task> {
    (2u64..=60, any::<bool>()).prop_flat_map(move |(period, is_hi)| {
        (1u64..=period, Just(period), Just(is_hi)).prop_flat_map(move |(c_lo, period, is_hi)| {
            if is_hi {
                (c_lo..=period, Just(period), Just(c_lo))
                    .prop_flat_map(move |(c_hi, period, c_lo)| {
                        (c_hi..=period).prop_map(move |d| {
                            Task::hi_constrained(id, period, c_lo, c_hi, d).expect("valid")
                        })
                    })
                    .boxed()
            } else {
                (c_lo..=period)
                    .prop_map(move |d| Task::lo_constrained(id, period, c_lo, d).expect("valid"))
                    .boxed()
            }
        })
    })
}

/// An arbitrary task set of 1..=10 tasks with distinct ids.
fn arb_taskset() -> impl Strategy<Value = TaskSet> {
    (1usize..=10).prop_flat_map(|n| {
        let tasks: Vec<_> = (0..n as u32).map(arb_task).collect();
        tasks.prop_map(|ts| TaskSet::try_from_tasks(ts).expect("distinct ids"))
    })
}

/// Asserts the batched SoA kernels reproduce the seed responses **bit
/// for bit**: the low-mode vector, the AMC-rtb verdict, and (on an
/// accepting verdict) every HC task's high-mode bound.
fn assert_batched_bounds_equivalent(ts: &TaskSet) {
    let lo = lo_responses_batched(ts);
    assert_eq!(
        lo,
        reference::lo_responses(ts),
        "batched low-mode responses diverged on {ts}"
    );
    let rtb = amc_rtb_bounds_batched(ts);
    assert_eq!(
        rtb.is_some(),
        lo.is_some(),
        "batched rtb ran without a low-mode pass on {ts}"
    );
    let Some((verdict, bounds)) = rtb else {
        return;
    };
    assert_eq!(
        verdict,
        reference::amc_rtb_is_schedulable(ts),
        "batched AMC-rtb verdict diverged on {ts}"
    );
    if !verdict {
        // On a reject the kernel stops at the first infeasible task;
        // bounds past it are undefined by contract.
        return;
    }
    for (i, t) in ts.as_slice().iter().enumerate() {
        let want = match t.criticality() {
            Criticality::High => reference::amc_rtb_response(ts, i).expect("low mode passed"),
            Criticality::Low => None,
        };
        assert_eq!(bounds[i], want, "rtb bound diverged for τ{i} of {ts}");
    }
}

/// Asserts the streaming walk ≡ the seed candidate enumeration for every
/// task of the set, and the workspace verdicts ≡ the plain verdicts for
/// all five tests. Returns the number of per-task comparisons.
fn assert_workspace_equivalent(ts: &TaskSet, ws: &mut AnalysisWorkspace) -> usize {
    let mut compared = 0;
    for i in 0..ts.len() {
        assert_eq!(
            reference::amc_max_candidates_streamed(ts, i),
            reference::amc_max_candidates(ts, i),
            "candidate sets diverged for τ{i} of {ts}"
        );
        assert_eq!(
            reference::amc_max_bound_streamed(ts, i),
            reference::amc_max_bound(ts, i),
            "response bounds diverged for τ{i} of {ts}"
        );
        compared += 1;
    }
    let tests: Vec<Box<dyn SchedulabilityTest>> = vec![
        Box::new(EdfVd::new()),
        Box::new(Ey::new()),
        Box::new(Ecdf::new()),
        Box::new(AmcRtb::new()),
        Box::new(AmcRtb::with_audsley()),
        Box::new(AmcMax::new()),
    ];
    for test in &tests {
        assert_eq!(
            test.is_schedulable_in(ts, ws),
            test.is_schedulable(ts),
            "{} workspace verdict diverged on {ts}",
            test.name()
        );
    }
    assert_eq!(
        AmcMax::new().is_schedulable(ts),
        reference::amc_max_is_schedulable(ts),
        "AMC-max verdict diverged from the seed implementation on {ts}"
    );
    assert_eq!(
        AmcRtb::new().is_schedulable(ts),
        reference::amc_rtb_is_schedulable(ts),
        "AMC-rtb verdict diverged from the seed implementation on {ts}"
    );
    assert_eq!(
        Ey::new().is_schedulable(ts),
        vd_reference::ey_is_schedulable(ts),
        "EY verdict diverged from the seed tuner on {ts}"
    );
    assert_eq!(
        Ecdf::new().is_schedulable(ts),
        vd_reference::ecdf_is_schedulable(ts),
        "ECDF verdict diverged from the seed tuner on {ts}"
    );
    assert_batched_bounds_equivalent(ts);
    compared
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn streaming_walk_is_bit_identical(ts in arb_taskset()) {
        let mut ws = AnalysisWorkspace::new();
        assert_workspace_equivalent(&ts, &mut ws);
    }

    /// Mutation sessions over the delta-maintained SoA view: interleaved
    /// admits (committing on success) and removals, with every single
    /// admission verdict compared against the one-shot test on the
    /// materialised union. Removals force the lane view through its
    /// `insert`/`remove` shifts and the fast-kernel certificate through
    /// its add/subtract reversal, so any drift between the mirror and the
    /// committed set shows up as a verdict divergence.
    #[test]
    fn admission_mutation_sessions_stay_equivalent(
        ts in arb_taskset(),
        ops in proptest::collection::vec(any::<u32>(), 1..=24),
    ) {
        let tests: Vec<Box<dyn SchedulabilityTest>> =
            vec![Box::new(AmcRtb::new()), Box::new(AmcMax::new())];
        for test in &tests {
            let mut state = test.admission_state();
            let mut pending: Vec<Task> = ts.iter().copied().collect();
            for &op in &ops {
                let admit = op & 1 == 0 || state.tasks().is_empty();
                if admit {
                    let Some(task) = pending.pop() else { break };
                    let mut union = state.tasks().clone();
                    union.push_unchecked(task);
                    let expected = test.is_schedulable(&union);
                    prop_assert_eq!(
                        state.try_admit(&task),
                        expected,
                        "{} probe diverged on {}",
                        test.name(),
                        &union
                    );
                    if expected {
                        state.commit(task);
                    } else {
                        pending.insert(0, task);
                    }
                } else {
                    let committed = state.tasks().clone();
                    let k = (op >> 1) as usize % committed.len();
                    let victim = committed.as_slice()[k];
                    prop_assert!(state.remove(victim.id()));
                    pending.push(victim);
                }
            }
            // The surviving committed set still judges like a fresh set.
            prop_assert_eq!(
                state.tasks().is_empty() || test.is_schedulable(state.tasks()),
                true,
                "{} left an unschedulable committed set",
                test.name()
            );
        }
    }
}

/// The deterministic generator-shaped corpus: every set of every workload
/// compared through one long-lived workspace (buffer reuse across wildly
/// different sets must never leak into a verdict).
#[test]
fn seeded_corpus_streaming_equivalence() {
    let workloads = [
        (2usize, DeadlineModel::Implicit, 0.55, 0.30, 0.35, 21u64),
        (2, DeadlineModel::Constrained, 0.70, 0.35, 0.40, 22),
        (4, DeadlineModel::Implicit, 0.80, 0.40, 0.45, 23),
        (8, DeadlineModel::Constrained, 0.60, 0.25, 0.50, 24),
    ];
    let mut ws = AnalysisWorkspace::new();
    let mut generated = 0usize;
    let mut compared = 0usize;
    for (m, deadlines, u_hh, u_hl, u_ll, seed) in workloads {
        let spec = TaskSetSpec::paper_defaults(m, GridPoint { u_hh, u_hl, u_ll }, deadlines);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut made = 0usize;
        let mut guard = 0usize;
        while made < 40 && guard < 1000 {
            guard += 1;
            let Ok(ts) = spec.generate(&mut rng) else {
                continue;
            };
            made += 1;
            compared += assert_workspace_equivalent(&ts, &mut ws);
        }
        assert_eq!(made, 40, "generator starved at m={m} {deadlines}");
        generated += made;
    }
    assert!(generated >= 160, "corpus too small: {generated}");
    assert!(compared >= 160, "comparisons too few: {compared}");
}

/// Values past the fast-kernel certificate (wcets and periods at the
/// 2^62–2^63 scale) must take the guarded batched kernels and still
/// reproduce the seed bounds bit-identically — saturation in the guarded
/// path and the seed's overflow-checked fixpoint reject identically.
#[test]
fn guarded_kernel_bounds_match_reference() {
    let big = 1u64 << 62;
    let sets = [
        // Feasible at the huge scale: one heavy HC task under a light one.
        TaskSet::try_from_tasks(vec![
            Task::hi_constrained(0, big, 1, big / 4, big / 2).unwrap(),
            Task::hi_constrained(1, big + 7, big / 8, big / 2, big).unwrap(),
            Task::lo_constrained(2, big, big / 16, big / 2).unwrap(),
        ])
        .unwrap(),
        // Interference sums that saturate: both paths must reject.
        TaskSet::try_from_tasks(vec![
            Task::hi_constrained(0, 3, 1, 1, 2).unwrap(),
            Task::hi_constrained(1, big + 1, big - 1, big - 1, big).unwrap(),
            Task::hi_constrained(2, big + 2, big - 2, big - 1, big).unwrap(),
        ])
        .unwrap(),
        // A single huge-period task alongside small certified ones: the
        // mixed set leaves the certificate, not just its big member.
        TaskSet::try_from_tasks(vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::lo(1, 20, 5).unwrap(),
            Task::hi_constrained(2, big, 100, 200, big / 2).unwrap(),
        ])
        .unwrap(),
    ];
    let mut ws = AnalysisWorkspace::new();
    for ts in &sets {
        assert_batched_bounds_equivalent(ts);
        for test in [AmcRtb::new(), AmcRtb::with_audsley()] {
            assert_eq!(
                test.is_schedulable_in(ts, &mut ws),
                test.is_schedulable(ts),
                "{} workspace verdict diverged on {ts}",
                test.name()
            );
        }
        assert_eq!(
            AmcMax::new().is_schedulable_in(ts, &mut ws),
            reference::amc_max_is_schedulable(ts),
            "AMC-max verdict diverged from the seed implementation on {ts}"
        );
    }
}

/// The overflow regression at workspace-integration level: a candidate
/// step sequence that would overflow `u64` (the seed loop's `t += period`)
/// must end the stream exactly, end to end through the public test.
#[test]
fn near_max_periods_run_end_to_end() {
    let big = 1u64 << 63;
    let ts = TaskSet::try_from_tasks(vec![
        Task::hi_constrained(0, big + 2, 1, 1, big).unwrap(),
        Task::hi_constrained(1, big + 100, big + 10, big + 10, big + 50).unwrap(),
    ])
    .unwrap();
    let mut ws = AnalysisWorkspace::new();
    assert!(AmcMax::new().is_schedulable_in(&ts, &mut ws));
    assert!(AmcMax::new().is_schedulable(&ts));
    // The admission layer sees the same instants.
    let test = AmcMax::new();
    let mut state = test.admission_state();
    for t in &ts {
        assert!(state.try_admit(t));
        state.commit(*t);
    }
}
