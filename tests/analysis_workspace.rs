//! The workspace-backed analysis hot path must be **exactly** equivalent
//! to the retained seed (allocating) implementations:
//!
//! * the streaming AMC-max candidate walk visits exactly the
//!   sorted-deduplicated candidate set the seed path materialised, and
//!   returns identical response bounds;
//! * every test's `is_schedulable_in` (one reused workspace) agrees with
//!   `is_schedulable` on every set;
//! * both hold across unconstrained proptest sets *and* a deterministic
//!   generator-shaped corpus.

use mcsched::analysis::amc::reference;
use mcsched::analysis::vdtune::reference as vd_reference;
use mcsched::analysis::{AmcMax, AmcRtb, AnalysisWorkspace, Ecdf, EdfVd, Ey, SchedulabilityTest};
use mcsched::gen::{DeadlineModel, GridPoint, TaskSetSpec};
use mcsched::model::{Task, TaskSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An arbitrary valid task: period 2..=60, budgets inside it, optional
/// criticality/constrained deadline.
fn arb_task(id: u32) -> impl Strategy<Value = Task> {
    (2u64..=60, any::<bool>()).prop_flat_map(move |(period, is_hi)| {
        (1u64..=period, Just(period), Just(is_hi)).prop_flat_map(move |(c_lo, period, is_hi)| {
            if is_hi {
                (c_lo..=period, Just(period), Just(c_lo))
                    .prop_flat_map(move |(c_hi, period, c_lo)| {
                        (c_hi..=period).prop_map(move |d| {
                            Task::hi_constrained(id, period, c_lo, c_hi, d).expect("valid")
                        })
                    })
                    .boxed()
            } else {
                (c_lo..=period)
                    .prop_map(move |d| Task::lo_constrained(id, period, c_lo, d).expect("valid"))
                    .boxed()
            }
        })
    })
}

/// An arbitrary task set of 1..=10 tasks with distinct ids.
fn arb_taskset() -> impl Strategy<Value = TaskSet> {
    (1usize..=10).prop_flat_map(|n| {
        let tasks: Vec<_> = (0..n as u32).map(arb_task).collect();
        tasks.prop_map(|ts| TaskSet::try_from_tasks(ts).expect("distinct ids"))
    })
}

/// Asserts the streaming walk ≡ the seed candidate enumeration for every
/// task of the set, and the workspace verdicts ≡ the plain verdicts for
/// all five tests. Returns the number of per-task comparisons.
fn assert_workspace_equivalent(ts: &TaskSet, ws: &mut AnalysisWorkspace) -> usize {
    let mut compared = 0;
    for i in 0..ts.len() {
        assert_eq!(
            reference::amc_max_candidates_streamed(ts, i),
            reference::amc_max_candidates(ts, i),
            "candidate sets diverged for τ{i} of {ts}"
        );
        assert_eq!(
            reference::amc_max_bound_streamed(ts, i),
            reference::amc_max_bound(ts, i),
            "response bounds diverged for τ{i} of {ts}"
        );
        compared += 1;
    }
    let tests: Vec<Box<dyn SchedulabilityTest>> = vec![
        Box::new(EdfVd::new()),
        Box::new(Ey::new()),
        Box::new(Ecdf::new()),
        Box::new(AmcRtb::new()),
        Box::new(AmcRtb::with_audsley()),
        Box::new(AmcMax::new()),
    ];
    for test in &tests {
        assert_eq!(
            test.is_schedulable_in(ts, ws),
            test.is_schedulable(ts),
            "{} workspace verdict diverged on {ts}",
            test.name()
        );
    }
    assert_eq!(
        AmcMax::new().is_schedulable(ts),
        reference::amc_max_is_schedulable(ts),
        "AMC-max verdict diverged from the seed implementation on {ts}"
    );
    assert_eq!(
        AmcRtb::new().is_schedulable(ts),
        reference::amc_rtb_is_schedulable(ts),
        "AMC-rtb verdict diverged from the seed implementation on {ts}"
    );
    assert_eq!(
        Ey::new().is_schedulable(ts),
        vd_reference::ey_is_schedulable(ts),
        "EY verdict diverged from the seed tuner on {ts}"
    );
    assert_eq!(
        Ecdf::new().is_schedulable(ts),
        vd_reference::ecdf_is_schedulable(ts),
        "ECDF verdict diverged from the seed tuner on {ts}"
    );
    compared
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn streaming_walk_is_bit_identical(ts in arb_taskset()) {
        let mut ws = AnalysisWorkspace::new();
        assert_workspace_equivalent(&ts, &mut ws);
    }
}

/// The deterministic generator-shaped corpus: every set of every workload
/// compared through one long-lived workspace (buffer reuse across wildly
/// different sets must never leak into a verdict).
#[test]
fn seeded_corpus_streaming_equivalence() {
    let workloads = [
        (2usize, DeadlineModel::Implicit, 0.55, 0.30, 0.35, 21u64),
        (2, DeadlineModel::Constrained, 0.70, 0.35, 0.40, 22),
        (4, DeadlineModel::Implicit, 0.80, 0.40, 0.45, 23),
        (8, DeadlineModel::Constrained, 0.60, 0.25, 0.50, 24),
    ];
    let mut ws = AnalysisWorkspace::new();
    let mut generated = 0usize;
    let mut compared = 0usize;
    for (m, deadlines, u_hh, u_hl, u_ll, seed) in workloads {
        let spec = TaskSetSpec::paper_defaults(m, GridPoint { u_hh, u_hl, u_ll }, deadlines);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut made = 0usize;
        let mut guard = 0usize;
        while made < 40 && guard < 1000 {
            guard += 1;
            let Ok(ts) = spec.generate(&mut rng) else {
                continue;
            };
            made += 1;
            compared += assert_workspace_equivalent(&ts, &mut ws);
        }
        assert_eq!(made, 40, "generator starved at m={m} {deadlines}");
        generated += made;
    }
    assert!(generated >= 160, "corpus too small: {generated}");
    assert!(compared >= 160, "comparisons too few: {compared}");
}

/// The overflow regression at workspace-integration level: a candidate
/// step sequence that would overflow `u64` (the seed loop's `t += period`)
/// must end the stream exactly, end to end through the public test.
#[test]
fn near_max_periods_run_end_to_end() {
    let big = 1u64 << 63;
    let ts = TaskSet::try_from_tasks(vec![
        Task::hi_constrained(0, big + 2, 1, 1, big).unwrap(),
        Task::hi_constrained(1, big + 100, big + 10, big + 10, big + 50).unwrap(),
    ])
    .unwrap();
    let mut ws = AnalysisWorkspace::new();
    assert!(AmcMax::new().is_schedulable_in(&ts, &mut ws));
    assert!(AmcMax::new().is_schedulable(&ts));
    // The admission layer sees the same instants.
    let test = AmcMax::new();
    let mut state = test.admission_state();
    for t in &ts {
        assert!(state.try_admit(t));
        state.commit(*t);
    }
}
