//! Registry round-trips: every line-up name the experiment harness uses
//! parses back to an algorithm with the identical display name,
//! `AlgorithmSpec`s survive a serde round-trip, and registry-built
//! line-ups produce **bit-identical** sweep results to directly
//! constructed algorithms over a seeded corpus.

use mcsched::analysis::{AmcMax, Ecdf, EdfVd, Ey};
use mcsched::exp::algorithms::{
    ablation_specs, AMC_ABLATION_NAMES, FIG3_NAMES, FIG4_NAMES, FIG6B_NAMES, PERF_NAMES,
};
use mcsched::exp::sweep::{acceptance_sweep, SweepConfig};
use mcsched::gen::DeadlineModel;
use mcsched::prelude::*;

fn every_lineup_name() -> Vec<&'static str> {
    let mut names: Vec<&str> = Vec::new();
    names.extend(FIG3_NAMES);
    names.extend(FIG4_NAMES);
    names.extend(FIG6B_NAMES);
    names.extend(PERF_NAMES);
    names.extend(AMC_ABLATION_NAMES);
    names.sort_unstable();
    names.dedup();
    names
}

#[test]
fn every_lineup_name_round_trips_through_the_registry() {
    let registry = AlgorithmRegistry::standard();
    for name in every_lineup_name() {
        let algo = registry
            .parse(name)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(algo.name(), name, "display name must round-trip");
        // The parsed spec round-trips to the same display name too.
        let spec = registry.spec(name).unwrap();
        assert_eq!(spec.name(), name);
        assert_eq!(spec.build().name(), name);
    }
}

#[test]
fn ablation_specs_round_trip_through_serde() {
    // The ablation line-up mixes registry presets with custom inline
    // strategies — all must survive JSON serialization and manual
    // reconstruction bit-for-bit (PartialEq on the spec).
    for spec in ablation_specs() {
        let json = serde_json::to_string(&spec).unwrap();
        let value = serde_json::parse_value(&json).unwrap();
        let back = AlgorithmSpec::from_value(&value)
            .unwrap_or_else(|e| panic!("{}: {e}\n{json}", spec.name()));
        assert_eq!(back, spec, "{json}");
        assert_eq!(back.build().name(), spec.name());
    }
}

#[test]
fn registry_lineup_sweeps_bit_identical_to_direct_constructors() {
    // The exact algorithms `fig3_lineup`/`fig4_lineup` used to hard-code,
    // constructed directly...
    let direct: Vec<AlgoBox> = vec![
        Box::new(PartitionedAlgorithm::new(presets::ca_udp(), EdfVd::new())),
        Box::new(PartitionedAlgorithm::new(presets::cu_udp(), EdfVd::new())),
        Box::new(PartitionedAlgorithm::new(
            presets::ca_nosort_f_f(),
            EdfVd::new(),
        )),
        Box::new(PartitionedAlgorithm::new(presets::cu_udp(), Ecdf::new())),
        Box::new(
            PartitionedAlgorithm::new(presets::cu_udp(), AmcMax::new()).with_name("CU-UDP-AMC"),
        ),
        Box::new(PartitionedAlgorithm::new(presets::eca_wu_f(), Ey::new())),
        Box::new(PartitionedAlgorithm::new(presets::ca_f_f(), Ey::new())),
    ];
    // ... and the same line-up resolved through the registry.
    let registry = AlgorithmRegistry::standard();
    let named: Vec<AlgoBox> = registry
        .resolve(&[
            "CA-UDP-EDF-VD",
            "CU-UDP-EDF-VD",
            "CA(nosort)-F-F-EDF-VD",
            "CU-UDP-ECDF",
            "CU-UDP-AMC",
            "ECA-Wu-F-EY",
            "CA-F-F-EY",
        ])
        .unwrap();

    let mut config = SweepConfig::paper(2, DeadlineModel::Implicit, 10, 0xD17E);
    config.threads = 2;
    config.min_bucket_percent = 40;
    let a = acceptance_sweep(&config, &direct);
    let b = acceptance_sweep(&config, &named);
    assert_eq!(a, b, "registry-built line-up must be bit-identical");
}

#[test]
fn spec_round_trip_preserves_verdicts() {
    // A spec reconstructed from JSON decides exactly like the original.
    let registry = AlgorithmRegistry::standard();
    let spec = registry.spec("CU-UDP-AMC").unwrap();
    let json = serde_json::to_string(&spec).unwrap();
    let back = AlgorithmSpec::from_value(&serde_json::parse_value(&json).unwrap()).unwrap();
    let (a, b) = (spec.build(), back.build());
    let ts = TaskSet::try_from_tasks(vec![
        Task::hi(0, 10, 2, 5).unwrap(),
        Task::hi(1, 20, 4, 9).unwrap(),
        Task::lo(2, 10, 4).unwrap(),
    ])
    .unwrap();
    for m in 1..=3 {
        assert_eq!(a.try_partition(&ts, m), b.try_partition(&ts, m), "m={m}");
    }
}
