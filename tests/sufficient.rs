//! Accept-soundness of the degraded (sufficient) admission tier: a
//! fast-accept must imply the exact test accepts the same committed
//! union — the property that makes it safe for a degraded worker to
//! *commit* fast-accepted tasks into a session an exact worker may
//! later continue.
//!
//! Checked per rule against every exact test it fronts, over both
//! deadline models, at the state level (one processor, admit/remove
//! streams) and at the cluster level (`open_degraded_session`).

use mcsched::analysis::{
    AdmissionState, AmcMax, AmcRtb, Ecdf, EdfVd, Ey, FastRule, FastState, SchedulabilityTest,
};
use mcsched::core::AlgorithmRegistry;
use mcsched::gen::{DeadlineModel, GridPoint, TaskSetSpec};
use mcsched::model::{TaskId, TaskSet};
use rand::{rngs::StdRng, RngExt, SeedableRng};

fn sets(deadlines: DeadlineModel, count: usize, seed: u64) -> Vec<TaskSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = [
        GridPoint {
            u_hh: 0.3,
            u_hl: 0.15,
            u_ll: 0.25,
        },
        GridPoint {
            u_hh: 0.4,
            u_hl: 0.2,
            u_ll: 0.35,
        },
        GridPoint {
            u_hh: 0.6,
            u_hl: 0.3,
            u_ll: 0.45,
        },
        GridPoint {
            u_hh: 0.7,
            u_hl: 0.45,
            u_ll: 0.35,
        },
        GridPoint {
            u_hh: 0.85,
            u_hl: 0.35,
            u_ll: 0.25,
        },
    ];
    let mut out = Vec::new();
    let mut i = 0;
    while out.len() < count && i < count * 20 {
        let spec = TaskSetSpec::paper_defaults(1, points[i % points.len()], deadlines);
        i += 1;
        if let Ok(ts) = spec.generate(&mut rng) {
            out.push(ts);
        }
    }
    out
}

/// The exact tests each rule must be sound for (the mapping
/// `AlgorithmSpec::fast_rule` commits to).
fn exact_tests(rule: FastRule) -> Vec<(&'static str, Box<dyn SchedulabilityTest>)> {
    match rule {
        FastRule::EdfVdClosedForm => vec![("EDF-VD", Box::new(EdfVd::new()))],
        // Both demand tests are fronted by the LC-only rule: their
        // greedy searches reject HC-bearing sets well under any density
        // bound (see the pinned counterexamples below).
        FastRule::LcOnlyDensity => {
            vec![("EY", Box::new(Ey::new())), ("ECDF", Box::new(Ecdf::new()))]
        }
        FastRule::LiuLaylandOwnDensity => vec![
            ("AMC-rtb", Box::new(AmcRtb::new())),
            ("AMC-max", Box::new(AmcMax::new())),
        ],
    }
}

/// Streams every generated set through a fresh `FastState`, committing
/// fast-accepts and asserting each paired exact test accepts the
/// committed union after every commit. Interleaves removals so the
/// recomputed running sums are exercised too.
fn assert_rule_sound(rule: FastRule, seed: u64) {
    let tests = exact_tests(rule);
    let mut accepts = 0usize;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    for deadlines in [DeadlineModel::Implicit, DeadlineModel::Constrained] {
        for ts in sets(deadlines, 120, seed) {
            let mut fast = FastState::new(rule);
            let mut committed = TaskSet::new();
            for task in ts.iter() {
                if fast.try_admit(task) {
                    fast.commit(*task);
                    committed.push_unchecked(*task);
                    accepts += 1;
                    for (name, exact) in &tests {
                        assert!(
                            exact.is_schedulable(&committed),
                            "{rule:?} fast-accept not honored by {name} \
                             ({deadlines:?}) on {committed}"
                        );
                    }
                }
                // Occasionally evict the oldest committed task: the
                // post-remove recomputed sums must stay sound too.
                if committed.len() > 2 && rng.random_range(0..4) == 0 {
                    let victim = committed
                        .iter()
                        .next()
                        .map(mcsched::model::Task::id)
                        .unwrap_or(TaskId(0));
                    assert!(fast.remove(victim));
                    assert!(committed.remove(victim).is_some());
                }
            }
        }
    }
    assert!(
        accepts >= 50,
        "{rule:?}: only {accepts} fast-accepts — no coverage"
    );
}

#[test]
fn edfvd_closed_form_rule_is_sound() {
    assert_rule_sound(FastRule::EdfVdClosedForm, 0xFA57);
}

#[test]
fn lc_only_density_rule_is_sound_for_both_demand_tests() {
    assert_rule_sound(FastRule::LcOnlyDensity, 0xFA5A);
}

/// The counterexample that forced EY off the own-density rule: three HC
/// tasks with own-level density ≈ 0.87, rejected by EY's single-start
/// greedy yet accepted by ECDF's multi-start. Pins both directions —
/// own-density must never front EY, and ECDF's pin still holds here.
#[test]
fn ey_rejects_an_own_density_set_that_ecdf_accepts() {
    use mcsched::model::Task;
    let ts = TaskSet::try_from_tasks(vec![
        Task::hi(0, 84, 14, 45).expect("valid HC task"),
        Task::hi(1, 72, 8, 15).expect("valid HC task"),
        Task::hi(2, 173, 14, 22).expect("valid HC task"),
    ])
    .expect("valid set");
    let density: f64 = ts
        .iter()
        .map(|t| t.wcet_own().as_f64() / t.deadline().min(t.period()).as_f64())
        .sum();
    assert!(density < 1.0, "the set sits under the own-density bound");
    assert!(!Ey::new().is_schedulable(&ts), "EY's greedy rejects it");
    assert!(Ecdf::new().is_schedulable(&ts), "ECDF's search accepts it");
}

#[test]
fn liu_layland_rule_is_sound_for_amc_tests() {
    assert_rule_sound(FastRule::LiuLaylandOwnDensity, 0xFA59);
}

/// Cluster-level soundness: everything a degraded session commits on
/// any processor passes the exact one-shot test for that algorithm.
#[test]
fn degraded_sessions_commit_only_exactly_valid_sets() {
    let registry = AlgorithmRegistry::standard();
    for (name, exact) in [
        ("CU-UDP-EDF-VD", &EdfVd::new() as &dyn SchedulabilityTest),
        ("CU-UDP-EY", &Ey::new()),
        ("CU-UDP-ECDF", &Ecdf::new()),
        ("CA-UDP-AMC-rtb", &AmcRtb::new()),
        ("CA-UDP-AMC-max", &AmcMax::new()),
    ] {
        let mut admitted = 0usize;
        for (i, ts) in sets(DeadlineModel::Constrained, 25, 0xC1A0)
            .iter()
            .enumerate()
        {
            let m = 2 + i % 2;
            let mut session = registry
                .open_degraded_session(name, m)
                .expect("known algorithm");
            for task in ts.iter() {
                if session.admit(*task).is_ok() {
                    admitted += 1;
                }
            }
            for k in 0..m {
                let committed = session.processor(k).expect("processor in range");
                if !committed.is_empty() {
                    assert!(
                        exact.is_schedulable(committed),
                        "{name}: degraded commit on processor {k} fails the \
                         exact test: {committed}"
                    );
                }
            }
        }
        assert!(
            admitted >= 25,
            "{name}: only {admitted} admits — no coverage"
        );
    }
}
