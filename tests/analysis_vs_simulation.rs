//! The soundness loop: every "accept" from a schedulability test must
//! survive adversarial execution in the discrete-event simulator.
//!
//! This is the empirical justification for the reconstructed analyses
//! (DESIGN.md §3): the EDF-VD utilization test, the EY/ECDF dbf tests and
//! the AMC response-time analyses are exercised on generator-random
//! uniprocessor task sets; whenever one accepts, the corresponding runtime
//! policy is executed under the full scenario battery (nominal, sustained
//! overrun, randomized overruns, sporadic arrivals) and must not miss a
//! required deadline.

use mcsched::analysis::{AmcMax, AmcRtb, Ecdf, EdfVd, Ey, SchedulabilityTest};
use mcsched::gen::{DeadlineModel, GridPoint, TaskSetSpec};
use mcsched::model::TaskSet;
use mcsched::sim::validate;
use rand::{rngs::StdRng, SeedableRng};

/// Random uniprocessor-sized task sets spanning the interesting
/// utilization range.
fn random_sets(deadlines: DeadlineModel, count: usize, seed: u64) -> Vec<TaskSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sets = Vec::new();
    let points = [
        GridPoint {
            u_hh: 0.3,
            u_hl: 0.15,
            u_ll: 0.3,
        },
        GridPoint {
            u_hh: 0.5,
            u_hl: 0.25,
            u_ll: 0.4,
        },
        GridPoint {
            u_hh: 0.7,
            u_hl: 0.35,
            u_ll: 0.25,
        },
        GridPoint {
            u_hh: 0.8,
            u_hl: 0.45,
            u_ll: 0.35,
        },
        GridPoint {
            u_hh: 0.6,
            u_hl: 0.55,
            u_ll: 0.35,
        },
        GridPoint {
            u_hh: 0.9,
            u_hl: 0.25,
            u_ll: 0.15,
        },
    ];
    let mut i = 0;
    while sets.len() < count {
        let point = points[i % points.len()];
        i += 1;
        // m = 1: single-processor sets, 2..5 tasks.
        let spec = TaskSetSpec::paper_defaults(1, point, deadlines);
        if let Ok(ts) = spec.generate(&mut rng) {
            sets.push(ts);
        }
        if i > count * 20 {
            break; // never loop forever on infeasible corners
        }
    }
    sets
}

#[test]
fn edfvd_acceptances_hold_at_runtime() {
    let mut accepted = 0;
    for (k, ts) in random_sets(DeadlineModel::Implicit, 120, 0xED0)
        .iter()
        .enumerate()
    {
        if EdfVd::new().is_schedulable(ts) {
            accepted += 1;
            validate::validate_edfvd_acceptance(ts, k as u64)
                .unwrap_or_else(|ce| panic!("EDF-VD unsound on {ts}: {ce}"));
        }
    }
    assert!(accepted >= 20, "want meaningful coverage, got {accepted}");
}

#[test]
fn ey_acceptances_hold_at_runtime() {
    let mut accepted = 0;
    for (k, ts) in random_sets(DeadlineModel::Implicit, 60, 0xE1)
        .iter()
        .enumerate()
    {
        if let Some(assignment) = Ey::new().tune(ts) {
            accepted += 1;
            validate::validate_vd_assignment(ts, &assignment, k as u64)
                .unwrap_or_else(|ce| panic!("EY unsound on {ts}: {ce}"));
        }
    }
    assert!(accepted >= 10, "want meaningful coverage, got {accepted}");
}

#[test]
fn ecdf_acceptances_hold_at_runtime_constrained() {
    let mut accepted = 0;
    for (k, ts) in random_sets(DeadlineModel::Constrained, 60, 0xEC)
        .iter()
        .enumerate()
    {
        if let Some(assignment) = Ecdf::new().tune(ts) {
            accepted += 1;
            validate::validate_vd_assignment(ts, &assignment, k as u64)
                .unwrap_or_else(|ce| panic!("ECDF unsound on {ts}: {ce}"));
        }
    }
    assert!(accepted >= 10, "want meaningful coverage, got {accepted}");
}

#[test]
fn amc_acceptances_hold_at_runtime() {
    for deadlines in [DeadlineModel::Implicit, DeadlineModel::Constrained] {
        let mut accepted = 0;
        for (k, ts) in random_sets(deadlines, 60, 0xA3C).iter().enumerate() {
            if AmcMax::new().is_schedulable(ts) {
                accepted += 1;
                validate::validate_amc_acceptance(ts, k as u64)
                    .unwrap_or_else(|ce| panic!("AMC-max unsound on {ts}: {ce}"));
            }
        }
        assert!(accepted >= 8, "{deadlines:?}: got {accepted}");
    }
}

#[test]
fn amc_rtb_acceptances_hold_at_runtime() {
    let mut accepted = 0;
    for (k, ts) in random_sets(DeadlineModel::Constrained, 40, 0xB)
        .iter()
        .enumerate()
    {
        if AmcRtb::new().is_schedulable(ts) {
            accepted += 1;
            validate::validate_amc_acceptance(ts, k as u64)
                .unwrap_or_else(|ce| panic!("AMC-rtb unsound on {ts}: {ce}"));
        }
    }
    assert!(accepted >= 5, "got {accepted}");
}

#[test]
fn partitioned_acceptances_hold_at_runtime() {
    use mcsched::core::{presets, PartitionedAlgorithm};
    use mcsched::sim::Policy;
    let mut rng = StdRng::seed_from_u64(0xFACE);
    let mut validated = 0;
    for _ in 0..40 {
        let spec = TaskSetSpec::paper_defaults(
            2,
            GridPoint {
                u_hh: 0.6,
                u_hl: 0.3,
                u_ll: 0.35,
            },
            DeadlineModel::Implicit,
        );
        let Ok(ts) = spec.generate(&mut rng) else {
            continue;
        };
        let algo = PartitionedAlgorithm::new(presets::cu_udp(), EdfVd::new());
        let Ok(partition) = algo.partition(&ts, 2) else {
            continue;
        };
        validated += 1;
        let procs: Vec<TaskSet> = partition.iter().cloned().collect();
        validate::validate_partition(
            &procs,
            |p| {
                let x = EdfVd::new().scaling_factor(p).expect("admitted per-proc");
                Policy::edf_vd_scaled(p, x)
            },
            7,
        )
        .unwrap_or_else(|(k, ce)| panic!("partition unsound on φ{k}: {ce}"));
    }
    assert!(validated >= 15, "got {validated}");
}
