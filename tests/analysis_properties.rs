//! Property-based tests (proptest) on the schedulability analyses: demand
//! bounds, response times and acceptance regions.

use mcsched::analysis::dbf::{self, VdTask};
use mcsched::analysis::{AmcMax, Ecdf, EdfVd, Ey, LoRta, SchedulabilityTest};
use mcsched::model::{Task, TaskSet, Time};
use proptest::prelude::*;

fn arb_hc_task(id: u32) -> impl Strategy<Value = Task> {
    (2u64..=50).prop_flat_map(move |period| {
        (1u64..=period).prop_flat_map(move |c_lo| {
            (c_lo..=period).prop_map(move |c_hi| Task::hi(id, period, c_lo, c_hi).expect("valid"))
        })
    })
}

fn arb_vd_task(id: u32) -> impl Strategy<Value = VdTask> {
    arb_hc_task(id).prop_flat_map(|task| {
        (task.wcet_lo().as_ticks()..=task.deadline().as_ticks()).prop_map(move |v| VdTask {
            task,
            vd: Time::new(v),
        })
    })
}

fn arb_mixed_set() -> impl Strategy<Value = TaskSet> {
    (1usize..=6).prop_flat_map(|n| {
        let tasks: Vec<_> = (0..n as u32)
            .map(|i| {
                (2u64..=40, any::<bool>())
                    .prop_flat_map(move |(period, hi)| {
                        (1u64..=period, Just(period), Just(hi)).prop_flat_map(
                            move |(c_lo, period, hi)| {
                                let upper = if hi { period } else { c_lo };
                                (c_lo..=upper).prop_map(move |c_hi| {
                                    if hi {
                                        Task::hi(i, period, c_lo, c_hi).expect("valid")
                                    } else {
                                        Task::lo(i, period, c_lo).expect("valid")
                                    }
                                })
                            },
                        )
                    })
                    .boxed()
            })
            .collect();
        tasks.prop_map(|ts| TaskSet::try_from_tasks(ts).expect("distinct ids"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn dbf_lo_is_nondecreasing_and_superadditive_on_periods(vt in arb_vd_task(0)) {
        let mut prev = Time::ZERO;
        for t in 0..200u64 {
            let d = dbf::dbf_lo(&vt, Time::new(t));
            prop_assert!(d >= prev);
            prev = d;
        }
        // One full period later there is exactly one more job's demand.
        let t0 = vt.vd;
        let a = dbf::dbf_lo(&vt, t0);
        let b = dbf::dbf_lo(&vt, t0 + vt.task.period());
        prop_assert_eq!(b, a + vt.task.wcet_lo());
    }

    #[test]
    fn dbf_hi_is_nondecreasing(vt in arb_vd_task(0)) {
        let mut prev = Time::ZERO;
        for t in 0..200u64 {
            let d = dbf::dbf_hi(&vt, Time::new(t));
            prop_assert!(d >= prev, "decrease at t={t}");
            prev = d;
        }
    }

    #[test]
    fn dbf_hi_bounded_by_job_count_times_ch(vt in arb_vd_task(0)) {
        for t in 0..200u64 {
            let t = Time::new(t);
            let d = dbf::dbf_hi(&vt, t);
            let di = vt.dist();
            if t >= di {
                let k = (t - di).div_floor(vt.task.period()) + 1;
                prop_assert!(d <= vt.task.wcet_hi() * k);
                // And at least (k−1)·C^H + (C^H − C^L): the carry-over can
                // discount at most C^L.
                let lower = vt.task.wcet_hi() * k - vt.task.wcet_lo();
                prop_assert!(d >= lower);
            } else {
                prop_assert_eq!(d, Time::ZERO);
            }
        }
    }

    #[test]
    fn tightening_never_increases_first_period_hi_demand(task in arb_hc_task(0)) {
        // Within the first job window (t ≤ T, where exactly one job's real
        // deadline can fall), tightening the virtual deadline only grows
        // the carry-over job's guaranteed progress, so demand cannot rise.
        let lo = task.wcet_lo().as_ticks();
        let d = task.deadline().as_ticks();
        for v_tight in lo..=d {
            let loose = VdTask { task, vd: Time::new(d) };
            let tight = VdTask { task, vd: Time::new(v_tight) };
            for t in 0..=task.period().as_ticks() {
                let t = Time::new(t);
                prop_assert!(
                    dbf::dbf_hi(&tight, t) <= dbf::dbf_hi(&loose, t),
                    "tightening to V={v_tight} raised demand at t={t}"
                );
            }
        }
    }

    #[test]
    fn qpa_matches_brute_force_lo(tasks in proptest::collection::vec(arb_vd_task(0), 1..4)) {
        // Re-id tasks to keep them distinct.
        let tasks: Vec<VdTask> = tasks.into_iter().enumerate().map(|(i, mut vt)| {
            let t = vt.task;
            vt.task = Task::hi(i as u32, t.period().as_ticks(), t.wcet_lo().as_ticks(),
                               t.wcet_hi().as_ticks()).expect("valid");
            vt
        }).collect();
        let qpa = dbf::check_lo_mode(&tasks);
        let brute = dbf::DemandCurve::lo_mode(&tasks, 400).first_violation();
        match (qpa, brute) {
            (dbf::DemandCheck::Ok, None) => {},
            (dbf::DemandCheck::Violation(_), Some(_)) => {},
            (dbf::DemandCheck::Ok, Some(v)) =>
                prop_assert!(false, "QPA said Ok but brute force found violation at {v}"),
            (dbf::DemandCheck::Violation(v), None) => {
                // The violation may lie beyond the brute-force horizon.
                prop_assert!(v > Time::new(400), "QPA violation {v} missed by brute force");
            }
            (dbf::DemandCheck::Unbounded, _) => {}, // conservative; allowed
        }
    }

    #[test]
    fn qpa_matches_brute_force_hi(tasks in proptest::collection::vec(arb_vd_task(0), 1..4)) {
        let tasks: Vec<VdTask> = tasks.into_iter().enumerate().map(|(i, mut vt)| {
            let t = vt.task;
            vt.task = Task::hi(i as u32, t.period().as_ticks(), t.wcet_lo().as_ticks(),
                               t.wcet_hi().as_ticks()).expect("valid");
            vt
        }).collect();
        let qpa = dbf::check_hi_mode(&tasks);
        let brute = dbf::DemandCurve::hi_mode(&tasks, 400).first_violation();
        match (qpa, brute) {
            (dbf::DemandCheck::Ok, None) => {},
            (dbf::DemandCheck::Violation(_), Some(_)) => {},
            (dbf::DemandCheck::Ok, Some(v)) =>
                prop_assert!(false, "QPA said Ok but brute force violates at {v}"),
            (dbf::DemandCheck::Violation(v), None) =>
                prop_assert!(v > Time::new(400)),
            (dbf::DemandCheck::Unbounded, _) => {},
        }
    }

    #[test]
    fn lo_rta_bounds_are_real_response_times(ts in arb_mixed_set()) {
        // Response times are at least the task's own budget and at most its
        // deadline when accepted.
        if let Some(resp) = LoRta::compute(&ts) {
            for (i, t) in ts.iter().enumerate() {
                prop_assert!(resp[i] >= t.wcet_lo());
                prop_assert!(resp[i] <= t.deadline());
            }
        }
    }

    #[test]
    fn edfvd_scaling_factor_in_range(ts in arb_mixed_set()) {
        if let Some(x) = EdfVd::new().scaling_factor(&ts) {
            prop_assert!(x > 0.0 && x <= 1.0, "x = {x}");
            // The returned virtual deadlines respect budget and deadline.
            for (vd, t) in EdfVd::new().virtual_deadlines(&ts, x).iter().zip(ts.iter()) {
                prop_assert!(*vd >= t.wcet_lo());
                prop_assert!(*vd <= t.deadline());
            }
        }
    }

    #[test]
    fn tuner_outputs_are_always_valid(ts in arb_mixed_set()) {
        for assignment in [Ey::new().tune(&ts), Ecdf::new().tune(&ts)].into_iter().flatten() {
            prop_assert!(dbf::check_lo_mode(assignment.as_slice()).is_ok());
            prop_assert!(dbf::check_hi_mode(assignment.as_slice()).is_ok());
            for (vt, t) in assignment.as_slice().iter().zip(ts.iter()) {
                prop_assert!(vt.vd >= t.wcet_lo());
                prop_assert!(vt.vd <= t.deadline());
                if t.criticality().is_low() {
                    prop_assert_eq!(vt.vd, t.deadline());
                }
            }
        }
    }

    #[test]
    fn acceptance_is_antitone_in_added_load(ts in arb_mixed_set()) {
        // Adding a task can never turn a rejected set into an accepted one
        // ... for monotone tests like EDF-VD on the same structure
        // (check the contrapositive: accept(superset) ⇒ accept(subset)).
        let extra = Task::lo(999, 10, 1).expect("valid");
        let mut bigger = ts.clone();
        bigger.push_unchecked(extra);
        for test in [&EdfVd::new() as &dyn SchedulabilityTest, &AmcMax::new()] {
            if test.is_schedulable(&bigger) {
                prop_assert!(test.is_schedulable(&ts),
                    "{} accepted a superset but rejected the subset", test.name());
            }
        }
    }
}
