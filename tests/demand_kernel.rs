//! The incremental demand kernel must be **exactly** equivalent to the
//! retained seed demand stack:
//!
//! * the public one-shot checks `dbf::check_lo_mode` / `check_hi_mode`
//!   return the same [`DemandCheck`] — verdict *and* violation witness —
//!   as the verbatim seed implementations in `dbf::reference`;
//! * a kernel driven through arbitrary mutation sessions (`replace_vd`
//!   tighten/loosen cycles, `push_task`/`pop_task`) answers every check
//!   identically to a from-scratch seed analysis of its current
//!   assignment (pinning the delta-update contract and the warm-resume /
//!   anchor shortcuts);
//! * the kernel-backed EY / ECDF tuners return bit-identical verdicts
//!   *and* bit-identical chosen virtual-deadline assignments to the seed
//!   tuners in `vdtune::reference`;
//! * all of the above hold across unconstrained proptest sets *and* a
//!   deterministic generator-shaped corpus of ≥ 200 sets judged through
//!   one long-lived workspace.

use mcsched::analysis::dbf::{self, VdTask};
use mcsched::analysis::vdtune::reference as vd_reference;
use mcsched::analysis::{AnalysisWorkspace, DemandKernel, Ecdf, Ey, SchedulabilityTest};
use mcsched::gen::{DeadlineModel, GridPoint, TaskSetSpec};
use mcsched::model::{Task, TaskSet, Time};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An arbitrary valid task: period 2..=60, budgets inside it, optional
/// criticality/constrained deadline.
fn arb_task(id: u32) -> impl Strategy<Value = Task> {
    (2u64..=60, any::<bool>()).prop_flat_map(move |(period, is_hi)| {
        (1u64..=period, Just(period), Just(is_hi)).prop_flat_map(move |(c_lo, period, is_hi)| {
            if is_hi {
                (c_lo..=period, Just(period), Just(c_lo))
                    .prop_flat_map(move |(c_hi, period, c_lo)| {
                        (c_hi..=period).prop_map(move |d| {
                            Task::hi_constrained(id, period, c_lo, c_hi, d).expect("valid")
                        })
                    })
                    .boxed()
            } else {
                (c_lo..=period)
                    .prop_map(move |d| Task::lo_constrained(id, period, c_lo, d).expect("valid"))
                    .boxed()
            }
        })
    })
}

/// An arbitrary task set of 1..=10 tasks with distinct ids.
fn arb_taskset() -> impl Strategy<Value = TaskSet> {
    (1usize..=10).prop_flat_map(|n| {
        let tasks: Vec<_> = (0..n as u32).map(arb_task).collect();
        tasks.prop_map(|ts| TaskSet::try_from_tasks(ts).expect("distinct ids"))
    })
}

/// An arbitrary virtual-deadline assignment for a set: HC tasks get a
/// `vd ∈ [C^L, D]` derived from a per-task fraction, LC tasks keep `D`.
fn arb_assignment() -> impl Strategy<Value = Vec<VdTask>> {
    (arb_taskset(), proptest::collection::vec(0u8..=255, 1..=10)).prop_map(|(ts, fracs)| {
        ts.iter()
            .enumerate()
            .map(|(i, &t)| {
                if t.criticality().is_high() {
                    let frac = u64::from(fracs[i % fracs.len()]);
                    let floor = t.wcet_lo().as_ticks();
                    let ceil = t.deadline().as_ticks();
                    let vd = floor + (ceil - floor) * frac / 255;
                    VdTask {
                        task: t,
                        vd: Time::new(vd),
                    }
                } else {
                    VdTask::untightened(t)
                }
            })
            .collect()
    })
}

/// Asserts the public kernel-backed checks equal the seed reference —
/// verdicts and violation witnesses bit-identical.
fn assert_checks_equivalent(tasks: &[VdTask]) {
    assert_eq!(
        dbf::check_lo_mode(tasks),
        dbf::reference::check_lo_mode(tasks),
        "lo-mode check diverged on {tasks:?}"
    );
    assert_eq!(
        dbf::check_hi_mode(tasks),
        dbf::reference::check_hi_mode(tasks),
        "hi-mode check diverged on {tasks:?}"
    );
    let mut scratch = Vec::new();
    assert_eq!(
        dbf::check_hi_mode_in(tasks, &mut scratch),
        dbf::check_hi_mode(tasks),
        "legacy scratch entry point diverged on {tasks:?}"
    );
}

/// Asserts kernel-backed EY/ECDF verdicts and tuned assignments equal the
/// seed tuners on `ts`, through `ws`.
fn assert_tuners_equivalent(ts: &TaskSet, ws: &mut AnalysisWorkspace) {
    let ey = Ey::new();
    let ecdf = Ecdf::new();
    assert_eq!(
        ey.is_schedulable_in(ts, ws),
        vd_reference::ey_is_schedulable(ts),
        "EY verdict diverged on {ts}"
    );
    assert_eq!(
        ecdf.is_schedulable_in(ts, ws),
        vd_reference::ecdf_is_schedulable(ts),
        "ECDF verdict diverged on {ts}"
    );
    // The chosen assignments must be bit-identical, not just the verdicts:
    // the simulator schedules with these exact virtual deadlines.
    let ey_hot = ey.tune(ts).map(|a| a.into_vec());
    assert_eq!(
        ey_hot,
        vd_reference::ey_tune(ts),
        "EY tuned assignment diverged on {ts}"
    );
    let ecdf_hot = ecdf.tune(ts).map(|a| a.into_vec());
    assert_eq!(
        ecdf_hot,
        vd_reference::ecdf_tune(ts),
        "ECDF tuned assignment diverged on {ts}"
    );
}

/// Drives one kernel through a mutation session shaped by `steps`,
/// asserting reference-identical answers after every mutation.
fn exercise_kernel(tasks: &[VdTask], steps: &[(usize, u8)]) {
    let mut kernel = DemandKernel::new();
    kernel.load(tasks);
    let recheck = |k: &mut DemandKernel| {
        let current = k.assignment().to_vec();
        assert_eq!(
            k.check_lo(),
            dbf::reference::check_lo_mode(&current),
            "kernel lo diverged on {current:?}"
        );
        assert_eq!(
            k.check_hi(),
            dbf::reference::check_hi_mode(&current),
            "kernel hi diverged on {current:?}"
        );
        assert_eq!(
            k.lo_feasible(),
            dbf::reference::check_lo_mode(&current).is_ok(),
            "kernel lo fast path diverged on {current:?}"
        );
    };
    recheck(&mut kernel);
    for &(idx, frac) in steps {
        let idx = idx % tasks.len();
        let t = kernel.assignment()[idx].task;
        if t.criticality().is_high() {
            let floor = t.wcet_lo().as_ticks();
            let ceil = t.deadline().as_ticks();
            let vd = floor + (ceil - floor) * u64::from(frac) / 255;
            kernel.replace_vd(idx, Time::new(vd));
            recheck(&mut kernel);
        }
    }
    // A LIFO probe ladder (pushes + checks + pops, several deep) must
    // delta-maintain the lane view exactly and leave the answers intact.
    let lo_before = kernel.check_lo();
    let hi_before = kernel.check_hi();
    let extras = [
        Task::hi(900, 14, 2, 5).unwrap(),
        Task::lo(901, 9, 1).unwrap(),
        Task::hi_constrained(902, 30, 3, 8, 22).unwrap(),
    ];
    for (depth, extra) in extras.iter().enumerate() {
        kernel.push_task(VdTask::untightened(*extra));
        recheck(&mut kernel);
        // Retarget the probe itself: lane writes at the freshly pushed
        // position, while the committed prefix stays untouched.
        if extra.criticality().is_high() {
            kernel.replace_vd(tasks.len() + depth, extra.wcet_lo().max(Time::new(3)));
            recheck(&mut kernel);
        }
    }
    for expected in extras.iter().rev() {
        let popped = kernel.pop_task();
        assert_eq!(popped.task.id(), expected.id());
        recheck(&mut kernel);
    }
    assert_eq!(kernel.check_lo(), lo_before);
    assert_eq!(kernel.check_hi(), hi_before);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn public_checks_are_reference_identical(tasks in arb_assignment()) {
        assert_checks_equivalent(&tasks);
    }

    #[test]
    fn tuners_are_reference_identical(ts in arb_taskset()) {
        let mut ws = AnalysisWorkspace::new();
        assert_tuners_equivalent(&ts, &mut ws);
    }

    #[test]
    fn mutation_sessions_are_reference_identical(
        tasks in arb_assignment(),
        steps in proptest::collection::vec((0usize..10, 0u8..=255), 0..12),
    ) {
        exercise_kernel(&tasks, &steps);
    }
}

/// The seeded corpus acceptance criterion: ≥ 200 generator-shaped task
/// sets, every check and both tuners bit-identical to the seed stack,
/// all through one long-lived workspace (warm-state leakage across sets
/// must never surface in any verdict).
#[test]
fn seeded_corpus_kernel_equivalence() {
    let workloads = [
        (2usize, DeadlineModel::Implicit, 0.55, 0.30, 0.35, 31u64),
        (2, DeadlineModel::Constrained, 0.70, 0.35, 0.40, 32),
        (4, DeadlineModel::Implicit, 0.80, 0.40, 0.45, 33),
        (4, DeadlineModel::Constrained, 0.65, 0.30, 0.45, 34),
        (8, DeadlineModel::Implicit, 0.60, 0.25, 0.50, 35),
    ];
    let mut ws = AnalysisWorkspace::new();
    let mut generated = 0usize;
    for (m, deadlines, u_hh, u_hl, u_ll, seed) in workloads {
        let spec = TaskSetSpec::paper_defaults(m, GridPoint { u_hh, u_hl, u_ll }, deadlines);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut made = 0usize;
        let mut guard = 0usize;
        while made < 42 && guard < 1200 {
            guard += 1;
            let Ok(ts) = spec.generate(&mut rng) else {
                continue;
            };
            made += 1;
            assert_tuners_equivalent(&ts, &mut ws);
            let untightened: Vec<VdTask> = ts.iter().map(|&t| VdTask::untightened(t)).collect();
            assert_checks_equivalent(&untightened);
            // Generator-shaped parameters must license the fast lanes:
            // the corpus equivalences above genuinely pin the certified
            // lane route, not the guarded fallback.
            let mut kernel = DemandKernel::new();
            kernel.load(&untightened);
            assert!(
                kernel.certified(),
                "corpus set must carry the demand certificate: {ts}"
            );
        }
        assert_eq!(made, 42, "generator starved at m={m} {deadlines}");
        generated += made;
    }
    assert!(generated >= 200, "corpus too small: {generated}");
}

/// The admission layer's warm kernel must report fixpoint reuse through
/// its stats — the observability the `--ablation` table builds on — while
/// agreeing with the one-shot tuner on every probe.
#[test]
fn admission_probes_reuse_fixpoints() {
    use mcsched::analysis::{AdmissionState, IncrementalTest};
    let tasks = vec![
        Task::hi(0, 10, 1, 3).unwrap(),
        Task::lo(1, 20, 4).unwrap(),
        Task::hi(2, 25, 3, 8).unwrap(),
        Task::hi(3, 12, 2, 6).unwrap(),
        Task::lo(4, 15, 3).unwrap(),
        Task::hi(5, 40, 3, 9).unwrap(),
    ];
    for ecdf in [false, true] {
        let mut state: Box<dyn AdmissionState> = if ecdf {
            Box::new(Ecdf::new().new_state())
        } else {
            Box::new(Ey::new().new_state())
        };
        for t in &tasks {
            let mut union = state.tasks().clone();
            union.push_unchecked(*t);
            let expected = if ecdf {
                Ecdf::new().is_schedulable(&union)
            } else {
                Ey::new().is_schedulable(&union)
            };
            assert_eq!(state.try_admit(t), expected, "ecdf={ecdf} on {t}");
            if expected {
                state.commit(*t);
            }
        }
        let stats = state.stats();
        assert!(
            stats.qpa_cold > 0,
            "no cold descents recorded (ecdf={ecdf}): {stats:?}"
        );
        assert!(
            stats.qpa_resumed > 0,
            "no warm fixpoint reuse recorded (ecdf={ecdf}): {stats:?}"
        );
    }
}
