//! Cross-validation between the analytical response-time bounds and the
//! simulator's observed behaviour, plus serde round-trips for the data
//! types that travel between the crates.

use mcsched::analysis::LoRta;
use mcsched::gen::{DeadlineModel, GridPoint, TaskSetSpec};
use mcsched::model::{Task, TaskSet, Time};
use mcsched::sim::{Policy, Scenario, Simulator, TraceEvent};
use rand::{rngs::StdRng, SeedableRng};

/// Observed completion time of each task's *first* job under a traced run
/// (the synchronous release at t = 0 is the critical instant for
/// fixed-priority scheduling, so the observed first-job response must be
/// bounded by the RTA result).
fn first_job_completions(ts: &TaskSet, trace: &[TraceEvent]) -> Vec<Option<Time>> {
    let mut out = vec![None; ts.len()];
    for ev in trace {
        if let TraceEvent::Complete { at, task } = ev {
            if let Some(idx) = ts.iter().position(|t| t.id() == *task) {
                if out[idx].is_none() {
                    out[idx] = Some(*at);
                }
            }
        }
    }
    out
}

#[test]
fn lo_rta_upper_bounds_simulated_response_times() {
    let mut rng = StdRng::seed_from_u64(0x51);
    let mut validated = 0;
    for _ in 0..60 {
        let spec = TaskSetSpec::paper_defaults(
            1,
            GridPoint {
                u_hh: 0.4,
                u_hl: 0.2,
                u_ll: 0.35,
            },
            DeadlineModel::Constrained,
        );
        let Ok(ts) = spec.generate(&mut rng) else {
            continue;
        };
        let Some(bounds) = LoRta::compute(&ts) else {
            continue;
        };
        validated += 1;
        // Synchronous release, everyone at C^L: the first job of every
        // task must finish no later than its RTA bound.
        let report = Simulator::new(&ts, Policy::deadline_monotonic(&ts))
            .with_trace()
            .run(&Scenario::lo_only(), ts.max_period().as_ticks() * 2);
        assert!(report.is_success());
        let observed = first_job_completions(&ts, report.trace());
        for (i, t) in ts.iter().enumerate() {
            let Some(done) = observed[i] else {
                continue; // horizon cut the job short
            };
            assert!(
                done <= bounds[i],
                "{}: observed response {} exceeds RTA bound {} in {ts}",
                t.id(),
                done,
                bounds[i]
            );
        }
    }
    assert!(validated >= 20, "coverage too thin: {validated}");
}

#[test]
fn rta_bound_is_tight_for_synchronous_release() {
    // For the highest-priority task the bound is exactly C^L; for a
    // two-task set with harmonic periods the fixpoint is met exactly.
    let ts = TaskSet::try_from_tasks(vec![
        Task::lo(0, 10, 3).unwrap(),
        Task::lo(1, 20, 5).unwrap(),
    ])
    .unwrap();
    let bounds = LoRta::compute(&ts).unwrap();
    let report = Simulator::new(&ts, Policy::deadline_monotonic(&ts))
        .with_trace()
        .run(&Scenario::lo_only(), 40);
    let observed = first_job_completions(&ts, report.trace());
    assert_eq!(observed[0], Some(bounds[0]));
    assert_eq!(observed[1], Some(bounds[1]));
}

#[test]
fn serde_traits_are_derived_everywhere_they_matter() {
    // The data types that cross process boundaries (task sets, partitions,
    // sweep results) must be serde-ready; this is a compile-time proof.
    fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
    assert_serde::<mcsched::model::Task>();
    assert_serde::<mcsched::model::TaskSet>();
    assert_serde::<mcsched::model::Time>();
    assert_serde::<mcsched::model::Criticality>();
    assert_serde::<mcsched::core::Partition>();
    assert_serde::<mcsched::core::PartitionError>();
    assert_serde::<mcsched::sim::SimReport>();
    assert_serde::<mcsched::sim::MissRecord>();
    assert_serde::<mcsched::gen::GridPoint>();
    assert_serde::<mcsched::gen::TaskSetSpec>();
    assert_serde::<mcsched::exp::SweepConfig>();
    assert_serde::<mcsched::exp::AcceptanceCurve>();
}

#[test]
fn simulator_work_conservation() {
    // Under LoOnly with total utilization ≤ 1, the number of completed
    // jobs over k hyperperiods equals releases minus the trailing window.
    let ts = TaskSet::try_from_tasks(vec![
        Task::lo(0, 10, 4).unwrap(),
        Task::lo(1, 20, 6).unwrap(),
    ])
    .unwrap();
    let report = Simulator::new(&ts, Policy::Edf).run(&Scenario::lo_only(), 200);
    assert!(report.is_success());
    // 20 jobs of τ0, 10 of τ1 released in [0, 200); all but possibly the
    // very last of each complete within the horizon.
    assert_eq!(report.released(), 30);
    assert!(report.completed() >= 28);
}

#[test]
fn busy_processor_never_idles_below_full_load() {
    // Utilization exactly 1 under EDF: the processor must complete
    // everything with zero slack — total executed time equals horizon.
    let ts = TaskSet::try_from_tasks(vec![Task::lo(0, 4, 2).unwrap(), Task::lo(1, 8, 4).unwrap()])
        .unwrap();
    let report = Simulator::new(&ts, Policy::Edf).run(&Scenario::lo_only(), 80);
    assert!(report.is_success());
    assert_eq!(report.completed(), 20 + 10);
}
