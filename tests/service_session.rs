//! End-to-end checks of the persistent admission-control service:
//!
//! * a randomized admit/remove/query lifecycle served over the
//!   connection state machine is **bit-identical** to a clone-and-retest
//!   oracle — a [`ClusterSession`] running the same placement policy on
//!   [`OneShot`]-bridged reference tests (cold full re-analysis per
//!   verdict);
//! * protocol v1 envelopes round-trip through render/parse, and legacy
//!   `eval` lines still parse;
//! * malformed and oversized frames are answered in-band (echoing the
//!   request id when one was recovered) without killing the session;
//! * a real TCP server sheds connections beyond its pool + queue with a
//!   typed overload reply and shuts down cleanly.

use mcsched::analysis::{AmcMax, AmcRtb, Ecdf, EdfVd, Ey, OneShot};
use mcsched::core::ClusterSession;
use mcsched::exp::protocol::{
    parse_envelope, parse_reply, Envelope, EvalRequest, Reply, Request, RequestId,
};
use mcsched::exp::server::{serve_connection, Server, ServerConfig};
use mcsched::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// The oracle: the same cluster placement policy, but every processor
/// verdict is a from-scratch one-shot analysis (clone-and-retest).
fn oracle_cluster(spec: &AlgorithmSpec, m: usize) -> ClusterSession {
    let name = spec.name();
    let strategy = spec.strategy.clone();
    match spec.test {
        TestName::EdfVd => ClusterSession::with_test(name, strategy, &OneShot(EdfVd::new()), m),
        TestName::Ey => ClusterSession::with_test(name, strategy, &OneShot(Ey::new()), m),
        TestName::Ecdf => ClusterSession::with_test(name, strategy, &OneShot(Ecdf::new()), m),
        TestName::AmcRtb => ClusterSession::with_test(name, strategy, &OneShot(AmcRtb::new()), m),
        TestName::AmcMax => ClusterSession::with_test(name, strategy, &OneShot(AmcMax::new()), m),
    }
}

/// One scripted session operation (mirrors the protocol verbs).
#[derive(Debug, Clone)]
enum Op {
    Admit(Task),
    Remove(TaskId),
    Query(Option<Task>),
}

/// A deterministic random task: periods from a harmonic-ish palette,
/// ~40% HC, demand heavy enough that some admissions are rejected.
fn random_task(rng: &mut StdRng, id: u32) -> Task {
    let period = *[5u64, 10, 20, 40, 100]
        .get(rng.random_range(0..5))
        .expect("palette index in range");
    let wcet_lo = rng.random_range(1..=period.div_ceil(2));
    if rng.random_range(0..10) < 4 {
        let wcet_hi = rng.random_range(wcet_lo..=period);
        Task::hi(id, period, wcet_lo, wcet_hi).expect("valid HC task")
    } else {
        Task::lo(id, period, wcet_lo).expect("valid LC task")
    }
}

/// Scripts a randomized lifecycle: mostly admits, some removals of
/// previously-seen ids (committed or not), some probing queries.
fn random_ops(rng: &mut StdRng, steps: usize) -> Vec<Op> {
    let mut ops = Vec::with_capacity(steps);
    let mut next_id = 0u32;
    let mut seen: Vec<u32> = Vec::new();
    for _ in 0..steps {
        match rng.random_range(0..10) {
            0..=6 => {
                let task = random_task(rng, next_id);
                seen.push(next_id);
                next_id += 1;
                ops.push(Op::Admit(task));
            }
            7..=8 if !seen.is_empty() => {
                let id = seen[rng.random_range(0..seen.len())];
                ops.push(Op::Remove(TaskId(id)));
            }
            _ => {
                let task = random_task(rng, next_id);
                next_id += 1;
                ops.push(Op::Query(Some(task)));
            }
        }
    }
    ops.push(Op::Query(None));
    ops
}

fn snapshot_u32(cluster: &ClusterSession) -> Vec<Vec<u32>> {
    cluster
        .snapshot()
        .into_iter()
        .map(|p| p.into_iter().map(|id| id.0).collect())
        .collect()
}

#[test]
fn randomized_sessions_match_the_clone_and_retest_oracle() {
    let registry = AlgorithmRegistry::standard();
    let config = ServerConfig::default();
    for (algorithm, m, seed) in [
        ("CU-UDP-ECDF", 3, 7u64),
        ("CA-UDP-EY", 2, 11),
        ("CU-UDP-AMC", 3, 13),
        ("CA-F-F-EDF-VD", 2, 17),
    ] {
        let spec = registry.spec(algorithm).expect("registered algorithm");
        let mut rng = StdRng::seed_from_u64(seed);
        let ops = random_ops(&mut rng, 80);

        // Script the whole session as one connection's input.
        let mut input = Vec::new();
        let mut send = |id: u64, request: Request| {
            let line = Envelope::with_id(RequestId::Num(id), request).render();
            writeln!(input, "{line}").expect("in-memory write");
        };
        send(
            0,
            Request::OpenSession {
                algorithm: algorithm.to_owned(),
                m,
                session: None,
            },
        );
        for (i, op) in ops.iter().enumerate() {
            let request = match op {
                Op::Admit(task) => Request::Admit {
                    task: *task,
                    op_id: None,
                },
                Op::Remove(id) => Request::Remove {
                    task_id: *id,
                    op_id: None,
                },
                Op::Query(probe) => Request::Query { probe: *probe },
            };
            send(1 + i as u64, request);
        }

        let mut output = Vec::new();
        let stats = serve_connection(&registry, &config, input.as_slice(), &mut output);
        assert_eq!(stats.requests, 1 + ops.len() as u64, "{algorithm}");
        assert_eq!(stats.errors, 0, "{algorithm}");

        let text = String::from_utf8(output).expect("utf-8 replies");
        let mut replies = text.lines().map(|line| {
            parse_reply(line).unwrap_or_else(|e| panic!("bad reply line: {e}\n{line}"))
        });

        // Step the oracle in lockstep and demand identical verdicts.
        let mut oracle = oracle_cluster(&spec, m);
        let (id, reply) = replies.next().expect("open_session reply");
        assert_eq!(id, Some(RequestId::Num(0)));
        match reply {
            Reply::Session(s) => {
                assert_eq!(s.algorithm, spec.name());
                assert_eq!(s.m, m);
            }
            other => panic!("expected session reply, got {other:?}"),
        }
        for (i, op) in ops.iter().enumerate() {
            let (id, reply) = replies.next().expect("one reply per request");
            assert_eq!(
                id,
                Some(RequestId::Num(1 + i as u64)),
                "{algorithm} op {op:?}"
            );
            match (op, reply) {
                (Op::Admit(task), Reply::Admit(a)) => {
                    let want = oracle.admit(*task);
                    assert_eq!(a.admitted, want.is_ok(), "{algorithm} admit {task:?}");
                    assert_eq!(a.processor, want.ok(), "{algorithm} admit {task:?}");
                    assert_eq!(a.task, task.id().0);
                    assert_eq!(a.tasks, oracle.task_count());
                    assert_eq!(a.detail.is_some(), !a.admitted);
                }
                (Op::Remove(task_id), Reply::Remove(r)) => {
                    let want = oracle.remove(*task_id);
                    assert_eq!(r.removed, want.is_some(), "{algorithm} remove {task_id:?}");
                    assert_eq!(r.processor, want, "{algorithm} remove {task_id:?}");
                    assert_eq!(r.task, task_id.0);
                    assert_eq!(r.tasks, oracle.task_count());
                }
                (Op::Query(probe), Reply::Query(q)) => {
                    assert_eq!(q.algorithm, spec.name());
                    assert_eq!(q.m, m);
                    assert_eq!(q.tasks, oracle.task_count());
                    assert_eq!(q.partition, snapshot_u32(&oracle), "{algorithm}");
                    match probe {
                        Some(task) => {
                            let want = oracle.probe(task);
                            let got = q.probe.expect("probe verdict");
                            assert_eq!(got.fits, want.is_some(), "{algorithm} probe {task:?}");
                            assert_eq!(got.processor, want, "{algorithm} probe {task:?}");
                        }
                        None => assert!(q.probe.is_none()),
                    }
                }
                (op, reply) => panic!("{algorithm}: op {op:?} answered with {reply:?}"),
            }
        }
        assert!(replies.next().is_none(), "{algorithm}: extra replies");
    }
}

#[test]
fn protocol_envelopes_round_trip_and_legacy_eval_parses() {
    let task = Task::hi(3, 20, 2, 5).expect("valid task");
    let mut tasks = TaskSet::new();
    tasks.try_push(task).expect("fresh id");
    let requests = [
        Request::Eval(EvalRequest {
            algorithm: "CU-UDP-EDF-VD".to_owned(),
            m: 2,
            tasks,
        }),
        Request::OpenSession {
            algorithm: "CA-UDP-EY".to_owned(),
            m: 4,
            session: None,
        },
        Request::OpenSession {
            algorithm: "CA-UDP-EY".to_owned(),
            m: 4,
            session: Some("durable-1".to_owned()),
        },
        Request::Admit { task, op_id: None },
        Request::Admit {
            task,
            op_id: Some("op-1".to_owned()),
        },
        Request::Remove {
            task_id: TaskId(3),
            op_id: None,
        },
        Request::Query { probe: Some(task) },
        Request::Query { probe: None },
        Request::Close,
        Request::Shutdown,
    ];
    for request in requests {
        for envelope in [
            Envelope::new(request.clone()),
            Envelope::with_id(RequestId::Num(9), request.clone()),
            Envelope::with_id(RequestId::Str("req-a".to_owned()), request.clone()),
        ] {
            let line = envelope.render();
            let parsed = parse_envelope(&line)
                .unwrap_or_else(|e| panic!("round trip failed for {line}: {}", e.message));
            assert_eq!(parsed, envelope, "{line}");
        }
    }

    // The pre-v1 line shape (no `type`, no `v`) is still an eval.
    let legacy =
        r#"{"algorithm":"CU-UDP-EDF-VD","m":2,"tasks":[{"id":0,"period":10,"wcet_lo":2}]}"#;
    let parsed = parse_envelope(legacy).expect("legacy lines parse");
    assert!(parsed.id.is_none());
    match parsed.request {
        Request::Eval(req) => {
            assert_eq!(req.algorithm, "CU-UDP-EDF-VD");
            assert_eq!(req.m, 2);
            assert_eq!(req.tasks.len(), 1);
        }
        other => panic!("legacy line parsed as {other:?}"),
    }
}

#[test]
fn malformed_and_oversized_frames_do_not_kill_the_session() {
    let registry = AlgorithmRegistry::standard();
    let config = ServerConfig {
        max_frame_len: 512,
        ..ServerConfig::default()
    };
    let mut input = Vec::new();
    writeln!(
        input,
        r#"{{"type":"open_session","v":1,"id":1,"algorithm":"CU-UDP-EDF-VD","m":2}}"#
    )
    .unwrap();
    // Malformed: the verb needs a task; the recovered id must be echoed.
    writeln!(input, r#"{{"type":"admit","v":1,"id":2}}"#).unwrap();
    // Oversized: blows the 512-byte frame cap mid-line.
    writeln!(
        input,
        "{{\"type\":\"admit\",\"garbage\":\"{}\"}}",
        "x".repeat(700)
    )
    .unwrap();
    // The session must still be live afterwards.
    writeln!(
        input,
        r#"{{"type":"admit","v":1,"id":3,"task":{{"id":0,"period":10,"criticality":"HI","wcet_lo":2,"wcet_hi":4}}}}"#
    )
    .unwrap();

    let mut output = Vec::new();
    let stats = serve_connection(&registry, &config, input.as_slice(), &mut output);
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.errors, 2);

    let text = String::from_utf8(output).unwrap();
    let replies: Vec<(Option<RequestId>, Reply)> = text
        .lines()
        .map(|line| parse_reply(line).unwrap_or_else(|e| panic!("{e}\n{line}")))
        .collect();
    assert_eq!(replies.len(), 4);
    assert!(matches!(
        &replies[0],
        (Some(RequestId::Num(1)), Reply::Session(_))
    ));
    match &replies[1] {
        (Some(RequestId::Num(2)), Reply::Error { error }) => {
            assert!(error.contains("task"), "{error}");
        }
        other => panic!("expected id-echoing error, got {other:?}"),
    }
    match &replies[2] {
        (None, Reply::Error { error }) => assert!(error.contains("512"), "{error}"),
        other => panic!("expected oversized-frame error, got {other:?}"),
    }
    match &replies[3] {
        (Some(RequestId::Num(3)), Reply::Admit(a)) => assert!(a.admitted),
        other => panic!("expected a live session after the bad frames, got {other:?}"),
    }
}

#[test]
fn tcp_server_sheds_overload_and_shuts_down_cleanly() {
    let server = Server::bind(
        AlgorithmRegistry::standard(),
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());

    // One live session over real TCP occupies the only worker.
    let mut busy = TcpStream::connect(addr).expect("connect");
    busy.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut busy_reader = BufReader::new(busy.try_clone().unwrap());
    let mut line = String::new();
    for request in [
        r#"{"type":"open_session","v":1,"id":1,"algorithm":"CU-UDP-ECDF","m":2}"#.to_owned(),
        r#"{"type":"admit","v":1,"id":2,"task":{"id":0,"period":10,"criticality":"HI","wcet_lo":2,"wcet_hi":4}}"#.to_owned(),
    ] {
        writeln!(busy, "{request}").unwrap();
        busy.flush().unwrap();
        line.clear();
        busy_reader.read_line(&mut line).expect("reply");
        let (_, reply) = parse_reply(line.trim_end()).expect("typed reply");
        assert!(
            matches!(reply, Reply::Session(_) | Reply::Admit(_)),
            "{reply:?}"
        );
    }

    // Flood: the worker is busy, the queue holds one; the rest must be
    // shed with a typed overload reply, not a silent hangup.
    let mut held = Vec::new();
    let mut overloads = 0;
    for _ in 0..6 {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(400)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply_line = String::new();
        match reader.read_line(&mut reply_line) {
            Ok(n) if n > 0 => {
                let (_, reply) = parse_reply(reply_line.trim_end()).expect("typed reply");
                assert!(matches!(reply, Reply::Overload { .. }), "{reply:?}");
                overloads += 1;
            }
            _ => held.push(stream), // accepted (queued) — hold it open
        }
    }
    assert!(overloads >= 3, "expected sheds, saw {overloads}");

    // Release every connection, then stop the server via its handle.
    drop(held);
    drop(busy_reader);
    drop(busy);
    handle.shutdown();
    let stats = thread
        .join()
        .expect("server thread")
        .expect("clean shutdown");
    assert_eq!(stats.overloads, overloads);
    assert!(stats.requests >= 2);
    assert_eq!(stats.errors, 0);
}
