//! End-to-end checks of the fixed-priority (AMC) path on
//! constrained-deadline workloads: analysis → partition → runtime, plus
//! the OPA extension driven through the simulator.

use mcsched::analysis::{AmcMax, AmcRtb, SchedulabilityTest};
use mcsched::core::{presets, PartitionedAlgorithm};
use mcsched::gen::{DeadlineModel, GridPoint, TaskSetSpec};
use mcsched::model::{Task, TaskSet};
use mcsched::sim::{validate, PartitionedSimulator, Policy, Scenario};
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn partitioned_amc_survives_adversarial_runtime() {
    let mut rng = StdRng::seed_from_u64(0xACDC);
    let algo = PartitionedAlgorithm::new(presets::cu_udp(), AmcMax::new());
    let mut validated = 0;
    for _ in 0..40 {
        let spec = TaskSetSpec::paper_defaults(
            2,
            GridPoint {
                u_hh: 0.5,
                u_hl: 0.25,
                u_ll: 0.3,
            },
            DeadlineModel::Constrained,
        );
        let Ok(ts) = spec.generate(&mut rng) else {
            continue;
        };
        let Ok(partition) = algo.partition(&ts, 2) else {
            continue;
        };
        validated += 1;
        let sim = PartitionedSimulator::from_partition(&partition, Policy::deadline_monotonic);
        for scenario in [
            Scenario::all_hi(),
            Scenario::random_overrun(0.5, validated),
            Scenario::sporadic(0.5, 0.8, validated),
        ] {
            for (k, r) in sim.run(&scenario, 20_000).iter().enumerate() {
                assert!(
                    r.is_success(),
                    "φ{k} missed under {scenario:?}: {:?}\n{}",
                    r.misses(),
                    partition
                );
            }
        }
    }
    assert!(validated >= 15, "coverage: {validated}");
}

#[test]
fn opa_certified_order_survives_runtime() {
    // The strict-gap instance: DM fails analytically, OPA certifies; run
    // the OPA order in the simulator under sustained overruns.
    let ts = TaskSet::try_from_tasks(vec![
        Task::hi(0, 10, 4, 6).unwrap(),
        Task::lo_constrained(1, 12, 5, 9).unwrap(),
        Task::lo(2, 40, 3).unwrap(),
    ])
    .unwrap();
    assert!(!AmcRtb::new().is_schedulable(&ts));
    let order = AmcRtb::audsley_order(&ts).expect("OPA-certified");
    let policy = Policy::FixedPriority {
        priority_order: order,
    };
    validate::validate_uniprocessor(&ts, &policy, 10_000, 5)
        .unwrap_or_else(|ce| panic!("OPA order missed at runtime: {ce}"));
}

#[test]
fn dm_order_misses_where_opa_succeeds() {
    // The same instance under the DM order: AMC-rtb's rejection is not
    // necessarily a runtime miss (the test is sufficient, not exact), but
    // AMC-max also rejects here — and the simulator confirms a genuine
    // worst-case miss under sustained overruns with DM priorities.
    let ts = TaskSet::try_from_tasks(vec![
        Task::hi(0, 10, 4, 6).unwrap(),
        Task::lo_constrained(1, 12, 5, 9).unwrap(),
        Task::lo(2, 40, 3).unwrap(),
    ])
    .unwrap();
    let report = mcsched::sim::Simulator::new(&ts, Policy::deadline_monotonic(&ts))
        .run(&Scenario::all_hi(), 10_000);
    assert!(
        !report.is_success(),
        "expected the DM order to miss under sustained overruns"
    );
}

#[test]
fn amc_partitioning_handles_heavy_lc_mix() {
    // High P_H stresses the criticality-unaware ordering with AMC.
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let algo = PartitionedAlgorithm::new(presets::cu_udp(), AmcMax::new());
    let base = PartitionedAlgorithm::new(presets::ca_f_f(), AmcMax::new());
    let (mut udp_ok, mut base_ok) = (0u32, 0u32);
    for _ in 0..60 {
        let spec = TaskSetSpec::paper_defaults(
            2,
            GridPoint {
                u_hh: 0.7,
                u_hl: 0.35,
                u_ll: 0.3,
            },
            DeadlineModel::Constrained,
        )
        .with_p_h(0.7);
        let Ok(ts) = spec.generate(&mut rng) else {
            continue;
        };
        if algo.partition(&ts, 2).is_ok() {
            udp_ok += 1;
        }
        if base.partition(&ts, 2).is_ok() {
            base_ok += 1;
        }
    }
    assert!(
        udp_ok >= base_ok,
        "CU-UDP-AMC accepted {udp_ok} vs CA-F-F-AMC {base_ok}"
    );
}
