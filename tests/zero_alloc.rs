//! Proof of the zero-allocation milestone: once an admission state's
//! buffers are warm, **admission probes perform no heap allocations**,
//! and neither do workspace-backed one-shot judgements.
//!
//! A counting global allocator wraps `System`; each scenario warms its
//! buffers first (capacity growth is allowed to allocate), then asserts
//! an allocation delta of **zero** over many repetitions. The counter is
//! **per-thread**: the probe loops run entirely on the test thread, and
//! a process-wide counter picks up unrelated allocations the harness's
//! supervisor thread makes at timing-dependent moments (an intermittent
//! false failure observed in practice).
//!
//! The scenarios cover the incremental demand kernel explicitly: the
//! EY / ECDF one-shot judgements below run multi-round greedy descents
//! whose high-mode QPA warm-resumes and whose admission states keep a
//! warm kernel across probes — all of it allocation-free once the
//! anchor/snapshot buffers reach their (bounded) high-water mark.

// The counting allocator is the one place the workspace needs `unsafe`:
// a thin pass-through to `System` with a relaxed atomic counter.
#![allow(unsafe_code)]

use mcsched::analysis::{
    AmcMax, AmcRtb, AnalysisWorkspace, ClassicEdf, Ecdf, EdfVd, Ey, SchedulabilityTest,
    WorkspaceRef,
};
use mcsched::model::{Task, TaskSet};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    /// Allocations made by *this* thread (const-initialised: reading it
    /// never allocates, so the counter cannot count itself).
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Bumps the calling thread's counter; silently skipped during thread
/// teardown (when the TLS slot is already destroyed).
fn bump() {
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

/// Counts every allocation and reallocation; frees are untracked (a probe
/// that frees must have allocated first, so zero allocations ⇒ zero
/// churn).
struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Runs `f` and returns how many allocations the calling thread
/// performed in it.
fn count_allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

/// A mixed workload that every test admits partially: some tasks commit,
/// later probes run against non-trivial committed state.
fn committed_tasks() -> Vec<Task> {
    vec![
        Task::hi(0, 10, 1, 2).unwrap(),
        Task::lo(1, 20, 3).unwrap(),
        Task::hi_constrained(2, 25, 2, 4, 20).unwrap(),
        Task::lo_constrained(3, 12, 1, 5).unwrap(),
        Task::hi(4, 40, 2, 5).unwrap(),
    ]
}

/// Probe candidates: one admissible (never committed), one rejected.
fn probes() -> Vec<Task> {
    vec![
        Task::lo(90, 30, 1).unwrap(),
        Task::hi(91, 10, 6, 9).unwrap(),
    ]
}

/// Asserts zero allocations across repeated `try_admit` probes on a
/// warmed state of `test`.
fn assert_zero_alloc_admission(test: &dyn SchedulabilityTest) {
    let ws = WorkspaceRef::new();
    let mut state = test.admission_state_in(&ws);
    for t in committed_tasks() {
        if state.try_admit(&t) {
            state.commit(t);
        }
    }
    let probes = probes();
    // Warm-up pass: let every scratch buffer reach its high-water mark.
    for p in &probes {
        let _ = state.try_admit(p);
    }
    // Steady state: not a single heap allocation across 64 probe rounds.
    let allocs = count_allocations(|| {
        for _ in 0..64 {
            for p in &probes {
                std::hint::black_box(state.try_admit(std::hint::black_box(p)));
            }
        }
    });
    assert_eq!(
        allocs,
        0,
        "{}: steady-state admission probes allocated {allocs} times",
        test.name()
    );
}

/// Asserts zero allocations across repeated workspace-backed one-shot
/// judgements of `test`.
fn assert_zero_alloc_one_shot(test: &dyn SchedulabilityTest, sets: &[TaskSet]) {
    let mut ws = AnalysisWorkspace::new();
    for ts in sets {
        let _ = test.is_schedulable_in(ts, &mut ws); // warm-up
    }
    let allocs = count_allocations(|| {
        for _ in 0..32 {
            for ts in sets {
                std::hint::black_box(test.is_schedulable_in(std::hint::black_box(ts), &mut ws));
            }
        }
    });
    assert_eq!(
        allocs,
        0,
        "{}: steady-state one-shot judgements allocated {allocs} times",
        test.name()
    );
}

/// Asserts zero allocations across warm QPA resumes: a tuning-heavy set
/// (every HC task needs several tightening rounds) judged repeatedly
/// through one workspace, plus an admission state whose stats must show
/// the kernel actually resumed fixpoints while staying allocation-free.
fn assert_zero_alloc_warm_qpa() {
    // Three overrunning HC tasks: the untightened start violates at the
    // switch and the greedy descent iterates check → tighten rounds, so
    // every judgement exercises the kernel's warm-resume path.
    let ts = TaskSet::try_from_tasks(vec![
        Task::hi(0, 12, 2, 6).unwrap(),
        Task::hi(1, 20, 3, 9).unwrap(),
        Task::hi(2, 33, 4, 11).unwrap(),
        Task::lo(3, 25, 4).unwrap(),
    ])
    .unwrap();
    let ecdf = Ecdf::new();
    let mut ws = AnalysisWorkspace::new();
    let _ = ecdf.is_schedulable_in(&ts, &mut ws); // warm-up
    let allocs = count_allocations(|| {
        for _ in 0..32 {
            std::hint::black_box(ecdf.is_schedulable_in(std::hint::black_box(&ts), &mut ws));
        }
    });
    assert_eq!(allocs, 0, "warm QPA resume allocated {allocs} times");

    // The admission state's warm kernel: repeated probes must both reuse
    // fixpoints (observable in the stats) and allocate nothing.
    let ws = WorkspaceRef::new();
    let mut state = ecdf.admission_state_in(&ws);
    for t in ts.iter() {
        if state.try_admit(t) {
            state.commit(*t);
        }
    }
    // A light LC probe: it passes the O(1) structural pre-reject, so
    // every probe re-runs the greedy tuner over the warm kernel.
    let probe = Task::lo(90, 30, 2).unwrap();
    let _ = state.try_admit(&probe); // warm-up
    let before = state.stats();
    let allocs = count_allocations(|| {
        for _ in 0..64 {
            std::hint::black_box(state.try_admit(std::hint::black_box(&probe)));
        }
    });
    assert_eq!(
        allocs, 0,
        "admission probes with warm kernel allocated {allocs} times"
    );
    let after = state.stats();
    assert!(
        after.qpa_resumed > before.qpa_resumed,
        "probes did not resume any fixpoint: {before:?} → {after:?}"
    );
}

/// A wide committed set (20 tasks, mixed criticality, light utilisation)
/// that drives the batched SoA kernels through multiple lane blocks —
/// the 5-task scenarios above stay on the small-set scalar route.
fn committed_tasks_wide() -> Vec<Task> {
    (0..20u32)
        .map(|i| {
            let period = 60 + 17 * u64::from(i);
            if i % 3 == 0 {
                Task::hi(i, period, 1, 2).unwrap()
            } else {
                Task::lo(i, period, 1).unwrap()
            }
        })
        .collect()
}

/// Asserts the batched lane view itself is allocation-free once warm:
/// repeated full rebuilds of the SoA lanes (one-shot judgements over a
/// 20-task set, which reload the view every call) and repeated
/// delta-updated admission probes against a 20-task committed state must
/// not touch the heap.
fn assert_zero_alloc_batched_blocks() {
    let wide = TaskSet::try_from_tasks(committed_tasks_wide()).unwrap();
    for test in [
        &AmcRtb::new() as &dyn SchedulabilityTest,
        &AmcMax::new(),
        // The demand lanes: one-shot judgements rebuild the SoA view
        // every call; admission probes delta-update it (push/pop around
        // every query, replace_vd inside every tuner descent).
        &Ey::new(),
        &Ecdf::new(),
    ] {
        // One-shot: every call rebuilds the lane view from scratch into
        // warm buffers (resize + overwrite, growth only on first use).
        let mut ws = AnalysisWorkspace::new();
        assert!(test.is_schedulable_in(&wide, &mut ws), "warm-up verdict");
        let allocs = count_allocations(|| {
            for _ in 0..32 {
                std::hint::black_box(test.is_schedulable_in(std::hint::black_box(&wide), &mut ws));
            }
        });
        assert_eq!(
            allocs,
            0,
            "{}: multi-block one-shot rebuilds allocated {allocs} times",
            test.name()
        );

        // Delta path: probes insert into / remove from the 20-position
        // lane view around every admission query.
        let ws = WorkspaceRef::new();
        let mut state = test.admission_state_in(&ws);
        for t in committed_tasks_wide() {
            assert!(state.try_admit(&t), "{}: wide set must admit", test.name());
            state.commit(t);
        }
        let probes = probes();
        for p in &probes {
            let _ = state.try_admit(p);
        }
        let allocs = count_allocations(|| {
            for _ in 0..64 {
                for p in &probes {
                    std::hint::black_box(state.try_admit(std::hint::black_box(p)));
                }
            }
        });
        assert_eq!(
            allocs,
            0,
            "{}: multi-block admission probes allocated {allocs} times",
            test.name()
        );
    }
}

#[test]
fn admission_and_one_shot_paths_are_allocation_free() {
    let tests: Vec<Box<dyn SchedulabilityTest>> = vec![
        Box::new(EdfVd::new()),
        Box::new(Ey::new()),
        Box::new(Ecdf::new()),
        Box::new(AmcRtb::new()),
        Box::new(AmcRtb::with_audsley()),
        Box::new(AmcMax::new()),
    ];
    let sets = vec![
        TaskSet::try_from_tasks(committed_tasks()).unwrap(),
        TaskSet::try_from_tasks(vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::hi(1, 25, 3, 7).unwrap(),
            Task::lo(2, 20, 5).unwrap(),
            Task::lo(3, 15, 2).unwrap(),
        ])
        .unwrap(),
    ];
    for test in &tests {
        assert_zero_alloc_admission(test.as_ref());
        assert_zero_alloc_one_shot(test.as_ref(), &sets);
    }
    // The classic EDF baselines project through the demand kernel; they
    // have no native admission state (the clone-and-retest bridge
    // allocates by design), so only the one-shot path is pinned.
    assert_zero_alloc_one_shot(&ClassicEdf::own_level(), &sets);
    assert_zero_alloc_one_shot(&ClassicEdf::lo_mode(), &sets);
    assert_zero_alloc_warm_qpa();
    assert_zero_alloc_batched_blocks();
}
