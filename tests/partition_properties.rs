//! Property-based tests (proptest) on the partitioning engine and the
//! core data structures: structural invariants that must hold for *every*
//! input, not just generator-shaped ones.

use mcsched::analysis::{EdfVd, SchedulabilityTest};
use mcsched::core::{presets, Partition, PartitionStrategy};
use mcsched::model::{Task, TaskId, TaskSet};
use proptest::prelude::*;

/// An arbitrary valid task: period 2..=60, budgets inside it, optional
/// criticality/constrained deadline.
fn arb_task(id: u32) -> impl Strategy<Value = Task> {
    (2u64..=60, any::<bool>()).prop_flat_map(move |(period, is_hi)| {
        (1u64..=period, Just(period), Just(is_hi)).prop_flat_map(move |(c_lo, period, is_hi)| {
            if is_hi {
                (c_lo..=period, Just(period), Just(c_lo))
                    .prop_flat_map(move |(c_hi, period, c_lo)| {
                        (c_hi..=period).prop_map(move |d| {
                            Task::hi_constrained(id, period, c_lo, c_hi, d).expect("valid")
                        })
                    })
                    .boxed()
            } else {
                (c_lo..=period)
                    .prop_map(move |d| Task::lo_constrained(id, period, c_lo, d).expect("valid"))
                    .boxed()
            }
        })
    })
}

/// An arbitrary task set of 1..=8 tasks with distinct ids.
fn arb_taskset() -> impl Strategy<Value = TaskSet> {
    (1usize..=8).prop_flat_map(|n| {
        let tasks: Vec<_> = (0..n as u32).map(arb_task).collect();
        tasks.prop_map(|ts| TaskSet::try_from_tasks(ts).expect("distinct ids"))
    })
}

fn all_strategies() -> Vec<PartitionStrategy> {
    presets::all()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn partition_conserves_tasks(ts in arb_taskset(), m in 1usize..=4) {
        let test = EdfVd::new();
        for strategy in all_strategies() {
            if let Ok(p) = Partition::build(&strategy, &test, &ts, m) {
                // Every task appears exactly once.
                prop_assert_eq!(p.task_count(), ts.len());
                for t in &ts {
                    let procs_with_t = (0..m)
                        .filter(|&k| p.processor(k).unwrap().get(t.id()).is_some())
                        .count();
                    prop_assert_eq!(procs_with_t, 1, "{} duplicated or lost", t.id());
                }
            }
        }
    }

    #[test]
    fn partition_processors_pass_the_admission_test(ts in arb_taskset(), m in 1usize..=4) {
        let test = EdfVd::new();
        for strategy in all_strategies() {
            if let Ok(p) = Partition::build(&strategy, &test, &ts, m) {
                for proc in &p {
                    prop_assert!(test.is_schedulable(proc),
                        "strategy {} produced an inadmissible processor", strategy.name());
                }
            }
        }
    }

    #[test]
    fn partition_failure_names_a_real_task(ts in arb_taskset(), m in 1usize..=3) {
        let test = EdfVd::new();
        for strategy in all_strategies() {
            if let Err(e) = Partition::build(&strategy, &test, &ts, m) {
                prop_assert!(ts.get(e.task).is_some(), "error names unknown task {}", e.task);
                prop_assert_eq!(e.processors, m);
                prop_assert!(e.placed < ts.len());
            }
        }
    }

    #[test]
    fn single_processor_equals_uniprocessor_test(ts in arb_taskset()) {
        let test = EdfVd::new();
        for strategy in all_strategies() {
            let partitioned = Partition::build(&strategy, &test, &ts, 1).is_ok();
            prop_assert_eq!(partitioned, test.is_schedulable(&ts),
                "m = 1 must degenerate to the uniprocessor test ({})", strategy.name());
        }
    }

    #[test]
    fn allocation_orders_are_permutations(ts in arb_taskset()) {
        use mcsched::core::AllocationOrder;
        for order in [
            AllocationOrder::CriticalityAware { sorted: true },
            AllocationOrder::CriticalityAware { sorted: false },
            AllocationOrder::CriticalityUnaware,
            AllocationOrder::HeavyLcFirst { threshold_millis: 500 },
        ] {
            let seq = order.sequence(&ts);
            prop_assert_eq!(seq.len(), ts.len());
            let mut ids: Vec<u32> = seq.iter().map(|t| t.id().0).collect();
            ids.sort_unstable();
            let mut expect: Vec<u32> = ts.iter().map(|t| t.id().0).collect();
            expect.sort_unstable();
            prop_assert_eq!(ids, expect);
        }
    }

    #[test]
    fn criticality_aware_orders_hc_first(ts in arb_taskset()) {
        use mcsched::core::AllocationOrder;
        let seq = AllocationOrder::CriticalityAware { sorted: true }.sequence(&ts);
        let first_lc = seq.iter().position(|t| t.criticality().is_low());
        if let Some(pos) = first_lc {
            prop_assert!(seq[pos..].iter().all(|t| t.criticality().is_low()),
                "an HC task appeared after an LC task");
        }
    }

    #[test]
    fn sorted_orders_are_nonincreasing_within_class(ts in arb_taskset()) {
        use mcsched::core::AllocationOrder;
        let seq = AllocationOrder::CriticalityUnaware.sequence(&ts);
        for w in seq.windows(2) {
            prop_assert!(w[0].utilization_own() >= w[1].utilization_own() - 1e-12);
        }
    }

    #[test]
    fn utilization_difference_nonnegative(ts in arb_taskset()) {
        prop_assert!(ts.utilization_difference() >= -1e-12);
        let u = ts.system_utilization();
        prop_assert!(u.u_hh + 1e-12 >= u.u_hl, "C^H ≥ C^L must imply U_HH ≥ U_HL");
    }

    #[test]
    fn partition_error_is_deterministic(ts in arb_taskset(), m in 1usize..=3) {
        let test = EdfVd::new();
        let a = Partition::build(&presets::cu_udp(), &test, &ts, m);
        let b = Partition::build(&presets::cu_udp(), &test, &ts, m);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn processor_of_finds_everything_in_a_big_partition() {
    // Deterministic companion to the proptests: a 12-task set on 4
    // processors, checked id by id.
    let tasks: Vec<Task> = (0..12u32)
        .map(|i| {
            if i % 2 == 0 {
                Task::hi(i, 20 + u64::from(i), 1, 2 + u64::from(i % 3)).unwrap()
            } else {
                Task::lo(i, 25 + u64::from(i), 2).unwrap()
            }
        })
        .collect();
    let ts = TaskSet::try_from_tasks(tasks).unwrap();
    let p = Partition::build(&presets::ca_udp(), &EdfVd::new(), &ts, 4).unwrap();
    for i in 0..12u32 {
        assert!(p.processor_of(TaskId(i)).is_some());
    }
    assert!(p.processor_of(TaskId(99)).is_none());
}
