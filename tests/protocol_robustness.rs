//! Property tests for protocol v1 under transport damage: truncating
//! or corrupting a valid frame must yield a typed in-band error (or a
//! changed-but-valid request), never a panic or a desynced session.
//!
//! The harness mangles the middle frame of a five-request session and
//! drives the damaged byte stream through the real connection loop
//! ([`serve_connection`]): every reply line must still parse as a typed
//! reply, and the *undamaged* requests after the mangled one must be
//! answered on their own ids — the state machine resynchronizes at the
//! next newline no matter what the damage did.

use mcsched::exp::protocol::{parse_envelope, parse_reply, Envelope, Reply, Request, RequestId};
use mcsched::exp::server::{serve_connection, ServerConfig};
use mcsched::model::Task;
use mcsched_core::AlgorithmRegistry;
use proptest::prelude::*;
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// A deterministic valid session script: open, admit, admit, query,
/// close — all id-tagged. Returns the rendered lines.
fn script(seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let algorithm = ["CU-UDP-EDF-VD", "CU-UDP-ECDF", "CA-UDP-AMC-rtb"][(seed % 3) as usize];
    let mut task = |id: u32| -> Task {
        let period = rng.random_range(10..100u64);
        let lo = rng.random_range(1..=period / 4).max(1);
        if rng.random_bool(0.5) {
            let hi = rng.random_range(lo..=period / 2).max(lo);
            Task::hi(id, period, lo, hi).expect("valid HC task")
        } else {
            Task::lo(id, period, lo).expect("valid LC task")
        }
    };
    let requests = vec![
        Request::OpenSession {
            algorithm: algorithm.to_owned(),
            m: 2,
            session: None,
        },
        Request::Admit {
            task: task(1),
            op_id: None,
        },
        Request::Admit {
            task: task(2),
            op_id: None,
        },
        Request::Query { probe: None },
        Request::Close,
    ];
    requests
        .into_iter()
        .enumerate()
        .map(|(i, r)| Envelope::with_id(RequestId::Num(i as u64), r).render() + "\n")
        .collect()
}

/// Damages `line` (newline-terminated) in place: either truncates the
/// frame body at `pos` or overwrites one body byte with `byte`. The
/// trailing newline is preserved — this models frame *content* damage,
/// not lost framing (torn tails are the chaos harness's job).
fn mangle(line: &str, truncate: bool, pos: usize, byte: u8) -> String {
    let body = line.trim_end_matches('\n');
    let cut = pos % body.len().max(1);
    let mut damaged: Vec<u8> = if truncate {
        body.as_bytes()[..cut].to_vec()
    } else {
        let mut bytes = body.as_bytes().to_vec();
        // Never inject a newline: that would *split* the frame, which
        // is a different (also handled) failure mode than corruption.
        bytes[cut] = if byte == b'\n' { 0 } else { byte };
        bytes
    };
    damaged.push(b'\n');
    String::from_utf8_lossy(&damaged).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn parser_survives_any_frame_damage(
        seed in any::<u64>(),
        truncate in any::<bool>(),
        pos in 0..4096usize,
        byte in any::<u32>(),
    ) {
        for line in script(seed) {
            let damaged = mangle(&line, truncate, pos, byte as u8);
            // Ok (damage produced another valid request) and Err (typed
            // parse failure) are both acceptable; only a panic is not.
            let _ = parse_envelope(damaged.trim_end());
        }
    }

    #[test]
    fn session_resynchronizes_after_a_damaged_frame(
        seed in any::<u64>(),
        truncate in any::<bool>(),
        pos in 0..4096usize,
        byte in any::<u32>(),
    ) {
        let registry = AlgorithmRegistry::standard();
        let config = ServerConfig::default();
        let lines = script(seed);
        let mut input = String::new();
        for (i, line) in lines.iter().enumerate() {
            if i == 1 {
                input.push_str(&mangle(line, truncate, pos, byte as u8));
            } else {
                input.push_str(line);
            }
        }

        let mut output = Vec::new();
        serve_connection(&registry, &config, input.as_bytes(), &mut output);
        let text = String::from_utf8(output).expect("replies are UTF-8");

        // Every reply line is a typed protocol reply — the server never
        // emits garbage in response to garbage.
        let replies: Vec<(Option<RequestId>, Reply)> = text
            .lines()
            .map(|line| {
                parse_reply(line)
                    .unwrap_or_else(|e| panic!("untyped reply line: {e}\n{line}"))
            })
            .collect();

        // The damaged frame cannot desync the stream: the untouched
        // requests after it are answered on their own ids with their
        // own reply types.
        let find = |id: u64| {
            replies
                .iter()
                .find(|(rid, _)| *rid == Some(RequestId::Num(id)))
                .map(|(_, reply)| reply)
        };
        prop_assert!(
            matches!(find(0), Some(Reply::Session(_))),
            "open answered: {text}"
        );
        prop_assert!(
            matches!(find(2), Some(Reply::Admit(_))),
            "post-damage admit answered: {text}"
        );
        prop_assert!(
            matches!(find(3), Some(Reply::Query(_))),
            "post-damage query answered: {text}"
        );
        prop_assert!(
            matches!(find(4), Some(Reply::Closed { .. })),
            "close answered: {text}"
        );
    }
}
