//! Property-based tests on the task-set generator: structural guarantees
//! over the whole parameter space, not just the paper's grid.

use mcsched::gen::{
    bucket_of, paired_utilizations, utilization_grid, uunifast, uunifast_bounded, DeadlineModel,
    GridPoint, TaskSetSpec,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn uunifast_always_sums(n in 1usize..24, total in 0.01f64..8.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = uunifast(&mut rng, n, total);
        prop_assert_eq!(u.len(), n);
        let sum: f64 = u.iter().sum();
        prop_assert!((sum - total).abs() < 1e-9);
        prop_assert!(u.iter().all(|&x| x >= -1e-12));
    }

    #[test]
    fn uunifast_bounded_respects_everything(
        n in 1usize..24,
        frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        // total interpolates between the feasibility extremes.
        let (umin, umax) = (0.001f64, 0.99f64);
        let total = n as f64 * (umin + frac * (umax - umin));
        let mut rng = StdRng::seed_from_u64(seed);
        let u = uunifast_bounded(&mut rng, n, total, umin, umax)
            .expect("feasible by construction");
        prop_assert_eq!(u.len(), n);
        let sum: f64 = u.iter().sum();
        prop_assert!((sum - total).abs() < 1e-6, "sum {sum} != {total}");
        for &x in &u {
            prop_assert!(x >= umin - 1e-9, "{x} below umin");
            prop_assert!(x <= umax + 1e-9, "{x} above umax");
        }
    }

    #[test]
    fn uunifast_bounded_rejects_infeasible(
        n in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert!(uunifast_bounded(&mut rng, n, n as f64 * 0.99 + 0.5, 0.001, 0.99).is_none());
        prop_assert!(uunifast_bounded(&mut rng, n, -0.5, 0.001, 0.99).is_none());
    }

    #[test]
    fn paired_utilizations_invariants(
        n in 1usize..16,
        hi_frac in 0.05f64..1.0,
        lo_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let total_hi = n as f64 * 0.01 + hi_frac * (n as f64 * 0.98 - n as f64 * 0.01);
        let total_lo = total_hi * lo_frac;
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(pairs) =
            paired_utilizations(&mut rng, n, total_lo, total_hi, 0.001, 0.99, 500)
        {
            let sl: f64 = pairs.iter().map(|p| p.0).sum();
            let sh: f64 = pairs.iter().map(|p| p.1).sum();
            prop_assert!((sh - total_hi).abs() < 1e-6);
            prop_assert!((sl - total_lo).abs() < 1e-5, "lo sum {sl} != {total_lo}");
            for &(l, h) in &pairs {
                prop_assert!(l <= h + 1e-9);
                prop_assert!(h <= 0.99 + 1e-9);
            }
        }
    }

    #[test]
    fn generated_sets_always_satisfy_the_model(
        m in 1usize..=8,
        u_hh_pct in 10u32..=90,
        seed in any::<u64>(),
    ) {
        let u_hh = f64::from(u_hh_pct) / 100.0;
        let point = GridPoint { u_hh, u_hl: u_hh / 2.0, u_ll: (0.95 - u_hh / 2.0).clamp(0.05, 0.5) };
        for deadlines in [DeadlineModel::Implicit, DeadlineModel::Constrained] {
            let spec = TaskSetSpec::paper_defaults(m, point, deadlines);
            let mut rng = StdRng::seed_from_u64(seed);
            if let Ok(ts) = spec.generate(&mut rng) {
                prop_assert!(ts.validate().is_ok());
                // The paper draws n from [m+1, 5m].
                prop_assert!(ts.len() > m && ts.len() <= 5 * m);
                for t in &ts {
                    prop_assert!(t.wcet_lo() <= t.wcet_hi());
                    prop_assert!(t.wcet_hi() <= t.deadline());
                    prop_assert!(t.deadline() <= t.period());
                    prop_assert!((10..=500).contains(&t.period().as_ticks()));
                }
                let u = ts.system_utilization();
                // ⌈u·T⌉ only rounds up: the targets are lower bounds.
                prop_assert!(u.u_hh >= u_hh * m as f64 - 1e-6);
            }
        }
    }
}

#[test]
fn grid_buckets_cover_the_paper_range() {
    let grid = utilization_grid();
    let buckets: std::collections::BTreeSet<u32> = grid.iter().map(|p| bucket_of(p).0).collect();
    // The paper's plots span UB from light load to 0.99.
    assert!(buckets.contains(&10) || buckets.contains(&15));
    assert!(buckets.contains(&99));
    // Every decade bucket between 0.3 and 0.9 exists.
    for b in [30u32, 40, 50, 60, 70, 80, 90] {
        assert!(buckets.contains(&b), "missing UB bucket {b}");
    }
}

#[test]
fn grid_points_are_generatable_at_paper_scale() {
    // Every grid point must produce at least one feasible task set at
    // m = 2 (the paper generates 1000 per bucket across such points).
    let mut failures = Vec::new();
    for (i, point) in utilization_grid().into_iter().enumerate() {
        let spec = TaskSetSpec::paper_defaults(2, point, DeadlineModel::Implicit);
        let mut rng = StdRng::seed_from_u64(i as u64);
        let ok = (0..8).any(|_| spec.generate(&mut rng).is_ok());
        if !ok {
            failures.push(point);
        }
    }
    assert!(
        failures.is_empty(),
        "ungeneratable grid points: {failures:?}"
    );
}
