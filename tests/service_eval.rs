//! End-to-end checks of the `mcexp eval` JSONL service surface: a
//! three-line request stream produces one valid JSON verdict per line
//! (validated with `serde_json`'s parser), verdicts carry the partition
//! witness, and unknown algorithm names are answered with the registry's
//! available names.

use mcsched::exp::service::{handle_request_line, run_eval};
use mcsched::prelude::*;
use serde_json::Value;

const REQUESTS: [&str; 3] = [
    r#"{"algorithm":"CU-UDP-EDF-VD","m":2,"tasks":[{"id":0,"period":10,"criticality":"HI","wcet_lo":2,"wcet_hi":4},{"id":1,"period":20,"wcet_lo":6}]}"#,
    r#"{"algorithm":"CA-UDP-AMC","m":1,"tasks":[{"id":0,"period":10,"criticality":"HI","wcet_lo":5,"wcet_hi":9},{"id":1,"period":10,"criticality":"HI","wcet_lo":5,"wcet_hi":9}]}"#,
    r#"{"algorithm":"ECA-Wu-F-EY","m":2,"tasks":[{"id":0,"period":10,"criticality":"HI","wcet_lo":2,"wcet_hi":4},{"id":1,"period":10,"wcet_lo":6}]}"#,
];

#[test]
fn three_line_stream_yields_three_json_verdicts() {
    let registry = AlgorithmRegistry::standard();
    let input = REQUESTS.join("\n");
    let mut output = Vec::new();
    let summary = run_eval(&registry, input.as_bytes(), &mut output).unwrap();
    assert_eq!(summary.requests, 3);
    assert_eq!(summary.errors, 0);

    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);
    for (request, line) in REQUESTS.iter().zip(&lines) {
        // Each verdict must itself be valid JSON — checked with the
        // serde_json parser, not string matching.
        let verdict = serde_json::parse_value(line)
            .unwrap_or_else(|e| panic!("invalid verdict JSON: {e}\n{line}"));
        let requested = serde_json::parse_value(request).unwrap();
        assert_eq!(
            verdict.get("algorithm").and_then(Value::as_str),
            requested.get("algorithm").and_then(Value::as_str)
        );
        assert_eq!(
            verdict.get("m").and_then(Value::as_u64),
            requested.get("m").and_then(Value::as_u64)
        );
        assert!(verdict
            .get("schedulable")
            .and_then(Value::as_bool)
            .is_some());
    }

    // First request is schedulable on 2 processors: the witness accounts
    // for every task exactly once.
    let first = serde_json::parse_value(lines[0]).unwrap();
    assert_eq!(
        first.get("schedulable").and_then(Value::as_bool),
        Some(true)
    );
    let witness = first.get("partition").and_then(Value::as_seq).unwrap();
    assert_eq!(witness.len(), 2);
    let mut ids: Vec<u64> = witness
        .iter()
        .flat_map(|p| p.as_seq().unwrap().iter().map(|v| v.as_u64().unwrap()))
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 1]);

    // Second request (two heavy HC tasks on one processor) is rejected
    // with the failing task named.
    let second = serde_json::parse_value(lines[1]).unwrap();
    assert_eq!(
        second.get("schedulable").and_then(Value::as_bool),
        Some(false)
    );
    assert!(second.get("partition").is_some_and(Value::is_null));
    assert!(second
        .get("rejected_task")
        .and_then(Value::as_u64)
        .is_some());
}

#[test]
fn unknown_algorithm_error_lists_registry_names() {
    let registry = AlgorithmRegistry::standard();
    let (verdict, errored) =
        handle_request_line(&registry, r#"{"algorithm":"NOT-A-THING","m":2,"tasks":[]}"#);
    assert!(errored);
    let parsed = serde_json::parse_value(&verdict).unwrap();
    let message = parsed.get("error").and_then(Value::as_str).unwrap();
    for expected in registry.algorithm_names() {
        assert!(
            message.contains(&expected),
            "error must list {expected}: {message}"
        );
    }
}

#[test]
fn request_ids_echo_on_verdicts_and_errors() {
    let registry = AlgorithmRegistry::standard();

    let (verdict, errored) = handle_request_line(
        &registry,
        r#"{"v":1,"id":7,"algorithm":"CU-UDP-EDF-VD","m":1,"tasks":[{"id":0,"period":10,"wcet_lo":2}]}"#,
    );
    assert!(!errored);
    let parsed = serde_json::parse_value(&verdict).unwrap();
    assert_eq!(parsed.get("type").and_then(Value::as_str), Some("eval"));
    assert_eq!(parsed.get("v").and_then(Value::as_u64), Some(1));
    assert_eq!(parsed.get("id").and_then(Value::as_u64), Some(7));

    // Errors carry the id too — even when the request itself is broken.
    let (verdict, errored) = handle_request_line(
        &registry,
        r#"{"id":"req-3","algorithm":"NOPE","m":1,"tasks":[]}"#,
    );
    assert!(errored);
    let parsed = serde_json::parse_value(&verdict).unwrap();
    assert_eq!(parsed.get("type").and_then(Value::as_str), Some("error"));
    assert_eq!(parsed.get("id").and_then(Value::as_str), Some("req-3"));

    let (verdict, errored) = handle_request_line(&registry, r#"{"id":9,"m":0}"#);
    assert!(errored);
    let parsed = serde_json::parse_value(&verdict).unwrap();
    assert_eq!(parsed.get("id").and_then(Value::as_u64), Some(9));
}

#[test]
fn verdicts_agree_with_direct_registry_calls() {
    let registry = AlgorithmRegistry::standard();
    for request in REQUESTS {
        let parsed = serde_json::parse_value(request).unwrap();
        let name = parsed.get("algorithm").and_then(Value::as_str).unwrap();
        let m = parsed.get("m").and_then(Value::as_u64).unwrap() as usize;
        let algo = registry.parse(name).unwrap();
        // Rebuild the task set through the facade API.
        let mut ts = TaskSet::new();
        for tv in parsed.get("tasks").and_then(Value::as_seq).unwrap() {
            let id = tv.get("id").and_then(Value::as_u64).unwrap() as u32;
            let period = tv.get("period").and_then(Value::as_u64).unwrap();
            let wcet_lo = tv.get("wcet_lo").and_then(Value::as_u64).unwrap();
            let task = match tv.get("criticality").and_then(Value::as_str) {
                Some("HI") => Task::hi(
                    id,
                    period,
                    wcet_lo,
                    tv.get("wcet_hi").and_then(Value::as_u64).unwrap(),
                ),
                _ => Task::lo(id, period, wcet_lo),
            }
            .unwrap();
            ts.try_push(task).unwrap();
        }
        let (verdict, errored) = handle_request_line(&registry, request);
        assert!(!errored);
        let verdict = serde_json::parse_value(&verdict).unwrap();
        assert_eq!(
            verdict.get("schedulable").and_then(Value::as_bool),
            Some(algo.accepts(&ts, m)),
            "{name}"
        );
    }
}
