//! The batch-engine rewrite must not move a single bit: sweep results
//! are pinned against an independent sequential reference implementation
//! of the historical per-figure loop (same per-item RNG streams, no
//! engine), and the engine's results are invariant in the thread count.

use mcsched::exp::algorithms::fig3_lineup;
use mcsched::exp::engine::item_rng;
use mcsched::exp::sweep::{acceptance_sweep, SweepConfig};
use mcsched::gen::{bucketed_grid, DeadlineModel, TaskSetSpec};
use mcsched::prelude::*;
use rand::RngExt;

/// The pre-engine acceptance sweep, reimplemented sequentially exactly as
/// the historical per-bucket `std::thread::scope` loop computed it: for
/// each bucket, `sets_per_bucket` items with per-(bucket, index) RNG
/// streams, eight generation retries per item, skipped items dropped
/// from both counts.
fn reference_sweep(config: &SweepConfig, algorithms: &[AlgoBox]) -> Vec<(String, Vec<(f64, f64)>)> {
    let mut curves: Vec<(String, Vec<(f64, f64)>)> = algorithms
        .iter()
        .map(|a| (a.name().to_owned(), Vec::new()))
        .collect();
    for (bucket, points) in bucketed_grid() {
        if bucket.0 < config.min_bucket_percent {
            continue;
        }
        let mut counts = vec![0usize; algorithms.len()];
        let mut generated = 0usize;
        for index in 0..config.sets_per_bucket {
            let mut rng = item_rng(config.seed, u64::from(bucket.0), index);
            let mut ts = None;
            for _ in 0..8 {
                let point = points[rng.random_range(0..points.len())];
                let spec = TaskSetSpec::paper_defaults(config.m, point, config.deadlines)
                    .with_p_h(config.p_h);
                if let Ok(generated_ts) = spec.generate(&mut rng) {
                    ts = Some(generated_ts);
                    break;
                }
            }
            let Some(ts) = ts else { continue };
            generated += 1;
            for (a, slot) in algorithms.iter().zip(counts.iter_mut()) {
                if a.accepts(&ts, config.m) {
                    *slot += 1;
                }
            }
        }
        if generated == 0 {
            continue;
        }
        for ((_, curve), count) in curves.iter_mut().zip(&counts) {
            curve.push((bucket.as_f64(), *count as f64 / generated as f64));
        }
    }
    curves
}

fn small_config(threads: usize) -> SweepConfig {
    let mut config = SweepConfig::paper(2, DeadlineModel::Implicit, 12, 0xBEEF);
    config.threads = threads;
    config.min_bucket_percent = 40;
    config
}

#[test]
fn sweep_is_bit_identical_to_the_pre_engine_loop() {
    let lineup = fig3_lineup();
    for threads in [1, 3] {
        let config = small_config(threads);
        let result = acceptance_sweep(&config, &lineup);
        let reference = reference_sweep(&config, &lineup);
        assert_eq!(result.curves.len(), reference.len());
        for (curve, (name, points)) in result.curves.iter().zip(&reference) {
            assert_eq!(&curve.algorithm, name);
            assert_eq!(curve.points.len(), points.len(), "{name}");
            for (&(ub_a, r_a), &(ub_b, r_b)) in curve.points.iter().zip(points) {
                assert_eq!(ub_a.to_bits(), ub_b.to_bits(), "{name} UB");
                assert_eq!(
                    r_a.to_bits(),
                    r_b.to_bits(),
                    "{name} ratio at UB={ub_a} (threads={threads})"
                );
            }
        }
    }
}

#[test]
fn sweep_is_invariant_in_thread_count() {
    let lineup = fig3_lineup();
    let sequential = acceptance_sweep(&small_config(1), &lineup);
    for threads in [2, 4, 16] {
        let parallel = acceptance_sweep(&small_config(threads), &lineup);
        // Everything except the recorded thread count must match exactly.
        assert_eq!(sequential.curves, parallel.curves, "threads={threads}");
    }
}

#[test]
fn worker_pools_are_the_only_thread_scope_call_sites() {
    // The acceptance criterion "no ad-hoc `std::thread::scope` call
    // sites" — enforced structurally over the workspace sources so a
    // regression fails the suite, not just review. Exactly two places
    // own a worker pool: the batch engine (engine.rs) and the admission
    // server's accept/serve pool (server.rs). The lint crate is skipped:
    // it implements the token-aware `scoped-threads` rule (which
    // enforces this same invariant while ignoring comments and strings),
    // so its rule table, docs, and seeded fixtures all mention the
    // pattern by name.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut offenders = Vec::new();
    let mut stack = vec![root.join("crates"), root.join("src")];
    while let Some(dir) = stack.pop() {
        if dir == root.join("crates/lint") {
            continue;
        }
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs")
                && path
                    .file_name()
                    .is_some_and(|f| f != "engine.rs" && f != "server.rs")
                && std::fs::read_to_string(&path)
                    .unwrap()
                    .contains("thread::scope")
            {
                offenders.push(path);
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "thread::scope outside engine.rs/server.rs: {offenders:?}"
    );
}
