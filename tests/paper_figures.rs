//! Exact reproductions of the §III worked examples (Figs. 1 and 2 of the
//! paper): the allocation traces, the failure/success outcomes and the
//! mechanism behind them.

use mcsched::analysis::EdfVd;
use mcsched::core::{presets, PartitionedAlgorithm};
use mcsched::model::{Task, TaskId, TaskSet};

fn fig1_set() -> TaskSet {
    TaskSet::try_from_tasks(vec![
        Task::hi(1, 100, 30, 60).unwrap(), // u = .30/.60, diff .30
        Task::hi(2, 100, 5, 55).unwrap(),  // u = .05/.55, diff .50
        Task::hi(3, 100, 25, 30).unwrap(), // u = .25/.30, diff .05
        Task::lo(4, 100, 58).unwrap(),     // u = .58
    ])
    .unwrap()
}

fn fig2_set() -> TaskSet {
    TaskSet::try_from_tasks(vec![
        Task::hi(1, 200, 4, 120).unwrap(), // u = .02/.60
        Task::hi(2, 200, 2, 120).unwrap(), // u = .01/.60
        Task::hi(3, 200, 37, 40).unwrap(), // u = .185/.20
        Task::hi(4, 200, 39, 40).unwrap(), // u = .195/.20
        Task::lo(5, 200, 100).unwrap(),    // u = .50
    ])
    .unwrap()
}

#[test]
fn fig1_ca_wu_f_fails_on_the_lc_task() {
    let algo = PartitionedAlgorithm::new(presets::ca_wu_f(), EdfVd::new());
    let err = algo.partition(&fig1_set(), 2).unwrap_err();
    // All three HC tasks place; the LC task τ4 strands.
    assert_eq!(err.task, TaskId(4));
    assert_eq!(err.placed, 3);
}

#[test]
fn fig1_ca_udp_succeeds_with_the_papers_allocation() {
    let algo = PartitionedAlgorithm::new(presets::ca_udp(), EdfVd::new());
    let p = algo.partition(&fig1_set(), 2).unwrap();
    // Balancing the difference pairs τ1 (diff .30) with τ3 (diff .05) and
    // leaves τ2 (diff .50) alone; τ4 then fits beside τ2 — exactly the
    // paper's narrative ("τ1 and τ3 on one processor, τ2 on the other,
    // τ4 with τ2").
    assert_eq!(p.processor_of(TaskId(1)), p.processor_of(TaskId(3)));
    assert_eq!(p.processor_of(TaskId(4)), p.processor_of(TaskId(2)));
    assert_ne!(p.processor_of(TaskId(1)), p.processor_of(TaskId(2)));
}

#[test]
fn fig1_mechanism_gap_bound() {
    // The paper explains the failure through the EDF-VD inequality
    // U_LL ≤ (1−U_HH)/(1−(U_HH−U_HL)). Under CA-Wu-F both processors end
    // with U_HH = 0.60/0.85 and identical U_HL = 0.30, leaving gap bounds
    // ≈ 0.571 and ≈ 0.333 — both below τ4's 0.58.
    let phi1 = TaskSet::try_from_tasks(vec![
        Task::hi(1, 100, 30, 60).unwrap(),
        Task::lo(4, 100, 58).unwrap(),
    ])
    .unwrap();
    let phi2 = TaskSet::try_from_tasks(vec![
        Task::hi(2, 100, 5, 55).unwrap(),
        Task::hi(3, 100, 25, 30).unwrap(),
        Task::lo(4, 100, 58).unwrap(),
    ])
    .unwrap();
    let t = EdfVd::new();
    assert!(!t.gap_form_accepts(&phi1));
    assert!(!t.gap_form_accepts(&phi2));
}

#[test]
fn fig2_ca_udp_fails_on_the_heavy_lc_task() {
    let algo = PartitionedAlgorithm::new(presets::ca_udp(), EdfVd::new());
    let err = algo.partition(&fig2_set(), 2).unwrap_err();
    assert_eq!(err.task, TaskId(5));
    assert_eq!(err.placed, 4, "all four HC tasks placed first");
}

#[test]
fn fig2_ca_udp_intermediate_allocation_matches_paper() {
    // Verify the CA-UDP HC allocation that strands τ5: {τ1, τ4} vs
    // {τ2, τ3} (the paper's "τ1 and τ3 to φ1, τ2 and τ4 to φ2" modulo
    // processor naming — the pairing is what matters).
    let hc_only = TaskSet::try_from_tasks(vec![
        Task::hi(1, 200, 4, 120).unwrap(),
        Task::hi(2, 200, 2, 120).unwrap(),
        Task::hi(3, 200, 37, 40).unwrap(),
        Task::hi(4, 200, 39, 40).unwrap(),
    ])
    .unwrap();
    let algo = PartitionedAlgorithm::new(presets::ca_udp(), EdfVd::new());
    let p = algo.partition(&hc_only, 2).unwrap();
    // τ3 joins the *other* heavy task than τ4 (worst-fit on difference
    // spreads the two heavies and then packs against the smaller diff).
    assert_ne!(p.processor_of(TaskId(1)), p.processor_of(TaskId(2)));
    assert_ne!(p.processor_of(TaskId(3)), p.processor_of(TaskId(4)));
}

#[test]
fn fig2_cu_udp_succeeds_placing_the_lc_task_early() {
    let algo = PartitionedAlgorithm::new(presets::cu_udp(), EdfVd::new());
    let p = algo.partition(&fig2_set(), 2).unwrap();
    // τ5 shares a processor with exactly one of the heavy HC tasks
    // (τ1 or τ2), and the remaining three HC tasks pack on the other.
    let p5 = p.processor_of(TaskId(5)).unwrap();
    let heavy_with_5 = [1u32, 2]
        .iter()
        .filter(|&&id| p.processor_of(TaskId(id)) == Some(p5))
        .count();
    assert_eq!(heavy_with_5, 1);
    let other = 1 - p5;
    assert_eq!(p.processor(other).unwrap().len(), 3);
    // Every processor passes the admission test, of course.
    assert!(mcsched::core::verify_partition(&p, &EdfVd::new()));
}

#[test]
fn fig2_cu_ordering_places_tau5_third() {
    use mcsched::core::AllocationOrder;
    let seq = AllocationOrder::CriticalityUnaware.sequence(&fig2_set());
    let ids: Vec<u32> = seq.iter().map(|t| t.id().0).collect();
    // Own-level utilizations: τ1 .60, τ2 .60, τ5 .50, τ3 .20, τ4 .20.
    assert_eq!(ids, vec![1, 2, 5, 3, 4]);
}

#[test]
fn examples_survive_the_simulator() {
    // Execute both successful partitions under sustained overruns: the
    // admitted allocations must hold at runtime.
    use mcsched::sim::{PartitionedSimulator, Policy, Scenario};
    for (strategy, ts) in [
        (presets::ca_udp(), fig1_set()),
        (presets::cu_udp(), fig2_set()),
    ] {
        let algo = PartitionedAlgorithm::new(strategy, EdfVd::new());
        let partition = algo.partition(&ts, 2).unwrap();
        let sim = PartitionedSimulator::from_partition(&partition, |proc| {
            let x = EdfVd::new().scaling_factor(proc).expect("admitted");
            Policy::edf_vd_scaled(proc, x)
        });
        for r in sim.run(&Scenario::all_hi(), 10_000) {
            assert!(r.is_success(), "{:?}", r.misses());
        }
    }
}
