//! # mcsched-bench
//!
//! Shared fixtures for the criterion benchmarks that regenerate the
//! paper's figures (reduced sample sizes — the full-scale regeneration
//! lives in the `mcexp` binary of `mcsched-exp`) and micro-benchmark the
//! schedulability tests and partitioners.
//!
//! Each `benches/figN_*.rs` target measures the wall-clock cost of the
//! corresponding sweep *and* prints the resulting series, so
//! `cargo bench` reproduces the same rows the paper reports (at bench
//! scale).

use mcsched_gen::{DeadlineModel, GridPoint, TaskSetSpec};
use mcsched_model::TaskSet;
use rand::{rngs::StdRng, SeedableRng};

/// Sets per `UB` bucket used by the figure benches (full runs use 1000).
pub const BENCH_SETS_PER_BUCKET: usize = 40;

/// The fixed seed all benches share.
pub const BENCH_SEED: u64 = 2017;

/// A deterministic batch of generated task sets at one grid point.
pub fn fixture_sets(
    m: usize,
    point: GridPoint,
    deadlines: DeadlineModel,
    count: usize,
) -> Vec<TaskSet> {
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let spec = TaskSetSpec::paper_defaults(m, point, deadlines);
    let mut out = Vec::with_capacity(count);
    let mut guard = 0;
    while out.len() < count && guard < count * 20 {
        guard += 1;
        if let Ok(ts) = spec.generate(&mut rng) {
            out.push(ts);
        }
    }
    out
}

/// The mid-load grid point used by the micro-benches (interesting but not
/// degenerate: roughly half the sets are schedulable there).
pub fn midload_point() -> GridPoint {
    GridPoint {
        u_hh: 0.7,
        u_hl: 0.35,
        u_ll: 0.4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = fixture_sets(2, midload_point(), DeadlineModel::Implicit, 5);
        let b = fixture_sets(2, midload_point(), DeadlineModel::Implicit, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
    }
}
