//! Micro-benchmarks of the uniprocessor schedulability tests on
//! generator-shaped task sets (the inner loop of every sweep).
//!
//! Two layers:
//!
//! * `uniprocessor_tests` — every test through its public
//!   `is_schedulable` entry point (which now draws scratch from the
//!   thread-local workspace pool);
//! * `amcmax_streaming` — AMC-max on large sets (n ≥ 20 tasks, the
//!   acceptance criterion of the zero-allocation milestone): the retained
//!   seed implementation (materialise + sort + dedup candidates, per-call
//!   vectors) vs the streaming workspace path, verdicts asserted
//!   bit-identical before any measurement;
//! * `amc_rtb_batched` — AMC-rtb through the SoA lane kernels: the
//!   retained scalar seed (per-task `div_ceil` recurrences over `&[Task]`)
//!   vs the workspace path (fast-kernel certificate, reciprocal division,
//!   small-set scalar route / multi-block Jacobi lanes), verdicts asserted
//!   bit-identical before any measurement;
//! * `vdtune_kernel` — the EY / ECDF tuners: the retained seed stack
//!   (flat per-call QPA from the busy-window bound) vs the incremental
//!   demand kernel (warm-resumed fixpoints + memoised violation
//!   anchors), verdicts asserted bit-identical before any measurement;
//! * `demand_soa` — the same tuners through the SoA demand lanes
//!   (certificate-gated `const FAST` blocks, reciprocal floor division,
//!   branch-free per-point lane sweeps) on admission-sized and n ≥ 20
//!   shapes, verdicts asserted bit-identical before any measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcsched_analysis::amc::reference;
use mcsched_analysis::vdtune::reference as vd_reference;
use mcsched_analysis::{AmcMax, AmcRtb, AnalysisWorkspace, Ecdf, EdfVd, Ey, SchedulabilityTest};
use mcsched_bench::{fixture_sets, midload_point, BENCH_SEED};
use mcsched_exp::analysis_perf::uniprocessor_corpus;
use mcsched_gen::{DeadlineModel, GridPoint, TaskSetSpec};
use mcsched_model::TaskSet;
use rand::{rngs::StdRng, SeedableRng};

fn bench_tests(c: &mut Criterion) {
    let sets = fixture_sets(1, midload_point(), DeadlineModel::Implicit, 32);
    let constrained = fixture_sets(1, midload_point(), DeadlineModel::Constrained, 32);
    let mut group = c.benchmark_group("uniprocessor_tests");
    let tests: Vec<(&str, Box<dyn SchedulabilityTest>)> = vec![
        ("EDF-VD", Box::new(EdfVd::new())),
        ("EY", Box::new(Ey::new())),
        ("ECDF", Box::new(Ecdf::new())),
        ("AMC-rtb", Box::new(AmcRtb::new())),
        ("AMC-max", Box::new(AmcMax::new())),
    ];
    for (name, test) in &tests {
        group.bench_with_input(BenchmarkId::new("implicit", name), test, |b, test| {
            b.iter(|| {
                sets.iter()
                    .filter(|ts| test.is_schedulable(std::hint::black_box(ts)))
                    .count()
            });
        });
        group.bench_with_input(BenchmarkId::new("constrained", name), test, |b, test| {
            b.iter(|| {
                constrained
                    .iter()
                    .filter(|ts| test.is_schedulable(std::hint::black_box(ts)))
                    .count()
            });
        });
    }
    group.finish();
}

/// Generator-shaped sets with at least 20 tasks at **uniprocessor** load
/// (the shape AMC-max sees inside the partitioning inner loop — an
/// `m`-processor fixture would trip the structural overload rejection and
/// measure only the fast-reject path).
///
/// The load point is well below `midload_point()`: with 20–40 tasks on
/// one processor, DM + AMC-max saturates early, and at mid load nearly
/// every set dies in the (shared) low-mode RTA before any candidate walk
/// runs. At this point roughly half the sets are schedulable, so the
/// enumeration over every HC task — the cost the streaming walk attacks —
/// dominates the measurement.
fn large_sets() -> Vec<TaskSet> {
    let point = GridPoint {
        u_hh: 0.3,
        u_hl: 0.15,
        u_ll: 0.2,
    };
    let mut spec = TaskSetSpec::paper_defaults(1, point, DeadlineModel::Implicit);
    spec.n_min = 20;
    spec.n_max = 40;
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let mut sets = Vec::new();
    let mut guard = 0;
    while sets.len() < 24 && guard < 600 {
        guard += 1;
        if let Ok(ts) = spec.generate(&mut rng) {
            sets.push(ts);
        }
    }
    assert!(sets.len() >= 16, "only {} sets with n >= 20", sets.len());
    assert!(sets.iter().all(|ts| ts.len() >= 20));
    sets
}

fn bench_amcmax_streaming(c: &mut Criterion) {
    let sets = large_sets();
    // The two paths must agree set-by-set before anything is timed.
    let mut ws = AnalysisWorkspace::new();
    let test = AmcMax::new();
    for ts in &sets {
        assert_eq!(
            test.is_schedulable_in(ts, &mut ws),
            reference::amc_max_is_schedulable(ts),
            "streaming/seed divergence on an n={} set",
            ts.len()
        );
    }
    let mut group = c.benchmark_group("amcmax_streaming");
    group.bench_with_input(BenchmarkId::new("n20", "reference"), &sets, |b, sets| {
        b.iter(|| {
            sets.iter()
                .filter(|ts| reference::amc_max_is_schedulable(std::hint::black_box(ts)))
                .count()
        });
    });
    group.bench_with_input(BenchmarkId::new("n20", "workspace"), &sets, |b, sets| {
        let mut ws = AnalysisWorkspace::new();
        b.iter(|| {
            sets.iter()
                .filter(|ts| test.is_schedulable_in(std::hint::black_box(ts), &mut ws))
                .count()
        });
    });
    group.finish();
}

fn bench_amc_rtb_batched(c: &mut Criterion) {
    // Two corpus shapes, matching the kernel's two routes: admission-sized
    // sets (n ≤ 10, the small-set scalar route over SoA lanes) and wide
    // sets (n ≥ 20, multiple 8-lane Jacobi blocks).
    let small = uniprocessor_corpus(2, 256, BENCH_SEED);
    let wide = large_sets();
    let test = AmcRtb::new();
    let mut ws = AnalysisWorkspace::new();
    for ts in small.iter().chain(&wide) {
        assert_eq!(
            test.is_schedulable_in(ts, &mut ws),
            reference::amc_rtb_is_schedulable(ts),
            "batched/seed divergence on an n={} set",
            ts.len()
        );
    }
    let mut group = c.benchmark_group("amc_rtb_batched");
    for (shape, sets) in [("scalar-route", &small), ("n20-blocks", &wide)] {
        group.bench_with_input(BenchmarkId::new(shape, "reference"), sets, |b, sets| {
            b.iter(|| {
                sets.iter()
                    .filter(|ts| reference::amc_rtb_is_schedulable(std::hint::black_box(ts)))
                    .count()
            });
        });
        group.bench_with_input(BenchmarkId::new(shape, "workspace"), sets, |b, sets| {
            let mut ws = AnalysisWorkspace::new();
            b.iter(|| {
                sets.iter()
                    .filter(|ts| test.is_schedulable_in(std::hint::black_box(ts), &mut ws))
                    .count()
            });
        });
    }
    group.finish();
}

/// Generator-shaped uniprocessor-load sets for the tuner bench: the same
/// shape the EY/ECDF tests see inside the partitioning inner loop, with
/// enough HC overrun that the greedy descent iterates (one-round accepts
/// would measure only the prelude).
fn tuner_sets() -> Vec<TaskSet> {
    let point = GridPoint {
        u_hh: 0.45,
        u_hl: 0.2,
        u_ll: 0.25,
    };
    let mut spec = TaskSetSpec::paper_defaults(1, point, DeadlineModel::Implicit);
    spec.n_min = 6;
    spec.n_max = 24;
    let mut rng = StdRng::seed_from_u64(BENCH_SEED ^ 0x5eed);
    let mut sets = Vec::new();
    let mut guard = 0;
    while sets.len() < 32 && guard < 800 {
        guard += 1;
        if let Ok(ts) = spec.generate(&mut rng) {
            sets.push(ts);
        }
    }
    assert!(sets.len() >= 24, "only {} tuner sets", sets.len());
    sets
}

fn bench_vdtune_kernel(c: &mut Criterion) {
    let sets = tuner_sets();
    // Kernel and seed stack must agree set-by-set before anything is
    // timed (this is what `cargo bench -- --test` checks in CI).
    let mut ws = AnalysisWorkspace::new();
    for ts in &sets {
        assert_eq!(
            Ey::new().is_schedulable_in(ts, &mut ws),
            vd_reference::ey_is_schedulable(ts),
            "EY kernel/seed divergence on an n={} set",
            ts.len()
        );
        assert_eq!(
            Ecdf::new().is_schedulable_in(ts, &mut ws),
            vd_reference::ecdf_is_schedulable(ts),
            "ECDF kernel/seed divergence on an n={} set",
            ts.len()
        );
    }
    let mut group = c.benchmark_group("vdtune_kernel");
    group.bench_with_input(BenchmarkId::new("EY", "reference"), &sets, |b, sets| {
        b.iter(|| {
            sets.iter()
                .filter(|ts| vd_reference::ey_is_schedulable(std::hint::black_box(ts)))
                .count()
        });
    });
    group.bench_with_input(BenchmarkId::new("EY", "kernel"), &sets, |b, sets| {
        let test = Ey::new();
        let mut ws = AnalysisWorkspace::new();
        b.iter(|| {
            sets.iter()
                .filter(|ts| test.is_schedulable_in(std::hint::black_box(ts), &mut ws))
                .count()
        });
    });
    group.bench_with_input(BenchmarkId::new("ECDF", "reference"), &sets, |b, sets| {
        b.iter(|| {
            sets.iter()
                .filter(|ts| vd_reference::ecdf_is_schedulable(std::hint::black_box(ts)))
                .count()
        });
    });
    group.bench_with_input(BenchmarkId::new("ECDF", "kernel"), &sets, |b, sets| {
        let test = Ecdf::new();
        let mut ws = AnalysisWorkspace::new();
        b.iter(|| {
            sets.iter()
                .filter(|ts| test.is_schedulable_in(std::hint::black_box(ts), &mut ws))
                .count()
        });
    });
    group.finish();
}

/// Wide (n ≥ 20) sets at the tuner load point: long lanes, so the
/// branch-free sweep (not fixed per-call overhead) dominates a check.
fn wide_tuner_sets() -> Vec<TaskSet> {
    let point = GridPoint {
        u_hh: 0.45,
        u_hl: 0.2,
        u_ll: 0.25,
    };
    let mut spec = TaskSetSpec::paper_defaults(1, point, DeadlineModel::Implicit);
    spec.n_min = 20;
    spec.n_max = 40;
    let mut rng = StdRng::seed_from_u64(BENCH_SEED ^ 0x1a7e5);
    let mut sets = Vec::new();
    let mut guard = 0;
    while sets.len() < 24 && guard < 800 {
        guard += 1;
        if let Ok(ts) = spec.generate(&mut rng) {
            sets.push(ts);
        }
    }
    assert!(sets.len() >= 16, "only {} wide tuner sets", sets.len());
    assert!(sets.iter().all(|ts| ts.len() >= 20));
    sets
}

fn bench_demand_soa(c: &mut Criterion) {
    // Two corpus shapes, matching the demand kernel's routing: admission-
    // sized sets (n ≤ 10, where fixed per-check overhead and the warm
    // memos dominate) and wide sets (n ≥ 20, where the certificate-gated
    // `dbf` lane sweep carries the win). Both tuners run so the bench
    // covers the LO-only (EY) and warm-resumed hi-mode (ECDF) QPA paths.
    let small = uniprocessor_corpus(2, 256, BENCH_SEED ^ 0xd50a);
    let wide = wide_tuner_sets();
    let mut ws = AnalysisWorkspace::new();
    for ts in small.iter().chain(&wide) {
        assert_eq!(
            Ey::new().is_schedulable_in(ts, &mut ws),
            vd_reference::ey_is_schedulable(ts),
            "EY lane/seed divergence on an n={} set",
            ts.len()
        );
        assert_eq!(
            Ecdf::new().is_schedulable_in(ts, &mut ws),
            vd_reference::ecdf_is_schedulable(ts),
            "ECDF lane/seed divergence on an n={} set",
            ts.len()
        );
    }
    let mut group = c.benchmark_group("demand_soa");
    for (shape, sets) in [("admission-sized", &small), ("n20-lanes", &wide)] {
        group.bench_with_input(BenchmarkId::new(shape, "EY-reference"), sets, |b, sets| {
            b.iter(|| {
                sets.iter()
                    .filter(|ts| vd_reference::ey_is_schedulable(std::hint::black_box(ts)))
                    .count()
            });
        });
        group.bench_with_input(BenchmarkId::new(shape, "EY-lanes"), sets, |b, sets| {
            let test = Ey::new();
            let mut ws = AnalysisWorkspace::new();
            b.iter(|| {
                sets.iter()
                    .filter(|ts| test.is_schedulable_in(std::hint::black_box(ts), &mut ws))
                    .count()
            });
        });
        group.bench_with_input(
            BenchmarkId::new(shape, "ECDF-reference"),
            sets,
            |b, sets| {
                b.iter(|| {
                    sets.iter()
                        .filter(|ts| vd_reference::ecdf_is_schedulable(std::hint::black_box(ts)))
                        .count()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new(shape, "ECDF-lanes"), sets, |b, sets| {
            let test = Ecdf::new();
            let mut ws = AnalysisWorkspace::new();
            b.iter(|| {
                sets.iter()
                    .filter(|ts| test.is_schedulable_in(std::hint::black_box(ts), &mut ws))
                    .count()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tests,
    bench_amcmax_streaming,
    bench_amc_rtb_batched,
    bench_vdtune_kernel,
    bench_demand_soa
);
criterion_main!(benches);
