//! Micro-benchmarks of the uniprocessor schedulability tests on
//! generator-shaped task sets (the inner loop of every sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcsched_analysis::{AmcMax, AmcRtb, Ecdf, EdfVd, Ey, SchedulabilityTest};
use mcsched_bench::{fixture_sets, midload_point};
use mcsched_gen::DeadlineModel;

fn bench_tests(c: &mut Criterion) {
    let sets = fixture_sets(1, midload_point(), DeadlineModel::Implicit, 32);
    let constrained = fixture_sets(1, midload_point(), DeadlineModel::Constrained, 32);
    let mut group = c.benchmark_group("uniprocessor_tests");
    let tests: Vec<(&str, Box<dyn SchedulabilityTest>)> = vec![
        ("EDF-VD", Box::new(EdfVd::new())),
        ("EY", Box::new(Ey::new())),
        ("ECDF", Box::new(Ecdf::new())),
        ("AMC-rtb", Box::new(AmcRtb::new())),
        ("AMC-max", Box::new(AmcMax::new())),
    ];
    for (name, test) in &tests {
        group.bench_with_input(BenchmarkId::new("implicit", name), test, |b, test| {
            b.iter(|| {
                sets.iter()
                    .filter(|ts| test.is_schedulable(std::hint::black_box(ts)))
                    .count()
            });
        });
        group.bench_with_input(BenchmarkId::new("constrained", name), test, |b, test| {
            b.iter(|| {
                constrained
                    .iter()
                    .filter(|ts| test.is_schedulable(std::hint::black_box(ts)))
                    .count()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tests);
criterion_main!(benches);
