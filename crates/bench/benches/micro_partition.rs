//! Micro-benchmarks of the partitioning strategies (Algorithm 1 and the
//! baselines) over the same task sets, m ∈ {2, 4, 8}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcsched_analysis::EdfVd;
use mcsched_bench::{fixture_sets, midload_point};
use mcsched_core::{presets, MultiprocessorTest, PartitionedAlgorithm};
use mcsched_gen::DeadlineModel;

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioning");
    for m in [2usize, 4, 8] {
        let sets = fixture_sets(m, midload_point(), DeadlineModel::Implicit, 16);
        for strategy in presets::all() {
            let name = strategy.name().to_owned();
            let algo = PartitionedAlgorithm::new(strategy, EdfVd::new());
            group.bench_with_input(
                BenchmarkId::new(name, m),
                &(algo, sets.clone()),
                |b, (algo, sets)| {
                    b.iter(|| {
                        sets.iter()
                            .filter(|ts| algo.accepts(std::hint::black_box(ts), m))
                            .count()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
