//! Fig. 6 regeneration bench: weighted acceptance ratio vs P_H for
//! m ∈ {2, 4} — panel (a) implicit/EDF-VD, panel (b) constrained/AMC+ECDF.

use criterion::{criterion_group, criterion_main, Criterion};
use mcsched_bench::BENCH_SEED;
use mcsched_exp::figures::{fig6a, fig6b, render_war_table};

fn bench_fig6(c: &mut Criterion) {
    let sets = 15; // 5 P_H values × 2 m values × full bucket sweep each
    let a = fig6a(sets, BENCH_SEED, 1);
    println!("\n# Fig. 6(a) WAR vs P_H (implicit, EDF-VD, {sets} sets/bucket)");
    println!("{}", render_war_table(&a));
    let b = fig6b(sets, BENCH_SEED, 1);
    println!("\n# Fig. 6(b) WAR vs P_H (constrained, {sets} sets/bucket)");
    println!("{}", render_war_table(&b));

    let mut group = c.benchmark_group("fig6_war");
    group.sample_size(10);
    group.bench_function("fig6a_point", |bench| {
        bench.iter(|| fig6a(2, BENCH_SEED, 1));
    });
    group.bench_function("fig6b_point", |bench| {
        bench.iter(|| fig6b(2, BENCH_SEED, 1));
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
