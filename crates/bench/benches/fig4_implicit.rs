//! Fig. 4 regeneration bench: implicit deadlines, ECDF/AMC UDP algorithms
//! vs the EY baselines, m ∈ {2, 4, 8}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcsched_bench::{BENCH_SEED, BENCH_SETS_PER_BUCKET};
use mcsched_exp::figures::fig4_panel;
use mcsched_exp::report::render_table;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_implicit");
    group.sample_size(10);
    for m in [2usize, 4, 8] {
        let result = fig4_panel(m, BENCH_SETS_PER_BUCKET, BENCH_SEED, 1);
        println!("\n# Fig. 4 (m = {m}, {BENCH_SETS_PER_BUCKET} sets/bucket)");
        println!("{}", render_table(&result));
        group.bench_with_input(BenchmarkId::new("panel", m), &m, |b, &m| {
            b.iter(|| fig4_panel(m, 5, BENCH_SEED, 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
