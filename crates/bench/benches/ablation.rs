//! Ablation bench: the UDP design-choice variants (metric, sorting, fit
//! direction, CA vs CU) and the AMC-max/AMC-rtb comparison, reported as
//! weighted acceptance ratios.

use criterion::{criterion_group, criterion_main, Criterion};
use mcsched_bench::BENCH_SEED;
use mcsched_exp::ablation::{amc_ablation, render_ablation, strategy_ablation};

fn bench_ablation(c: &mut Criterion) {
    let rows = strategy_ablation(4, 40, BENCH_SEED, 1);
    println!("\n# Strategy ablation (m = 4, implicit, EDF-VD, 40 sets/bucket)");
    println!("{}", render_ablation("strategy", rows));
    let rows = amc_ablation(2, 40, BENCH_SEED, 1);
    println!("\n# AMC variant ablation (m = 2, constrained, 40 sets/bucket)");
    println!("{}", render_ablation("AMC variant", rows));

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("strategy_m4", |b| {
        b.iter(|| strategy_ablation(4, 5, BENCH_SEED, 1));
    });
    group.bench_function("amc_m2", |b| {
        b.iter(|| amc_ablation(2, 5, BENCH_SEED, 1));
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
