//! Micro-benchmarks of the incremental admission layer: for each of the
//! five uniprocessor tests, partition the same fixture sets through the
//! native [`AdmissionState`](mcsched_analysis::AdmissionState) and through
//! the [`OneShot`] clone-and-retest bridge (the seed behaviour). The two
//! paths produce bit-identical partitions — the bench asserts it — so the
//! ratio is a pure admission-layer speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcsched_analysis::{AmcMax, AmcRtb, Ecdf, EdfVd, Ey, OneShot, SchedulabilityTest};
use mcsched_bench::{fixture_sets, midload_point};
use mcsched_core::{presets, Partition, WorkspaceRef};
use mcsched_gen::DeadlineModel;
use mcsched_model::TaskSet;

const M: usize = 8;

/// Builds through the workspace-threaded entry point with one reused
/// workspace, exactly as the experiment engine's per-worker evaluators
/// drive partitioning.
fn accepted(test: &dyn SchedulabilityTest, sets: &[TaskSet], ws: &WorkspaceRef) -> usize {
    sets.iter()
        .filter(|ts| {
            Partition::build_reporting_in(&presets::cu_udp(), test, std::hint::black_box(ts), M, ws)
                .0
                .is_ok()
        })
        .count()
}

fn bench_pair(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    incremental: &dyn SchedulabilityTest,
    one_shot: &dyn SchedulabilityTest,
    sets: &[TaskSet],
) {
    // The two paths must agree set-by-set (the equivalence guarantee),
    // with and without a shared workspace.
    let ws = WorkspaceRef::new();
    for ts in sets {
        let fast = Partition::build_reporting_in(&presets::cu_udp(), incremental, ts, M, &ws).0;
        assert_eq!(
            fast,
            Partition::build(&presets::cu_udp(), one_shot, ts, M),
            "{name}: incremental/one-shot divergence"
        );
        assert_eq!(
            fast,
            Partition::build(&presets::cu_udp(), incremental, ts, M),
            "{name}: workspace/pooled divergence"
        );
    }
    group.bench_with_input(BenchmarkId::new(name, "incremental"), sets, |b, sets| {
        let ws = WorkspaceRef::new();
        b.iter(|| accepted(incremental, sets, &ws))
    });
    group.bench_with_input(BenchmarkId::new(name, "one-shot"), sets, |b, sets| {
        let ws = WorkspaceRef::new();
        b.iter(|| accepted(one_shot, sets, &ws))
    });
}

fn bench_admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("admission");
    group.sample_size(10);
    // EDF-VD and AMC admissions are cheap enough for a larger batch; the
    // dbf tuners (EY/ECDF) dominate wall-clock, so they get a smaller one.
    let batch = fixture_sets(M, midload_point(), DeadlineModel::Implicit, 12);
    let dbf_batch = &batch[..4];

    bench_pair(
        &mut group,
        "EDF-VD",
        &EdfVd::new(),
        &OneShot(EdfVd::new()),
        &batch,
    );
    bench_pair(
        &mut group,
        "AMC-rtb",
        &AmcRtb::new(),
        &OneShot(AmcRtb::new()),
        &batch,
    );
    bench_pair(
        &mut group,
        "AMC-max",
        &AmcMax::new(),
        &OneShot(AmcMax::new()),
        &batch,
    );
    bench_pair(&mut group, "EY", &Ey::new(), &OneShot(Ey::new()), dbf_batch);
    bench_pair(
        &mut group,
        "ECDF",
        &Ecdf::new(),
        &OneShot(Ecdf::new()),
        dbf_batch,
    );
    group.finish();
}

criterion_group!(benches, bench_admission);
criterion_main!(benches);
