//! Fig. 5 regeneration bench: constrained deadlines, ECDF/AMC UDP
//! algorithms vs the EY baselines, m ∈ {2, 4, 8}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcsched_bench::{BENCH_SEED, BENCH_SETS_PER_BUCKET};
use mcsched_exp::figures::fig5_panel;
use mcsched_exp::report::render_table;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_constrained");
    group.sample_size(10);
    for m in [2usize, 4, 8] {
        let result = fig5_panel(m, BENCH_SETS_PER_BUCKET, BENCH_SEED, 1);
        println!("\n# Fig. 5 (m = {m}, {BENCH_SETS_PER_BUCKET} sets/bucket)");
        println!("{}", render_table(&result));
        group.bench_with_input(BenchmarkId::new("panel", m), &m, |b, &m| {
            b.iter(|| fig5_panel(m, 5, BENCH_SEED, 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
