//! Fig. 3 regeneration bench: acceptance ratio vs UB under EDF-VD for
//! CA-UDP / CU-UDP / CA(nosort)-F-F, m ∈ {2, 4, 8} (implicit deadlines).
//!
//! Prints the series it measures, so `cargo bench` reproduces the same
//! rows the paper's Fig. 3 plots (at bench sample size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcsched_bench::{BENCH_SEED, BENCH_SETS_PER_BUCKET};
use mcsched_exp::figures::fig3_panel;
use mcsched_exp::report::render_table;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_edfvd");
    group.sample_size(10);
    for m in [2usize, 4, 8] {
        // Print the regenerated series once per configuration.
        let result = fig3_panel(m, BENCH_SETS_PER_BUCKET, BENCH_SEED, 1);
        println!("\n# Fig. 3 (m = {m}, {BENCH_SETS_PER_BUCKET} sets/bucket)");
        println!("{}", render_table(&result));
        group.bench_with_input(BenchmarkId::new("panel", m), &m, |b, &m| {
            b.iter(|| fig3_panel(m, 10, BENCH_SEED, 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
