//! Empirical validation of schedulability verdicts.
//!
//! A sound schedulability test's "accept" must survive *every* legal
//! runtime behaviour. This module runs an adversarial battery of scenarios
//! against an accepted task set and reports the first observed
//! counterexample — the workhorse behind the cross-crate property tests
//! that tie the reconstructed analyses (`mcsched-analysis`) to executable
//! behaviour (see `DESIGN.md` §3).

use crate::engine::Simulator;
use crate::policy::Policy;
use crate::report::MissRecord;
use crate::scenario::Scenario;
use mcsched_model::TaskSet;

/// The default adversarial scenario battery: nominal, sustained-overrun,
/// and a spread of randomized overrun/sporadic behaviours derived from
/// `seed`.
pub fn battery(seed: u64) -> Vec<Scenario> {
    vec![
        Scenario::lo_only(),
        Scenario::all_hi(),
        Scenario::random_overrun(0.25, seed),
        Scenario::random_overrun(0.5, seed.wrapping_add(1)),
        Scenario::random_overrun(0.75, seed.wrapping_add(2)),
        Scenario::sporadic(0.3, 0.5, seed.wrapping_add(3)),
        Scenario::sporadic(0.8, 1.0, seed.wrapping_add(4)),
    ]
}

/// A validation failure: the scenario under which a required deadline was
/// missed, with the first miss.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterExample {
    /// The scenario that produced the miss.
    pub scenario: Scenario,
    /// The first recorded miss.
    pub miss: MissRecord,
}

impl std::fmt::Display for CounterExample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} under {:?}", self.miss, self.scenario)
    }
}

/// A sensible default horizon: enough periods of the longest task for
/// several busy intervals, capped to keep validation fast.
pub fn default_horizon(ts: &TaskSet) -> u64 {
    (ts.max_period().as_ticks() * 25).clamp(1_000, 50_000)
}

/// Runs the battery against one processor's task set under a policy.
///
/// # Errors
///
/// Returns the first [`CounterExample`] encountered; `Ok(())` means every
/// scenario in the battery met all required deadlines.
pub fn validate_uniprocessor(
    ts: &TaskSet,
    policy: &Policy,
    horizon: u64,
    seed: u64,
) -> Result<(), CounterExample> {
    for scenario in battery(seed) {
        let report = Simulator::new(ts, policy.clone()).run(&scenario, horizon);
        if let Some(&miss) = report.misses().first() {
            return Err(CounterExample { scenario, miss });
        }
    }
    Ok(())
}

/// Validates an EDF-VD acceptance end to end: derives the scaling factor,
/// builds the runtime policy and runs the battery.
///
/// # Errors
///
/// Returns a [`CounterExample`] if any battery scenario misses a required
/// deadline.
///
/// # Panics
///
/// Panics if the task set is *not* EDF-VD-accepted (callers validate
/// accepted sets only).
pub fn validate_edfvd_acceptance(ts: &TaskSet, seed: u64) -> Result<(), CounterExample> {
    let x = mcsched_analysis::EdfVd::new()
        .scaling_factor(ts)
        .expect("caller must pass an EDF-VD-accepted set");
    let policy = Policy::edf_vd_scaled(ts, x);
    validate_uniprocessor(ts, &policy, default_horizon(ts), seed)
}

/// Validates an EY/ECDF acceptance: uses the tuner's virtual-deadline
/// assignment as the runtime policy.
///
/// # Errors
///
/// Returns a [`CounterExample`] if any battery scenario misses a required
/// deadline.
pub fn validate_vd_assignment(
    ts: &TaskSet,
    assignment: &mcsched_analysis::VdAssignment,
    seed: u64,
) -> Result<(), CounterExample> {
    let policy = Policy::edf_vd_from_assignment(assignment);
    validate_uniprocessor(ts, &policy, default_horizon(ts), seed)
}

/// Validates an AMC acceptance under deadline-monotonic fixed priorities.
///
/// # Errors
///
/// Returns a [`CounterExample`] if any battery scenario misses a required
/// deadline.
pub fn validate_amc_acceptance(ts: &TaskSet, seed: u64) -> Result<(), CounterExample> {
    let policy = Policy::deadline_monotonic(ts);
    validate_uniprocessor(ts, &policy, default_horizon(ts), seed)
}

/// Validates every processor of a partition with the given per-processor
/// policy factory.
///
/// # Errors
///
/// Returns the processor index together with its [`CounterExample`].
pub fn validate_partition(
    processors: &[TaskSet],
    mut policy_for: impl FnMut(&TaskSet) -> Policy,
    seed: u64,
) -> Result<(), (usize, CounterExample)> {
    for (k, proc) in processors.iter().enumerate() {
        let policy = policy_for(proc);
        let horizon = default_horizon(proc);
        validate_uniprocessor(proc, &policy, horizon, seed.wrapping_add(k as u64))
            .map_err(|ce| (k, ce))?;
    }
    Ok(())
}

/// Shorthand: the minimum horizon needed so that at least `k` jobs of
/// every task are observed.
pub fn horizon_for_jobs(ts: &TaskSet, k: u64) -> u64 {
    ts.max_period().as_ticks().max(1) * k
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsched_analysis::{Ecdf, EdfVd, SchedulabilityTest};
    use mcsched_model::Task;

    #[test]
    fn battery_is_deterministic_and_diverse() {
        let b = battery(42);
        assert_eq!(b, battery(42));
        assert!(b.len() >= 5);
        assert!(b.contains(&Scenario::LoOnly));
        assert!(b.contains(&Scenario::AllHi));
    }

    #[test]
    fn edfvd_accepted_sets_survive() {
        let ts = TaskSet::try_from_tasks(vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::hi(1, 20, 3, 8).unwrap(),
            Task::lo(2, 25, 5).unwrap(),
        ])
        .unwrap();
        assert!(EdfVd::new().is_schedulable(&ts));
        validate_edfvd_acceptance(&ts, 7).expect("accepted set must survive the battery");
    }

    #[test]
    fn ecdf_assignment_survives() {
        let ts = TaskSet::try_from_tasks(vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::lo(1, 12, 4).unwrap(),
        ])
        .unwrap();
        let a = Ecdf::new().tune(&ts).expect("tunable");
        validate_vd_assignment(&ts, &a, 3).expect("tuned assignment must survive");
    }

    #[test]
    fn amc_accepted_sets_survive() {
        let ts = TaskSet::try_from_tasks(vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::lo(1, 20, 5).unwrap(),
        ])
        .unwrap();
        assert!(mcsched_analysis::AmcMax::new().is_schedulable(&ts));
        validate_amc_acceptance(&ts, 11).expect("AMC-accepted set must survive");
    }

    #[test]
    fn unschedulable_set_yields_counterexample() {
        // Overloaded in high mode; EDF-VD would reject, and the battery
        // finds the miss when forced to run anyway.
        let ts = TaskSet::try_from_tasks(vec![
            Task::hi(0, 10, 3, 8).unwrap(),
            Task::hi(1, 10, 3, 8).unwrap(),
        ])
        .unwrap();
        let policy = Policy::edf_vd_scaled(&ts, 0.9);
        let err = validate_uniprocessor(&ts, &policy, 500, 5).unwrap_err();
        assert!(err.to_string().contains("missed"));
    }

    #[test]
    fn partition_validation() {
        use mcsched_core::{presets, PartitionedAlgorithm};
        let ts = TaskSet::try_from_tasks(vec![
            Task::hi(0, 10, 2, 5).unwrap(),
            Task::lo(1, 10, 4).unwrap(),
            Task::hi(2, 20, 4, 9).unwrap(),
            Task::lo(3, 25, 5).unwrap(),
        ])
        .unwrap();
        let algo = PartitionedAlgorithm::new(presets::cu_udp(), EdfVd::new());
        let partition = algo.partition(&ts, 2).unwrap();
        let procs: Vec<TaskSet> = partition.iter().cloned().collect();
        validate_partition(
            &procs,
            |p| {
                let x = EdfVd::new().scaling_factor(p).unwrap_or(1.0);
                Policy::edf_vd_scaled(p, x)
            },
            13,
        )
        .expect("partitioned allocation must survive per-processor");
    }

    #[test]
    fn horizons() {
        let ts = TaskSet::try_from_tasks(vec![Task::lo(0, 100, 5).unwrap()]).unwrap();
        assert_eq!(horizon_for_jobs(&ts, 10), 1000);
        assert!(default_horizon(&ts) >= 1000);
        assert!(default_horizon(&ts) <= 50_000);
    }
}
