//! Partitioned multiprocessor simulation: independent per-processor
//! engines with isolated mode switches.

use crate::engine::Simulator;
use crate::policy::Policy;
use crate::report::SimReport;
use crate::scenario::Scenario;
use mcsched_core::Partition;
use mcsched_model::TaskSet;

/// Simulates a [`Partition`] by running one uniprocessor engine per
/// processor. Mode switches stay local to the processor whose HC job
/// overran — the isolation property §II of the paper highlights as the
/// practical advantage of partitioned over global MC scheduling.
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// use mcsched_analysis::EdfVd;
/// use mcsched_core::{presets, PartitionedAlgorithm};
/// use mcsched_sim::{PartitionedSimulator, Policy, Scenario};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = TaskSet::try_from_tasks(vec![
///     Task::hi(0, 10, 2, 5)?,
///     Task::lo(1, 10, 4)?,
///     Task::hi(2, 20, 4, 9)?,
///     Task::lo(3, 25, 5)?,
/// ])?;
/// let algo = PartitionedAlgorithm::new(presets::cu_udp(), EdfVd::new());
/// let partition = algo.partition(&ts, 2)?;
/// let sim = PartitionedSimulator::from_partition(&partition, |proc| {
///     let x = EdfVd::new().scaling_factor(proc).unwrap_or(1.0);
///     Policy::edf_vd_scaled(proc, x)
/// });
/// let reports = sim.run(&Scenario::all_hi(), 500);
/// assert!(reports.iter().all(|r| r.is_success()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PartitionedSimulator {
    processors: Vec<TaskSet>,
    policies: Vec<Policy>,
    record_trace: bool,
}

impl PartitionedSimulator {
    /// Builds a simulator from a partition, deriving each processor's
    /// policy from its assigned task set.
    pub fn from_partition(
        partition: &Partition,
        mut policy_for: impl FnMut(&TaskSet) -> Policy,
    ) -> Self {
        let processors: Vec<TaskSet> = partition.iter().cloned().collect();
        let policies = processors.iter().map(&mut policy_for).collect();
        PartitionedSimulator {
            processors,
            policies,
            record_trace: false,
        }
    }

    /// Builds a simulator from explicit per-processor task sets and
    /// policies.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors disagree in length.
    pub fn new(processors: Vec<TaskSet>, policies: Vec<Policy>) -> Self {
        assert_eq!(
            processors.len(),
            policies.len(),
            "one policy per processor required"
        );
        PartitionedSimulator {
            processors,
            policies,
            record_trace: false,
        }
    }

    /// Enables event-trace recording on every processor.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Number of processors.
    pub fn processor_count(&self) -> usize {
        self.processors.len()
    }

    /// Runs every processor under (a reseeded clone of) the same scenario;
    /// processor `k` uses `seed + k` for randomized scenarios.
    pub fn run(&self, scenario: &Scenario, horizon: u64) -> Vec<SimReport> {
        let scenarios: Vec<Scenario> = (0..self.processors.len())
            .map(|k| reseed(scenario, k as u64))
            .collect();
        self.run_each(&scenarios, horizon)
    }

    /// Runs with an explicit scenario per processor (e.g. overruns injected
    /// on one processor only, for the isolation demonstration).
    ///
    /// # Panics
    ///
    /// Panics if `scenarios.len()` differs from the processor count.
    pub fn run_each(&self, scenarios: &[Scenario], horizon: u64) -> Vec<SimReport> {
        assert_eq!(
            scenarios.len(),
            self.processors.len(),
            "one scenario per processor required"
        );
        self.processors
            .iter()
            .zip(&self.policies)
            .zip(scenarios)
            .map(|((proc, policy), scenario)| {
                let mut sim = Simulator::new(proc, policy.clone());
                if self.record_trace {
                    sim = sim.with_trace();
                }
                sim.run(scenario, horizon)
            })
            .collect()
    }

    /// Runs and merges all per-processor reports into one aggregate.
    pub fn run_aggregate(&self, scenario: &Scenario, horizon: u64) -> SimReport {
        let mut reports = self.run(scenario, horizon).into_iter();
        let mut agg = reports.next().unwrap_or_default();
        for r in reports {
            agg.absorb(r);
        }
        agg
    }
}

/// Clones a scenario with its seed shifted by `offset` (deterministic but
/// decorrelated across processors).
fn reseed(scenario: &Scenario, offset: u64) -> Scenario {
    match scenario {
        Scenario::LoOnly => Scenario::LoOnly,
        Scenario::AllHi => Scenario::AllHi,
        Scenario::RandomOverrun { prob_millis, seed } => Scenario::RandomOverrun {
            prob_millis: *prob_millis,
            seed: seed.wrapping_add(offset),
        },
        Scenario::Sporadic {
            max_delay_millis,
            prob_millis,
            seed,
        } => Scenario::Sporadic {
            max_delay_millis: *max_delay_millis,
            prob_millis: *prob_millis,
            seed: seed.wrapping_add(offset),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsched_analysis::EdfVd;
    use mcsched_core::{presets, PartitionedAlgorithm};
    use mcsched_model::Task;

    fn partitioned() -> PartitionedSimulator {
        let ts = TaskSet::try_from_tasks(vec![
            Task::hi(0, 10, 2, 5).unwrap(),
            Task::lo(1, 10, 4).unwrap(),
            Task::hi(2, 20, 4, 9).unwrap(),
            Task::lo(3, 25, 5).unwrap(),
        ])
        .unwrap();
        let algo = PartitionedAlgorithm::new(presets::cu_udp(), EdfVd::new());
        let partition = algo.partition(&ts, 2).unwrap();
        PartitionedSimulator::from_partition(&partition, |proc| {
            let x = EdfVd::new().scaling_factor(proc).unwrap_or(1.0);
            Policy::edf_vd_scaled(proc, x)
        })
    }

    #[test]
    fn all_processors_meet_deadlines_under_overrun() {
        let sim = partitioned();
        let reports = sim.run(&Scenario::all_hi(), 1000);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.is_success(), "{:?}", r.misses());
        }
    }

    #[test]
    fn mode_switch_isolation() {
        // Overruns injected only on processor 0: processor 1 must never
        // switch or drop anything.
        let sim = partitioned();
        let scenarios = vec![Scenario::all_hi(), Scenario::lo_only()];
        let reports = sim.run_each(&scenarios, 1000);
        assert!(reports[0].mode_switches() > 0);
        assert_eq!(
            reports[1].mode_switches(),
            0,
            "partitioned scheduling must isolate the switch"
        );
        assert_eq!(reports[1].dropped(), 0);
    }

    #[test]
    fn aggregate_merges() {
        let sim = partitioned();
        let agg = sim.run_aggregate(&Scenario::lo_only(), 500);
        assert!(agg.is_success());
        assert!(agg.released() > 0);
    }

    #[test]
    fn explicit_construction_and_trace() {
        let a = TaskSet::try_from_tasks(vec![Task::lo(0, 10, 3).unwrap()]).unwrap();
        let b = TaskSet::try_from_tasks(vec![Task::lo(1, 10, 3).unwrap()]).unwrap();
        let sim =
            PartitionedSimulator::new(vec![a, b], vec![Policy::Edf, Policy::Edf]).with_trace();
        assert_eq!(sim.processor_count(), 2);
        let reports = sim.run(&Scenario::lo_only(), 50);
        assert!(reports.iter().all(|r| !r.trace().is_empty()));
    }

    #[test]
    #[should_panic(expected = "one policy per processor")]
    fn mismatched_lengths_panic() {
        let a = TaskSet::try_from_tasks(vec![Task::lo(0, 10, 3).unwrap()]).unwrap();
        let _ = PartitionedSimulator::new(vec![a], vec![]);
    }

    #[test]
    fn reseed_decorrelates_but_preserves_kind() {
        let s = Scenario::random_overrun(0.5, 100);
        match reseed(&s, 3) {
            Scenario::RandomOverrun { prob_millis, seed } => {
                assert_eq!(prob_millis, 500);
                assert_eq!(seed, 103);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(reseed(&Scenario::LoOnly, 9), Scenario::LoOnly);
    }
}
