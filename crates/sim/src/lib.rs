//! # mcsched-sim
//!
//! A discrete-event simulator for dual-criticality scheduling on
//! uniprocessors and partitioned multiprocessors.
//!
//! The DATE 2017 paper's evaluation is purely analytical; this crate is the
//! executable substrate that stands in for a real RTOS testbed (see
//! `DESIGN.md`, substitution record): it runs the *scheduling algorithms*
//! the analyses certify —
//!
//! * **EDF-VD** — EDF on virtual deadlines in low mode, real deadlines in
//!   high mode, LC tasks dropped at the mode switch,
//! * **AMC** — fixed priorities, LC tasks dropped at the switch,
//! * **plain EDF** — the single-criticality baseline,
//!
//! under configurable *scenarios* (which jobs overrun, when releases
//! happen), detects deadline misses and budget overruns, triggers
//! per-processor mode switches, and records traces.
//!
//! [`validate`] closes the loop: every task set accepted by a
//! schedulability test is executed under adversarial scenarios and must
//! not miss a deadline it is required to meet — this is how the
//! reconstructed analyses in `mcsched-analysis` are empirically checked.
//!
//! ## Example
//!
//! ```
//! use mcsched_model::{Task, TaskSet};
//! use mcsched_sim::{Simulator, Policy, Scenario};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ts = TaskSet::try_from_tasks(vec![
//!     Task::hi(0, 10, 2, 4)?,
//!     Task::lo(1, 20, 5)?,
//! ])?;
//! // Run EDF-VD with the x = 1/2 virtual deadlines for 200 ticks, with
//! // every HC job overrunning to C^H.
//! let policy = Policy::edf_vd_scaled(&ts, 0.5);
//! let report = Simulator::new(&ts, policy).run(&Scenario::all_hi(), 200);
//! assert!(report.is_success(), "misses: {:?}", report.misses());
//! assert!(report.mode_switches() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod gantt;
mod global;
mod partitioned;
mod policy;
mod report;
mod scenario;
pub mod validate;

pub use engine::Simulator;
pub use global::GlobalSimulator;
pub use partitioned::PartitionedSimulator;
pub use policy::Policy;
pub use report::{MissRecord, SimReport, TraceEvent};
pub use scenario::Scenario;
