//! ASCII Gantt rendering of execution traces.
//!
//! Turns a recorded [`TraceEvent`] stream into a
//! per-task timeline, which makes simulator behaviour (preemption, mode
//! switches, drops, misses) reviewable at a glance in examples and test
//! failure output.

use crate::report::{SimReport, TraceEvent};
use mcsched_model::{TaskId, TaskSet, Time};
use std::collections::BTreeMap;

/// Characters used per timeline cell.
const RELEASE: char = '^';
const COMPLETE: char = '|';
const DROP: char = 'x';
const MISS: char = '!';
const SWITCH: char = 'S';
const IDLE: char = '.';

/// Renders a per-task event timeline of the first `width` ticks of a
/// traced run.
///
/// Each row is one task; columns are ticks. `^` marks a release, `|` a
/// completion, `x` a drop, `!` a required-deadline miss. A `MODE` row
/// shows switches (`S`) and resets (`r`). Cells without events show `.`.
///
/// The rendering is event-based (not busy/idle exact), which is enough to
/// see scheduling structure without instrumenting the engine's dispatch
/// decisions.
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// use mcsched_sim::{Simulator, Policy, Scenario, gantt};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = TaskSet::try_from_tasks(vec![Task::lo(0, 10, 3)?])?;
/// let report = Simulator::new(&ts, Policy::Edf).with_trace()
///     .run(&Scenario::lo_only(), 30);
/// let chart = gantt::render(&ts, &report, 30);
/// assert!(chart.contains("τ0"));
/// # Ok(())
/// # }
/// ```
pub fn render(ts: &TaskSet, report: &SimReport, width: u64) -> String {
    let width = width.min(report.horizon().as_ticks()).max(1) as usize;
    let mut rows: BTreeMap<TaskId, Vec<char>> =
        ts.iter().map(|t| (t.id(), vec![IDLE; width])).collect();
    let mut mode_row = vec![IDLE; width];

    let mark = |row: &mut Vec<char>, at: Time, c: char| {
        let idx = at.as_ticks() as usize;
        if idx < width {
            // Later events at the same tick win, except misses, which are
            // never overwritten.
            if row[idx] != MISS {
                row[idx] = c;
            }
        }
    };

    for ev in report.trace() {
        match *ev {
            TraceEvent::Release { at, task } => {
                if let Some(row) = rows.get_mut(&task) {
                    mark(row, at, RELEASE);
                }
            }
            TraceEvent::Complete { at, task } => {
                if let Some(row) = rows.get_mut(&task) {
                    mark(row, at, COMPLETE);
                }
            }
            TraceEvent::Drop { at, task } => {
                if let Some(row) = rows.get_mut(&task) {
                    mark(row, at, DROP);
                }
            }
            TraceEvent::Miss(m) => {
                if let Some(row) = rows.get_mut(&m.task) {
                    mark(row, m.deadline, MISS);
                }
            }
            TraceEvent::ModeSwitch { at, .. } => mark(&mut mode_row, at, SWITCH),
            TraceEvent::ModeReset { at } => mark(&mut mode_row, at, 'r'),
        }
    }

    let mut out = String::new();
    // Tick ruler every 10 columns.
    out.push_str("        ");
    for i in 0..width {
        out.push(if i % 10 == 0 { '0' } else { ' ' });
    }
    out.push('\n');
    for (id, row) in &rows {
        out.push_str(&format!("{:>6}  ", id.to_string()));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>6}  ", "MODE"));
    out.extend(mode_row.iter());
    out.push('\n');
    out.push_str("        (^ release  | complete  x drop  ! miss  S switch  r reset)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Policy, Scenario, Simulator};
    use mcsched_model::Task;

    #[test]
    fn renders_releases_and_completions() {
        let ts = TaskSet::try_from_tasks(vec![Task::lo(0, 10, 3).unwrap()]).unwrap();
        let report = Simulator::new(&ts, Policy::Edf)
            .with_trace()
            .run(&Scenario::lo_only(), 25);
        let chart = render(&ts, &report, 25);
        let line = chart.lines().find(|l| l.contains("τ0")).unwrap();
        // Release at t=0 (tick column offset 8), completion at t=3.
        let cells: Vec<char> = line.chars().skip(8).collect();
        assert_eq!(cells[0], RELEASE);
        assert_eq!(cells[3], COMPLETE);
        assert_eq!(cells[10], RELEASE);
        assert!(chart.contains("MODE"));
    }

    #[test]
    fn renders_mode_switch_and_drop() {
        let ts = TaskSet::try_from_tasks(vec![
            Task::hi(0, 10, 2, 6).unwrap(),
            Task::lo(1, 10, 3).unwrap(),
        ])
        .unwrap();
        let report = Simulator::new(&ts, Policy::edf_vd_scaled(&ts, 0.5))
            .with_trace()
            .run(&Scenario::all_hi(), 20);
        let chart = render(&ts, &report, 20);
        assert!(chart.contains('S'), "mode switch missing:\n{chart}");
        assert!(chart.contains('x'), "drop missing:\n{chart}");
    }

    #[test]
    fn renders_misses() {
        let ts = TaskSet::try_from_tasks(vec![
            Task::lo(0, 10, 9).unwrap(),
            Task::lo(1, 10, 9).unwrap(),
        ])
        .unwrap();
        let report = Simulator::new(&ts, Policy::Edf)
            .with_trace()
            .run(&Scenario::lo_only(), 30);
        let chart = render(&ts, &report, 30);
        assert!(chart.contains('!'), "miss marker missing:\n{chart}");
    }

    #[test]
    fn width_clamps_to_horizon() {
        let ts = TaskSet::try_from_tasks(vec![Task::lo(0, 10, 3).unwrap()]).unwrap();
        let report = Simulator::new(&ts, Policy::Edf)
            .with_trace()
            .run(&Scenario::lo_only(), 10);
        let chart = render(&ts, &report, 1000);
        let line = chart.lines().find(|l| l.contains("τ0")).unwrap();
        assert!(line.chars().skip(8).count() <= 10);
    }
}
