//! Runtime scheduling policies.

use mcsched_analysis::{EdfVd, VdAssignment};
use mcsched_model::{TaskSet, Time};

/// The scheduling policy a simulated processor runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Policy {
    /// EDF with virtual deadlines: in low mode, jobs are ordered by
    /// absolute *virtual* deadline (`release + vd[i]`); after the mode
    /// switch HC jobs revert to their real deadlines and LC jobs are
    /// dropped. `virtual_deadlines` holds one relative deadline per task,
    /// in task-set order.
    EdfVd {
        /// Relative virtual deadline per task (LC entries equal the real
        /// deadline).
        virtual_deadlines: Vec<Time>,
    },
    /// Fixed-priority scheduling (the AMC runtime): `priority_order[0]` is
    /// the index of the highest-priority task. LC tasks are dropped at the
    /// mode switch.
    FixedPriority {
        /// Task indices from highest to lowest priority.
        priority_order: Vec<usize>,
    },
    /// Plain EDF on real deadlines (single-criticality baseline; mode
    /// switches still drop LC tasks).
    Edf,
}

impl Policy {
    /// EDF-VD with a uniform scaling factor `x` (the EDF-VD analysis'
    /// deadline assignment): HC tasks get `⌊x·Di⌋` clamped below by
    /// `C^L_i`; LC tasks keep `Di`.
    pub fn edf_vd_scaled(ts: &TaskSet, x: f64) -> Policy {
        Policy::EdfVd {
            virtual_deadlines: EdfVd::new().virtual_deadlines(ts, x),
        }
    }

    /// EDF-VD with the per-task assignment produced by an EY/ECDF tuner.
    pub fn edf_vd_from_assignment(assignment: &VdAssignment) -> Policy {
        Policy::EdfVd {
            virtual_deadlines: assignment.as_slice().iter().map(|vt| vt.vd).collect(),
        }
    }

    /// Deadline-monotonic fixed priorities (the assignment used by the AMC
    /// analyses in `mcsched-analysis`).
    pub fn deadline_monotonic(ts: &TaskSet) -> Policy {
        let mut order: Vec<usize> = (0..ts.len()).collect();
        let tasks = ts.as_slice();
        order.sort_by(|&a, &b| {
            tasks[a]
                .deadline()
                .cmp(&tasks[b].deadline())
                .then_with(|| tasks[a].id().cmp(&tasks[b].id()))
        });
        Policy::FixedPriority {
            priority_order: order,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsched_model::Task;

    fn set() -> TaskSet {
        TaskSet::try_from_tasks(vec![
            Task::hi(0, 20, 2, 6).unwrap(),
            Task::lo(1, 10, 3).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn scaled_virtual_deadlines() {
        let p = Policy::edf_vd_scaled(&set(), 0.5);
        match p {
            Policy::EdfVd { virtual_deadlines } => {
                assert_eq!(virtual_deadlines[0], Time::new(10)); // HC scaled
                assert_eq!(virtual_deadlines[1], Time::new(10)); // LC real
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn dm_priorities() {
        let p = Policy::deadline_monotonic(&set());
        match p {
            Policy::FixedPriority { priority_order } => {
                // τ1 (D=10) above τ0 (D=20).
                assert_eq!(priority_order, vec![1, 0]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn assignment_roundtrip() {
        use mcsched_analysis::Ey;
        let ts = TaskSet::try_from_tasks(vec![Task::hi(0, 10, 2, 5).unwrap()]).unwrap();
        let a = Ey::new().tune(&ts).unwrap();
        let p = Policy::edf_vd_from_assignment(&a);
        match p {
            Policy::EdfVd { virtual_deadlines } => {
                assert_eq!(virtual_deadlines[0], a.virtual_deadline(0).unwrap());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
}
