//! Simulation outcomes: traces, miss records, aggregate statistics.

use mcsched_model::{Criticality, TaskId, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A deadline miss that the scheduler was required to prevent.
///
/// By construction the simulator only records *required* misses: in low
/// mode every job's real deadline counts; after a mode switch LC jobs are
/// dropped (never counted) and HC jobs keep counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissRecord {
    /// The task whose job missed.
    pub task: TaskId,
    /// The job's release instant.
    pub release: Time,
    /// The missed absolute deadline.
    pub deadline: Time,
    /// The task's criticality.
    pub criticality: Criticality,
}

impl fmt::Display for MissRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}) released {} missed deadline {}",
            self.task, self.criticality, self.release, self.deadline
        )
    }
}

/// One event in a simulation trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A job was released.
    Release {
        /// Instant.
        at: Time,
        /// Releasing task.
        task: TaskId,
    },
    /// A job signalled completion.
    Complete {
        /// Instant.
        at: Time,
        /// Completing task.
        task: TaskId,
    },
    /// A HC job exhausted `C^L` without signalling: the processor switched
    /// to high mode.
    ModeSwitch {
        /// Instant.
        at: Time,
        /// The overrunning task.
        task: TaskId,
    },
    /// The processor idled and returned to low mode.
    ModeReset {
        /// Instant.
        at: Time,
    },
    /// An LC job was discarded at a mode switch (or its release was
    /// suppressed during high mode).
    Drop {
        /// Instant.
        at: Time,
        /// Dropped task.
        task: TaskId,
    },
    /// A required deadline was missed.
    Miss(MissRecord),
}

impl TraceEvent {
    /// The instant the event occurred.
    pub fn at(&self) -> Time {
        match *self {
            TraceEvent::Release { at, .. }
            | TraceEvent::Complete { at, .. }
            | TraceEvent::ModeSwitch { at, .. }
            | TraceEvent::ModeReset { at }
            | TraceEvent::Drop { at, .. } => at,
            TraceEvent::Miss(m) => m.deadline,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Release { at, task } => write!(f, "[{at:>6}] release  {task}"),
            TraceEvent::Complete { at, task } => write!(f, "[{at:>6}] complete {task}"),
            TraceEvent::ModeSwitch { at, task } => {
                write!(f, "[{at:>6}] MODE SWITCH (overrun by {task})")
            }
            TraceEvent::ModeReset { at } => write!(f, "[{at:>6}] mode reset (idle)"),
            TraceEvent::Drop { at, task } => write!(f, "[{at:>6}] drop     {task}"),
            TraceEvent::Miss(m) => write!(f, "[{:>6}] MISS     {m}", m.deadline),
        }
    }
}

/// Aggregate outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SimReport {
    misses: Vec<MissRecord>,
    trace: Vec<TraceEvent>,
    mode_switches: u32,
    mode_resets: u32,
    released: u64,
    completed: u64,
    dropped: u64,
    horizon: Time,
}

impl SimReport {
    pub(crate) fn new(horizon: Time) -> Self {
        SimReport {
            horizon,
            ..SimReport::default()
        }
    }

    pub(crate) fn push_event(&mut self, record_trace: bool, ev: TraceEvent) {
        match ev {
            TraceEvent::Release { .. } => self.released += 1,
            TraceEvent::Complete { .. } => self.completed += 1,
            TraceEvent::ModeSwitch { .. } => self.mode_switches += 1,
            TraceEvent::ModeReset { .. } => self.mode_resets += 1,
            TraceEvent::Drop { .. } => self.dropped += 1,
            TraceEvent::Miss(m) => self.misses.push(m),
        }
        if record_trace {
            self.trace.push(ev);
        }
    }

    /// `true` iff no required deadline was missed.
    pub fn is_success(&self) -> bool {
        self.misses.is_empty()
    }

    /// The recorded misses.
    pub fn misses(&self) -> &[MissRecord] {
        &self.misses
    }

    /// The event trace (empty unless tracing was enabled).
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Number of low→high mode switches.
    pub fn mode_switches(&self) -> u32 {
        self.mode_switches
    }

    /// Number of high→low resets (idle instants).
    pub fn mode_resets(&self) -> u32 {
        self.mode_resets
    }

    /// Jobs released (LC releases suppressed in high mode are *not*
    /// counted here; they appear as drops).
    pub fn released(&self) -> u64 {
        self.released
    }

    /// Jobs that signalled completion.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// LC jobs discarded at switches plus LC releases suppressed during
    /// high mode.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The simulated horizon.
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// Merges another report into this one (used by multiprocessor
    /// simulators to aggregate per-processor results).
    pub fn absorb(&mut self, other: SimReport) {
        self.misses.extend(other.misses);
        self.trace.extend(other.trace);
        self.trace.sort_by_key(|e| e.at());
        self.mode_switches += other.mode_switches;
        self.mode_resets += other.mode_resets;
        self.released += other.released;
        self.completed += other.completed;
        self.dropped += other.dropped;
        self.horizon = self.horizon.max(other.horizon);
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "horizon={} released={} completed={} dropped={} switches={} resets={} misses={}",
            self.horizon,
            self.released,
            self.completed,
            self.dropped,
            self.mode_switches,
            self.mode_resets,
            self.misses.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_accounting() {
        let mut r = SimReport::new(Time::new(100));
        r.push_event(
            true,
            TraceEvent::Release {
                at: Time::new(0),
                task: TaskId(0),
            },
        );
        r.push_event(
            true,
            TraceEvent::Complete {
                at: Time::new(5),
                task: TaskId(0),
            },
        );
        r.push_event(
            true,
            TraceEvent::ModeSwitch {
                at: Time::new(7),
                task: TaskId(0),
            },
        );
        r.push_event(true, TraceEvent::ModeReset { at: Time::new(9) });
        r.push_event(
            true,
            TraceEvent::Drop {
                at: Time::new(7),
                task: TaskId(1),
            },
        );
        assert_eq!(r.released(), 1);
        assert_eq!(r.completed(), 1);
        assert_eq!(r.mode_switches(), 1);
        assert_eq!(r.mode_resets(), 1);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.trace().len(), 5);
        assert!(r.is_success());
    }

    #[test]
    fn misses_fail_the_run() {
        let mut r = SimReport::new(Time::new(10));
        let miss = MissRecord {
            task: TaskId(2),
            release: Time::new(0),
            deadline: Time::new(8),
            criticality: Criticality::High,
        };
        r.push_event(false, TraceEvent::Miss(miss));
        assert!(!r.is_success());
        assert_eq!(r.misses(), &[miss]);
        assert!(r.trace().is_empty(), "tracing disabled");
    }

    #[test]
    fn absorb_merges_and_sorts() {
        let mut a = SimReport::new(Time::new(50));
        a.push_event(
            true,
            TraceEvent::Release {
                at: Time::new(10),
                task: TaskId(0),
            },
        );
        let mut b = SimReport::new(Time::new(80));
        b.push_event(
            true,
            TraceEvent::Release {
                at: Time::new(5),
                task: TaskId(1),
            },
        );
        a.absorb(b);
        assert_eq!(a.released(), 2);
        assert_eq!(a.horizon(), Time::new(80));
        assert_eq!(a.trace()[0].at(), Time::new(5));
    }

    #[test]
    fn displays() {
        let miss = MissRecord {
            task: TaskId(1),
            release: Time::new(3),
            deadline: Time::new(13),
            criticality: Criticality::Low,
        };
        assert!(miss.to_string().contains("τ1"));
        assert!(TraceEvent::Miss(miss).to_string().contains("MISS"));
        assert!(TraceEvent::ModeReset { at: Time::new(4) }
            .to_string()
            .contains("reset"));
        let r = SimReport::new(Time::new(9));
        assert!(r.to_string().contains("horizon=9"));
        assert_eq!(
            TraceEvent::Miss(miss).at(),
            Time::new(13),
            "miss events sort by deadline"
        );
    }
}
