//! Execution scenarios: which jobs overrun and how releases arrive.

use mcsched_model::{Task, Time};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// How job execution demands and release jitter are chosen during a
/// simulation run.
///
/// Scenarios are deterministic: randomized variants carry a seed.
#[derive(Debug, Clone, PartialEq)]
pub enum Scenario {
    /// Every job signals completion at `C^L` — the nominal low-mode
    /// behaviour; no mode switch ever happens.
    LoOnly,
    /// Every HC job demands its full `C^H` — the adversarial sustained
    /// high-mode behaviour (a switch happens in the first busy interval).
    AllHi,
    /// Each HC job independently overruns to `C^H` with the given
    /// probability (per-mill, 0–1000); releases stay periodic.
    RandomOverrun {
        /// Overrun probability in thousandths (e.g. 250 = 25%).
        prob_millis: u32,
        /// RNG seed.
        seed: u64,
    },
    /// Sporadic arrivals: each release is delayed from its earliest legal
    /// instant by a uniform random fraction of the period (up to
    /// `max_delay_millis`/1000), and HC jobs overrun with the given
    /// probability.
    Sporadic {
        /// Maximum release delay as thousandths of the period.
        max_delay_millis: u32,
        /// Overrun probability in thousandths.
        prob_millis: u32,
        /// RNG seed.
        seed: u64,
    },
}

impl Scenario {
    /// The nominal low-mode scenario.
    pub fn lo_only() -> Self {
        Scenario::LoOnly
    }

    /// The adversarial all-overrun scenario.
    pub fn all_hi() -> Self {
        Scenario::AllHi
    }

    /// Random overruns with probability `prob` (clamped to `[0, 1]`).
    pub fn random_overrun(prob: f64, seed: u64) -> Self {
        Scenario::RandomOverrun {
            prob_millis: ((prob.clamp(0.0, 1.0)) * 1000.0) as u32,
            seed,
        }
    }

    /// Sporadic arrivals with up to `max_delay` (fraction of period)
    /// release jitter and `prob` overruns.
    pub fn sporadic(max_delay: f64, prob: f64, seed: u64) -> Self {
        Scenario::Sporadic {
            max_delay_millis: ((max_delay.clamp(0.0, 1.0)) * 1000.0) as u32,
            prob_millis: ((prob.clamp(0.0, 1.0)) * 1000.0) as u32,
            seed,
        }
    }

    /// Instantiates the per-run sampler.
    pub(crate) fn sampler(&self) -> ScenarioSampler {
        let rng = match self {
            Scenario::LoOnly | Scenario::AllHi => StdRng::seed_from_u64(0),
            Scenario::RandomOverrun { seed, .. } | Scenario::Sporadic { seed, .. } => {
                StdRng::seed_from_u64(*seed)
            }
        };
        ScenarioSampler {
            scenario: self.clone(),
            rng,
        }
    }
}

/// Stateful sampler for one simulation run.
#[derive(Debug)]
pub(crate) struct ScenarioSampler {
    scenario: Scenario,
    rng: StdRng,
}

impl ScenarioSampler {
    /// The execution demand of the next job of `task`.
    pub fn demand(&mut self, task: &Task) -> Time {
        if task.criticality().is_low() {
            return task.wcet_lo();
        }
        match &self.scenario {
            Scenario::LoOnly => task.wcet_lo(),
            Scenario::AllHi => task.wcet_hi(),
            Scenario::RandomOverrun { prob_millis, .. }
            | Scenario::Sporadic { prob_millis, .. } => {
                if self.rng.random_range(0..1000) < *prob_millis {
                    task.wcet_hi()
                } else {
                    task.wcet_lo()
                }
            }
        }
    }

    /// The release delay added on top of the earliest legal release.
    pub fn release_delay(&mut self, task: &Task) -> Time {
        match &self.scenario {
            Scenario::Sporadic {
                max_delay_millis, ..
            } => {
                let max = task.period().as_ticks() * u64::from(*max_delay_millis) / 1000;
                if max == 0 {
                    Time::ZERO
                } else {
                    Time::new(self.rng.random_range(0..=max))
                }
            }
            _ => Time::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsched_model::Task;

    fn hc() -> Task {
        Task::hi(0, 10, 2, 5).unwrap()
    }
    fn lc() -> Task {
        Task::lo(1, 10, 3).unwrap()
    }

    #[test]
    fn lo_only_never_overruns() {
        let mut s = Scenario::lo_only().sampler();
        for _ in 0..10 {
            assert_eq!(s.demand(&hc()), Time::new(2));
            assert_eq!(s.demand(&lc()), Time::new(3));
            assert_eq!(s.release_delay(&hc()), Time::ZERO);
        }
    }

    #[test]
    fn all_hi_always_overruns_hc_only() {
        let mut s = Scenario::all_hi().sampler();
        assert_eq!(s.demand(&hc()), Time::new(5));
        assert_eq!(s.demand(&lc()), Time::new(3));
    }

    #[test]
    fn random_overrun_respects_probability_extremes() {
        let mut never = Scenario::random_overrun(0.0, 1).sampler();
        let mut always = Scenario::random_overrun(1.0, 1).sampler();
        for _ in 0..50 {
            assert_eq!(never.demand(&hc()), Time::new(2));
            assert_eq!(always.demand(&hc()), Time::new(5));
        }
    }

    #[test]
    fn random_overrun_is_deterministic_per_seed() {
        let collect = |seed| {
            let mut s = Scenario::random_overrun(0.5, seed).sampler();
            (0..32).map(|_| s.demand(&hc())).collect::<Vec<_>>()
        };
        assert_eq!(collect(9), collect(9));
    }

    #[test]
    fn sporadic_delay_bounded() {
        let mut s = Scenario::sporadic(0.3, 0.0, 4).sampler();
        for _ in 0..100 {
            let d = s.release_delay(&hc());
            assert!(d <= Time::new(3), "delay {d} above 30% of period 10");
        }
    }

    #[test]
    fn constructor_clamping() {
        match Scenario::random_overrun(7.0, 0) {
            Scenario::RandomOverrun { prob_millis, .. } => assert_eq!(prob_millis, 1000),
            other => panic!("unexpected {other:?}"),
        }
        match Scenario::sporadic(-1.0, 0.5, 0) {
            Scenario::Sporadic {
                max_delay_millis, ..
            } => assert_eq!(max_delay_millis, 0),
            other => panic!("unexpected {other:?}"),
        }
    }
}
