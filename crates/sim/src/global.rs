//! Global multiprocessor simulation: one shared ready queue, `m` identical
//! processors, and — crucially — a *global* mode switch.
//!
//! §II of the paper contrasts partitioned and global MC scheduling: under
//! global scheduling a single HC overrun anywhere discards every LC task
//! in the system, while partitioned scheduling confines the damage to one
//! processor. [`GlobalSimulator`] implements the global variant so the
//! contrast can be demonstrated executably (see the
//! `mode_switch_trace` example and the isolation tests).

use crate::policy::Policy;
use crate::report::{MissRecord, SimReport, TraceEvent};
use crate::scenario::Scenario;
use mcsched_model::{Criticality, TaskSet, Time};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Lo,
    Hi,
}

#[derive(Debug, Clone, Copy)]
struct ActiveJob {
    task_idx: usize,
    release: Time,
    abs_deadline: Time,
    abs_vdeadline: Time,
    demand: Time,
    executed: Time,
}

impl ActiveJob {
    fn remaining(&self) -> Time {
        self.demand - self.executed
    }
}

/// A global (work-conserving, fully migrating) multiprocessor simulator.
///
/// At every scheduling point the `m` highest-priority ready jobs run in
/// parallel. A HC budget overrun switches the *whole system* to high mode
/// and discards all LC jobs on every processor.
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// use mcsched_sim::{GlobalSimulator, Policy, Scenario};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = TaskSet::try_from_tasks(vec![
///     Task::hi(0, 10, 2, 4)?,
///     Task::lo(1, 10, 4)?,
///     Task::lo(2, 20, 6)?,
/// ])?;
/// let sim = GlobalSimulator::new(&ts, Policy::edf_vd_scaled(&ts, 0.6), 2);
/// let report = sim.run(&Scenario::lo_only(), 200);
/// assert!(report.is_success());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GlobalSimulator<'a> {
    ts: &'a TaskSet,
    policy: Policy,
    processors: usize,
    record_trace: bool,
    reset_on_idle: bool,
}

impl<'a> GlobalSimulator<'a> {
    /// Creates a global simulator over `m` processors.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or the policy tables mismatch the task count
    /// (as in [`Simulator::new`](crate::Simulator::new)).
    pub fn new(ts: &'a TaskSet, policy: Policy, m: usize) -> Self {
        assert!(m > 0, "at least one processor required");
        if let Policy::EdfVd { virtual_deadlines } = &policy {
            assert_eq!(virtual_deadlines.len(), ts.len());
        }
        if let Policy::FixedPriority { priority_order } = &policy {
            assert_eq!(priority_order.len(), ts.len());
        }
        GlobalSimulator {
            ts,
            policy,
            processors: m,
            record_trace: false,
            reset_on_idle: true,
        }
    }

    /// Enables event-trace recording.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    fn rank(&self, job: &ActiveJob, mode: Mode) -> (u64, u64) {
        match &self.policy {
            Policy::EdfVd { .. } => match mode {
                Mode::Lo => (job.abs_vdeadline.as_ticks(), job.task_idx as u64),
                Mode::Hi => (job.abs_deadline.as_ticks(), job.task_idx as u64),
            },
            Policy::Edf => (job.abs_deadline.as_ticks(), job.task_idx as u64),
            Policy::FixedPriority { priority_order } => {
                let pos = priority_order
                    .iter()
                    .position(|&i| i == job.task_idx)
                    .expect("task in priority order") as u64;
                (pos, 0)
            }
        }
    }

    /// Runs the global simulation for `horizon` ticks.
    pub fn run(&self, scenario: &Scenario, horizon: u64) -> SimReport {
        let horizon = Time::new(horizon);
        let mut report = SimReport::new(horizon);
        if self.ts.is_empty() {
            return report;
        }
        let mut sampler = scenario.sampler();
        let tasks = self.ts.as_slice();
        let n = tasks.len();
        let virtual_deadline = |idx: usize| -> Time {
            match &self.policy {
                Policy::EdfVd { virtual_deadlines } => virtual_deadlines[idx],
                _ => tasks[idx].deadline(),
            }
        };

        let mut next_release: Vec<Time> = (0..n)
            .map(|i| Time::ZERO + sampler.release_delay(&tasks[i]))
            .collect();
        let mut jobs: Vec<ActiveJob> = Vec::with_capacity(2 * n);
        let mut mode = Mode::Lo;
        let mut t = Time::ZERO;

        while t < horizon {
            for (i, task) in tasks.iter().enumerate() {
                while next_release[i] <= t {
                    let release = next_release[i];
                    next_release[i] = release + task.period() + sampler.release_delay(task);
                    if mode == Mode::Hi && task.criticality() == Criticality::Low {
                        report.push_event(
                            self.record_trace,
                            TraceEvent::Drop {
                                at: release,
                                task: task.id(),
                            },
                        );
                        continue;
                    }
                    let demand = sampler.demand(task);
                    jobs.push(ActiveJob {
                        task_idx: i,
                        release,
                        abs_deadline: release + task.deadline(),
                        abs_vdeadline: release + virtual_deadline(i),
                        demand,
                        executed: Time::ZERO,
                    });
                    report.push_event(
                        self.record_trace,
                        TraceEvent::Release {
                            at: release,
                            task: task.id(),
                        },
                    );
                }
            }

            jobs.retain(|job| {
                if job.abs_deadline <= t && !job.remaining().is_zero() {
                    report.push_event(
                        self.record_trace,
                        TraceEvent::Miss(MissRecord {
                            task: tasks[job.task_idx].id(),
                            release: job.release,
                            deadline: job.abs_deadline,
                            criticality: tasks[job.task_idx].criticality(),
                        }),
                    );
                    false
                } else {
                    true
                }
            });

            // Select the m highest-priority jobs.
            let mut order: Vec<usize> = (0..jobs.len()).collect();
            order.sort_by_key(|&i| self.rank(&jobs[i], mode));
            let running: Vec<usize> = order.into_iter().take(self.processors).collect();

            if running.is_empty() {
                if mode == Mode::Hi && self.reset_on_idle {
                    mode = Mode::Lo;
                    report.push_event(self.record_trace, TraceEvent::ModeReset { at: t });
                }
                match next_release.iter().copied().min() {
                    Some(next) if next < horizon => t = next,
                    _ => break,
                }
                continue;
            }

            // Advance to the earliest boundary across all running jobs.
            let mut delta = horizon - t;
            for &ri in &running {
                let job = &jobs[ri];
                let task = &tasks[job.task_idx];
                delta = delta.min(job.remaining());
                if mode == Mode::Lo
                    && task.criticality() == Criticality::High
                    && job.demand > task.wcet_lo()
                    && job.executed < task.wcet_lo()
                {
                    delta = delta.min(task.wcet_lo() - job.executed);
                }
            }
            if let Some(next) = next_release.iter().copied().filter(|&r| r > t).min() {
                delta = delta.min(next - t);
            }
            if let Some(dl) = jobs.iter().map(|j| j.abs_deadline).filter(|&d| d > t).min() {
                delta = delta.min(dl - t);
            }
            if delta.is_zero() {
                break;
            }
            for &ri in &running {
                jobs[ri].executed += delta;
            }
            t += delta;

            // Handle boundaries: completions first, then overruns.
            let mut switched_by: Option<usize> = None;
            let mut finished: Vec<usize> = Vec::new();
            for &ri in &running {
                let job = jobs[ri];
                let task = &tasks[job.task_idx];
                if job.remaining().is_zero() {
                    finished.push(ri);
                } else if mode == Mode::Lo
                    && task.criticality() == Criticality::High
                    && job.executed == task.wcet_lo()
                {
                    switched_by.get_or_insert(job.task_idx);
                }
            }
            finished.sort_unstable_by(|a, b| b.cmp(a));
            for ri in finished {
                report.push_event(
                    self.record_trace,
                    TraceEvent::Complete {
                        at: t,
                        task: tasks[jobs[ri].task_idx].id(),
                    },
                );
                jobs.swap_remove(ri);
            }
            if let Some(overrunner) = switched_by {
                mode = Mode::Hi;
                report.push_event(
                    self.record_trace,
                    TraceEvent::ModeSwitch {
                        at: t,
                        task: tasks[overrunner].id(),
                    },
                );
                let record = self.record_trace;
                jobs.retain(|j| {
                    if tasks[j.task_idx].criticality() == Criticality::Low {
                        report.push_event(
                            record,
                            TraceEvent::Drop {
                                at: t,
                                task: tasks[j.task_idx].id(),
                            },
                        );
                        false
                    } else {
                        true
                    }
                });
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsched_model::Task;

    fn set(tasks: Vec<Task>) -> TaskSet {
        TaskSet::try_from_tasks(tasks).unwrap()
    }

    #[test]
    fn parallel_execution_uses_all_processors() {
        // Two tasks each of utilization 1.0 fit on two processors.
        let ts = set(vec![
            Task::lo(0, 10, 10).unwrap(),
            Task::lo(1, 10, 10).unwrap(),
        ]);
        let r = GlobalSimulator::new(&ts, Policy::Edf, 2).run(&Scenario::lo_only(), 100);
        assert!(r.is_success());
        assert_eq!(r.completed(), 20);
    }

    #[test]
    fn single_processor_matches_uniprocessor_load() {
        let ts = set(vec![
            Task::lo(0, 10, 6).unwrap(),
            Task::lo(1, 10, 6).unwrap(),
        ]);
        let r = GlobalSimulator::new(&ts, Policy::Edf, 1).run(&Scenario::lo_only(), 100);
        assert!(!r.is_success(), "1.2 utilization on one processor");
        let r2 = GlobalSimulator::new(&ts, Policy::Edf, 2).run(&Scenario::lo_only(), 100);
        assert!(r2.is_success());
    }

    #[test]
    fn global_switch_drops_lc_everywhere() {
        // One overrunning HC task plus LC work that would be isolated under
        // partitioning: under global scheduling every LC job is dropped.
        let ts = set(vec![
            Task::hi(0, 10, 2, 6).unwrap(),
            Task::lo(1, 10, 3).unwrap(),
            Task::lo(2, 20, 4).unwrap(),
        ]);
        let r = GlobalSimulator::new(&ts, Policy::edf_vd_scaled(&ts, 0.5), 2)
            .with_trace()
            .run(&Scenario::all_hi(), 40);
        assert!(r.mode_switches() > 0);
        // Both LC tasks experience drops.
        let dropped: std::collections::HashSet<u32> = r
            .trace()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Drop { task, .. } => Some(task.0),
                _ => None,
            })
            .collect();
        assert!(dropped.contains(&1) && dropped.contains(&2), "{dropped:?}");
    }

    #[test]
    fn empty_set() {
        let ts = TaskSet::new();
        let r = GlobalSimulator::new(&ts, Policy::Edf, 2).run(&Scenario::all_hi(), 10);
        assert!(r.is_success());
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_panics() {
        let ts = set(vec![Task::lo(0, 10, 1).unwrap()]);
        let _ = GlobalSimulator::new(&ts, Policy::Edf, 0);
    }

    #[test]
    fn dhall_effect_visible() {
        // The classic global-EDF pathology: m light tasks + one heavy task.
        // Global EDF on 2 processors misses; the workload is partitionable.
        let ts = set(vec![
            Task::lo_constrained(0, 10, 1, 2).unwrap(),
            Task::lo_constrained(1, 10, 1, 2).unwrap(),
            Task::lo(2, 10, 10).unwrap(),
        ]);
        let r = GlobalSimulator::new(&ts, Policy::Edf, 2).run(&Scenario::lo_only(), 50);
        // The two short jobs (earlier deadlines) occupy both processors in
        // [0, 1]; the full-utilization τ2 then has only 9 of the 10 ticks
        // it needs — a miss, although the set is trivially partitionable
        // (τ2 alone on one processor, the short tasks on the other).
        assert!(!r.is_success(), "Dhall effect should bite");
    }
}
