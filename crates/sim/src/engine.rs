//! The uniprocessor discrete-event engine.

use crate::policy::Policy;
use crate::report::{MissRecord, SimReport, TraceEvent};
use crate::scenario::Scenario;
use mcsched_model::{Criticality, TaskSet, Time};

/// Processor execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Lo,
    Hi,
}

/// A released, not-yet-finished job.
#[derive(Debug, Clone, Copy)]
struct ActiveJob {
    task_idx: usize,
    release: Time,
    abs_deadline: Time,
    abs_vdeadline: Time,
    demand: Time,
    executed: Time,
}

impl ActiveJob {
    fn remaining(&self) -> Time {
        self.demand - self.executed
    }
}

/// A preemptive uniprocessor simulator for one task set under one
/// [`Policy`].
///
/// Semantics:
///
/// * Jobs are released periodically (plus scenario-controlled sporadic
///   delay) starting at time 0.
/// * In low mode the policy's low-mode priority applies (virtual deadlines
///   for EDF-VD). When a HC job executes `C^L` without signalling
///   completion, the processor switches to high mode *at that instant*:
///   all pending LC jobs are discarded, LC releases are suppressed, and
///   EDF-VD reverts to real deadlines.
/// * When a high-mode processor idles, it resets to low mode (the standard
///   idle-instant protocol), and LC releases resume.
/// * A *required* deadline miss (any job in low mode; HC jobs in high
///   mode) is recorded and the job is abandoned.
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// use mcsched_sim::{Simulator, Policy, Scenario};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = TaskSet::try_from_tasks(vec![Task::lo(0, 10, 5)?])?;
/// let report = Simulator::new(&ts, Policy::Edf).run(&Scenario::lo_only(), 100);
/// assert!(report.is_success());
/// assert_eq!(report.completed(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    ts: &'a TaskSet,
    policy: Policy,
    record_trace: bool,
    reset_on_idle: bool,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for a task set under a policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy's per-task tables do not match the task count.
    pub fn new(ts: &'a TaskSet, policy: Policy) -> Self {
        match &policy {
            Policy::EdfVd { virtual_deadlines } => {
                assert_eq!(
                    virtual_deadlines.len(),
                    ts.len(),
                    "one virtual deadline per task required"
                );
            }
            Policy::FixedPriority { priority_order } => {
                assert_eq!(
                    priority_order.len(),
                    ts.len(),
                    "priority order must cover every task"
                );
            }
            Policy::Edf => {}
        }
        Simulator {
            ts,
            policy,
            record_trace: false,
            reset_on_idle: true,
        }
    }

    /// Enables event-trace recording (off by default; traces grow linearly
    /// with simulated time).
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Disables the high→low reset at idle instants (the processor then
    /// stays in high mode forever after the first switch).
    pub fn without_idle_reset(mut self) -> Self {
        self.reset_on_idle = false;
        self
    }

    /// Rank of a job under the current mode: lower is higher priority.
    fn rank(&self, job: &ActiveJob, mode: Mode) -> (u64, u64) {
        match &self.policy {
            Policy::EdfVd { .. } => match mode {
                Mode::Lo => (job.abs_vdeadline.as_ticks(), job.task_idx as u64),
                Mode::Hi => (job.abs_deadline.as_ticks(), job.task_idx as u64),
            },
            Policy::Edf => (job.abs_deadline.as_ticks(), job.task_idx as u64),
            Policy::FixedPriority { priority_order } => {
                let pos = priority_order
                    .iter()
                    .position(|&i| i == job.task_idx)
                    .expect("job's task present in priority order")
                    as u64;
                (pos, 0)
            }
        }
    }

    /// Runs the simulation for `horizon` ticks.
    pub fn run(&self, scenario: &Scenario, horizon: u64) -> SimReport {
        let horizon = Time::new(horizon);
        let mut report = SimReport::new(horizon);
        if self.ts.is_empty() {
            return report;
        }
        let mut sampler = scenario.sampler();
        let tasks = self.ts.as_slice();
        let n = tasks.len();

        let virtual_deadline = |idx: usize| -> Time {
            match &self.policy {
                Policy::EdfVd { virtual_deadlines } => virtual_deadlines[idx],
                _ => tasks[idx].deadline(),
            }
        };

        // Next earliest release instant per task (with sporadic delay).
        let mut next_release: Vec<Time> = (0..n)
            .map(|i| Time::ZERO + sampler.release_delay(&tasks[i]))
            .collect();
        let mut jobs: Vec<ActiveJob> = Vec::with_capacity(2 * n);
        let mut mode = Mode::Lo;
        let mut t = Time::ZERO;

        while t < horizon {
            // 1. Releases due at or before t.
            for (i, task) in tasks.iter().enumerate() {
                while next_release[i] <= t {
                    let release = next_release[i];
                    next_release[i] = release + task.period() + sampler.release_delay(task);
                    if mode == Mode::Hi && task.criticality() == Criticality::Low {
                        report.push_event(
                            self.record_trace,
                            TraceEvent::Drop {
                                at: release,
                                task: task.id(),
                            },
                        );
                        continue;
                    }
                    let demand = sampler.demand(task);
                    jobs.push(ActiveJob {
                        task_idx: i,
                        release,
                        abs_deadline: release + task.deadline(),
                        abs_vdeadline: release + virtual_deadline(i),
                        demand,
                        executed: Time::ZERO,
                    });
                    report.push_event(
                        self.record_trace,
                        TraceEvent::Release {
                            at: release,
                            task: task.id(),
                        },
                    );
                }
            }

            // 2. Deadline misses at or before t.
            jobs.retain(|job| {
                if job.abs_deadline <= t && !job.remaining().is_zero() {
                    report.push_event(
                        self.record_trace,
                        TraceEvent::Miss(MissRecord {
                            task: tasks[job.task_idx].id(),
                            release: job.release,
                            deadline: job.abs_deadline,
                            criticality: tasks[job.task_idx].criticality(),
                        }),
                    );
                    false
                } else {
                    true
                }
            });

            // 3. Pick the highest-priority ready job.
            let running = jobs
                .iter()
                .enumerate()
                .min_by_key(|(_, j)| self.rank(j, mode))
                .map(|(idx, _)| idx);

            let Some(running) = running else {
                // Idle: possibly reset to low mode, then jump to the next
                // release (or finish).
                if mode == Mode::Hi && self.reset_on_idle {
                    mode = Mode::Lo;
                    report.push_event(self.record_trace, TraceEvent::ModeReset { at: t });
                }
                match next_release.iter().copied().min() {
                    Some(next) if next < horizon => t = next,
                    _ => break,
                }
                continue;
            };

            // 4. Advance to the next event boundary.
            let job = jobs[running];
            let task = &tasks[job.task_idx];
            let mut delta = job.remaining();
            if mode == Mode::Lo
                && task.criticality() == Criticality::High
                && job.demand > task.wcet_lo()
                && job.executed < task.wcet_lo()
            {
                delta = delta.min(task.wcet_lo() - job.executed);
            }
            if let Some(next) = next_release.iter().copied().min() {
                if next > t {
                    delta = delta.min(next - t);
                }
            }
            if let Some(dl) = jobs.iter().map(|j| j.abs_deadline).filter(|&d| d > t).min() {
                delta = delta.min(dl - t);
            }
            delta = delta.min(horizon - t);
            if delta.is_zero() {
                // Horizon reached exactly.
                break;
            }
            jobs[running].executed += delta;
            t += delta;

            // 5. Handle the boundary.
            let job = jobs[running];
            if job.remaining().is_zero() {
                report.push_event(
                    self.record_trace,
                    TraceEvent::Complete {
                        at: t,
                        task: task.id(),
                    },
                );
                jobs.swap_remove(running);
            } else if mode == Mode::Lo
                && task.criticality() == Criticality::High
                && job.executed == task.wcet_lo()
            {
                // Budget overrun without completion: mode switch.
                mode = Mode::Hi;
                report.push_event(
                    self.record_trace,
                    TraceEvent::ModeSwitch {
                        at: t,
                        task: task.id(),
                    },
                );
                let record = self.record_trace;
                jobs.retain(|j| {
                    if tasks[j.task_idx].criticality() == Criticality::Low {
                        report.push_event(
                            record,
                            TraceEvent::Drop {
                                at: t,
                                task: tasks[j.task_idx].id(),
                            },
                        );
                        false
                    } else {
                        true
                    }
                });
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsched_model::Task;

    fn set(tasks: Vec<Task>) -> TaskSet {
        TaskSet::try_from_tasks(tasks).unwrap()
    }

    #[test]
    fn single_task_periodic_completion() {
        let ts = set(vec![Task::lo(0, 10, 4).unwrap()]);
        let r = Simulator::new(&ts, Policy::Edf).run(&Scenario::lo_only(), 100);
        assert!(r.is_success());
        assert_eq!(r.released(), 10);
        assert_eq!(r.completed(), 10);
        assert_eq!(r.mode_switches(), 0);
    }

    #[test]
    fn overloaded_edf_misses() {
        let ts = set(vec![
            Task::lo(0, 10, 6).unwrap(),
            Task::lo(1, 10, 6).unwrap(),
        ]);
        let r = Simulator::new(&ts, Policy::Edf).run(&Scenario::lo_only(), 100);
        assert!(!r.is_success());
    }

    #[test]
    fn mode_switch_drops_lc() {
        let ts = set(vec![
            Task::hi(0, 10, 2, 6).unwrap(),
            Task::lo(1, 10, 3).unwrap(),
        ]);
        let r = Simulator::new(&ts, Policy::edf_vd_scaled(&ts, 0.5))
            .with_trace()
            .run(&Scenario::all_hi(), 50);
        assert!(r.mode_switches() > 0, "HC overruns must trigger switches");
        assert!(r.dropped() > 0, "LC work must be shed in high mode");
        assert!(r.is_success(), "misses: {:?}", r.misses());
        // The trace contains a switch before any drop.
        let first_switch = r
            .trace()
            .iter()
            .position(|e| matches!(e, TraceEvent::ModeSwitch { .. }))
            .unwrap();
        let first_drop = r
            .trace()
            .iter()
            .position(|e| matches!(e, TraceEvent::Drop { .. }))
            .unwrap();
        assert!(first_switch < first_drop);
    }

    #[test]
    fn idle_reset_restores_lc_service() {
        let ts = set(vec![
            Task::hi(0, 20, 2, 4).unwrap(),
            Task::lo(1, 20, 3).unwrap(),
        ]);
        // One overrun then LO forever: first busy interval switches, later
        // intervals run normally after the reset.
        let r = Simulator::new(&ts, Policy::edf_vd_scaled(&ts, 0.5))
            .run(&Scenario::random_overrun(0.2, 3), 400);
        assert!(r.is_success());
        if r.mode_switches() > 0 {
            assert!(r.mode_resets() > 0, "switches must be followed by resets");
        }
        // LC jobs complete in the low-mode intervals.
        assert!(r.completed() > 10);
    }

    #[test]
    fn without_idle_reset_stays_high() {
        let ts = set(vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::lo(1, 10, 3).unwrap(),
        ]);
        let r = Simulator::new(&ts, Policy::edf_vd_scaled(&ts, 0.5))
            .without_idle_reset()
            .run(&Scenario::all_hi(), 200);
        assert_eq!(r.mode_switches(), 1, "switches once, never resets");
        assert_eq!(r.mode_resets(), 0);
        assert!(r.is_success());
    }

    #[test]
    fn fixed_priority_respects_order() {
        // τ1 has higher DM priority (D=5); τ0's first job must wait.
        let ts = set(vec![
            Task::lo(0, 20, 6).unwrap(),
            Task::lo_constrained(1, 20, 5, 5).unwrap(),
        ]);
        let r = Simulator::new(&ts, Policy::deadline_monotonic(&ts))
            .with_trace()
            .run(&Scenario::lo_only(), 20);
        assert!(r.is_success());
        // τ1 completes at 5, τ0 at 11.
        let completions: Vec<(Time, u32)> = r
            .trace()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Complete { at, task } => Some((*at, task.0)),
                _ => None,
            })
            .collect();
        assert_eq!(completions, vec![(Time::new(5), 1), (Time::new(11), 0)]);
    }

    #[test]
    fn edf_vd_prevents_miss_that_plain_edf_allows() {
        // Classic EDF-VD motivation: with virtual deadlines the HC task is
        // prioritised early enough in low mode to absorb an overrun.
        // U_LL = 0.5 (T=10,C=5), HC: u^L = 0.2, u^H = 0.45 (T=20).
        let ts = set(vec![
            Task::hi(0, 20, 4, 9).unwrap(),
            Task::lo(1, 10, 5).unwrap(),
        ]);
        // EDF-VD test accepts: x = 0.2/0.5 = 0.4, 0.4·0.5 + 0.45 = 0.65.
        let x = mcsched_analysis::EdfVd::new()
            .scaling_factor(&ts)
            .expect("accepted");
        let vd = Simulator::new(&ts, Policy::edf_vd_scaled(&ts, x)).run(&Scenario::all_hi(), 400);
        assert!(vd.is_success(), "EDF-VD must hold: {:?}", vd.misses());
    }

    #[test]
    fn empty_set_is_trivial() {
        let ts = TaskSet::new();
        let r = Simulator::new(&ts, Policy::Edf).run(&Scenario::all_hi(), 100);
        assert!(r.is_success());
        assert_eq!(r.released(), 0);
    }

    #[test]
    fn sporadic_arrivals_shift_releases() {
        let ts = set(vec![Task::lo(0, 10, 2).unwrap()]);
        let periodic = Simulator::new(&ts, Policy::Edf).run(&Scenario::lo_only(), 100);
        let sporadic = Simulator::new(&ts, Policy::Edf).run(&Scenario::sporadic(0.5, 0.0, 11), 100);
        assert!(sporadic.released() <= periodic.released());
        assert!(sporadic.is_success());
    }

    #[test]
    #[should_panic(expected = "one virtual deadline per task")]
    fn mismatched_policy_table_panics() {
        let ts = set(vec![Task::lo(0, 10, 2).unwrap()]);
        let _ = Simulator::new(
            &ts,
            Policy::EdfVd {
                virtual_deadlines: vec![],
            },
        );
    }

    #[test]
    fn lo_mode_misses_attributed_to_lc() {
        // LC-heavy overload in low mode: misses recorded with criticality.
        let ts = set(vec![
            Task::lo(0, 10, 9).unwrap(),
            Task::lo(1, 10, 9).unwrap(),
        ]);
        let r = Simulator::new(&ts, Policy::Edf).run(&Scenario::lo_only(), 60);
        assert!(!r.is_success());
        assert!(r.misses().iter().all(|m| m.criticality == Criticality::Low));
    }
}
