//! A **live cluster**: the partitioning inner loop kept warm across
//! requests, for admission control as a service.
//!
//! [`Partition::build`](crate::Partition::build) packs one frozen task
//! set and throws its per-processor admission states away. A
//! [`ClusterSession`] keeps those states alive so a stream of
//! `admit` / `remove` / `query` operations against a persistent
//! `m`-processor cluster is answered incrementally — O(1) closed forms,
//! warm QPA resumes and cached response-time fixpoints instead of a cold
//! re-analysis per request.
//!
//! Placement is *exactly* the build loop's: the task's fit rule orders
//! processors by their cached utilization summaries, and the first
//! processor whose admission state accepts the union receives the task.
//! Every verdict is therefore bit-identical to what the one-shot test
//! would say on that processor's committed set plus the candidate (the
//! admission layer's equivalence guarantee), which the session-lifecycle
//! oracle tests pin against a clone-and-retest mirror.
//!
//! # Example
//!
//! ```
//! use mcsched_core::AlgorithmRegistry;
//! use mcsched_model::{Task, TaskId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let registry = AlgorithmRegistry::standard();
//! let mut cluster = registry.open_session("CU-UDP-EDF-VD", 2)?;
//!
//! let placed = cluster.admit(Task::hi(0, 10, 2, 4)?);
//! assert!(placed.is_ok());
//! cluster.admit(Task::lo(1, 20, 6)?).unwrap();
//! assert_eq!(cluster.task_count(), 2);
//!
//! // A probe answers "would this fit?" without committing anything.
//! assert!(cluster.probe(&Task::lo(2, 20, 1)?).is_some());
//! assert_eq!(cluster.task_count(), 2);
//!
//! // Departures free capacity on the exact processor the task held.
//! assert!(cluster.remove(TaskId(0)).is_some());
//! assert_eq!(cluster.task_count(), 1);
//! # Ok(())
//! # }
//! ```

use crate::strategy::PartitionStrategy;
use mcsched_analysis::{AdmissionState, AdmissionStats, SessionTest, WorkspaceRef};
use mcsched_model::{SystemUtilization, Task, TaskId, TaskSet};
use std::error::Error;
use std::fmt;

/// Why a [`ClusterSession::admit`] did not place the task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// A committed task already uses this id; admit it under a fresh id
    /// or remove the old task first.
    DuplicateId(TaskId),
    /// No processor's schedulability test accepted the union; the cluster
    /// is unchanged. Carries each processor's task count at rejection
    /// time, mirroring [`PartitionError`](crate::PartitionError).
    Unschedulable {
        /// The rejected task's id.
        task: TaskId,
        /// Tasks held per processor when the admission failed.
        processor_loads: Vec<usize>,
    },
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::DuplicateId(id) => {
                write!(f, "task {id} is already committed to this cluster")
            }
            AdmitError::Unschedulable {
                task,
                processor_loads,
            } => {
                write!(
                    f,
                    "task {task} not schedulable on any of {} processors (loads: ",
                    processor_loads.len()
                )?;
                for (k, load) in processor_loads.iter().enumerate() {
                    if k > 0 {
                        write!(f, "/")?;
                    }
                    write!(f, "{load}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl Error for AdmitError {}

/// A persistent `m`-processor cluster with live per-processor admission
/// states (see the [module docs](self)).
///
/// Created by [`AlgorithmSpec::open_cluster`](crate::AlgorithmSpec::open_cluster)
/// or [`AlgorithmRegistry::open_session`](crate::AlgorithmRegistry::open_session).
/// The states share one analysis workspace, so steady-state admissions
/// allocate nothing; the session is single-threaded by construction
/// (states hold `Rc` scratch handles) — a service runs one session per
/// connection worker.
pub struct ClusterSession {
    name: String,
    strategy: PartitionStrategy,
    states: Vec<Box<dyn AdmissionState>>,
    summaries: Vec<SystemUtilization>,
    /// Scratch for fit-rule processor ordering (reused across requests).
    order: Vec<usize>,
    /// Where each committed task lives: `(id, processor)` in admission
    /// order. Authoritative for `remove` without scanning every state.
    placements: Vec<(TaskId, usize)>,
}

impl ClusterSession {
    /// Assembles a session from its parts; `states` must be one fresh
    /// admission state per processor for the strategy's test (the typed
    /// constructors in [`AlgorithmSpec`](crate::AlgorithmSpec) handle
    /// this).
    pub(crate) fn from_parts(
        name: String,
        strategy: PartitionStrategy,
        states: Vec<Box<dyn AdmissionState>>,
    ) -> Self {
        let m = states.len();
        ClusterSession {
            name,
            strategy,
            states,
            summaries: vec![SystemUtilization::default(); m],
            order: Vec::with_capacity(m),
            placements: Vec::new(),
        }
    }

    /// Assembles a session whose processors run fresh admission states
    /// of an arbitrary [`SessionTest`] under `strategy`'s placement
    /// policy.
    ///
    /// This is the oracle hook: wrapping a reference test in
    /// [`OneShot`](mcsched_analysis::OneShot) builds a clone-and-retest
    /// mirror of a production session
    /// ([`AlgorithmSpec::open_cluster`](crate::AlgorithmSpec::open_cluster))
    /// for bit-identical equivalence checks.
    pub fn with_test<T: SessionTest>(
        name: impl Into<String>,
        strategy: PartitionStrategy,
        test: &T,
        m: usize,
    ) -> ClusterSession {
        let states = owned_states(test, m);
        ClusterSession::from_parts(name.into(), strategy, states)
    }

    /// The algorithm display name (e.g. `"CU-UDP-EDF-VD"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The processor count `m`.
    pub fn processor_count(&self) -> usize {
        self.states.len()
    }

    /// Committed tasks across all processors.
    pub fn task_count(&self) -> usize {
        self.placements.len()
    }

    /// The processor currently holding `id`.
    pub fn processor_of(&self, id: TaskId) -> Option<usize> {
        self.placements
            .iter()
            .find_map(|&(tid, k)| (tid == id).then_some(k))
    }

    /// The committed task set of processor `k`.
    pub fn processor(&self, k: usize) -> Option<&TaskSet> {
        self.states.get(k).map(|s| s.tasks())
    }

    /// The cached per-processor utilization summaries (bit-identical to
    /// recomputing from the committed sets).
    pub fn summaries(&self) -> &[SystemUtilization] {
        &self.summaries
    }

    /// Aggregated admission counters across all processors.
    pub fn stats(&self) -> AdmissionStats {
        let mut total = AdmissionStats::default();
        for s in &self.states {
            total.merge(&s.stats());
        }
        total
    }

    /// Task ids per processor — the session's partition witness.
    pub fn snapshot(&self) -> Vec<Vec<TaskId>> {
        self.states
            .iter()
            .map(|s| s.tasks().iter().map(Task::id).collect())
            .collect()
    }

    /// All committed tasks as one set (admission order within each
    /// processor, processors in index order) — the "surviving task set"
    /// the lifecycle oracle replays.
    pub fn committed_tasks(&self) -> TaskSet {
        let mut ts = TaskSet::with_capacity(self.task_count());
        for s in &self.states {
            for t in s.tasks() {
                ts.push_unchecked(*t);
            }
        }
        ts
    }

    /// The processor order the task's fit rule would try right now.
    fn fit_order(&mut self, task: &Task) -> &[usize] {
        self.strategy
            .fit_for(task)
            .processor_order_by_summary_into(&self.summaries, &mut self.order);
        &self.order
    }

    /// Admits `task` onto the first processor (in the task's fit order)
    /// whose test accepts the union, committing it there and returning
    /// the processor index.
    ///
    /// # Errors
    ///
    /// [`AdmitError::DuplicateId`] if the id is already committed (the
    /// cluster is unchanged), [`AdmitError::Unschedulable`] if every
    /// processor rejects the union (likewise unchanged).
    pub fn admit(&mut self, task: Task) -> Result<usize, AdmitError> {
        if self.processor_of(task.id()).is_some() {
            return Err(AdmitError::DuplicateId(task.id()));
        }
        self.fit_order(&task);
        for idx in 0..self.order.len() {
            let k = self.order[idx];
            if self.states[k].try_admit(&task) {
                let id = task.id();
                self.states[k].commit(task);
                self.summaries[k] = self.states[k].summary();
                self.placements.push((id, k));
                return Ok(k);
            }
        }
        Err(AdmitError::Unschedulable {
            task: task.id(),
            processor_loads: self.states.iter().map(|s| s.tasks().len()).collect(),
        })
    }

    /// Force-places `task` on `processor` **without consulting the
    /// admission test** — the journal-replay path. Recovery replays
    /// placements a live session already proved admissible, in commit
    /// order, so the rebuilt states and summaries are bit-identical to
    /// the pre-crash session (summaries accumulate in the same insertion
    /// order). Returns `false` (cluster unchanged) on a duplicate id or
    /// an out-of-range processor — a corrupt journal row, which the
    /// caller reports rather than replays.
    pub fn restore(&mut self, task: Task, processor: usize) -> bool {
        if self.processor_of(task.id()).is_some() {
            return false;
        }
        let Some(state) = self.states.get_mut(processor) else {
            return false;
        };
        let id = task.id();
        state.commit(task);
        let summary = state.summary();
        if let Some(slot) = self.summaries.get_mut(processor) {
            *slot = summary;
        }
        self.placements.push((id, processor));
        true
    }

    /// Answers where [`admit`](ClusterSession::admit) *would* place the
    /// task, without committing anything: `Some(processor)` or `None`
    /// (unschedulable everywhere, or the id is already committed).
    pub fn probe(&mut self, task: &Task) -> Option<usize> {
        if self.processor_of(task.id()).is_some() {
            return None;
        }
        self.fit_order(task);
        for idx in 0..self.order.len() {
            let k = self.order[idx];
            if self.states[k].try_admit(task) {
                return Some(k);
            }
        }
        None
    }

    /// Removes the committed task `id`, returning the processor it held.
    /// The processor's cached analysis state is invalidated exactly as
    /// the admission layer specifies; subsequent admissions warm back up.
    pub fn remove(&mut self, id: TaskId) -> Option<usize> {
        let pos = self.placements.iter().position(|&(tid, _)| tid == id)?;
        let (_, k) = self.placements.swap_remove(pos);
        let removed = self.states[k].remove(id);
        debug_assert!(removed, "placement table out of sync with state {k}");
        self.summaries[k] = self.states[k].summary();
        Some(k)
    }
}

impl fmt::Debug for ClusterSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterSession")
            .field("name", &self.name)
            .field("processors", &self.states.len())
            .field("tasks", &self.placements.len())
            .finish()
    }
}

/// Builds the per-processor owning admission states for a test, all
/// sharing one workspace (see [`SessionTest`]).
pub(crate) fn owned_states<T>(test: &T, m: usize) -> Vec<Box<dyn AdmissionState>>
where
    T: SessionTest,
{
    let ws = WorkspaceRef::new();
    (0..m).map(|_| test.owned_admission_state_in(&ws)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{AlgorithmRegistry, TestName};
    use crate::{presets, AlgorithmSpec};
    use mcsched_analysis::{IncrementalTest, OneShot, SchedulabilityTest};
    use std::rc::Rc;

    fn hi(id: u32, t: u64, cl: u64, ch: u64) -> Task {
        Task::hi(id, t, cl, ch).unwrap()
    }
    fn lo(id: u32, t: u64, c: u64) -> Task {
        Task::lo(id, t, c).unwrap()
    }

    fn session(name: &str, m: usize) -> ClusterSession {
        AlgorithmRegistry::standard().open_session(name, m).unwrap()
    }

    #[test]
    fn admit_places_and_accounts() {
        let mut c = session("CA-UDP-EDF-VD", 2);
        assert_eq!(c.name(), "CA-UDP-EDF-VD");
        assert_eq!(c.processor_count(), 2);
        let k0 = c.admit(hi(0, 10, 2, 5)).unwrap();
        let k1 = c.admit(hi(1, 10, 2, 5)).unwrap();
        // UDP worst-fit spreads the two HC tasks across processors.
        assert_ne!(k0, k1);
        assert_eq!(c.task_count(), 2);
        assert_eq!(c.processor_of(TaskId(0)), Some(k0));
        assert_eq!(c.processor(k0).unwrap().len(), 1);
        // Summaries track the states bit-for-bit.
        for (k, s) in c.summaries().iter().enumerate() {
            let fresh = c.processor(k).unwrap().system_utilization();
            assert_eq!(s.u_hh.to_bits(), fresh.u_hh.to_bits());
        }
        let stats = c.stats();
        assert_eq!(stats.admits, 2);
    }

    #[test]
    fn duplicate_ids_are_rejected_without_mutation() {
        let mut c = session("CU-UDP-EDF-VD", 2);
        c.admit(lo(3, 10, 1)).unwrap();
        let err = c.admit(lo(3, 20, 1)).unwrap_err();
        assert_eq!(err, AdmitError::DuplicateId(TaskId(3)));
        assert!(err.to_string().contains("already committed"));
        assert_eq!(c.task_count(), 1);
        // Probe of a committed id answers None rather than double-placing.
        assert_eq!(c.probe(&lo(3, 20, 1)), None);
    }

    #[test]
    fn unschedulable_admit_leaves_cluster_unchanged() {
        let mut c = session("CA-UDP-EDF-VD", 2);
        c.admit(hi(0, 10, 5, 9)).unwrap();
        c.admit(hi(1, 10, 5, 9)).unwrap();
        let err = c.admit(hi(2, 10, 5, 9)).unwrap_err();
        match &err {
            AdmitError::Unschedulable {
                task,
                processor_loads,
            } => {
                assert_eq!(*task, TaskId(2));
                assert_eq!(processor_loads, &vec![1, 1]);
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert!(err.to_string().contains("loads: 1/1"));
        assert_eq!(c.task_count(), 2);
        // The rejected task is also not probeable.
        assert_eq!(c.probe(&hi(2, 10, 5, 9)), None);
    }

    #[test]
    fn probe_matches_admit_without_committing() {
        let mut c = session("CA-UDP-ECDF", 3);
        for t in [hi(0, 10, 2, 4), lo(1, 20, 6), hi(2, 25, 3, 8)] {
            let probed = c.probe(&t);
            let admitted = c.admit(t).ok();
            assert_eq!(probed, admitted, "probe and admit diverged on {t:?}");
        }
        assert_eq!(c.task_count(), 3);
    }

    #[test]
    fn remove_frees_the_right_processor() {
        let mut c = session("CA-UDP-EDF-VD", 2);
        let k0 = c.admit(hi(0, 10, 5, 9)).unwrap();
        let k1 = c.admit(hi(1, 10, 5, 9)).unwrap();
        assert_eq!(c.probe(&hi(2, 10, 5, 9)), None);
        assert_eq!(c.remove(TaskId(0)), Some(k0));
        assert_eq!(c.remove(TaskId(0)), None, "double remove");
        // Capacity is back: the replacement lands on the freed processor.
        let k2 = c.admit(hi(2, 10, 5, 9)).unwrap();
        assert_eq!(k2, k0);
        assert_ne!(k2, k1);
        let snapshot = c.snapshot();
        assert_eq!(snapshot[k1], vec![TaskId(1)]);
        assert_eq!(snapshot[k2], vec![TaskId(2)]);
        let union = c.committed_tasks();
        assert_eq!(union.len(), 2);
        assert!(union.get(TaskId(0)).is_none());
    }

    #[test]
    fn every_processor_always_passes_its_test() {
        // Invariant across a mixed admit/remove sequence, for each test.
        for test in TestName::ALL {
            let spec = AlgorithmSpec::new(presets::ca_udp(), test);
            let mut c = spec.open_cluster(2);
            let one_shot = uni_test(test);
            let tasks = [
                hi(0, 10, 2, 4),
                lo(1, 20, 6),
                hi(2, 25, 3, 8),
                lo(3, 10, 3),
                hi(4, 40, 4, 12),
            ];
            for t in tasks {
                let _ = c.admit(t);
            }
            c.remove(TaskId(1));
            c.remove(TaskId(4));
            let _ = c.admit(lo(5, 15, 2));
            for k in 0..c.processor_count() {
                let set = c.processor(k).unwrap();
                assert!(
                    one_shot.is_schedulable(set),
                    "{}: processor {k} fails its own test after the session",
                    spec.name()
                );
            }
        }
    }

    #[test]
    fn open_session_validates_name_and_m() {
        let registry = AlgorithmRegistry::standard();
        assert!(registry.open_session("CU-UDP-RTA", 2).is_err());
        let c = registry.open_session("CU-UDP-AMC", 4).unwrap();
        assert_eq!(c.name(), "CU-UDP-AMC");
        assert_eq!(c.processor_count(), 4);
        assert!(format!("{c:?}").contains("ClusterSession"));
    }

    #[test]
    fn session_matches_clone_retest_mirror() {
        // The service-level guarantee in miniature: a session over native
        // incremental states answers exactly like one over clone-and-retest
        // states, step for step (the full randomized version lives in
        // tests/service_session.rs).
        let registry = AlgorithmRegistry::standard();
        for name in ["CA-UDP-EY", "CU-UDP-AMC-max", "CA-F-F-ECDF"] {
            let spec = registry.spec(name).unwrap();
            let mut fast = spec.open_cluster(2);
            let mirror = CloneBox(Rc::new(uni_test(spec.test)));
            let mut slow = ClusterSession::from_parts(
                spec.name(),
                spec.strategy.clone(),
                (0..2)
                    .map(|_| {
                        let state: Box<dyn AdmissionState> =
                            Box::new(OneShot(mirror.clone()).new_state());
                        state
                    })
                    .collect(),
            );
            let tasks = [
                hi(0, 10, 2, 4),
                lo(1, 20, 6),
                hi(2, 25, 3, 8),
                lo(3, 10, 3),
                hi(4, 12, 2, 6),
            ];
            for t in tasks {
                assert_eq!(fast.admit(t), slow.admit(t), "{name}: admit {t:?}");
            }
            fast.remove(TaskId(2));
            slow.remove(TaskId(2));
            let extra = hi(5, 18, 2, 7);
            assert_eq!(fast.probe(&extra), slow.probe(&extra), "{name}: probe");
            assert_eq!(fast.snapshot(), slow.snapshot(), "{name}: snapshot");
        }
    }

    /// The uniprocessor test a [`TestName`] denotes, boxed.
    fn uni_test(t: TestName) -> Box<dyn SchedulabilityTest> {
        use mcsched_analysis::{AmcMax, AmcRtb, Ecdf, EdfVd, Ey};
        match t {
            TestName::EdfVd => Box::new(EdfVd::new()),
            TestName::Ey => Box::new(Ey::new()),
            TestName::Ecdf => Box::new(Ecdf::new()),
            TestName::AmcRtb => Box::new(AmcRtb::new()),
            TestName::AmcMax => Box::new(AmcMax::new()),
        }
    }

    /// A cloneable handle to a boxed test, so the `OneShot`
    /// clone-and-retest bridge can mirror any registry test.
    #[derive(Clone)]
    struct CloneBox(Rc<Box<dyn SchedulabilityTest>>);

    impl SchedulabilityTest for CloneBox {
        fn name(&self) -> &'static str {
            "mirror"
        }
        fn is_schedulable(&self, ts: &TaskSet) -> bool {
            self.0.is_schedulable(ts)
        }
    }
}
