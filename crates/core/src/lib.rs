//! # mcsched-core
//!
//! Partitioned multiprocessor scheduling of dual-criticality task systems:
//! the **Utilization Difference based Partitioning (UDP)** strategies of
//! Ramanathan & Easwaran (DATE 2017) — **CA-UDP** (criticality-aware,
//! Algorithm 1) and **CU-UDP** (criticality-unaware) — together with every
//! baseline strategy their evaluation compares against, on top of a
//! composable partitioning framework:
//!
//! * an [`AllocationOrder`] decides the sequence tasks are offered in,
//! * a [`FitRule`] decides the order processors are tried in for each task
//!   (first-fit, or worst-/best-fit on a [`BalanceMetric`]),
//! * a [`SchedulabilityTest`](mcsched_analysis::SchedulabilityTest)
//!   admits or rejects each tentative allocation (Algorithm 1, line 5).
//!
//! The named strategies of the paper are exposed in [`presets`]; pair one
//! with a uniprocessor test via [`PartitionedAlgorithm`] to obtain e.g.
//! `CU-UDP-EDF-VD` or `CA-UDP-AMC`.
//!
//! ## Example
//!
//! ```
//! use mcsched_model::{Task, TaskSet};
//! use mcsched_analysis::EdfVd;
//! use mcsched_core::{presets, PartitionedAlgorithm};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ts = TaskSet::try_from_tasks(vec![
//!     Task::hi(0, 10, 2, 5)?,
//!     Task::hi(1, 20, 4, 9)?,
//!     Task::lo(2, 10, 4)?,
//!     Task::lo(3, 25, 5)?,
//! ])?;
//! let algo = PartitionedAlgorithm::new(presets::cu_udp(), EdfVd::new());
//! let partition = algo.partition(&ts, 2)?;
//! assert_eq!(partition.processor_count(), 2);
//! assert_eq!(partition.iter().map(|p| p.len()).sum::<usize>(), 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
pub mod cluster;
mod partition;
pub mod presets;
pub mod registry;
mod strategy;

pub use algorithm::{MultiprocessorTest, PartitionedAlgorithm};
pub use cluster::{AdmitError, ClusterSession};
pub use partition::{verify_partition, Partition, PartitionError};
pub use registry::{AlgoBox, AlgorithmRegistry, AlgorithmSpec, RegistryError, TestName};
pub use strategy::{AllocationOrder, BalanceMetric, FitRule, PartitionStrategy, StrategyBuilder};

// The admission layer the partitioner is built on (see
// `mcsched_analysis::incremental`), re-exported for downstream reporting,
// together with the analysis workspace the partitioner threads through
// the per-processor states (see `mcsched_analysis::workspace`).
pub use mcsched_analysis::{
    AdmissionState, AdmissionStats, AnalysisWorkspace, IncrementalTest, OneShot, WorkspaceRef,
};
