//! The algorithm registry: naming, describing and constructing complete
//! partitioned MC scheduling algorithms as **data**.
//!
//! The paper's evaluation is a cross-product of partitioning strategies
//! and uniprocessor tests (`CU-UDP-EDF-VD`, `CA-UDP-AMC`, `ECA-Wu-F-EY`,
//! …). This module turns that cross-product into an enumerable,
//! serializable API:
//!
//! * [`TestName`] — the closed set of uniprocessor schedulability tests,
//! * [`AlgorithmSpec`] — a strategy (name, order, fit rules) paired with a
//!   test name; serde-able, so algorithm line-ups can live in config files
//!   or service requests instead of Rust constructors,
//! * [`AlgorithmRegistry`] — parses display names like `"CU-UDP-EDF-VD"`
//!   (or whole [`AlgorithmSpec`]s) into ready-to-run [`AlgoBox`]es and
//!   enumerates every available algorithm name.
//!
//! # Example
//!
//! ```
//! use mcsched_core::{AlgorithmRegistry, MultiprocessorTest};
//! use mcsched_model::{Task, TaskSet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let registry = AlgorithmRegistry::standard();
//! let algo = registry.parse("CU-UDP-EDF-VD")?;
//! assert_eq!(algo.name(), "CU-UDP-EDF-VD");
//!
//! let ts = TaskSet::try_from_tasks(vec![
//!     Task::hi(0, 10, 2, 4)?,
//!     Task::lo(1, 20, 6)?,
//! ])?;
//! assert!(algo.accepts(&ts, 2));
//!
//! // Unknown names fail with the full list of registered algorithms.
//! let err = registry.spec("CU-UDP-RTA").unwrap_err();
//! assert!(err.to_string().contains("CU-UDP-EDF-VD"));
//! # Ok(())
//! # }
//! ```

use crate::algorithm::{MultiprocessorTest, PartitionedAlgorithm};
use crate::presets;
use crate::strategy::{AllocationOrder, BalanceMetric, FitRule, PartitionStrategy};
use mcsched_analysis::{AmcMax, AmcRtb, Ecdf, EdfVd, Ey, FastRule, FastState};
use serde::{Deserialize, Serialize, Value};
use std::error::Error;
use std::fmt;

/// A boxed, thread-shareable partitioned algorithm — the unit the
/// experiment harness and the evaluation service work with.
pub type AlgoBox = Box<dyn MultiprocessorTest + Send + Sync>;

/// The uniprocessor schedulability tests the registry can instantiate.
///
/// This is the closed set of tests shipped by `mcsched-analysis`; each
/// variant knows its canonical display suffix (the part after the strategy
/// name in `"CU-UDP-EDF-VD"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TestName {
    /// The utilization-based EDF-VD test (`"EDF-VD"`).
    EdfVd,
    /// The Ekberg–Yi demand-bound test (`"EY"`).
    Ey,
    /// Easwaran's ECDF demand-bound test (`"ECDF"`).
    Ecdf,
    /// AMC response-time analysis, `rtb` bound (`"AMC-rtb"`).
    AmcRtb,
    /// AMC response-time analysis, `max` bound (`"AMC-max"`).
    AmcMax,
}

impl TestName {
    /// Every test, in registry order.
    pub const ALL: [TestName; 5] = [
        TestName::EdfVd,
        TestName::Ey,
        TestName::Ecdf,
        TestName::AmcRtb,
        TestName::AmcMax,
    ];

    /// The canonical display suffix, e.g. `"EDF-VD"`.
    pub const fn canonical(self) -> &'static str {
        match self {
            TestName::EdfVd => "EDF-VD",
            TestName::Ey => "EY",
            TestName::Ecdf => "ECDF",
            TestName::AmcRtb => "AMC-rtb",
            TestName::AmcMax => "AMC-max",
        }
    }

    /// Parses a canonical display suffix (`"EDF-VD"`) or a serialized
    /// variant identifier (`"EdfVd"`).
    pub fn parse(s: &str) -> Option<TestName> {
        Self::ALL
            .iter()
            .copied()
            .find(|t| t.canonical() == s || variant_ident(*t) == s)
    }
}

fn variant_ident(t: TestName) -> &'static str {
    match t {
        TestName::EdfVd => "EdfVd",
        TestName::Ey => "Ey",
        TestName::Ecdf => "Ecdf",
        TestName::AmcRtb => "AmcRtb",
        TestName::AmcMax => "AmcMax",
    }
}

impl fmt::Display for TestName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.canonical())
    }
}

/// A complete partitioned algorithm as **data**: a partitioning strategy
/// plus the name of a uniprocessor test, with an optional display-name
/// override (the paper writes `CU-UDP-AMC` for `CU-UDP-AMC-max`).
///
/// Specs serialize (`serde_json::to_string`) and parse back
/// ([`AlgorithmSpec::from_value`]); [`AlgorithmSpec::build`] instantiates
/// the runnable algorithm.
///
/// # Example
///
/// ```
/// use mcsched_core::{presets, AlgorithmSpec, TestName, MultiprocessorTest};
///
/// let spec = AlgorithmSpec::new(presets::cu_udp(), TestName::AmcMax)
///     .with_display_name("CU-UDP-AMC");
/// assert_eq!(spec.name(), "CU-UDP-AMC");
/// assert_eq!(spec.build().name(), "CU-UDP-AMC");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgorithmSpec {
    /// The partitioning strategy (order + fit rules).
    pub strategy: PartitionStrategy,
    /// The uniprocessor admission test.
    pub test: TestName,
    /// Overrides the default `"<strategy>-<test>"` display name.
    pub display_name: Option<String>,
}

impl AlgorithmSpec {
    /// Pairs a strategy with a test.
    pub fn new(strategy: PartitionStrategy, test: TestName) -> Self {
        AlgorithmSpec {
            strategy,
            test,
            display_name: None,
        }
    }

    /// Overrides the display name.
    #[must_use]
    pub fn with_display_name(mut self, name: impl Into<String>) -> Self {
        self.display_name = Some(name.into());
        self
    }

    /// The effective display name: the override if set, otherwise
    /// `"<strategy>-<test>"`.
    pub fn name(&self) -> String {
        self.display_name
            .clone()
            .unwrap_or_else(|| format!("{}-{}", self.strategy.name(), self.test.canonical()))
    }

    /// Instantiates the runnable algorithm described by this spec.
    ///
    /// The box is a [`PartitionedAlgorithm`], so it answers through the
    /// workspace-aware entry points
    /// ([`MultiprocessorTest::try_partition_reporting_in`] /
    /// [`MultiprocessorTest::accepts_in`]) with real scratch reuse —
    /// batch harnesses hand each worker one
    /// [`WorkspaceRef`](mcsched_analysis::WorkspaceRef) and judge every
    /// item through it.
    pub fn build(&self) -> AlgoBox {
        let name = self.name();
        let strategy = self.strategy.clone();
        match self.test {
            TestName::EdfVd => {
                Box::new(PartitionedAlgorithm::new(strategy, EdfVd::new()).with_name(name))
            }
            TestName::Ey => {
                Box::new(PartitionedAlgorithm::new(strategy, Ey::new()).with_name(name))
            }
            TestName::Ecdf => {
                Box::new(PartitionedAlgorithm::new(strategy, Ecdf::new()).with_name(name))
            }
            TestName::AmcRtb => {
                Box::new(PartitionedAlgorithm::new(strategy, AmcRtb::new()).with_name(name))
            }
            TestName::AmcMax => {
                Box::new(PartitionedAlgorithm::new(strategy, AmcMax::new()).with_name(name))
            }
        }
    }

    /// Opens a live [`ClusterSession`](crate::ClusterSession) over `m`
    /// processors: one persistent admission state per processor for this
    /// spec's test, placed by this spec's fit rules. Where
    /// [`AlgorithmSpec::build`] judges frozen task sets,
    /// `open_cluster` serves a *stream* of admit/remove/query requests
    /// against the same cluster — the admission-control-service entry
    /// point.
    ///
    /// All `m` states share one analysis workspace; the session is
    /// single-threaded (see [`ClusterSession`](crate::ClusterSession)).
    pub fn open_cluster(&self, m: usize) -> crate::ClusterSession {
        use crate::cluster::owned_states;
        let states = match self.test {
            TestName::EdfVd => owned_states(&EdfVd::new(), m),
            TestName::Ey => owned_states(&Ey::new(), m),
            TestName::Ecdf => owned_states(&Ecdf::new(), m),
            TestName::AmcRtb => owned_states(&AmcRtb::new(), m),
            TestName::AmcMax => owned_states(&AmcMax::new(), m),
        };
        crate::ClusterSession::from_parts(self.name(), self.strategy.clone(), states)
    }

    /// The sufficient-tier rule that is provably sound for this spec's
    /// exact test (fast-accept ⇒ the exact test accepts; see
    /// [`mcsched_analysis::sufficient`]).
    pub fn fast_rule(&self) -> FastRule {
        match self.test {
            // The closed form *is* the EDF-VD test.
            TestName::EdfVd => FastRule::EdfVdClosedForm,
            // The demand tests are greedy heuristic searches that
            // honour no density bound on HC-bearing sets; only the
            // LC-only region is provable against them.
            TestName::Ey | TestName::Ecdf => FastRule::LcOnlyDensity,
            // Liu–Layland on own-level density ⇒ the AMC RTAs accept.
            TestName::AmcRtb | TestName::AmcMax => FastRule::LiuLaylandOwnDensity,
        }
    }

    /// Opens a **degraded-tier** cluster session: the same placement
    /// strategy and display name as [`open_cluster`](Self::open_cluster),
    /// but every processor runs the allocation-free sufficient pre-check
    /// ([`fast_rule`](Self::fast_rule)) instead of the exact test.
    ///
    /// Accepts are sound — anything a degraded session commits, the
    /// exact test also accepts, so the session can later be rehydrated
    /// (or continued) under exact analysis. Rejects are advisory:
    /// clients retry on an exact worker for a definitive verdict.
    pub fn open_degraded_cluster(&self, m: usize) -> crate::ClusterSession {
        let rule = self.fast_rule();
        let states: Vec<Box<dyn mcsched_analysis::AdmissionState>> = (0..m)
            .map(|_| Box::new(FastState::new(rule)) as Box<dyn mcsched_analysis::AdmissionState>)
            .collect();
        crate::ClusterSession::from_parts(self.name(), self.strategy.clone(), states)
    }

    /// Reconstructs a spec from a parsed JSON tree (the inverse of the
    /// derived `Serialize`; the offline serde stub provides no typed
    /// deserialization, so the mapping is explicit here).
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::InvalidSpec`] describing the first
    /// malformed field.
    pub fn from_value(v: &Value) -> Result<Self, RegistryError> {
        let strategy = strategy_from_value(
            v.get("strategy")
                .ok_or_else(|| invalid("spec is missing `strategy`"))?,
        )?;
        let test_value = v
            .get("test")
            .ok_or_else(|| invalid("spec is missing `test`"))?;
        let test_str = test_value
            .as_str()
            .ok_or_else(|| invalid("`test` must be a string"))?;
        let test = TestName::parse(test_str).ok_or_else(|| RegistryError::UnknownTest {
            name: test_str.to_owned(),
            available: TestName::ALL
                .iter()
                .map(|t| t.canonical().to_owned())
                .collect(),
        })?;
        let display_name = match v.get("display_name") {
            None => None,
            Some(dn) if dn.is_null() => None,
            Some(dn) => Some(
                dn.as_str()
                    .ok_or_else(|| invalid("`display_name` must be a string or null"))?
                    .to_owned(),
            ),
        };
        Ok(AlgorithmSpec {
            strategy,
            test,
            display_name,
        })
    }
}

impl fmt::Display for AlgorithmSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Why a registry lookup or spec reconstruction failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No registered `<strategy>-<test>` combination matches the name.
    UnknownAlgorithm {
        /// The name that failed to parse.
        name: String,
        /// Every name the registry can parse.
        available: Vec<String>,
    },
    /// No registered test matches the name.
    UnknownTest {
        /// The test name that failed to parse.
        name: String,
        /// Every registered test name.
        available: Vec<String>,
    },
    /// A serialized [`AlgorithmSpec`] was structurally malformed.
    InvalidSpec {
        /// What was wrong.
        reason: String,
    },
}

fn invalid(reason: impl Into<String>) -> RegistryError {
    RegistryError::InvalidSpec {
        reason: reason.into(),
    }
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownAlgorithm { name, available } => {
                write!(
                    f,
                    "unknown algorithm `{name}`; available: {}",
                    available.join(", ")
                )
            }
            RegistryError::UnknownTest { name, available } => {
                write!(
                    f,
                    "unknown test `{name}`; available: {}",
                    available.join(", ")
                )
            }
            RegistryError::InvalidSpec { reason } => write!(f, "invalid algorithm spec: {reason}"),
        }
    }
}

impl Error for RegistryError {}

/// The registry of named partitioning strategies and uniprocessor tests.
///
/// Parsing is compositional: an algorithm name is
/// `"<strategy name>-<test name>"`, where both halves may themselves
/// contain dashes (`"CA(nosort)-F-F-EDF-VD"` splits into the strategy
/// `CA(nosort)-F-F` and the test `EDF-VD`). The registry tries registered
/// strategy names longest-first, so the split is unambiguous.
///
/// [`AlgorithmRegistry::standard`] registers the six preset strategies of
/// the paper, all five tests, and the paper's `AMC` shorthand for
/// `AMC-max`.
#[derive(Debug, Clone)]
pub struct AlgorithmRegistry {
    /// Registered strategies, kept sorted by descending name length so
    /// prefix matching is longest-first.
    strategies: Vec<PartitionStrategy>,
    /// Registered `(suffix, test)` pairs, canonical names first.
    tests: Vec<(String, TestName)>,
}

impl AlgorithmRegistry {
    /// An empty registry (register strategies and tests manually).
    pub fn empty() -> Self {
        AlgorithmRegistry {
            strategies: Vec::new(),
            tests: Vec::new(),
        }
    }

    /// The standard registry: every preset strategy
    /// ([`presets::all`]), every test ([`TestName::ALL`]), and the
    /// paper's `"AMC"` shorthand for [`TestName::AmcMax`].
    pub fn standard() -> Self {
        let mut registry = Self::empty();
        for strategy in presets::all() {
            registry.register_strategy(strategy);
        }
        for test in TestName::ALL {
            registry.register_test(test.canonical(), test);
        }
        registry.register_test("AMC", TestName::AmcMax);
        registry
    }

    /// Registers (or replaces, by name) a strategy.
    pub fn register_strategy(&mut self, strategy: PartitionStrategy) {
        self.strategies.retain(|s| s.name() != strategy.name());
        self.strategies.push(strategy);
        self.strategies.sort_by(|a, b| {
            b.name()
                .len()
                .cmp(&a.name().len())
                .then_with(|| a.name().cmp(b.name()))
        });
    }

    /// Registers (or replaces) a test under a display suffix. Aliases are
    /// just additional registrations (`"AMC"` → [`TestName::AmcMax`]).
    pub fn register_test(&mut self, suffix: impl Into<String>, test: TestName) {
        let suffix = suffix.into();
        self.tests.retain(|(s, _)| *s != suffix);
        self.tests.push((suffix, test));
    }

    /// Looks up a registered strategy by name.
    pub fn strategy(&self, name: &str) -> Option<&PartitionStrategy> {
        self.strategies.iter().find(|s| s.name() == name)
    }

    /// The registered strategy names (longest first — parse order).
    pub fn strategy_names(&self) -> Vec<String> {
        self.strategies
            .iter()
            .map(|s| s.name().to_owned())
            .collect()
    }

    /// The registered test suffixes (canonical names and aliases).
    pub fn test_names(&self) -> Vec<String> {
        self.tests.iter().map(|(s, _)| s.clone()).collect()
    }

    /// Every algorithm name this registry can parse (the full
    /// strategy × test cross-product), sorted.
    pub fn algorithm_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .strategies
            .iter()
            .flat_map(|s| {
                self.tests
                    .iter()
                    .map(move |(suffix, _)| format!("{}-{}", s.name(), suffix))
            })
            .collect();
        names.sort();
        names
    }

    /// Parses a display name into a spec, preserving the exact input as
    /// the display name (so `"CU-UDP-AMC"` keeps its short form).
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownAlgorithm`] listing every
    /// registered name when no `<strategy>-<test>` split matches.
    pub fn spec(&self, name: &str) -> Result<AlgorithmSpec, RegistryError> {
        for strategy in &self.strategies {
            let Some(rest) = name
                .strip_prefix(strategy.name())
                .and_then(|r| r.strip_prefix('-'))
            else {
                continue;
            };
            if let Some((_, test)) = self.tests.iter().find(|(suffix, _)| suffix == rest) {
                return Ok(AlgorithmSpec::new(strategy.clone(), *test).with_display_name(name));
            }
        }
        Err(RegistryError::UnknownAlgorithm {
            name: name.to_owned(),
            available: self.algorithm_names(),
        })
    }

    /// Parses a display name straight into a runnable algorithm.
    ///
    /// # Errors
    ///
    /// As [`AlgorithmRegistry::spec`].
    pub fn parse(&self, name: &str) -> Result<AlgoBox, RegistryError> {
        self.spec(name).map(|spec| spec.build())
    }

    /// Parses a whole line-up of display names.
    ///
    /// # Errors
    ///
    /// Fails on the first unknown name (see [`AlgorithmRegistry::parse`]).
    pub fn resolve(&self, names: &[&str]) -> Result<Vec<AlgoBox>, RegistryError> {
        names.iter().map(|n| self.parse(n)).collect()
    }

    /// Parses a display name and opens a live
    /// [`ClusterSession`](crate::ClusterSession) over `m` processors
    /// (see [`AlgorithmSpec::open_cluster`]).
    ///
    /// # Errors
    ///
    /// As [`AlgorithmRegistry::spec`].
    pub fn open_session(
        &self,
        name: &str,
        m: usize,
    ) -> Result<crate::ClusterSession, RegistryError> {
        self.spec(name).map(|spec| spec.open_cluster(m))
    }

    /// Parses a display name and opens a **degraded-tier** session (the
    /// sufficient pre-check instead of the exact test; see
    /// [`AlgorithmSpec::open_degraded_cluster`]).
    ///
    /// # Errors
    ///
    /// As [`AlgorithmRegistry::spec`].
    pub fn open_degraded_session(
        &self,
        name: &str,
        m: usize,
    ) -> Result<crate::ClusterSession, RegistryError> {
        self.spec(name).map(|spec| spec.open_degraded_cluster(m))
    }
}

impl Default for AlgorithmRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

// ------------------------------------------------- manual deserialization

fn strategy_from_value(v: &Value) -> Result<PartitionStrategy, RegistryError> {
    let name = v
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| invalid("strategy is missing string `name`"))?;
    let order = order_from_value(
        v.get("order")
            .ok_or_else(|| invalid("strategy is missing `order`"))?,
    )?;
    let hc_fit = fit_from_value(
        v.get("hc_fit")
            .ok_or_else(|| invalid("strategy is missing `hc_fit`"))?,
    )?;
    let lc_fit = fit_from_value(
        v.get("lc_fit")
            .ok_or_else(|| invalid("strategy is missing `lc_fit`"))?,
    )?;
    Ok(PartitionStrategy::builder(name)
        .order(order)
        .hc_fit(hc_fit)
        .lc_fit(lc_fit)
        .build())
}

fn order_from_value(v: &Value) -> Result<AllocationOrder, RegistryError> {
    if let Some(s) = v.as_str() {
        return match s {
            "CriticalityUnaware" => Ok(AllocationOrder::CriticalityUnaware),
            other => Err(invalid(format!("unknown allocation order `{other}`"))),
        };
    }
    if let Some(inner) = v.get("CriticalityAware") {
        let sorted = inner
            .get("sorted")
            .and_then(Value::as_bool)
            .ok_or_else(|| invalid("CriticalityAware needs boolean `sorted`"))?;
        return Ok(AllocationOrder::CriticalityAware { sorted });
    }
    if let Some(inner) = v.get("HeavyLcFirst") {
        let threshold = inner
            .get("threshold_millis")
            .and_then(Value::as_u64)
            .ok_or_else(|| invalid("HeavyLcFirst needs integer `threshold_millis`"))?;
        let threshold =
            u32::try_from(threshold).map_err(|_| invalid("`threshold_millis` out of range"))?;
        return Ok(AllocationOrder::HeavyLcFirst {
            threshold_millis: threshold,
        });
    }
    Err(invalid("unrecognized allocation order"))
}

fn metric_from_value(v: &Value) -> Result<BalanceMetric, RegistryError> {
    match v.as_str() {
        Some("UtilizationDifference") => Ok(BalanceMetric::UtilizationDifference),
        Some("HiUtilization") => Ok(BalanceMetric::HiUtilization),
        Some("LoModeLoad") => Ok(BalanceMetric::LoModeLoad),
        Some("OwnLevelLoad") => Ok(BalanceMetric::OwnLevelLoad),
        Some(other) => Err(invalid(format!("unknown balance metric `{other}`"))),
        None => Err(invalid("balance metric must be a string")),
    }
}

fn fit_from_value(v: &Value) -> Result<FitRule, RegistryError> {
    if let Some(s) = v.as_str() {
        return match s {
            "FirstFit" => Ok(FitRule::FirstFit),
            other => Err(invalid(format!("unknown fit rule `{other}`"))),
        };
    }
    if let Some(metric) = v.get("WorstFit") {
        return Ok(FitRule::WorstFit(metric_from_value(metric)?));
    }
    if let Some(metric) = v.get("BestFit") {
        return Ok(FitRule::BestFit(metric_from_value(metric)?));
    }
    Err(invalid("unrecognized fit rule"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsched_analysis::WorkspaceRef;
    use mcsched_model::{Task, TaskSet};

    #[test]
    fn registry_boxes_are_workspace_aware() {
        // Every registered algorithm must answer identically through the
        // plain and the workspace-threaded entry points — one shared
        // workspace across the whole lineup, as a batch worker would use.
        let registry = AlgorithmRegistry::standard();
        let ts = small_set();
        let ws = WorkspaceRef::new();
        for name in registry.algorithm_names() {
            let algo = registry.parse(&name).unwrap();
            let (plain, plain_stats) = algo.try_partition_reporting(&ts, 2);
            let (in_ws, ws_stats) = algo.try_partition_reporting_in(&ts, 2, &ws);
            assert_eq!(plain, in_ws, "{name} diverged under a shared workspace");
            assert_eq!(plain_stats, ws_stats, "{name} stats diverged");
            assert_eq!(algo.accepts(&ts, 2), algo.accepts_in(&ts, 2, &ws), "{name}");
        }
    }

    fn small_set() -> TaskSet {
        TaskSet::try_from_tasks(vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::lo(1, 20, 6).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn test_name_parsing() {
        for t in TestName::ALL {
            assert_eq!(TestName::parse(t.canonical()), Some(t), "{t}");
            assert_eq!(TestName::parse(variant_ident(t)), Some(t), "{t}");
        }
        assert_eq!(TestName::parse("RTA"), None);
        assert_eq!(TestName::EdfVd.to_string(), "EDF-VD");
    }

    #[test]
    fn standard_registry_parses_every_combination() {
        let registry = AlgorithmRegistry::standard();
        let names = registry.algorithm_names();
        // 6 strategies × (5 tests + AMC alias).
        assert_eq!(names.len(), 36);
        for name in &names {
            let algo = registry.parse(name).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(algo.name(), name, "display name must round-trip");
        }
    }

    #[test]
    fn parse_splits_dashed_strategy_names() {
        let registry = AlgorithmRegistry::standard();
        let spec = registry.spec("CA(nosort)-F-F-EDF-VD").unwrap();
        assert_eq!(spec.strategy.name(), "CA(nosort)-F-F");
        assert_eq!(spec.test, TestName::EdfVd);
        let spec = registry.spec("CA-F-F-EY").unwrap();
        assert_eq!(spec.strategy.name(), "CA-F-F");
        assert_eq!(spec.test, TestName::Ey);
    }

    #[test]
    fn amc_alias_keeps_short_display_name() {
        let registry = AlgorithmRegistry::standard();
        let algo = registry.parse("CU-UDP-AMC").unwrap();
        assert_eq!(algo.name(), "CU-UDP-AMC");
        // The alias builds the same verdict function as the long name.
        let long = registry.parse("CU-UDP-AMC-max").unwrap();
        let ts = small_set();
        assert_eq!(algo.accepts(&ts, 2), long.accepts(&ts, 2));
    }

    #[test]
    fn unknown_names_list_available() {
        let registry = AlgorithmRegistry::standard();
        let err = registry.spec("CU-UDP-RTA").unwrap_err();
        match &err {
            RegistryError::UnknownAlgorithm { name, available } => {
                assert_eq!(name, "CU-UDP-RTA");
                assert!(available.iter().any(|n| n == "CU-UDP-EDF-VD"));
            }
            other => panic!("wrong error: {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("unknown algorithm `CU-UDP-RTA`"));
        assert!(msg.contains("CA-UDP-ECDF"));
    }

    #[test]
    fn registry_built_matches_direct_construction() {
        let registry = AlgorithmRegistry::standard();
        let built = registry.parse("CA-UDP-EDF-VD").unwrap();
        let direct = PartitionedAlgorithm::new(presets::ca_udp(), EdfVd::new());
        let ts = small_set();
        for m in 1..=3 {
            assert_eq!(
                built.try_partition(&ts, m),
                direct.try_partition(&ts, m),
                "m={m}"
            );
        }
    }

    #[test]
    fn spec_builds_custom_strategies() {
        let custom = PartitionStrategy::builder("CA-WF(Ulo)")
            .order(AllocationOrder::CriticalityAware { sorted: true })
            .hc_fit(FitRule::WorstFit(BalanceMetric::LoModeLoad))
            .lc_fit(FitRule::FirstFit)
            .build();
        let spec = AlgorithmSpec::new(custom, TestName::EdfVd);
        assert_eq!(spec.name(), "CA-WF(Ulo)-EDF-VD");
        let algo = spec.build();
        assert_eq!(algo.name(), "CA-WF(Ulo)-EDF-VD");
        assert!(algo.accepts(&small_set(), 2));
    }

    #[test]
    fn spec_serde_round_trips() {
        let registry = AlgorithmRegistry::standard();
        for name in registry.algorithm_names() {
            let spec = registry.spec(&name).unwrap();
            let json = serde_json::to_string(&spec).unwrap();
            let parsed = serde_json::parse_value(&json).unwrap();
            let back = AlgorithmSpec::from_value(&parsed).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back, spec, "{name}");
        }
    }

    #[test]
    fn from_value_reports_malformed_specs() {
        let cases = [
            ("{}", "missing `strategy`"),
            (r#"{"strategy": {"name": "X"}, "test": "EDF-VD"}"#, "order"),
            (
                r#"{"strategy": {"name": "X", "order": "CriticalityUnaware",
                    "hc_fit": "FirstFit", "lc_fit": "FirstFit"}, "test": "RTA"}"#,
                "unknown test",
            ),
            (
                r#"{"strategy": {"name": "X", "order": "Bogus",
                    "hc_fit": "FirstFit", "lc_fit": "FirstFit"}, "test": "EY"}"#,
                "allocation order",
            ),
        ];
        for (json, needle) in cases {
            let v = serde_json::parse_value(json).unwrap();
            let err = AlgorithmSpec::from_value(&v).unwrap_err().to_string();
            assert!(err.contains(needle), "{json}: {err}");
        }
    }

    #[test]
    fn empty_registry_and_replacement() {
        let mut registry = AlgorithmRegistry::empty();
        assert!(registry.algorithm_names().is_empty());
        registry.register_strategy(presets::cu_udp());
        registry.register_test("EDF-VD", TestName::EdfVd);
        assert!(registry.parse("CU-UDP-EDF-VD").is_ok());
        assert!(registry.parse("CA-UDP-EDF-VD").is_err());
        // Re-registering a name replaces it rather than duplicating.
        registry.register_strategy(presets::cu_udp());
        registry.register_test("EDF-VD", TestName::EdfVd);
        assert_eq!(registry.strategy_names().len(), 1);
        assert_eq!(registry.test_names().len(), 1);
        assert!(registry.strategy("CU-UDP").is_some());
        assert!(registry.strategy("CA-UDP").is_none());
        assert_eq!(AlgorithmRegistry::default().algorithm_names().len(), 36);
    }
}
