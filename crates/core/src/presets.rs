//! The named partitioning strategies of the DATE 2017 paper.
//!
//! | Preset | Order | HC fit | LC fit | Source |
//! |--------|-------|--------|--------|--------|
//! | [`ca_udp`] | criticality-aware, sorted | worst-fit on `U_H^H−U_H^L` | first-fit | the paper, Algorithm 1 |
//! | [`cu_udp`] | criticality-unaware | worst-fit on `U_H^H−U_H^L` | first-fit | the paper, §III |
//! | [`ca_wu_f`] | criticality-aware, sorted | worst-fit on `U_H^H` | first-fit | Fig. 1 foil |
//! | [`ca_nosort_f_f`] | criticality-aware, unsorted | first-fit | first-fit | Baruah et al. \[3\] |
//! | [`eca_wu_f`] | heavy-LC first | worst-fit on `U_H^H` | first-fit | Gu et al. \[11\] |
//! | [`ca_f_f`] | criticality-aware, sorted | first-fit | first-fit | Rodriguez et al. \[10\] |

use crate::strategy::{AllocationOrder, BalanceMetric, FitRule, PartitionStrategy};

/// **CA-UDP** (Algorithm 1): criticality-aware, tasks sorted by own-level
/// utilization; HC tasks worst-fit on the utilization difference
/// `U_H^H(φk) − U_H^L(φk)`; LC tasks first-fit.
pub fn ca_udp() -> PartitionStrategy {
    PartitionStrategy::builder("CA-UDP")
        .order(AllocationOrder::CriticalityAware { sorted: true })
        .hc_fit(FitRule::WorstFit(BalanceMetric::UtilizationDifference))
        .lc_fit(FitRule::FirstFit)
        .build()
}

/// **CU-UDP**: criticality-unaware ordering (heavy LC tasks are offered
/// early); fits as in [`ca_udp`].
pub fn cu_udp() -> PartitionStrategy {
    PartitionStrategy::builder("CU-UDP")
        .order(AllocationOrder::CriticalityUnaware)
        .hc_fit(FitRule::WorstFit(BalanceMetric::UtilizationDifference))
        .lc_fit(FitRule::FirstFit)
        .build()
}

/// **CA-Wu-F** (the Fig. 1 foil): like [`ca_udp`] but HC tasks worst-fit
/// on the total HC utilization `U_H^H(φk)` alone.
pub fn ca_wu_f() -> PartitionStrategy {
    PartitionStrategy::builder("CA-Wu-F")
        .order(AllocationOrder::CriticalityAware { sorted: true })
        .hc_fit(FitRule::WorstFit(BalanceMetric::HiUtilization))
        .lc_fit(FitRule::FirstFit)
        .build()
}

/// **CA(nosort)-F-F** (Baruah et al. \[3\]): criticality-aware without
/// sorting, first-fit everywhere — the only partitioned MC algorithm with
/// a known speed-up bound (8/3 with the EDF-VD test).
pub fn ca_nosort_f_f() -> PartitionStrategy {
    PartitionStrategy::builder("CA(nosort)-F-F")
        .order(AllocationOrder::CriticalityAware { sorted: false })
        .hc_fit(FitRule::FirstFit)
        .lc_fit(FitRule::FirstFit)
        .build()
}

/// **ECA-Wu-F** (Gu et al. \[11\]): enhanced criticality-aware — LC tasks
/// with `u^L ≥ 0.5` are allocated before the HC tasks; HC tasks worst-fit
/// on `U_H^H`; LC tasks first-fit.
///
/// The 0.5 heaviness threshold is our reconstruction choice: the DATE 2017
/// text says only "preference is given to heavy utilization LC tasks";
/// see `DESIGN.md`. Use [`eca_wu_f_with_threshold`] to ablate it.
pub fn eca_wu_f() -> PartitionStrategy {
    eca_wu_f_with_threshold(500)
}

/// [`eca_wu_f`] with an explicit heaviness threshold in thousandths
/// (e.g. `500` ⇒ `u^L ≥ 0.5` counts as heavy).
pub fn eca_wu_f_with_threshold(threshold_millis: u32) -> PartitionStrategy {
    PartitionStrategy::builder("ECA-Wu-F")
        .order(AllocationOrder::HeavyLcFirst { threshold_millis })
        .hc_fit(FitRule::WorstFit(BalanceMetric::HiUtilization))
        .lc_fit(FitRule::FirstFit)
        .build()
}

/// **CA-F-F** (Rodriguez et al. \[10\]): criticality-aware with sorting,
/// first-fit for both classes.
pub fn ca_f_f() -> PartitionStrategy {
    PartitionStrategy::builder("CA-F-F")
        .order(AllocationOrder::CriticalityAware { sorted: true })
        .hc_fit(FitRule::FirstFit)
        .lc_fit(FitRule::FirstFit)
        .build()
}

/// All six presets, for sweeps and ablations.
pub fn all() -> Vec<PartitionStrategy> {
    vec![
        ca_udp(),
        cu_udp(),
        ca_wu_f(),
        ca_nosort_f_f(),
        eca_wu_f(),
        ca_f_f(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_names() {
        assert_eq!(ca_udp().name(), "CA-UDP");
        assert_eq!(cu_udp().name(), "CU-UDP");
        assert_eq!(ca_wu_f().name(), "CA-Wu-F");
        assert_eq!(ca_nosort_f_f().name(), "CA(nosort)-F-F");
        assert_eq!(eca_wu_f().name(), "ECA-Wu-F");
        assert_eq!(ca_f_f().name(), "CA-F-F");
        assert_eq!(all().len(), 6);
    }

    #[test]
    fn udp_presets_use_difference_metric() {
        for s in [ca_udp(), cu_udp()] {
            assert_eq!(
                s.hc_fit(),
                FitRule::WorstFit(BalanceMetric::UtilizationDifference)
            );
            assert_eq!(s.lc_fit(), FitRule::FirstFit);
        }
    }

    #[test]
    fn baseline_orders() {
        assert_eq!(
            ca_nosort_f_f().order(),
            AllocationOrder::CriticalityAware { sorted: false }
        );
        assert_eq!(
            eca_wu_f().order(),
            AllocationOrder::HeavyLcFirst {
                threshold_millis: 500
            }
        );
        assert_eq!(
            eca_wu_f_with_threshold(700).order(),
            AllocationOrder::HeavyLcFirst {
                threshold_millis: 700
            }
        );
        assert_eq!(
            ca_f_f().order(),
            AllocationOrder::CriticalityAware { sorted: true }
        );
    }
}
