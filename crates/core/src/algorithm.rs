//! Pairing a partitioning strategy with a uniprocessor test:
//! the partitioned MC scheduling algorithms of the paper's evaluation
//! (`CU-UDP-EDF-VD`, `CA-UDP-AMC`, `ECA-Wu-F-EY`, …).

use crate::partition::{Partition, PartitionError};
use crate::strategy::PartitionStrategy;
use mcsched_analysis::{AdmissionStats, SchedulabilityTest, WorkspaceRef};
use mcsched_model::TaskSet;
use std::fmt;

/// Object-safe interface for a complete multiprocessor MC scheduling
/// algorithm: given a task set and a processor count, decide
/// schedulability (and produce the witness partition).
///
/// Implemented by [`PartitionedAlgorithm`]; the experiment harness holds
/// `Box<dyn MultiprocessorTest + Sync>` so strategies with different test
/// types mix freely in one comparison.
pub trait MultiprocessorTest {
    /// Display name, e.g. `"CU-UDP-EDF-VD"`.
    fn name(&self) -> &str;

    /// Attempts to partition; `Ok` is the schedulability witness.
    fn try_partition(&self, ts: &TaskSet, m: usize) -> Result<Partition, PartitionError>;

    /// As [`try_partition`](MultiprocessorTest::try_partition), also
    /// reporting the admission-layer statistics of the run. The default
    /// reports empty stats; [`PartitionedAlgorithm`] overrides it with the
    /// real counters.
    fn try_partition_reporting(
        &self,
        ts: &TaskSet,
        m: usize,
    ) -> (Result<Partition, PartitionError>, AdmissionStats) {
        (self.try_partition(ts, m), AdmissionStats::default())
    }

    /// As
    /// [`try_partition_reporting`](MultiprocessorTest::try_partition_reporting),
    /// running the build's analysis in the caller's workspace — the
    /// experiment engine hands every worker thread one [`WorkspaceRef`] so
    /// batch evaluation reuses scratch buffers across items. Results are
    /// identical (the workspace is scratch only); the default ignores
    /// `ws`, so foreign implementations are unaffected.
    fn try_partition_reporting_in(
        &self,
        ts: &TaskSet,
        m: usize,
        ws: &WorkspaceRef,
    ) -> (Result<Partition, PartitionError>, AdmissionStats) {
        let _ = ws;
        self.try_partition_reporting(ts, m)
    }

    /// `true` if the algorithm schedules the set on `m` processors.
    fn accepts(&self, ts: &TaskSet, m: usize) -> bool {
        self.try_partition(ts, m).is_ok()
    }

    /// As [`accepts`](MultiprocessorTest::accepts), in the caller's
    /// workspace.
    fn accepts_in(&self, ts: &TaskSet, m: usize, ws: &WorkspaceRef) -> bool {
        self.try_partition_reporting_in(ts, m, ws).0.is_ok()
    }
}

/// A partitioned scheduling algorithm: a [`PartitionStrategy`] combined
/// with a uniprocessor [`SchedulabilityTest`].
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// use mcsched_analysis::AmcMax;
/// use mcsched_core::{presets, PartitionedAlgorithm, MultiprocessorTest};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let algo = PartitionedAlgorithm::new(presets::ca_udp(), AmcMax::new());
/// assert_eq!(algo.name(), "CA-UDP-AMC-max");
///
/// let ts = TaskSet::try_from_tasks(vec![
///     Task::hi(0, 10, 2, 4)?,
///     Task::lo(1, 20, 6)?,
/// ])?;
/// assert!(algo.accepts(&ts, 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PartitionedAlgorithm<T> {
    strategy: PartitionStrategy,
    test: T,
    name: String,
}

impl<T: SchedulabilityTest> PartitionedAlgorithm<T> {
    /// Combines a strategy with a uniprocessor test. The display name is
    /// `"<strategy>-<test>"`.
    pub fn new(strategy: PartitionStrategy, test: T) -> Self {
        let name = format!("{}-{}", strategy.name(), test.name());
        PartitionedAlgorithm {
            strategy,
            test,
            name,
        }
    }

    /// Overrides the display name (the paper writes `CU-UDP-AMC` for what
    /// is technically `CU-UDP-AMC-max`).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The partitioning strategy.
    pub fn strategy(&self) -> &PartitionStrategy {
        &self.strategy
    }

    /// The uniprocessor schedulability test.
    pub fn test(&self) -> &T {
        &self.test
    }

    /// Attempts to partition `ts` onto `m` processors.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError`] naming the first unallocatable task.
    pub fn partition(&self, ts: &TaskSet, m: usize) -> Result<Partition, PartitionError> {
        Partition::build(&self.strategy, &self.test, ts, m)
    }

    /// As [`partition`](PartitionedAlgorithm::partition), also returning
    /// the aggregated admission statistics of the build.
    pub fn partition_reporting(
        &self,
        ts: &TaskSet,
        m: usize,
    ) -> (Result<Partition, PartitionError>, AdmissionStats) {
        Partition::build_reporting(&self.strategy, &self.test, ts, m)
    }

    /// As [`partition_reporting`](PartitionedAlgorithm::partition_reporting),
    /// sharing the caller's analysis workspace across the build's
    /// admission states (see [`Partition::build_reporting_in`]).
    pub fn partition_reporting_in(
        &self,
        ts: &TaskSet,
        m: usize,
        ws: &WorkspaceRef,
    ) -> (Result<Partition, PartitionError>, AdmissionStats) {
        Partition::build_reporting_in(&self.strategy, &self.test, ts, m, ws)
    }
}

impl<T: SchedulabilityTest> MultiprocessorTest for PartitionedAlgorithm<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn try_partition(&self, ts: &TaskSet, m: usize) -> Result<Partition, PartitionError> {
        self.partition(ts, m)
    }

    fn try_partition_reporting(
        &self,
        ts: &TaskSet,
        m: usize,
    ) -> (Result<Partition, PartitionError>, AdmissionStats) {
        self.partition_reporting(ts, m)
    }

    fn try_partition_reporting_in(
        &self,
        ts: &TaskSet,
        m: usize,
        ws: &WorkspaceRef,
    ) -> (Result<Partition, PartitionError>, AdmissionStats) {
        self.partition_reporting_in(ts, m, ws)
    }
}

impl<T: SchedulabilityTest> fmt::Display for PartitionedAlgorithm<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use mcsched_analysis::{AmcMax, Ecdf, EdfVd, Ey};
    use mcsched_model::Task;

    fn small_set() -> TaskSet {
        TaskSet::try_from_tasks(vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::lo(1, 20, 6).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn names_compose() {
        assert_eq!(
            PartitionedAlgorithm::new(presets::cu_udp(), EdfVd::new()).name(),
            "CU-UDP-EDF-VD"
        );
        assert_eq!(
            PartitionedAlgorithm::new(presets::eca_wu_f(), Ey::new()).name(),
            "ECA-Wu-F-EY"
        );
        assert_eq!(
            PartitionedAlgorithm::new(presets::cu_udp(), Ecdf::new()).name(),
            "CU-UDP-ECDF"
        );
        let renamed =
            PartitionedAlgorithm::new(presets::cu_udp(), AmcMax::new()).with_name("CU-UDP-AMC");
        assert_eq!(renamed.name(), "CU-UDP-AMC");
        assert_eq!(renamed.to_string(), "CU-UDP-AMC");
    }

    #[test]
    fn accepts_and_partition_agree() {
        let algo = PartitionedAlgorithm::new(presets::ca_udp(), EdfVd::new());
        let ts = small_set();
        assert_eq!(algo.accepts(&ts, 2), algo.partition(&ts, 2).is_ok());
    }

    #[test]
    fn trait_objects_mix_tests() {
        let algos: Vec<Box<dyn MultiprocessorTest>> = vec![
            Box::new(PartitionedAlgorithm::new(presets::ca_udp(), EdfVd::new())),
            Box::new(PartitionedAlgorithm::new(presets::cu_udp(), Ecdf::new())),
            Box::new(PartitionedAlgorithm::new(presets::ca_f_f(), AmcMax::new())),
        ];
        let ts = small_set();
        for a in &algos {
            assert!(a.accepts(&ts, 2), "{} rejected a trivial set", a.name());
        }
    }

    #[test]
    fn accessors() {
        let algo = PartitionedAlgorithm::new(presets::ca_udp(), EdfVd::new());
        assert_eq!(algo.strategy().name(), "CA-UDP");
        assert_eq!(algo.test().name(), "EDF-VD");
    }

    #[test]
    fn more_processors_never_hurt_udp() {
        // Monotonicity sanity: anything accepted on m is accepted on m+1
        // (worst-fit spreads; first processor ordering unchanged).
        let ts = TaskSet::try_from_tasks(vec![
            Task::hi(0, 10, 2, 6).unwrap(),
            Task::hi(1, 12, 3, 7).unwrap(),
            Task::lo(2, 10, 5).unwrap(),
            Task::lo(3, 20, 9).unwrap(),
        ])
        .unwrap();
        let algo = PartitionedAlgorithm::new(presets::cu_udp(), EdfVd::new());
        for m in 1..4 {
            if algo.accepts(&ts, m) {
                assert!(algo.accepts(&ts, m + 1), "m={m} accepted but m+1 rejected");
            }
        }
    }
}
