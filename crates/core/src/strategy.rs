//! Strategy vocabulary: allocation orders, balance metrics and fit rules.

use mcsched_model::{SystemUtilization, Task, TaskSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The order in which a strategy offers tasks to the partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllocationOrder {
    /// Criticality-aware: all HC tasks before any LC task. With
    /// `sorted = true`, each class is sorted by decreasing utilization at
    /// its own criticality level (`u^H` for HC, `u^L` for LC) — the
    /// ordering of the paper's Algorithm 1. With `sorted = false`, tasks
    /// keep their input order inside each class (the CA(nosort) baseline
    /// of Baruah et al.).
    CriticalityAware {
        /// Sort each class by decreasing own-level utilization.
        sorted: bool,
    },
    /// Criticality-unaware: all tasks in one sequence, sorted by
    /// decreasing utilization at their own criticality level (CU-UDP's
    /// ordering: heavy LC tasks are offered early).
    CriticalityUnaware,
    /// Criticality-aware with *heavy-LC preference* (the "ECA"
    /// enhancement of Gu et al., DATE 2014): LC tasks with `u^L` at or
    /// above the threshold are offered first (by decreasing `u^L`), then
    /// all HC tasks (by decreasing `u^H`), then the remaining LC tasks
    /// (by decreasing `u^L`).
    HeavyLcFirst {
        /// `u^L` threshold (scaled by 1000, so `500` means `0.5`) above
        /// which an LC task counts as heavy. Stored as integer so the
        /// order is `Eq + Hash`.
        threshold_millis: u32,
    },
}

impl AllocationOrder {
    /// Builds the allocation sequence for a task set.
    pub fn sequence(&self, ts: &TaskSet) -> Vec<Task> {
        let mut tasks: Vec<Task> = ts.iter().copied().collect();
        let by_own_desc = |a: &Task, b: &Task| {
            b.utilization_own()
                .total_cmp(&a.utilization_own())
                .then_with(|| a.id().cmp(&b.id()))
        };
        match *self {
            AllocationOrder::CriticalityAware { sorted } => {
                let (mut hi, mut lo): (Vec<Task>, Vec<Task>) =
                    tasks.into_iter().partition(|t| t.criticality().is_high());
                if sorted {
                    hi.sort_by(by_own_desc);
                    lo.sort_by(by_own_desc);
                }
                hi.extend(lo);
                hi
            }
            AllocationOrder::CriticalityUnaware => {
                tasks.sort_by(by_own_desc);
                tasks
            }
            AllocationOrder::HeavyLcFirst { threshold_millis } => {
                let threshold = f64::from(threshold_millis) / 1000.0;
                let (mut heavy, rest): (Vec<Task>, Vec<Task>) = tasks
                    .drain(..)
                    .partition(|t| t.criticality().is_low() && t.utilization_lo() >= threshold);
                let (mut hi, mut lo): (Vec<Task>, Vec<Task>) =
                    rest.into_iter().partition(|t| t.criticality().is_high());
                heavy.sort_by(by_own_desc);
                hi.sort_by(by_own_desc);
                lo.sort_by(by_own_desc);
                heavy.extend(hi);
                heavy.extend(lo);
                heavy
            }
        }
    }
}

/// A per-processor load statistic that worst-/best-fit rules order
/// processors by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BalanceMetric {
    /// `U_H^H(φk) − U_H^L(φk)` — the utilization difference, UDP's metric.
    UtilizationDifference,
    /// `U_H^H(φk)` — total high-mode utilization of HC tasks (the CA-Wu-F
    /// baseline metric of Fig. 1 and of Gu et al.).
    HiUtilization,
    /// `U_L^L(φk) + U_H^L(φk)` — total low-mode load.
    LoModeLoad,
    /// Sum of own-level utilizations (a conventional non-MC load metric).
    OwnLevelLoad,
}

impl BalanceMetric {
    /// Evaluates the metric on a processor's current contents.
    pub fn evaluate(&self, proc: &TaskSet) -> f64 {
        self.evaluate_summary(&proc.system_utilization())
    }

    /// Evaluates the metric on a precomputed utilization triple — the
    /// cached `summary()` of an incremental admission state, so fit rules
    /// cost O(1) per processor instead of re-summing its tasks.
    pub fn evaluate_summary(&self, u: &SystemUtilization) -> f64 {
        match self {
            BalanceMetric::UtilizationDifference => u.u_hh - u.u_hl,
            BalanceMetric::HiUtilization => u.u_hh,
            BalanceMetric::LoModeLoad => u.u_ll + u.u_hl,
            BalanceMetric::OwnLevelLoad => u.u_ll + u.u_hh,
        }
    }
}

impl fmt::Display for BalanceMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BalanceMetric::UtilizationDifference => write!(f, "Udiff"),
            BalanceMetric::HiUtilization => write!(f, "Uhh"),
            BalanceMetric::LoModeLoad => write!(f, "Ulo"),
            BalanceMetric::OwnLevelLoad => write!(f, "Uown"),
        }
    }
}

/// The order processors are tried in when placing one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FitRule {
    /// Processors in index order (`φ1, φ2, …`).
    FirstFit,
    /// Processors by *increasing* metric — the emptiest (by that metric)
    /// first. This is the "worst-fit" of the partitioning literature and
    /// the rule UDP applies to HC tasks with
    /// [`BalanceMetric::UtilizationDifference`].
    WorstFit(BalanceMetric),
    /// Processors by *decreasing* metric — the fullest first.
    BestFit(BalanceMetric),
}

impl FitRule {
    /// Returns processor indices in the order this rule tries them.
    pub fn processor_order(&self, procs: &[TaskSet]) -> Vec<usize> {
        let summaries: Vec<SystemUtilization> =
            procs.iter().map(TaskSet::system_utilization).collect();
        self.processor_order_by_summary(&summaries)
    }

    /// As [`FitRule::processor_order`], over precomputed utilization
    /// triples (the cached summaries of the incremental admission states).
    pub fn processor_order_by_summary(&self, summaries: &[SystemUtilization]) -> Vec<usize> {
        let mut idx = Vec::new();
        self.processor_order_by_summary_into(summaries, &mut idx);
        idx
    }

    /// As [`FitRule::processor_order_by_summary`], into a caller-supplied
    /// buffer (cleared first) — the partitioning inner loop reuses one
    /// across tasks so fit ordering allocates nothing. The metric is a
    /// pure function of the summary, so evaluating it inside the
    /// comparator yields exactly the order of the precomputed-keys path.
    pub fn processor_order_by_summary_into(
        &self,
        summaries: &[SystemUtilization],
        out: &mut Vec<usize>,
    ) {
        out.clear();
        out.extend(0..summaries.len());
        // The index tiebreak makes both comparators total orders, so the
        // unstable sort (no temp-buffer allocation) orders identically to
        // the seed's stable sort.
        match self {
            FitRule::FirstFit => {}
            FitRule::WorstFit(metric) => {
                out.sort_unstable_by(|&a, &b| {
                    metric
                        .evaluate_summary(&summaries[a])
                        .total_cmp(&metric.evaluate_summary(&summaries[b]))
                        .then_with(|| a.cmp(&b))
                });
            }
            FitRule::BestFit(metric) => {
                out.sort_unstable_by(|&a, &b| {
                    metric
                        .evaluate_summary(&summaries[b])
                        .total_cmp(&metric.evaluate_summary(&summaries[a]))
                        .then_with(|| a.cmp(&b))
                });
            }
        }
    }
}

impl fmt::Display for FitRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitRule::FirstFit => write!(f, "FF"),
            FitRule::WorstFit(m) => write!(f, "WF({m})"),
            FitRule::BestFit(m) => write!(f, "BF({m})"),
        }
    }
}

/// A complete partitioning strategy: allocation order plus per-criticality
/// fit rules.
///
/// Use [`presets`](crate::presets) for the named strategies of the paper,
/// or [`PartitionStrategy::builder`] for custom combinations (ablations).
///
/// # Example
///
/// ```
/// use mcsched_core::{PartitionStrategy, AllocationOrder, FitRule, BalanceMetric};
///
/// let custom = PartitionStrategy::builder("CA-BF")
///     .order(AllocationOrder::CriticalityAware { sorted: true })
///     .hc_fit(FitRule::BestFit(BalanceMetric::HiUtilization))
///     .lc_fit(FitRule::FirstFit)
///     .build();
/// assert_eq!(custom.name(), "CA-BF");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionStrategy {
    name: String,
    order: AllocationOrder,
    hc_fit: FitRule,
    lc_fit: FitRule,
}

impl PartitionStrategy {
    /// Starts a builder with a display name.
    pub fn builder(name: impl Into<String>) -> StrategyBuilder {
        StrategyBuilder {
            name: name.into(),
            order: AllocationOrder::CriticalityAware { sorted: true },
            hc_fit: FitRule::FirstFit,
            lc_fit: FitRule::FirstFit,
        }
    }

    /// The strategy's display name (e.g. `"CU-UDP"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The allocation order.
    pub fn order(&self) -> AllocationOrder {
        self.order
    }

    /// The fit rule applied to HC tasks.
    pub fn hc_fit(&self) -> FitRule {
        self.hc_fit
    }

    /// The fit rule applied to LC tasks.
    pub fn lc_fit(&self) -> FitRule {
        self.lc_fit
    }

    /// The fit rule for a specific task (HC vs LC).
    pub fn fit_for(&self, task: &Task) -> FitRule {
        if task.criticality().is_high() {
            self.hc_fit
        } else {
            self.lc_fit
        }
    }
}

impl fmt::Display for PartitionStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Builder for [`PartitionStrategy`].
#[derive(Debug, Clone)]
pub struct StrategyBuilder {
    name: String,
    order: AllocationOrder,
    hc_fit: FitRule,
    lc_fit: FitRule,
}

impl StrategyBuilder {
    /// Sets the allocation order.
    pub fn order(mut self, order: AllocationOrder) -> Self {
        self.order = order;
        self
    }

    /// Sets the HC fit rule.
    pub fn hc_fit(mut self, fit: FitRule) -> Self {
        self.hc_fit = fit;
        self
    }

    /// Sets the LC fit rule.
    pub fn lc_fit(mut self, fit: FitRule) -> Self {
        self.lc_fit = fit;
        self
    }

    /// Finalizes the strategy.
    pub fn build(self) -> PartitionStrategy {
        PartitionStrategy {
            name: self.name,
            order: self.order,
            hc_fit: self.hc_fit,
            lc_fit: self.lc_fit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsched_model::TaskSet;

    fn sample() -> TaskSet {
        TaskSet::try_from_tasks(vec![
            Task::lo(0, 10, 6).unwrap(),    // u^L = 0.6 (heavy LC)
            Task::hi(1, 10, 2, 5).unwrap(), // u^H = 0.5
            Task::lo(2, 10, 1).unwrap(),    // u^L = 0.1
            Task::hi(3, 10, 3, 8).unwrap(), // u^H = 0.8
        ])
        .unwrap()
    }

    #[test]
    fn ca_sorted_order() {
        let seq = AllocationOrder::CriticalityAware { sorted: true }.sequence(&sample());
        let ids: Vec<u32> = seq.iter().map(|t| t.id().0).collect();
        // HC by decreasing u^H (τ3, τ1), then LC by decreasing u^L (τ0, τ2).
        assert_eq!(ids, vec![3, 1, 0, 2]);
    }

    #[test]
    fn ca_nosort_keeps_input_order() {
        let seq = AllocationOrder::CriticalityAware { sorted: false }.sequence(&sample());
        let ids: Vec<u32> = seq.iter().map(|t| t.id().0).collect();
        // HC in input order (τ1, τ3), then LC in input order (τ0, τ2).
        assert_eq!(ids, vec![1, 3, 0, 2]);
    }

    #[test]
    fn cu_order_interleaves_by_utilization() {
        let seq = AllocationOrder::CriticalityUnaware.sequence(&sample());
        let ids: Vec<u32> = seq.iter().map(|t| t.id().0).collect();
        // 0.8 (τ3), 0.6 (τ0 LC!), 0.5 (τ1), 0.1 (τ2).
        assert_eq!(ids, vec![3, 0, 1, 2]);
    }

    #[test]
    fn heavy_lc_first_order() {
        let seq = AllocationOrder::HeavyLcFirst {
            threshold_millis: 500,
        }
        .sequence(&sample());
        let ids: Vec<u32> = seq.iter().map(|t| t.id().0).collect();
        // Heavy LC τ0 (0.6 ≥ 0.5) first, then HC τ3, τ1, then light LC τ2.
        assert_eq!(ids, vec![0, 3, 1, 2]);
    }

    #[test]
    fn metric_evaluation() {
        let ts = sample();
        let u = ts.system_utilization();
        assert!(
            (BalanceMetric::UtilizationDifference.evaluate(&ts) - (u.u_hh - u.u_hl)).abs() < 1e-12
        );
        assert!((BalanceMetric::HiUtilization.evaluate(&ts) - u.u_hh).abs() < 1e-12);
        assert!((BalanceMetric::LoModeLoad.evaluate(&ts) - (u.u_ll + u.u_hl)).abs() < 1e-12);
        assert!((BalanceMetric::OwnLevelLoad.evaluate(&ts) - (u.u_ll + u.u_hh)).abs() < 1e-12);
    }

    #[test]
    fn first_fit_is_index_order() {
        let procs = vec![sample(), TaskSet::new(), sample()];
        assert_eq!(FitRule::FirstFit.processor_order(&procs), vec![0, 1, 2]);
    }

    #[test]
    fn worst_fit_prefers_emptiest() {
        let mut heavy = TaskSet::new();
        heavy.push_unchecked(Task::hi(9, 10, 1, 9).unwrap()); // diff 0.8
        let mut light = TaskSet::new();
        light.push_unchecked(Task::hi(8, 10, 4, 5).unwrap()); // diff 0.1
        let procs = vec![heavy, TaskSet::new(), light];
        let order = FitRule::WorstFit(BalanceMetric::UtilizationDifference).processor_order(&procs);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn best_fit_prefers_fullest() {
        let mut heavy = TaskSet::new();
        heavy.push_unchecked(Task::hi(9, 10, 1, 9).unwrap());
        let procs = vec![TaskSet::new(), heavy, TaskSet::new()];
        let order = FitRule::BestFit(BalanceMetric::UtilizationDifference).processor_order(&procs);
        assert_eq!(order[0], 1);
    }

    #[test]
    fn summary_order_matches_taskset_order() {
        let mut heavy = TaskSet::new();
        heavy.push_unchecked(Task::hi(9, 10, 1, 9).unwrap());
        let mut light = TaskSet::new();
        light.push_unchecked(Task::hi(8, 10, 4, 5).unwrap());
        let procs = vec![heavy, TaskSet::new(), light];
        let summaries: Vec<SystemUtilization> =
            procs.iter().map(TaskSet::system_utilization).collect();
        for fit in [
            FitRule::FirstFit,
            FitRule::WorstFit(BalanceMetric::UtilizationDifference),
            FitRule::BestFit(BalanceMetric::LoModeLoad),
        ] {
            assert_eq!(
                fit.processor_order(&procs),
                fit.processor_order_by_summary(&summaries),
                "{fit}"
            );
        }
    }

    #[test]
    fn nan_keys_do_not_panic() {
        // total_cmp gives NaN a defined order instead of panicking.
        let summaries = vec![
            SystemUtilization {
                u_ll: 0.0,
                u_hl: 0.0,
                u_hh: f64::NAN,
            },
            SystemUtilization::default(),
        ];
        let order =
            FitRule::WorstFit(BalanceMetric::HiUtilization).processor_order_by_summary(&summaries);
        assert_eq!(order.len(), 2);
        assert_eq!(order[0], 1, "NaN sorts after every finite key");
    }

    #[test]
    fn ties_break_by_index() {
        let procs = vec![TaskSet::new(), TaskSet::new(), TaskSet::new()];
        let order = FitRule::WorstFit(BalanceMetric::UtilizationDifference).processor_order(&procs);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn builder_and_accessors() {
        let s = PartitionStrategy::builder("X")
            .order(AllocationOrder::CriticalityUnaware)
            .hc_fit(FitRule::WorstFit(BalanceMetric::UtilizationDifference))
            .lc_fit(FitRule::FirstFit)
            .build();
        assert_eq!(s.name(), "X");
        assert_eq!(s.order(), AllocationOrder::CriticalityUnaware);
        assert_eq!(
            s.hc_fit(),
            FitRule::WorstFit(BalanceMetric::UtilizationDifference)
        );
        assert_eq!(s.lc_fit(), FitRule::FirstFit);
        let hc = Task::hi(0, 10, 1, 2).unwrap();
        let lc = Task::lo(1, 10, 1).unwrap();
        assert_eq!(s.fit_for(&hc), s.hc_fit());
        assert_eq!(s.fit_for(&lc), s.lc_fit());
        assert_eq!(s.to_string(), "X");
    }

    #[test]
    fn displays() {
        assert_eq!(FitRule::FirstFit.to_string(), "FF");
        assert_eq!(
            FitRule::WorstFit(BalanceMetric::UtilizationDifference).to_string(),
            "WF(Udiff)"
        );
        assert_eq!(
            FitRule::BestFit(BalanceMetric::HiUtilization).to_string(),
            "BF(Uhh)"
        );
        assert_eq!(BalanceMetric::LoModeLoad.to_string(), "Ulo");
        assert_eq!(BalanceMetric::OwnLevelLoad.to_string(), "Uown");
    }
}
