//! The partitioning engine (the paper's Algorithm 1, generalised) and the
//! resulting [`Partition`].

use crate::strategy::PartitionStrategy;
use mcsched_analysis::{AdmissionState, AdmissionStats, SchedulabilityTest, WorkspaceRef};
use mcsched_model::{SystemUtilization, TaskId, TaskSet};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A failed partitioning attempt: some task could not be placed on any
/// processor without failing the schedulability test.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionError {
    /// The task that could not be allocated.
    pub task: TaskId,
    /// How many tasks had already been placed when the failure occurred.
    pub placed: usize,
    /// The processor count.
    pub processors: usize,
    /// How many tasks each processor held when the task was rejected
    /// (`processor_loads[k]` is φk+1's task count), straight from the
    /// per-processor admission states.
    #[serde(default)]
    pub processor_loads: Vec<usize>,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task {} could not be allocated on any of {} processors ({} tasks placed",
            self.task, self.processors, self.placed
        )?;
        if !self.processor_loads.is_empty() {
            write!(f, "; per-processor loads: ")?;
            for (k, load) in self.processor_loads.iter().enumerate() {
                if k > 0 {
                    write!(f, "/")?;
                }
                write!(f, "{load}")?;
            }
        }
        write!(f, ")")
    }
}

impl Error for PartitionError {}

/// A successful assignment of every task to one of `m` processors.
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// use mcsched_analysis::EdfVd;
/// use mcsched_core::{presets, Partition};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = TaskSet::try_from_tasks(vec![
///     Task::hi(0, 10, 2, 5)?,
///     Task::lo(1, 10, 4)?,
/// ])?;
/// let partition = Partition::build(&presets::ca_udp(), &EdfVd::new(), &ts, 2)?;
/// assert_eq!(partition.processor_count(), 2);
/// assert!(partition.processor_of(mcsched_model::TaskId(0)).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    processors: Vec<TaskSet>,
}

impl Partition {
    /// Runs the partitioning strategy against a schedulability test
    /// (Algorithm 1 of the paper, generalised to arbitrary orders/fits).
    ///
    /// For each task in the strategy's allocation order, processors are
    /// tried in the order given by the task's fit rule; the first
    /// processor where the test accepts `τ(φk) ∪ {τi}` receives the task.
    ///
    /// Admission runs through the test's stateful per-processor
    /// [`AdmissionState`]s (`test.admission_state()`): rejected attempts
    /// cost no `TaskSet` clone, fit rules read the cached utilization
    /// summaries, and the five native tests reuse incremental analysis
    /// state. Tests without a native state transparently fall back to the
    /// clone-and-retest bridge; either way the resulting partition is
    /// identical to the historical clone-and-retest construction.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError`] naming the first task that fails on all
    /// processors.
    pub fn build(
        strategy: &PartitionStrategy,
        test: &dyn SchedulabilityTest,
        ts: &TaskSet,
        m: usize,
    ) -> Result<Self, PartitionError> {
        Self::build_reporting(strategy, test, ts, m).0
    }

    /// As [`Partition::build`], also returning the aggregated
    /// [`AdmissionStats`] of the run (attempts, admits, incremental vs
    /// full re-analyses) — surfaced by `mcsched-exp --ablation`.
    ///
    /// Analysis scratch comes from the thread-local workspace pool, so
    /// repeated builds on one thread reuse the same buffers; callers that
    /// manage their own workspace (the experiment engine's per-worker
    /// evaluators) use [`Partition::build_reporting_in`] directly.
    pub fn build_reporting(
        strategy: &PartitionStrategy,
        test: &dyn SchedulabilityTest,
        ts: &TaskSet,
        m: usize,
    ) -> (Result<Self, PartitionError>, AdmissionStats) {
        let ws = WorkspaceRef::pooled();
        Self::build_reporting_in(strategy, test, ts, m, &ws)
    }

    /// As [`Partition::build_reporting`], with every per-processor
    /// admission state sharing the caller's analysis workspace: the `m`
    /// states of the build borrow `ws`'s scratch buffers one admission
    /// query at a time, so the whole inner loop runs allocation-free once
    /// the buffers are warm. The resulting partition is identical — the
    /// workspace holds scratch only.
    pub fn build_reporting_in(
        strategy: &PartitionStrategy,
        test: &dyn SchedulabilityTest,
        ts: &TaskSet,
        m: usize,
        ws: &WorkspaceRef,
    ) -> (Result<Self, PartitionError>, AdmissionStats) {
        let mut states: Vec<Box<dyn AdmissionState + '_>> =
            (0..m).map(|_| test.admission_state_in(ws)).collect();
        let total_stats = |states: &[Box<dyn AdmissionState + '_>]| {
            let mut total = AdmissionStats::default();
            for s in states {
                total.merge(&s.stats());
            }
            total
        };
        let sequence = strategy.order().sequence(ts);
        let mut summaries: Vec<SystemUtilization> = vec![SystemUtilization::default(); m];
        let mut order: Vec<usize> = Vec::with_capacity(m);
        for (placed, task) in sequence.iter().enumerate() {
            strategy
                .fit_for(task)
                .processor_order_by_summary_into(&summaries, &mut order);
            let mut assigned = false;
            for &k in &order {
                if states[k].try_admit(task) {
                    states[k].commit(*task);
                    summaries[k] = states[k].summary();
                    assigned = true;
                    break;
                }
            }
            if !assigned {
                let error = PartitionError {
                    task: task.id(),
                    placed,
                    processors: m,
                    processor_loads: states.iter().map(|s| s.tasks().len()).collect(),
                };
                let stats = total_stats(&states);
                return (Err(error), stats);
            }
        }
        let stats = total_stats(&states);
        let processors = states.iter_mut().map(|s| s.take_tasks()).collect();
        (Ok(Partition { processors }), stats)
    }

    /// Number of processors.
    pub fn processor_count(&self) -> usize {
        self.processors.len()
    }

    /// The task set assigned to processor `k`.
    pub fn processor(&self, k: usize) -> Option<&TaskSet> {
        self.processors.get(k)
    }

    /// Iterates over the per-processor task sets.
    pub fn iter(&self) -> std::slice::Iter<'_, TaskSet> {
        self.processors.iter()
    }

    /// The per-processor task sets as a slice.
    pub fn as_slice(&self) -> &[TaskSet] {
        &self.processors
    }

    /// Finds the processor a task landed on.
    pub fn processor_of(&self, id: TaskId) -> Option<usize> {
        self.processors.iter().position(|p| p.get(id).is_some())
    }

    /// Per-processor utilization summaries.
    pub fn utilizations(&self) -> Vec<SystemUtilization> {
        self.processors
            .iter()
            .map(TaskSet::system_utilization)
            .collect()
    }

    /// The largest per-processor utilization difference
    /// `max_k {U_H^H(φk) − U_H^L(φk)}` — the quantity UDP minimises.
    pub fn max_utilization_difference(&self) -> f64 {
        self.processors
            .iter()
            .map(TaskSet::utilization_difference)
            .fold(0.0, f64::max)
    }

    /// The spread (max − min) of the per-processor utilization
    /// differences; smaller means better balanced.
    pub fn utilization_difference_spread(&self) -> f64 {
        let diffs: Vec<f64> = self
            .processors
            .iter()
            .map(TaskSet::utilization_difference)
            .collect();
        let max = diffs.iter().copied().fold(f64::MIN, f64::max);
        let min = diffs.iter().copied().fold(f64::MAX, f64::min);
        if diffs.is_empty() {
            0.0
        } else {
            max - min
        }
    }

    /// Total number of tasks across all processors.
    pub fn task_count(&self) -> usize {
        self.processors.iter().map(TaskSet::len).sum()
    }

    /// Consumes the partition, returning the per-processor sets.
    pub fn into_processors(self) -> Vec<TaskSet> {
        self.processors
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, p) in self.processors.iter().enumerate() {
            let u = p.system_utilization();
            writeln!(
                f,
                "φ{}: {} tasks  U_LL={:.3} U_HL={:.3} U_HH={:.3} diff={:.3}",
                k + 1,
                p.len(),
                u.u_ll,
                u.u_hl,
                u.u_hh,
                u.difference()
            )?;
            for t in p {
                writeln!(f, "    {t}")?;
            }
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Partition {
    type Item = &'a TaskSet;
    type IntoIter = std::slice::Iter<'a, TaskSet>;
    fn into_iter(self) -> Self::IntoIter {
        self.processors.iter()
    }
}

/// Convenience: checks whether every processor of a partition passes a
/// (possibly different) schedulability test — used by tests to
/// cross-validate a partition built under one test against another.
pub fn verify_partition(partition: &Partition, test: &dyn SchedulabilityTest) -> bool {
    partition.iter().all(|p| test.is_schedulable(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use mcsched_analysis::EdfVd;
    use mcsched_model::Task;

    fn small_set() -> TaskSet {
        TaskSet::try_from_tasks(vec![
            Task::hi(0, 10, 2, 5).unwrap(),
            Task::hi(1, 20, 4, 9).unwrap(),
            Task::lo(2, 10, 4).unwrap(),
            Task::lo(3, 25, 5).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn builds_and_accounts_for_all_tasks() {
        let p = Partition::build(&presets::ca_udp(), &EdfVd::new(), &small_set(), 2).unwrap();
        assert_eq!(p.processor_count(), 2);
        assert_eq!(p.task_count(), 4);
        for id in 0..4 {
            assert!(p.processor_of(TaskId(id)).is_some(), "τ{id} missing");
        }
    }

    #[test]
    fn every_processor_passes_the_test() {
        let test = EdfVd::new();
        let p = Partition::build(&presets::cu_udp(), &test, &small_set(), 2).unwrap();
        assert!(verify_partition(&p, &test));
    }

    #[test]
    fn impossible_set_fails_with_named_task() {
        // Three tasks of u^H = 0.9 cannot fit on 2 processors.
        let ts = TaskSet::try_from_tasks(vec![
            Task::hi(0, 10, 5, 9).unwrap(),
            Task::hi(1, 10, 5, 9).unwrap(),
            Task::hi(2, 10, 5, 9).unwrap(),
        ])
        .unwrap();
        let err = Partition::build(&presets::ca_udp(), &EdfVd::new(), &ts, 2).unwrap_err();
        assert_eq!(err.processors, 2);
        assert_eq!(err.placed, 2);
        // Each processor held exactly one of the two placed tasks when the
        // third was rejected.
        assert_eq!(err.processor_loads, vec![1, 1]);
        let msg = err.to_string();
        assert!(msg.contains("could not be allocated"));
        assert!(msg.contains("per-processor loads: 1/1"));
    }

    #[test]
    fn build_reporting_counts_admissions() {
        let (p, stats) =
            Partition::build_reporting(&presets::ca_udp(), &EdfVd::new(), &small_set(), 2);
        let p = p.unwrap();
        assert_eq!(p.task_count(), 4);
        assert_eq!(stats.admits, 4);
        assert!(stats.attempts >= stats.admits);
        // EDF-VD admissions are all O(1) incremental.
        assert_eq!(stats.incremental, stats.attempts);
        assert_eq!(stats.full, 0);
    }

    #[test]
    fn incremental_build_matches_one_shot_bridge() {
        use mcsched_analysis::OneShot;
        let ts = small_set();
        for strategy in presets::all() {
            for m in 1..=3 {
                let fast = Partition::build(&strategy, &EdfVd::new(), &ts, m);
                let slow = Partition::build(&strategy, &OneShot(EdfVd::new()), &ts, m);
                assert_eq!(fast, slow, "{} m={m}", strategy.name());
            }
        }
    }

    #[test]
    fn single_processor_degenerates_to_uniprocessor_test() {
        let ts = small_set();
        let test = EdfVd::new();
        let ok = Partition::build(&presets::ca_udp(), &test, &ts, 1);
        assert_eq!(ok.is_ok(), test.is_schedulable(&ts));
    }

    #[test]
    fn empty_set_on_any_processors() {
        let p = Partition::build(&presets::cu_udp(), &EdfVd::new(), &TaskSet::new(), 3).unwrap();
        assert_eq!(p.task_count(), 0);
        assert_eq!(p.processor_count(), 3);
        assert_eq!(p.max_utilization_difference(), 0.0);
    }

    #[test]
    fn udp_balances_difference_better_than_hi_worst_fit() {
        // Five HC tasks chosen so that after the first three placements
        // the min-difference processor and the min-U_H^H processor differ:
        // UDP ends with per-processor differences (0.40, 0.39), CA-Wu-F
        // with (0.39, 0.35) — a larger spread.
        let ts = TaskSet::try_from_tasks(vec![
            Task::hi(0, 100, 30, 60).unwrap(), // diff .30
            Task::hi(1, 100, 10, 35).unwrap(), // diff .25
            Task::hi(2, 100, 15, 20).unwrap(), // diff .05
            Task::hi(3, 100, 5, 15).unwrap(),  // diff .10
            Task::hi(4, 100, 2, 11).unwrap(),  // diff .09
        ])
        .unwrap();
        let test = EdfVd::new();
        let udp = Partition::build(&presets::ca_udp(), &test, &ts, 2).unwrap();
        let wu = Partition::build(&presets::ca_wu_f(), &test, &ts, 2).unwrap();
        // UDP never balances the difference worse than the U_H^H rule on
        // this instance (the statistically strict version of this claim is
        // exercised over thousands of sets by the ablation harness).
        assert!(
            udp.utilization_difference_spread() <= wu.utilization_difference_spread() + 1e-9,
            "UDP spread {} vs CA-Wu-F spread {}",
            udp.utilization_difference_spread(),
            wu.utilization_difference_spread()
        );
        // The allocations genuinely differ: τ3 lands with τ0 under UDP and
        // with τ1, τ2 under CA-Wu-F.
        assert_eq!(udp.processor_of(TaskId(3)), udp.processor_of(TaskId(0)));
        assert_eq!(wu.processor_of(TaskId(3)), wu.processor_of(TaskId(1)));
    }

    #[test]
    fn display_shows_processors() {
        let p = Partition::build(&presets::ca_udp(), &EdfVd::new(), &small_set(), 2).unwrap();
        let s = p.to_string();
        assert!(s.contains("φ1:"));
        assert!(s.contains("φ2:"));
        assert!(s.contains("diff="));
    }

    #[test]
    fn accessors() {
        let p = Partition::build(&presets::ca_udp(), &EdfVd::new(), &small_set(), 2).unwrap();
        assert!(p.processor(0).is_some());
        assert!(p.processor(5).is_none());
        assert_eq!(p.utilizations().len(), 2);
        assert_eq!(p.as_slice().len(), 2);
        assert_eq!((&p).into_iter().count(), 2);
        let procs = p.clone().into_processors();
        assert_eq!(procs.len(), 2);
        assert!(p.processor_of(TaskId(99)).is_none());
    }
}
