//! 2^63-scale regression tests: the demand and response-time kernels
//! must *saturate* at `Time::MAX`, never wrap or panic, when fed task
//! parameters near the top of the `u64` range.
//!
//! Before the arithmetic was converted to `saturating_*`, every test in
//! this file aborted a debug build with "attempt to multiply with
//! overflow" (or returned a wrapped — i.e. unsound — demand in release).

use mcsched_analysis::dbf::{dbf_hi, dbf_lo, total_dbf_hi, total_dbf_lo, VdTask};
use mcsched_analysis::{AmcMax, AmcRtb, LoRta, SchedulabilityTest};
use mcsched_model::{Task, TaskSet, Time};

const BIG: u64 = 1 << 62;

fn huge_hi_task(id: u32) -> Task {
    Task::hi(id, BIG, BIG / 2, BIG).expect("valid task")
}

#[test]
fn dbf_lo_saturates_instead_of_wrapping() {
    // A maximally tightened virtual deadline fits 4 jobs of C^L = 2^62
    // into the window: 4 · 2^62 = 2^64, past u64::MAX, must clamp.
    let vt = VdTask {
        task: Task::hi(0, BIG, BIG, BIG).expect("valid task"),
        vd: Time::new(1),
    };
    assert_eq!(dbf_lo(&vt, Time::MAX), Time::MAX);
}

#[test]
fn dbf_hi_saturates_instead_of_wrapping() {
    // k = 4 full periods of C^H = 2^62 in the window: k·C^H = 2^64
    // clamps to MAX before the carry-over credit is subtracted.
    let vt = VdTask {
        task: huge_hi_task(0),
        vd: Time::new(BIG / 2),
    };
    let demand = dbf_hi(&vt, Time::MAX);
    assert!(demand >= Time::new(u64::MAX - BIG));
}

#[test]
fn total_dbf_clamps_across_tasks() {
    // Each task alone saturates; the totals must clamp, not wrap to a
    // small (falsely schedulable) value.
    let tasks: Vec<VdTask> = (0..3)
        .map(|id| VdTask {
            task: huge_hi_task(id),
            vd: Time::new(BIG / 2),
        })
        .collect();
    assert_eq!(total_dbf_lo(&tasks, Time::MAX), Time::MAX);
    assert_eq!(total_dbf_hi(&tasks, Time::MAX), Time::MAX);
}

#[test]
fn response_time_iteration_survives_saturated_interference() {
    // Four tasks each with C^L = T = 2^62: total low demand in any busy
    // window is 2^64. The fixpoint must conclude "unschedulable", not
    // overflow mid-iteration.
    let ts =
        TaskSet::try_from_tasks((0..4).map(|id| Task::hi(id, BIG, BIG, BIG).expect("valid task")))
            .expect("valid task set");
    assert_eq!(LoRta::compute(&ts), None);
    assert!(!AmcRtb::new().is_schedulable(&ts));
    assert!(!AmcMax::new().is_schedulable(&ts));
    assert!(!mcsched_analysis::amc::reference::amc_rtb_is_schedulable(
        &ts
    ));
    assert!(!mcsched_analysis::amc::reference::amc_max_is_schedulable(
        &ts
    ));
}

#[test]
fn huge_but_feasible_scale_still_schedulable() {
    // Saturation must not cost soundness at large-but-feasible scale:
    // two tasks with utilisation 1/16 each on one processor.
    let ts = TaskSet::try_from_tasks(vec![
        Task::hi(0, BIG, BIG / 16, BIG / 8).expect("valid task"),
        Task::hi(1, BIG, BIG / 16, BIG / 8).expect("valid task"),
    ])
    .expect("valid task set");
    assert!(LoRta::compute(&ts).is_some());
    assert!(AmcRtb::new().is_schedulable(&ts));
    assert!(AmcMax::new().is_schedulable(&ts));
    assert!(mcsched_analysis::amc::reference::amc_rtb_is_schedulable(
        &ts
    ));
    assert!(mcsched_analysis::amc::reference::amc_max_is_schedulable(
        &ts
    ));
}

#[test]
fn demand_kernel_guarded_route_matches_reference_at_scale() {
    use mcsched_analysis::dbf::reference;
    use mcsched_analysis::DemandKernel;
    // Certificate-breaking parameters (≥ 2^32): the kernel must refuse
    // the fast lanes and answer through the guarded saturating route —
    // bit-identically to the seed reference.
    let sets: Vec<Vec<VdTask>> = vec![
        // Infeasible at scale: three half-utilisation giants.
        (0..3)
            .map(|id| VdTask {
                task: huge_hi_task(id),
                vd: Time::new(BIG / 2),
            })
            .collect(),
        // Feasible at scale: two 1/16-utilisation giants.
        vec![
            VdTask {
                task: Task::hi(0, BIG, BIG / 16, BIG / 8).expect("valid task"),
                vd: Time::new(BIG / 8),
            },
            VdTask {
                task: Task::hi(1, BIG, BIG / 16, BIG / 8).expect("valid task"),
                vd: Time::new(BIG / 8),
            },
        ],
        // Mixed scale: one light giant among certified-sized tasks
        // still poisons the certificate for the whole assignment (kept
        // light so the busy-window bound stays representable — at a
        // heavier giant the typed early-reject intentionally diverges
        // from the seed's saturated-horizon descent).
        vec![
            VdTask::untightened(Task::lo(0, 10, 2).expect("valid task")),
            VdTask {
                task: Task::hi(1, BIG, BIG / 16, BIG / 8).expect("valid task"),
                vd: Time::new(BIG / 8),
            },
            VdTask {
                task: Task::hi(2, 20, 3, 7).expect("valid task"),
                vd: Time::new(9),
            },
        ],
    ];
    let mut kernel = DemandKernel::new();
    for tasks in &sets {
        kernel.load(tasks);
        assert!(
            !kernel.certified(),
            "2^63-scale set must break the demand certificate"
        );
        assert_eq!(
            kernel.check_lo(),
            reference::check_lo_mode(tasks),
            "guarded lo route diverged on {tasks:?}"
        );
        assert_eq!(
            kernel.check_hi(),
            reference::check_hi_mode(tasks),
            "guarded hi route diverged on {tasks:?}"
        );
    }
}

#[test]
fn demand_certificate_flips_reversibly_under_probes() {
    use mcsched_analysis::dbf::reference;
    use mcsched_analysis::DemandKernel;
    // A certified base set; pushing a 2^63-scale probe must drop to the
    // guarded route (with reference-identical answers), and popping it
    // must restore the fast certificate — the LIFO admission pattern.
    let base = [
        VdTask::untightened(Task::lo(0, 12, 3).expect("valid task")),
        VdTask {
            task: Task::hi(1, 20, 2, 6).expect("valid task"),
            vd: Time::new(9),
        },
    ];
    let mut kernel = DemandKernel::new();
    kernel.load(&base);
    assert!(kernel.certified(), "small base set must certify");
    let lo_before = kernel.check_lo();
    let hi_before = kernel.check_hi();
    kernel.push_task(VdTask {
        task: huge_hi_task(900),
        vd: Time::new(BIG / 2),
    });
    assert!(
        !kernel.certified(),
        "giant probe must break the certificate"
    );
    let current = kernel.assignment().to_vec();
    assert_eq!(kernel.check_lo(), reference::check_lo_mode(&current));
    assert_eq!(kernel.check_hi(), reference::check_hi_mode(&current));
    let popped = kernel.pop_task();
    assert_eq!(popped.task.id().0, 900);
    assert!(kernel.certified(), "pop must restore the certificate");
    assert_eq!(kernel.check_lo(), lo_before);
    assert_eq!(kernel.check_hi(), hi_before);
}

#[test]
fn time_saturating_ops_clamp_at_max() {
    let big = Time::new(BIG);
    assert_eq!(big.saturating_mul(4), Time::MAX);
    assert_eq!(big.saturating_mul(2), Time::new(BIG << 1));
    assert_eq!(Time::MAX.saturating_add(big), Time::MAX);
    assert_eq!(Time::ZERO.saturating_sub(big), Time::ZERO);
}
