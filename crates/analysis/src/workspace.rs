//! Reusable scratch buffers for the analysis hot path.
//!
//! The schedulability tests sit inside the partitioning inner loop: the
//! headline acceptance-ratio sweeps run them millions of times. Before
//! this module existed, every call re-allocated its intermediate vectors
//! (priority orders, response-time arrays, candidate switch instants,
//! virtual-deadline workspaces). An [`AnalysisWorkspace`] owns all of
//! those buffers once; the analyses `clear()` and refill them, so the
//! steady-state path performs **zero heap allocations** (asserted by the
//! counting-allocator test in `tests/zero_alloc.rs`).
//!
//! Two ways to get one:
//!
//! * [`AnalysisWorkspace::with`] — borrow a workspace from the
//!   thread-local pool for the duration of a closure. This is what the
//!   native tests' [`SchedulabilityTest::is_schedulable`] wrappers use, so
//!   repeated one-shot calls on the same thread reuse the same buffers.
//! * [`WorkspaceRef`] — a cheaply cloneable shared handle
//!   (`Rc<RefCell<…>>`). `Partition::build_reporting` passes one handle to
//!   all `m` per-processor admission states
//!   ([`SchedulabilityTest::admission_state_in`]), so a whole partitioning
//!   run shares a single set of scratch buffers. The experiment engine
//!   creates one handle per worker thread.
//!
//! No *verdict* ever depends on a workspace buffer's previous contents,
//! so sharing or pooling workspaces cannot change an analysis outcome
//! (the equivalence suites in `tests/` pin this). Two caveats for
//! maintainers: the embedded demand kernel's reuse *counters* survive
//! `load()`/`clear()` by design (they describe the kernel's lifetime,
//! and accumulate across whatever analyses share a pooled workspace),
//! and warm kernel state is only *useful* when it describes one
//! processor's committed set — which is why `VdTuneState` owns a
//! private kernel instead of sharing `ws.demand` (a shared one would be
//! clobbered between probes; verdicts would stay correct, but the
//! probe-to-probe memo reuse would silently vanish).
//!
//! [`SchedulabilityTest::is_schedulable`]: crate::SchedulabilityTest::is_schedulable
//! [`SchedulabilityTest::admission_state_in`]: crate::SchedulabilityTest::admission_state_in

use crate::amc::{AmcScratch, CandStream, HcSlot};
use crate::demand::DemandKernel;
use crate::vdtune::Move;
use mcsched_model::Task;
use std::cell::{RefCell, RefMut};
use std::ops::Deref;
use std::rc::Rc;

/// Scratch buffers shared by the analysis hot paths.
///
/// Obtain one through [`AnalysisWorkspace::with`] (thread-local pool) or
/// behind a [`WorkspaceRef`]; the buffers grow to the high-water mark of
/// the sets analysed through them and are then reused allocation-free.
#[derive(Debug, Default)]
pub struct AnalysisWorkspace {
    /// Priority-order indices (deadline-monotonic order, Audsley's
    /// unassigned set).
    pub(crate) idx: Vec<usize>,
    /// Secondary index buffer (Audsley's lowest-priority-first order).
    pub(crate) idx2: Vec<usize>,
    /// Union buffer for `committed ∪ {candidate}` workspaces.
    pub(crate) tasks: Vec<Task>,
    /// Per-interferer step streams for the AMC-max candidate walk.
    pub(crate) streams: Vec<CandStream>,
    /// Per-hp-HC-task interference slots for the AMC-max candidate walk.
    pub(crate) hc: Vec<HcSlot>,
    /// The one-shot AMC analysis (order / responses) — the workspace path
    /// runs exactly the incremental layer's `analyze_into` over it.
    pub(crate) amc: AmcScratch,
    /// The incremental demand kernel: the virtual-deadline assignment
    /// under analysis plus its memoised QPA state (EY / ECDF, classic
    /// EDF, and the public one-shot demand checks).
    pub(crate) demand: DemandKernel,
    /// Candidate tightening moves of one greedy round (EY / ECDF).
    pub(crate) moves: Vec<Move>,
}

impl AnalysisWorkspace {
    /// A workspace with empty buffers (they grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with a workspace borrowed from the thread-local pool.
    ///
    /// Re-entrant: a nested call simply checks out a second workspace.
    pub fn with<R>(f: impl FnOnce(&mut AnalysisWorkspace) -> R) -> R {
        let guard = WorkspaceRef::pooled();
        let r = f(&mut guard.borrow_mut());
        r
    }
}

/// A shared, cheaply cloneable handle to an [`AnalysisWorkspace`].
///
/// All admission states of one partitioning run hold clones of the same
/// handle and borrow it only for the duration of a single admission query,
/// so the borrows never overlap.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceRef {
    inner: Rc<RefCell<AnalysisWorkspace>>,
}

impl WorkspaceRef {
    /// A fresh workspace handle with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks a handle out of the thread-local pool (creating one if the
    /// pool is empty). The guard returns it when dropped, so buffers warm
    /// up once per thread and stay warm across partitioning runs.
    pub fn pooled() -> PooledWorkspace {
        let ws = POOL
            .with(|pool| pool.borrow_mut().pop())
            .unwrap_or_default();
        PooledWorkspace { ws: Some(ws) }
    }

    /// Mutably borrows the underlying workspace.
    ///
    /// # Panics
    ///
    /// Panics if the workspace is already borrowed (analysis code keeps
    /// borrows local to one admission query, so this cannot happen through
    /// the public API).
    pub fn borrow_mut(&self) -> RefMut<'_, AnalysisWorkspace> {
        self.inner.borrow_mut()
    }
}

thread_local! {
    /// Idle workspaces of this thread, reused across partitioning runs.
    static POOL: RefCell<Vec<WorkspaceRef>> = const { RefCell::new(Vec::new()) };
}

/// Ceiling on pooled workspaces per thread; checkouts beyond this are
/// simply dropped on return instead of growing the pool without bound.
const MAX_POOLED: usize = 32;

/// A [`WorkspaceRef`] checked out of the thread-local pool; returns to the
/// pool on drop.
#[derive(Debug)]
pub struct PooledWorkspace {
    ws: Option<WorkspaceRef>,
}

impl Deref for PooledWorkspace {
    type Target = WorkspaceRef;
    fn deref(&self) -> &WorkspaceRef {
        self.ws.as_ref().expect("present until drop")
    }
}

impl Drop for PooledWorkspace {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            POOL.with(|pool| {
                let mut pool = pool.borrow_mut();
                if pool.len() < MAX_POOLED {
                    pool.push(ws);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_reuses_thread_local_buffers() {
        // Grow a buffer inside one `with` scope…
        AnalysisWorkspace::with(|ws| {
            ws.idx.clear();
            ws.idx.extend(0..100);
        });
        // …and observe the capacity surviving into the next checkout.
        AnalysisWorkspace::with(|ws| {
            assert!(ws.idx.capacity() >= 100);
        });
    }

    #[test]
    fn nested_with_is_reentrant() {
        AnalysisWorkspace::with(|outer| {
            outer.idx.push(7);
            AnalysisWorkspace::with(|inner| {
                // A distinct workspace: pushing here cannot alias `outer`.
                inner.idx.push(9);
            });
            assert_eq!(outer.idx.pop(), Some(7));
            outer.idx.clear();
        });
    }

    #[test]
    fn workspace_ref_clones_share_buffers() {
        let a = WorkspaceRef::new();
        let b = a.clone();
        a.borrow_mut().idx.push(3);
        assert_eq!(b.borrow_mut().idx.pop(), Some(3));
    }

    #[test]
    fn pool_is_bounded() {
        let guards: Vec<_> = (0..MAX_POOLED + 8)
            .map(|_| WorkspaceRef::pooled())
            .collect();
        drop(guards);
        let pooled = POOL.with(|pool| pool.borrow().len());
        assert!(pooled <= MAX_POOLED);
    }
}
