// mclint: hot-path
//! Reusable scratch buffers for the analysis hot path.
//!
//! The schedulability tests sit inside the partitioning inner loop: the
//! headline acceptance-ratio sweeps run them millions of times. Before
//! this module existed, every call re-allocated its intermediate vectors
//! (priority orders, response-time arrays, candidate switch instants,
//! virtual-deadline workspaces). An [`AnalysisWorkspace`] owns all of
//! those buffers once; the analyses `clear()` and refill them, so the
//! steady-state path performs **zero heap allocations** (asserted by the
//! counting-allocator test in `tests/zero_alloc.rs`).
//!
//! Two ways to get one:
//!
//! * [`AnalysisWorkspace::with`] — borrow a workspace from the
//!   thread-local pool for the duration of a closure. This is what the
//!   native tests' [`SchedulabilityTest::is_schedulable`] wrappers use, so
//!   repeated one-shot calls on the same thread reuse the same buffers.
//! * [`WorkspaceRef`] — a cheaply cloneable shared handle
//!   (`Rc<RefCell<…>>`). `Partition::build_reporting` passes one handle to
//!   all `m` per-processor admission states
//!   ([`SchedulabilityTest::admission_state_in`]), so a whole partitioning
//!   run shares a single set of scratch buffers. The experiment engine
//!   creates one handle per worker thread.
//!
//! No *verdict* ever depends on a workspace buffer's previous contents,
//! so sharing or pooling workspaces cannot change an analysis outcome
//! (the equivalence suites in `tests/` pin this). Two caveats for
//! maintainers: the embedded demand kernel's reuse *counters* survive
//! `load()`/`clear()` by design (they describe the kernel's lifetime,
//! and accumulate across whatever analyses share a pooled workspace),
//! and warm kernel state is only *useful* when it describes one
//! processor's committed set — which is why `VdTuneState` owns a
//! private kernel instead of sharing `ws.demand` (a shared one would be
//! clobbered between probes; verdicts would stay correct, but the
//! probe-to-probe memo reuse would silently vanish).
//!
//! ## The demand fast-kernel certificate
//!
//! [`DemandSoa`] carries the demand stack's analogue of the response
//! -time certificate on [`SoaTasks::fast`]. Its argument (the QPA
//! counterpart of the Kleene note in `amc.rs`): when every `C^L`, `C^H`
//! is in `[1, 2^32)`, every `T` in `[2, 2^32)`, every `D = V + d` below
//! `2^32`, and the worst-case demand budget
//! `Σ_j max(C^L_j, C^H_j)·(⌊(2^32−1)/T_j⌋ + 1)` leaves headroom below
//! `2^63`, then at every evaluation instant `t < 2^32` each `dbf` step
//! term is bounded by its budget charge and the lane accumulator stays
//! below `2^63` — so plain `+`/`*` compute the same values the
//! saturating guarded sweep would — and every floor operand pair
//! satisfies `(t − V)·T < 2^64`, making the no-fixup reciprocal floor
//! division exact (`df_fast` in `amc.rs`). QPA descents only ever move
//! *down* from their start bound, so a single `bound < 2^32` test at
//! descent entry certifies every instant the descent will visit;
//! larger windows take the guarded saturating route unchanged. The
//! certificate is maintained *reversibly* (integer `slow_tasks` count
//! plus exact `u128` budget, charged on push and refunded on pop), and
//! `replace_vd` never touches it: the charge depends only on
//! `(C^L, C^H, T, D)`, and `V + d = D` is invariant under retargeting.
//!
//! [`SchedulabilityTest::is_schedulable`]: crate::SchedulabilityTest::is_schedulable
//! [`SchedulabilityTest::admission_state_in`]: crate::SchedulabilityTest::admission_state_in

use crate::amc::{AmcScratch, CandStream, HcSlot};
use crate::demand::DemandKernel;
use crate::vdtune::Move;
use mcsched_model::{Criticality, Task};
use std::cell::{RefCell, RefMut};
use std::ops::Deref;
use std::rc::Rc;

/// Structure-of-arrays task view for the batched response-time kernels.
///
/// One position per task, **highest priority first** (whatever priority
/// order the caller loads). Four contiguous `u64` lanes
/// (`wcet_lo` / `wcet_hi` / `period` / `deadline`) turn the RTA
/// interference sum into straight-line integer arithmetic over adjacent
/// memory — no pointer-chasing through `Task` structs — and two
/// *compacted* criticality views (`hc_*` / `lc_*`, each entry remembering
/// its originating position) let the high-mode fixpoint iterate
/// exclusively over the lanes that can actually move between iterations.
///
/// Maintained by delta under admission probes: [`SoaTasks::insert`]
/// shifts the lanes (an `O(n)` memmove of plain integers) and
/// [`SoaTasks::remove`] undoes it, so a probe never rebuilds the view
/// and never allocates once the buffers have grown to the processor's
/// high-water mark (pinned by `tests/zero_alloc.rs`).
#[derive(Debug, Clone, Default)]
pub(crate) struct SoaTasks {
    /// `C^L` per position.
    pub(crate) wcet_lo: Vec<u64>,
    /// `C^H` per position (`== C^L` for LC tasks).
    pub(crate) wcet_hi: Vec<u64>,
    /// `T` per position.
    pub(crate) period: Vec<u64>,
    /// [`inv64`] reciprocal of `T` per position, so the fixpoint sweeps
    /// divide by multiplying (computed once per load/insert, reused by
    /// every probe).
    pub(crate) inv_period: Vec<u64>,
    /// `D` per position.
    pub(crate) deadline: Vec<u64>,
    /// Criticality per position (`true` = HC).
    pub(crate) hc: Vec<bool>,
    /// Compacted HC view: `C^H` of the HC tasks in position order.
    pub(crate) hc_wcet_hi: Vec<u64>,
    /// Compacted HC view: `T` of the HC tasks in position order.
    pub(crate) hc_period: Vec<u64>,
    /// Compacted HC view: [`inv64`] reciprocal of `T`.
    pub(crate) hc_inv_period: Vec<u64>,
    /// Position of each compacted HC entry (strictly increasing).
    pub(crate) hc_pos: Vec<usize>,
    /// Compacted LC view: `C^L` of the LC tasks in position order.
    pub(crate) lc_wcet_lo: Vec<u64>,
    /// Compacted LC view: `T` of the LC tasks in position order.
    pub(crate) lc_period: Vec<u64>,
    /// Compacted LC view: [`inv64`] reciprocal of `T`.
    pub(crate) lc_inv_period: Vec<u64>,
    /// Position of each compacted LC entry (strictly increasing).
    pub(crate) lc_pos: Vec<usize>,
    /// Loaded tasks failing the per-task half of the fast-kernel
    /// certificate (see [`SoaTasks::fast`]).
    slow_tasks: usize,
    /// Exact worst-case interference budget of the loaded tasks (see
    /// [`SoaTasks::fast`]); `u128` so delta updates add and subtract the
    /// per-task contribution without saturation losing information.
    fast_budget: u128,
}

/// The precomputed reciprocal `⌊2^64 / d⌋` (saturated for `d == 1`) used
/// by the batched kernels' exact division-by-multiplication: for any
/// `n < 2^64`, `hi64(n · inv64(d))` is `⌊n/d⌋` or `⌊n/d⌋ − 1`, and one
/// multiply-compare fixup recovers the exact quotient (see `dc_inv` in
/// `amc.rs` for the proof sketch).
/// Per-task half of the fast-kernel certificate over raw lane values
/// (see [`SoaTasks::fast`]): the bounds predicate and the exact
/// worst-case interference charge `max(C^L, C^H)·⌈(2^32−1)/T⌉`.
fn cert_values(wl: u64, wh: u64, t: u64, d: u64, inv: u64) -> (bool, u128) {
    const LIM: u64 = 1 << 32;
    let ok = (1..LIM).contains(&wl) && (1..LIM).contains(&wh) && (2..LIM).contains(&t) && d < LIM;
    if !ok {
        return (false, 0);
    }
    let worst = crate::amc::dc_inv(LIM - 1, t, inv);
    (true, wl.max(wh) as u128 * worst as u128)
}

pub(crate) fn inv64(d: u64) -> u64 {
    if d == 1 {
        return u64::MAX;
    }
    // ⌊2^64/d⌋ from one 64-bit divide: 2^64 = (u64::MAX) + 1, so the
    // quotient only gains the carry when the remainder wraps to 0.
    let q = u64::MAX / d;
    let r = u64::MAX % d;
    // r < d here (d ≥ 2), so the carry condition r + 1 == d is exactly
    // r == d − 1, sparing the increment.
    q + u64::from(r == d - 1)
}

impl SoaTasks {
    /// Number of loaded positions.
    pub(crate) fn len(&self) -> usize {
        self.period.len()
    }

    /// Whether the loaded set certifies the *fast* (unguarded) response
    /// -time kernels: every `C^L`, `C^H` in `[1, 2^32)`, every `T` in
    /// `[2, 2^32)`, every `D < 2^32`, and the worst-case interference
    /// budget `Σ_j max(C^L_j, C^H_j)·⌈(2^32−1)/T_j⌉` leaves headroom
    /// below `2^63`. Under this certificate every fixpoint iterate stays
    /// `< 2^32` (it is deadline-checked before any sweep uses it), so
    /// every `(r−1)·T` product fits `u64` — making the no-fixup
    /// reciprocal ceiling division exact (see `dc_fast` in `amc.rs`) —
    /// and no interference accumulator can overflow, so plain `+`/`*`
    /// compute the same values the saturating guarded kernel would.
    pub(crate) fn fast(&self) -> bool {
        self.slow_tasks == 0 && self.fast_budget + (1u128 << 32) < (1u128 << 63)
    }

    /// The position's contribution to the fast-kernel certificate:
    /// whether it satisfies the per-task bounds, and its exact worst-case
    /// interference charge. Pure in the lane values, so
    /// [`SoaTasks::remove`] subtracts exactly what
    /// [`SoaTasks::insert`] added.
    fn cert(&self, pos: usize) -> (bool, u128) {
        cert_values(
            self.wcet_lo[pos],
            self.wcet_hi[pos],
            self.period[pos],
            self.deadline[pos],
            self.inv_period[pos],
        )
    }

    /// Charges position `pos` to the fast-kernel certificate.
    fn cert_add(&mut self, pos: usize) {
        let (ok, b) = self.cert(pos);
        self.slow_tasks += usize::from(!ok);
        self.fast_budget += b;
    }

    /// Undoes [`SoaTasks::cert_add`] for position `pos` (call before the
    /// lanes shift).
    fn cert_sub(&mut self, pos: usize) {
        let (ok, b) = self.cert(pos);
        self.slow_tasks -= usize::from(!ok);
        self.fast_budget -= b;
    }

    /// Number of HC lanes in the compacted view.
    pub(crate) fn hc_len(&self) -> usize {
        self.hc_pos.len()
    }

    /// Whether the task at `pos` is high-criticality.
    pub(crate) fn is_hc(&self, pos: usize) -> bool {
        self.hc[pos]
    }

    /// Number of HC lanes at positions strictly above `pos` — also the
    /// compacted-HC rank of `pos` itself when `pos` holds an HC task.
    pub(crate) fn hc_rank_below(&self, pos: usize) -> usize {
        self.hc_pos.partition_point(|&x| x < pos)
    }

    /// Empties the view, keeping the buffers for reuse.
    pub(crate) fn clear(&mut self) {
        self.wcet_lo.clear();
        self.wcet_hi.clear();
        self.period.clear();
        self.inv_period.clear();
        self.deadline.clear();
        self.hc.clear();
        self.hc_wcet_hi.clear();
        self.hc_period.clear();
        self.hc_inv_period.clear();
        self.hc_pos.clear();
        self.lc_wcet_lo.clear();
        self.lc_period.clear();
        self.lc_inv_period.clear();
        self.lc_pos.clear();
        self.slow_tasks = 0;
        self.fast_budget = 0;
    }

    /// Rebuilds the view as `tasks[order[0]], tasks[order[1]], …`.
    ///
    /// Lane-at-a-time: each output vector is filled in one contiguous
    /// `extend` pass (the per-set build cost is on the one-shot hot path,
    /// paid even by sets the analysis rejects at the first task).
    pub(crate) fn load(&mut self, tasks: &[Task], order: &[usize]) {
        self.load_primary(tasks, order);
        self.build_compact();
    }

    /// The primary-lane half of [`SoaTasks::load`]: everything the
    /// low-mode kernel reads. The one-shot analysis defers
    /// [`SoaTasks::build_compact`] until low mode actually passes, so a
    /// set rejected at the first phase never pays for the criticality
    /// views.
    ///
    /// One fused pass: each task is read once and scattered into all six
    /// lanes in place (resize + overwrite, no clear-and-extend), with the
    /// fast-kernel certificate accumulated on the fly — the per-set build
    /// cost is on the one-shot hot path, paid even by sets the analysis
    /// rejects at the first task.
    pub(crate) fn load_primary(&mut self, tasks: &[Task], order: &[usize]) {
        let n = order.len();
        self.hc_wcet_hi.clear();
        self.hc_period.clear();
        self.hc_inv_period.clear();
        self.hc_pos.clear();
        self.lc_wcet_lo.clear();
        self.lc_period.clear();
        self.lc_inv_period.clear();
        self.lc_pos.clear();
        self.wcet_lo.resize(n, 0);
        self.wcet_hi.resize(n, 0);
        self.period.resize(n, 0);
        self.inv_period.resize(n, 0);
        self.deadline.resize(n, 0);
        self.hc.resize(n, false);
        let mut slow = 0usize;
        let mut budget = 0u128;
        let lanes = self
            .wcet_lo
            .iter_mut()
            .zip(&mut self.wcet_hi)
            .zip(&mut self.period)
            .zip(&mut self.inv_period)
            .zip(&mut self.deadline)
            .zip(&mut self.hc);
        for (&i, lane) in order.iter().zip(lanes) {
            let (((((wl, wh), per), inv), dl), hc) = lane;
            let t = &tasks[i];
            *wl = t.wcet_lo().as_ticks();
            *wh = t.wcet_hi().as_ticks();
            *per = t.period().as_ticks();
            *inv = inv64(*per);
            *dl = t.deadline().as_ticks();
            *hc = t.criticality() == Criticality::High;
            let (ok, b) = cert_values(*wl, *wh, *per, *dl, *inv);
            slow += usize::from(!ok);
            budget = budget.saturating_add(b);
        }
        self.slow_tasks = slow;
        self.fast_budget = budget;
    }

    /// The criticality-view half of [`SoaTasks::load`]; requires the
    /// matching [`SoaTasks::load_primary`] to have run (the views are
    /// compacted from the primary lanes, so the periods' reciprocals are
    /// copied rather than re-divided).
    pub(crate) fn build_compact(&mut self) {
        for pos in 0..self.len() {
            self.push_compact(pos);
        }
    }

    /// Rebuilds the view in slice order (`order = 0..n`).
    pub(crate) fn load_seq(&mut self, tasks: &[Task]) {
        self.clear();
        self.wcet_lo
            .extend(tasks.iter().map(|t| t.wcet_lo().as_ticks()));
        self.wcet_hi
            .extend(tasks.iter().map(|t| t.wcet_hi().as_ticks()));
        self.period
            .extend(tasks.iter().map(|t| t.period().as_ticks()));
        self.inv_period
            .extend(self.period.iter().map(|&t| inv64(t)));
        self.deadline
            .extend(tasks.iter().map(|t| t.deadline().as_ticks()));
        self.hc
            .extend(tasks.iter().map(|t| t.criticality() == Criticality::High));
        for pos in 0..tasks.len() {
            self.cert_add(pos);
            self.push_compact(pos);
        }
    }

    /// Appends position `pos`'s compacted criticality-view entry from the
    /// primary lanes (positions must be appended in increasing order,
    /// after the primary lanes are filled).
    fn push_compact(&mut self, pos: usize) {
        if self.hc[pos] {
            self.hc_wcet_hi.push(self.wcet_hi[pos]);
            self.hc_period.push(self.period[pos]);
            self.hc_inv_period.push(self.inv_period[pos]);
            self.hc_pos.push(pos);
        } else {
            self.lc_wcet_lo.push(self.wcet_lo[pos]);
            self.lc_period.push(self.period[pos]);
            self.lc_inv_period.push(self.inv_period[pos]);
            self.lc_pos.push(pos);
        }
    }

    /// Inserts `t` at priority position `pos`, shifting lower priorities
    /// down (the admission probe's delta update; `O(n)` lane memmoves,
    /// allocation-free at capacity).
    pub(crate) fn insert(&mut self, pos: usize, t: &Task) {
        self.wcet_lo.insert(pos, t.wcet_lo().as_ticks());
        self.wcet_hi.insert(pos, t.wcet_hi().as_ticks());
        self.period.insert(pos, t.period().as_ticks());
        self.inv_period.insert(pos, inv64(t.period().as_ticks()));
        self.deadline.insert(pos, t.deadline().as_ticks());
        self.cert_add(pos);
        for x in &mut self.hc_pos {
            if *x >= pos {
                *x += 1;
            }
        }
        for x in &mut self.lc_pos {
            if *x >= pos {
                *x += 1;
            }
        }
        match t.criticality() {
            Criticality::High => {
                self.hc.insert(pos, true);
                let rank = self.hc_pos.partition_point(|&x| x < pos);
                self.hc_wcet_hi.insert(rank, t.wcet_hi().as_ticks());
                self.hc_period.insert(rank, t.period().as_ticks());
                self.hc_inv_period.insert(rank, self.inv_period[pos]);
                self.hc_pos.insert(rank, pos);
            }
            Criticality::Low => {
                self.hc.insert(pos, false);
                let rank = self.lc_pos.partition_point(|&x| x < pos);
                self.lc_wcet_lo.insert(rank, t.wcet_lo().as_ticks());
                self.lc_period.insert(rank, t.period().as_ticks());
                self.lc_inv_period.insert(rank, self.inv_period[pos]);
                self.lc_pos.insert(rank, pos);
            }
        }
    }

    /// Removes the task at priority position `pos` (undoes
    /// [`SoaTasks::insert`]).
    pub(crate) fn remove(&mut self, pos: usize) {
        self.cert_sub(pos);
        self.wcet_lo.remove(pos);
        self.wcet_hi.remove(pos);
        self.period.remove(pos);
        self.inv_period.remove(pos);
        self.deadline.remove(pos);
        if self.hc.remove(pos) {
            let rank = self.hc_pos.partition_point(|&x| x < pos);
            self.hc_wcet_hi.remove(rank);
            self.hc_period.remove(rank);
            self.hc_inv_period.remove(rank);
            self.hc_pos.remove(rank);
        } else {
            let rank = self.lc_pos.partition_point(|&x| x < pos);
            self.lc_wcet_lo.remove(rank);
            self.lc_period.remove(rank);
            self.lc_inv_period.remove(rank);
            self.lc_pos.remove(rank);
        }
        for x in &mut self.hc_pos {
            if *x > pos {
                *x -= 1;
            }
        }
        for x in &mut self.lc_pos {
            if *x > pos {
                *x -= 1;
            }
        }
    }
}

/// Structure-of-arrays view of a virtual-deadline assignment for the
/// batched demand (QPA) kernel — the demand stack's [`SoaTasks`].
///
/// One position per task, in the kernel's task (insertion) order. Six
/// contiguous `u64` lanes (`vd` / `period` / `inv_period` / `c_lo` /
/// `c_hi` / `dist`) turn the `Σ dbf_LO(t)` / `Σ dbf_HI(t)` sweeps into
/// branch-free straight-line integer arithmetic, and a compacted HC view
/// (`hc_*`, each entry remembering its originating position) lets the
/// high-mode sweep touch only the lanes that contribute to `dbf_HI`.
///
/// Maintained by delta under the kernel's mutations:
/// [`DemandSoa::push`] / [`DemandSoa::pop`] append and remove the last
/// position (the LIFO admission-probe pattern) and
/// [`DemandSoa::set_vd`] rewrites one position's `vd` / `dist` lanes in
/// place (the tuner-move pattern), so a probe never rebuilds the view
/// and never allocates once the lanes have grown to the processor's
/// high-water mark (pinned by `tests/zero_alloc.rs`). The fast-kernel
/// certificate (see [`DemandSoa::fast`] and the module docs) is carried
/// reversibly alongside.
#[derive(Debug, Clone, Default)]
pub(crate) struct DemandSoa {
    /// Virtual deadline `V` per position.
    pub(crate) vd: Vec<u64>,
    /// `T` per position.
    pub(crate) period: Vec<u64>,
    /// [`inv64`] reciprocal of `T` per position, so the demand sweeps
    /// floor-divide by multiplying.
    pub(crate) inv_period: Vec<u64>,
    /// `C^L` per position.
    pub(crate) c_lo: Vec<u64>,
    /// `C^H` per position (`== C^L` for LC tasks).
    pub(crate) c_hi: Vec<u64>,
    /// Carry-over distance `d = D − V` per position.
    pub(crate) dist: Vec<u64>,
    /// Cached low-mode utilization `C^L/T` per position — the exact
    /// f64 the seed's busy-window numerator recomputes per probe
    /// (division is deterministic: caching the quotient is
    /// bit-identical to re-dividing).
    pub(crate) u_lo: Vec<f64>,
    /// Compacted HC view: `C^L` of the HC tasks in position order.
    pub(crate) hc_c_lo: Vec<u64>,
    /// Compacted HC view: `C^H`.
    pub(crate) hc_c_hi: Vec<u64>,
    /// Compacted HC view: `T`.
    pub(crate) hc_period: Vec<u64>,
    /// Compacted HC view: [`inv64`] reciprocal of `T`.
    pub(crate) hc_inv_period: Vec<u64>,
    /// Compacted HC view: `d = D − V`.
    pub(crate) hc_dist: Vec<u64>,
    /// Compacted HC view: `C^H` as f64 (cached conversion).
    pub(crate) hc_ch_f: Vec<f64>,
    /// Compacted HC view: high-mode utilization `C^H/T` (cached exact
    /// quotient, see [`DemandSoa::u_lo`]).
    pub(crate) hc_u_hi: Vec<f64>,
    /// Position of each compacted HC entry (strictly increasing).
    pub(crate) hc_pos: Vec<usize>,
    /// Rank of each position in the compact HC view (`usize::MAX` for
    /// LC positions) — the O(1) inverse of [`DemandSoa::hc_pos`], so
    /// the per-probe `set_vd` never searches.
    pub(crate) hc_rank: Vec<usize>,
    /// Positions with `vd == 0` — `h_LO(0) > 0` iff this is non-zero
    /// (`C^L ≥ 1`), so the descent pre-check skips its lane sweep.
    zero_vd: usize,
    /// Positions with `dist == 0` and `C^H > C^L` — exactly those whose
    /// `dbf_HI` term at `t = 0` is positive (`C^H − C^L`), so
    /// `h_HI(0) > 0` iff this is non-zero.
    hot_hi0: usize,
    /// Loaded positions failing the per-task half of the demand
    /// certificate (see [`DemandSoa::fast`]).
    slow_tasks: usize,
    /// Exact worst-case demand budget of the loaded positions (see
    /// [`DemandSoa::fast`]); `u128` so push and pop add and subtract the
    /// per-task charge without saturation losing information.
    fast_budget: u128,
}

/// Per-task half of the demand fast-kernel certificate over raw lane
/// values (see [`DemandSoa::fast`]): the bounds predicate and the exact
/// worst-case demand charge `max(C^L, C^H)·(⌊(2^32−1)/T⌋ + 1)` — the
/// largest job count any certified evaluation instant can produce.
fn demand_cert_values(cl: u64, ch: u64, t: u64, dl: u64, inv: u64) -> (bool, u128) {
    const LIM: u64 = 1 << 32;
    let ok = (1..LIM).contains(&cl) && (1..LIM).contains(&ch) && (2..LIM).contains(&t) && dl < LIM;
    if !ok {
        return (false, 0);
    }
    let worst = crate::amc::df_inv(LIM - 1, t, inv).saturating_add(1);
    (true, cl.max(ch) as u128 * worst as u128)
}

impl DemandSoa {
    /// Number of loaded positions.
    pub(crate) fn len(&self) -> usize {
        self.period.len()
    }

    /// Number of HC lanes in the compacted view.
    pub(crate) fn hc_len(&self) -> usize {
        self.hc_pos.len()
    }

    /// Whether the loaded assignment certifies the *fast* (unguarded)
    /// demand sweeps for every evaluation instant below `2^32`: every
    /// `C^L`, `C^H` in `[1, 2^32)`, every `T` in `[2, 2^32)`, every
    /// deadline `V + d` below `2^32`, and the worst-case demand budget
    /// `Σ_j max(C^L_j, C^H_j)·(⌊(2^32−1)/T_j⌋ + 1)` leaving headroom
    /// below `2^63`. See the module docs for why this licenses plain
    /// arithmetic and the no-fixup reciprocal floor division; the
    /// per-descent `bound < 2^32` half of the licence is checked by the
    /// kernel at descent entry.
    pub(crate) fn fast(&self) -> bool {
        self.slow_tasks == 0 && self.fast_budget + (1u128 << 32) < (1u128 << 63)
    }

    /// The position's contribution to the demand certificate. Pure in
    /// the lane values — and invariant under [`DemandSoa::set_vd`],
    /// which preserves `vd + dist` — so [`DemandSoa::pop`] subtracts
    /// exactly what [`DemandSoa::push`] added.
    fn cert(&self, pos: usize) -> (bool, u128) {
        demand_cert_values(
            self.c_lo[pos],
            self.c_hi[pos],
            self.period[pos],
            self.vd[pos].saturating_add(self.dist[pos]),
            self.inv_period[pos],
        )
    }

    /// Charges position `pos` to the demand certificate.
    fn cert_add(&mut self, pos: usize) {
        let (ok, b) = self.cert(pos);
        self.slow_tasks += usize::from(!ok);
        self.fast_budget += b;
    }

    /// Undoes [`DemandSoa::cert_add`] for position `pos` (call before
    /// the lanes shrink).
    fn cert_sub(&mut self, pos: usize) {
        let (ok, b) = self.cert(pos);
        self.slow_tasks -= usize::from(!ok);
        self.fast_budget -= b;
    }

    /// Empties the view, keeping the buffers for reuse.
    pub(crate) fn clear(&mut self) {
        self.vd.clear();
        self.period.clear();
        self.inv_period.clear();
        self.c_lo.clear();
        self.c_hi.clear();
        self.dist.clear();
        self.u_lo.clear();
        self.hc_c_lo.clear();
        self.hc_c_hi.clear();
        self.hc_period.clear();
        self.hc_inv_period.clear();
        self.hc_dist.clear();
        self.hc_ch_f.clear();
        self.hc_u_hi.clear();
        self.hc_pos.clear();
        self.hc_rank.clear();
        self.zero_vd = 0;
        self.hot_hi0 = 0;
        self.slow_tasks = 0;
        self.fast_budget = 0;
    }

    /// Rebuilds the view from an assignment in one fused pass: each
    /// task is read once and scattered into all six lanes in place
    /// (resize + overwrite), with the compacted HC view and the demand
    /// certificate accumulated on the fly.
    pub(crate) fn load(&mut self, tasks: &[crate::dbf::VdTask]) {
        let n = tasks.len();
        self.hc_c_lo.clear();
        self.hc_c_hi.clear();
        self.hc_period.clear();
        self.hc_inv_period.clear();
        self.hc_dist.clear();
        self.hc_ch_f.clear();
        self.hc_u_hi.clear();
        self.hc_pos.clear();
        self.vd.resize(n, 0);
        self.period.resize(n, 0);
        self.inv_period.resize(n, 0);
        self.c_lo.resize(n, 0);
        self.c_hi.resize(n, 0);
        self.dist.resize(n, 0);
        self.u_lo.resize(n, 0.0);
        self.hc_rank.resize(n, usize::MAX);
        let mut slow = 0usize;
        let mut budget = 0u128;
        let mut zero_vd = 0usize;
        let mut hot_hi0 = 0usize;
        for (pos, vt) in tasks.iter().enumerate() {
            let per = vt.task.period().as_ticks();
            let inv = inv64(per);
            self.vd[pos] = vt.vd.as_ticks();
            self.period[pos] = per;
            self.inv_period[pos] = inv;
            self.c_lo[pos] = vt.task.wcet_lo().as_ticks();
            self.c_hi[pos] = vt.task.wcet_hi().as_ticks();
            self.dist[pos] = (vt.task.deadline() - vt.vd).as_ticks();
            self.u_lo[pos] = vt.task.wcet_lo().as_f64() / vt.task.period().as_f64();
            self.hc_rank[pos] = usize::MAX;
            zero_vd += usize::from(self.vd[pos] == 0);
            hot_hi0 += usize::from(self.dist[pos] == 0 && self.c_hi[pos] > self.c_lo[pos]);
            if vt.task.criticality().is_high() {
                self.hc_c_lo.push(self.c_lo[pos]);
                self.hc_c_hi.push(self.c_hi[pos]);
                self.hc_period.push(per);
                self.hc_inv_period.push(inv);
                self.hc_dist.push(self.dist[pos]);
                self.hc_ch_f.push(vt.task.wcet_hi().as_f64());
                self.hc_u_hi
                    .push(vt.task.wcet_hi().as_f64() / vt.task.period().as_f64());
                self.hc_rank[pos] = self.hc_pos.len();
                self.hc_pos.push(pos);
            }
            let (ok, b) = demand_cert_values(
                self.c_lo[pos],
                self.c_hi[pos],
                per,
                vt.task.deadline().as_ticks(),
                inv,
            );
            slow += usize::from(!ok);
            budget = budget.saturating_add(b);
        }
        self.slow_tasks = slow;
        self.fast_budget = budget;
        self.zero_vd = zero_vd;
        self.hot_hi0 = hot_hi0;
    }

    /// Appends one position (the kernel's
    /// [`push_task`](crate::demand::DemandKernel::push_task) delta).
    pub(crate) fn push(&mut self, vt: &crate::dbf::VdTask) {
        let pos = self.len();
        let per = vt.task.period().as_ticks();
        let inv = inv64(per);
        self.vd.push(vt.vd.as_ticks());
        self.period.push(per);
        self.inv_period.push(inv);
        self.c_lo.push(vt.task.wcet_lo().as_ticks());
        self.c_hi.push(vt.task.wcet_hi().as_ticks());
        self.dist.push((vt.task.deadline() - vt.vd).as_ticks());
        self.u_lo
            .push(vt.task.wcet_lo().as_f64() / vt.task.period().as_f64());
        self.hc_rank.push(usize::MAX);
        self.zero_vd += usize::from(self.vd[pos] == 0);
        self.hot_hi0 += usize::from(self.dist[pos] == 0 && self.c_hi[pos] > self.c_lo[pos]);
        if vt.task.criticality().is_high() {
            self.hc_c_lo.push(self.c_lo[pos]);
            self.hc_c_hi.push(self.c_hi[pos]);
            self.hc_period.push(per);
            self.hc_inv_period.push(inv);
            self.hc_dist.push(self.dist[pos]);
            self.hc_ch_f.push(vt.task.wcet_hi().as_f64());
            self.hc_u_hi
                .push(vt.task.wcet_hi().as_f64() / vt.task.period().as_f64());
            self.hc_rank[pos] = self.hc_pos.len();
            self.hc_pos.push(pos);
        }
        self.cert_add(pos);
    }

    /// Removes the **last** position (the kernel's LIFO
    /// [`pop_task`](crate::demand::DemandKernel::pop_task) delta).
    ///
    /// # Panics
    ///
    /// Panics if the view is empty.
    pub(crate) fn pop(&mut self) {
        let pos = self.len() - 1;
        self.cert_sub(pos);
        self.zero_vd -= usize::from(self.vd[pos] == 0);
        self.hot_hi0 -= usize::from(self.dist[pos] == 0 && self.c_hi[pos] > self.c_lo[pos]);
        self.vd.pop();
        self.period.pop();
        self.inv_period.pop();
        self.c_lo.pop();
        self.c_hi.pop();
        self.dist.pop();
        self.u_lo.pop();
        self.hc_rank.pop();
        if self.hc_pos.last() == Some(&pos) {
            self.hc_c_lo.pop();
            self.hc_c_hi.pop();
            self.hc_period.pop();
            self.hc_inv_period.pop();
            self.hc_dist.pop();
            self.hc_ch_f.pop();
            self.hc_u_hi.pop();
            self.hc_pos.pop();
        }
    }

    /// Retargets one position's virtual deadline (the kernel's
    /// [`replace_vd`](crate::demand::DemandKernel::replace_vd) delta):
    /// two lane writes plus the mirrored compact-view write (O(1)
    /// through [`DemandSoa::hc_rank`]) when the position is HC.
    /// `vd + dist` must equal the position's deadline (the certificate
    /// is invariant, so no re-accounting happens here).
    pub(crate) fn set_vd(&mut self, pos: usize, vd: u64, dist: u64) {
        self.zero_vd -= usize::from(self.vd[pos] == 0);
        self.hot_hi0 -= usize::from(self.dist[pos] == 0 && self.c_hi[pos] > self.c_lo[pos]);
        self.vd[pos] = vd;
        self.dist[pos] = dist;
        self.zero_vd += usize::from(vd == 0);
        self.hot_hi0 += usize::from(dist == 0 && self.c_hi[pos] > self.c_lo[pos]);
        let rank = self.hc_rank[pos];
        if rank != usize::MAX {
            self.hc_dist[rank] = dist;
        }
    }

    /// Whether `h_LO(0) > 0` on the loaded assignment: some position
    /// has `vd == 0` (its `C^L ≥ 1` lands at the origin). Exact — the
    /// descent pre-check consults this instead of sweeping the lanes.
    pub(crate) fn h0_lo_positive(&self) -> bool {
        self.zero_vd > 0
    }

    /// Whether `h_HI(0) > 0` on the loaded assignment: some position
    /// has `dist == 0` with `C^H > C^L` (its origin term is
    /// `C^H − C^L > 0`; every other term is zero at `t = 0`). Exact.
    pub(crate) fn h0_hi_positive(&self) -> bool {
        self.hot_hi0 > 0
    }
}

/// Scratch buffers shared by the analysis hot paths.
///
/// Obtain one through [`AnalysisWorkspace::with`] (thread-local pool) or
/// behind a [`WorkspaceRef`]; the buffers grow to the high-water mark of
/// the sets analysed through them and are then reused allocation-free.
#[derive(Debug, Default)]
pub struct AnalysisWorkspace {
    /// Priority-order indices (deadline-monotonic order, Audsley's
    /// unassigned set).
    pub(crate) idx: Vec<usize>,
    /// Secondary index buffer (Audsley's lowest-priority-first order).
    pub(crate) idx2: Vec<usize>,
    /// Union buffer for `committed ∪ {candidate}` workspaces.
    pub(crate) tasks: Vec<Task>,
    /// Per-interferer step streams for the AMC-max candidate walk.
    pub(crate) streams: Vec<CandStream>,
    /// Per-hp-HC-task interference slots for the AMC-max candidate walk.
    pub(crate) hc: Vec<HcSlot>,
    /// The one-shot AMC analysis (order / responses) — the workspace path
    /// runs exactly the incremental layer's `analyze_into` over it.
    pub(crate) amc: AmcScratch,
    /// SoA lane view for the batched response-time kernels (the one-shot
    /// and Audsley paths; the incremental `AmcState`s keep their own
    /// per-processor view mirroring the committed cache).
    pub(crate) soa: SoaTasks,
    /// The incremental demand kernel: the virtual-deadline assignment
    /// under analysis plus its memoised QPA state (EY / ECDF, classic
    /// EDF, and the public one-shot demand checks).
    pub(crate) demand: DemandKernel,
    /// Candidate tightening moves of one greedy round (EY / ECDF).
    pub(crate) moves: Vec<Move>,
}

impl AnalysisWorkspace {
    /// A workspace with empty buffers (they grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with a workspace borrowed from the thread-local pool.
    ///
    /// Re-entrant: a nested call simply checks out a second workspace.
    pub fn with<R>(f: impl FnOnce(&mut AnalysisWorkspace) -> R) -> R {
        let guard = WorkspaceRef::pooled();
        let r = f(&mut guard.borrow_mut());
        r
    }
}

/// A shared, cheaply cloneable handle to an [`AnalysisWorkspace`].
///
/// All admission states of one partitioning run hold clones of the same
/// handle and borrow it only for the duration of a single admission query,
/// so the borrows never overlap.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceRef {
    inner: Rc<RefCell<AnalysisWorkspace>>,
}

impl WorkspaceRef {
    /// A fresh workspace handle with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks a handle out of the thread-local pool (creating one if the
    /// pool is empty). The guard returns it when dropped, so buffers warm
    /// up once per thread and stay warm across partitioning runs.
    pub fn pooled() -> PooledWorkspace {
        let ws = POOL
            .with(|pool| pool.borrow_mut().pop())
            .unwrap_or_default();
        PooledWorkspace { ws: Some(ws) }
    }

    /// Mutably borrows the underlying workspace.
    ///
    /// # Panics
    ///
    /// Panics if the workspace is already borrowed (analysis code keeps
    /// borrows local to one admission query, so this cannot happen through
    /// the public API).
    pub fn borrow_mut(&self) -> RefMut<'_, AnalysisWorkspace> {
        self.inner.borrow_mut()
    }
}

// mclint: cold — const thread-local initialiser; the empty Vec never allocates
thread_local! {
    /// Idle workspaces of this thread, reused across partitioning runs.
    static POOL: RefCell<Vec<WorkspaceRef>> = const { RefCell::new(Vec::new()) };
}

/// Ceiling on pooled workspaces per thread; checkouts beyond this are
/// simply dropped on return instead of growing the pool without bound.
const MAX_POOLED: usize = 32;

/// A [`WorkspaceRef`] checked out of the thread-local pool; returns to the
/// pool on drop.
#[derive(Debug)]
pub struct PooledWorkspace {
    ws: Option<WorkspaceRef>,
}

impl Deref for PooledWorkspace {
    type Target = WorkspaceRef;
    fn deref(&self) -> &WorkspaceRef {
        self.ws.as_ref().expect("present until drop")
    }
}

impl Drop for PooledWorkspace {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            POOL.with(|pool| {
                let mut pool = pool.borrow_mut();
                if pool.len() < MAX_POOLED {
                    pool.push(ws);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbf::VdTask;
    use mcsched_model::Time;

    fn soa_fixture() -> (Vec<Task>, SoaTasks) {
        let tasks = vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::lo(1, 20, 5).unwrap(),
            Task::hi(2, 25, 3, 6).unwrap(),
            Task::lo(3, 12, 1).unwrap(),
        ];
        let mut soa = SoaTasks::default();
        soa.load_seq(&tasks);
        (tasks, soa)
    }

    /// Structural invariants a correctly maintained view always satisfies.
    fn assert_soa_matches(soa: &SoaTasks, tasks: &[Task]) {
        assert_eq!(soa.len(), tasks.len());
        for (pos, t) in tasks.iter().enumerate() {
            assert_eq!(soa.wcet_lo[pos], t.wcet_lo().as_ticks());
            assert_eq!(soa.wcet_hi[pos], t.wcet_hi().as_ticks());
            assert_eq!(soa.period[pos], t.period().as_ticks());
            assert_eq!(soa.inv_period[pos], inv64(t.period().as_ticks()));
            assert_eq!(soa.deadline[pos], t.deadline().as_ticks());
            assert_eq!(soa.is_hc(pos), t.criticality() == Criticality::High);
        }
        // Compacted views cover exactly the HC / LC positions, in order.
        let hc: Vec<usize> = (0..tasks.len()).filter(|&p| soa.hc[p]).collect();
        let lc: Vec<usize> = (0..tasks.len()).filter(|&p| !soa.hc[p]).collect();
        assert_eq!(soa.hc_pos, hc);
        assert_eq!(soa.lc_pos, lc);
        for (rank, &p) in soa.hc_pos.iter().enumerate() {
            assert_eq!(soa.hc_wcet_hi[rank], tasks[p].wcet_hi().as_ticks());
            assert_eq!(soa.hc_period[rank], tasks[p].period().as_ticks());
            assert_eq!(soa.hc_inv_period[rank], inv64(tasks[p].period().as_ticks()));
        }
        for (rank, &p) in soa.lc_pos.iter().enumerate() {
            assert_eq!(soa.lc_wcet_lo[rank], tasks[p].wcet_lo().as_ticks());
            assert_eq!(soa.lc_period[rank], tasks[p].period().as_ticks());
            assert_eq!(soa.lc_inv_period[rank], inv64(tasks[p].period().as_ticks()));
        }
    }

    #[test]
    fn soa_load_builds_both_views() {
        let (tasks, soa) = soa_fixture();
        assert_soa_matches(&soa, &tasks);
        assert_eq!(soa.hc_len(), 2);
        assert_eq!(soa.hc_rank_below(0), 0);
        assert_eq!(soa.hc_rank_below(2), 1);
        assert_eq!(soa.hc_rank_below(4), 2);
    }

    #[test]
    fn soa_insert_remove_round_trips() {
        let (mut tasks, mut soa) = soa_fixture();
        let cand = Task::hi(9, 15, 2, 5).unwrap();
        // Insert at every position, check, then remove and check we are
        // back to the original view (delta maintenance is exact).
        for pos in 0..=tasks.len() {
            soa.insert(pos, &cand);
            tasks.insert(pos, cand);
            assert_soa_matches(&soa, &tasks);
            soa.remove(pos);
            tasks.remove(pos);
            assert_soa_matches(&soa, &tasks);
        }
        // And an LC candidate through the same paces.
        let cand = Task::lo(9, 15, 2).unwrap();
        for pos in 0..=tasks.len() {
            soa.insert(pos, &cand);
            tasks.insert(pos, cand);
            assert_soa_matches(&soa, &tasks);
            soa.remove(pos);
            tasks.remove(pos);
            assert_soa_matches(&soa, &tasks);
        }
    }

    #[test]
    fn soa_delta_equals_rebuild() {
        let (tasks, mut soa) = soa_fixture();
        let cand = Task::lo_constrained(7, 30, 2, 18).unwrap();
        soa.insert(2, &cand);
        let mut rebuilt: Vec<Task> = tasks.clone();
        rebuilt.insert(2, cand);
        let mut fresh = SoaTasks::default();
        fresh.load_seq(&rebuilt);
        assert_eq!(soa.wcet_lo, fresh.wcet_lo);
        assert_eq!(soa.wcet_hi, fresh.wcet_hi);
        assert_eq!(soa.period, fresh.period);
        assert_eq!(soa.deadline, fresh.deadline);
        assert_eq!(soa.hc, fresh.hc);
        assert_eq!(soa.hc_pos, fresh.hc_pos);
        assert_eq!(soa.lc_pos, fresh.lc_pos);
        assert_eq!(soa.hc_wcet_hi, fresh.hc_wcet_hi);
        assert_eq!(soa.lc_wcet_lo, fresh.lc_wcet_lo);
    }

    fn demand_fixture() -> (Vec<VdTask>, DemandSoa) {
        let tasks = vec![
            VdTask {
                task: Task::hi(0, 10, 2, 4).unwrap(),
                vd: Time::new(6),
            },
            VdTask::untightened(Task::lo(1, 20, 5).unwrap()),
            VdTask {
                task: Task::hi_constrained(2, 25, 3, 6, 18).unwrap(),
                vd: Time::new(9),
            },
            VdTask::untightened(Task::lo_constrained(3, 12, 1, 9).unwrap()),
        ];
        let mut soa = DemandSoa::default();
        soa.load(&tasks);
        (tasks, soa)
    }

    /// Structural invariants a correctly maintained demand view always
    /// satisfies (the lane mirror of [`assert_soa_matches`]).
    fn assert_demand_soa_matches(soa: &DemandSoa, tasks: &[VdTask]) {
        assert_eq!(soa.len(), tasks.len());
        for (pos, vt) in tasks.iter().enumerate() {
            assert_eq!(soa.vd[pos], vt.vd.as_ticks());
            assert_eq!(soa.period[pos], vt.task.period().as_ticks());
            assert_eq!(soa.inv_period[pos], inv64(vt.task.period().as_ticks()));
            assert_eq!(soa.c_lo[pos], vt.task.wcet_lo().as_ticks());
            assert_eq!(soa.c_hi[pos], vt.task.wcet_hi().as_ticks());
            assert_eq!(soa.dist[pos], (vt.task.deadline() - vt.vd).as_ticks());
        }
        let hc: Vec<usize> = (0..tasks.len())
            .filter(|&p| tasks[p].task.criticality().is_high())
            .collect();
        assert_eq!(soa.hc_pos, hc);
        for (rank, &p) in soa.hc_pos.iter().enumerate() {
            assert_eq!(soa.hc_c_lo[rank], soa.c_lo[p]);
            assert_eq!(soa.hc_c_hi[rank], soa.c_hi[p]);
            assert_eq!(soa.hc_period[rank], soa.period[p]);
            assert_eq!(soa.hc_inv_period[rank], soa.inv_period[p]);
            assert_eq!(soa.hc_dist[rank], soa.dist[p]);
        }
        // The reversible certificate equals a fresh accumulation.
        let mut fresh = DemandSoa::default();
        fresh.load(tasks);
        assert_eq!(soa.slow_tasks, fresh.slow_tasks);
        assert_eq!(soa.fast_budget, fresh.fast_budget);
    }

    #[test]
    fn demand_soa_push_matches_bulk_load() {
        let (tasks, soa) = demand_fixture();
        let mut pushed = DemandSoa::default();
        for vt in &tasks {
            pushed.push(vt);
        }
        assert_demand_soa_matches(&pushed, &tasks);
        assert_eq!(pushed.vd, soa.vd);
        assert_eq!(pushed.hc_pos, soa.hc_pos);
        assert_eq!(pushed.fast_budget, soa.fast_budget);
        assert!(soa.fast(), "small certified fixture takes the fast route");
    }

    #[test]
    fn demand_soa_push_pop_round_trips() {
        let (mut tasks, mut soa) = demand_fixture();
        for cand in [
            VdTask {
                task: Task::hi(9, 15, 2, 5).unwrap(),
                vd: Time::new(8),
            },
            VdTask::untightened(Task::lo(9, 15, 2).unwrap()),
        ] {
            soa.push(&cand);
            tasks.push(cand);
            assert_demand_soa_matches(&soa, &tasks);
            soa.pop();
            tasks.pop();
            assert_demand_soa_matches(&soa, &tasks);
        }
    }

    #[test]
    fn demand_soa_set_vd_equals_rebuild() {
        let (mut tasks, mut soa) = demand_fixture();
        // Retarget every position (HC and LC) through the lane delta.
        for (pos, v) in [(0usize, 3u64), (1, 11), (2, 14), (3, 7)] {
            let vd = Time::new(v);
            let dist = tasks[pos].task.deadline() - vd;
            tasks[pos].vd = vd;
            soa.set_vd(pos, v, dist.as_ticks());
            assert_demand_soa_matches(&soa, &tasks);
        }
    }

    #[test]
    fn demand_soa_certificate_flips_reversibly() {
        let (_, mut soa) = demand_fixture();
        assert!(soa.fast());
        let before = soa.fast_budget;
        // A parameter outside 2^32 breaks the per-task predicate…
        let big = VdTask::untightened(Task::lo(7, 1 << 40, 1 << 33).unwrap());
        soa.push(&big);
        assert!(!soa.fast());
        // …and popping it restores the certificate exactly.
        soa.pop();
        assert!(soa.fast());
        assert_eq!(soa.fast_budget, before);
        // The budget charge is exact and reversible for certified tasks
        // too (model validation caps `C ≤ T`, so each charge is below
        // 2^32 and the 2^63 headroom cannot trip on valid tasks — the
        // check is defence in depth, mirroring `SoaTasks::fast`).
        let heavy = VdTask::untightened(Task::lo(8, (1 << 32) - 1, (1 << 32) - 1).unwrap());
        soa.push(&heavy);
        assert!(soa.fast());
        soa.pop();
        assert_eq!(soa.fast_budget, before);
    }

    #[test]
    fn with_reuses_thread_local_buffers() {
        // Grow a buffer inside one `with` scope…
        AnalysisWorkspace::with(|ws| {
            ws.idx.clear();
            ws.idx.extend(0..100);
        });
        // …and observe the capacity surviving into the next checkout.
        AnalysisWorkspace::with(|ws| {
            assert!(ws.idx.capacity() >= 100);
        });
    }

    #[test]
    fn nested_with_is_reentrant() {
        AnalysisWorkspace::with(|outer| {
            outer.idx.push(7);
            AnalysisWorkspace::with(|inner| {
                // A distinct workspace: pushing here cannot alias `outer`.
                inner.idx.push(9);
            });
            assert_eq!(outer.idx.pop(), Some(7));
            outer.idx.clear();
        });
    }

    #[test]
    fn workspace_ref_clones_share_buffers() {
        let a = WorkspaceRef::new();
        let b = a.clone();
        a.borrow_mut().idx.push(3);
        assert_eq!(b.borrow_mut().idx.pop(), Some(3));
    }

    #[test]
    fn pool_is_bounded() {
        let guards: Vec<_> = (0..MAX_POOLED + 8)
            .map(|_| WorkspaceRef::pooled())
            .collect();
        drop(guards);
        let pooled = POOL.with(|pool| pool.borrow().len());
        assert!(pooled <= MAX_POOLED);
    }
}
