//! EDF-VD: Earliest Deadline First with Virtual Deadlines.
//!
//! The utilization-based uniprocessor test of Baruah, Bonifaci, D'Angelo,
//! Li, Marchetti-Spaccamela, van der Ster & Stougie (ECRTS 2012,
//! Theorems 1 and 2), with optimal speed-up bound 4/3 for implicit-deadline
//! dual-criticality systems. Combined with any partitioning strategy that
//! tries every processor before declaring failure, the resulting partitioned
//! algorithm has speed-up 8/3 (Baruah et al., *Real-Time Systems* 50(1),
//! Theorem 9) — both UDP strategies have that property.
//!
//! ## Test statement
//!
//! With per-processor utilization sums `U_LL = Σ_LC u^L`, `U_HL = Σ_HC u^L`,
//! `U_HH = Σ_HC u^H`:
//!
//! 1. if `U_LL + U_HH ≤ 1` — schedulable by plain EDF (no virtual
//!    deadlines needed);
//! 2. otherwise pick the scaling factor `x = U_HL / (1 − U_LL)`
//!    (Theorem 1 makes low mode schedulable for any `x` at least this
//!    large), and accept iff `x·U_LL + U_HH ≤ 1` (Theorem 2: high mode).
//!
//! The acceptance region can equivalently be written in the "gap" form the
//! DATE 2017 paper quotes next to Fig. 1:
//! `U_LL ≤ (1 − U_HH) / (1 − (U_HH − U_HL))` — the right-hand side grows as
//! the utilization difference `U_HH − U_HL` shrinks, which is exactly the
//! pessimism the UDP partitioning strategies attack. Unit tests verify the
//! two forms agree on a dense grid.
//!
//! Deadlines: the published test covers implicit deadlines. For
//! constrained-deadline sets this implementation conservatively substitutes
//! densities (`C/D`) for utilizations, which preserves sufficiency of both
//! theorems' arguments (demand over any interval is bounded by density ×
//! length); the DATE 2017 evaluation only exercises EDF-VD on
//! implicit-deadline systems, matching the paper.

use crate::incremental::{AdmissionState, AdmissionStats, Committed, IncrementalTest};
use crate::SchedulabilityTest;
use mcsched_model::{SystemUtilization, Task, TaskId, TaskSet, Time};
use serde::{Deserialize, Serialize};

/// The EDF-VD utilization-based schedulability test.
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// use mcsched_analysis::{EdfVd, SchedulabilityTest};
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// // U_LL = 0.3, U_HL = 0.3, U_HH = 0.6: x = 3/7, x·U_LL + U_HH ≈ 0.73 ≤ 1.
/// let ts = TaskSet::try_from_tasks(vec![
///     Task::hi(0, 10, 3, 6)?,
///     Task::lo(1, 10, 3)?,
/// ])?;
/// let test = EdfVd::new();
/// assert!(test.is_schedulable(&ts));
/// // The scaling factor used for the virtual deadlines:
/// let x = test.scaling_factor(&ts).expect("schedulable");
/// assert!(x > 0.0 && x <= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EdfVd {
    _priv: (),
}

/// The three utilization (or density, for constrained deadlines) sums the
/// test is computed from.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct Sums {
    pub(crate) u_ll: f64,
    pub(crate) u_hl: f64,
    pub(crate) u_hh: f64,
}

impl Sums {
    /// Adds one task's density terms. Shared by the one-shot path and the
    /// incremental state so running sums stay bit-identical to a
    /// from-scratch recomputation in insertion order.
    pub(crate) fn accumulate(&mut self, t: &Task) {
        // Density C/min(D,T) equals utilization for implicit deadlines.
        let denom = t.deadline().min(t.period()).as_f64();
        if t.criticality().is_high() {
            self.u_hl += t.wcet_lo().as_f64() / denom;
            self.u_hh += t.wcet_hi().as_f64() / denom;
        } else {
            self.u_ll += t.wcet_lo().as_f64() / denom;
        }
    }
}

fn sums(ts: &TaskSet) -> Sums {
    let mut s = Sums::default();
    for t in ts {
        s.accumulate(t);
    }
    s
}

/// The closed-form EDF-VD acceptance evaluated on precomputed sums
/// (Theorems 1 and 2; see [`EdfVd::scaling_factor`]).
pub(crate) fn scaling_factor_from(s: &Sums) -> Option<f64> {
    // Low mode must be feasible for some x ≤ 1; at best (x = 1) its
    // demand is U_LL + U_HL.
    if s.u_ll + s.u_hl > 1.0 {
        return None;
    }
    // Theorem-free fast path: plain EDF handles both modes.
    if s.u_ll + s.u_hh <= 1.0 {
        return Some(1.0);
    }
    if s.u_ll >= 1.0 {
        return None;
    }
    // Theorem 1: x ≥ U_HL / (1 − U_LL) makes the low mode schedulable;
    // Theorem 2 then requires x·U_LL + U_HH ≤ 1, which is monotone in x,
    // so the smallest admissible x is the one to check. When the check
    // passes, x ≤ 1 follows (x·U_LL + U_HH ≥ x because U_HH ≥ U_HL and
    // algebra), but we guard explicitly.
    let x = s.u_hl / (1.0 - s.u_ll);
    if x > 0.0 && x <= 1.0 && x * s.u_ll + s.u_hh <= 1.0 {
        Some(x)
    } else {
        None
    }
}

impl EdfVd {
    /// Creates the test.
    pub fn new() -> Self {
        EdfVd { _priv: () }
    }

    /// The virtual-deadline scaling factor `x ∈ (0, 1]` EDF-VD would use for
    /// this set, or `None` if the set fails the test.
    ///
    /// When plain EDF suffices (`U_LL + U_HH ≤ 1`) the factor is `1.0`
    /// (virtual deadlines coincide with real deadlines).
    pub fn scaling_factor(&self, ts: &TaskSet) -> Option<f64> {
        scaling_factor_from(&sums(ts))
    }

    /// The virtual deadline EDF-VD assigns to each task under the scaling
    /// factor `x`: `⌊x · Di⌋` for HC tasks (clamped below by `C^L_i` so the
    /// low-mode budget fits), `Di` for LC tasks.
    ///
    /// Used by the runtime simulator; returns one entry per task in set
    /// order.
    pub fn virtual_deadlines(&self, ts: &TaskSet, x: f64) -> Vec<Time> {
        ts.iter()
            .map(|t: &Task| {
                if t.criticality().is_high() {
                    let scaled = (x * t.deadline().as_f64()).floor() as u64;
                    Time::new(scaled).max(t.wcet_lo())
                } else {
                    t.deadline()
                }
            })
            .collect()
    }

    /// The paper's equivalent "gap" formulation of the acceptance region:
    /// `U_LL ≤ (1 − U_HH) / (1 − (U_HH − U_HL))`, plus the low-mode
    /// feasibility requirement `U_LL + U_HL ≤ 1` and `U_HH ≤ 1`.
    ///
    /// Exposed (and unit-tested) to document that the test's pessimism is
    /// controlled by the utilization difference `U_HH − U_HL`.
    pub fn gap_form_accepts(&self, ts: &TaskSet) -> bool {
        let s = sums(ts);
        if s.u_hh > 1.0 || s.u_ll + s.u_hl > 1.0 {
            return false;
        }
        if s.u_ll + s.u_hh <= 1.0 {
            return true;
        }
        let denom = 1.0 - (s.u_hh - s.u_hl);
        // denom > 0 always here: u_hh ≤ 1 and u_hl ≥ 0 give u_hh − u_hl ≤ 1,
        // and equality forces u_hh = 1, u_hl = 0, impossible for non-empty HC
        // tasks (integer C^L ≥ 1 ⇒ u_hl > 0).
        denom > 0.0 && s.u_ll <= (1.0 - s.u_hh) / denom
    }
}

impl SchedulabilityTest for EdfVd {
    fn name(&self) -> &'static str {
        "EDF-VD"
    }

    fn is_schedulable(&self, ts: &TaskSet) -> bool {
        self.scaling_factor(ts).is_some()
    }

    fn admission_state(&self) -> Box<dyn AdmissionState + '_> {
        Box::new(self.new_state())
    }
}

impl IncrementalTest for EdfVd {
    type State = EdfVdState;

    fn new_state(&self) -> EdfVdState {
        EdfVdState {
            committed: Committed::default(),
            sums: Sums::default(),
        }
    }
}

/// Incremental EDF-VD admission: the running `(U_LL, U_HL, U_HH)` density
/// sums of the committed tasks, so each admission query evaluates the
/// closed-form condition in **O(1)** instead of re-summing the set.
///
/// Because the running sums accumulate in insertion order — the same order
/// a one-shot analysis of the union would use — the verdicts are
/// bit-identical to clone-and-retest.
#[derive(Debug, Clone, Default)]
pub struct EdfVdState {
    committed: Committed,
    sums: Sums,
}

impl AdmissionState for EdfVdState {
    fn try_admit(&mut self, task: &Task) -> bool {
        let mut s = self.sums;
        s.accumulate(task);
        let ok = scaling_factor_from(&s).is_some();
        self.committed.record(true, ok);
        ok
    }

    fn commit(&mut self, task: Task) {
        self.sums.accumulate(&task);
        self.committed.push(task);
    }

    fn remove(&mut self, id: TaskId) -> bool {
        if self.committed.remove(id).is_none() {
            return false;
        }
        self.sums = sums(&self.committed.tasks);
        true
    }

    fn summary(&self) -> SystemUtilization {
        self.committed.summary
    }

    fn tasks(&self) -> &TaskSet {
        &self.committed.tasks
    }

    fn take_tasks(&mut self) -> TaskSet {
        self.sums = Sums::default();
        self.committed.take()
    }

    fn stats(&self) -> AdmissionStats {
        self.committed.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsched_model::Task;

    fn hc(id: u32, t: u64, cl: u64, ch: u64) -> Task {
        Task::hi(id, t, cl, ch).unwrap()
    }
    fn lc(id: u32, t: u64, c: u64) -> Task {
        Task::lo(id, t, c).unwrap()
    }

    #[test]
    fn empty_set_schedulable() {
        assert!(EdfVd::new().is_schedulable(&TaskSet::new()));
    }

    #[test]
    fn plain_edf_case() {
        // U_LL + U_HH = 0.2 + 0.4 ≤ 1 → x = 1.
        let ts = TaskSet::try_from_tasks(vec![hc(0, 10, 2, 4), lc(1, 10, 2)]).unwrap();
        assert_eq!(EdfVd::new().scaling_factor(&ts), Some(1.0));
    }

    #[test]
    fn scaled_case_accepts() {
        // U_LL = 0.4, U_HL = 0.2, U_HH = 0.65:
        // U_LL + U_HH = 1.05 > 1 → x = 0.2/0.6 = 1/3,
        // x·U_LL + U_HH = 0.1333 + 0.65 ≤ 1. Accept.
        let ts = TaskSet::try_from_tasks(vec![hc(0, 100, 20, 65), lc(1, 100, 40)]).unwrap();
        let x = EdfVd::new().scaling_factor(&ts).unwrap();
        assert!((x - 1.0 / 3.0).abs() < 1e-9, "x = {x}");
    }

    #[test]
    fn overload_rejects() {
        // U_HH alone above 1.
        let ts = TaskSet::try_from_tasks(vec![hc(0, 10, 5, 9), hc(1, 10, 1, 3)]).unwrap();
        assert!(!EdfVd::new().is_schedulable(&ts));
    }

    #[test]
    fn lo_mode_overload_rejects() {
        // U_LL + U_HL > 1 → no x ≤ 1 can make the low mode feasible.
        let ts = TaskSet::try_from_tasks(vec![hc(0, 10, 6, 7), lc(1, 10, 5)]).unwrap();
        assert!(!EdfVd::new().is_schedulable(&ts));
    }

    #[test]
    fn high_mode_pessimism_rejects() {
        // U_LL = 0.6, U_HL = 0.1, U_HH = 0.9:
        // x = 0.1/0.4 = 0.25, x·U_LL + U_HH = 0.15 + 0.9 = 1.05 > 1. Reject.
        let ts = TaskSet::try_from_tasks(vec![hc(0, 100, 10, 90), lc(1, 100, 60)]).unwrap();
        assert!(!EdfVd::new().is_schedulable(&ts));
    }

    #[test]
    fn acceptance_monotone_in_each_utilization() {
        // Per processor the gap form reads
        // U_LL ≤ (1 − U_HH)/(1 − (U_HH − U_HL)): for fixed U_HH, raising
        // U_HL tightens the budget for LC work; for fixed U_HL, raising
        // U_HH tightens it even faster (both numerator and denominator
        // move against it). The *partitioning-level* benefit of balancing
        // U_HH − U_HL across processors — the paper's core observation —
        // is exercised in the `mcsched-core` Fig. 1 / Fig. 2 tests.
        let t = EdfVd::new();
        // Fixed U_HH = 0.9: U_HL = 0.8 admits U_LL up to 1/9 ≈ 0.111.
        let small_hl = TaskSet::try_from_tasks(vec![hc(0, 100, 10, 90), lc(1, 100, 11)]).unwrap();
        let large_hl = TaskSet::try_from_tasks(vec![hc(0, 100, 80, 90), lc(1, 100, 11)]).unwrap();
        assert!(t.is_schedulable(&small_hl));
        assert!(t.is_schedulable(&large_hl));
        // Push U_LL past the U_HL = 0.8 budget: only the light-U_HL set
        // survives ((1−0.9)/(1−0.8) = 0.5 vs (1−0.9)/(1−0.1) ≈ 0.111).
        let small_hl2 = TaskSet::try_from_tasks(vec![hc(0, 100, 10, 90), lc(1, 100, 20)]).unwrap();
        let large_hl2 = TaskSet::try_from_tasks(vec![hc(0, 100, 80, 90), lc(1, 100, 20)]).unwrap();
        assert!(t.is_schedulable(&small_hl2));
        assert!(!t.is_schedulable(&large_hl2));
    }

    #[test]
    fn gap_form_matches_x_form_on_grid() {
        // Sweep a dense parameter grid and require the two published
        // formulations to agree everywhere they are both defined.
        let test = EdfVd::new();
        for chl in 1..=99u64 {
            for chh in chl..=99 {
                for cll in 1..=99 {
                    let (u_hl, u_hh, u_ll) =
                        (chl as f64 / 100.0, chh as f64 / 100.0, cll as f64 / 100.0);
                    // Skip knife-edge points where the two algebraically
                    // equivalent forms can disagree through floating-point
                    // rounding alone.
                    let margin = u_ll * (1.0 - (u_hh - u_hl)) - (1.0 - u_hh);
                    if margin.abs() < 1e-9 {
                        continue;
                    }
                    let ts = TaskSet::try_from_tasks(vec![hc(0, 100, chl, chh), lc(1, 100, cll)])
                        .unwrap();
                    assert_eq!(
                        test.is_schedulable(&ts),
                        test.gap_form_accepts(&ts),
                        "mismatch at C^L_H={chl} C^H_H={chh} C_L={cll}"
                    );
                }
            }
        }
    }

    #[test]
    fn virtual_deadlines_respect_floor_and_budget() {
        let ts = TaskSet::try_from_tasks(vec![hc(0, 10, 2, 4), lc(1, 20, 2)]).unwrap();
        let t = EdfVd::new();
        let vds = t.virtual_deadlines(&ts, 0.5);
        assert_eq!(vds[0], Time::new(5)); // ⌊0.5·10⌋
        assert_eq!(vds[1], Time::new(20)); // LC keeps its deadline
        let vds = t.virtual_deadlines(&ts, 0.05);
        assert_eq!(vds[0], Time::new(2)); // clamped to C^L
    }

    #[test]
    fn hc_only_set() {
        let ts = TaskSet::try_from_tasks(vec![hc(0, 10, 2, 9)]).unwrap();
        assert!(EdfVd::new().is_schedulable(&ts));
        let ts = TaskSet::try_from_tasks(vec![hc(0, 10, 2, 9), hc(1, 10, 1, 2)]).unwrap();
        // U_HH = 1.1 > 1.
        assert!(!EdfVd::new().is_schedulable(&ts));
    }

    #[test]
    fn lc_only_set_is_plain_edf() {
        let ts = TaskSet::try_from_tasks(vec![lc(0, 10, 5), lc(1, 10, 5)]).unwrap();
        assert!(EdfVd::new().is_schedulable(&ts));
        let ts = TaskSet::try_from_tasks(vec![lc(0, 10, 5), lc(1, 10, 6)]).unwrap();
        assert!(!EdfVd::new().is_schedulable(&ts));
    }

    #[test]
    fn paper_figure1_failing_allocation() {
        // Fig. 1 of the paper: under CA-Wu-F, processor φ1 holds τ1 (HC) and
        // the LC task τ4 cannot be placed on either processor. We reproduce
        // the failing single-processor checks the caption's formula implies.
        // τ1: u^L = 0.3, u^H = 0.6; τ4: u^L = 0.5.
        let phi1 = TaskSet::try_from_tasks(vec![hc(0, 10, 3, 6), lc(3, 10, 5)]).unwrap();
        // Gap bound: (1−0.6)/(1−0.3) ≈ 0.571 < 0.5? 0.5 ≤ 0.571 — passes the
        // gap inequality, but low-mode x-feasibility also matters:
        // x = 0.3/(1−0.5) = 0.6, x·U_LL + U_HH = 0.3+0.6 = 0.9 ≤ 1 → accept.
        // (The concrete numbers in Fig. 1 are not printed in the paper text;
        // this test documents the mechanics of the caption's inequality.)
        assert_eq!(
            EdfVd::new().is_schedulable(&phi1),
            EdfVd::new().gap_form_accepts(&phi1)
        );
    }

    #[test]
    fn name() {
        assert_eq!(EdfVd::new().name(), "EDF-VD");
        assert_eq!(EdfVd::default(), EdfVd::new());
    }

    #[test]
    fn incremental_state_matches_one_shot_exactly() {
        let test = EdfVd::new();
        let mut state = test.new_state();
        let tasks = [
            hc(0, 10, 2, 5),
            lc(1, 10, 4),
            hc(2, 20, 3, 9),
            lc(3, 25, 6),
            hc(4, 100, 20, 65),
            lc(5, 100, 40),
        ];
        for t in tasks {
            let mut union = state.tasks().clone();
            union.push_unchecked(t);
            let expected = test.is_schedulable(&union);
            assert_eq!(state.try_admit(&t), expected, "admitting {t}");
            if expected {
                state.commit(t);
            }
        }
        assert!(state.stats().incremental == state.stats().attempts);
        // Removal resyncs the density sums with a recomputation.
        let first = *state.tasks().iter().next().unwrap();
        assert!(state.remove(first.id()));
        let expected = {
            let mut union = state.tasks().clone();
            union.push_unchecked(first);
            test.is_schedulable(&union)
        };
        assert_eq!(state.try_admit(&first), expected);
    }
}
