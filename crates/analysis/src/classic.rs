//! Classic (single-criticality) baselines: plain EDF and fixed-priority RTA.
//!
//! These treat a dual-criticality set as an ordinary sporadic set with one
//! budget per task. Two projections are useful:
//!
//! * **own-level** — each task at the budget of its own criticality
//!   (`C^L` for LC, `C^H` for HC). This is the conventional "reserve the
//!   worst case everywhere" design the mixed-criticality literature
//!   improves upon; the gap between this and the MC tests quantifies the
//!   benefit of mode-switched scheduling.
//! * **low-mode** — every task at `C^L`. Any sound MC test must imply
//!   schedulability of this projection (used by property tests).

use crate::dbf::VdTask;
use crate::workspace::AnalysisWorkspace;
use crate::{amc, SchedulabilityTest};
use mcsched_model::{Task, TaskSet};

/// Which per-task budget a classic baseline charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BudgetProjection {
    /// `C^L` for LC tasks, `C^H` for HC tasks.
    #[default]
    OwnLevel,
    /// `C^L` for every task.
    LoMode,
}

/// Flattens one task to a single-budget sporadic task under `projection`.
fn project_task(t: &Task, projection: BudgetProjection) -> Option<VdTask> {
    let budget = match projection {
        BudgetProjection::OwnLevel => t.wcet_own(),
        BudgetProjection::LoMode => t.wcet_lo(),
    };
    let flat = Task::builder(t.id().0)
        .period(t.period().as_ticks())
        .criticality(t.criticality())
        .wcet_lo(budget.as_ticks())
        .wcet_hi(budget.as_ticks())
        .deadline(t.deadline().as_ticks())
        .try_build()
        .ok()?;
    Some(VdTask::untightened(flat))
}

fn project(ts: &TaskSet, projection: BudgetProjection) -> Option<Vec<VdTask>> {
    ts.iter().map(|t| project_task(t, projection)).collect()
}

/// Plain EDF with an exact processor-demand test (QPA-accelerated).
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// use mcsched_analysis::{ClassicEdf, SchedulabilityTest};
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let ts = TaskSet::try_from_tasks(vec![
///     Task::hi(0, 10, 2, 5)?,   // charged at C^H = 5
///     Task::lo(1, 10, 4)?,      // charged at C^L = 4
/// ])?;
/// // 0.5 + 0.4 ≤ 1: schedulable when everything reserves its own level.
/// assert!(ClassicEdf::own_level().is_schedulable(&ts));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassicEdf {
    projection: BudgetProjection,
}

impl ClassicEdf {
    /// EDF with each task charged at its own criticality level.
    pub fn own_level() -> Self {
        ClassicEdf {
            projection: BudgetProjection::OwnLevel,
        }
    }

    /// EDF with every task charged at `C^L` (the low-mode projection).
    pub fn lo_mode() -> Self {
        ClassicEdf {
            projection: BudgetProjection::LoMode,
        }
    }
}

impl SchedulabilityTest for ClassicEdf {
    fn name(&self) -> &'static str {
        match self.projection {
            BudgetProjection::OwnLevel => "EDF(own)",
            BudgetProjection::LoMode => "EDF(lo)",
        }
    }

    fn is_schedulable(&self, ts: &TaskSet) -> bool {
        AnalysisWorkspace::with(|ws| self.is_schedulable_in(ts, ws))
    }

    fn is_schedulable_in(&self, ts: &TaskSet, ws: &mut AnalysisWorkspace) -> bool {
        // Project straight into the demand kernel (no intermediate
        // vector): the exact QPA check over the flat projection is
        // bit-identical to the seed `check_lo_mode` path.
        let kernel = &mut ws.demand;
        kernel.clear();
        for t in ts.iter() {
            let Some(vt) = project_task(t, self.projection) else {
                return false; // a budget exceeded a deadline in projection
            };
            kernel.push_task(vt);
        }
        kernel.check_lo().is_ok()
    }
}

/// Fixed-priority (deadline-monotonic) response-time analysis on a budget
/// projection.
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// use mcsched_analysis::{ClassicFp, SchedulabilityTest};
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let ts = TaskSet::try_from_tasks(vec![
///     Task::hi(0, 10, 2, 4)?,
///     Task::lo(1, 20, 5)?,
/// ])?;
/// assert!(ClassicFp::own_level().is_schedulable(&ts));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassicFp {
    projection: BudgetProjection,
}

impl ClassicFp {
    /// DM RTA with each task charged at its own criticality level.
    pub fn own_level() -> Self {
        ClassicFp {
            projection: BudgetProjection::OwnLevel,
        }
    }

    /// DM RTA with every task charged at `C^L`.
    pub fn lo_mode() -> Self {
        ClassicFp {
            projection: BudgetProjection::LoMode,
        }
    }
}

impl SchedulabilityTest for ClassicFp {
    fn name(&self) -> &'static str {
        match self.projection {
            BudgetProjection::OwnLevel => "FP(own)",
            BudgetProjection::LoMode => "FP(lo)",
        }
    }

    fn is_schedulable(&self, ts: &TaskSet) -> bool {
        let Some(projected) = project(ts, self.projection) else {
            return false;
        };
        let flat: TaskSet = projected.into_iter().map(|vt| vt.task).collect();
        let order = amc::dm_order(&flat);
        amc::LoRta::compute_with_order(&flat, &order).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(tasks: Vec<Task>) -> TaskSet {
        TaskSet::try_from_tasks(tasks).unwrap()
    }

    #[test]
    fn edf_own_level_uses_hi_budget() {
        // HC at C^H = 6 (u = 0.6) + LC at 0.5 overloads.
        let ts = set(vec![
            Task::hi(0, 10, 2, 6).unwrap(),
            Task::lo(1, 10, 5).unwrap(),
        ]);
        assert!(!ClassicEdf::own_level().is_schedulable(&ts));
        // The low-mode projection (0.2 + 0.5) fits comfortably.
        assert!(ClassicEdf::lo_mode().is_schedulable(&ts));
    }

    #[test]
    fn edf_exact_at_full_utilization() {
        let ts = set(vec![
            Task::lo(0, 10, 5).unwrap(),
            Task::lo(1, 10, 5).unwrap(),
        ]);
        assert!(ClassicEdf::own_level().is_schedulable(&ts));
    }

    #[test]
    fn edf_constrained_deadlines() {
        let ts = set(vec![
            Task::lo_constrained(0, 10, 3, 5).unwrap(),
            Task::lo_constrained(1, 10, 3, 6).unwrap(),
        ]);
        // Demand at t=6: 6 ≤ 6 — feasible.
        assert!(ClassicEdf::own_level().is_schedulable(&ts));
        let tight = set(vec![
            Task::lo_constrained(0, 10, 3, 5).unwrap(),
            Task::lo_constrained(1, 10, 4, 6).unwrap(),
        ]);
        // Demand at t=6: 7 > 6 — infeasible.
        assert!(!ClassicEdf::own_level().is_schedulable(&tight));
    }

    #[test]
    fn fp_own_level() {
        let ts = set(vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::lo(1, 20, 5).unwrap(),
        ]);
        assert!(ClassicFp::own_level().is_schedulable(&ts));
        let over = set(vec![
            Task::hi(0, 10, 2, 8).unwrap(),
            Task::lo(1, 20, 8).unwrap(),
        ]);
        assert!(!ClassicFp::own_level().is_schedulable(&over));
    }

    #[test]
    fn fp_dominated_by_edf() {
        // Any FP-schedulable projection is EDF-schedulable (EDF optimal).
        for (c0, c1) in [(2u64, 5u64), (3, 6), (4, 7), (5, 9)] {
            let ts = set(vec![
                Task::lo(0, 10, c0).unwrap(),
                Task::lo(1, 20, c1).unwrap(),
            ]);
            if ClassicFp::own_level().is_schedulable(&ts) {
                assert!(ClassicEdf::own_level().is_schedulable(&ts), "{ts}");
            }
        }
    }

    #[test]
    fn names_and_empty() {
        assert_eq!(ClassicEdf::own_level().name(), "EDF(own)");
        assert_eq!(ClassicEdf::lo_mode().name(), "EDF(lo)");
        assert_eq!(ClassicFp::own_level().name(), "FP(own)");
        assert_eq!(ClassicFp::lo_mode().name(), "FP(lo)");
        assert!(ClassicEdf::own_level().is_schedulable(&TaskSet::new()));
        assert!(ClassicFp::own_level().is_schedulable(&TaskSet::new()));
    }
}
