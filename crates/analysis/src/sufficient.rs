// mclint: hot-path
//! The **sufficient ("fast") admission tier**: allocation-free O(1)
//! pre-checks the service plane answers with when the exact worker pool
//! saturates.
//!
//! Every rule is *sound in the accept direction*: a fast **accept**
//! guarantees the session's exact test would also accept, so a degraded
//! worker may commit the task and the session stays valid when an exact
//! worker later picks it up. A fast **reject** is advisory only ("could
//! not prove it cheaply") — the client may retry for an exact verdict.
//!
//! The rules, per exact test (see [`FastRule`]):
//!
//! | exact test | fast rule | soundness |
//! |---|---|---|
//! | EDF-VD | the closed form itself | exact: the fast tier *is* the test |
//! | EY / ECDF | LC-only density ≤ 1 | provable against the implementations: with zero HC tasks the high-mode demand is identically zero (the tuner's round-0 check passes untightened) and LO density ≤ 1 implies the exact QPA demand check passes — so both searches accept immediately. Own-level density bounds are **not** sound here: the tuners are greedy heuristics, and `tests/sufficient.rs` pins under-the-bound HC sets that EY (implicit) and ECDF (constrained) reject |
//! | AMC-rtb / AMC-max | own-level density ≤ Liu–Layland bound | LL ⇒ RM-feasible on the deadline-shrunk system ⇒ own-level DM RTA fits ⇒ AMC-rtb's lo/hi recurrences are dominated term-by-term ⇒ AMC-max by dominance |
//!
//! A rule charging HC tasks their own budget (`Σ C^own/min(D,T) ≤ 1`)
//! was tried and *rejected*: it is a true feasibility bound, but the
//! demand tests are heuristic searches, not feasibility oracles, and
//! the property suite found sets under the bound that they reject. The
//! degraded tier therefore proves nothing about HC admissions — they
//! always answer "unproven, retry exact", which is also the sensible
//! service story: criticality decisions deserve the exact tier.
//!
//! *Own-level density* charges every task its own-criticality budget
//! `C^own` (`C^L` for LC, `C^H` for HC — [`Task::wcet_own`]) against
//! `min(D, T)`: the cost of reserving the task's worst budget in every
//! mode. Whatever passes that reservation passes every mode-aware test
//! the workspace ships (the utilization-difference tests exist because
//! the reservation is *pessimistic* — which is exactly what makes it a
//! sound one-sided filter).
//!
//! Floating-point: the density comparisons subtract [`FP_GUARD`] so a
//! rounded-*down* sum can never smuggle a mathematically-over-bound set
//! past the rule; the EDF-VD closed form needs no guard because it
//! evaluates bit-identically to the exact state's own arithmetic.
//! `tests/sufficient.rs` property-checks accept-soundness for all five
//! tests over both deadline models.

use crate::edfvd;
use crate::incremental::{AdmissionState, AdmissionStats, Committed};
use mcsched_model::{SystemUtilization, Task, TaskId, TaskSet};

/// Absolute slack subtracted from density bounds to absorb float
/// rounding: summing n ≤ 10⁵ terms each ≤ 2¹⁰ loses at most ~n·2⁻⁴³,
/// orders of magnitude below this guard.
pub const FP_GUARD: f64 = 1e-9;

/// Which sufficient condition a [`FastState`] evaluates (see the
/// [module docs](self) for the soundness argument of each).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastRule {
    /// The EDF-VD closed form on running `(U_LL, U_HL, U_HH)` density
    /// sums — the exact EDF-VD verdict, bit-identical to
    /// [`EdfVdState`](crate::EdfVdState).
    EdfVdClosedForm,
    /// Accept only LC tasks, under `Σ C^L / min(D, T) ≤ 1 − FP_GUARD`,
    /// and only while no HC task is committed (a recovered session may
    /// hold exact-tier HC commits; after that everything is "unproven").
    /// Provably sound for both demand-test implementations: no HC tasks
    /// ⇒ zero high-mode demand ⇒ the round-0 check passes, and density
    /// ≤ 1 ⇒ the exact LO-mode QPA check passes. Fronts EY and ECDF,
    /// whose greedy searches honour no cheap bound on HC-bearing sets.
    LcOnlyDensity,
    /// `Σ C^own / min(D, T) ≤ n(2^(1/n) − 1) − FP_GUARD` (Liu–Layland
    /// with `n` the post-admit task count): the own-level reservation is
    /// fixed-priority-feasible. Sound for the AMC RTA tests.
    LiuLaylandOwnDensity,
}

/// One task's own-level density: `C^own / min(D, T)`.
fn own_density(t: &Task) -> f64 {
    t.wcet_own().as_f64() / t.deadline().min(t.period()).as_f64()
}

/// The Liu–Layland utilization bound `n(2^(1/n) − 1)`.
fn ll_bound(n: usize) -> f64 {
    let n = n as f64;
    n * (2f64.powf(1.0 / n) - 1.0)
}

/// An allocation-free sufficient admission state: running density sums
/// plus the [`FastRule`] decision, implementing [`AdmissionState`] so it
/// drops into the same cluster-session machinery as the exact states.
///
/// Accept is sound (the exact test would accept too); reject means
/// "unproven", not "infeasible".
#[derive(Debug, Clone)]
pub struct FastState {
    rule: FastRule,
    committed: Committed,
    sums: edfvd::Sums,
    own_density: f64,
    /// Committed HC tasks (only reachable through `commit` without a
    /// fast accept, i.e. a cross-tier session restore) — the LC-only
    /// rule refuses to extend such a set.
    hc_committed: usize,
}

impl FastState {
    /// An empty state deciding by `rule`.
    pub fn new(rule: FastRule) -> Self {
        FastState {
            rule,
            committed: Committed::default(),
            sums: edfvd::Sums::default(),
            own_density: 0.0,
            hc_committed: 0,
        }
    }

    /// The rule this state decides by.
    pub fn rule(&self) -> FastRule {
        self.rule
    }

    /// Would the committed tasks plus `task` pass the rule? Pure O(1)
    /// check; no state change.
    fn would_accept(&self, task: &Task) -> bool {
        match self.rule {
            FastRule::EdfVdClosedForm => {
                let mut sums = self.sums;
                sums.accumulate(task);
                edfvd::scaling_factor_from(&sums).is_some()
            }
            FastRule::LcOnlyDensity => {
                task.criticality().is_low()
                    && self.hc_committed == 0
                    && self.own_density + own_density(task) <= 1.0 - FP_GUARD
            }
            FastRule::LiuLaylandOwnDensity => {
                let n = self.committed.tasks.len() + 1;
                self.own_density + own_density(task) <= ll_bound(n) - FP_GUARD
            }
        }
    }

    /// Recomputes both running sums from the committed tasks, in
    /// insertion order (bit-identical to the accumulate path — the same
    /// discipline [`Committed`] uses for its summary).
    fn recompute(&mut self) {
        self.sums = edfvd::Sums::default();
        self.own_density = 0.0;
        self.hc_committed = 0;
        for t in self.committed.tasks.iter() {
            self.sums.accumulate(t);
            self.own_density += own_density(t);
            if t.criticality().is_high() {
                self.hc_committed += 1;
            }
        }
    }
}

impl AdmissionState for FastState {
    fn try_admit(&mut self, task: &Task) -> bool {
        let ok = self.would_accept(task);
        self.committed.record(true, ok);
        ok
    }

    fn commit(&mut self, task: Task) {
        self.sums.accumulate(&task);
        self.own_density += own_density(&task);
        if task.criticality().is_high() {
            self.hc_committed += 1;
        }
        self.committed.push(task);
    }

    fn remove(&mut self, id: TaskId) -> bool {
        let removed = self.committed.remove(id).is_some();
        if removed {
            self.recompute();
        }
        removed
    }

    fn summary(&self) -> SystemUtilization {
        self.committed.summary
    }

    fn tasks(&self) -> &TaskSet {
        &self.committed.tasks
    }

    fn take_tasks(&mut self) -> TaskSet {
        let tasks = self.committed.take();
        self.sums = edfvd::Sums::default();
        self.own_density = 0.0;
        self.hc_committed = 0;
        tasks
    }

    fn stats(&self) -> AdmissionStats {
        self.committed.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdfVd, IncrementalTest, SchedulabilityTest};

    fn lo(id: u32, period: u64, wcet: u64) -> Task {
        Task::lo(id, period, wcet).expect("valid LC task")
    }

    fn hi(id: u32, period: u64, wcet_lo: u64, wcet_hi: u64) -> Task {
        Task::hi(id, period, wcet_lo, wcet_hi).expect("valid HC task")
    }

    #[test]
    fn edfvd_rule_matches_the_exact_state_verdicts() {
        let mut fast = FastState::new(FastRule::EdfVdClosedForm);
        let mut exact = EdfVd::new().new_state();
        let tasks = [
            lo(1, 10, 3),
            hi(2, 20, 4, 9),
            lo(3, 5, 2),
            hi(4, 40, 8, 20),
            lo(5, 8, 5),
        ];
        for t in tasks {
            assert_eq!(fast.try_admit(&t), exact.try_admit(&t), "task {t:?}");
            if exact.try_admit(&t) {
                fast.commit(t);
                exact.commit(t);
            }
        }
        assert_eq!(fast.summary(), exact.summary());
    }

    #[test]
    fn density_rules_accept_light_and_reject_heavy() {
        for rule in [FastRule::LcOnlyDensity, FastRule::LiuLaylandOwnDensity] {
            let mut fast = FastState::new(rule);
            assert!(fast.try_admit(&lo(1, 100, 10)), "{rule:?} light task");
            fast.commit(lo(1, 100, 10));
            // Own-level density 1.0 on top of 0.1 busts every bound (and
            // the LC-only rule rejects the HC task outright).
            assert!(!fast.try_admit(&hi(2, 10, 5, 10)), "{rule:?} heavy task");
        }
    }

    #[test]
    fn lc_only_rule_rejects_hc_and_restored_hc_poisons_the_state() {
        let mut fast = FastState::new(FastRule::LcOnlyDensity);
        // A feather-weight HC task is still refused: the rule proves
        // nothing about high-mode demand.
        assert!(!fast.try_admit(&hi(1, 1000, 1, 2)));
        assert!(fast.try_admit(&lo(2, 10, 3)));
        fast.commit(lo(2, 10, 3));
        // A cross-tier restore may force-commit an HC task; afterwards
        // even trivial LC admissions are "unproven".
        fast.commit(hi(3, 1000, 1, 2));
        assert!(!fast.try_admit(&lo(4, 1000, 1)));
        // Removing the HC task restores the provable region.
        assert!(fast.remove(TaskId(3)));
        assert!(fast.try_admit(&lo(4, 1000, 1)));
    }

    #[test]
    fn fast_accepts_imply_exact_accepts_on_a_quick_sweep() {
        // The full property test lives in tests/sufficient.rs; this is
        // the smoke version over a few handmade sets.
        let sets = [
            vec![lo(1, 10, 2), hi(2, 20, 2, 5), lo(3, 40, 4)],
            vec![hi(1, 5, 1, 2), hi(2, 50, 5, 20), lo(3, 25, 3)],
        ];
        for tasks in &sets {
            let mut fast = FastState::new(FastRule::LcOnlyDensity);
            let mut committed = TaskSet::new();
            for t in tasks {
                if fast.try_admit(t) {
                    fast.commit(*t);
                    committed.push_unchecked(*t);
                    let ecdf = crate::Ecdf::new();
                    assert!(
                        ecdf.is_schedulable(&committed),
                        "fast accept not honored by ECDF on {committed:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn remove_restores_capacity_and_sums() {
        let mut fast = FastState::new(FastRule::LcOnlyDensity);
        let a = lo(1, 10, 4);
        let b = lo(2, 10, 4);
        let c = lo(3, 10, 4);
        for t in [a, b] {
            assert!(fast.try_admit(&t));
            fast.commit(t);
        }
        assert!(!fast.try_admit(&c), "0.8 + 0.4 over the density bound");
        assert!(fast.remove(TaskId(1)));
        assert!(fast.try_admit(&c), "capacity restored after remove");
        assert!(!fast.remove(TaskId(99)));
        assert_eq!(fast.tasks().len(), 1);
        let taken = fast.take_tasks();
        assert_eq!(taken.len(), 1);
        assert!(fast.try_admit(&c), "reset state accepts again");
        assert!(fast.stats().attempts >= 4);
    }

    #[test]
    fn ll_bound_is_monotone_decreasing_toward_ln2() {
        assert!((ll_bound(1) - 1.0).abs() < 1e-12);
        assert!(ll_bound(2) < ll_bound(1));
        assert!(ll_bound(100) > 0.69 && ll_bound(100) < ll_bound(10));
    }
}
