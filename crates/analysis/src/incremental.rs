// mclint: hot-path
//! The **incremental admission layer**: stateful per-processor
//! schedulability instead of clone-and-retest.
//!
//! The paper's Algorithm 1 asks, for every `(task, processor)` pair, "does
//! `τ(φk) ∪ {τi}` pass the uniprocessor test?". The one-shot
//! [`SchedulabilityTest`] answers that by analysing the whole candidate set
//! from scratch — O(n·m) full analyses per partitioning run. An
//! [`AdmissionState`] instead *remembers* the processor's committed
//! contents and the reusable intermediate results of the last analysis, so
//! each admission query costs only the work the new task actually adds:
//!
//! * [`EdfVd`](crate::EdfVd) keeps the running `(U_LL, U_HL, U_HH)` density
//!   sums and evaluates the closed-form condition in **O(1)**;
//! * [`Ey`](crate::Ey) / [`Ecdf`](crate::Ecdf) cache the per-task
//!   virtual-deadline seeds and the running utilization sums, rejecting
//!   overloaded candidates in O(1) and re-tuning only from cached
//!   per-task state otherwise;
//! * [`AmcRtb`](crate::AmcRtb) / [`AmcMax`](crate::AmcMax) keep the
//!   deadline-monotonic order and every response-time fixed point: tasks
//!   with priority above the inserted task are reused verbatim, the rest
//!   warm-start their fixed-point iteration from the previous response.
//!
//! **Equivalence guarantee.** Every state is *exactly* equivalent to the
//! one-shot test on the union of committed tasks plus the candidate — same
//! verdict, bit-identical floating-point sums (running sums accumulate in
//! the same insertion order a fresh recomputation would use, via
//! [`SystemUtilization::accumulate`]), identical integer fixed points
//! (warm starts below the least fixed point converge to the same least
//! fixed point). Incremental partitioning therefore reproduces the
//! clone-and-retest partitions **bit-identically**; the property tests in
//! `tests/incremental_equivalence.rs` enforce this against the [`OneShot`]
//! reference bridge for all five tests.
//!
//! ## Example
//!
//! ```
//! use mcsched_model::{Task, TaskSet};
//! use mcsched_analysis::{AdmissionState, EdfVd, IncrementalTest, SchedulabilityTest};
//!
//! # fn main() -> Result<(), mcsched_model::ModelError> {
//! let test = EdfVd::new();
//! let mut state = test.new_state();
//!
//! let heavy = Task::hi(0, 10, 3, 9)?;
//! let light = Task::lo(1, 10, 1)?;
//!
//! assert!(state.try_admit(&heavy)); // O(1): running sums + closed form
//! state.commit(heavy);
//! assert!(state.try_admit(&light));
//! state.commit(light);
//!
//! // The cached summary matches a fresh recomputation bit-for-bit.
//! let u = state.summary();
//! assert_eq!(u.u_hh, state.tasks().system_utilization().u_hh);
//!
//! // Admission is exactly the one-shot test on the union.
//! let too_much = Task::lo(2, 10, 4)?;
//! let mut union = state.tasks().clone();
//! union.push_unchecked(too_much);
//! assert_eq!(state.try_admit(&too_much), test.is_schedulable(&union));
//! # Ok(())
//! # }
//! ```

use crate::SchedulabilityTest;
use mcsched_model::{SystemUtilization, Task, TaskId, TaskSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Counters describing how a partitioning run exercised the admission
/// layer. Aggregated per build by `mcsched-core` and surfaced by
/// `mcsched-exp --ablation`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AdmissionStats {
    /// Admission queries ([`AdmissionState::try_admit`] calls).
    pub attempts: u64,
    /// Queries that answered "admit".
    pub admits: u64,
    /// Queries answered from cached incremental state (O(1) closed forms,
    /// warm-started fixed points, cached prefixes).
    pub incremental: u64,
    /// Queries that fell back to a full from-scratch re-analysis
    /// (the clone-and-retest bridge, or a state whose cache was
    /// invalidated).
    pub full: u64,
    /// QPA descents the demand kernel started cold from the busy-window
    /// bound (EY / ECDF states; zero for the other tests).
    pub qpa_cold: u64,
    /// QPA fixpoints the demand kernel answered warm: resumed from the
    /// previous violation point, or an `Ok` re-confirmed because demand
    /// only tightened since the last check.
    pub qpa_resumed: u64,
    /// Low-mode feasibility checks the demand kernel rejected from a
    /// memoised violation anchor, with no descent at all.
    pub qpa_anchor_hits: u64,
    /// Response-time fixpoints the AMC admission layer seeded from a
    /// cached sound lower bound instead of iterating from the task's own
    /// budget (warm-started suffix fixpoints of incremental probes; zero
    /// for the non-AMC tests).
    pub rta_seeded: u64,
}

impl AdmissionStats {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &AdmissionStats) {
        self.attempts += other.attempts;
        self.admits += other.admits;
        self.incremental += other.incremental;
        self.full += other.full;
        self.qpa_cold += other.qpa_cold;
        self.qpa_resumed += other.qpa_resumed;
        self.qpa_anchor_hits += other.qpa_anchor_hits;
        self.rta_seeded += other.rta_seeded;
    }
}

impl fmt::Display for AdmissionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} attempts, {} admits, {} incremental / {} full analyses",
            self.attempts, self.admits, self.incremental, self.full
        )?;
        if self.qpa_cold + self.qpa_resumed + self.qpa_anchor_hits > 0 {
            write!(
                f,
                ", QPA {} cold / {} resumed / {} anchor-rejected",
                self.qpa_cold, self.qpa_resumed, self.qpa_anchor_hits
            )?;
        }
        if self.rta_seeded > 0 {
            write!(f, ", {} RTA fixpoints warm-seeded", self.rta_seeded)?;
        }
        Ok(())
    }
}

/// Stateful per-processor admission: the committed contents of one
/// processor plus whatever cached analysis state the test maintains.
///
/// The contract mirrors the partitioning inner loop:
///
/// 1. [`try_admit`](AdmissionState::try_admit) answers whether the
///    committed tasks plus the candidate pass the test — **exactly** the
///    verdict the one-shot test would give on that union — without
///    mutating the committed contents;
/// 2. [`commit`](AdmissionState::commit) appends a task (reusing the
///    analysis computed by an immediately preceding successful
///    `try_admit` of the same task, and re-analysing otherwise);
/// 3. [`remove`](AdmissionState::remove) takes a task back out,
///    invalidating whatever cached state depended on it.
///
/// States are created by [`IncrementalTest::new_state`] (typed) or
/// [`SchedulabilityTest::admission_state`] (object-safe; defaults to the
/// clone-and-retest bridge).
pub trait AdmissionState {
    /// Would the committed tasks plus `task` pass the test?
    ///
    /// Exactly equivalent to running the one-shot test on the union; does
    /// not change the committed contents.
    fn try_admit(&mut self, task: &Task) -> bool;

    /// Commits `task` to the processor.
    ///
    /// Cheap when it follows a successful [`try_admit`](Self::try_admit)
    /// of the same task (the analysis is reused); otherwise the cached
    /// state is rebuilt from scratch.
    fn commit(&mut self, task: Task);

    /// Removes the committed task with `id`; returns `false` if absent.
    fn remove(&mut self, id: TaskId) -> bool;

    /// The cached utilization triple of the committed tasks —
    /// bit-identical to `self.tasks().system_utilization()`.
    fn summary(&self) -> SystemUtilization;

    /// The committed tasks.
    fn tasks(&self) -> &TaskSet;

    /// Takes the committed tasks out, leaving the state empty.
    fn take_tasks(&mut self) -> TaskSet;

    /// Counters accumulated since the state was created.
    fn stats(&self) -> AdmissionStats;
}

/// A [`SchedulabilityTest`] with a native incremental admission state.
///
/// The one-shot [`is_schedulable`](SchedulabilityTest::is_schedulable)
/// remains the semantic ground truth; `new_state` produces a state whose
/// admissions are exactly equivalent but reuse cached per-processor work.
/// The [`OneShot`] wrapper provides the blanket bridge in the other
/// direction: it equips *any* one-shot test with a (clone-and-retest)
/// admission state, so generic partitioning code can require
/// `IncrementalTest` without excluding foreign tests.
///
/// # Example
///
/// ```
/// use mcsched_model::Task;
/// use mcsched_analysis::{AdmissionState, AmcMax, IncrementalTest};
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let mut state = AmcMax::new().new_state();
/// let t = Task::hi(0, 10, 2, 4)?;
/// assert!(state.try_admit(&t));
/// state.commit(t);
/// assert_eq!(state.tasks().len(), 1);
/// assert!(state.remove(t.id()));
/// assert!(state.tasks().is_empty());
/// # Ok(())
/// # }
/// ```
pub trait IncrementalTest: SchedulabilityTest {
    /// The per-processor admission state this test maintains.
    type State: AdmissionState;

    /// Creates an empty per-processor state.
    fn new_state(&self) -> Self::State;

    /// As [`new_state`](IncrementalTest::new_state), sharing the caller's
    /// analysis workspace for scratch buffers — a *cluster* of states (one
    /// per processor, queried one at a time) reuses the same buffers
    /// instead of allocating per state. Verdicts are identical; the
    /// default ignores `ws` for tests whose state needs no scratch.
    fn new_state_in(&self, ws: &crate::WorkspaceRef) -> Self::State {
        let _ = ws;
        self.new_state()
    }
}

/// The **session-facing** admission surface: owning (`'static`) admission
/// states for long-lived clusters.
///
/// [`SchedulabilityTest::admission_state`] returns a state that *borrows*
/// the test — perfect for the partitioning inner loop, useless for a
/// service session that must own its per-processor states across
/// requests. `SessionTest` closes that gap: every [`IncrementalTest`]
/// whose typed state is owning (all five native tests, plus any
/// [`OneShot`]-bridged test) can mint boxed states with no borrowed
/// lifetime, so a session struct can hold the states directly.
///
/// # Example
///
/// ```
/// use mcsched_model::Task;
/// use mcsched_analysis::{AdmissionState, Ecdf, SessionTest};
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// // An owning state: no borrow of the test survives this call.
/// let mut state: Box<dyn AdmissionState> = Ecdf::new().owned_admission_state();
/// let t = Task::hi(0, 10, 2, 4)?;
/// assert!(state.try_admit(&t));
/// state.commit(t);
/// assert_eq!(state.tasks().len(), 1);
/// # Ok(())
/// # }
/// ```
pub trait SessionTest: SchedulabilityTest {
    /// Creates an owning per-processor admission state.
    fn owned_admission_state(&self) -> Box<dyn AdmissionState>;

    /// As [`owned_admission_state`](SessionTest::owned_admission_state),
    /// with all states minted from one call site sharing the given
    /// workspace's scratch buffers (see [`IncrementalTest::new_state_in`]).
    fn owned_admission_state_in(&self, ws: &crate::WorkspaceRef) -> Box<dyn AdmissionState>;
}

impl<T> SessionTest for T
where
    T: IncrementalTest,
    T::State: 'static,
{
    // mclint: cold — one boxed state per server session, reused across probes
    fn owned_admission_state(&self) -> Box<dyn AdmissionState> {
        Box::new(self.new_state())
    }

    // mclint: cold — one boxed state per server session, reused across probes
    fn owned_admission_state_in(&self, ws: &crate::WorkspaceRef) -> Box<dyn AdmissionState> {
        Box::new(self.new_state_in(ws))
    }
}

/// The committed contents shared by every admission state: the task set,
/// its running utilization summary and the admission counters.
#[derive(Debug, Clone, Default)]
pub(crate) struct Committed {
    pub(crate) tasks: TaskSet,
    pub(crate) summary: SystemUtilization,
    pub(crate) stats: AdmissionStats,
}

impl Committed {
    /// Appends a task, keeping the summary in sync (accumulated in
    /// insertion order, hence bit-identical to a recomputation).
    pub(crate) fn push(&mut self, task: Task) {
        self.summary.accumulate(&task);
        self.tasks.push_unchecked(task);
    }

    /// Removes a task and recomputes the summary from scratch (exact
    /// floating-point subtraction is not available).
    pub(crate) fn remove(&mut self, id: TaskId) -> Option<Task> {
        let task = self.tasks.remove(id)?;
        self.summary = self.tasks.system_utilization();
        Some(task)
    }

    /// Records one admission query in the counters.
    pub(crate) fn record(&mut self, incremental: bool, admitted: bool) {
        self.stats.attempts += 1;
        if incremental {
            self.stats.incremental += 1;
        } else {
            self.stats.full += 1;
        }
        if admitted {
            self.stats.admits += 1;
        }
    }

    /// Takes the tasks out, resetting the summary.
    pub(crate) fn take(&mut self) -> TaskSet {
        self.summary = SystemUtilization::default();
        std::mem::take(&mut self.tasks)
    }
}

/// Runs the one-shot test on `committed ∪ {task}` — the seed
/// clone-and-retest admission every incremental state must agree with.
// mclint: cold — the clone IS the baseline being measured against; only equivalence suites call it
pub(crate) fn clone_and_retest<T: SchedulabilityTest + ?Sized>(
    test: &T,
    committed: &TaskSet,
    task: &Task,
) -> bool {
    let mut candidate = committed.clone();
    candidate.push_unchecked(*task);
    test.is_schedulable(&candidate)
}

/// The default [`AdmissionState`]: clone the committed set, append the
/// candidate, re-run the one-shot test. This is exactly the seed path of
/// the paper's Algorithm 1 and the reference the native states are
/// validated against.
pub struct CloneRetestState<'a, T: SchedulabilityTest + ?Sized> {
    test: &'a T,
    committed: Committed,
}

impl<'a, T: SchedulabilityTest + ?Sized> CloneRetestState<'a, T> {
    /// Creates an empty state that re-tests through `test`.
    pub fn new(test: &'a T) -> Self {
        CloneRetestState {
            test,
            committed: Committed::default(),
        }
    }
}

impl<T: SchedulabilityTest + ?Sized> AdmissionState for CloneRetestState<'_, T> {
    fn try_admit(&mut self, task: &Task) -> bool {
        let ok = clone_and_retest(self.test, &self.committed.tasks, task);
        self.committed.record(false, ok);
        ok
    }

    fn commit(&mut self, task: Task) {
        self.committed.push(task);
    }

    fn remove(&mut self, id: TaskId) -> bool {
        self.committed.remove(id).is_some()
    }

    fn summary(&self) -> SystemUtilization {
        self.committed.summary
    }

    fn tasks(&self) -> &TaskSet {
        &self.committed.tasks
    }

    fn take_tasks(&mut self) -> TaskSet {
        self.committed.take()
    }

    fn stats(&self) -> AdmissionStats {
        self.committed.stats
    }
}

/// Wraps any one-shot test, forcing the clone-and-retest admission path
/// even when the inner test has a native incremental state.
///
/// Two uses:
///
/// * the **blanket bridge**: `OneShot<T>` implements [`IncrementalTest`]
///   for every cloneable one-shot test, so generic code can demand the
///   incremental interface without excluding tests that lack a native
///   state;
/// * the **reference implementation**: benchmarks and the equivalence
///   property tests compare a test's native state against
///   `OneShot(test)`, which is the seed behaviour by construction.
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// use mcsched_analysis::{AdmissionState, EdfVd, IncrementalTest, OneShot, SchedulabilityTest};
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let reference = OneShot(EdfVd::new());
/// assert_eq!(reference.name(), "EDF-VD");
/// let mut fast = EdfVd::new().new_state();
/// let mut slow = reference.new_state();
/// let t = Task::hi(0, 10, 2, 5)?;
/// assert_eq!(fast.try_admit(&t), slow.try_admit(&t));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OneShot<T>(pub T);

impl<T: SchedulabilityTest> SchedulabilityTest for OneShot<T> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn is_schedulable(&self, ts: &TaskSet) -> bool {
        self.0.is_schedulable(ts)
    }

    // Note: `admission_state` is deliberately *not* overridden — the whole
    // point of the wrapper is to keep the clone-and-retest default.
}

impl<T: SchedulabilityTest + Clone> IncrementalTest for OneShot<T> {
    type State = OneShotState<T>;

    // mclint: cold — session construction, once per processor
    fn new_state(&self) -> OneShotState<T> {
        OneShotState {
            test: self.0.clone(),
            committed: Committed::default(),
        }
    }
}

/// The owning variant of [`CloneRetestState`] used by the
/// [`OneShot`] bridge (the typed [`IncrementalTest`] interface cannot
/// borrow the test).
pub struct OneShotState<T> {
    test: T,
    committed: Committed,
}

impl<T: SchedulabilityTest> AdmissionState for OneShotState<T> {
    fn try_admit(&mut self, task: &Task) -> bool {
        let ok = clone_and_retest(&self.test, &self.committed.tasks, task);
        self.committed.record(false, ok);
        ok
    }

    fn commit(&mut self, task: Task) {
        self.committed.push(task);
    }

    fn remove(&mut self, id: TaskId) -> bool {
        self.committed.remove(id).is_some()
    }

    fn summary(&self) -> SystemUtilization {
        self.committed.summary
    }

    fn tasks(&self) -> &TaskSet {
        &self.committed.tasks
    }

    fn take_tasks(&mut self) -> TaskSet {
        self.committed.take()
    }

    fn stats(&self) -> AdmissionStats {
        self.committed.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AmcMax, AmcRtb, Ecdf, EdfVd, Ey};

    fn hi(id: u32, t: u64, cl: u64, ch: u64) -> Task {
        Task::hi(id, t, cl, ch).unwrap()
    }
    fn lo(id: u32, t: u64, c: u64) -> Task {
        Task::lo(id, t, c).unwrap()
    }

    /// Drives a state through admit/commit/reject/remove and checks it
    /// agrees with the one-shot test at every step.
    fn exercise_state(test: &dyn SchedulabilityTest) {
        let mut state = test.admission_state();
        let tasks = vec![hi(0, 10, 2, 4), lo(1, 20, 6), hi(2, 25, 3, 8), lo(3, 10, 3)];
        for t in &tasks {
            let expected = clone_and_retest(&test, state.tasks(), t);
            assert_eq!(state.try_admit(t), expected, "{} on {t}", test.name());
            if expected {
                state.commit(*t);
            }
        }
        // Summary stays bit-identical to a recomputation.
        let fresh = state.tasks().system_utilization();
        let cached = state.summary();
        assert_eq!(cached.u_ll.to_bits(), fresh.u_ll.to_bits());
        assert_eq!(cached.u_hl.to_bits(), fresh.u_hl.to_bits());
        assert_eq!(cached.u_hh.to_bits(), fresh.u_hh.to_bits());
        // Remove one and keep agreeing.
        if let Some(first) = state.tasks().iter().next().copied() {
            assert!(state.remove(first.id()));
            assert!(!state.remove(first.id()));
            let again = clone_and_retest(&test, state.tasks(), &first);
            assert_eq!(state.try_admit(&first), again);
        }
        let stats = state.stats();
        assert!(stats.attempts >= tasks.len() as u64);
        assert!(stats.admits <= stats.attempts);
        let n = state.tasks().len();
        assert_eq!(state.take_tasks().len(), n);
        assert!(state.tasks().is_empty());
    }

    #[test]
    fn every_test_agrees_with_its_one_shot() {
        let tests: Vec<Box<dyn SchedulabilityTest>> = vec![
            Box::new(EdfVd::new()),
            Box::new(Ey::new()),
            Box::new(Ecdf::new()),
            Box::new(AmcRtb::new()),
            Box::new(AmcRtb::with_audsley()),
            Box::new(AmcMax::new()),
        ];
        for t in &tests {
            exercise_state(t.as_ref());
        }
    }

    #[test]
    fn bridge_state_counts_full_analyses() {
        let test = OneShot(EdfVd::new());
        let mut state = test.new_state();
        assert!(state.try_admit(&lo(0, 10, 1)));
        state.commit(lo(0, 10, 1));
        assert!(!state.try_admit(&lo(1, 10, 10)));
        let stats = state.stats();
        assert_eq!(stats.attempts, 2);
        assert_eq!(stats.admits, 1);
        assert_eq!(stats.full, 2);
        assert_eq!(stats.incremental, 0);
    }

    #[test]
    fn stats_merge_and_display() {
        let mut a = AdmissionStats {
            attempts: 3,
            admits: 2,
            incremental: 1,
            full: 2,
            ..AdmissionStats::default()
        };
        let b = AdmissionStats {
            attempts: 1,
            admits: 0,
            incremental: 1,
            full: 0,
            qpa_cold: 5,
            qpa_resumed: 3,
            qpa_anchor_hits: 2,
            rta_seeded: 7,
        };
        a.merge(&b);
        assert_eq!(a.attempts, 4);
        assert_eq!(a.admits, 2);
        assert_eq!(a.incremental, 2);
        assert_eq!(a.full, 2);
        assert_eq!(a.qpa_cold, 5);
        assert_eq!(a.qpa_resumed, 3);
        assert_eq!(a.qpa_anchor_hits, 2);
        assert_eq!(a.rta_seeded, 7);
        let s = a.to_string();
        assert!(s.contains("4 attempts"));
        assert!(s.contains("2 incremental"));
        assert!(s.contains("3 resumed"));
        assert!(s.contains("7 RTA fixpoints warm-seeded"));
        // Zero QPA / RTA counters stay out of the short display.
        let plain = AdmissionStats {
            attempts: 1,
            ..AdmissionStats::default()
        };
        assert!(!plain.to_string().contains("QPA"));
        assert!(!plain.to_string().contains("RTA"));
    }

    #[test]
    fn dyn_default_uses_clone_retest() {
        // A test type with no native state gets the bridge for free.
        struct AlwaysYes;
        impl SchedulabilityTest for AlwaysYes {
            fn name(&self) -> &'static str {
                "yes"
            }
            fn is_schedulable(&self, _: &TaskSet) -> bool {
                true
            }
        }
        let t = AlwaysYes;
        let mut state = t.admission_state();
        assert!(state.try_admit(&lo(0, 10, 9)));
        state.commit(lo(0, 10, 9));
        assert_eq!(state.stats().full, 1);
        assert_eq!(state.tasks().len(), 1);
    }
}
