//! # mcsched-analysis
//!
//! Uniprocessor mixed-criticality schedulability tests for dual-criticality
//! sporadic task systems, as used by Ramanathan & Easwaran (DATE 2017):
//!
//! * [`EdfVd`] — the utilization-based EDF-VD test of Baruah et al.
//!   (ECRTS 2012), optimal speed-up 4/3 for implicit deadlines.
//! * [`Ey`] — the demand-bound-function test with per-task virtual-deadline
//!   tuning in the style of Ekberg & Yi (ECRTS 2012).
//! * [`Ecdf`] — Easwaran's ECDF test (RTSS 2013): the same framework with a
//!   strictly tighter carry-over demand bound, so it dominates [`Ey`].
//! * [`AmcRtb`] / [`AmcMax`] — fixed-priority Adaptive Mixed-Criticality
//!   response-time analyses of Baruah, Burns & Davis (RTSS 2011).
//! * [`classic`] — plain (non-MC) EDF and fixed-priority baselines.
//!
//! Every test implements the object-safe [`SchedulabilityTest`] trait, so
//! partitioning strategies in `mcsched-core` can treat them uniformly.
//!
//! All arithmetic is exact over integer ticks ([`mcsched_model::Time`]);
//! floating point only appears in the closed-form EDF-VD utilization test,
//! where it mirrors the published test statement.
//!
//! ## Example
//!
//! ```
//! use mcsched_model::{Task, TaskSet};
//! use mcsched_analysis::{EdfVd, Ecdf, AmcMax, SchedulabilityTest};
//!
//! # fn main() -> Result<(), mcsched_model::ModelError> {
//! let ts = TaskSet::try_from_tasks(vec![
//!     Task::hi(0, 10, 2, 4)?,
//!     Task::lo(1, 20, 6)?,
//! ])?;
//!
//! assert!(EdfVd::new().is_schedulable(&ts));
//! assert!(Ecdf::new().is_schedulable(&ts));
//! assert!(AmcMax::new().is_schedulable(&ts));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amc;
pub mod classic;
pub mod dbf;
pub mod edfvd;
pub mod vdtune;

pub use amc::{AmcMax, AmcRtb, LoRta};
pub use classic::{ClassicEdf, ClassicFp};
pub use dbf::{DemandCheck, DemandCurve, VdTask};
pub use edfvd::EdfVd;
pub use vdtune::{Ecdf, Ey, VdAssignment};

use mcsched_model::TaskSet;

/// A uniprocessor schedulability test for dual-criticality task sets.
///
/// Implementations answer "can this task set be scheduled on one unit-speed
/// processor by the associated algorithm?". Partitioning strategies call
/// [`is_schedulable`](SchedulabilityTest::is_schedulable) on the candidate
/// contents of each processor before committing an allocation (the paper's
/// Algorithm 1, line 5).
///
/// The trait is object-safe; partitioners hold `&dyn SchedulabilityTest`.
pub trait SchedulabilityTest {
    /// A short human-readable name, e.g. `"EDF-VD"`.
    fn name(&self) -> &'static str;

    /// Returns `true` if the task set is deemed schedulable on one
    /// processor by this test.
    ///
    /// Tests are *sufficient*: `true` means guaranteed schedulable under the
    /// test's assumptions, `false` means "not proven schedulable".
    fn is_schedulable(&self, ts: &TaskSet) -> bool;
}

impl<T: SchedulabilityTest + ?Sized> SchedulabilityTest for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn is_schedulable(&self, ts: &TaskSet) -> bool {
        (**self).is_schedulable(ts)
    }
}

impl<T: SchedulabilityTest + ?Sized> SchedulabilityTest for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn is_schedulable(&self, ts: &TaskSet) -> bool {
        (**self).is_schedulable(ts)
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;
    use mcsched_model::Task;

    #[test]
    fn trait_objects_work() {
        let ts = TaskSet::try_from_tasks(vec![Task::lo(0, 10, 1).unwrap()]).unwrap();
        let tests: Vec<Box<dyn SchedulabilityTest>> = vec![
            Box::new(EdfVd::new()),
            Box::new(Ey::new()),
            Box::new(Ecdf::new()),
            Box::new(AmcRtb::new()),
            Box::new(AmcMax::new()),
        ];
        for t in &tests {
            assert!(t.is_schedulable(&ts), "{} rejected a trivial set", t.name());
        }
    }

    #[test]
    fn blanket_impls() {
        let ts = TaskSet::try_from_tasks(vec![Task::lo(0, 10, 1).unwrap()]).unwrap();
        let t = EdfVd::new();
        let by_ref: &dyn SchedulabilityTest = &&t;
        assert!(by_ref.is_schedulable(&ts));
        assert_eq!(by_ref.name(), "EDF-VD");
        let boxed: Box<dyn SchedulabilityTest> = Box::new(EdfVd::new());
        assert!(boxed.is_schedulable(&ts));
    }
}
