//! # mcsched-analysis
//!
//! Uniprocessor mixed-criticality schedulability tests for dual-criticality
//! sporadic task systems, as used by Ramanathan & Easwaran (DATE 2017):
//!
//! * [`EdfVd`] — the utilization-based EDF-VD test of Baruah et al.
//!   (ECRTS 2012), optimal speed-up 4/3 for implicit deadlines.
//! * [`Ey`] — the demand-bound-function test with per-task virtual-deadline
//!   tuning in the style of Ekberg & Yi (ECRTS 2012).
//! * [`Ecdf`] — Easwaran's ECDF test (RTSS 2013): the same framework with a
//!   strictly tighter carry-over demand bound, so it dominates [`Ey`].
//! * [`AmcRtb`] / [`AmcMax`] — fixed-priority Adaptive Mixed-Criticality
//!   response-time analyses of Baruah, Burns & Davis (RTSS 2011).
//! * [`classic`] — plain (non-MC) EDF and fixed-priority baselines.
//!
//! Every test implements the object-safe [`SchedulabilityTest`] trait, so
//! partitioning strategies in `mcsched-core` can treat them uniformly.
//!
//! ## One-shot vs incremental
//!
//! The tests are usable through two layers:
//!
//! * **one-shot** — [`SchedulabilityTest::is_schedulable`] analyses a
//!   whole task set from scratch; use it when a set is judged once.
//! * **incremental** — the admission layer of [`incremental`]
//!   ([`IncrementalTest`] / [`AdmissionState`]): a stateful per-processor
//!   object that remembers the committed tasks and the reusable parts of
//!   the last analysis, so partitioning inner loops pay only for what a
//!   candidate task adds (O(1) closed forms for EDF-VD, a warm
//!   [`demand::DemandKernel`] with O(1) overload rejection for EY/ECDF,
//!   warm-started response-time
//!   fixed points for AMC). Admission verdicts are *exactly* the one-shot
//!   verdicts on the union — incremental partitions are bit-identical to
//!   clone-and-retest ones. Tests without a native state fall back to the
//!   clone-and-retest bridge ([`OneShot`] forces it explicitly).
//!
//! All arithmetic is exact over integer ticks ([`mcsched_model::Time`]);
//! floating point only appears in the closed-form EDF-VD utilization test,
//! where it mirrors the published test statement.
//!
//! ## Example
//!
//! ```
//! use mcsched_model::{Task, TaskSet};
//! use mcsched_analysis::{EdfVd, Ecdf, AmcMax, SchedulabilityTest};
//!
//! # fn main() -> Result<(), mcsched_model::ModelError> {
//! let ts = TaskSet::try_from_tasks(vec![
//!     Task::hi(0, 10, 2, 4)?,
//!     Task::lo(1, 20, 6)?,
//! ])?;
//!
//! assert!(EdfVd::new().is_schedulable(&ts));
//! assert!(Ecdf::new().is_schedulable(&ts));
//! assert!(AmcMax::new().is_schedulable(&ts));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amc;
pub mod classic;
pub mod dbf;
pub mod demand;
pub mod edfvd;
pub mod incremental;
pub mod sufficient;
pub mod vdtune;
pub mod workspace;

pub use amc::{AmcMax, AmcRtb, AmcState, LoRta};
pub use classic::{ClassicEdf, ClassicFp};
pub use dbf::{DemandCheck, DemandCurve, VdTask};
pub use demand::{DemandKernel, QpaCounters, TaskDemand};
pub use edfvd::{EdfVd, EdfVdState};
pub use incremental::{
    AdmissionState, AdmissionStats, CloneRetestState, IncrementalTest, OneShot, OneShotState,
    SessionTest,
};
pub use sufficient::{FastRule, FastState};
pub use vdtune::{Ecdf, Ey, VdAssignment, VdTuneState};
pub use workspace::{AnalysisWorkspace, PooledWorkspace, WorkspaceRef};

use mcsched_model::TaskSet;

/// A uniprocessor schedulability test for dual-criticality task sets.
///
/// Implementations answer "can this task set be scheduled on one unit-speed
/// processor by the associated algorithm?". Partitioning strategies call
/// [`is_schedulable`](SchedulabilityTest::is_schedulable) on the candidate
/// contents of each processor before committing an allocation (the paper's
/// Algorithm 1, line 5).
///
/// The trait is object-safe; partitioners hold `&dyn SchedulabilityTest`.
pub trait SchedulabilityTest {
    /// A short human-readable name, e.g. `"EDF-VD"`.
    fn name(&self) -> &'static str;

    /// Returns `true` if the task set is deemed schedulable on one
    /// processor by this test.
    ///
    /// Tests are *sufficient*: `true` means guaranteed schedulable under the
    /// test's assumptions, `false` means "not proven schedulable".
    fn is_schedulable(&self, ts: &TaskSet) -> bool;

    /// As [`is_schedulable`](SchedulabilityTest::is_schedulable), over
    /// caller-supplied scratch buffers.
    ///
    /// The native tests route their whole analysis through the workspace,
    /// so a caller that reuses one across many calls (the experiment
    /// engine's per-worker evaluators, the partitioning inner loop) pays
    /// **zero steady-state allocations**; the verdict is always identical
    /// to `is_schedulable`. The default ignores the workspace and runs the
    /// plain one-shot test, so foreign tests are unaffected.
    fn is_schedulable_in(&self, ts: &TaskSet, ws: &mut AnalysisWorkspace) -> bool {
        let _ = ws;
        self.is_schedulable(ts)
    }

    /// Creates an empty per-processor admission state (the stateful layer
    /// of [`incremental`]).
    ///
    /// The default is the clone-and-retest bridge — exactly the seed
    /// behaviour of the paper's Algorithm 1, one full analysis per query.
    /// The five native tests override this with states whose admissions
    /// are exactly equivalent but reuse cached per-processor work; see
    /// [`IncrementalTest`] for the typed interface.
    fn admission_state(&self) -> Box<dyn AdmissionState + '_> {
        Box::new(CloneRetestState::new(self))
    }

    /// As [`admission_state`](SchedulabilityTest::admission_state), with
    /// the state's scratch buffers shared through `ws`.
    ///
    /// `Partition::build_reporting` passes one [`WorkspaceRef`] to all `m`
    /// per-processor states of a run, so the whole build shares a single
    /// set of scratch buffers and the admission path allocates nothing in
    /// steady state. Verdicts are identical to `admission_state` — the
    /// workspace holds scratch only. The default ignores `ws`.
    fn admission_state_in(&self, ws: &WorkspaceRef) -> Box<dyn AdmissionState + '_> {
        let _ = ws;
        self.admission_state()
    }
}

impl<T: SchedulabilityTest + ?Sized> SchedulabilityTest for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn is_schedulable(&self, ts: &TaskSet) -> bool {
        (**self).is_schedulable(ts)
    }
    fn is_schedulable_in(&self, ts: &TaskSet, ws: &mut AnalysisWorkspace) -> bool {
        (**self).is_schedulable_in(ts, ws)
    }
    fn admission_state(&self) -> Box<dyn AdmissionState + '_> {
        (**self).admission_state()
    }
    fn admission_state_in(&self, ws: &WorkspaceRef) -> Box<dyn AdmissionState + '_> {
        (**self).admission_state_in(ws)
    }
}

impl<T: SchedulabilityTest + ?Sized> SchedulabilityTest for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn is_schedulable(&self, ts: &TaskSet) -> bool {
        (**self).is_schedulable(ts)
    }
    fn is_schedulable_in(&self, ts: &TaskSet, ws: &mut AnalysisWorkspace) -> bool {
        (**self).is_schedulable_in(ts, ws)
    }
    fn admission_state(&self) -> Box<dyn AdmissionState + '_> {
        (**self).admission_state()
    }
    fn admission_state_in(&self, ws: &WorkspaceRef) -> Box<dyn AdmissionState + '_> {
        (**self).admission_state_in(ws)
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;
    use mcsched_model::Task;

    #[test]
    fn trait_objects_work() {
        let ts = TaskSet::try_from_tasks(vec![Task::lo(0, 10, 1).unwrap()]).unwrap();
        let tests: Vec<Box<dyn SchedulabilityTest>> = vec![
            Box::new(EdfVd::new()),
            Box::new(Ey::new()),
            Box::new(Ecdf::new()),
            Box::new(AmcRtb::new()),
            Box::new(AmcMax::new()),
        ];
        for t in &tests {
            assert!(t.is_schedulable(&ts), "{} rejected a trivial set", t.name());
        }
    }

    #[test]
    fn blanket_impls() {
        let ts = TaskSet::try_from_tasks(vec![Task::lo(0, 10, 1).unwrap()]).unwrap();
        let t = EdfVd::new();
        let by_ref: &dyn SchedulabilityTest = &&t;
        assert!(by_ref.is_schedulable(&ts));
        assert_eq!(by_ref.name(), "EDF-VD");
        let boxed: Box<dyn SchedulabilityTest> = Box::new(EdfVd::new());
        assert!(boxed.is_schedulable(&ts));
    }
}
