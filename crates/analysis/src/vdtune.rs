//! Virtual-deadline tuning and the EY / ECDF schedulability tests.
//!
//! Both tests share the demand-bound machinery of [`crate::dbf`] and differ
//! in how hard they search for a feasible per-task virtual-deadline
//! assignment `{Vi}`:
//!
//! * [`Ey`] — a single-start greedy tuner in the spirit of Ekberg & Yi
//!   (ECRTS 2012): start from `Vi = Di`, and while the high-mode check
//!   fails at some witness `t*`, tighten the one virtual deadline whose
//!   adjustment most reduces the high-mode demand at `t*`, subject to the
//!   low-mode check staying satisfied.
//! * [`Ecdf`] — Easwaran's ECDF (RTSS 2013) reconstructed as the same
//!   framework with a strictly stronger assignment search: a slack-seeded
//!   multi-start, richer tightening moves (including the
//!   *earliest-carry-over-deadline-first* seeding that gives the algorithm
//!   its name), and a final fallback to [`Ey`]'s exact procedure, which
//!   makes dominance (`Ey` accepts ⇒ `Ecdf` accepts) structural.
//!
//! **Reconstruction note** (also recorded in `DESIGN.md`): the original
//! ECDF paper derives a tighter carry-over demand bound; its exact form is
//! not reproducible from the DATE 2017 text alone, and a plausible
//! window-capped variant turns out to be unsound (it can hide a violation
//! when `di < C^H_i − C^L_i`). We therefore keep the sound Ekberg–Yi bound
//! for both tests and realise ECDF's documented schedulability advantage
//! through assignment search, which preserves the orderings the DATE 2017
//! evaluation relies on (`ECDF ⊇ EY`, with a visible gap).

use crate::dbf::{self, DemandCheck, VdTask};
use crate::demand::DemandKernel;
use crate::incremental::{AdmissionState, AdmissionStats, Committed, IncrementalTest};
use crate::workspace::{AnalysisWorkspace, WorkspaceRef};
use crate::SchedulabilityTest;
use mcsched_model::{SystemUtilization, Task, TaskId, TaskSet, Time};

/// A feasible virtual-deadline assignment produced by a tuner.
///
/// Holds one [`VdTask`] per input task, in task-set order. The runtime
/// simulator uses this to drive EDF with virtual deadlines.
#[derive(Debug, Clone, PartialEq)]
pub struct VdAssignment {
    tasks: Vec<VdTask>,
}

impl VdAssignment {
    /// The tasks with their virtual deadlines, in task-set order.
    pub fn as_slice(&self) -> &[VdTask] {
        &self.tasks
    }

    /// The virtual deadline assigned to the `idx`-th task of the input set.
    pub fn virtual_deadline(&self, idx: usize) -> Option<Time> {
        self.tasks.get(idx).map(|vt| vt.vd)
    }

    /// Consumes the assignment, returning the underlying pairs.
    pub fn into_vec(self) -> Vec<VdTask> {
        self.tasks
    }
}

/// How much search effort a tuner invests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Effort {
    /// Maximum greedy rounds per start.
    max_rounds: usize,
    /// Use the bisection and minimal-slack candidate moves.
    rich_moves: bool,
    /// Also try the slack-seeded start before giving up.
    slack_seeded_start: bool,
}

const EY_EFFORT: Effort = Effort {
    max_rounds: 64,
    rich_moves: false,
    slack_seeded_start: false,
};

const ECDF_EFFORT: Effort = Effort {
    max_rounds: 128,
    rich_moves: true,
    slack_seeded_start: true,
};

/// Initial assignment: every task at its real deadline.
fn untightened(ts: &TaskSet) -> Vec<VdTask> {
    ts.iter().map(|&t| VdTask::untightened(t)).collect()
}

/// Seeded assignment: every HC task pre-tightened so its carry-over job has
/// at least `C^H − C^L` slack after the switch — ordered by how early its
/// carry-over deadline would otherwise fall (tightest first), hence
/// "earliest carry-over deadline first" seeding.
fn slack_seeded(ts: &TaskSet) -> Vec<VdTask> {
    ts.iter().map(|&t| slack_seeded_task(&t)).collect()
}

/// The per-task slack-seeded entry (shared between the one-shot starts
/// and the incremental state's kernel reseeds, so seeds never diverge).
fn slack_seeded_task(t: &Task) -> VdTask {
    if t.criticality().is_high() {
        let slack = t.wcet_hi() - t.wcet_lo();
        let vd = (t.deadline() - slack).max(t.wcet_lo());
        VdTask { task: *t, vd }
    } else {
        VdTask::untightened(*t)
    }
}

/// One candidate tightening move for a HC task.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Move {
    idx: usize,
    new_vd: Time,
    gain: Time,
    /// The deadline cut `vd − new_vd` (the second sort key), filled at
    /// push time so the hot comparator never chases the task list.
    cut: Time,
}

/// Enumerates tightening moves for the task at `idx` that reduce its
/// high-mode demand at the violation witness `t_star`.
fn moves_for(tasks: &[VdTask], idx: usize, t_star: Time, rich: bool, out: &mut Vec<Move>) {
    let vt = tasks[idx];
    let task = vt.task;
    if task.criticality().is_low() {
        return;
    }
    let floor_vd = task.wcet_lo();
    if vt.vd <= floor_vd {
        return; // cannot tighten further
    }
    let current = dbf::dbf_hi(&vt, t_star);
    if current.is_zero() {
        return; // no contribution at the witness; tightening here is noise
    }
    let d = vt.dist();
    let period = task.period();
    let rel = t_star - d; // t* ≥ d because current > 0
    let k = rel.div_floor(period) + 1;
    let m = rel % period;

    let mut push = |new_vd: Time| {
        let new_vd = new_vd.max(floor_vd);
        if new_vd >= vt.vd {
            return;
        }
        let cand = VdTask { task, vd: new_vd };
        let after = dbf::dbf_hi(&cand, t_star);
        if after < current {
            out.push(Move {
                idx,
                new_vd,
                gain: current - after,
                cut: vt.vd - new_vd,
            });
        }
    };

    // Move A — push the earliest counted deadline out of the window
    // (reduces the job count k at t*): need d' > t* − (k−1)·T.
    let d_drop = t_star.saturating_sub((k - 1) * period) + Time::ONE;
    if d_drop <= task.deadline() {
        push(task.deadline() - d_drop);
    }
    // Move B — align the carry-over job so its guaranteed progress is
    // maximal (mod → 0): d' = d + m.
    if !m.is_zero() {
        push(vt.vd - m.min(vt.vd));
    }
    if rich {
        // Move C — ensure minimal overrun slack d ≥ C^H − C^L in one jump.
        let slack = task.wcet_hi() - task.wcet_lo();
        if d < slack {
            push(task.deadline() - slack.min(task.deadline()));
        }
        // Move D — bisect towards the floor to escape plateaus.
        let mid = Time::new((vt.vd.as_ticks() + floor_vd.as_ticks()) / 2);
        push(mid);
    }
}

/// [`moves_for`] over the kernel's cached lanes: the same candidate
/// moves, in the same order, with every `dbf_HI` probe and floor
/// division routed through the lane reciprocals
/// ([`DemandKernel::div_period`] / [`DemandKernel::dbf_hi_with`] are
/// bit-identical to the divisions they replace) — the move enumeration
/// no longer divides at all.
fn moves_for_kernel(
    kernel: &DemandKernel,
    idx: usize,
    t_star: Time,
    rich: bool,
    out: &mut Vec<Move>,
) {
    let vt = kernel.assignment()[idx];
    let task = vt.task;
    debug_assert!(task.criticality().is_high(), "caller walks HC positions");
    let floor_vd = task.wcet_lo();
    if vt.vd <= floor_vd {
        return; // cannot tighten further
    }
    let current = kernel.dbf_hi_with(idx, vt.vd, t_star);
    if current.is_zero() {
        return; // no contribution at the witness; tightening here is noise
    }
    let d = vt.dist();
    let period = task.period();
    let rel = t_star - d; // t* ≥ d because current > 0
    let (q, m) = kernel.div_period(idx, rel);
    let k = q + 1;

    let mut push = |new_vd: Time| {
        let new_vd = new_vd.max(floor_vd);
        if new_vd >= vt.vd {
            return;
        }
        let after = kernel.dbf_hi_with(idx, new_vd, t_star);
        if after < current {
            out.push(Move {
                idx,
                new_vd,
                gain: current - after,
                cut: vt.vd - new_vd,
            });
        }
    };

    // Move A — push the earliest counted deadline out of the window
    // (reduces the job count k at t*): need d' > t* − (k−1)·T.
    let d_drop = t_star.saturating_sub((k - 1) * period) + Time::ONE;
    if d_drop <= task.deadline() {
        push(task.deadline() - d_drop);
    }
    // Move B — align the carry-over job so its guaranteed progress is
    // maximal (mod → 0): d' = d + m.
    if !m.is_zero() {
        push(vt.vd - m.min(vt.vd));
    }
    if rich {
        // Move C — ensure minimal overrun slack d ≥ C^H − C^L in one jump.
        let slack = task.wcet_hi() - task.wcet_lo();
        if d < slack {
            push(task.deadline() - slack.min(task.deadline()));
        }
        // Move D — bisect towards the floor to escape plateaus.
        let mid = Time::new((vt.vd.as_ticks() + floor_vd.as_ticks()) / 2);
        push(mid);
    }
}

/// Greedy descent over the incremental demand kernel: each round's
/// high-mode QPA warm-resumes from the previous round's violation point
/// (every applied move only tightens demand), each candidate move is a
/// single [`DemandKernel::replace_vd`] delta-update, and the low-mode
/// feasibility of a candidate is usually answered by a memoised violation
/// anchor instead of a fresh descent. Verdicts, witnesses and applied
/// moves are exactly those of the seed descent ([`reference`]).
fn greedy_kernel(kernel: &mut DemandKernel, effort: Effort, moves: &mut Vec<Move>) -> bool {
    if !kernel.lo_feasible() {
        return false;
    }
    for _ in 0..effort.max_rounds {
        let t_star = match kernel.check_hi() {
            DemandCheck::Ok => return true,
            DemandCheck::Violation(t) => t,
            DemandCheck::Unbounded => return false,
        };
        moves.clear();
        // Only HC tasks ever produce moves (LC demand has no high-mode
        // contribution); walking the HC position list — ascending, so
        // the same enumeration order as a filtered full scan — skips
        // the LC early-outs entirely.
        for &idx in kernel.hc_positions() {
            moves_for_kernel(kernel, idx, t_star, effort.rich_moves, moves);
        }
        // Largest demand reduction first; prefer the smallest deadline cut
        // among equal gains (less low-mode damage). The task-index
        // tiebreak makes the order total for distinct moves — two moves
        // tying on (gain, cut, idx) necessarily propose the same `new_vd`
        // (cut determines it), so the never-allocating unstable sort
        // yields exactly the applied-move sequence the seed's stable sort
        // produced (ties across indices were inserted in index order).
        moves.sort_unstable_by(|a, b| {
            b.gain
                .cmp(&a.gain)
                .then_with(|| a.cut.cmp(&b.cut))
                .then_with(|| a.idx.cmp(&b.idx))
        });
        let mut applied = false;
        for mv in moves.iter() {
            let prev = kernel.assignment()[mv.idx].vd;
            kernel.replace_vd(mv.idx, mv.new_vd);
            if kernel.lo_feasible() {
                applied = true;
                break;
            }
            kernel.replace_vd(mv.idx, prev);
        }
        if !applied {
            return false;
        }
    }
    false
}

/// The structural overload rejection shared by every tuner start.
fn overloaded(ts: &TaskSet) -> bool {
    let hi_util: f64 = ts.utilization_hi_total();
    let lo_util: f64 = ts.utilization_lo_total();
    hi_util > 1.0 || lo_util > 1.0
}

/// Runs the tuner's greedy starts over the workspace's demand kernel; on
/// success the feasible assignment is left in the kernel. Same starts, in
/// the same order, as the allocating [`reference`] tuner — identical
/// verdicts and identical chosen assignments.
fn tune_in(ts: &TaskSet, effort: Effort, ws: &mut AnalysisWorkspace) -> bool {
    if overloaded(ts) {
        return false;
    }
    let AnalysisWorkspace { demand, moves, .. } = ws;
    demand.load_untightened(ts);
    if greedy_kernel(demand, effort, moves) {
        return true;
    }
    if effort.slack_seeded_start {
        // Reseed in place: the kernel's demand memos survive the start
        // switch via exact delta-updates.
        demand.reseed(|t| slack_seeded_task(t).vd);
        if greedy_kernel(demand, effort, moves) {
            return true;
        }
    }
    false
}

fn tune(ts: &TaskSet, effort: Effort) -> Option<VdAssignment> {
    AnalysisWorkspace::with(|ws| {
        tune_in(ts, effort, ws).then(|| VdAssignment {
            tasks: ws.demand.assignment().to_vec(),
        })
    })
}

/// The EY demand-bound test (Ekberg & Yi, ECRTS 2012 style).
///
/// Valid for implicit- and constrained-deadline dual-criticality sets.
/// No speed-up bound is known for this test (matching the paper's
/// discussion).
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// use mcsched_analysis::{Ey, SchedulabilityTest};
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let ts = TaskSet::try_from_tasks(vec![
///     Task::hi(0, 10, 2, 4)?,
///     Task::lo(1, 20, 8)?,
/// ])?;
/// assert!(Ey::new().is_schedulable(&ts));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ey {
    _priv: (),
}

impl Ey {
    /// Creates the test.
    pub fn new() -> Self {
        Ey { _priv: () }
    }

    /// Runs the tuner and returns the feasible virtual-deadline assignment,
    /// if one is found. The runtime simulator consumes this.
    pub fn tune(&self, ts: &TaskSet) -> Option<VdAssignment> {
        tune(ts, EY_EFFORT)
    }
}

impl SchedulabilityTest for Ey {
    fn name(&self) -> &'static str {
        "EY"
    }
    fn is_schedulable(&self, ts: &TaskSet) -> bool {
        AnalysisWorkspace::with(|ws| self.is_schedulable_in(ts, ws))
    }
    fn is_schedulable_in(&self, ts: &TaskSet, ws: &mut AnalysisWorkspace) -> bool {
        tune_in(ts, EY_EFFORT, ws)
    }
    fn admission_state(&self) -> Box<dyn AdmissionState + '_> {
        Box::new(self.new_state())
    }
    fn admission_state_in(&self, ws: &WorkspaceRef) -> Box<dyn AdmissionState + '_> {
        Box::new(VdTuneState::with_workspace(false, ws.clone()))
    }
}

impl IncrementalTest for Ey {
    type State = VdTuneState;

    fn new_state(&self) -> VdTuneState {
        VdTuneState::with_workspace(false, WorkspaceRef::new())
    }

    fn new_state_in(&self, ws: &WorkspaceRef) -> VdTuneState {
        VdTuneState::with_workspace(false, ws.clone())
    }
}

/// The ECDF demand-bound test (Easwaran, RTSS 2013 style).
///
/// Dominates [`Ey`] by construction: it tries richer tightening moves and
/// extra starting points, and finally falls back to `Ey`'s exact search.
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// use mcsched_analysis::{Ecdf, SchedulabilityTest};
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let ts = TaskSet::try_from_tasks(vec![
///     Task::hi_constrained(0, 20, 2, 6, 15)?,
///     Task::lo(1, 10, 3)?,
/// ])?;
/// assert!(Ecdf::new().is_schedulable(&ts));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ecdf {
    _priv: (),
}

impl Ecdf {
    /// Creates the test.
    pub fn new() -> Self {
        Ecdf { _priv: () }
    }

    /// Runs the tuner and returns the feasible virtual-deadline assignment,
    /// if one is found.
    pub fn tune(&self, ts: &TaskSet) -> Option<VdAssignment> {
        tune(ts, ECDF_EFFORT).or_else(|| tune(ts, EY_EFFORT))
    }
}

impl SchedulabilityTest for Ecdf {
    fn name(&self) -> &'static str {
        "ECDF"
    }
    fn is_schedulable(&self, ts: &TaskSet) -> bool {
        AnalysisWorkspace::with(|ws| self.is_schedulable_in(ts, ws))
    }
    fn is_schedulable_in(&self, ts: &TaskSet, ws: &mut AnalysisWorkspace) -> bool {
        // Same starts, in the same order, as the allocating
        // `tune(ECDF).or_else(tune(EY))` path. The overload pre-check
        // runs first so a `tune_in` failure always leaves the kernel
        // loaded with this set — the EY fallback then reseeds it back
        // to the untightened start instead of reloading, keeping the
        // demand memos warm across the fallback.
        if overloaded(ts) {
            return false;
        }
        if tune_in(ts, ECDF_EFFORT, ws) {
            return true;
        }
        let AnalysisWorkspace { demand, moves, .. } = ws;
        demand.reseed(|t| t.deadline());
        greedy_kernel(demand, EY_EFFORT, moves)
    }
    fn admission_state(&self) -> Box<dyn AdmissionState + '_> {
        Box::new(self.new_state())
    }
    fn admission_state_in(&self, ws: &WorkspaceRef) -> Box<dyn AdmissionState + '_> {
        Box::new(VdTuneState::with_workspace(true, ws.clone()))
    }
}

impl IncrementalTest for Ecdf {
    type State = VdTuneState;

    fn new_state(&self) -> VdTuneState {
        VdTuneState::with_workspace(true, WorkspaceRef::new())
    }

    fn new_state_in(&self, ws: &WorkspaceRef) -> VdTuneState {
        VdTuneState::with_workspace(true, ws.clone())
    }
}

/// Incremental admission for the demand-bound tests ([`Ey`] / [`Ecdf`]).
///
/// The state keeps, per committed processor:
///
/// * the running high-mode and low-mode utilization sums, so structurally
///   overloaded candidates are rejected in **O(1)** (exactly the fast
///   rejection `tune` performs, minus the O(n) re-summation);
/// * a **warm [`DemandKernel`]** holding the untightened assignment of
///   the committed tasks. A probe pushes the candidate
///   ([`DemandKernel::push_task`]), runs the greedy starts in place
///   (reseeding between starts via exact delta-updates), then restores
///   the untightened assignment and pops — so the kernel's demand memos
///   survive from probe to probe, and a candidate whose low-mode demand
///   trips a previously memoised violation anchor is rejected without
///   any QPA descent;
/// * the utilization summary the partitioning fit rules read.
///
/// Verdicts stay exactly those of the one-shot tuner: the greedy descent
/// itself runs unchanged on the same seeds (its trajectory depends on
/// the full task set, so reusing a *tuned* assignment as a warm start
/// could accept sets the one-shot heuristic rejects — which would break
/// the bit-identical partition guarantee). The kernel's memo and resume
/// shortcuts never change a check's answer (see [`crate::demand`]).
#[derive(Debug)]
pub struct VdTuneState {
    committed: Committed,
    hi_util: f64,
    lo_util: f64,
    ecdf: bool,
    /// The warm demand kernel: holds `untightened(committed)` between
    /// probes; owned (not workspace-shared) so its memoised state is
    /// never clobbered by other processors' states.
    kernel: DemandKernel,
    /// Shared workspace for the per-round candidate-move buffer.
    ws: WorkspaceRef,
}

impl VdTuneState {
    fn with_workspace(ecdf: bool, ws: WorkspaceRef) -> Self {
        VdTuneState {
            committed: Committed::default(),
            hi_util: 0.0,
            lo_util: 0.0,
            ecdf,
            kernel: DemandKernel::new(),
            ws,
        }
    }

    /// Rebuilds every cache from the committed tasks (after a removal).
    fn resync(&mut self) {
        let ts = &self.committed.tasks;
        self.hi_util = ts.utilization_hi_total();
        self.lo_util = ts.utilization_lo_total();
        self.kernel.load_untightened(ts);
    }
}

impl AdmissionState for VdTuneState {
    fn try_admit(&mut self, task: &Task) -> bool {
        // The structural rejection of `tune`, from running sums: the
        // candidate terms append last, exactly as a fresh left-to-right
        // summation over the union would add them.
        let hi_util = if task.criticality().is_high() {
            self.hi_util + task.utilization_hi()
        } else {
            self.hi_util
        };
        let lo_util = self.lo_util + task.utilization_lo();
        if hi_util > 1.0 || lo_util > 1.0 {
            self.committed.record(true, false);
            return false;
        }
        // Same greedy starts, in the same order, as the one-shot
        // `tune(ECDF).or_else(tune(EY))` / `tune(EY)` path — over the
        // state's warm kernel: push the candidate, tune in place,
        // restore, pop. The memos carry across probes.
        let mut ws = self.ws.borrow_mut();
        let moves = &mut ws.moves;
        let kernel = &mut self.kernel;
        kernel.push_task(VdTask::untightened(*task));
        let ok = if self.ecdf {
            greedy_kernel(kernel, ECDF_EFFORT, moves)
                || {
                    kernel.reseed(|t| slack_seeded_task(t).vd);
                    greedy_kernel(kernel, ECDF_EFFORT, moves)
                }
                || {
                    kernel.reseed(|t| t.deadline());
                    greedy_kernel(kernel, EY_EFFORT, moves)
                }
        } else {
            greedy_kernel(kernel, EY_EFFORT, moves)
        };
        // Restore the between-probe invariant: untightened committed
        // assignment (exact delta-updates keep the memos warm).
        kernel.reseed(|t| t.deadline());
        let _ = kernel.pop_task();
        drop(ws);
        self.committed.record(false, ok);
        ok
    }

    fn commit(&mut self, task: Task) {
        if task.criticality().is_high() {
            self.hi_util += task.utilization_hi();
        }
        self.lo_util += task.utilization_lo();
        self.kernel.push_task(VdTask::untightened(task));
        self.committed.push(task);
    }

    fn remove(&mut self, id: TaskId) -> bool {
        if self.committed.remove(id).is_none() {
            return false;
        }
        self.resync();
        true
    }

    fn summary(&self) -> SystemUtilization {
        self.committed.summary
    }

    fn tasks(&self) -> &TaskSet {
        &self.committed.tasks
    }

    fn take_tasks(&mut self) -> TaskSet {
        let tasks = self.committed.take();
        self.hi_util = 0.0;
        self.lo_util = 0.0;
        self.kernel.clear();
        tasks
    }

    fn stats(&self) -> AdmissionStats {
        // Surface the kernel's fixpoint-reuse counters alongside the
        // admission counters (the `mcexp --ablation` table reads these).
        let mut stats = self.committed.stats;
        let qpa = self.kernel.counters();
        stats.qpa_cold = qpa.cold;
        stats.qpa_resumed = qpa.resumed;
        stats.qpa_anchor_hits = qpa.anchor_hits;
        stats
    }
}

/// Seed (allocating) EY / ECDF tuner retained **verbatim** as the
/// equivalence reference for the workspace-backed hot path — the
/// counterpart of [`crate::amc::reference`].
///
/// The `BENCH_analysis.json` artifact (`mcexp --analysis-json`) and the
/// equivalence suites compare against these; nothing on the hot path
/// calls them.
#[doc(hidden)]
pub mod reference {
    use super::*;

    /// The seed greedy descent: owns its working vector, allocates a move
    /// list per call, stable-sorts moves on the original two-key
    /// comparator (the order the hot path's totalised unstable sort
    /// reproduces exactly), and runs the flat per-call demand checks of
    /// [`dbf::reference`] — the full seed stack, end to end.
    fn greedy(mut tasks: Vec<VdTask>, effort: Effort) -> Option<Vec<VdTask>> {
        if !dbf::reference::check_lo_mode(&tasks).is_ok() {
            return None;
        }
        let mut moves: Vec<Move> = Vec::new();
        for _ in 0..effort.max_rounds {
            let t_star = match dbf::reference::check_hi_mode(&tasks) {
                DemandCheck::Ok => return Some(tasks),
                DemandCheck::Violation(t) => t,
                DemandCheck::Unbounded => return None,
            };
            moves.clear();
            for idx in 0..tasks.len() {
                moves_for(&tasks, idx, t_star, effort.rich_moves, &mut moves);
            }
            moves.sort_by(|a, b| {
                b.gain
                    .cmp(&a.gain)
                    .then_with(|| (tasks[a.idx].vd - a.new_vd).cmp(&(tasks[b.idx].vd - b.new_vd)))
            });
            let mut applied = false;
            for mv in &moves {
                let prev = tasks[mv.idx].vd;
                tasks[mv.idx].vd = mv.new_vd;
                if dbf::reference::check_lo_mode(&tasks).is_ok() {
                    applied = true;
                    break;
                }
                tasks[mv.idx].vd = prev;
            }
            if !applied {
                return None;
            }
        }
        None
    }

    /// The seed `tune`: fresh start vectors per attempt.
    fn tune(ts: &TaskSet, effort: Effort) -> Option<Vec<VdTask>> {
        let hi_util: f64 = ts.utilization_hi_total();
        let lo_util: f64 = ts.utilization_lo_total();
        if hi_util > 1.0 || lo_util > 1.0 {
            return None;
        }
        if let Some(found) = greedy(untightened(ts), effort) {
            return Some(found);
        }
        if effort.slack_seeded_start {
            if let Some(found) = greedy(slack_seeded(ts), effort) {
                return Some(found);
            }
        }
        None
    }

    /// The seed EY verdict.
    pub fn ey_is_schedulable(ts: &TaskSet) -> bool {
        tune(ts, EY_EFFORT).is_some()
    }

    /// The seed ECDF verdict (ECDF starts, then the EY fallback).
    pub fn ecdf_is_schedulable(ts: &TaskSet) -> bool {
        tune(ts, ECDF_EFFORT).is_some() || tune(ts, EY_EFFORT).is_some()
    }

    /// The seed EY assignment — the tuner-chosen `{Vi}` the kernel-backed
    /// [`Ey::tune`] must reproduce bit-identically.
    pub fn ey_tune(ts: &TaskSet) -> Option<Vec<VdTask>> {
        tune(ts, EY_EFFORT)
    }

    /// The seed ECDF assignment (ECDF starts, then the EY fallback).
    pub fn ecdf_tune(ts: &TaskSet) -> Option<Vec<VdTask>> {
        tune(ts, ECDF_EFFORT).or_else(|| tune(ts, EY_EFFORT))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsched_model::Task;

    fn set(tasks: Vec<Task>) -> TaskSet {
        TaskSet::try_from_tasks(tasks).unwrap()
    }

    #[test]
    fn workspace_tuner_matches_seed_reference_on_grid() {
        for t1 in [8u64, 10, 14, 20] {
            for c1 in [1u64, 2, 3, 5] {
                for h1 in [c1 + 1, c1 + 3] {
                    for c2 in [2u64, 4, 6] {
                        if h1 > t1 {
                            continue;
                        }
                        let ts = set(vec![
                            Task::hi(0, t1, c1, h1).unwrap(),
                            Task::lo(1, 12, c2).unwrap(),
                            Task::hi(2, 30, 2, 6).unwrap(),
                        ]);
                        assert_eq!(
                            Ey::new().is_schedulable(&ts),
                            reference::ey_is_schedulable(&ts),
                            "EY diverged from seed on {ts}"
                        );
                        assert_eq!(
                            Ecdf::new().is_schedulable(&ts),
                            reference::ecdf_is_schedulable(&ts),
                            "ECDF diverged from seed on {ts}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lc_only_accepts_up_to_full_utilization() {
        let ts = set(vec![
            Task::lo(0, 10, 5).unwrap(),
            Task::lo(1, 10, 5).unwrap(),
        ]);
        assert!(Ey::new().is_schedulable(&ts));
        assert!(Ecdf::new().is_schedulable(&ts));
        let over = set(vec![
            Task::lo(0, 10, 6).unwrap(),
            Task::lo(1, 10, 5).unwrap(),
        ]);
        assert!(!Ey::new().is_schedulable(&over));
        assert!(!Ecdf::new().is_schedulable(&over));
    }

    #[test]
    fn single_hc_task_needs_tightening_and_gets_it() {
        let ts = set(vec![Task::hi(0, 10, 2, 5).unwrap()]);
        let a = Ey::new().tune(&ts).expect("EY should tune one HC task");
        let vd = a.virtual_deadline(0).unwrap();
        // The tuned virtual deadline must leave enough overrun slack.
        assert!(vd <= Time::new(7), "vd = {vd}");
        assert!(vd >= Time::new(2));
    }

    #[test]
    fn tuned_assignment_passes_both_checks() {
        let ts = set(vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::hi(1, 20, 3, 8).unwrap(),
            Task::lo(2, 25, 5).unwrap(),
        ]);
        for assignment in [Ey::new().tune(&ts), Ecdf::new().tune(&ts)] {
            let a = assignment.expect("tunable");
            assert!(dbf::check_lo_mode(a.as_slice()).is_ok());
            assert!(dbf::check_hi_mode(a.as_slice()).is_ok());
            // LC tasks keep their real deadlines; HC are within bounds.
            for vt in a.as_slice() {
                if vt.task.criticality().is_low() {
                    assert_eq!(vt.vd, vt.task.deadline());
                } else {
                    assert!(vt.vd >= vt.task.wcet_lo());
                    assert!(vt.vd <= vt.task.deadline());
                }
            }
        }
    }

    #[test]
    fn overload_rejected() {
        let ts = set(vec![
            Task::hi(0, 10, 4, 9).unwrap(),
            Task::hi(1, 10, 4, 9).unwrap(),
        ]);
        assert!(!Ey::new().is_schedulable(&ts));
        assert!(!Ecdf::new().is_schedulable(&ts));
    }

    #[test]
    fn ecdf_dominates_ey_structurally() {
        // Random-ish grid of small sets: wherever EY accepts, ECDF must too.
        let mut checked = 0usize;
        for t1 in [8u64, 10, 14] {
            for c1 in [1u64, 2, 3] {
                for h1 in [c1 + 1, c1 + 3] {
                    for c2 in [2u64, 4] {
                        if h1 > t1 {
                            continue;
                        }
                        let ts = set(vec![
                            Task::hi(0, t1, c1, h1).unwrap(),
                            Task::lo(1, 12, c2).unwrap(),
                        ]);
                        if Ey::new().is_schedulable(&ts) {
                            assert!(
                                Ecdf::new().is_schedulable(&ts),
                                "ECDF rejected an EY-accepted set: {ts}"
                            );
                        }
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 20);
    }

    #[test]
    fn constrained_deadlines_handled() {
        let ts = set(vec![
            Task::hi_constrained(0, 20, 2, 6, 12).unwrap(),
            Task::lo_constrained(1, 15, 3, 10).unwrap(),
        ]);
        assert!(Ecdf::new().is_schedulable(&ts));
        // A much tighter HC deadline leaves no tuning room.
        let tight = set(vec![
            Task::hi_constrained(0, 20, 5, 6, 6).unwrap(),
            Task::lo_constrained(1, 15, 9, 10).unwrap(),
        ]);
        assert!(!Ecdf::new().is_schedulable(&tight));
    }

    #[test]
    fn empty_set_accepted() {
        assert!(Ey::new().is_schedulable(&TaskSet::new()));
        assert!(Ecdf::new().is_schedulable(&TaskSet::new()));
    }

    #[test]
    fn names() {
        assert_eq!(Ey::new().name(), "EY");
        assert_eq!(Ecdf::new().name(), "ECDF");
    }

    #[test]
    fn equal_budget_hc_task_trivial() {
        // C^L = C^H: no overrun possible; untightened start passes
        // immediately if utilization fits.
        let ts = set(vec![
            Task::hi(0, 10, 5, 5).unwrap(),
            Task::lo(1, 10, 4).unwrap(),
        ]);
        let a = Ey::new().tune(&ts).expect("no tuning needed");
        assert_eq!(a.virtual_deadline(0).unwrap(), Time::new(10));
    }

    #[test]
    fn incremental_states_match_one_shot_exactly() {
        let sequence = vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::lo(1, 20, 8).unwrap(),
            Task::hi_constrained(2, 20, 2, 6, 15).unwrap(),
            Task::lo_constrained(3, 15, 3, 10).unwrap(),
            Task::hi(4, 12, 3, 8).unwrap(),
            Task::lo(5, 10, 6).unwrap(),
        ];
        let ey = Ey::new();
        let ecdf = Ecdf::new();
        let one_shot = |test: &dyn SchedulabilityTest, committed: &TaskSet, t: &Task| {
            let mut union = committed.clone();
            union.push_unchecked(*t);
            test.is_schedulable(&union)
        };
        for (test, mut state) in [
            (&ey as &dyn SchedulabilityTest, ey.new_state()),
            (&ecdf as &dyn SchedulabilityTest, ecdf.new_state()),
        ] {
            for t in &sequence {
                let expected = one_shot(test, state.tasks(), t);
                assert_eq!(state.try_admit(t), expected, "{} on {t}", test.name());
                if expected {
                    state.commit(*t);
                }
            }
            // Remove + retry stays in sync after the cache resync.
            let first = *state.tasks().iter().next().unwrap();
            assert!(state.remove(first.id()));
            let expected = one_shot(test, state.tasks(), &first);
            assert_eq!(state.try_admit(&first), expected);
            // O(1) overload rejection is counted as incremental.
            let impossible = Task::lo(99, 10, 10).unwrap();
            assert!(!state.try_admit(&impossible));
            assert!(state.stats().incremental >= 1);
        }
    }

    #[test]
    fn assignment_accessors() {
        let ts = set(vec![Task::hi(0, 10, 2, 5).unwrap()]);
        let a = Ecdf::new().tune(&ts).unwrap();
        assert_eq!(a.as_slice().len(), 1);
        assert!(a.virtual_deadline(0).is_some());
        assert!(a.virtual_deadline(7).is_none());
        let v = a.clone().into_vec();
        assert_eq!(v.len(), 1);
    }
}
