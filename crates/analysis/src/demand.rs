// mclint: hot-path
//! The **incremental demand kernel**: memoised, warm-startable QPA for
//! the EY / ECDF demand stack.
//!
//! The virtual-deadline tuners ([`crate::vdtune`]) and the admission
//! layer ([`crate::incremental`]) call the demand checks of
//! [`crate::dbf`] in tight loops where successive checks differ by a
//! *single task's* virtual deadline (one greedy tightening move, possibly
//! reverted) or by one pushed / popped task (an admission probe). The
//! flat `total_dbf_* + qpa_check` API throws that structure away: every
//! probe re-runs the full descending QPA fixpoint from the busy-window
//! bound, re-summing `dbf_LO` / `dbf_HI` over all tasks at every jump
//! point. A [`DemandKernel`] instead *owns* the assignment and keeps
//! enough exact state to answer the next check from the previous one.
//!
//! ## What the kernel caches
//!
//! * **SoA demand lanes** ([`DemandSoa`]) — the
//!   `(C^L, C^H, T, V, d = D − V)` terms of the Ekberg–Yi demand bounds
//!   as contiguous `u64` lanes plus precomputed `⌊2^64/T⌋` reciprocals,
//!   so each `Σ dbf` evaluation is a branch-free lane sweep (floor
//!   division by multiplication, no struct chasing) and the high-mode
//!   sum iterates a compacted HC-only lane view (one HC-subset copy
//!   path, shared by every public entry point). When the assignment
//!   carries the demand fast-kernel certificate (see
//!   [`DemandSoa::fast`] in [`crate::workspace`]) and a descent starts
//!   below `2^32`, the sweeps run the `const FAST` route: plain
//!   arithmetic and no-fixup reciprocal floors, provably equal to the
//!   guarded saturating route ([`TaskDemand`] remains the scalar
//!   per-task view used for memo deltas). The batching that pays is
//!   per *point* — one branch-free pass over all lanes; speculative
//!   multi-point ladder passes were benchmarked a net loss (see
//!   [`DemandKernel::descend_fast`]).
//! * **Violation anchors** — a bounded set of exact `(t, Σ dbf_LO(t))`
//!   pairs at instants where earlier QPA descents found demand exceeding
//!   supply. All memo arithmetic is integer ([`mcsched_model::Time`]),
//!   so the values are *exact*, never approximations.
//! * **Running utilization sums** — `Σ C^L/T` and `Σ_HC C^H/T` in
//!   insertion order. Virtual deadlines never enter them, so tuner moves
//!   leave them untouched; appends accumulate onto the running value,
//!   which is bit-identical to the fresh left-to-right summation the
//!   seed performs.
//! * **Warm-resume state** for the high-mode QPA — the previous
//!   fixpoint outcome plus a snapshot of the virtual deadlines it was
//!   computed for.
//!
//! ## Delta-update contract
//!
//! The mutating operations keep every cached value exact:
//!
//! * [`replace_vd(i, v)`](DemandKernel::replace_vd) — changes one task's
//!   virtual deadline. Each memoised `(t, h)` pair is updated by the
//!   *integer* delta `h ← h − dbf(τi, v_old, t) + dbf(τi, v_new, t)`,
//!   which is exact (no floating point is ever memoised), so memo
//!   entries remain true demand sums for the *current* assignment.
//! * [`push_task`](DemandKernel::push_task) / [`pop_task`](DemandKernel::pop_task)
//!   — append / remove the last task, delta-updating every memo entry by
//!   that task's contribution. `pop_task` is LIFO by design: the
//!   admission layer probes `committed ∪ {candidate}` and pops the
//!   candidate afterwards, keeping the kernel warm across probes.
//! * [`reseed`](DemandKernel::reseed) — bulk-retargets every virtual
//!   deadline through `replace_vd`, so switching tuner starts
//!   (untightened → slack-seeded → untightened) preserves the memos.
//!
//! ## Why the shortcuts cannot change a verdict
//!
//! The kernel's answers are pinned bit-identical to the retained seed
//! implementations ([`crate::dbf::reference`]) by `tests/demand_kernel.rs`;
//! the arguments are:
//!
//! * **QPA reports the maximum violation.** For a nondecreasing demand
//!   function, the descending fixpoint can never skip past the largest
//!   `t` with `h(t) > t`: clearing an interval `(h(t), t]` requires
//!   `h(t') ≤ h(t) < t'` for every point in it, which contradicts a
//!   violation inside. So the reported witness is independent of the
//!   descent's start point (any start at or above the maximum violation
//!   gives the same result) — which is what makes warm resume exact.
//! * **Tightening only shrinks high-mode demand.** `dbf_HI` is
//!   nonincreasing in `d = D − V` (when the carry-over job's guaranteed
//!   progress drops by up to `C^L`, the job count `k` drops by one and
//!   `C^H ≥ C^L` covers the difference), and the busy-window bound
//!   shrinks with it. Hence when every virtual deadline moved only
//!   *down* since the last high-mode check, the previously cleared
//!   region stays clear: a previous `Ok` is still `Ok`, and a previous
//!   violation point is a valid resume start whose descent finds the
//!   same maximum violation a cold descent would.
//! * **Anchors are sound unconditionally.** A memo entry with
//!   `h(t) > t` is a genuine violation of the *current* assignment
//!   (memo values are exact), so the boolean fast path
//!   [`lo_feasible`](DemandKernel::lo_feasible) may answer
//!   "infeasible" without any descent — with `U < 1` the reference
//!   QPA provably finds a violation too, so the booleans agree.
//!   Anchors are only ever a shortcut to *reject*; `Ok` is always
//!   decided by a full (memo-assisted, value-exact) descent. An anchor
//!   violation even dispenses with the busy-window bound: the memoised
//!   `h(t) > t` is a deadline-miss witness outright whenever `U < 1`,
//!   so the boolean path returns before summing the start bound.
//!
//! The one theoretical divergence is the QPA iteration budget
//! (`QPA_BUDGET` = 100 000): a resumed descent takes a different number
//! of steps than a cold one, so a set that exhausts the budget on one
//! path but not the other could differ. Typical descents take well under
//! 100 steps; the equivalence suites pin the corpus empirically.

use crate::amc::{df_fast, df_inv};
#[cfg(test)]
use crate::dbf;
use crate::dbf::{DemandCheck, VdTask, QPA_BUDGET, UTIL_EPS};
use crate::workspace::DemandSoa;
use mcsched_model::{Task, TaskSet, Time};

/// Maximum memoised low-mode violation anchors. Recording past this
/// overwrites round-robin, so the buffer never grows beyond a fixed
/// high-water mark (zero steady-state allocations).
const ANCHOR_CAP: usize = 8;

/// QPA starts above this are meaningless (demand evaluation itself
/// would overflow `u64` long before); a busy-window bound that rounds
/// past it is treated as unbounded (typed early-reject) instead of
/// descending from a saturated horizon.
const MAX_QPA_START: f64 = (1u64 << 63) as f64;

/// Evaluation instants below this bound are licensed for the `const
/// FAST` demand sweeps whenever the assignment carries the
/// [`DemandSoa::fast`] certificate: with every parameter below `2^32`
/// and `t < 2^32`, every floor operand pair satisfies `(t − V)·T < 2^64`
/// (no-fixup reciprocal floors are exact) and every lane sum stays
/// within the certified demand budget (plain arithmetic cannot
/// overflow). A QPA descent only moves down, so one check at descent
/// entry covers every instant it visits.
const CERT_T_LIM: u64 = 1 << 32;

/// Fixpoint-reuse counters: how the kernel answered its QPA queries.
///
/// Surfaced through
/// [`AdmissionStats`](crate::incremental::AdmissionStats) (the
/// `mcexp --ablation` admission table) so fixpoint reuse is observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QpaCounters {
    /// Descents started cold from the busy-window bound.
    pub cold: u64,
    /// High-mode checks answered from the previous fixpoint (resumed
    /// from the old violation point, or an instant `Ok` re-confirmed
    /// because demand only tightened).
    pub resumed: u64,
    /// Low-mode feasibility checks rejected by a memoised violation
    /// anchor without any descent.
    pub anchor_hits: u64,
}

/// Cached per-task demand-step state: everything `dbf_LO` / `dbf_HI`
/// need, pre-derived so the QPA inner loop touches one flat array.
#[derive(Debug, Clone, Copy)]
pub struct TaskDemand {
    /// Virtual (low-mode) deadline `V`.
    vd: Time,
    /// Period `T`.
    period: Time,
    /// Low-criticality budget `C^L`.
    c_lo: Time,
    /// High-criticality budget `C^H` (`= C^L` for LC tasks).
    c_hi: Time,
    /// Carry-over distance `d = D − V`.
    dist: Time,
    /// Whether the task is high-criticality (contributes to `dbf_HI`).
    hi: bool,
}

impl TaskDemand {
    /// Derives the step state of one task + virtual deadline.
    pub fn new(vt: &VdTask) -> Self {
        TaskDemand {
            vd: vt.vd,
            period: vt.task.period(),
            c_lo: vt.task.wcet_lo(),
            c_hi: vt.task.wcet_hi(),
            dist: vt.task.deadline() - vt.vd,
            hi: vt.task.criticality().is_high(),
        }
    }

    /// Low-mode demand at `t` — identical to [`crate::dbf::dbf_lo`].
    #[inline]
    pub fn lo_at(&self, t: Time) -> Time {
        if t < self.vd {
            return Time::ZERO;
        }
        self.c_lo
            .saturating_mul((t - self.vd).div_floor(self.period).saturating_add(1))
    }

    /// High-mode demand at `t` — identical to [`crate::dbf::dbf_hi`] for HC
    /// tasks (the kernel never evaluates it for LC tasks).
    #[inline]
    pub fn hi_at(&self, t: Time) -> Time {
        if t < self.dist {
            return Time::ZERO;
        }
        let rel = t - self.dist;
        let k = rel.div_floor(self.period).saturating_add(1);
        let md = rel % self.period;
        let done = self.c_lo.saturating_sub(md);
        self.c_hi.saturating_mul(k).saturating_sub(done)
    }
}

/// A bounded set of exact `(t, Σ dbf_LO(t))` samples at historically
/// violated instants, kept exact for the *current* assignment through
/// integer delta-updates.
#[derive(Debug, Default)]
struct Anchors {
    entries: Vec<(Time, Time)>,
    /// Round-robin overwrite position once at capacity.
    cursor: usize,
}

impl Anchors {
    fn clear(&mut self) {
        self.entries.clear();
        self.cursor = 0;
    }

    /// Records a violated sample (values at other instants age into
    /// non-violations via the delta-updates but are kept — demand often
    /// swings back over them).
    fn record(&mut self, t: Time, h: Time) {
        if t.is_zero() {
            return; // h(0) is re-checked explicitly by every descent
        }
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == t) {
            e.1 = h;
        } else if self.entries.len() < ANCHOR_CAP {
            self.entries.push((t, h));
        } else {
            self.entries[self.cursor] = (t, h);
            self.cursor = (self.cursor + 1) % ANCHOR_CAP;
        }
    }

    /// Some memoised violation (`h > t`), if any.
    #[inline]
    fn violation(&self) -> Option<Time> {
        self.entries.iter().find(|&&(t, h)| h > t).map(|&(t, _)| t)
    }
}

/// The incremental demand kernel: owns a virtual-deadline assignment and
/// answers low- / high-mode demand checks with warm state reuse.
///
/// See the [module docs](self) for the delta-update contract and the
/// soundness arguments. Verdicts (including violation witnesses) are
/// bit-identical to the retained seed path in [`crate::dbf::reference`].
///
/// # Example
///
/// ```
/// use mcsched_analysis::demand::DemandKernel;
/// use mcsched_analysis::dbf::{self, VdTask};
/// use mcsched_model::{Task, Time};
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let mut kernel = DemandKernel::new();
/// kernel.push_task(VdTask::untightened(Task::hi(0, 10, 2, 5)?));
///
/// // Untightened HC tasks always violate the zero-length window.
/// assert_eq!(kernel.check_hi(), dbf::DemandCheck::Violation(Time::ZERO));
///
/// // Tighten the virtual deadline: the kernel delta-updates its state
/// // and the re-check matches a from-scratch analysis exactly.
/// kernel.replace_vd(0, Time::new(5));
/// assert!(kernel.check_hi().is_ok());
/// assert!(kernel.check_lo().is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct DemandKernel {
    /// The assignment, in task order.
    tasks: Vec<VdTask>,
    /// SoA demand lanes parallel to `tasks`, including the compacted
    /// HC view (the single HC-subset copy path of the demand stack) and
    /// the reversible fast-kernel certificate.
    lanes: DemandSoa,
    /// How many tasks currently have `V = T` (the implicit-deadline,
    /// untightened special case of the low-mode check).
    untight_implicit: usize,
    /// Running `Σ C^L/T` in task order. Virtual deadlines do not enter
    /// it, so it is invariant under [`replace_vd`](Self::replace_vd);
    /// appends accumulate onto the running value — exactly what a fresh
    /// left-to-right summation would produce, hence bit-identical —
    /// and removals recompute it in order.
    lo_util: f64,
    /// Running `Σ_HC C^H/T` in HC order (same discipline as `lo_util`).
    hi_util: f64,
    /// Exact low-mode demand samples at historical violation points.
    lo_anchors: Anchors,
    /// HC virtual deadlines (in HC rank order) at the last high-mode
    /// QPA, for resume validity. LC deadlines are not snapshotted:
    /// high-mode demand reads only the compacted HC lanes, so LC moves
    /// cannot perturb the memoised fixpoint.
    hi_snap: Vec<Time>,
    /// Whether `hi_snap` / `hi_prev` describe the current task list.
    hi_snap_valid: bool,
    /// Outcome of the last high-mode QPA stage (not the prelude).
    hi_prev: Option<DemandCheck>,
    /// Fixpoint-reuse counters.
    counters: QpaCounters,
}

impl DemandKernel {
    /// An empty kernel (buffers grow to the high-water mark on use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current assignment, in task order.
    #[inline]
    pub fn assignment(&self) -> &[VdTask] {
        &self.tasks
    }

    /// Number of loaded tasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when no tasks are loaded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The fixpoint-reuse counters accumulated by this kernel.
    pub fn counters(&self) -> QpaCounters {
        self.counters
    }

    /// Whether the current assignment carries the demand fast-kernel
    /// certificate (the [`crate::workspace`] module docs state the full
    /// argument). Observability for the equivalence and scale suites —
    /// verdicts never depend on which route the certificate selects.
    pub fn certified(&self) -> bool {
        self.lanes.fast()
    }

    /// Drops all tasks and memos (counters are kept — they describe the
    /// kernel's lifetime, not one assignment).
    pub fn clear(&mut self) {
        self.tasks.clear();
        self.lanes.clear();
        self.untight_implicit = 0;
        self.lo_util = 0.0;
        self.hi_util = 0.0;
        self.lo_anchors.clear();
        self.hi_snap_valid = false;
        self.hi_prev = None;
    }

    /// Replaces the contents with `tasks` (memos cleared: samples of a
    /// different set are meaningless). The lanes are rebuilt in one
    /// fused pass; the bookkeeping sums accumulate in insertion order,
    /// exactly as a sequence of [`push_task`](Self::push_task)es would.
    pub fn load(&mut self, tasks: &[VdTask]) {
        self.clear();
        self.tasks.extend_from_slice(tasks);
        self.rebuild_caches();
    }

    /// Replaces the contents with the untightened assignment of `ts`.
    pub fn load_untightened(&mut self, ts: &TaskSet) {
        self.clear();
        self.tasks
            .extend(ts.iter().map(|t| VdTask::untightened(*t)));
        self.rebuild_caches();
    }

    /// Rebuilds the lanes (one fused pass) and the bookkeeping sums
    /// from `self.tasks`. The utilization sums accumulate in insertion
    /// order — exactly what a sequence of
    /// [`push_task`](Self::push_task)es would produce, hence
    /// bit-identical to the seed's fresh left-to-right summation.
    fn rebuild_caches(&mut self) {
        self.lanes.load(&self.tasks);
        let mut lo_util = 0.0;
        let mut hi_util = 0.0;
        let mut untight = 0usize;
        for vt in &self.tasks {
            let task = &vt.task;
            lo_util += task.wcet_lo().as_f64() / task.period().as_f64();
            if task.criticality().is_high() {
                hi_util += task.wcet_hi().as_f64() / task.period().as_f64();
            }
            untight += usize::from(vt.vd == task.period());
        }
        self.lo_util = lo_util;
        self.hi_util = hi_util;
        self.untight_implicit = untight;
    }

    /// Appends a task, delta-updating every memoised demand sample by
    /// its contribution (exact integer arithmetic) and accumulating the
    /// running utilization sums in insertion order (bit-identical to a
    /// fresh left-to-right summation).
    pub fn push_task(&mut self, vt: VdTask) {
        let step = TaskDemand::new(&vt);
        for e in &mut self.lo_anchors.entries {
            e.1 += step.lo_at(e.0);
        }
        self.lo_util += step.c_lo.as_f64() / step.period.as_f64();
        if step.hi {
            self.hi_util += step.c_hi.as_f64() / step.period.as_f64();
        }
        if vt.vd == vt.task.period() {
            self.untight_implicit += 1;
        }
        self.lanes.push(&vt);
        self.tasks.push(vt);
        // The task list changed: the high-mode snapshot no longer
        // describes it (demand grew, so resume would be unsound anyway).
        self.hi_snap_valid = false;
        self.hi_prev = None;
    }

    /// Removes the **last** task (LIFO — the admission-probe pattern),
    /// delta-updating the memoised samples by its former contribution.
    /// The utilization sums are recomputed in order (floating-point
    /// subtraction is not exact; re-summation is).
    ///
    /// # Panics
    ///
    /// Panics if the kernel is empty.
    pub fn pop_task(&mut self) -> VdTask {
        let vt = self.tasks.pop().expect("pop_task on an empty kernel");
        let step = TaskDemand::new(&vt);
        self.lanes.pop();
        for e in &mut self.lo_anchors.entries {
            e.1 -= step.lo_at(e.0);
        }
        // Re-derive both utilization caches with insertion-order loops:
        // a compensated `-=` would drift from the push-path `+=`, and the
        // summation order must match a fresh build bit-for-bit (a fresh
        // left-to-right resum replays exactly the additions the running
        // value accumulated).
        let mut lo_util = 0.0;
        let mut hi_util = 0.0;
        for rest in &self.tasks {
            let task = &rest.task;
            lo_util += task.wcet_lo().as_f64() / task.period().as_f64();
            if task.criticality().is_high() {
                hi_util += task.wcet_hi().as_f64() / task.period().as_f64();
            }
        }
        self.lo_util = lo_util;
        self.hi_util = hi_util;
        if vt.vd == vt.task.period() {
            self.untight_implicit -= 1;
        }
        self.hi_snap_valid = false;
        self.hi_prev = None;
        vt
    }

    /// Sets the `idx`-th task's virtual deadline to `vd`, delta-updating
    /// every memoised demand sample by the exact integer difference.
    /// The utilization sums are untouched — they do not depend on
    /// virtual deadlines.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn replace_vd(&mut self, idx: usize, vd: Time) {
        let old = self.tasks[idx].vd;
        if old == vd {
            return;
        }
        let task = self.tasks[idx].task;
        let (cl, per, inv) = (
            self.lanes.c_lo[idx],
            self.lanes.period[idx],
            self.lanes.inv_period[idx],
        );
        let (vo, vn) = (old.as_ticks(), vd.as_ticks());
        for e in &mut self.lo_anchors.entries {
            let t = e.0.as_ticks();
            e.1 = Time::new(
                e.1.as_ticks() - lo_at_lane(cl, vo, per, inv, t) + lo_at_lane(cl, vn, per, inv, t),
            );
        }
        if old == task.period() {
            self.untight_implicit -= 1;
        }
        if vd == task.period() {
            self.untight_implicit += 1;
        }
        self.tasks[idx].vd = vd;
        self.lanes
            .set_vd(idx, vn, (task.deadline() - vd).as_ticks());
        // The high-mode snapshot stays: resume validity is decided at
        // check time by comparing against it (net tightening resumes).
    }

    /// Retargets every virtual deadline through
    /// [`replace_vd`](Self::replace_vd) (memos survive exactly).
    pub fn reseed(&mut self, mut target: impl FnMut(&Task) -> Time) {
        for i in 0..self.tasks.len() {
            let vd = target(&self.tasks[i].task);
            self.replace_vd(i, vd);
        }
    }

    /// Total low-mode demand at `t` (exact, clamped at `Time::MAX` like
    /// [`crate::dbf::total_dbf_lo`] so the two stay bit-identical).
    /// Routes to the certified `const FAST` lane sweep when licensed
    /// (plain arithmetic, provably equal to the guarded route — see the
    /// module docs and [`DemandSoa::fast`]).
    #[inline]
    fn eval_lo(&self, t: Time) -> Time {
        let tt = t.as_ticks();
        if self.lanes.fast() && tt < CERT_T_LIM {
            Time::new(self.lo_block::<true>(tt))
        } else {
            Time::new(self.lo_block::<false>(tt))
        }
    }

    /// Total high-mode demand at `t` (exact, clamped at `Time::MAX`),
    /// routed like [`eval_lo`](Self::eval_lo).
    #[inline]
    fn eval_hi(&self, t: Time) -> Time {
        let tt = t.as_ticks();
        if self.lanes.fast() && tt < CERT_T_LIM {
            Time::new(self.hi_block::<true>(tt))
        } else {
            Time::new(self.hi_block::<false>(tt))
        }
    }

    /// One `Σ dbf_LO(t)` lane sweep. The `FAST` monomorphisation uses
    /// plain arithmetic and no-fixup reciprocal floors — licensed only
    /// by the demand certificate plus `t < 2^32` (see [`CERT_T_LIM`]);
    /// the guarded route keeps the saturating forms and the exact
    /// [`df_inv`] floor, bit-identical to the seed's per-task
    /// [`crate::dbf::dbf_lo`] fold.
    fn lo_block<const FAST: bool>(&self, t: u64) -> u64 {
        let l = &self.lanes;
        let mut acc = 0u64;
        let lanes = l.vd.iter().zip(&l.period).zip(&l.inv_period).zip(&l.c_lo);
        for (((&vd, &per), &inv), &cl) in lanes {
            let rel = t.saturating_sub(vd);
            if FAST {
                let jobs = df_fast(rel, inv.wrapping_add(1)) + 1;
                acc += cl * jobs * u64::from(t >= vd);
            } else {
                let term = if t >= vd {
                    cl.saturating_mul(df_inv(rel, per, inv).saturating_add(1))
                } else {
                    0
                };
                acc = acc.saturating_add(term);
            }
        }
        acc
    }

    /// One `Σ dbf_HI(t)` sweep over the compacted HC lanes, routed like
    /// [`lo_block`](Self::lo_block). The `FAST` arm's plain
    /// `C^H·k − done` cannot underflow: `done ≤ C^L ≤ C^H ≤ C^H·k`
    /// (masked-out lanes compute `C^H − C^L ≥ 0`).
    fn hi_block<const FAST: bool>(&self, t: u64) -> u64 {
        let l = &self.lanes;
        let mut acc = 0u64;
        let lanes = l
            .hc_dist
            .iter()
            .zip(&l.hc_period)
            .zip(&l.hc_inv_period)
            .zip(&l.hc_c_lo)
            .zip(&l.hc_c_hi);
        for ((((&d, &per), &inv), &cl), &ch) in lanes {
            let rel = t.saturating_sub(d);
            if FAST {
                let q = df_fast(rel, inv.wrapping_add(1));
                let done = cl.saturating_sub(rel - q * per);
                acc += (ch * (q + 1) - done) * u64::from(t >= d);
            } else {
                let term = if t >= d {
                    let k = df_inv(rel, per, inv).saturating_add(1);
                    let done = cl.saturating_sub(rel % per);
                    ch.saturating_mul(k).saturating_sub(done)
                } else {
                    0
                };
                acc = acc.saturating_add(term);
            }
        }
        acc
    }

    /// The exact low-mode check — bit-identical to
    /// [`crate::dbf::reference::check_lo_mode`] on the current assignment
    /// (modulo the clamped horizons of the satellite fix; see
    /// [`crate::dbf::check_lo_mode`]).
    pub fn check_lo(&mut self) -> DemandCheck {
        self.lo_check(true)
    }

    /// The boolean low-mode fast path: exactly
    /// `self.check_lo().is_ok()`, but allowed to answer "infeasible"
    /// from a memoised violation anchor without a descent.
    pub fn lo_feasible(&mut self) -> bool {
        self.lo_check(false).is_ok()
    }

    fn lo_check(&mut self, exact: bool) -> DemandCheck {
        if self.tasks.is_empty() {
            return DemandCheck::Ok;
        }
        // Prelude: identical branch structure to the seed implementation,
        // over the cached (insertion-order, hence bit-identical)
        // utilization sum and the O(1) untightened-implicit counter.
        let util = self.lo_util;
        let all_implicit_untightened = self.untight_implicit == self.tasks.len();
        if util > 1.0 + UTIL_EPS {
            return DemandCheck::Violation(self.horizon_lo(util));
        }
        if util >= 1.0 - UTIL_EPS {
            return if all_implicit_untightened {
                DemandCheck::Ok
            } else {
                DemandCheck::Unbounded
            };
        }
        if all_implicit_untightened {
            return DemandCheck::Ok;
        }
        if !exact {
            // Anchor fast path: the anchors hold *exact* demand samples
            // of the current assignment (delta-maintained through every
            // mutation), so a memoised `h(t) > t` is a deadline-miss
            // witness outright — with `U < 1` the reference descent
            // cannot answer `Ok` while one exists (QPA finds some
            // violation whenever any instant violates). No start bound
            // is needed to answer the boolean question.
            if let Some(t) = self.lo_anchors.violation() {
                self.counters.anchor_hits += 1;
                return DemandCheck::Violation(t);
            }
        }
        // Insertion-order sum (verdict-bearing QPA start bound). The
        // per-task utilization comes from the cached lane — the exact
        // quotient the seed recomputes, so the sum is bit-identical.
        let mut k: f64 = 0.0;
        for (vt, &u) in self.tasks.iter().zip(self.lanes.u_lo.iter()) {
            let per = vt.task.period();
            k += u * (per - vt.vd.min(per)).as_f64();
        }
        let Some(bound) = qpa_start(k, util) else {
            return DemandCheck::Unbounded;
        };
        self.counters.cold += 1;
        let result = self.qpa(bound, Mode::Lo);
        if let DemandCheck::Violation(t) = result {
            self.lo_anchors.record(t, self.eval_lo(t));
        }
        result
    }

    /// The exact high-mode check — bit-identical to
    /// [`crate::dbf::reference::check_hi_mode`] on the current assignment, with
    /// the QPA stage warm-resumed from the previous fixpoint whenever
    /// every **HC** virtual deadline moved only down (high-mode demand
    /// only tightened) since the last check — LC deadlines never enter
    /// the high-mode demand, so they cannot invalidate the memo.
    pub fn check_hi(&mut self) -> DemandCheck {
        if self.lanes.hc_len() == 0 {
            return DemandCheck::Ok;
        }
        let util = self.hi_util;
        if util > 1.0 + UTIL_EPS {
            self.hi_snap_valid = false;
            self.hi_prev = None;
            return DemandCheck::Violation(self.horizon_hi(util));
        }
        if util >= 1.0 - UTIL_EPS {
            self.hi_snap_valid = false;
            self.hi_prev = None;
            return DemandCheck::Unbounded;
        }
        let resume = self.hi_snap_valid
            && self.hi_snap.len() == self.lanes.hc_len()
            && self
                .lanes
                .hc_pos
                .iter()
                .zip(self.hi_snap.iter())
                .all(|(&pos, &snap)| self.lanes.vd[pos] <= snap.as_ticks());
        let result = match (resume, self.hi_prev) {
            (true, Some(DemandCheck::Ok)) => {
                // Demand only tightened: the previously cleared window
                // stays clear, and h(0) can only have shrunk.
                self.counters.resumed += 1;
                DemandCheck::Ok
            }
            // A zero witness comes from the `h(0) > 0` pre-check — no
            // descent ran, nothing above it was cleared, so it is not a
            // resume point.
            (true, Some(DemandCheck::Violation(t_star))) if !t_star.is_zero() => {
                // The maximum violation can only have moved down, and
                // `h_HI` is monotone non-decreasing in `t` — so a
                // descent started at the old witness walks the chain to
                // exactly the new maximum violation (or clears to the
                // fixpoint) without ever stepping below it. No
                // busy-window bound recompute is needed: the old
                // witness already sits under the previous bound and the
                // window only shrank since.
                self.counters.resumed += 1;
                self.qpa(t_star.as_ticks(), Mode::Hi)
            }
            _ => {
                self.counters.cold += 1;
                match qpa_start(self.hi_k(), util) {
                    Some(bound) => self.qpa(bound, Mode::Hi),
                    None => {
                        self.hi_snap_valid = false;
                        self.hi_prev = None;
                        return DemandCheck::Unbounded;
                    }
                }
            }
        };
        self.hi_prev = Some(result);
        self.hi_snap.clear();
        let lanes = &self.lanes;
        self.hi_snap
            .extend(lanes.hc_pos.iter().map(|&p| Time::new(lanes.vd[p])));
        self.hi_snap_valid = true;
        result
    }

    /// The seed QPA descent ([`crate::dbf::reference`]'s `qpa_check`) with
    /// memo-assisted — but value-exact — demand evaluations.
    fn qpa(&mut self, bound: u64, mode: Mode) -> DemandCheck {
        // `h(0) > 0` is answered by the lanes' exact origin counters
        // (see [`DemandSoa::h0_lo_positive`]) — no sweep: `h_LO(0)`
        // sums `C^L` over `vd == 0` positions, `h_HI(0)` sums
        // `C^H − C^L` over `dist == 0` positions.
        let h0_positive = match mode {
            Mode::Lo => self.lanes.h0_lo_positive(),
            Mode::Hi => self.lanes.h0_hi_positive(),
        };
        if h0_positive {
            return DemandCheck::Violation(Time::ZERO);
        }
        if bound == 0 {
            return DemandCheck::Ok;
        }
        // A descent only moves down, so `bound < 2^32` certifies every
        // instant it will visit for the `const FAST` sweeps (the scalar
        // route still upgrades per evaluation once `t` drops below the
        // licence, via the `eval_*` dispatch).
        if self.lanes.fast() && bound < CERT_T_LIM {
            self.descend_fast(bound, mode)
        } else {
            self.descend(Time::new(bound), mode)
        }
    }

    /// The high-mode busy-window numerator
    /// `Σ_HC (C^H + u^H·(T − d))`, in HC order.
    fn hi_k(&self) -> f64 {
        // Insertion-order sum (verdict-bearing QPA start bound) over the
        // compacted HC lanes; `C^H` and `C^H/T` come from the cached f64
        // lanes — the exact values the seed recomputes per call.
        let lanes = &self.lanes;
        let mut k: f64 = 0.0;
        for i in 0..lanes.hc_len() {
            let w = Time::new(lanes.hc_period[i].saturating_sub(lanes.hc_dist[i]));
            k += lanes.hc_ch_f[i] + lanes.hc_u_hi[i] * w.as_f64();
        }
        k
    }

    /// The descending fixpoint loop, starting at `t` (inclusive).
    fn descend(&mut self, mut t: Time, mode: Mode) -> DemandCheck {
        for _ in 0..QPA_BUDGET {
            let d = self.eval(mode, t);
            if d > t {
                return DemandCheck::Violation(t);
            }
            if d.is_zero() {
                return DemandCheck::Ok;
            }
            if d < t {
                t = d;
            } else {
                if t == Time::ONE {
                    return DemandCheck::Ok;
                }
                t -= Time::ONE;
            }
        }
        DemandCheck::Unbounded
    }

    #[inline]
    fn eval(&mut self, mode: Mode, t: Time) -> Time {
        match mode {
            Mode::Lo => self.eval_lo(t),
            Mode::Hi => self.eval_hi(t),
        }
    }

    /// The certificate-gated descending fixpoint: same chain, same
    /// budget, same verdicts as [`descend`](Self::descend) (see the
    /// module-docs soundness note), with every evaluation routed
    /// straight to the `const FAST` lane sweep — no per-point licence
    /// re-check, no enum dispatch through `eval`.
    ///
    /// An 8-wide ladder variant (one lane pass evaluating several
    /// adjacent candidate points, a walker consuming the scalar chain
    /// through the precomputed slots) was benchmarked here and measured
    /// a net loss on admission-sized corpora: QPA chains jump coarsely
    /// often enough that most speculative slots are discarded, and a
    /// discarded slot costs exactly as much as a consumed one. The
    /// batching that pays is the lane sweep itself (all tasks per
    /// point, branch-free); the chain stays one point at a time.
    ///
    /// Licence: the caller checked [`DemandSoa::fast`] and
    /// `start < 2^32`; a descent only moves down.
    fn descend_fast(&mut self, start: u64, mode: Mode) -> DemandCheck {
        let mut t = start;
        for _ in 0..QPA_BUDGET {
            let d = match mode {
                Mode::Lo => self.lo_block::<true>(t),
                Mode::Hi => self.hi_block::<true>(t),
            };
            if d > t {
                return DemandCheck::Violation(Time::new(t));
            }
            if d == 0 {
                return DemandCheck::Ok;
            }
            if d < t {
                t = d;
            } else {
                if t == 1 {
                    return DemandCheck::Ok;
                }
                t -= 1;
            }
        }
        DemandCheck::Unbounded
    }

    /// The positions (task-order indices) of the HC tasks, ascending —
    /// the tuner's move enumeration walks these instead of filtering
    /// the full task list per round.
    #[inline]
    pub(crate) fn hc_positions(&self) -> &[usize] {
        &self.lanes.hc_pos
    }

    /// Exact `(⌊rel/T⌋, rel mod T)` for the loaded task `idx`, the
    /// floor division taken through the cached lane reciprocal
    /// ([`df_inv`] is the exact floor for all `u64`, so this is
    /// bit-identical to `rel.div_floor(T)` / `rel % T`). The tuner's
    /// move enumeration calls this once per HC task per round instead
    /// of dividing.
    pub(crate) fn div_period(&self, idx: usize, rel: Time) -> (u64, Time) {
        let (per, inv) = (self.lanes.period[idx], self.lanes.inv_period[idx]);
        let q = df_inv(rel.as_ticks(), per, inv);
        (q, Time::new(rel.as_ticks() - q.saturating_mul(per)))
    }

    /// Exact `dbf_HI` of the loaded task `idx` at `t` **as if** its
    /// virtual deadline were `vd` — [`crate::dbf::dbf_hi`] with the
    /// floor division routed through the cached lane reciprocal
    /// (bit-identical; see [`DemandKernel::div_period`]). Candidate
    /// moves are scored through this without touching the assignment.
    pub(crate) fn dbf_hi_with(&self, idx: usize, vd: Time, t: Time) -> Time {
        let task = &self.tasks[idx].task;
        if task.criticality().is_low() {
            return Time::ZERO;
        }
        let d = task.deadline() - vd;
        if t < d {
            return Time::ZERO;
        }
        let (q, m) = self.div_period(idx, t - d);
        let done = task.wcet_lo().saturating_sub(m);
        task.wcet_hi()
            .saturating_mul(q.saturating_add(1))
            .saturating_sub(done)
    }

    /// Certain-overload witness for the low-mode check (`U > 1`):
    /// the seed's busy-window horizon, clamped saturating so extreme
    /// utilizations can no longer overflow `Time` (satellite fix).
    fn horizon_lo(&self, util: f64) -> Time {
        // Insertion-order sum.
        let mut k: f64 = 0.0;
        for vt in &self.tasks {
            k += vt.task.wcet_lo().as_f64() / vt.task.period().as_f64() * vt.vd.as_f64();
        }
        let max_v = self
            .tasks
            .iter()
            .map(|vt| vt.vd)
            .fold(Time::ZERO, Time::max);
        Time::new((k / (util - 1.0)).ceil() as u64)
            .max(max_v)
            .saturating_add(Time::ONE)
    }

    /// Certain-overload witness for the high-mode check, clamped like
    /// [`horizon_lo`](Self::horizon_lo).
    fn horizon_hi(&self, util: f64) -> Time {
        // Insertion-order sum.
        let mut k: f64 = 0.0;
        let mut max_d = Time::ZERO;
        for vt in self
            .tasks
            .iter()
            .filter(|vt| vt.task.criticality().is_high())
        {
            let dist = vt.task.deadline() - vt.vd;
            let u = vt.task.wcet_hi().as_f64() / vt.task.period().as_f64();
            k += u * dist.as_f64() + vt.task.wcet_lo().as_f64();
            max_d = max_d.max(dist);
        }
        Time::new((k / (util - 1.0)).ceil() as u64)
            .max(max_d)
            .saturating_add(Time::ONE)
    }
}

/// Which demand bound a descent evaluates.
#[derive(Debug, Clone, Copy)]
enum Mode {
    Lo,
    Hi,
}

/// `dbf_LO` of one task from raw lane values — the per-anchor delta
/// term of [`DemandKernel::replace_vd`], bit-identical to
/// [`TaskDemand::lo_at`] ([`df_inv`] is the exact floor for all `u64`,
/// so the lane reciprocal replaces the hardware division).
fn lo_at_lane(cl: u64, vd: u64, per: u64, inv: u64, t: u64) -> u64 {
    if t < vd {
        return 0;
    }
    cl.saturating_mul(df_inv(t - vd, per, inv).saturating_add(1))
}

/// The busy-window QPA start `ceil(K / (1 − U))`, or `None` when it is
/// not representable (the typed early-reject of the satellite fix:
/// callers return [`DemandCheck::Unbounded`] instead of descending from
/// a saturated horizon).
fn qpa_start(k: f64, util: f64) -> Option<u64> {
    let bound = (k / (1.0 - util)).ceil();
    if bound.is_finite() && bound < MAX_QPA_START {
        Some(bound as u64)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsched_model::Task;

    fn vd(task: Task, v: u64) -> VdTask {
        VdTask {
            task,
            vd: Time::new(v),
        }
    }

    fn check_against_reference(kernel: &mut DemandKernel) {
        let tasks = kernel.assignment().to_vec();
        assert_eq!(
            kernel.check_lo(),
            dbf::reference::check_lo_mode(&tasks),
            "lo diverged on {tasks:?}"
        );
        assert_eq!(
            kernel.check_hi(),
            dbf::reference::check_hi_mode(&tasks),
            "hi diverged on {tasks:?}"
        );
        // The boolean fast path agrees with the exact check.
        assert_eq!(
            kernel.lo_feasible(),
            dbf::reference::check_lo_mode(&tasks).is_ok()
        );
    }

    #[test]
    fn task_demand_matches_dbf_pointwise() {
        let cases = [
            VdTask::untightened(Task::lo(0, 10, 3).unwrap()),
            vd(Task::hi(1, 10, 3, 6).unwrap(), 5),
            vd(Task::hi_constrained(2, 20, 2, 6, 15).unwrap(), 9),
            VdTask::untightened(Task::hi(3, 12, 2, 2).unwrap()),
        ];
        for vt in cases {
            let step = TaskDemand::new(&vt);
            for t in 0..120 {
                let t = Time::new(t);
                assert_eq!(step.lo_at(t), dbf::dbf_lo(&vt, t), "lo t={t} {vt:?}");
                if vt.task.criticality().is_high() {
                    assert_eq!(step.hi_at(t), dbf::dbf_hi(&vt, t), "hi t={t} {vt:?}");
                }
            }
        }
    }

    #[test]
    fn mutation_sequence_stays_reference_identical() {
        let t0 = Task::hi(0, 10, 2, 4).unwrap();
        let t1 = Task::lo(1, 12, 3).unwrap();
        let t2 = Task::hi_constrained(2, 20, 3, 7, 16).unwrap();
        let mut kernel = DemandKernel::new();
        kernel.push_task(VdTask::untightened(t0));
        check_against_reference(&mut kernel);
        kernel.push_task(VdTask::untightened(t1));
        check_against_reference(&mut kernel);
        kernel.push_task(VdTask::untightened(t2));
        check_against_reference(&mut kernel);
        // Tighten, loosen, re-tighten: memo deltas must stay exact and
        // the resume logic must only fire when sound.
        for v in [8u64, 5, 3, 6, 2, 9, 4] {
            kernel.replace_vd(0, Time::new(v.min(10)));
            check_against_reference(&mut kernel);
            kernel.replace_vd(2, Time::new((v + 3).min(16)));
            check_against_reference(&mut kernel);
        }
        kernel.pop_task();
        check_against_reference(&mut kernel);
        kernel.push_task(vd(t2, 9));
        check_against_reference(&mut kernel);
    }

    #[test]
    fn reseed_preserves_memo_exactness() {
        let tasks = [
            vd(Task::hi(0, 10, 2, 5).unwrap(), 6),
            VdTask::untightened(Task::lo(1, 15, 4).unwrap()),
            vd(Task::hi(2, 25, 3, 8).unwrap(), 12),
        ];
        let mut kernel = DemandKernel::new();
        kernel.load(&tasks);
        let _ = kernel.check_lo();
        let _ = kernel.check_hi();
        kernel.reseed(|t| t.deadline());
        check_against_reference(&mut kernel);
        kernel.reseed(|t| {
            if t.criticality().is_high() {
                (t.deadline() - (t.wcet_hi() - t.wcet_lo())).max(t.wcet_lo())
            } else {
                t.deadline()
            }
        });
        check_against_reference(&mut kernel);
    }

    #[test]
    fn counters_observe_resume_and_anchors() {
        // A two-HC-task set seeded with overrun slack (so violations come
        // from descents, not the zero-window pre-check): repeated
        // check → tighten cycles must resume the fixpoint.
        let mut kernel = DemandKernel::new();
        kernel.push_task(vd(Task::hi(0, 10, 2, 5).unwrap(), 7));
        kernel.push_task(vd(Task::hi(1, 14, 3, 6).unwrap(), 11));
        let mut vd0 = 7u64;
        let first = kernel.check_hi();
        assert!(
            matches!(first, DemandCheck::Violation(t) if !t.is_zero()),
            "{first:?}"
        );
        while vd0 > 2 {
            vd0 -= 1;
            kernel.replace_vd(0, Time::new(vd0));
            if kernel.check_hi().is_ok() {
                break;
            }
        }
        assert!(
            kernel.counters().resumed >= 1,
            "no resumed fixpoints: {:?}",
            kernel.counters()
        );
        // Overload the lo side so a violation is memoised, then probe
        // the boolean path again: the anchor must answer.
        let mut kernel = DemandKernel::new();
        kernel.push_task(vd(Task::hi(0, 20, 5, 10).unwrap(), 5));
        kernel.push_task(vd(Task::hi(1, 20, 5, 10).unwrap(), 5));
        assert!(!kernel.lo_feasible());
        assert!(!kernel.lo_feasible());
        assert!(kernel.counters().anchor_hits >= 1);
    }

    #[test]
    fn lifo_pop_restores_previous_answers() {
        let base = [
            vd(Task::hi(0, 10, 2, 4).unwrap(), 7),
            VdTask::untightened(Task::lo(1, 20, 6).unwrap()),
        ];
        let mut kernel = DemandKernel::new();
        kernel.load(&base);
        let lo_before = kernel.check_lo();
        let hi_before = kernel.check_hi();
        kernel.push_task(vd(Task::hi(2, 8, 2, 5).unwrap(), 4));
        check_against_reference(&mut kernel);
        let popped = kernel.pop_task();
        assert_eq!(popped.task.id().0, 2);
        assert_eq!(kernel.check_lo(), lo_before);
        assert_eq!(kernel.check_hi(), hi_before);
    }

    #[test]
    fn anchors_are_bounded() {
        let mut anchors = Anchors::default();
        for t in 1..(ANCHOR_CAP as u64 * 4) {
            anchors.record(Time::new(t), Time::new(t / 2));
        }
        assert!(anchors.entries.len() <= ANCHOR_CAP);
        assert_eq!(anchors.violation(), None);
        anchors.record(Time::new(500), Time::new(900));
        assert_eq!(anchors.violation(), Some(Time::new(500)));
        // Zero-instant samples are never anchored.
        let mut anchors = Anchors::default();
        anchors.record(Time::ZERO, Time::new(9));
        assert!(anchors.entries.is_empty());
    }

    #[test]
    fn fast_and_guarded_blocks_agree_pointwise() {
        // A certified assignment: the `FAST` sweeps must equal the
        // guarded route at every instant the licence covers (the routes
        // share one lane view, so this pins the no-fixup floors and the
        // plain-arithmetic rewrite of the step terms).
        let tasks = [
            vd(Task::hi(0, 10, 2, 5).unwrap(), 7),
            VdTask::untightened(Task::lo(1, 12, 3).unwrap()),
            vd(Task::hi_constrained(2, 20, 3, 7, 16).unwrap(), 9),
            vd(Task::hi(3, 33, 4, 11).unwrap(), 15),
        ];
        let mut kernel = DemandKernel::new();
        kernel.load(&tasks);
        assert!(kernel.lanes.fast(), "fixture must certify");
        for t in 0..400u64 {
            assert_eq!(
                kernel.lo_block::<true>(t),
                kernel.lo_block::<false>(t),
                "lo t={t}"
            );
            assert_eq!(
                kernel.hi_block::<true>(t),
                kernel.hi_block::<false>(t),
                "hi t={t}"
            );
        }
    }

    #[test]
    fn fast_descent_matches_guarded_descent_exactly() {
        // Certified sets with plateau-heavy and jump-heavy descents:
        // the `const FAST` chain must reproduce the guarded loop's
        // verdict (witness included) from every start point.
        let sets: [&[VdTask]; 3] = [
            &[
                vd(Task::hi(0, 10, 2, 5).unwrap(), 7),
                vd(Task::hi(1, 14, 3, 6).unwrap(), 11),
            ],
            &[
                vd(Task::hi(0, 12, 2, 6).unwrap(), 6),
                vd(Task::hi(1, 20, 3, 9).unwrap(), 10),
                VdTask::untightened(Task::lo(2, 25, 4).unwrap()),
                vd(Task::hi(3, 33, 4, 11).unwrap(), 14),
            ],
            &[
                vd(Task::hi(0, 20, 5, 10).unwrap(), 5),
                vd(Task::hi(1, 20, 5, 10).unwrap(), 5),
                VdTask::untightened(Task::lo(2, 7, 1).unwrap()),
            ],
        ];
        for tasks in sets {
            let mut kernel = DemandKernel::new();
            kernel.load(tasks);
            assert!(kernel.lanes.fast(), "fixture must certify");
            for mode in [Mode::Lo, Mode::Hi] {
                for start in [1u64, 2, 3, 7, 8, 9, 17, 40, 61, 200, 999, 5000] {
                    let batched = kernel.descend_fast(start, mode);
                    let scalar = kernel.descend(Time::new(start), mode);
                    assert_eq!(batched, scalar, "start={start} {mode:?} {tasks:?}");
                }
            }
        }
    }

    #[test]
    fn qpa_start_rejects_unrepresentable_bounds() {
        assert_eq!(qpa_start(10.0, 0.5), Some(20));
        assert_eq!(qpa_start(1e19, 0.5), None);
        assert_eq!(qpa_start(1.0, 1.0 - 1e-18), None); // 1/(1-U) → inf-ish
        assert_eq!(qpa_start(0.0, 0.5), Some(0));
    }
}
