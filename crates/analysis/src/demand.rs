// mclint: hot-path
//! The **incremental demand kernel**: memoised, warm-startable QPA for
//! the EY / ECDF demand stack.
//!
//! The virtual-deadline tuners ([`crate::vdtune`]) and the admission
//! layer ([`crate::incremental`]) call the demand checks of
//! [`crate::dbf`] in tight loops where successive checks differ by a
//! *single task's* virtual deadline (one greedy tightening move, possibly
//! reverted) or by one pushed / popped task (an admission probe). The
//! flat `total_dbf_* + qpa_check` API throws that structure away: every
//! probe re-runs the full descending QPA fixpoint from the busy-window
//! bound, re-summing `dbf_LO` / `dbf_HI` over all tasks at every jump
//! point. A [`DemandKernel`] instead *owns* the assignment and keeps
//! enough exact state to answer the next check from the previous one.
//!
//! ## What the kernel caches
//!
//! * **Per-task demand steps** ([`TaskDemand`]) — the cached
//!   `(C^L, C^H, T, V, d = D − V)` terms of the Ekberg–Yi demand bounds,
//!   so each evaluation is branch-light and the high-mode sum iterates a
//!   contiguous HC-only index list (one HC-subset copy path, shared by
//!   every public entry point).
//! * **Violation anchors** — a bounded set of exact `(t, Σ dbf_LO(t))`
//!   pairs at instants where earlier QPA descents found demand exceeding
//!   supply. All memo arithmetic is integer ([`mcsched_model::Time`]),
//!   so the values are *exact*, never approximations.
//! * **Running utilization sums** — `Σ C^L/T` and `Σ_HC C^H/T` in
//!   insertion order. Virtual deadlines never enter them, so tuner moves
//!   leave them untouched; appends accumulate onto the running value,
//!   which is bit-identical to the fresh left-to-right summation the
//!   seed performs.
//! * **Warm-resume state** for the high-mode QPA — the previous
//!   fixpoint outcome plus a snapshot of the virtual deadlines it was
//!   computed for.
//!
//! ## Delta-update contract
//!
//! The mutating operations keep every cached value exact:
//!
//! * [`replace_vd(i, v)`](DemandKernel::replace_vd) — changes one task's
//!   virtual deadline. Each memoised `(t, h)` pair is updated by the
//!   *integer* delta `h ← h − dbf(τi, v_old, t) + dbf(τi, v_new, t)`,
//!   which is exact (no floating point is ever memoised), so memo
//!   entries remain true demand sums for the *current* assignment.
//! * [`push_task`](DemandKernel::push_task) / [`pop_task`](DemandKernel::pop_task)
//!   — append / remove the last task, delta-updating every memo entry by
//!   that task's contribution. `pop_task` is LIFO by design: the
//!   admission layer probes `committed ∪ {candidate}` and pops the
//!   candidate afterwards, keeping the kernel warm across probes.
//! * [`reseed`](DemandKernel::reseed) — bulk-retargets every virtual
//!   deadline through `replace_vd`, so switching tuner starts
//!   (untightened → slack-seeded → untightened) preserves the memos.
//!
//! ## Why the shortcuts cannot change a verdict
//!
//! The kernel's answers are pinned bit-identical to the retained seed
//! implementations ([`crate::dbf::reference`]) by `tests/demand_kernel.rs`;
//! the arguments are:
//!
//! * **QPA reports the maximum violation.** For a nondecreasing demand
//!   function, the descending fixpoint can never skip past the largest
//!   `t` with `h(t) > t`: clearing an interval `(h(t), t]` requires
//!   `h(t') ≤ h(t) < t'` for every point in it, which contradicts a
//!   violation inside. So the reported witness is independent of the
//!   descent's start point (any start at or above the maximum violation
//!   gives the same result) — which is what makes warm resume exact.
//! * **Tightening only shrinks high-mode demand.** `dbf_HI` is
//!   nonincreasing in `d = D − V` (when the carry-over job's guaranteed
//!   progress drops by up to `C^L`, the job count `k` drops by one and
//!   `C^H ≥ C^L` covers the difference), and the busy-window bound
//!   shrinks with it. Hence when every virtual deadline moved only
//!   *down* since the last high-mode check, the previously cleared
//!   region stays clear: a previous `Ok` is still `Ok`, and a previous
//!   violation point is a valid resume start whose descent finds the
//!   same maximum violation a cold descent would.
//! * **Anchors are sound unconditionally.** A memo entry with
//!   `h(t) > t` and `t` inside the current busy window is a genuine
//!   violation of the *current* assignment (memo values are exact), so
//!   the boolean fast path [`lo_feasible`](DemandKernel::lo_feasible)
//!   may answer "infeasible" without any descent — the reference QPA,
//!   descending from the same bound, provably finds a violation too.
//!   Anchors are only ever a shortcut to *reject*; `Ok` is always
//!   decided by a full (memo-assisted, value-exact) descent.
//!
//! The one theoretical divergence is the QPA iteration budget
//! (`QPA_BUDGET` = 100 000): a resumed descent takes a different number
//! of steps than a cold one, so a set that exhausts the budget on one
//! path but not the other could differ. Typical descents take well under
//! 100 steps; the equivalence suites pin the corpus empirically.

#[cfg(test)]
use crate::dbf;
use crate::dbf::{DemandCheck, VdTask, QPA_BUDGET, UTIL_EPS};
use mcsched_model::{Task, TaskSet, Time};

/// Maximum memoised low-mode violation anchors. Recording past this
/// overwrites round-robin, so the buffer never grows beyond a fixed
/// high-water mark (zero steady-state allocations).
const ANCHOR_CAP: usize = 8;

/// QPA starts above this are meaningless (demand evaluation itself
/// would overflow `u64` long before); a busy-window bound that rounds
/// past it is treated as unbounded (typed early-reject) instead of
/// descending from a saturated horizon.
const MAX_QPA_START: f64 = (1u64 << 63) as f64;

/// Fixpoint-reuse counters: how the kernel answered its QPA queries.
///
/// Surfaced through
/// [`AdmissionStats`](crate::incremental::AdmissionStats) (the
/// `mcexp --ablation` admission table) so fixpoint reuse is observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QpaCounters {
    /// Descents started cold from the busy-window bound.
    pub cold: u64,
    /// High-mode checks answered from the previous fixpoint (resumed
    /// from the old violation point, or an instant `Ok` re-confirmed
    /// because demand only tightened).
    pub resumed: u64,
    /// Low-mode feasibility checks rejected by a memoised violation
    /// anchor without any descent.
    pub anchor_hits: u64,
}

/// Cached per-task demand-step state: everything `dbf_LO` / `dbf_HI`
/// need, pre-derived so the QPA inner loop touches one flat array.
#[derive(Debug, Clone, Copy)]
pub struct TaskDemand {
    /// Virtual (low-mode) deadline `V`.
    vd: Time,
    /// Period `T`.
    period: Time,
    /// Low-criticality budget `C^L`.
    c_lo: Time,
    /// High-criticality budget `C^H` (`= C^L` for LC tasks).
    c_hi: Time,
    /// Carry-over distance `d = D − V`.
    dist: Time,
    /// Whether the task is high-criticality (contributes to `dbf_HI`).
    hi: bool,
}

impl TaskDemand {
    /// Derives the step state of one task + virtual deadline.
    pub fn new(vt: &VdTask) -> Self {
        TaskDemand {
            vd: vt.vd,
            period: vt.task.period(),
            c_lo: vt.task.wcet_lo(),
            c_hi: vt.task.wcet_hi(),
            dist: vt.task.deadline() - vt.vd,
            hi: vt.task.criticality().is_high(),
        }
    }

    /// Low-mode demand at `t` — identical to [`crate::dbf::dbf_lo`].
    #[inline]
    pub fn lo_at(&self, t: Time) -> Time {
        if t < self.vd {
            return Time::ZERO;
        }
        self.c_lo
            .saturating_mul((t - self.vd).div_floor(self.period).saturating_add(1))
    }

    /// High-mode demand at `t` — identical to [`crate::dbf::dbf_hi`] for HC
    /// tasks (the kernel never evaluates it for LC tasks).
    #[inline]
    pub fn hi_at(&self, t: Time) -> Time {
        if t < self.dist {
            return Time::ZERO;
        }
        let rel = t - self.dist;
        let k = rel.div_floor(self.period).saturating_add(1);
        let md = rel % self.period;
        let done = self.c_lo.saturating_sub(md);
        self.c_hi.saturating_mul(k).saturating_sub(done)
    }
}

/// A bounded set of exact `(t, Σ dbf_LO(t))` samples at historically
/// violated instants, kept exact for the *current* assignment through
/// integer delta-updates.
#[derive(Debug, Default)]
struct Anchors {
    entries: Vec<(Time, Time)>,
    /// Round-robin overwrite position once at capacity.
    cursor: usize,
}

impl Anchors {
    fn clear(&mut self) {
        self.entries.clear();
        self.cursor = 0;
    }

    /// Records a violated sample (values at other instants age into
    /// non-violations via the delta-updates but are kept — demand often
    /// swings back over them).
    fn record(&mut self, t: Time, h: Time) {
        if t.is_zero() {
            return; // h(0) is re-checked explicitly by every descent
        }
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == t) {
            e.1 = h;
        } else if self.entries.len() < ANCHOR_CAP {
            self.entries.push((t, h));
        } else {
            self.entries[self.cursor] = (t, h);
            self.cursor = (self.cursor + 1) % ANCHOR_CAP;
        }
    }

    /// Some memoised violation (`h > t`), if any.
    #[inline]
    fn violation(&self) -> Option<Time> {
        self.entries.iter().find(|&&(t, h)| h > t).map(|&(t, _)| t)
    }
}

/// The incremental demand kernel: owns a virtual-deadline assignment and
/// answers low- / high-mode demand checks with warm state reuse.
///
/// See the [module docs](self) for the delta-update contract and the
/// soundness arguments. Verdicts (including violation witnesses) are
/// bit-identical to the retained seed path in [`crate::dbf::reference`].
///
/// # Example
///
/// ```
/// use mcsched_analysis::demand::DemandKernel;
/// use mcsched_analysis::dbf::{self, VdTask};
/// use mcsched_model::{Task, Time};
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let mut kernel = DemandKernel::new();
/// kernel.push_task(VdTask::untightened(Task::hi(0, 10, 2, 5)?));
///
/// // Untightened HC tasks always violate the zero-length window.
/// assert_eq!(kernel.check_hi(), dbf::DemandCheck::Violation(Time::ZERO));
///
/// // Tighten the virtual deadline: the kernel delta-updates its state
/// // and the re-check matches a from-scratch analysis exactly.
/// kernel.replace_vd(0, Time::new(5));
/// assert!(kernel.check_hi().is_ok());
/// assert!(kernel.check_lo().is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct DemandKernel {
    /// The assignment, in task order.
    tasks: Vec<VdTask>,
    /// Cached demand steps, parallel to `tasks`.
    steps: Vec<TaskDemand>,
    /// Indices of the HC tasks, in task order (the single HC-subset
    /// copy path of the demand stack).
    hc: Vec<usize>,
    /// How many tasks currently have `V = T` (the implicit-deadline,
    /// untightened special case of the low-mode check).
    untight_implicit: usize,
    /// Running `Σ C^L/T` in task order. Virtual deadlines do not enter
    /// it, so it is invariant under [`replace_vd`](Self::replace_vd);
    /// appends accumulate onto the running value — exactly what a fresh
    /// left-to-right summation would produce, hence bit-identical —
    /// and removals recompute it in order.
    lo_util: f64,
    /// Running `Σ_HC C^H/T` in HC order (same discipline as `lo_util`).
    hi_util: f64,
    /// Exact low-mode demand samples at historical violation points.
    lo_anchors: Anchors,
    /// Virtual deadlines at the last high-mode QPA, for resume validity.
    hi_snap: Vec<Time>,
    /// Whether `hi_snap` / `hi_prev` describe the current task list.
    hi_snap_valid: bool,
    /// Outcome of the last high-mode QPA stage (not the prelude).
    hi_prev: Option<DemandCheck>,
    /// Fixpoint-reuse counters.
    counters: QpaCounters,
}

impl DemandKernel {
    /// An empty kernel (buffers grow to the high-water mark on use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current assignment, in task order.
    #[inline]
    pub fn assignment(&self) -> &[VdTask] {
        &self.tasks
    }

    /// Number of loaded tasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when no tasks are loaded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The fixpoint-reuse counters accumulated by this kernel.
    pub fn counters(&self) -> QpaCounters {
        self.counters
    }

    /// Drops all tasks and memos (counters are kept — they describe the
    /// kernel's lifetime, not one assignment).
    pub fn clear(&mut self) {
        self.tasks.clear();
        self.steps.clear();
        self.hc.clear();
        self.untight_implicit = 0;
        self.lo_util = 0.0;
        self.hi_util = 0.0;
        self.lo_anchors.clear();
        self.hi_snap_valid = false;
        self.hi_prev = None;
    }

    /// Replaces the contents with `tasks` (memos cleared: samples of a
    /// different set are meaningless).
    pub fn load(&mut self, tasks: &[VdTask]) {
        self.clear();
        for vt in tasks {
            self.push_task(*vt);
        }
    }

    /// Replaces the contents with the untightened assignment of `ts`.
    pub fn load_untightened(&mut self, ts: &TaskSet) {
        self.clear();
        for t in ts.iter() {
            self.push_task(VdTask::untightened(*t));
        }
    }

    /// Appends a task, delta-updating every memoised demand sample by
    /// its contribution (exact integer arithmetic) and accumulating the
    /// running utilization sums in insertion order (bit-identical to a
    /// fresh left-to-right summation).
    pub fn push_task(&mut self, vt: VdTask) {
        let step = TaskDemand::new(&vt);
        for e in &mut self.lo_anchors.entries {
            e.1 += step.lo_at(e.0);
        }
        self.lo_util += step.c_lo.as_f64() / step.period.as_f64();
        if step.hi {
            self.hi_util += step.c_hi.as_f64() / step.period.as_f64();
            self.hc.push(self.tasks.len());
        }
        if vt.vd == vt.task.period() {
            self.untight_implicit += 1;
        }
        self.tasks.push(vt);
        self.steps.push(step);
        // The task list changed: the high-mode snapshot no longer
        // describes it (demand grew, so resume would be unsound anyway).
        self.hi_snap_valid = false;
        self.hi_prev = None;
    }

    /// Removes the **last** task (LIFO — the admission-probe pattern),
    /// delta-updating the memoised samples by its former contribution.
    /// The utilization sums are recomputed in order (floating-point
    /// subtraction is not exact; re-summation is).
    ///
    /// # Panics
    ///
    /// Panics if the kernel is empty.
    pub fn pop_task(&mut self) -> VdTask {
        let vt = self.tasks.pop().expect("pop_task on an empty kernel");
        let step = self.steps.pop().expect("steps parallel to tasks");
        for e in &mut self.lo_anchors.entries {
            e.1 -= step.lo_at(e.0);
        }
        // Re-derive both utilization caches with insertion-order loops:
        // a compensated `-=` would drift from the push-path `+=`, and the
        // summation order must match a fresh build bit-for-bit.
        self.lo_util = 0.0;
        for s in &self.steps {
            self.lo_util += s.c_lo.as_f64() / s.period.as_f64();
        }
        if step.hi {
            self.hc.pop();
            self.hi_util = 0.0;
            for &i in &self.hc {
                self.hi_util += self.steps[i].c_hi.as_f64() / self.steps[i].period.as_f64();
            }
        }
        if vt.vd == vt.task.period() {
            self.untight_implicit -= 1;
        }
        self.hi_snap_valid = false;
        self.hi_prev = None;
        vt
    }

    /// Sets the `idx`-th task's virtual deadline to `vd`, delta-updating
    /// every memoised demand sample by the exact integer difference.
    /// The utilization sums are untouched — they do not depend on
    /// virtual deadlines.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn replace_vd(&mut self, idx: usize, vd: Time) {
        let old = self.tasks[idx].vd;
        if old == vd {
            return;
        }
        let task = self.tasks[idx].task;
        let old_step = self.steps[idx];
        let new_step = TaskDemand::new(&VdTask { task, vd });
        for e in &mut self.lo_anchors.entries {
            e.1 = e.1 - old_step.lo_at(e.0) + new_step.lo_at(e.0);
        }
        if old == task.period() {
            self.untight_implicit -= 1;
        }
        if vd == task.period() {
            self.untight_implicit += 1;
        }
        self.tasks[idx].vd = vd;
        self.steps[idx] = new_step;
        // The high-mode snapshot stays: resume validity is decided at
        // check time by comparing against it (net tightening resumes).
    }

    /// Retargets every virtual deadline through
    /// [`replace_vd`](Self::replace_vd) (memos survive exactly).
    pub fn reseed(&mut self, mut target: impl FnMut(&Task) -> Time) {
        for i in 0..self.tasks.len() {
            let vd = target(&self.tasks[i].task);
            self.replace_vd(i, vd);
        }
    }

    /// Total low-mode demand at `t` (exact, clamped at `Time::MAX` like
    /// [`crate::dbf::total_dbf_lo`] so the two stay bit-identical).
    #[inline]
    fn eval_lo(&self, t: Time) -> Time {
        self.steps
            .iter()
            .map(|s| s.lo_at(t))
            .fold(Time::ZERO, Time::saturating_add)
    }

    /// Total high-mode demand at `t` (exact, clamped at `Time::MAX`).
    #[inline]
    fn eval_hi(&self, t: Time) -> Time {
        self.hc
            .iter()
            .map(|&i| self.steps[i].hi_at(t))
            .fold(Time::ZERO, Time::saturating_add)
    }

    /// The exact low-mode check — bit-identical to
    /// [`crate::dbf::reference::check_lo_mode`] on the current assignment
    /// (modulo the clamped horizons of the satellite fix; see
    /// [`crate::dbf::check_lo_mode`]).
    pub fn check_lo(&mut self) -> DemandCheck {
        self.lo_check(true)
    }

    /// The boolean low-mode fast path: exactly
    /// `self.check_lo().is_ok()`, but allowed to answer "infeasible"
    /// from a memoised violation anchor without a descent.
    pub fn lo_feasible(&mut self) -> bool {
        self.lo_check(false).is_ok()
    }

    fn lo_check(&mut self, exact: bool) -> DemandCheck {
        if self.tasks.is_empty() {
            return DemandCheck::Ok;
        }
        // Prelude: identical branch structure to the seed implementation,
        // over the cached (insertion-order, hence bit-identical)
        // utilization sum and the O(1) untightened-implicit counter.
        let util = self.lo_util;
        let all_implicit_untightened = self.untight_implicit == self.tasks.len();
        if util > 1.0 + UTIL_EPS {
            return DemandCheck::Violation(self.horizon_lo(util));
        }
        if util >= 1.0 - UTIL_EPS {
            return if all_implicit_untightened {
                DemandCheck::Ok
            } else {
                DemandCheck::Unbounded
            };
        }
        if all_implicit_untightened {
            return DemandCheck::Ok;
        }
        // Insertion-order sum (verdict-bearing QPA start bound).
        let mut k: f64 = 0.0;
        for s in &self.steps {
            let u = s.c_lo.as_f64() / s.period.as_f64();
            k += u * (s.period - s.vd.min(s.period)).as_f64();
        }
        let Some(bound) = qpa_start(k, util) else {
            return DemandCheck::Unbounded;
        };
        if !exact {
            // Anchor fast path: an exact memoised violation inside the
            // busy window proves infeasibility (the reference descent
            // from the same bound cannot miss it).
            if let Some(t) = self.lo_anchors.violation() {
                if t <= Time::new(bound) {
                    self.counters.anchor_hits += 1;
                    return DemandCheck::Violation(t);
                }
            }
        }
        self.counters.cold += 1;
        let result = self.qpa(bound, Mode::Lo);
        if let DemandCheck::Violation(t) = result {
            self.lo_anchors.record(t, self.eval_lo(t));
        }
        result
    }

    /// The exact high-mode check — bit-identical to
    /// [`crate::dbf::reference::check_hi_mode`] on the current assignment, with
    /// the QPA stage warm-resumed from the previous fixpoint whenever
    /// every virtual deadline moved only down (demand only tightened)
    /// since the last check.
    pub fn check_hi(&mut self) -> DemandCheck {
        if self.hc.is_empty() {
            return DemandCheck::Ok;
        }
        let util = self.hi_util;
        if util > 1.0 + UTIL_EPS {
            self.hi_snap_valid = false;
            self.hi_prev = None;
            return DemandCheck::Violation(self.horizon_hi(util));
        }
        if util >= 1.0 - UTIL_EPS {
            self.hi_snap_valid = false;
            self.hi_prev = None;
            return DemandCheck::Unbounded;
        }
        let resume = self.hi_snap_valid
            && self.hi_snap.len() == self.tasks.len()
            && self
                .tasks
                .iter()
                .zip(self.hi_snap.iter())
                .all(|(vt, &snap)| vt.vd <= snap);
        let result = match (resume, self.hi_prev) {
            (true, Some(DemandCheck::Ok)) => {
                // Demand only tightened: the previously cleared window
                // stays clear, and h(0) can only have shrunk.
                self.counters.resumed += 1;
                DemandCheck::Ok
            }
            // A zero witness comes from the `h(0) > 0` pre-check — no
            // descent ran, nothing above it was cleared, so it is not a
            // resume point.
            (true, Some(DemandCheck::Violation(t_star))) if !t_star.is_zero() => {
                // The maximum violation can only have moved down; resume
                // the descent from the old witness — capped at the
                // (shrunken) busy-window bound, so a resume is never
                // slower than the cold descent it replaces.
                self.counters.resumed += 1;
                match qpa_start(self.hi_k(), util) {
                    Some(bound) => self.qpa(bound.min(t_star.as_ticks()), Mode::Hi),
                    None => {
                        self.hi_snap_valid = false;
                        self.hi_prev = None;
                        return DemandCheck::Unbounded;
                    }
                }
            }
            _ => {
                self.counters.cold += 1;
                match qpa_start(self.hi_k(), util) {
                    Some(bound) => self.qpa(bound, Mode::Hi),
                    None => {
                        self.hi_snap_valid = false;
                        self.hi_prev = None;
                        return DemandCheck::Unbounded;
                    }
                }
            }
        };
        self.hi_prev = Some(result);
        self.hi_snap.clear();
        self.hi_snap.extend(self.tasks.iter().map(|vt| vt.vd));
        self.hi_snap_valid = true;
        result
    }

    /// The seed QPA descent ([`crate::dbf::reference`]'s `qpa_check`) with
    /// memo-assisted — but value-exact — demand evaluations.
    fn qpa(&mut self, bound: u64, mode: Mode) -> DemandCheck {
        if self.eval(mode, Time::ZERO) > Time::ZERO {
            return DemandCheck::Violation(Time::ZERO);
        }
        if bound == 0 {
            return DemandCheck::Ok;
        }
        self.descend(Time::new(bound), mode)
    }

    /// The high-mode busy-window numerator
    /// `Σ_HC (C^H + u^H·(T − d))`, in HC order.
    fn hi_k(&self) -> f64 {
        // Insertion-order sum (verdict-bearing QPA start bound).
        let mut k: f64 = 0.0;
        for &i in &self.hc {
            let s = &self.steps[i];
            let u = s.c_hi.as_f64() / s.period.as_f64();
            k += s.c_hi.as_f64() + u * (s.period.saturating_sub(s.dist)).as_f64();
        }
        k
    }

    /// The descending fixpoint loop, starting at `t` (inclusive).
    fn descend(&mut self, mut t: Time, mode: Mode) -> DemandCheck {
        for _ in 0..QPA_BUDGET {
            let d = self.eval(mode, t);
            if d > t {
                return DemandCheck::Violation(t);
            }
            if d.is_zero() {
                return DemandCheck::Ok;
            }
            if d < t {
                t = d;
            } else {
                if t == Time::ONE {
                    return DemandCheck::Ok;
                }
                t -= Time::ONE;
            }
        }
        DemandCheck::Unbounded
    }

    #[inline]
    fn eval(&mut self, mode: Mode, t: Time) -> Time {
        match mode {
            Mode::Lo => self.eval_lo(t),
            Mode::Hi => self.eval_hi(t),
        }
    }

    /// Certain-overload witness for the low-mode check (`U > 1`):
    /// the seed's busy-window horizon, clamped saturating so extreme
    /// utilizations can no longer overflow `Time` (satellite fix).
    fn horizon_lo(&self, util: f64) -> Time {
        // Insertion-order sum.
        let mut k: f64 = 0.0;
        for s in &self.steps {
            k += s.c_lo.as_f64() / s.period.as_f64() * s.vd.as_f64();
        }
        let max_v = self.steps.iter().map(|s| s.vd).fold(Time::ZERO, Time::max);
        Time::new((k / (util - 1.0)).ceil() as u64)
            .max(max_v)
            .saturating_add(Time::ONE)
    }

    /// Certain-overload witness for the high-mode check, clamped like
    /// [`horizon_lo`](Self::horizon_lo).
    fn horizon_hi(&self, util: f64) -> Time {
        // Insertion-order sum.
        let mut k: f64 = 0.0;
        for &i in &self.hc {
            let s = &self.steps[i];
            let u = s.c_hi.as_f64() / s.period.as_f64();
            k += u * s.dist.as_f64() + s.c_lo.as_f64();
        }
        let max_d = self
            .hc
            .iter()
            .map(|&i| self.steps[i].dist)
            .fold(Time::ZERO, Time::max);
        Time::new((k / (util - 1.0)).ceil() as u64)
            .max(max_d)
            .saturating_add(Time::ONE)
    }
}

/// Which demand bound a descent evaluates.
#[derive(Debug, Clone, Copy)]
enum Mode {
    Lo,
    Hi,
}

/// The busy-window QPA start `ceil(K / (1 − U))`, or `None` when it is
/// not representable (the typed early-reject of the satellite fix:
/// callers return [`DemandCheck::Unbounded`] instead of descending from
/// a saturated horizon).
fn qpa_start(k: f64, util: f64) -> Option<u64> {
    let bound = (k / (1.0 - util)).ceil();
    if bound.is_finite() && bound < MAX_QPA_START {
        Some(bound as u64)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsched_model::Task;

    fn vd(task: Task, v: u64) -> VdTask {
        VdTask {
            task,
            vd: Time::new(v),
        }
    }

    fn check_against_reference(kernel: &mut DemandKernel) {
        let tasks = kernel.assignment().to_vec();
        assert_eq!(
            kernel.check_lo(),
            dbf::reference::check_lo_mode(&tasks),
            "lo diverged on {tasks:?}"
        );
        assert_eq!(
            kernel.check_hi(),
            dbf::reference::check_hi_mode(&tasks),
            "hi diverged on {tasks:?}"
        );
        // The boolean fast path agrees with the exact check.
        assert_eq!(
            kernel.lo_feasible(),
            dbf::reference::check_lo_mode(&tasks).is_ok()
        );
    }

    #[test]
    fn task_demand_matches_dbf_pointwise() {
        let cases = [
            VdTask::untightened(Task::lo(0, 10, 3).unwrap()),
            vd(Task::hi(1, 10, 3, 6).unwrap(), 5),
            vd(Task::hi_constrained(2, 20, 2, 6, 15).unwrap(), 9),
            VdTask::untightened(Task::hi(3, 12, 2, 2).unwrap()),
        ];
        for vt in cases {
            let step = TaskDemand::new(&vt);
            for t in 0..120 {
                let t = Time::new(t);
                assert_eq!(step.lo_at(t), dbf::dbf_lo(&vt, t), "lo t={t} {vt:?}");
                if vt.task.criticality().is_high() {
                    assert_eq!(step.hi_at(t), dbf::dbf_hi(&vt, t), "hi t={t} {vt:?}");
                }
            }
        }
    }

    #[test]
    fn mutation_sequence_stays_reference_identical() {
        let t0 = Task::hi(0, 10, 2, 4).unwrap();
        let t1 = Task::lo(1, 12, 3).unwrap();
        let t2 = Task::hi_constrained(2, 20, 3, 7, 16).unwrap();
        let mut kernel = DemandKernel::new();
        kernel.push_task(VdTask::untightened(t0));
        check_against_reference(&mut kernel);
        kernel.push_task(VdTask::untightened(t1));
        check_against_reference(&mut kernel);
        kernel.push_task(VdTask::untightened(t2));
        check_against_reference(&mut kernel);
        // Tighten, loosen, re-tighten: memo deltas must stay exact and
        // the resume logic must only fire when sound.
        for v in [8u64, 5, 3, 6, 2, 9, 4] {
            kernel.replace_vd(0, Time::new(v.min(10)));
            check_against_reference(&mut kernel);
            kernel.replace_vd(2, Time::new((v + 3).min(16)));
            check_against_reference(&mut kernel);
        }
        kernel.pop_task();
        check_against_reference(&mut kernel);
        kernel.push_task(vd(t2, 9));
        check_against_reference(&mut kernel);
    }

    #[test]
    fn reseed_preserves_memo_exactness() {
        let tasks = [
            vd(Task::hi(0, 10, 2, 5).unwrap(), 6),
            VdTask::untightened(Task::lo(1, 15, 4).unwrap()),
            vd(Task::hi(2, 25, 3, 8).unwrap(), 12),
        ];
        let mut kernel = DemandKernel::new();
        kernel.load(&tasks);
        let _ = kernel.check_lo();
        let _ = kernel.check_hi();
        kernel.reseed(|t| t.deadline());
        check_against_reference(&mut kernel);
        kernel.reseed(|t| {
            if t.criticality().is_high() {
                (t.deadline() - (t.wcet_hi() - t.wcet_lo())).max(t.wcet_lo())
            } else {
                t.deadline()
            }
        });
        check_against_reference(&mut kernel);
    }

    #[test]
    fn counters_observe_resume_and_anchors() {
        // A two-HC-task set seeded with overrun slack (so violations come
        // from descents, not the zero-window pre-check): repeated
        // check → tighten cycles must resume the fixpoint.
        let mut kernel = DemandKernel::new();
        kernel.push_task(vd(Task::hi(0, 10, 2, 5).unwrap(), 7));
        kernel.push_task(vd(Task::hi(1, 14, 3, 6).unwrap(), 11));
        let mut vd0 = 7u64;
        let first = kernel.check_hi();
        assert!(
            matches!(first, DemandCheck::Violation(t) if !t.is_zero()),
            "{first:?}"
        );
        while vd0 > 2 {
            vd0 -= 1;
            kernel.replace_vd(0, Time::new(vd0));
            if kernel.check_hi().is_ok() {
                break;
            }
        }
        assert!(
            kernel.counters().resumed >= 1,
            "no resumed fixpoints: {:?}",
            kernel.counters()
        );
        // Overload the lo side so a violation is memoised, then probe
        // the boolean path again: the anchor must answer.
        let mut kernel = DemandKernel::new();
        kernel.push_task(vd(Task::hi(0, 20, 5, 10).unwrap(), 5));
        kernel.push_task(vd(Task::hi(1, 20, 5, 10).unwrap(), 5));
        assert!(!kernel.lo_feasible());
        assert!(!kernel.lo_feasible());
        assert!(kernel.counters().anchor_hits >= 1);
    }

    #[test]
    fn lifo_pop_restores_previous_answers() {
        let base = [
            vd(Task::hi(0, 10, 2, 4).unwrap(), 7),
            VdTask::untightened(Task::lo(1, 20, 6).unwrap()),
        ];
        let mut kernel = DemandKernel::new();
        kernel.load(&base);
        let lo_before = kernel.check_lo();
        let hi_before = kernel.check_hi();
        kernel.push_task(vd(Task::hi(2, 8, 2, 5).unwrap(), 4));
        check_against_reference(&mut kernel);
        let popped = kernel.pop_task();
        assert_eq!(popped.task.id().0, 2);
        assert_eq!(kernel.check_lo(), lo_before);
        assert_eq!(kernel.check_hi(), hi_before);
    }

    #[test]
    fn anchors_are_bounded() {
        let mut anchors = Anchors::default();
        for t in 1..(ANCHOR_CAP as u64 * 4) {
            anchors.record(Time::new(t), Time::new(t / 2));
        }
        assert!(anchors.entries.len() <= ANCHOR_CAP);
        assert_eq!(anchors.violation(), None);
        anchors.record(Time::new(500), Time::new(900));
        assert_eq!(anchors.violation(), Some(Time::new(500)));
        // Zero-instant samples are never anchored.
        let mut anchors = Anchors::default();
        anchors.record(Time::ZERO, Time::new(9));
        assert!(anchors.entries.is_empty());
    }

    #[test]
    fn qpa_start_rejects_unrepresentable_bounds() {
        assert_eq!(qpa_start(10.0, 0.5), Some(20));
        assert_eq!(qpa_start(1e19, 0.5), None);
        assert_eq!(qpa_start(1.0, 1.0 - 1e-18), None); // 1/(1-U) → inf-ish
        assert_eq!(qpa_start(0.0, 0.5), Some(0));
    }
}
