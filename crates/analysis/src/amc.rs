// mclint: hot-path
//! Adaptive Mixed-Criticality (AMC) response-time analyses.
//!
//! Fixed-priority scheduling for dual-criticality systems (Baruah, Burns &
//! Davis, RTSS 2011): every task has a fixed priority; when a HC job
//! exceeds its `C^L` budget the processor switches to high mode and all LC
//! tasks are immediately dropped.
//!
//! Priorities here are **deadline-monotonic** (smaller relative deadline =
//! higher priority, ties broken by task id), the standard choice for
//! constrained-deadline fixed-priority systems.
//!
//! Three analyses:
//!
//! * **Low-mode RTA** ([`LoRta`]) — classic response-time analysis with
//!   `C^L` budgets; every task (LC and HC) must meet its deadline before
//!   any switch.
//! * **AMC-rtb** ([`AmcRtb`]) — response-time bound: HC task `τi`'s
//!   high-mode response satisfies
//!   `R = C^H_i + Σ_{k∈hpH} ⌈R/Tk⌉·C^H_k + Σ_{j∈hpL} ⌈R^LO_i/Tj⌉·C^L_j`.
//! * **AMC-max** ([`AmcMax`]) — enumerates candidate mode-switch instants
//!   `s ∈ [0, R^LO_i)` as the paper describes ("considers all possible mode
//!   switch instants until the low mode response time"): LC interference is
//!   frozen at `(⌊s/Tj⌋+1)·C^L_j`, and of the `⌈R/Tk⌉` hp-HC jobs those
//!   whose deadlines precede `s` — `M(k,s) = (⌊(s−Dk)/Tk⌋+1)₊` of them —
//!   must already have completed and are charged at `C^L_k`, the rest at
//!   `C^H_k`. The final bound takes the best of AMC-max and AMC-rtb, so
//!   AMC-max dominates AMC-rtb by construction (as published).
//!
//! # Batched lane evaluation
//!
//! The LO-mode and rtb fixpoints on the hot path do not chase `tasks[j]`
//! through `Task` structs: they run over a structure-of-arrays view
//! (`SoaTasks` in [`crate::workspace`]) holding one contiguous `u64` lane
//! per parameter (`wcet_lo` / `wcet_hi` / `period` / `deadline`) in
//! priority order, plus *compacted* HC/LC sub-views. A block of up to
//! `RTA_LANES` consecutive priority positions iterates its fixpoints
//! together (`lo_rta_batched` / `rtb_batched`): each sweep walks the
//! block's shared higher-priority lanes **once**, charging every live
//! iterate — independent integer divisions the CPU can overlap — and
//! converged slots are compacted out so no division is spent on a
//! finished task. The rtb iteration additionally hoists the LC
//! interference term `Σ_{j∈hpL} ⌈R^LO_i/Tj⌉·C^L_j` out of the loop (it
//! depends only on the already-fixed low-mode response) and then touches
//! exclusively the compacted hp-HC lanes.
//!
//! # Seeding soundness
//!
//! Every batched fixpoint is seeded at
//! `max(C_i, cached bound, C_i + Σ_{j∈hp} C_j)`:
//!
//! * the *cached bound* is the task's response before the probe's
//!   candidate was inserted — interference only grows when the
//!   higher-priority set grows, so it is a lower bound on the new least
//!   fixed point `R*`;
//! * the *one-job bound* holds because every higher-priority task
//!   contributes at least one whole job to `R* ≥ C_i ≥ 1`.
//!
//! Kleene iteration from **any** start `≤ R*` converges to exactly `R*`:
//! all iterates stay `≤ R*` (monotonicity), and a stabilisation point is
//! a fixed point `≤ R*`, hence `R*` itself (least). Verdicts and bounds
//! are therefore bit-identical to the scalar [`mod@reference`] path, which
//! the equivalence suites assert.

use crate::incremental::{AdmissionState, AdmissionStats, Committed, IncrementalTest};
use crate::workspace::{AnalysisWorkspace, SoaTasks, WorkspaceRef};
use crate::SchedulabilityTest;
use mcsched_model::{Criticality, SystemUtilization, Task, TaskId, TaskSet, Time};

/// Deadline-monotonic priority order: returns task indices from highest to
/// lowest priority.
// mclint: cold — owned-order convenience; the hot path fills workspace lanes via dm_order_into
pub(crate) fn dm_order(ts: &TaskSet) -> Vec<usize> {
    let mut idx = Vec::new();
    dm_order_into(ts.as_slice(), &mut idx);
    idx
}

/// [`dm_order`] into a caller-supplied buffer (cleared first), over a raw
/// task slice — the incremental states and the workspace-backed one-shot
/// path analyse `committed + candidate` unions without materialising a
/// `TaskSet` or allocating the index vector.
/// Sorts 8 keys with the optimal 19-comparator network (Knuth, TAOCP
/// vol. 3, Fig. 49); correctness is pinned by the exhaustive 0-1
/// principle test below.
fn cas_sort8<T: Ord>(keys: &mut [T; 8]) {
    for [a, b] in [
        [0, 2],
        [1, 3],
        [4, 6],
        [5, 7],
        [0, 4],
        [1, 5],
        [2, 6],
        [3, 7],
        [0, 1],
        [2, 3],
        [4, 5],
        [6, 7],
        [2, 4],
        [3, 5],
        [1, 4],
        [3, 6],
        [1, 2],
        [3, 4],
        [5, 6],
    ] {
        if keys[a] > keys[b] {
            keys.swap(a, b);
        }
    }
}

fn dm_order_into(tasks: &[Task], idx: &mut Vec<usize>) {
    idx.clear();
    let n = tasks.len();
    if n <= 8 {
        // Sorting network on packed `(deadline, id, position)` keys:
        // 19 compare-exchanges, branch-free, no length-dependent control
        // flow. Empty slots are padded with the all-ones sentinel, which
        // sinks past every real key (a real key's position field is at
        // most 7, so it can never equal the sentinel). Small deadlines
        // and ids — the overwhelmingly common case — pack into one `u64`
        // per task; anything larger falls back to `u128` keys.
        let mut k64 = [u64::MAX; 8];
        let mut small = true;
        for (p, (k, t)) in k64.iter_mut().zip(tasks).enumerate() {
            let dl = t.deadline().as_ticks();
            let id = t.id().0;
            small &= dl < (1 << 32) && id < (1 << 16);
            *k = dl.wrapping_shl(32) | u64::from(id) << 16 | p as u64;
        }
        if small {
            cas_sort8(&mut k64);
            idx.extend(k64[..n].iter().map(|&k| (k & 0xffff) as usize));
            return;
        }
        let mut keys = [u128::MAX; 8];
        for (p, (k, t)) in keys.iter_mut().zip(tasks).enumerate() {
            *k = ((t.deadline().as_ticks() as u128) << 64) | ((t.id().0 as u128) << 32) | p as u128;
        }
        cas_sort8(&mut keys);
        idx.extend(keys[..n].iter().map(|&k| (k as u32) as usize));
        return;
    }
    if n <= 64 {
        // Pack `(deadline, id, position)` into one `u128` per task: the
        // unique `(deadline, id)` prefix decides the order and the
        // position rides along in the low 32 bits, so the sort compares
        // plain integers on the stack instead of chasing `tasks` through
        // a comparator on every probe.
        let mut keys = [0u128; 64];
        for (p, (k, t)) in keys.iter_mut().zip(tasks).enumerate() {
            *k = ((t.deadline().as_ticks() as u128) << 64) | ((t.id().0 as u128) << 32) | p as u128;
        }
        keys[..n].sort_unstable();
        idx.extend(keys[..n].iter().map(|&k| (k as u32) as usize));
        return;
    }
    idx.extend(0..n);
    // The (deadline, id) key is unique, so the unstable sort (which never
    // allocates, unlike the stable one) orders identically.
    idx.sort_unstable_by(|&a, &b| {
        tasks[a]
            .deadline()
            .cmp(&tasks[b].deadline())
            .then_with(|| tasks[a].id().cmp(&tasks[b].id()))
    });
}

/// Iterates the standard RTA fixpoint `R = wcet + interference(R)`,
/// bailing out as soon as `R` exceeds `deadline`.
fn fixpoint(wcet: Time, deadline: Time, interference: impl Fn(Time) -> Time) -> Option<Time> {
    fixpoint_from(wcet, wcet, deadline, interference)
}

/// [`fixpoint`] warm-started at `start`.
///
/// Exactness: for a monotone interference function whose least fixed point
/// is `R*`, Kleene iteration from any `start ≤ R*` with
/// `wcet + interference(start) ≥ start` converges to the same `R*` (the
/// iterates stay monotone nondecreasing and bounded by `R*`). The
/// incremental AMC state warm-starts from the response computed *before* a
/// task was added — interference only grows when the higher-priority set
/// grows, so the old response is such a valid lower bound and the returned
/// fixed point (and verdict) is identical to a cold start, only cheaper.
///
/// The `wcet + interference` accumulation saturates: a mathematically
/// overflowing response also exceeds every `deadline < u64::MAX`, so the
/// saturated value fails the deadline test just the same instead of
/// wrapping (or panicking) near `Time::MAX`.
fn fixpoint_from(
    start: Time,
    wcet: Time,
    deadline: Time,
    interference: impl Fn(Time) -> Time,
) -> Option<Time> {
    let mut r = start.max(wcet);
    loop {
        let next = wcet.saturating_add(interference(r));
        if next > deadline {
            return None;
        }
        if next == r {
            return Some(r);
        }
        r = next;
    }
}

/// `⌈a / b⌉` over raw ticks, without the `(a + b − 1) / b` overflow
/// hazard near `u64::MAX`. `b` is a task period, hence nonzero. Kept as
/// the test oracle for the reciprocal paths below (`dc_inv` / `dc_fast`);
/// the hot kernels only ever divide by multiplication.
#[cfg(test)]
fn dc(a: u64, b: u64) -> u64 {
    if a == 0 {
        0
    } else {
        (a - 1) / b + 1
    }
}

/// Exact `⌈a / b⌉` by multiplication, with `m = inv64(b)` precomputed in
/// the SoA lanes — the hot sweeps' replacement for the hardware divide
/// (one widening multiply plus a one-step fixup, fully pipelined where
/// `div` is not).
///
/// Correctness: for `b ≥ 2`, `m = ⌊2^64/b⌋` gives an error
/// `e = 2^64 − m·b ∈ [0, b)`, so for `n < 2^64`
/// `n·m/2^64 = n/b − n·e/(b·2^64) ∈ (n/b − 1, n/b]` and the truncated
/// high word `est` is `⌊n/b⌋` or `⌊n/b⌋ − 1`; `n − est·b ≥ b` detects the
/// low case exactly (no overflow: `est·b ≤ n`). For `b == 1`,
/// `m = u64::MAX` yields `est = n − 1` for `n ≥ 1` and the same fixup
/// lands on `n`. The `+ 1` never overflows: `⌊(a−1)/b⌋ ≤ 2^64 − 2`.
#[inline(always)]
pub(crate) fn dc_inv(a: u64, b: u64, m: u64) -> u64 {
    if a == 0 {
        return 0;
    }
    let n = a - 1;
    let est = ((n as u128 * m as u128) >> 64) as u64;
    let floor = est + u64::from(n - est * b >= b);
    floor + 1
}

/// Exact `⌈a/b⌉` in the small-value regime certified by
/// [`SoaTasks::fast`], with `m1 = ⌊2^64/b⌋ + 1` hoisted by the caller —
/// one widening multiply, no fixup.
///
/// Correctness: `m1·b − 2^64 = e ∈ (0, b]`, so for `n = a − 1`
/// `n·m1/2^64 = n/b + n·e/(b·2^64) ∈ [n/b, n/b + n/2^64]`. The
/// certificate guarantees `n·b < 2^64` (both below `2^32`), hence the
/// excess `n/2^64 < 1/b` cannot carry `⌊n/b⌋` past the next integer
/// (the fractional part of `n/b` is at most `(b−1)/b`), and the high
/// word is exactly `⌊(a−1)/b⌋`. Requires `a ≥ 1` (certified: every
/// iterate is at least its task's nonzero WCET) and `b ≥ 2` (so `m1`
/// does not wrap).
#[inline(always)]
fn dc_fast(a: u64, m1: u64) -> u64 {
    (((a - 1) as u128 * m1 as u128) >> 64) as u64 + 1
}

/// Exact `⌊a / b⌋` by multiplication, with `m = inv64(b)` precomputed —
/// the floor-division sibling of [`dc_inv`], used by the demand lanes
/// (`dbf` job counts are floors, not ceilings).
///
/// Correctness: the [`dc_inv`] error argument applied to `n = a` directly
/// (no `− 1` shift): the truncated high word `est` is `⌊a/b⌋` or
/// `⌊a/b⌋ − 1`, and `a − est·b ≥ b` detects the low case exactly
/// (`est·b ≤ a`, so neither the product nor the increment can overflow).
/// For `b == 1`, `m = u64::MAX` gives `est = a − 1` for `a ≥ 1` and the
/// fixup lands on `a`.
#[inline(always)]
pub(crate) fn df_inv(a: u64, b: u64, m: u64) -> u64 {
    let est = ((a as u128 * m as u128) >> 64) as u64;
    est + u64::from(a - est * b >= b)
}

/// Exact `⌊a/b⌋` in the small-value regime certified by
/// [`DemandSoa::fast`](crate::workspace::DemandSoa::fast), with
/// `m1 = ⌊2^64/b⌋ + 1` hoisted by the caller — one widening multiply, no
/// fixup.
///
/// Correctness: exactly the [`dc_fast`] argument without the ceiling
/// shift: `m1·b − 2^64 = e ∈ (0, b]`, so
/// `a·m1/2^64 = a/b + a·e/(b·2^64) ∈ [a/b, a/b + a/2^64]`. The demand
/// certificate guarantees `a·b < 2^64` (both below `2^32`), hence the
/// excess `a/2^64 < 1/b` cannot carry `⌊a/b⌋` past the next integer,
/// and the high word is exactly `⌊a/b⌋` (including `a == 0`). Requires
/// `b ≥ 2` (so `m1` does not wrap).
#[inline(always)]
pub(crate) fn df_fast(a: u64, m1: u64) -> u64 {
    ((a as u128 * m1 as u128) >> 64) as u64
}

/// Width of one batched fixpoint block: how many consecutive
/// priority-order positions iterate their response-time fixpoints
/// simultaneously. Eight keeps the per-sweep slot state (positions,
/// iterates, accumulators) in registers while giving the divider pipeline
/// several independent `⌈r/T⌉` chains per interference lane.
const RTA_LANES: usize = 8;

/// Batched low-mode RTA over the SoA lanes for positions `from..`.
///
/// Blocks of up to [`RTA_LANES`] consecutive positions run as a
/// synchronous Jacobi iteration: one sweep walks the shared
/// higher-priority lanes (`j < base`) once, loading each `(C^L_j, T_j)`
/// pair a single time and charging it against every live iterate, then
/// adds the small per-slot triangle of in-block predecessors. Each slot
/// performs exactly Kleene iteration of its own monotone interference
/// function from a sound lower bound (see the module docs), so the
/// responses and the verdict are bit-identical to the scalar path;
/// converged slots are compacted out so no division is spent on a
/// finished task. Arithmetic saturates — a saturated sum exceeds every
/// `deadline < u64::MAX` and rejects exactly like the guarded scalar
/// fixpoint.
///
/// `seed(pos)` must return a sound lower bound on the position's response
/// (0 when unknown). Responses land in `lo_resp` **by task index** via
/// `order`. Returns `false` iff some analysed task misses its deadline.
fn lo_rta_batched(
    soa: &SoaTasks,
    order: &[usize],
    from: usize,
    seed: impl Fn(usize) -> u64,
    lo_resp: &mut [Time],
) -> bool {
    // Monomorphise on the small-value certificate: the fast kernel drops
    // the saturation guards and the reciprocal fixup, both provably
    // no-ops under the certificate (see [`SoaTasks::fast`]), so the two
    // instantiations compute bit-identical responses. Small certified
    // sets skip the lane machinery entirely: at a handful of tasks the
    // shared-rectangle sweep has nothing to share and the slot state
    // costs more than it saves.
    if soa.fast() {
        if soa.len() <= RTA_SCALAR_MAX {
            lo_rta_scalar_fast(soa, order, from, seed, lo_resp)
        } else {
            lo_rta_block::<true>(soa, order, from, seed, lo_resp)
        }
    } else {
        lo_rta_block::<false>(soa, order, from, seed, lo_resp)
    }
}

/// Below this set size the certified kernels run scalar, task at a time,
/// over the same SoA lanes: one lane block covers the whole set, so the
/// batched sweep degenerates to a Jacobi iteration whose slot
/// bookkeeping outweighs the shared loads it exists to amortise. The
/// division count is identical either way (every task still iterates its
/// own Kleene chain to the same fixed point), so verdicts and responses
/// stay bit-identical.
const RTA_SCALAR_MAX: usize = 10;

/// Scalar low-mode RTA over the SoA lanes — the [`RTA_SCALAR_MAX`] route
/// of [`lo_rta_batched`]. Requires the fast-kernel certificate
/// ([`SoaTasks::fast`]): all arithmetic is plain (the certificate rules
/// out overflow) and every ceiling division is the no-fixup reciprocal
/// multiply. Seeds are the one-job bound and the caller's warm bound —
/// both sound lower bounds on the fixed point, so the computed responses
/// equal the batched kernel's (Kleene iteration from any sound seed
/// converges to the same least fixed point).
fn lo_rta_scalar_fast(
    soa: &SoaTasks,
    order: &[usize],
    from: usize,
    seed: impl Fn(usize) -> u64,
    lo_resp: &mut [Time],
) -> bool {
    let n = soa.len();
    let wl = &soa.wcet_lo;
    let inv = &soa.inv_period;
    let dl = &soa.deadline;
    // Under the certificate Σ C^L is bounded by the interference budget
    // (each budget term is at least its task's `max(C^L, C^H)`), so the
    // prefix sums below cannot overflow. No linear utilisation seed
    // here: at scalar-route sizes the handful of extra sweeps it saves
    // costs less than computing it (the batched kernel, which pays the
    // seed once per eight lanes, keeps it).
    let mut below: u64 = wl[..from].iter().sum();
    for p in from..n {
        let one_job = wl[p] + below;
        below += wl[p];
        let mut r = wl[p].max(seed(p)).max(one_job);
        if r > dl[p] {
            return false;
        }
        loop {
            let mut acc = 0u64;
            for j in 0..p {
                acc += wl[j] * dc_fast(r, inv[j].wrapping_add(1));
            }
            let next = wl[p] + acc;
            if next > dl[p] {
                return false;
            }
            if next == r {
                break;
            }
            r = next;
        }
        lo_resp[order[p]] = Time::new(r);
    }
    true
}

/// The monomorphised body of [`lo_rta_batched`].
fn lo_rta_block<const FAST: bool>(
    soa: &SoaTasks,
    order: &[usize],
    from: usize,
    seed: impl Fn(usize) -> u64,
    lo_resp: &mut [Time],
) -> bool {
    let n = soa.len();
    let wl = &soa.wcet_lo;
    let per = &soa.period;
    let inv = &soa.inv_period;
    let dl = &soa.deadline;
    // Fixed-point (32 fraction bits) underestimate of the task's
    // utilisation `C^L/T`, derived from the reciprocal lane:
    // `C·⌊2^64/T⌋/2^32 ≤ C·2^32/T`. Clamped at 1.0 — once the running
    // prefix reaches that, the linear seed below is skipped anyway.
    const FP32: u64 = 1 << 32;
    let util = |j: usize| ((wl[j] as u128 * inv[j] as u128) >> 32).min(FP32 as u128) as u64;
    // Σ C^L (and Σ util) above the first analysed position, for the
    // one-job and linear seeds.
    let mut below: u64 = wl[..from].iter().fold(0, |a, &c| a.saturating_add(c));
    let mut usum: u64 = (0..from).fold(0, |a, j| a.saturating_add(util(j)));
    let mut base = from;
    while base < n {
        let width = RTA_LANES.min(n - base);
        let mut pos = [0usize; RTA_LANES];
        let mut r = [0u64; RTA_LANES];
        for k in 0..width {
            let p = base + k;
            pos[k] = p;
            let one_job = wl[p].saturating_add(below);
            below = below.saturating_add(wl[p]);
            // Linear lower bound on the fixed point: in the reals,
            // `R* = C + Σ C_j·⌈R*/T_j⌉ ≥ C + R*·U_hp`, so
            // `R* ≥ C·2^32/den` with `den = 2^32 − usum` (substituting
            // the *under*estimate `usum/2^32 ≤ U_hp` only lowers the
            // bound). Two division-free consequences, both sound:
            //
            //  * reject: `C·2^32 > D·den` implies `R* > D` — checked by
            //    widening multiply, no quotient needed;
            //  * seed: `(C·2^32) >> bitlen(den) ≤ C·2^32/den ≤ R*`
            //    (within 2× of the exact bound), so seeding from it
            //    converges to the same fixed point (module docs).
            //
            // Skipped when `usum` saturates — the other seeds still
            // apply.
            let mut lin = 0;
            if usum < FP32 {
                let den = FP32 - usum;
                let scaled = (wl[p] as u128) << 32;
                if scaled > dl[p] as u128 * den as u128 {
                    return false;
                }
                lin = (scaled >> (128 - u128::from(den).leading_zeros())) as u64;
            }
            usum = usum.saturating_add(util(p));
            r[k] = wl[p].max(seed(p)).max(one_job).max(lin);
            // Every seed component is a sound lower bound on R*, so a
            // seed past the deadline already decides the verdict.
            if r[k] > dl[p] {
                return false;
            }
        }
        let mut live = width;
        while live > 0 {
            let mut acc = [0u64; RTA_LANES];
            // Shared rectangle: lanes above the whole block.
            for j in 0..base {
                let (c, t, m) = (wl[j], per[j], inv[j]);
                let m1 = m.wrapping_add(1);
                for a in acc[..live].iter_mut().zip(&r[..live]) {
                    *a.0 = if FAST {
                        *a.0 + c * dc_fast(*a.1, m1)
                    } else {
                        a.0.saturating_add(c.saturating_mul(dc_inv(*a.1, t, m)))
                    };
                }
            }
            // Per-slot triangle: in-block predecessors.
            for k in 0..live {
                let mut a = acc[k];
                for j in base..pos[k] {
                    a = if FAST {
                        a + wl[j] * dc_fast(r[k], inv[j].wrapping_add(1))
                    } else {
                        a.saturating_add(wl[j].saturating_mul(dc_inv(r[k], per[j], inv[j])))
                    };
                }
                acc[k] = a;
            }
            // Advance every live iterate; compact converged slots out
            // (order-preserving, so in-block hp relationships survive).
            let mut w = 0;
            for k in 0..live {
                let p = pos[k];
                let next = if FAST {
                    wl[p] + acc[k]
                } else {
                    wl[p].saturating_add(acc[k])
                };
                if next > dl[p] {
                    return false;
                }
                if next == r[k] {
                    lo_resp[order[p]] = Time::new(next);
                } else {
                    pos[w] = p;
                    r[w] = next;
                    w += 1;
                }
            }
            live = w;
        }
        base += width;
    }
    true
}

/// Batched AMC-rtb high-mode bounds over the compacted HC lanes, for HC
/// ranks `from_rank..`.
///
/// The LC contribution `Σ_{j∈hpL} ⌈R^LO_i/Tj⌉·C^L_j` is constant across
/// a task's fixpoint iterations (it depends only on the already-computed
/// low-mode response), so it is folded once per task; each sweep then
/// touches exclusively the compact hp-HC lanes. Block structure, seeding
/// and saturation are as in [`lo_rta_batched`].
fn rtb_batched(
    soa: &SoaTasks,
    order: &[usize],
    from_rank: usize,
    lo_resp: &[Time],
    seed: impl Fn(usize) -> u64,
    hi_resp: &mut [Option<Time>],
) -> bool {
    // Same certificate-driven monomorphisation (and small-set scalar
    // route) as [`lo_rta_batched`].
    if soa.fast() {
        if soa.len() <= RTA_SCALAR_MAX {
            rtb_scalar_fast(soa, order, from_rank, lo_resp, seed, hi_resp)
        } else {
            rtb_block::<true>(soa, order, from_rank, lo_resp, seed, hi_resp)
        }
    } else {
        rtb_block::<false>(soa, order, from_rank, lo_resp, seed, hi_resp)
    }
}

/// Scalar AMC-rtb bounds — the [`RTA_SCALAR_MAX`] route of
/// [`rtb_batched`]. Walks the primary lanes with the `hc` flags instead
/// of the compacted criticality views (so it runs even before
/// [`SoaTasks::build_compact`]); interference terms accumulate in
/// position order, exactly the compacted lanes' order, and the
/// fast-kernel certificate makes every sum exact — responses are
/// bit-identical to the batched kernel's.
fn rtb_scalar_fast(
    soa: &SoaTasks,
    order: &[usize],
    from_rank: usize,
    lo_resp: &[Time],
    seed: impl Fn(usize) -> u64,
    hi_resp: &mut [Option<Time>],
) -> bool {
    let n = soa.len();
    let wl = &soa.wcet_lo;
    let wh = &soa.wcet_hi;
    let inv = &soa.inv_period;
    let dl = &soa.deadline;
    let hc = &soa.hc;
    // Stack-local criticality split: the positions ahead of `p` in each
    // class, appended as `p` advances. The fixpoint loops then run over
    // dense index lists instead of testing the (data-random) `hc` flag
    // per element per sweep.
    let mut hj = [0usize; RTA_SCALAR_MAX];
    let mut lj = [0usize; RTA_SCALAR_MAX];
    let (mut hn, mut ln) = (0usize, 0usize);
    let mut below = 0u64;
    for p in 0..n {
        if !hc[p] {
            lj[ln] = p;
            ln += 1;
            continue;
        }
        if hn < from_rank {
            below += wh[p];
            hj[hn] = p;
            hn += 1;
            continue;
        }
        // LC charge, frozen at the task's own low-mode response.
        let cap = lo_resp[order[p]].as_ticks();
        let mut c0 = 0u64;
        for &j in &lj[..ln] {
            c0 += wl[j] * dc_fast(cap, inv[j].wrapping_add(1));
        }
        let one_job = wh[p] + below + c0;
        below += wh[p];
        let mut r = wh[p].max(seed(p)).max(one_job);
        if r > dl[p] {
            return false;
        }
        loop {
            let mut acc = c0;
            for &j in &hj[..hn] {
                acc += wh[j] * dc_fast(r, inv[j].wrapping_add(1));
            }
            let next = wh[p] + acc;
            if next > dl[p] {
                return false;
            }
            if next == r {
                break;
            }
            r = next;
        }
        hi_resp[order[p]] = Some(Time::new(r));
        hj[hn] = p;
        hn += 1;
    }
    true
}

/// The monomorphised body of [`rtb_batched`].
fn rtb_block<const FAST: bool>(
    soa: &SoaTasks,
    order: &[usize],
    from_rank: usize,
    lo_resp: &[Time],
    seed: impl Fn(usize) -> u64,
    hi_resp: &mut [Option<Time>],
) -> bool {
    let hn = soa.hc_len();
    let wh = &soa.wcet_hi;
    let dl = &soa.deadline;
    let hw = &soa.hc_wcet_hi;
    let ht = &soa.hc_period;
    let hm = &soa.hc_inv_period;
    let (lw, lt, lm) = (&soa.lc_wcet_lo, &soa.lc_period, &soa.lc_inv_period);
    let mut below: u64 = hw[..from_rank].iter().fold(0, |a, &c| a.saturating_add(c));
    let mut base = from_rank;
    while base < hn {
        let width = RTA_LANES.min(hn - base);
        let mut rank = [0usize; RTA_LANES];
        let mut pos = [0usize; RTA_LANES];
        let mut lcc = [0u64; RTA_LANES];
        let mut r = [0u64; RTA_LANES];
        for k in 0..width {
            let q = base + k;
            let p = soa.hc_pos[q];
            rank[k] = q;
            pos[k] = p;
            // The LC lanes above position p are exactly the first p − q
            // compacted LC entries; their charge is frozen at the task's
            // own low-mode response.
            let cap = lo_resp[order[p]].as_ticks();
            let mut c0 = 0u64;
            for l in 0..(p - q) {
                c0 = if FAST {
                    c0 + lw[l] * dc_fast(cap, lm[l].wrapping_add(1))
                } else {
                    c0.saturating_add(lw[l].saturating_mul(dc_inv(cap, lt[l], lm[l])))
                };
            }
            lcc[k] = c0;
            let one_job = wh[p].saturating_add(below).saturating_add(c0);
            below = below.saturating_add(hw[q]);
            r[k] = wh[p].max(seed(p)).max(one_job);
            // Every seed component is a sound lower bound on the
            // fixed point (the one-job bound: each hp-HC term counts at
            // least one job, the LC charge is the frozen constant), so a
            // seed past the deadline already decides the verdict — and
            // keeps fast-kernel iterates below `2^32`.
            if r[k] > dl[p] {
                return false;
            }
        }
        let mut live = width;
        while live > 0 {
            let mut acc = [0u64; RTA_LANES];
            acc[..live].copy_from_slice(&lcc[..live]);
            for q in 0..base {
                let (c, t, m) = (hw[q], ht[q], hm[q]);
                let m1 = m.wrapping_add(1);
                for a in acc[..live].iter_mut().zip(&r[..live]) {
                    *a.0 = if FAST {
                        *a.0 + c * dc_fast(*a.1, m1)
                    } else {
                        a.0.saturating_add(c.saturating_mul(dc_inv(*a.1, t, m)))
                    };
                }
            }
            for k in 0..live {
                let mut a = acc[k];
                for q in base..rank[k] {
                    a = if FAST {
                        a + hw[q] * dc_fast(r[k], hm[q].wrapping_add(1))
                    } else {
                        a.saturating_add(hw[q].saturating_mul(dc_inv(r[k], ht[q], hm[q])))
                    };
                }
                acc[k] = a;
            }
            let mut w = 0;
            for k in 0..live {
                let p = pos[k];
                let next = if FAST {
                    wh[p] + acc[k]
                } else {
                    wh[p].saturating_add(acc[k])
                };
                if next > dl[p] {
                    return false;
                }
                if next == r[k] {
                    hi_resp[order[p]] = Some(Time::new(next));
                } else {
                    rank[w] = rank[k];
                    pos[w] = p;
                    lcc[w] = lcc[k];
                    r[w] = next;
                    w += 1;
                }
            }
            live = w;
        }
        base += width;
    }
    true
}

/// Low-mode response-time analysis at `C^L` budgets under
/// deadline-monotonic priorities.
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// use mcsched_analysis::LoRta;
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let ts = TaskSet::try_from_tasks(vec![
///     Task::hi(0, 10, 2, 4)?,
///     Task::lo(1, 20, 5)?,
/// ])?;
/// let r = LoRta::compute(&ts).expect("LO-mode schedulable");
/// assert_eq!(r[0].as_ticks(), 2);  // highest priority: runs alone
/// assert_eq!(r[1].as_ticks(), 7);  // 5 + 2·⌈7/10⌉ = 7: fixpoint
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoRta;

impl LoRta {
    /// Computes every task's low-mode response time, in task-set order.
    /// Returns `None` if any task misses its deadline in low mode.
    pub fn compute(ts: &TaskSet) -> Option<Vec<Time>> {
        let order = dm_order(ts);
        Self::compute_with_order(ts, &order)
    }

    /// As [`LoRta::compute`], under a caller-supplied priority order
    /// (indices from highest to lowest priority).
    ///
    /// Runs the batched SoA kernel over pooled workspace lanes; responses
    /// are bit-identical to scalar per-task iteration (see the module
    /// docs).
    // mclint: cold — allocates only the caller-owned result, once per judgement
    pub fn compute_with_order(ts: &TaskSet, order: &[usize]) -> Option<Vec<Time>> {
        let tasks = ts.as_slice();
        let mut resp = vec![Time::ZERO; tasks.len()];
        AnalysisWorkspace::with(|ws| {
            ws.soa.load_primary(tasks, order);
            lo_rta_batched(&ws.soa, order, 0, |_| 0, &mut resp)
        })
        .then_some(resp)
    }
}

/// The seed low-mode RTA: one scalar fixpoint per task, chasing the AoS
/// `Task` structs. Retained for the [`reference`] module (the hot path
/// runs [`lo_rta_batched`] instead).
// mclint: cold — seed implementation kept for the reference module, never on the probe path
fn lo_rta_scalar(tasks: &[Task], order: &[usize]) -> Option<Vec<Time>> {
    let mut resp = vec![Time::ZERO; tasks.len()];
    for (pos, &i) in order.iter().enumerate() {
        let hp = &order[..pos];
        let r = fixpoint(tasks[i].wcet_lo(), tasks[i].deadline(), |r| {
            hp.iter()
                .map(|&j| {
                    tasks[j]
                        .wcet_lo()
                        .saturating_mul(r.div_ceil(tasks[j].period()))
                })
                .fold(Time::ZERO, Time::saturating_add)
        })?;
        resp[i] = r;
    }
    Some(resp)
}

/// Shared AMC machinery: low-mode RTA plus per-variant high-mode RTA,
/// allocating its index and response vectors per call. Only the
/// [`reference`] module still runs this; the hot path goes through
/// [`amc_schedulable_in`].
fn amc_schedulable(ts: &TaskSet, hi_rta: impl Fn(&AmcContext<'_>, usize) -> Option<Time>) -> bool {
    if ts.is_empty() {
        return true;
    }
    let order = dm_order(ts);
    let Some(lo_resp) = lo_rta_scalar(ts.as_slice(), &order) else {
        return false;
    };
    let ctx = AmcContext {
        tasks: ts.as_slice(),
        order: &order,
        lo_resp: &lo_resp,
    };
    for &i in order.iter() {
        if ctx.tasks[i].criticality() == Criticality::High {
            // The seed path re-derives each task's priority position with
            // a linear scan, exactly as it always did (the hot path
            // threads positions through instead).
            match hi_rta(&ctx, ctx.pos_of(i)) {
                Some(r) if r <= ctx.tasks[i].deadline() => {}
                _ => return false,
            }
        }
    }
    true
}

/// [`amc_schedulable`] over workspace scratch: delegates to the
/// incremental layer's [`analyze_into`] with the workspace's reusable
/// cache, SoA lanes and candidate-walk buffers, so the one-shot and the
/// cache-rebuild paths are literally the same code and the steady-state
/// one-shot path allocates nothing.
fn amc_schedulable_in(ts: &TaskSet, variant: AmcVariant, ws: &mut AnalysisWorkspace) -> bool {
    let AnalysisWorkspace {
        streams,
        hc,
        amc,
        soa,
        ..
    } = ws;
    analyze_into(ts.as_slice(), variant, false, soa, streams, hc, amc)
}

/// One step sequence of a single interference term in the streaming
/// AMC-max candidate walk: fires at `next`, `next + stride`, … until the
/// step point reaches the task's low-mode response time (stepping is
/// saturating, see [`AmcContext::fold_candidates`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CandStream {
    /// The next step instant (`Time::MAX`-saturated once exhausted).
    next: Time,
    /// Distance between steps (the interferer's period).
    stride: Time,
    /// Steps fired so far — the term's current job count.
    count: u64,
    /// Which running quantity a fire updates.
    kind: StreamKind,
}

/// What a [`CandStream`] fire contributes.
#[derive(Debug, Clone, Copy)]
enum StreamKind {
    /// LC interferer: a fire freezes one more `C^L` job into the LC sum.
    Lc {
        /// The interferer's `C^L`.
        cost: Time,
    },
    /// HC interferer bound (deadline- or release-based): a fire raises the
    /// completed-job bound `M(k, s)` of the slot.
    Hc {
        /// Index into the walk's [`HcSlot`] array.
        slot: usize,
    },
}

/// Per-hp-HC-task state of the streaming AMC-max walk: the constants of
/// its interference term plus the current completed-job bound `M(k, s)`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HcSlot {
    wcet_lo: Time,
    wcet_hi: Time,
    period: Time,
    /// `max(by_deadline(s), by_release(s))` at the walk's current instant.
    m: u64,
}

/// Bundled inputs for the high-mode analyses.
struct AmcContext<'a> {
    tasks: &'a [Task],
    order: &'a [usize],
    lo_resp: &'a [Time],
}

impl AmcContext<'_> {
    /// The priority position of task index `i` — a linear scan, used only
    /// by the [`reference`] paths (the hot paths already know their
    /// position and pass it straight through).
    fn pos_of(&self, i: usize) -> usize {
        self.order
            .iter()
            .position(|&x| x == i)
            .expect("task in order")
    }

    /// Higher-priority task indices for the task at priority position
    /// `pos`.
    fn hp(&self, pos: usize) -> &[usize] {
        &self.order[..pos]
    }

    fn rtb_response(&self, pos: usize) -> Option<Time> {
        let i = self.order[pos];
        self.rtb_response_from(pos, self.tasks[i].wcet_hi())
    }

    /// [`AmcContext::rtb_response`] with a warm-started fixpoint (see
    /// [`fixpoint_from`] for why the result is identical). The LC charge
    /// is frozen at the low-mode response — constant across iterations —
    /// so it is folded once and only the HC terms are re-derived per
    /// iteration.
    fn rtb_response_from(&self, pos: usize, start: Time) -> Option<Time> {
        let i = self.order[pos];
        let ti = &self.tasks[i];
        let hp = self.hp(pos);
        let lo_cap = self.lo_resp[i];
        let lc_const: Time = hp
            .iter()
            .map(|&j| {
                let tj = &self.tasks[j];
                match tj.criticality() {
                    Criticality::Low => tj.wcet_lo().saturating_mul(lo_cap.div_ceil(tj.period())),
                    Criticality::High => Time::ZERO,
                }
            })
            .fold(Time::ZERO, Time::saturating_add);
        fixpoint_from(start, ti.wcet_hi(), ti.deadline(), |r| {
            hp.iter()
                .map(|&j| {
                    let tj = &self.tasks[j];
                    match tj.criticality() {
                        Criticality::High => tj.wcet_hi().saturating_mul(r.div_ceil(tj.period())),
                        Criticality::Low => Time::ZERO,
                    }
                })
                .fold(Time::ZERO, Time::saturating_add)
                .saturating_add(lc_const)
        })
    }

    /// The seed rtb fixpoint: re-derives every hp term — LC included —
    /// on every iteration. Retained for the [`reference`] paths.
    fn rtb_response_reference(&self, pos: usize) -> Option<Time> {
        let i = self.order[pos];
        let ti = &self.tasks[i];
        let hp = self.hp(pos);
        let lo_cap = self.lo_resp[i];
        fixpoint(ti.wcet_hi(), ti.deadline(), |r| {
            hp.iter()
                .map(|&j| {
                    let tj = &self.tasks[j];
                    match tj.criticality() {
                        Criticality::High => tj.wcet_hi().saturating_mul(r.div_ceil(tj.period())),
                        Criticality::Low => {
                            tj.wcet_lo().saturating_mul(lo_cap.div_ceil(tj.period()))
                        }
                    }
                })
                .fold(Time::ZERO, Time::saturating_add)
        })
    }

    /// The AMC-max bound for the task at priority position `pos`: the
    /// worst response over all switch instants, never worse than the rtb
    /// bound (shared by the one-shot test and the incremental state so
    /// the code paths cannot diverge).
    ///
    /// Candidate switch instants are walked by [`fold_candidates`]'s
    /// streaming k-way merge instead of materialising, sorting and
    /// deduplicating a `Vec<Time>`; the per-candidate interference is
    /// delta-updated as streams fire, so each fixpoint iteration only pays
    /// one `⌈r/T⌉` per higher-priority HC task and nothing at all for LC
    /// tasks. The visited instants and every fixpoint are identical to the
    /// seed implementation retained in [`crate::amc::reference`].
    ///
    /// [`fold_candidates`]: AmcContext::fold_candidates
    fn max_bound_in(
        &self,
        pos: usize,
        streams: &mut Vec<CandStream>,
        slots: &mut Vec<HcSlot>,
    ) -> Option<Time> {
        // max over switch instants; infeasible at any instant → None.
        let mut prev_lc = None;
        let worst =
            self.fold_candidates(pos, streams, slots, Time::ZERO, |worst, _s, lc, slots| {
                // Dominance skip (a structural win of the delta-updated
                // walk): if no LC term stepped since the last *evaluated*
                // candidate, only the completed-job bounds `M(k, s)` grew,
                // so the interference function shrank pointwise and this
                // candidate's least fixed point is ≤ the previous one — it
                // can neither raise the max nor turn infeasible. The
                // returned bound and verdict are exactly the seed path's
                // (`s = 0` is always evaluated: `prev_lc` starts unset).
                if prev_lc == Some(lc) {
                    return Some(worst);
                }
                prev_lc = Some(lc);
                let r = self.max_response_streamed(pos, lc, slots)?;
                Some(worst.max(r))
            })?;
        // AMC-max result never needs to be worse than AMC-rtb.
        match self.rtb_response(pos) {
            Some(rtb) => Some(worst.min(rtb)),
            None => Some(worst),
        }
    }

    /// AMC-max response at one switch instant, from the walk's running
    /// interference state: `lc` is the frozen LC demand at `s` and each
    /// [`HcSlot`] carries `M(k, s)`, so the fixpoint body is a single pass
    /// over the hp-HC slots. Computes exactly the sums of
    /// [`AmcContext::max_response_at`] (integer arithmetic, identical
    /// operations per term).
    fn max_response_streamed(&self, pos: usize, lc: Time, slots: &[HcSlot]) -> Option<Time> {
        let ti = &self.tasks[self.order[pos]];
        fixpoint(ti.wcet_hi(), ti.deadline(), |r| {
            let mut total = lc;
            for slot in slots {
                let n = r.div_ceil(slot.period);
                let m = slot.m.min(n);
                total = total.saturating_add(
                    slot.wcet_lo
                        .saturating_mul(m)
                        .saturating_add(slot.wcet_hi.saturating_mul(n - m)),
                );
            }
            total
        })
    }

    /// Folds `f` over every candidate switch instant of the task at
    /// priority position `pos`, in strictly increasing order with
    /// coinciding steps merged — exactly the sorted-deduplicated set
    /// `{0} ∪ {step points < R^LO_i}` the seed implementation
    /// materialised.
    ///
    /// `f` receives the accumulator, the instant `s`, the frozen LC
    /// interference `Σ_{j∈hpL} (⌊s/Tj⌋+1)·C^L_j` and the hp-HC slots with
    /// their completed-job bounds `M(k, s)` up to date; returning `None`
    /// aborts the walk.
    fn fold_candidates<T>(
        &self,
        pos: usize,
        streams: &mut Vec<CandStream>,
        slots: &mut Vec<HcSlot>,
        init: T,
        mut f: impl FnMut(T, Time, Time, &[HcSlot]) -> Option<T>,
    ) -> Option<T> {
        let r_lo = self.lo_resp[self.order[pos]];
        streams.clear();
        slots.clear();
        let mut lc = Time::ZERO;
        for &j in self.hp(pos) {
            let tj = &self.tasks[j];
            match tj.criticality() {
                Criticality::Low => {
                    // (⌊s/T⌋+1)·C^L: one job at s = 0, stepping at every
                    // multiple of T.
                    lc = lc.saturating_add(tj.wcet_lo());
                    streams.push(CandStream {
                        next: tj.period(),
                        stride: tj.period(),
                        count: 0,
                        kind: StreamKind::Lc { cost: tj.wcet_lo() },
                    });
                }
                Criticality::High => {
                    // M(k, s) = max(by_deadline, by_release) steps at
                    // D + a·T (deadline bound) and at multiples of T
                    // (release bound).
                    let slot = slots.len();
                    slots.push(HcSlot {
                        wcet_lo: tj.wcet_lo(),
                        wcet_hi: tj.wcet_hi(),
                        period: tj.period(),
                        m: 0,
                    });
                    streams.push(CandStream {
                        next: tj.deadline(),
                        stride: tj.period(),
                        count: 0,
                        kind: StreamKind::Hc { slot },
                    });
                    streams.push(CandStream {
                        next: tj.period(),
                        stride: tj.period(),
                        count: 0,
                        kind: StreamKind::Hc { slot },
                    });
                }
            }
        }
        // s = 0 is always a candidate.
        let mut acc = f(init, Time::ZERO, lc, slots)?;
        loop {
            // k-way merge: the earliest pending step strictly below R^LO.
            let mut s = r_lo;
            for stream in streams.iter() {
                if stream.next < s {
                    s = stream.next;
                }
            }
            if s >= r_lo {
                return Some(acc);
            }
            // Fire every stream stepping at s (coinciding steps collapse
            // into the one candidate, replacing the seed path's dedup).
            for stream in streams.iter_mut() {
                if stream.next != s {
                    continue;
                }
                stream.count += 1;
                match stream.kind {
                    StreamKind::Lc { cost } => lc += cost,
                    StreamKind::Hc { slot } => {
                        let m = &mut slots[slot].m;
                        *m = (*m).max(stream.count);
                    }
                }
                // Saturating stepping is the exact overflow guard: a
                // mathematical next step beyond `u64::MAX` also lies
                // beyond `R^LO_i ≤ u64::MAX`, and the saturated value
                // fails the `next < r_lo` test just the same, ending the
                // stream instead of wrapping (or panicking) near
                // `Time::MAX`.
                stream.next = stream.next.saturating_add(stream.stride);
            }
            acc = f(acc, s, lc, slots)?;
        }
    }

    /// The seed implementation of the AMC-max bound — materialise, sort
    /// and deduplicate the candidate instants, then re-derive every
    /// interference term per candidate. Retained (not called on the hot
    /// path) as the equivalence reference for the streaming walk; see
    /// [`crate::amc::reference`].
    fn max_bound_reference(&self, pos: usize) -> Option<Time> {
        let mut worst = Time::ZERO;
        for s in self.switch_candidates(pos) {
            let r = self.max_response_at(pos, s)?;
            worst = worst.max(r);
        }
        match self.rtb_response_reference(pos) {
            Some(rtb) => Some(worst.min(rtb)),
            None => Some(worst),
        }
    }

    /// AMC-max response for switch instant `s` (reference path).
    fn max_response_at(&self, pos: usize, s: Time) -> Option<Time> {
        let ti = &self.tasks[self.order[pos]];
        let hp = self.hp(pos);
        fixpoint(ti.wcet_hi(), ti.deadline(), |r| {
            hp.iter()
                .map(|&j| {
                    let tj = &self.tasks[j];
                    match tj.criticality() {
                        Criticality::Low => tj
                            .wcet_lo()
                            .saturating_mul(s.div_floor(tj.period()).saturating_add(1)),
                        Criticality::High => {
                            let n = r.div_ceil(tj.period());
                            // Two sound lower bounds on the hp-HC jobs that
                            // certainly completed (hence ran at C^L) before
                            // the switch at s:
                            //  * jobs with deadlines at or before s (low-mode
                            //    deadlines are guaranteed): ⌊(s−D)/T⌋ + 1;
                            //  * all releases in [0, s] except at most one —
                            //    with constrained deadlines (D ≤ T), at most
                            //    one job per task is incomplete at any
                            //    deadline-meeting instant: ⌊s/T⌋.
                            let by_deadline = if s >= tj.deadline() {
                                (s - tj.deadline()).div_floor(tj.period()) + 1
                            } else {
                                0
                            };
                            let by_release = s.div_floor(tj.period());
                            let m = by_deadline.max(by_release).min(n);
                            tj.wcet_lo()
                                .saturating_mul(m)
                                .saturating_add(tj.wcet_hi().saturating_mul(n - m))
                        }
                    }
                })
                .fold(Time::ZERO, Time::saturating_add)
        })
    }

    /// Candidate switch instants for the task at priority position `pos`:
    /// points in `[0, R^LO_i)` where some interference term steps, plus 0
    /// (reference path; the hot path streams the same instants through
    /// [`AmcContext::fold_candidates`] without materialising them).
    // mclint: cold — reference path; the hot path streams candidates without materialising
    fn switch_candidates(&self, pos: usize) -> Vec<Time> {
        let r_lo = self.lo_resp[self.order[pos]];
        let mut cands = vec![Time::ZERO];
        for &j in self.hp(pos) {
            let tj = &self.tasks[j];
            match tj.criticality() {
                Criticality::Low => {
                    // (⌊s/T⌋+1) steps at multiples of T.
                    let mut t = tj.period();
                    while t < r_lo {
                        cands.push(t);
                        t = t.saturating_add(tj.period());
                    }
                }
                Criticality::High => {
                    // M(k, s) steps at D + j·T (deadline bound) and at
                    // multiples of T (release bound).
                    let mut t = tj.deadline();
                    while t < r_lo {
                        cands.push(t);
                        t = t.saturating_add(tj.period());
                    }
                    let mut t = tj.period();
                    while t < r_lo {
                        cands.push(t);
                        t = t.saturating_add(tj.period());
                    }
                }
            }
        }
        cands.sort_unstable();
        cands.dedup();
        cands
    }
}

/// The AMC-rtb (response-time bound) schedulability test.
///
/// By default priorities are deadline-monotonic. AMC-rtb is
/// **OPA-compatible** (a task's bound depends only on the *set* of
/// higher-priority tasks, not their relative order), so
/// [`AmcRtb::with_audsley`] enables Audsley's Optimal Priority Assignment,
/// which strictly dominates DM for this test.
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// use mcsched_analysis::{AmcRtb, SchedulabilityTest};
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let ts = TaskSet::try_from_tasks(vec![
///     Task::hi(0, 10, 2, 4)?,
///     Task::lo(1, 20, 5)?,
/// ])?;
/// assert!(AmcRtb::new().is_schedulable(&ts));
/// assert!(AmcRtb::with_audsley().is_schedulable(&ts));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AmcRtb {
    audsley: bool,
}

impl AmcRtb {
    /// AMC-rtb under deadline-monotonic priorities.
    pub fn new() -> Self {
        AmcRtb { audsley: false }
    }

    /// AMC-rtb under Audsley's Optimal Priority Assignment: priorities are
    /// assigned from the lowest level up; at each level any task whose
    /// low-mode RTA and (for HC tasks) rtb high-mode RTA pass with *all*
    /// remaining tasks as higher-priority interference can take the level.
    /// Accepts a superset of the DM variant.
    pub fn with_audsley() -> Self {
        AmcRtb { audsley: true }
    }

    /// The Audsley priority order found for this set (highest priority
    /// first), if one exists. Exposed so the simulator can run the
    /// assignment the analysis certified.
    // mclint: cold — allocates only the caller-owned order, once per judgement
    pub fn audsley_order(ts: &TaskSet) -> Option<Vec<usize>> {
        AnalysisWorkspace::with(|ws| {
            let AnalysisWorkspace { idx, idx2, soa, .. } = ws;
            if !audsley_lowest_first(ts.as_slice(), soa, idx, idx2) {
                return None;
            }
            Some(idx2.iter().rev().copied().collect())
        })
    }
}

/// The Audsley search over caller scratch: fills `lowest_first` with the
/// assignment from the lowest priority level up, returning `false` when
/// some level has no feasible task. The allocation-free core behind
/// [`AmcRtb::audsley_order`], the one-shot OPA test and the incremental
/// OPA admission probes. The unassigned set lives in `soa` lanes
/// (slice order), shrunk by delta as levels are assigned, so every
/// feasibility probe runs over compact contiguous lanes.
fn audsley_lowest_first(
    tasks: &[Task],
    soa: &mut SoaTasks,
    unassigned: &mut Vec<usize>,
    lowest_first: &mut Vec<usize>,
) -> bool {
    unassigned.clear();
    unassigned.extend(0..tasks.len());
    soa.load_seq(tasks);
    lowest_first.clear();
    while !unassigned.is_empty() {
        // Find a task that is feasible at the current (lowest free)
        // priority level, with every other unassigned task above it.
        let found = (0..unassigned.len()).find(|&p| rtb_feasible_at(soa, p));
        match found {
            Some(p) => {
                lowest_first.push(unassigned.remove(p));
                soa.remove(p);
            }
            None => return false,
        }
    }
    true
}

/// Checks the unassigned task at lane `p` at the lowest priority level,
/// below every other unassigned lane (low-mode RTA, and the rtb high-mode
/// bound when it is HC). The higher-priority set is `all lanes except p`,
/// iterated as two contiguous ranges — no index filtering, no
/// materialised `hp` vector; the HI fixpoint folds the constant LC charge
/// once and then iterates over the compacted HC lanes only. Interference
/// sums are integer, so the order of terms is irrelevant to the fixed
/// points.
fn rtb_feasible_at(soa: &SoaTasks, p: usize) -> bool {
    let n = soa.len();
    let wl = &soa.wcet_lo;
    let per = &soa.period;
    let inv = &soa.inv_period;
    let d = soa.deadline[p];
    let ci = wl[p];
    let mut r = ci;
    let lo_resp = loop {
        let mut acc = 0u64;
        for j in 0..p {
            acc = acc.saturating_add(wl[j].saturating_mul(dc_inv(r, per[j], inv[j])));
        }
        for j in p + 1..n {
            acc = acc.saturating_add(wl[j].saturating_mul(dc_inv(r, per[j], inv[j])));
        }
        let next = ci.saturating_add(acc);
        if next > d {
            return false;
        }
        if next == r {
            break r;
        }
        r = next;
    };
    if !soa.is_hc(p) {
        return true;
    }
    // p is HC, so every LC lane interferes; its charge is frozen at the
    // low-mode response just computed.
    let mut lcc = 0u64;
    for ((&c, &t), &m) in soa
        .lc_wcet_lo
        .iter()
        .zip(&soa.lc_period)
        .zip(&soa.lc_inv_period)
    {
        lcc = lcc.saturating_add(c.saturating_mul(dc_inv(lo_resp, t, m)));
    }
    let prank = soa.hc_rank_below(p);
    let (hw, ht, hm) = (&soa.hc_wcet_hi, &soa.hc_period, &soa.hc_inv_period);
    let ch = soa.wcet_hi[p];
    let mut r = ch;
    loop {
        let mut acc = lcc;
        for q in 0..prank {
            acc = acc.saturating_add(hw[q].saturating_mul(dc_inv(r, ht[q], hm[q])));
        }
        for q in prank + 1..hw.len() {
            acc = acc.saturating_add(hw[q].saturating_mul(dc_inv(r, ht[q], hm[q])));
        }
        let next = ch.saturating_add(acc);
        if next > d {
            return false;
        }
        if next == r {
            return true;
        }
        r = next;
    }
}

impl AmcRtb {
    fn variant(&self) -> AmcVariant {
        if self.audsley {
            AmcVariant::RtbAudsley
        } else {
            AmcVariant::RtbDm
        }
    }
}

impl SchedulabilityTest for AmcRtb {
    fn name(&self) -> &'static str {
        if self.audsley {
            "AMC-rtb-OPA"
        } else {
            "AMC-rtb"
        }
    }
    fn is_schedulable(&self, ts: &TaskSet) -> bool {
        AnalysisWorkspace::with(|ws| self.is_schedulable_in(ts, ws))
    }

    fn is_schedulable_in(&self, ts: &TaskSet, ws: &mut AnalysisWorkspace) -> bool {
        if self.audsley {
            let AnalysisWorkspace { idx, idx2, soa, .. } = ws;
            audsley_lowest_first(ts.as_slice(), soa, idx, idx2)
        } else {
            amc_schedulable_in(ts, AmcVariant::RtbDm, ws)
        }
    }

    // mclint: cold — one boxed state per session, reused across every probe
    fn admission_state(&self) -> Box<dyn AdmissionState + '_> {
        Box::new(self.new_state())
    }

    // mclint: cold — one boxed state per session, reused across every probe
    fn admission_state_in(&self, ws: &WorkspaceRef) -> Box<dyn AdmissionState + '_> {
        Box::new(AmcState::with_workspace(self.variant(), ws.clone()))
    }
}

impl IncrementalTest for AmcRtb {
    type State = AmcState;

    fn new_state(&self) -> AmcState {
        AmcState::with_workspace(self.variant(), WorkspaceRef::new())
    }

    // mclint: cold — session construction; the Rc bump happens once per processor
    fn new_state_in(&self, ws: &WorkspaceRef) -> AmcState {
        AmcState::with_workspace(self.variant(), ws.clone())
    }
}

/// The AMC-max schedulability test (the variant the DATE 2017 paper uses
/// for its "AMC" results).
///
/// Dominates [`AmcRtb`]: the returned response bound is the minimum of the
/// switch-instant enumeration and the rtb bound.
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// use mcsched_analysis::{AmcMax, SchedulabilityTest};
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let ts = TaskSet::try_from_tasks(vec![
///     Task::hi(0, 10, 2, 4)?,
///     Task::hi(1, 25, 3, 7)?,
///     Task::lo(2, 20, 5)?,
/// ])?;
/// assert!(AmcMax::new().is_schedulable(&ts));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AmcMax {
    _priv: (),
}

impl AmcMax {
    /// Creates the test.
    pub fn new() -> Self {
        AmcMax { _priv: () }
    }
}

impl SchedulabilityTest for AmcMax {
    fn name(&self) -> &'static str {
        "AMC-max"
    }
    fn is_schedulable(&self, ts: &TaskSet) -> bool {
        AnalysisWorkspace::with(|ws| self.is_schedulable_in(ts, ws))
    }

    fn is_schedulable_in(&self, ts: &TaskSet, ws: &mut AnalysisWorkspace) -> bool {
        amc_schedulable_in(ts, AmcVariant::Max, ws)
    }

    // mclint: cold — one boxed state per session, reused across every probe
    fn admission_state(&self) -> Box<dyn AdmissionState + '_> {
        Box::new(self.new_state())
    }

    // mclint: cold — one boxed state per session, reused across every probe
    fn admission_state_in(&self, ws: &WorkspaceRef) -> Box<dyn AdmissionState + '_> {
        Box::new(AmcState::with_workspace(AmcVariant::Max, ws.clone()))
    }
}

impl IncrementalTest for AmcMax {
    type State = AmcState;

    fn new_state(&self) -> AmcState {
        AmcState::with_workspace(AmcVariant::Max, WorkspaceRef::new())
    }

    // mclint: cold — session construction; the Rc bump happens once per processor
    fn new_state_in(&self, ws: &WorkspaceRef) -> AmcState {
        AmcState::with_workspace(AmcVariant::Max, ws.clone())
    }
}

/// Which AMC analysis an [`AmcState`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AmcVariant {
    /// AMC-rtb under deadline-monotonic priorities.
    RtbDm,
    /// AMC-rtb under Audsley's OPA (no incremental structure — every
    /// query re-runs the priority-assignment search).
    RtbAudsley,
    /// AMC-max under deadline-monotonic priorities.
    Max,
}

/// The cached per-processor analysis of a committed, schedulable set:
/// the DM priority order plus every response-time fixed point.
#[derive(Debug, Clone, Default)]
pub(crate) struct AmcCache {
    /// Task indices from highest to lowest priority.
    order: Vec<usize>,
    /// Low-mode response time per task index.
    lo_resp: Vec<Time>,
    /// High-mode response bound per task index (`None` for LC tasks).
    hi_resp: Vec<Option<Time>>,
}

impl AmcCache {
    /// Empties the cache, keeping the buffers for reuse.
    fn clear(&mut self) {
        self.order.clear();
        self.lo_resp.clear();
        self.hi_resp.clear();
    }
}

/// The workspace's name for the same buffers: the one-shot path reuses
/// the incremental layer's cache type as scratch (see
/// [`amc_schedulable_in`]).
pub(crate) type AmcScratch = AmcCache;

/// Incremental admission for the AMC response-time analyses.
///
/// Inserting a candidate into the deadline-monotonic order leaves every
/// higher-priority task's analysis untouched (its higher-priority set is
/// unchanged), so those response times are reused verbatim; the candidate
/// and the tasks below it re-run their fixed-point iterations
/// **warm-started** from the previous responses, which converge to the
/// same least fixed points (see `fixpoint_from`) — the verdict is
/// exactly the one-shot test's, at a fraction of the iterations.
/// All buffers — the committed cache, the candidate scratch cache and the
/// shared [`AnalysisWorkspace`] — are reused across admission queries, so
/// the steady-state probe path performs no heap allocations (pinned by
/// `tests/zero_alloc.rs`).
#[derive(Debug, Clone)]
pub struct AmcState {
    variant: AmcVariant,
    committed: Committed,
    /// The committed set's analysis; meaningful only while `cache_valid`
    /// (an invalid cache forces the next query onto the full-analysis
    /// path, exactly as the seed behaviour after an unchecked commit).
    cache: AmcCache,
    cache_valid: bool,
    /// The analysis computed by the last successful `try_admit`
    /// (`pending` names its task), adopted by a matching `commit` with a
    /// buffer swap instead of a re-run.
    scratch: AmcCache,
    pending: Option<TaskId>,
    /// Where `commit` must insert the pending task's lanes into `soa`
    /// (`None` when the probing path already left `soa` holding the
    /// union, as the full-analysis fallback does).
    pending_insert: Option<usize>,
    /// SoA lane view of the committed set in `cache.order` — maintained
    /// by delta under probes/commits so the batched kernels never rebuild
    /// it. Meaningful only while `cache_valid`.
    soa: SoaTasks,
    /// Scratch buffers shared with the other states of the same
    /// partitioning run.
    ws: WorkspaceRef,
}

impl AmcState {
    fn with_workspace(variant: AmcVariant, ws: WorkspaceRef) -> Self {
        AmcState {
            variant,
            committed: Committed::default(),
            cache: AmcCache::default(),
            cache_valid: variant != AmcVariant::RtbAudsley,
            scratch: AmcCache::default(),
            pending: None,
            pending_insert: None,
            soa: SoaTasks::default(),
            ws,
        }
    }

    fn rebuild_cache(&mut self) {
        self.pending = None;
        self.pending_insert = None;
        match self.variant {
            AmcVariant::RtbAudsley => self.cache_valid = false,
            _ => {
                let mut ws = self.ws.borrow_mut();
                let ws = &mut *ws;
                self.cache_valid = analyze_into(
                    self.committed.tasks.as_slice(),
                    self.variant,
                    true,
                    &mut self.soa,
                    &mut ws.streams,
                    &mut ws.hc,
                    &mut self.cache,
                );
            }
        }
    }
}

/// Full analysis of `tasks` into `out` (used for the non-incremental
/// paths and cache rebuilds); `soa` receives the DM-ordered lane view
/// (left holding it — with the criticality views built when `views` is
/// set — on success, for delta reuse by the incremental state);
/// `streams`/`slots` are candidate-walk scratch. Returns `false` iff the
/// one-shot test rejects — `out` is then partial and must be treated as
/// invalid.
fn analyze_into(
    tasks: &[Task],
    variant: AmcVariant,
    views: bool,
    soa: &mut SoaTasks,
    streams: &mut Vec<CandStream>,
    slots: &mut Vec<HcSlot>,
    out: &mut AmcCache,
) -> bool {
    out.clear();
    let AmcCache {
        order,
        lo_resp,
        hi_resp,
    } = out;
    dm_order_into(tasks, order);
    soa.load_primary(tasks, order);
    lo_resp.resize(tasks.len(), Time::ZERO);
    if !lo_rta_batched(soa, order, 0, |_| 0, lo_resp) {
        return false;
    }
    // The criticality views are only needed past low mode — a set
    // rejected above never pays for them — and the scalar rtb route
    // reads the primary lanes directly, so a one-shot verdict
    // (`views == false`) can skip them entirely. A failed analysis
    // leaves the view partial, which is fine: the admission states treat
    // the SoA mirror as meaningful only while their cache is valid, and
    // every rebuild goes through a full reload.
    let scalar_rtb = variant == AmcVariant::RtbDm && soa.fast() && soa.len() <= RTA_SCALAR_MAX;
    if !scalar_rtb {
        soa.build_compact();
    }
    hi_resp.resize(tasks.len(), None);
    let ok = match variant {
        AmcVariant::RtbDm => rtb_batched(soa, order, 0, lo_resp, |_| 0, hi_resp),
        AmcVariant::Max => {
            let ctx = AmcContext {
                tasks,
                order: order.as_slice(),
                lo_resp: lo_resp.as_slice(),
            };
            for (pos, &i) in ctx.order.iter().enumerate() {
                if tasks[i].criticality() != Criticality::High {
                    continue;
                }
                match ctx.max_bound_in(pos, streams, slots) {
                    Some(r) if r <= tasks[i].deadline() => hi_resp[i] = Some(r),
                    _ => return false,
                }
            }
            true
        }
        AmcVariant::RtbAudsley => unreachable!("audsley has no DM cache"),
    };
    if ok && views && scalar_rtb {
        // The incremental states delta-update the criticality views on
        // every probe, so a successful rebuild must leave them in place.
        soa.build_compact();
    }
    ok
}

/// DM insertion position of `cand` in the cached (sorted,
/// duplicate-free) priority order.
fn dm_insert_pos(committed: &[Task], cache: &AmcCache, cand: &Task) -> usize {
    let key = (cand.deadline(), cand.id());
    cache
        .order
        .partition_point(|&i| (committed[i].deadline(), committed[i].id()) < key)
}

/// The incremental admission query: reuse the prefix above the insertion
/// point `p`, warm-start the suffix from the cached bounds (sound lower
/// bounds on the new fixed points — see the module docs). `soa` must
/// hold the committed lanes with the candidate's already inserted at `p`
/// (the caller's delta update). The union set is assembled in `union`
/// and the analysis lands in `out`, both reused across probes. Returns
/// `false` iff the one-shot test rejects the union.
#[allow(clippy::too_many_arguments)]
fn admit_incremental_into(
    committed: &[Task],
    cache: &AmcCache,
    cand: &Task,
    p: usize,
    variant: AmcVariant,
    soa: &SoaTasks,
    union: &mut Vec<Task>,
    streams: &mut Vec<CandStream>,
    slots: &mut Vec<HcSlot>,
    out: &mut AmcCache,
) -> bool {
    let n = committed.len();
    union.clear();
    union.extend_from_slice(committed);
    union.push(*cand);
    let tasks = union.as_slice();

    out.clear();
    let AmcCache {
        order,
        lo_resp,
        hi_resp,
    } = out;
    order.extend_from_slice(&cache.order[..p]);
    order.push(n);
    order.extend_from_slice(&cache.order[p..]);

    // Low-mode RTA: positions above p are untouched; the candidate
    // starts cold, the suffix warm-starts from its previous response.
    lo_resp.resize(n + 1, Time::ZERO);
    for &i in &cache.order[..p] {
        lo_resp[i] = cache.lo_resp[i];
    }
    if !lo_rta_batched(
        soa,
        order,
        p,
        |pos| {
            let i = order[pos];
            if i == n {
                0
            } else {
                cache.lo_resp[i].as_ticks()
            }
        },
        lo_resp,
    ) {
        return false;
    }

    hi_resp.resize(n + 1, None);
    // Higher priority than the candidate: identical inputs, identical
    // bounds.
    for &i in &cache.order[..p] {
        hi_resp[i] = cache.hi_resp[i];
    }
    match variant {
        AmcVariant::RtbDm => rtb_batched(
            soa,
            order,
            soa.hc_rank_below(p),
            lo_resp,
            |pos| {
                let i = order[pos];
                if i == n {
                    0
                } else {
                    cache.hi_resp[i].map_or(0, Time::as_ticks)
                }
            },
            hi_resp,
        ),
        AmcVariant::Max => {
            let ctx = AmcContext {
                tasks,
                order: order.as_slice(),
                lo_resp: lo_resp.as_slice(),
            };
            for pos in p..=n {
                let i = ctx.order[pos];
                if tasks[i].criticality() != Criticality::High {
                    continue;
                }
                match ctx.max_bound_in(pos, streams, slots) {
                    Some(r) if r <= tasks[i].deadline() => hi_resp[i] = Some(r),
                    _ => return false,
                }
            }
            true
        }
        AmcVariant::RtbAudsley => unreachable!("audsley has no DM cache"),
    }
}

impl AdmissionState for AmcState {
    fn try_admit(&mut self, task: &Task) -> bool {
        let mut ws = self.ws.borrow_mut();
        let ws = &mut *ws;
        if self.variant == AmcVariant::RtbAudsley {
            // OPA re-searches priorities from scratch; no DM structure to
            // reuse — but the union and the search run entirely in
            // workspace buffers.
            let AnalysisWorkspace {
                idx,
                idx2,
                tasks,
                soa,
                ..
            } = ws;
            tasks.clear();
            tasks.extend_from_slice(self.committed.tasks.as_slice());
            tasks.push(*task);
            let ok = audsley_lowest_first(tasks, soa, idx, idx2);
            self.committed.record(false, ok);
            return ok;
        }
        let mut insert_at = None;
        let ok = if self.cache_valid {
            let committed = self.committed.tasks.as_slice();
            let p = dm_insert_pos(committed, &self.cache, task);
            // Fixpoints the probe can warm-start from cached bounds: the
            // whole committed suffix at or below the insertion point.
            let warm = (committed.len() - p)
                + match self.variant {
                    AmcVariant::RtbDm => self.soa.hc_len() - self.soa.hc_rank_below(p),
                    _ => 0,
                };
            self.committed.stats.rta_seeded += warm as u64;
            // Delta-update the lane view for the probe, undone below —
            // commit() re-inserts if the probe's analysis is adopted.
            self.soa.insert(p, task);
            let ok = admit_incremental_into(
                committed,
                &self.cache,
                task,
                p,
                self.variant,
                &self.soa,
                &mut ws.tasks,
                &mut ws.streams,
                &mut ws.hc,
                &mut self.scratch,
            );
            self.soa.remove(p);
            insert_at = Some(p);
            self.committed.record(true, ok);
            ok
        } else {
            // Committed set not known schedulable (e.g. after an
            // unchecked commit): fall back to a full analysis of the
            // union, exactly the one-shot verdict. analyze_into leaves
            // `soa` holding the union's lanes, which is precisely the
            // committed view if this probe gets committed.
            let AnalysisWorkspace {
                tasks, streams, hc, ..
            } = ws;
            tasks.clear();
            tasks.extend_from_slice(self.committed.tasks.as_slice());
            tasks.push(*task);
            let ok = analyze_into(
                tasks,
                self.variant,
                true,
                &mut self.soa,
                streams,
                hc,
                &mut self.scratch,
            );
            self.committed.record(false, ok);
            ok
        };
        self.pending = if ok { Some(task.id()) } else { None };
        self.pending_insert = if ok { insert_at } else { None };
        ok
    }

    fn commit(&mut self, task: Task) {
        match self.pending.take() {
            Some(id) if id == task.id() => {
                if let Some(p) = self.pending_insert.take() {
                    self.soa.insert(p, &task);
                }
                self.committed.push(task);
                // Adopt the probe's analysis by swapping buffers — the
                // displaced cache becomes the next probe's scratch.
                std::mem::swap(&mut self.cache, &mut self.scratch);
                self.cache_valid = true;
            }
            _ => {
                self.committed.push(task);
                self.rebuild_cache();
            }
        }
    }

    fn remove(&mut self, id: TaskId) -> bool {
        if self.committed.remove(id).is_none() {
            return false;
        }
        self.rebuild_cache();
        true
    }

    fn summary(&self) -> SystemUtilization {
        self.committed.summary
    }

    fn tasks(&self) -> &TaskSet {
        &self.committed.tasks
    }

    fn take_tasks(&mut self) -> TaskSet {
        let tasks = self.committed.take();
        self.pending = None;
        self.cache.clear();
        self.cache_valid = self.variant != AmcVariant::RtbAudsley;
        tasks
    }

    fn stats(&self) -> AdmissionStats {
        self.committed.stats
    }
}

/// The batched kernel's low-mode response times, indexed by task; `None`
/// when some task misses its deadline in low mode. Must equal
/// [`reference::lo_responses`] bit-identically (asserted by
/// `tests/analysis_workspace.rs` and the `micro_tests` bench).
#[doc(hidden)]
// mclint: cold — equivalence-suite entry point; allocates caller-owned results once per call
pub fn lo_responses_batched(ts: &TaskSet) -> Option<Vec<Time>> {
    let order = dm_order(ts);
    let mut lo = vec![Time::ZERO; ts.len()];
    AnalysisWorkspace::with(|ws| {
        ws.soa.load_primary(ts.as_slice(), &order);
        lo_rta_batched(&ws.soa, &order, 0, |_| 0, &mut lo)
    })
    .then_some(lo)
}

/// The batched AMC-rtb analysis: `None` when low-mode RTA fails,
/// otherwise `(verdict, bounds)` where `bounds[i]` is the high-mode bound
/// of HC task `i` **if its fixpoint was reached** (on a `false` verdict
/// the kernel stops at the first infeasible block, so later tasks stay
/// `None`). On a `true` verdict every HC bound must equal
/// [`reference::amc_rtb_response`] bit-identically.
#[doc(hidden)]
// mclint: cold — equivalence-suite entry point; allocates caller-owned results once per call
pub fn amc_rtb_bounds_batched(ts: &TaskSet) -> Option<(bool, Vec<Option<Time>>)> {
    let order = dm_order(ts);
    let mut lo = vec![Time::ZERO; ts.len()];
    let mut hi = vec![None; ts.len()];
    let mut verdict = false;
    AnalysisWorkspace::with(|ws| {
        ws.soa.load(ts.as_slice(), &order);
        if !lo_rta_batched(&ws.soa, &order, 0, |_| 0, &mut lo) {
            return false;
        }
        verdict = rtb_batched(&ws.soa, &order, 0, &lo, |_| 0, &mut hi);
        true
    })
    .then_some((verdict, hi))
}

/// Seed (allocating) AMC implementations retained **verbatim** as the
/// equivalence reference for the streaming, workspace-backed hot path.
///
/// The property tests (`tests/analysis_workspace.rs`) and the
/// `BENCH_analysis.json` throughput artifact (`mcexp --analysis-json`)
/// compare the hot path against these; nothing on the hot path calls
/// them.
#[doc(hidden)]
pub mod reference {
    use super::*;

    /// The seed AMC-rtb one-shot verdict (per-call allocating path, with
    /// the seed's per-iteration interference re-derivation).
    pub fn amc_rtb_is_schedulable(ts: &TaskSet) -> bool {
        amc_schedulable(ts, |ctx, pos| ctx.rtb_response_reference(pos))
    }

    /// The seed AMC-max one-shot verdict: materialise + sort + dedup the
    /// candidate switch instants per task, then re-derive every
    /// interference term at each candidate.
    pub fn amc_max_is_schedulable(ts: &TaskSet) -> bool {
        amc_schedulable(ts, |ctx, pos| ctx.max_bound_reference(pos))
    }

    /// The seed scalar low-mode response times, indexed by task; `None`
    /// when some task misses its deadline in low mode. The batched kernel
    /// must reproduce these bit-identically.
    pub fn lo_responses(ts: &TaskSet) -> Option<Vec<Time>> {
        lo_rta_scalar(ts.as_slice(), &dm_order(ts))
    }

    /// The seed scalar AMC-rtb high-mode bound of `task_index`; outer
    /// `None` when low-mode RTA fails, inner `None` when the fixpoint
    /// exceeds the deadline. The batched kernel must reproduce this
    /// bit-identically for every HC task.
    pub fn amc_rtb_response(ts: &TaskSet, task_index: usize) -> Option<Option<Time>> {
        with_ctx(ts, |ctx| ctx.rtb_response_reference(ctx.pos_of(task_index)))
    }

    /// The sorted-deduplicated candidate switch instants of `task_index`
    /// under the seed implementation; `None` when the set fails low-mode
    /// RTA (candidates are then undefined).
    pub fn amc_max_candidates(ts: &TaskSet, task_index: usize) -> Option<Vec<Time>> {
        with_ctx(ts, |ctx| ctx.switch_candidates(ctx.pos_of(task_index)))
    }

    /// The candidate instants the streaming walk visits, in visit order
    /// (must equal [`amc_max_candidates`] exactly).
    // mclint: cold — reference-module witness; materialises for comparison only
    pub fn amc_max_candidates_streamed(ts: &TaskSet, task_index: usize) -> Option<Vec<Time>> {
        with_ctx(ts, |ctx| {
            let mut streams = Vec::new();
            let mut slots = Vec::new();
            ctx.fold_candidates(
                ctx.pos_of(task_index),
                &mut streams,
                &mut slots,
                Vec::new(),
                |mut acc, s, _, _| {
                    acc.push(s);
                    Some(acc)
                },
            )
            .expect("collection never aborts")
        })
    }

    /// The seed AMC-max response bound of `task_index`; outer `None` when
    /// low-mode RTA fails, inner `None` when some switch instant is
    /// infeasible.
    pub fn amc_max_bound(ts: &TaskSet, task_index: usize) -> Option<Option<Time>> {
        with_ctx(ts, |ctx| ctx.max_bound_reference(ctx.pos_of(task_index)))
    }

    /// The streaming AMC-max response bound of `task_index` (must equal
    /// [`amc_max_bound`] exactly).
    // mclint: cold — reference-module witness; scratch vectors live per call by design
    pub fn amc_max_bound_streamed(ts: &TaskSet, task_index: usize) -> Option<Option<Time>> {
        with_ctx(ts, |ctx| {
            let mut streams = Vec::new();
            let mut slots = Vec::new();
            ctx.max_bound_in(ctx.pos_of(task_index), &mut streams, &mut slots)
        })
    }

    fn with_ctx<R>(ts: &TaskSet, f: impl FnOnce(&AmcContext<'_>) -> R) -> Option<R> {
        let order = dm_order(ts);
        let lo_resp = lo_rta_scalar(ts.as_slice(), &order)?;
        let ctx = AmcContext {
            tasks: ts.as_slice(),
            order: &order,
            lo_resp: &lo_resp,
        };
        Some(f(&ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsched_model::Task;

    fn set(tasks: Vec<Task>) -> TaskSet {
        TaskSet::try_from_tasks(tasks).unwrap()
    }

    #[test]
    fn dm_order_sorts_by_deadline() {
        let ts = set(vec![
            Task::lo(0, 30, 1).unwrap(),
            Task::hi(1, 10, 1, 2).unwrap(),
            Task::lo_constrained(2, 40, 1, 5).unwrap(),
        ]);
        assert_eq!(dm_order(&ts), vec![2, 1, 0]);
    }

    /// The 19-comparator 8-input network in `dm_order_into`, checked by
    /// the 0-1 principle: a comparator network sorts every input iff it
    /// sorts all 2^8 zero-one vectors.
    #[test]
    fn dm_sorting_network_is_correct() {
        for bits in 0u16..256 {
            let mut keys: [u128; 8] = core::array::from_fn(|i| u128::from(bits >> i & 1));
            cas_sort8(&mut keys);
            assert!(keys.windows(2).all(|w| w[0] <= w[1]), "bits {bits:#010b}");
        }
    }

    /// The network path (n ≤ 8), the packed-key path (n ≤ 64), and the
    /// comparator fallback must order identically across the boundary
    /// sizes, including deadline ties broken by id.
    #[test]
    fn dm_order_paths_agree() {
        for n in [1usize, 7, 8, 9, 16] {
            let tasks: Vec<Task> = (0..n)
                .map(|i| {
                    // Deliberate deadline collisions (i / 2) force the
                    // id tiebreak.
                    Task::lo_constrained(i as u32, 100, 1, 10 + (i as u64 / 2)).unwrap()
                })
                .collect();
            let mut idx = Vec::new();
            dm_order_into(&tasks, &mut idx);
            let mut want: Vec<usize> = (0..n).collect();
            want.sort_by_key(|&i| (tasks[i].deadline(), tasks[i].id()));
            assert_eq!(idx, want, "n = {n}");
        }
        // Deadlines past 2^32 and ids past 2^16 leave the packed-u64
        // route for the u128 network; the order must not change.
        let tasks: Vec<Task> = (0..6)
            .map(|i| {
                Task::lo_constrained(u32::MAX - i, 1 << 40, 1, (1 << 33) + u64::from(i / 2))
                    .unwrap()
            })
            .collect();
        let mut idx = Vec::new();
        dm_order_into(&tasks, &mut idx);
        let mut want: Vec<usize> = (0..6).collect();
        want.sort_by_key(|&i| (tasks[i].deadline(), tasks[i].id()));
        assert_eq!(idx, want, "u128 fallback");
    }

    #[test]
    fn lo_rta_basic() {
        let ts = set(vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::lo(1, 20, 5).unwrap(),
        ]);
        let r = LoRta::compute(&ts).unwrap();
        assert_eq!(r[0], Time::new(2));
        // τ1: R = 5 + ⌈R/10⌉·2 → R = 7.
        assert_eq!(r[1], Time::new(7));
    }

    #[test]
    fn lo_rta_detects_miss() {
        let ts = set(vec![
            Task::lo_constrained(0, 10, 5, 5).unwrap(),
            Task::lo_constrained(1, 10, 5, 6).unwrap(),
        ]);
        assert!(LoRta::compute(&ts).is_none());
    }

    #[test]
    fn lo_rta_multiple_preemptions() {
        let ts = set(vec![
            Task::lo(0, 5, 2).unwrap(),
            Task::lo(1, 20, 6).unwrap(),
        ]);
        let r = LoRta::compute(&ts).unwrap();
        // τ1: R = 6 + 2·⌈R/5⌉ converges at R = 10 (6 + 2·⌈10/5⌉ = 10).
        assert_eq!(r[1], Time::new(10));
    }

    #[test]
    fn amc_accepts_simple_mixed_set() {
        let ts = set(vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::lo(1, 20, 5).unwrap(),
        ]);
        assert!(AmcRtb::new().is_schedulable(&ts));
        assert!(AmcMax::new().is_schedulable(&ts));
    }

    #[test]
    fn amc_rejects_hi_mode_overload() {
        let ts = set(vec![
            Task::hi(0, 10, 2, 6).unwrap(),
            Task::hi(1, 10, 2, 5).unwrap(),
        ]);
        assert!(!AmcRtb::new().is_schedulable(&ts));
        assert!(!AmcMax::new().is_schedulable(&ts));
    }

    #[test]
    fn amc_rejects_lo_mode_miss() {
        let ts = set(vec![
            Task::lo_constrained(0, 10, 5, 5).unwrap(),
            Task::hi_constrained(1, 10, 4, 4, 6).unwrap(),
        ]);
        // DM: τ0 (D=5) above τ1 (D=6); τ1 LO response = 4+5 = 9 > 6.
        assert!(!AmcRtb::new().is_schedulable(&ts));
        assert!(!AmcMax::new().is_schedulable(&ts));
    }

    #[test]
    fn amc_max_dominates_rtb_on_grid() {
        // Grid sweep: every rtb-accepted set must be max-accepted.
        for ch in 3..=8u64 {
            for cl2 in 1..=4u64 {
                for c3 in 1..=6u64 {
                    let ts = set(vec![
                        Task::hi(0, 12, 2, ch).unwrap(),
                        Task::hi(1, 20, cl2, cl2 + 3).unwrap(),
                        Task::lo(2, 15, c3).unwrap(),
                    ]);
                    let rtb = AmcRtb::new().is_schedulable(&ts);
                    let mx = AmcMax::new().is_schedulable(&ts);
                    if rtb {
                        assert!(mx, "AMC-max rejected an AMC-rtb set: {ts}");
                    }
                }
            }
        }
    }

    #[test]
    fn amc_max_strictly_beats_rtb() {
        // Hand-constructed instance where enumerating switch instants pays:
        // DM order τb (D=14), τa (D=15), τi (D=48).
        // R^LO_i = 23; AMC-rtb gives R = 52 > 48 (LC charged ⌈23/15⌉ = 2
        // jobs and all τb jobs at C^H = 10 over the large window), while
        // every switch instant s ∈ {0, 14, 15, 20} yields R(s) ≤ 37:
        // early s freezes LC at one job, late s lets M(b, s) charge τb's
        // completed job at C^L = 2.
        let ts = set(vec![
            Task::lo(0, 15, 5).unwrap(),
            Task::hi_constrained(1, 20, 2, 10, 14).unwrap(),
            Task::hi_constrained(2, 60, 9, 12, 48).unwrap(),
        ]);
        assert!(!AmcRtb::new().is_schedulable(&ts), "rtb should reject");
        assert!(AmcMax::new().is_schedulable(&ts), "max should accept");
    }

    #[test]
    fn lc_tasks_ignored_after_switch() {
        // A heavy LC task below a HC task in priority affects only the
        // LO-mode phase of the HC task's analysis.
        let ts = set(vec![
            Task::hi_constrained(0, 100, 10, 40, 60).unwrap(),
            Task::lo(1, 100, 50).unwrap(),
        ]);
        // DM: τ0 (D=60) above τ1 (D=100): τ1's interference is irrelevant to
        // τ0. τ0 passes trivially; τ1 needs 50 + 10 = 60 ≤ 100 in LO.
        assert!(AmcMax::new().is_schedulable(&ts));
    }

    #[test]
    fn hc_only_and_lc_only_sets() {
        let hc_only = set(vec![
            Task::hi(0, 10, 1, 3).unwrap(),
            Task::hi(1, 14, 2, 5).unwrap(),
        ]);
        assert!(AmcMax::new().is_schedulable(&hc_only));
        let lc_only = set(vec![
            Task::lo(0, 10, 4).unwrap(),
            Task::lo(1, 14, 5).unwrap(),
        ]);
        assert!(AmcMax::new().is_schedulable(&lc_only));
        assert!(AmcRtb::new().is_schedulable(&lc_only));
    }

    #[test]
    fn empty_set() {
        assert!(AmcRtb::new().is_schedulable(&TaskSet::new()));
        assert!(AmcMax::new().is_schedulable(&TaskSet::new()));
    }

    #[test]
    fn names() {
        assert_eq!(AmcRtb::new().name(), "AMC-rtb");
        assert_eq!(AmcMax::new().name(), "AMC-max");
    }

    #[test]
    fn audsley_dominates_dm_rtb_on_grid() {
        // Grid sweep: OPA accepts everything DM-based rtb accepts.
        for c0 in 1..=5u64 {
            for c1 in 1..=6u64 {
                for d1 in c1..=12 {
                    let ts = set(vec![
                        Task::hi(0, 10, c0, (c0 + 2).min(10)).unwrap(),
                        Task::lo_constrained(1, 12, c1, d1).unwrap(),
                        Task::lo(2, 20, 3).unwrap(),
                    ]);
                    let dm = AmcRtb::new().is_schedulable(&ts);
                    let opa = AmcRtb::with_audsley().is_schedulable(&ts);
                    if dm {
                        assert!(opa, "OPA rejected a DM-accepted set: {ts}");
                    }
                }
            }
        }
    }

    #[test]
    fn audsley_strictly_beats_dm() {
        // DM puts τ1 (D = 9) above the HC task τ0 (D = 10), whose rtb
        // high-mode bound then reads 6 + 5·⌈9/12⌉ = 11 > 10. Audsley finds
        // the order τ0 > τ1 > τ2: τ0's bound is its own C^H = 6 ≤ 10, τ1
        // responds in exactly 9, and τ2 converges at 30 ≤ 40.
        let ts = set(vec![
            Task::hi(0, 10, 4, 6).unwrap(),
            Task::lo_constrained(1, 12, 5, 9).unwrap(),
            Task::lo(2, 40, 3).unwrap(),
        ]);
        assert!(!AmcRtb::new().is_schedulable(&ts), "DM-rtb should reject");
        assert!(
            AmcRtb::with_audsley().is_schedulable(&ts),
            "OPA should accept"
        );
        let order = AmcRtb::audsley_order(&ts).unwrap();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn audsley_order_is_a_permutation() {
        let ts = set(vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::lo(1, 20, 5).unwrap(),
            Task::hi(2, 25, 3, 6).unwrap(),
        ]);
        let order = AmcRtb::audsley_order(&ts).expect("feasible");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn audsley_rejects_infeasible() {
        let ts = set(vec![
            Task::hi(0, 10, 4, 9).unwrap(),
            Task::hi(1, 10, 4, 9).unwrap(),
        ]);
        assert!(AmcRtb::audsley_order(&ts).is_none());
        assert!(!AmcRtb::with_audsley().is_schedulable(&ts));
    }

    #[test]
    fn audsley_names() {
        assert_eq!(AmcRtb::with_audsley().name(), "AMC-rtb-OPA");
        assert_eq!(AmcRtb::new().name(), "AMC-rtb");
    }

    #[test]
    fn incremental_states_match_one_shot_exactly() {
        use crate::incremental::clone_and_retest;
        // Deadlines chosen so successive insertions land at the top,
        // middle and bottom of the DM order (exercising prefix reuse and
        // warm-started suffixes), including a constrained deadline.
        let sequence = vec![
            Task::hi(0, 30, 3, 6).unwrap(),
            Task::lo(1, 10, 2).unwrap(),
            Task::hi_constrained(2, 25, 2, 5, 20).unwrap(),
            Task::lo_constrained(3, 12, 1, 5).unwrap(),
            Task::hi(4, 40, 4, 9).unwrap(),
            Task::lo(5, 15, 3).unwrap(),
            Task::hi(6, 18, 2, 4).unwrap(),
        ];
        let tests: Vec<Box<dyn SchedulabilityTest>> = vec![
            Box::new(AmcRtb::new()),
            Box::new(AmcRtb::with_audsley()),
            Box::new(AmcMax::new()),
        ];
        for test in &tests {
            let mut state = test.admission_state();
            for t in &sequence {
                let expected = clone_and_retest(test, state.tasks(), t);
                assert_eq!(state.try_admit(t), expected, "{} on {t}", test.name());
                if expected {
                    state.commit(*t);
                }
            }
            // Remove a mid-priority task; the rebuilt cache must keep
            // agreeing with the one-shot test.
            assert!(state.remove(TaskId(2)));
            let back = sequence[2];
            let expected = clone_and_retest(test, state.tasks(), &back);
            assert_eq!(state.try_admit(&back), expected, "{} re-admit", test.name());
            if expected {
                state.commit(back);
            }
            // Overload is rejected just like the one-shot test.
            let heavy = Task::hi(9, 10, 6, 9).unwrap();
            let expected = clone_and_retest(test, state.tasks(), &heavy);
            assert_eq!(state.try_admit(&heavy), expected);
        }
    }

    #[test]
    fn uncommitted_admit_then_commit_of_other_task_rebuilds() {
        // commit() without a matching try_admit must stay correct (the
        // cache is rebuilt from scratch).
        let test = AmcMax::new();
        let mut state = test.new_state();
        let a = Task::hi(0, 10, 2, 4).unwrap();
        let b = Task::lo(1, 20, 5).unwrap();
        assert!(state.try_admit(&a));
        state.commit(b); // not the task we admitted
        state.commit(a);
        let c = Task::lo(2, 30, 4).unwrap();
        let expected = crate::incremental::clone_and_retest(&test, state.tasks(), &c);
        assert_eq!(state.try_admit(&c), expected);
    }

    #[test]
    fn streaming_walk_matches_reference_on_grid() {
        // Grid of small sets: the streaming walk must visit exactly the
        // sorted-deduplicated candidate set, return identical bounds and
        // produce identical verdicts.
        for ch in 3..=8u64 {
            for cl2 in 1..=4u64 {
                for c3 in 1..=6u64 {
                    let ts = set(vec![
                        Task::hi(0, 12, 2, ch).unwrap(),
                        Task::hi(1, 20, cl2, cl2 + 3).unwrap(),
                        Task::lo(2, 15, c3).unwrap(),
                    ]);
                    assert_eq!(
                        AmcMax::new().is_schedulable(&ts),
                        reference::amc_max_is_schedulable(&ts),
                        "verdict diverged on {ts}"
                    );
                    for i in 0..ts.len() {
                        assert_eq!(
                            reference::amc_max_candidates_streamed(&ts, i),
                            reference::amc_max_candidates(&ts, i),
                            "candidates diverged for τ{i} of {ts}"
                        );
                        assert_eq!(
                            reference::amc_max_bound_streamed(&ts, i),
                            reference::amc_max_bound(&ts, i),
                            "bounds diverged for τ{i} of {ts}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn candidate_stepping_survives_near_max_times() {
        // Regression: the seed stepping loop (`t += period`) overflowed
        // u64 arithmetic when a step sequence approached Time::MAX; the
        // streaming walk saturates instead, which is exact (a step beyond
        // u64::MAX is also beyond R^LO).
        let big = 1u64 << 63;
        let ts = set(vec![
            Task::hi_constrained(0, big + 2, 1, 1, big).unwrap(),
            Task::hi_constrained(1, big + 100, big + 10, big + 10, big + 50).unwrap(),
        ]);
        // R^LO_1 = 2^63 + 12: τ0's deadline stream fires once (at D = 2^63)
        // and its release stream once (at T = 2^63 + 2); both next steps
        // exceed u64::MAX and must end the streams, not wrap or panic.
        let cands = reference::amc_max_candidates_streamed(&ts, 1).expect("LO feasible");
        assert_eq!(cands, vec![Time::ZERO, Time::new(big), Time::new(big + 2)],);
        // The full tests run without panicking on the same set.
        assert!(AmcMax::new().is_schedulable(&ts));
        assert!(AmcRtb::new().is_schedulable(&ts));
        // And the incremental state handles it identically.
        let mut state = AmcMax::new().new_state();
        assert!(state.try_admit(&ts.as_slice()[0]));
        state.commit(ts.as_slice()[0]);
        assert!(state.try_admit(&ts.as_slice()[1]));
    }

    #[test]
    fn dc_inv_is_exact() {
        // The reciprocal division must agree with the hardware divide on
        // every input: structured edges plus a deterministic random sweep
        // over the full u64 range.
        let edges = [
            0u64,
            1,
            2,
            3,
            5,
            7,
            (1 << 32) - 1,
            1 << 32,
            (1 << 32) + 1,
            (1 << 63) - 1,
            1 << 63,
            (1 << 63) + 1,
            u64::MAX - 1,
            u64::MAX,
        ];
        let check = |a: u64, b: u64| {
            let m = crate::workspace::inv64(b);
            assert_eq!(dc_inv(a, b, m), dc(a, b), "dc_inv({a}, {b}) diverged");
        };
        for &b in &edges[1..] {
            for &a in &edges {
                check(a, b);
                check(a.saturating_add(1), b);
                check(a.wrapping_sub(1), b);
                check(a, b.saturating_add(1));
            }
        }
        // xorshift64* sweep: divisors and dividends across all magnitudes.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..200_000 {
            let a = next();
            let b = next().max(1);
            check(a, b);
            check(a, b >> (b % 63) as u32 | 1);
            check(a >> (a % 63) as u32, b);
        }
    }

    #[test]
    fn df_inv_is_exact() {
        // The guarded floor reciprocal must agree with the hardware
        // divide on every input, like its ceiling sibling above.
        let edges = [
            0u64,
            1,
            2,
            3,
            5,
            7,
            (1 << 32) - 1,
            1 << 32,
            (1 << 32) + 1,
            (1 << 63) - 1,
            1 << 63,
            (1 << 63) + 1,
            u64::MAX - 1,
            u64::MAX,
        ];
        let check = |a: u64, b: u64| {
            let m = crate::workspace::inv64(b);
            assert_eq!(df_inv(a, b, m), a / b, "df_inv({a}, {b}) diverged");
        };
        for &b in &edges[1..] {
            for &a in &edges {
                check(a, b);
                check(a.saturating_add(1), b);
                check(a.wrapping_sub(1), b);
                check(a, b.saturating_add(1));
            }
        }
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..200_000 {
            let a = next();
            let b = next().max(1);
            check(a, b);
            check(a, b >> (b % 63) as u32 | 1);
            check(a >> (a % 63) as u32, b);
        }
    }

    #[test]
    fn df_fast_is_exact_in_the_certified_regime() {
        // No-fixup floor: exact whenever a·b < 2^64 and b ≥ 2 — in
        // particular for every a, b < 2^32 (the demand certificate).
        let mut x = 0x517cc1b727220a95u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..200_000 {
            let a = next() & ((1 << 32) - 1);
            let b = (next() & ((1 << 32) - 1)).max(2);
            let m1 = crate::workspace::inv64(b).wrapping_add(1);
            assert_eq!(df_fast(a, m1), a / b, "df_fast({a}, {b}) diverged");
        }
        // Boundary of the licence: the largest certified operands.
        let b = (1u64 << 32) - 1;
        let m1 = crate::workspace::inv64(b).wrapping_add(1);
        for a in [(1u64 << 32) - 1, (1 << 32) - 2, 1, 0] {
            assert_eq!(df_fast(a, m1), a / b);
        }
    }

    #[test]
    fn fixpoint_add_saturates_at_near_max_wcet() {
        // Regression: `wcet + interference(r)` in `fixpoint_from` was an
        // unguarded add that wrapped for parameters near 2^63 (each
        // product stays in range — 2^63 · ⌈2^63/(2^63+2)⌉ = 2^63 — but
        // the final add reaches 2^64). The saturated sum exceeds every
        // finite deadline, so both paths must reject without panicking.
        let big = 1u64 << 63;
        let ts = set(vec![
            Task::hi_constrained(0, big + 2, big, big, big + 1).unwrap(),
            Task::hi_constrained(1, big + 4, big, big, big + 2).unwrap(),
        ]);
        assert!(LoRta::compute(&ts).is_none());
        assert!(lo_responses_batched(&ts).is_none());
        assert_eq!(reference::lo_responses(&ts), None);
        assert!(!AmcRtb::new().is_schedulable(&ts));
        assert!(!reference::amc_rtb_is_schedulable(&ts));
        assert!(!AmcMax::new().is_schedulable(&ts));
        assert!(!AmcRtb::with_audsley().is_schedulable(&ts));
        // A single near-max task alone stays feasible in every path (the
        // fixpoint is hit before anything can saturate).
        let alone = set(vec![
            Task::hi_constrained(0, big + 2, big, big, big + 1).unwrap()
        ]);
        assert!(AmcRtb::new().is_schedulable(&alone));
        assert!(AmcRtb::with_audsley().is_schedulable(&alone));
        assert_eq!(
            lo_responses_batched(&alone),
            Some(vec![Time::new(big)]),
            "lone near-max task's LO response is its own budget"
        );
    }

    #[test]
    fn batched_rtb_matches_reference_on_grid() {
        // Grid sweep: batched LO responses, rtb verdicts and rtb bounds
        // must be bit-identical to the retained scalar reference.
        for ch in 3..=8u64 {
            for cl2 in 1..=4u64 {
                for c3 in 1..=6u64 {
                    let ts = set(vec![
                        Task::hi(0, 12, 2, ch).unwrap(),
                        Task::hi(1, 20, cl2, cl2 + 3).unwrap(),
                        Task::lo(2, 15, c3).unwrap(),
                    ]);
                    assert_eq!(
                        lo_responses_batched(&ts),
                        reference::lo_responses(&ts),
                        "LO responses diverged on {ts}"
                    );
                    let verdict = reference::amc_rtb_is_schedulable(&ts);
                    match amc_rtb_bounds_batched(&ts) {
                        None => assert!(!verdict, "batched LO failed on rtb-feasible {ts}"),
                        Some((v, bounds)) => {
                            assert_eq!(v, verdict, "rtb verdict diverged on {ts}");
                            if v {
                                for (i, t) in ts.as_slice().iter().enumerate() {
                                    if t.criticality() == Criticality::High {
                                        assert_eq!(
                                            Some(bounds[i]),
                                            reference::amc_rtb_response(&ts, i),
                                            "rtb bound diverged for τ{i} of {ts}"
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn switch_candidates_cover_step_points() {
        let ts = set(vec![
            Task::lo(0, 7, 3).unwrap(),
            Task::hi(1, 11, 1, 2).unwrap(),
            Task::hi(2, 50, 5, 20).unwrap(),
        ]);
        let order = dm_order(&ts);
        let lo = LoRta::compute_with_order(&ts, &order).unwrap();
        // R^LO_2 = 5 + 3·⌈R/7⌉ + 1·⌈R/11⌉ converges at 13.
        assert_eq!(lo[2], Time::new(13));
        let ctx = AmcContext {
            tasks: ts.as_slice(),
            order: &order,
            lo_resp: &lo,
        };
        let cands = ctx.switch_candidates(2);
        assert!(cands.contains(&Time::ZERO));
        // Multiples of 7 (LC period) below R^LO and 11 (HC deadline and
        // period of τ1) below R^LO.
        assert!(cands.contains(&Time::new(7)));
        assert!(cands.contains(&Time::new(11)));
        // Strictly below the LO response time.
        assert!(cands.iter().all(|&c| c < lo[2]));
    }
}
