//! Adaptive Mixed-Criticality (AMC) response-time analyses.
//!
//! Fixed-priority scheduling for dual-criticality systems (Baruah, Burns &
//! Davis, RTSS 2011): every task has a fixed priority; when a HC job
//! exceeds its `C^L` budget the processor switches to high mode and all LC
//! tasks are immediately dropped.
//!
//! Priorities here are **deadline-monotonic** (smaller relative deadline =
//! higher priority, ties broken by task id), the standard choice for
//! constrained-deadline fixed-priority systems.
//!
//! Three analyses:
//!
//! * **Low-mode RTA** ([`LoRta`]) — classic response-time analysis with
//!   `C^L` budgets; every task (LC and HC) must meet its deadline before
//!   any switch.
//! * **AMC-rtb** ([`AmcRtb`]) — response-time bound: HC task `τi`'s
//!   high-mode response satisfies
//!   `R = C^H_i + Σ_{k∈hpH} ⌈R/Tk⌉·C^H_k + Σ_{j∈hpL} ⌈R^LO_i/Tj⌉·C^L_j`.
//! * **AMC-max** ([`AmcMax`]) — enumerates candidate mode-switch instants
//!   `s ∈ [0, R^LO_i)` as the paper describes ("considers all possible mode
//!   switch instants until the low mode response time"): LC interference is
//!   frozen at `(⌊s/Tj⌋+1)·C^L_j`, and of the `⌈R/Tk⌉` hp-HC jobs those
//!   whose deadlines precede `s` — `M(k,s) = (⌊(s−Dk)/Tk⌋+1)₊` of them —
//!   must already have completed and are charged at `C^L_k`, the rest at
//!   `C^H_k`. The final bound takes the best of AMC-max and AMC-rtb, so
//!   AMC-max dominates AMC-rtb by construction (as published).

use crate::incremental::{AdmissionState, AdmissionStats, Committed, IncrementalTest};
use crate::SchedulabilityTest;
use mcsched_model::{Criticality, SystemUtilization, Task, TaskId, TaskSet, Time};

/// Deadline-monotonic priority order: returns task indices from highest to
/// lowest priority.
pub(crate) fn dm_order(ts: &TaskSet) -> Vec<usize> {
    dm_order_slice(ts.as_slice())
}

/// [`dm_order`] over a raw task slice (the incremental state analyses
/// `committed + candidate` workspaces without materialising a `TaskSet`).
fn dm_order_slice(tasks: &[Task]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..tasks.len()).collect();
    idx.sort_by(|&a, &b| {
        tasks[a]
            .deadline()
            .cmp(&tasks[b].deadline())
            .then_with(|| tasks[a].id().cmp(&tasks[b].id()))
    });
    idx
}

/// Iterates the standard RTA fixpoint `R = wcet + interference(R)`,
/// bailing out as soon as `R` exceeds `deadline`.
fn fixpoint(wcet: Time, deadline: Time, interference: impl Fn(Time) -> Time) -> Option<Time> {
    fixpoint_from(wcet, wcet, deadline, interference)
}

/// [`fixpoint`] warm-started at `start`.
///
/// Exactness: for a monotone interference function whose least fixed point
/// is `R*`, Kleene iteration from any `start ≤ R*` with
/// `wcet + interference(start) ≥ start` converges to the same `R*` (the
/// iterates stay monotone nondecreasing and bounded by `R*`). The
/// incremental AMC state warm-starts from the response computed *before* a
/// task was added — interference only grows when the higher-priority set
/// grows, so the old response is such a valid lower bound and the returned
/// fixed point (and verdict) is identical to a cold start, only cheaper.
fn fixpoint_from(
    start: Time,
    wcet: Time,
    deadline: Time,
    interference: impl Fn(Time) -> Time,
) -> Option<Time> {
    let mut r = start.max(wcet);
    loop {
        let next = wcet + interference(r);
        if next > deadline {
            return None;
        }
        if next == r {
            return Some(r);
        }
        r = next;
    }
}

/// Low-mode response-time analysis at `C^L` budgets under
/// deadline-monotonic priorities.
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// use mcsched_analysis::LoRta;
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let ts = TaskSet::try_from_tasks(vec![
///     Task::hi(0, 10, 2, 4)?,
///     Task::lo(1, 20, 5)?,
/// ])?;
/// let r = LoRta::compute(&ts).expect("LO-mode schedulable");
/// assert_eq!(r[0].as_ticks(), 2);  // highest priority: runs alone
/// assert_eq!(r[1].as_ticks(), 7);  // 5 + 2·⌈7/10⌉ = 7: fixpoint
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoRta;

impl LoRta {
    /// Computes every task's low-mode response time, in task-set order.
    /// Returns `None` if any task misses its deadline in low mode.
    pub fn compute(ts: &TaskSet) -> Option<Vec<Time>> {
        let order = dm_order(ts);
        Self::compute_with_order(ts, &order)
    }

    /// As [`LoRta::compute`], under a caller-supplied priority order
    /// (indices from highest to lowest priority).
    pub fn compute_with_order(ts: &TaskSet, order: &[usize]) -> Option<Vec<Time>> {
        let tasks = ts.as_slice();
        let mut resp = vec![Time::ZERO; tasks.len()];
        for (pos, &i) in order.iter().enumerate() {
            let hp = &order[..pos];
            let r = fixpoint(tasks[i].wcet_lo(), tasks[i].deadline(), |r| {
                hp.iter()
                    .map(|&j| tasks[j].wcet_lo() * r.div_ceil(tasks[j].period()))
                    .sum()
            })?;
            resp[i] = r;
        }
        Some(resp)
    }
}

/// Shared AMC machinery: low-mode RTA plus per-variant high-mode RTA.
fn amc_schedulable(ts: &TaskSet, hi_rta: impl Fn(&AmcContext<'_>, usize) -> Option<Time>) -> bool {
    if ts.is_empty() {
        return true;
    }
    let order = dm_order(ts);
    let Some(lo_resp) = LoRta::compute_with_order(ts, &order) else {
        return false;
    };
    let ctx = AmcContext {
        tasks: ts.as_slice(),
        order: &order,
        lo_resp: &lo_resp,
    };
    for (pos, &i) in order.iter().enumerate() {
        if ctx.tasks[i].criticality() == Criticality::High {
            let _ = pos;
            match hi_rta(&ctx, i) {
                Some(r) if r <= ctx.tasks[i].deadline() => {}
                _ => return false,
            }
        }
    }
    true
}

/// Bundled inputs for the high-mode analyses.
struct AmcContext<'a> {
    tasks: &'a [Task],
    order: &'a [usize],
    lo_resp: &'a [Time],
}

impl AmcContext<'_> {
    /// Higher-priority task indices for task `i`.
    fn hp(&self, i: usize) -> &[usize] {
        let pos = self
            .order
            .iter()
            .position(|&x| x == i)
            .expect("task in order");
        &self.order[..pos]
    }

    fn rtb_response(&self, i: usize) -> Option<Time> {
        self.rtb_response_from(i, self.tasks[i].wcet_hi())
    }

    /// [`AmcContext::rtb_response`] with a warm-started fixpoint (see
    /// [`fixpoint_from`] for why the result is identical).
    fn rtb_response_from(&self, i: usize, start: Time) -> Option<Time> {
        let ti = &self.tasks[i];
        let hp = self.hp(i);
        let lo_cap = self.lo_resp[i];
        fixpoint_from(start, ti.wcet_hi(), ti.deadline(), |r| {
            hp.iter()
                .map(|&j| {
                    let tj = &self.tasks[j];
                    match tj.criticality() {
                        Criticality::High => tj.wcet_hi() * r.div_ceil(tj.period()),
                        Criticality::Low => tj.wcet_lo() * lo_cap.div_ceil(tj.period()),
                    }
                })
                .sum()
        })
    }

    /// The AMC-max bound for task `i`: the worst response over all switch
    /// instants, never worse than the rtb bound (shared by the one-shot
    /// test and the incremental state so the code paths cannot diverge).
    fn max_bound(&self, i: usize) -> Option<Time> {
        // max over switch instants; infeasible at any instant → None.
        let mut worst = Time::ZERO;
        for s in self.switch_candidates(i) {
            let r = self.max_response_at(i, s)?;
            worst = worst.max(r);
        }
        // AMC-max result never needs to be worse than AMC-rtb.
        match self.rtb_response(i) {
            Some(rtb) => Some(worst.min(rtb)),
            None => Some(worst),
        }
    }

    /// AMC-max response for switch instant `s`.
    fn max_response_at(&self, i: usize, s: Time) -> Option<Time> {
        let ti = &self.tasks[i];
        let hp = self.hp(i);
        fixpoint(ti.wcet_hi(), ti.deadline(), |r| {
            hp.iter()
                .map(|&j| {
                    let tj = &self.tasks[j];
                    match tj.criticality() {
                        Criticality::Low => tj.wcet_lo() * (s.div_floor(tj.period()) + 1),
                        Criticality::High => {
                            let n = r.div_ceil(tj.period());
                            // Two sound lower bounds on the hp-HC jobs that
                            // certainly completed (hence ran at C^L) before
                            // the switch at s:
                            //  * jobs with deadlines at or before s (low-mode
                            //    deadlines are guaranteed): ⌊(s−D)/T⌋ + 1;
                            //  * all releases in [0, s] except at most one —
                            //    with constrained deadlines (D ≤ T), at most
                            //    one job per task is incomplete at any
                            //    deadline-meeting instant: ⌊s/T⌋.
                            let by_deadline = if s >= tj.deadline() {
                                (s - tj.deadline()).div_floor(tj.period()) + 1
                            } else {
                                0
                            };
                            let by_release = s.div_floor(tj.period());
                            let m = by_deadline.max(by_release).min(n);
                            tj.wcet_lo() * m + tj.wcet_hi() * (n - m)
                        }
                    }
                })
                .sum()
        })
    }

    /// Candidate switch instants for task `i`: points in `[0, R^LO_i)`
    /// where some interference term steps, plus 0.
    fn switch_candidates(&self, i: usize) -> Vec<Time> {
        let r_lo = self.lo_resp[i];
        let mut cands = vec![Time::ZERO];
        for &j in self.hp(i) {
            let tj = &self.tasks[j];
            match tj.criticality() {
                Criticality::Low => {
                    // (⌊s/T⌋+1) steps at multiples of T.
                    let mut t = tj.period();
                    while t < r_lo {
                        cands.push(t);
                        t += tj.period();
                    }
                }
                Criticality::High => {
                    // M(k, s) steps at D + j·T (deadline bound) and at
                    // multiples of T (release bound).
                    let mut t = tj.deadline();
                    while t < r_lo {
                        cands.push(t);
                        t += tj.period();
                    }
                    let mut t = tj.period();
                    while t < r_lo {
                        cands.push(t);
                        t += tj.period();
                    }
                }
            }
        }
        cands.sort_unstable();
        cands.dedup();
        cands
    }
}

/// The AMC-rtb (response-time bound) schedulability test.
///
/// By default priorities are deadline-monotonic. AMC-rtb is
/// **OPA-compatible** (a task's bound depends only on the *set* of
/// higher-priority tasks, not their relative order), so
/// [`AmcRtb::with_audsley`] enables Audsley's Optimal Priority Assignment,
/// which strictly dominates DM for this test.
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// use mcsched_analysis::{AmcRtb, SchedulabilityTest};
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let ts = TaskSet::try_from_tasks(vec![
///     Task::hi(0, 10, 2, 4)?,
///     Task::lo(1, 20, 5)?,
/// ])?;
/// assert!(AmcRtb::new().is_schedulable(&ts));
/// assert!(AmcRtb::with_audsley().is_schedulable(&ts));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AmcRtb {
    audsley: bool,
}

impl AmcRtb {
    /// AMC-rtb under deadline-monotonic priorities.
    pub fn new() -> Self {
        AmcRtb { audsley: false }
    }

    /// AMC-rtb under Audsley's Optimal Priority Assignment: priorities are
    /// assigned from the lowest level up; at each level any task whose
    /// low-mode RTA and (for HC tasks) rtb high-mode RTA pass with *all*
    /// remaining tasks as higher-priority interference can take the level.
    /// Accepts a superset of the DM variant.
    pub fn with_audsley() -> Self {
        AmcRtb { audsley: true }
    }

    /// The Audsley priority order found for this set (highest priority
    /// first), if one exists. Exposed so the simulator can run the
    /// assignment the analysis certified.
    pub fn audsley_order(ts: &TaskSet) -> Option<Vec<usize>> {
        let n = ts.len();
        let mut unassigned: Vec<usize> = (0..n).collect();
        let mut lowest_first: Vec<usize> = Vec::with_capacity(n);
        while !unassigned.is_empty() {
            // Find a task that is feasible at the current (lowest free)
            // priority level, with every other unassigned task above it.
            let found = unassigned.iter().position(|&i| {
                let hp: Vec<usize> = unassigned.iter().copied().filter(|&j| j != i).collect();
                rtb_feasible_with_hp(ts, i, &hp)
            })?;
            let task = unassigned.remove(found);
            lowest_first.push(task);
        }
        lowest_first.reverse();
        Some(lowest_first)
    }
}

/// Checks task `i` at the lowest priority level below the tasks in `hp`
/// (low-mode RTA, and the rtb high-mode bound when `i` is HC).
fn rtb_feasible_with_hp(ts: &TaskSet, i: usize, hp: &[usize]) -> bool {
    let tasks = ts.as_slice();
    let ti = &tasks[i];
    let lo = fixpoint(ti.wcet_lo(), ti.deadline(), |r| {
        hp.iter()
            .map(|&j| tasks[j].wcet_lo() * r.div_ceil(tasks[j].period()))
            .sum()
    });
    let Some(lo_resp) = lo else {
        return false;
    };
    if ti.criticality() == Criticality::Low {
        return true;
    }
    fixpoint(ti.wcet_hi(), ti.deadline(), |r| {
        hp.iter()
            .map(|&j| {
                let tj = &tasks[j];
                match tj.criticality() {
                    Criticality::High => tj.wcet_hi() * r.div_ceil(tj.period()),
                    Criticality::Low => tj.wcet_lo() * lo_resp.div_ceil(tj.period()),
                }
            })
            .sum()
    })
    .is_some()
}

impl SchedulabilityTest for AmcRtb {
    fn name(&self) -> &'static str {
        if self.audsley {
            "AMC-rtb-OPA"
        } else {
            "AMC-rtb"
        }
    }
    fn is_schedulable(&self, ts: &TaskSet) -> bool {
        if self.audsley {
            AmcRtb::audsley_order(ts).is_some()
        } else {
            amc_schedulable(ts, |ctx, i| ctx.rtb_response(i))
        }
    }

    fn admission_state(&self) -> Box<dyn AdmissionState + '_> {
        Box::new(self.new_state())
    }
}

impl IncrementalTest for AmcRtb {
    type State = AmcState;

    fn new_state(&self) -> AmcState {
        AmcState::new(if self.audsley {
            AmcVariant::RtbAudsley
        } else {
            AmcVariant::RtbDm
        })
    }
}

/// The AMC-max schedulability test (the variant the DATE 2017 paper uses
/// for its "AMC" results).
///
/// Dominates [`AmcRtb`]: the returned response bound is the minimum of the
/// switch-instant enumeration and the rtb bound.
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// use mcsched_analysis::{AmcMax, SchedulabilityTest};
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let ts = TaskSet::try_from_tasks(vec![
///     Task::hi(0, 10, 2, 4)?,
///     Task::hi(1, 25, 3, 7)?,
///     Task::lo(2, 20, 5)?,
/// ])?;
/// assert!(AmcMax::new().is_schedulable(&ts));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AmcMax {
    _priv: (),
}

impl AmcMax {
    /// Creates the test.
    pub fn new() -> Self {
        AmcMax { _priv: () }
    }
}

impl SchedulabilityTest for AmcMax {
    fn name(&self) -> &'static str {
        "AMC-max"
    }
    fn is_schedulable(&self, ts: &TaskSet) -> bool {
        amc_schedulable(ts, |ctx, i| ctx.max_bound(i))
    }

    fn admission_state(&self) -> Box<dyn AdmissionState + '_> {
        Box::new(self.new_state())
    }
}

impl IncrementalTest for AmcMax {
    type State = AmcState;

    fn new_state(&self) -> AmcState {
        AmcState::new(AmcVariant::Max)
    }
}

/// Which AMC analysis an [`AmcState`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AmcVariant {
    /// AMC-rtb under deadline-monotonic priorities.
    RtbDm,
    /// AMC-rtb under Audsley's OPA (no incremental structure — every
    /// query re-runs the priority-assignment search).
    RtbAudsley,
    /// AMC-max under deadline-monotonic priorities.
    Max,
}

/// The cached per-processor analysis of a committed, schedulable set:
/// the DM priority order plus every response-time fixed point.
#[derive(Debug, Clone, Default)]
struct AmcCache {
    /// Task indices from highest to lowest priority.
    order: Vec<usize>,
    /// Low-mode response time per task index.
    lo_resp: Vec<Time>,
    /// High-mode response bound per task index (`None` for LC tasks).
    hi_resp: Vec<Option<Time>>,
}

/// Incremental admission for the AMC response-time analyses.
///
/// Inserting a candidate into the deadline-monotonic order leaves every
/// higher-priority task's analysis untouched (its higher-priority set is
/// unchanged), so those response times are reused verbatim; the candidate
/// and the tasks below it re-run their fixed-point iterations
/// **warm-started** from the previous responses, which converge to the
/// same least fixed points (see `fixpoint_from`) — the verdict is
/// exactly the one-shot test's, at a fraction of the iterations.
#[derive(Debug, Clone)]
pub struct AmcState {
    variant: AmcVariant,
    committed: Committed,
    /// `Some` whenever the committed set is known schedulable; `None`
    /// forces the next query onto the full-analysis path.
    cache: Option<AmcCache>,
    /// The analysis computed by the last successful `try_admit`, adopted
    /// by a matching `commit` without re-running anything.
    pending: Option<(TaskId, AmcCache)>,
}

impl AmcState {
    fn new(variant: AmcVariant) -> Self {
        AmcState {
            variant,
            committed: Committed::default(),
            cache: Some(AmcCache::default()),
            pending: None,
        }
    }

    /// Full analysis of a workspace (used for the non-incremental paths
    /// and cache rebuilds). Returns `None` iff the one-shot test rejects.
    fn analyze(tasks: &[Task], variant: AmcVariant) -> Option<AmcCache> {
        let order = dm_order_slice(tasks);
        let mut lo_resp = vec![Time::ZERO; tasks.len()];
        for (pos, &i) in order.iter().enumerate() {
            let hp = &order[..pos];
            lo_resp[i] = fixpoint(tasks[i].wcet_lo(), tasks[i].deadline(), |r| {
                hp.iter()
                    .map(|&j| tasks[j].wcet_lo() * r.div_ceil(tasks[j].period()))
                    .sum()
            })?;
        }
        let ctx = AmcContext {
            tasks,
            order: &order,
            lo_resp: &lo_resp,
        };
        let mut hi_resp = vec![None; tasks.len()];
        for &i in &order {
            if tasks[i].criticality() == Criticality::High {
                let bound = match variant {
                    AmcVariant::RtbDm => ctx.rtb_response(i),
                    AmcVariant::Max => ctx.max_bound(i),
                    AmcVariant::RtbAudsley => unreachable!("audsley has no DM cache"),
                };
                match bound {
                    Some(r) if r <= tasks[i].deadline() => hi_resp[i] = Some(r),
                    _ => return None,
                }
            }
        }
        Some(AmcCache {
            order,
            lo_resp,
            hi_resp,
        })
    }

    /// The incremental admission query: reuse the prefix above the
    /// insertion point, warm-start the suffix.
    fn admit_incremental(&self, cache: &AmcCache, cand: &Task) -> Option<AmcCache> {
        let tasks = self.committed.tasks.as_slice();
        let n = tasks.len();
        let mut workspace: Vec<Task> = Vec::with_capacity(n + 1);
        workspace.extend_from_slice(tasks);
        workspace.push(*cand);

        // Insertion position in the (sorted, duplicate-free) DM order.
        let key = (cand.deadline(), cand.id());
        let p = cache
            .order
            .partition_point(|&i| (tasks[i].deadline(), tasks[i].id()) < key);
        let mut order = Vec::with_capacity(n + 1);
        order.extend_from_slice(&cache.order[..p]);
        order.push(n);
        order.extend_from_slice(&cache.order[p..]);

        // Low-mode RTA: positions above p are untouched; the candidate
        // starts cold, the suffix warm-starts from its previous response.
        let mut lo_resp = vec![Time::ZERO; n + 1];
        for &i in &cache.order[..p] {
            lo_resp[i] = cache.lo_resp[i];
        }
        for pos in p..=n {
            let i = order[pos];
            let hp = &order[..pos];
            let start = if i == n {
                workspace[i].wcet_lo()
            } else {
                cache.lo_resp[i]
            };
            lo_resp[i] = fixpoint_from(
                start,
                workspace[i].wcet_lo(),
                workspace[i].deadline(),
                |r| {
                    hp.iter()
                        .map(|&j| workspace[j].wcet_lo() * r.div_ceil(workspace[j].period()))
                        .sum()
                },
            )?;
        }

        let ctx = AmcContext {
            tasks: &workspace,
            order: &order,
            lo_resp: &lo_resp,
        };
        let mut hi_resp = vec![None; n + 1];
        for (pos, &i) in order.iter().enumerate() {
            if workspace[i].criticality() != Criticality::High {
                continue;
            }
            if pos < p {
                // Higher priority than the candidate: identical inputs,
                // identical bound.
                hi_resp[i] = cache.hi_resp[i];
                continue;
            }
            let bound = match self.variant {
                AmcVariant::RtbDm => {
                    let start = if i == n {
                        workspace[i].wcet_hi()
                    } else {
                        cache.hi_resp[i].unwrap_or_else(|| workspace[i].wcet_hi())
                    };
                    ctx.rtb_response_from(i, start)
                }
                AmcVariant::Max => ctx.max_bound(i),
                AmcVariant::RtbAudsley => unreachable!("audsley has no DM cache"),
            };
            match bound {
                Some(r) if r <= workspace[i].deadline() => hi_resp[i] = Some(r),
                _ => return None,
            }
        }
        Some(AmcCache {
            order,
            lo_resp,
            hi_resp,
        })
    }

    fn rebuild_cache(&mut self) {
        self.pending = None;
        self.cache = match self.variant {
            AmcVariant::RtbAudsley => None,
            _ => Self::analyze(self.committed.tasks.as_slice(), self.variant),
        };
    }
}

impl AdmissionState for AmcState {
    fn try_admit(&mut self, task: &Task) -> bool {
        if self.variant == AmcVariant::RtbAudsley {
            // OPA re-searches priorities from scratch; no DM structure to
            // reuse.
            let mut candidate = self.committed.tasks.clone();
            candidate.push_unchecked(*task);
            let ok = AmcRtb::audsley_order(&candidate).is_some();
            self.committed.record(false, ok);
            return ok;
        }
        match self.cache.take() {
            Some(cache) => {
                let admitted = self.admit_incremental(&cache, task);
                let ok = admitted.is_some();
                self.pending = admitted.map(|c| (task.id(), c));
                self.cache = Some(cache);
                self.committed.record(true, ok);
                ok
            }
            None => {
                // Committed set not known schedulable (e.g. after an
                // unchecked commit): fall back to a full analysis of the
                // union, exactly the one-shot verdict.
                let mut workspace: Vec<Task> = Vec::with_capacity(self.committed.tasks.len() + 1);
                workspace.extend_from_slice(self.committed.tasks.as_slice());
                workspace.push(*task);
                let admitted = Self::analyze(&workspace, self.variant);
                let ok = admitted.is_some();
                self.pending = admitted.map(|c| (task.id(), c));
                self.committed.record(false, ok);
                ok
            }
        }
    }

    fn commit(&mut self, task: Task) {
        match self.pending.take() {
            Some((id, cache)) if id == task.id() => {
                self.committed.push(task);
                self.cache = Some(cache);
            }
            _ => {
                self.committed.push(task);
                self.rebuild_cache();
            }
        }
    }

    fn remove(&mut self, id: TaskId) -> bool {
        if self.committed.remove(id).is_none() {
            return false;
        }
        self.rebuild_cache();
        true
    }

    fn summary(&self) -> SystemUtilization {
        self.committed.summary
    }

    fn tasks(&self) -> &TaskSet {
        &self.committed.tasks
    }

    fn take_tasks(&mut self) -> TaskSet {
        let tasks = self.committed.take();
        self.pending = None;
        self.cache = match self.variant {
            AmcVariant::RtbAudsley => None,
            _ => Some(AmcCache::default()),
        };
        tasks
    }

    fn stats(&self) -> AdmissionStats {
        self.committed.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsched_model::Task;

    fn set(tasks: Vec<Task>) -> TaskSet {
        TaskSet::try_from_tasks(tasks).unwrap()
    }

    #[test]
    fn dm_order_sorts_by_deadline() {
        let ts = set(vec![
            Task::lo(0, 30, 1).unwrap(),
            Task::hi(1, 10, 1, 2).unwrap(),
            Task::lo_constrained(2, 40, 1, 5).unwrap(),
        ]);
        assert_eq!(dm_order(&ts), vec![2, 1, 0]);
    }

    #[test]
    fn lo_rta_basic() {
        let ts = set(vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::lo(1, 20, 5).unwrap(),
        ]);
        let r = LoRta::compute(&ts).unwrap();
        assert_eq!(r[0], Time::new(2));
        // τ1: R = 5 + ⌈R/10⌉·2 → R = 7.
        assert_eq!(r[1], Time::new(7));
    }

    #[test]
    fn lo_rta_detects_miss() {
        let ts = set(vec![
            Task::lo_constrained(0, 10, 5, 5).unwrap(),
            Task::lo_constrained(1, 10, 5, 6).unwrap(),
        ]);
        assert!(LoRta::compute(&ts).is_none());
    }

    #[test]
    fn lo_rta_multiple_preemptions() {
        let ts = set(vec![
            Task::lo(0, 5, 2).unwrap(),
            Task::lo(1, 20, 6).unwrap(),
        ]);
        let r = LoRta::compute(&ts).unwrap();
        // τ1: R = 6 + 2·⌈R/5⌉ converges at R = 10 (6 + 2·⌈10/5⌉ = 10).
        assert_eq!(r[1], Time::new(10));
    }

    #[test]
    fn amc_accepts_simple_mixed_set() {
        let ts = set(vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::lo(1, 20, 5).unwrap(),
        ]);
        assert!(AmcRtb::new().is_schedulable(&ts));
        assert!(AmcMax::new().is_schedulable(&ts));
    }

    #[test]
    fn amc_rejects_hi_mode_overload() {
        let ts = set(vec![
            Task::hi(0, 10, 2, 6).unwrap(),
            Task::hi(1, 10, 2, 5).unwrap(),
        ]);
        assert!(!AmcRtb::new().is_schedulable(&ts));
        assert!(!AmcMax::new().is_schedulable(&ts));
    }

    #[test]
    fn amc_rejects_lo_mode_miss() {
        let ts = set(vec![
            Task::lo_constrained(0, 10, 5, 5).unwrap(),
            Task::hi_constrained(1, 10, 4, 4, 6).unwrap(),
        ]);
        // DM: τ0 (D=5) above τ1 (D=6); τ1 LO response = 4+5 = 9 > 6.
        assert!(!AmcRtb::new().is_schedulable(&ts));
        assert!(!AmcMax::new().is_schedulable(&ts));
    }

    #[test]
    fn amc_max_dominates_rtb_on_grid() {
        // Grid sweep: every rtb-accepted set must be max-accepted.
        for ch in 3..=8u64 {
            for cl2 in 1..=4u64 {
                for c3 in 1..=6u64 {
                    let ts = set(vec![
                        Task::hi(0, 12, 2, ch).unwrap(),
                        Task::hi(1, 20, cl2, cl2 + 3).unwrap(),
                        Task::lo(2, 15, c3).unwrap(),
                    ]);
                    let rtb = AmcRtb::new().is_schedulable(&ts);
                    let mx = AmcMax::new().is_schedulable(&ts);
                    if rtb {
                        assert!(mx, "AMC-max rejected an AMC-rtb set: {ts}");
                    }
                }
            }
        }
    }

    #[test]
    fn amc_max_strictly_beats_rtb() {
        // Hand-constructed instance where enumerating switch instants pays:
        // DM order τb (D=14), τa (D=15), τi (D=48).
        // R^LO_i = 23; AMC-rtb gives R = 52 > 48 (LC charged ⌈23/15⌉ = 2
        // jobs and all τb jobs at C^H = 10 over the large window), while
        // every switch instant s ∈ {0, 14, 15, 20} yields R(s) ≤ 37:
        // early s freezes LC at one job, late s lets M(b, s) charge τb's
        // completed job at C^L = 2.
        let ts = set(vec![
            Task::lo(0, 15, 5).unwrap(),
            Task::hi_constrained(1, 20, 2, 10, 14).unwrap(),
            Task::hi_constrained(2, 60, 9, 12, 48).unwrap(),
        ]);
        assert!(!AmcRtb::new().is_schedulable(&ts), "rtb should reject");
        assert!(AmcMax::new().is_schedulable(&ts), "max should accept");
    }

    #[test]
    fn lc_tasks_ignored_after_switch() {
        // A heavy LC task below a HC task in priority affects only the
        // LO-mode phase of the HC task's analysis.
        let ts = set(vec![
            Task::hi_constrained(0, 100, 10, 40, 60).unwrap(),
            Task::lo(1, 100, 50).unwrap(),
        ]);
        // DM: τ0 (D=60) above τ1 (D=100): τ1's interference is irrelevant to
        // τ0. τ0 passes trivially; τ1 needs 50 + 10 = 60 ≤ 100 in LO.
        assert!(AmcMax::new().is_schedulable(&ts));
    }

    #[test]
    fn hc_only_and_lc_only_sets() {
        let hc_only = set(vec![
            Task::hi(0, 10, 1, 3).unwrap(),
            Task::hi(1, 14, 2, 5).unwrap(),
        ]);
        assert!(AmcMax::new().is_schedulable(&hc_only));
        let lc_only = set(vec![
            Task::lo(0, 10, 4).unwrap(),
            Task::lo(1, 14, 5).unwrap(),
        ]);
        assert!(AmcMax::new().is_schedulable(&lc_only));
        assert!(AmcRtb::new().is_schedulable(&lc_only));
    }

    #[test]
    fn empty_set() {
        assert!(AmcRtb::new().is_schedulable(&TaskSet::new()));
        assert!(AmcMax::new().is_schedulable(&TaskSet::new()));
    }

    #[test]
    fn names() {
        assert_eq!(AmcRtb::new().name(), "AMC-rtb");
        assert_eq!(AmcMax::new().name(), "AMC-max");
    }

    #[test]
    fn audsley_dominates_dm_rtb_on_grid() {
        // Grid sweep: OPA accepts everything DM-based rtb accepts.
        for c0 in 1..=5u64 {
            for c1 in 1..=6u64 {
                for d1 in c1..=12 {
                    let ts = set(vec![
                        Task::hi(0, 10, c0, (c0 + 2).min(10)).unwrap(),
                        Task::lo_constrained(1, 12, c1, d1).unwrap(),
                        Task::lo(2, 20, 3).unwrap(),
                    ]);
                    let dm = AmcRtb::new().is_schedulable(&ts);
                    let opa = AmcRtb::with_audsley().is_schedulable(&ts);
                    if dm {
                        assert!(opa, "OPA rejected a DM-accepted set: {ts}");
                    }
                }
            }
        }
    }

    #[test]
    fn audsley_strictly_beats_dm() {
        // DM puts τ1 (D = 9) above the HC task τ0 (D = 10), whose rtb
        // high-mode bound then reads 6 + 5·⌈9/12⌉ = 11 > 10. Audsley finds
        // the order τ0 > τ1 > τ2: τ0's bound is its own C^H = 6 ≤ 10, τ1
        // responds in exactly 9, and τ2 converges at 30 ≤ 40.
        let ts = set(vec![
            Task::hi(0, 10, 4, 6).unwrap(),
            Task::lo_constrained(1, 12, 5, 9).unwrap(),
            Task::lo(2, 40, 3).unwrap(),
        ]);
        assert!(!AmcRtb::new().is_schedulable(&ts), "DM-rtb should reject");
        assert!(
            AmcRtb::with_audsley().is_schedulable(&ts),
            "OPA should accept"
        );
        let order = AmcRtb::audsley_order(&ts).unwrap();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn audsley_order_is_a_permutation() {
        let ts = set(vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::lo(1, 20, 5).unwrap(),
            Task::hi(2, 25, 3, 6).unwrap(),
        ]);
        let order = AmcRtb::audsley_order(&ts).expect("feasible");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn audsley_rejects_infeasible() {
        let ts = set(vec![
            Task::hi(0, 10, 4, 9).unwrap(),
            Task::hi(1, 10, 4, 9).unwrap(),
        ]);
        assert!(AmcRtb::audsley_order(&ts).is_none());
        assert!(!AmcRtb::with_audsley().is_schedulable(&ts));
    }

    #[test]
    fn audsley_names() {
        assert_eq!(AmcRtb::with_audsley().name(), "AMC-rtb-OPA");
        assert_eq!(AmcRtb::new().name(), "AMC-rtb");
    }

    #[test]
    fn incremental_states_match_one_shot_exactly() {
        use crate::incremental::clone_and_retest;
        // Deadlines chosen so successive insertions land at the top,
        // middle and bottom of the DM order (exercising prefix reuse and
        // warm-started suffixes), including a constrained deadline.
        let sequence = vec![
            Task::hi(0, 30, 3, 6).unwrap(),
            Task::lo(1, 10, 2).unwrap(),
            Task::hi_constrained(2, 25, 2, 5, 20).unwrap(),
            Task::lo_constrained(3, 12, 1, 5).unwrap(),
            Task::hi(4, 40, 4, 9).unwrap(),
            Task::lo(5, 15, 3).unwrap(),
            Task::hi(6, 18, 2, 4).unwrap(),
        ];
        let tests: Vec<Box<dyn SchedulabilityTest>> = vec![
            Box::new(AmcRtb::new()),
            Box::new(AmcRtb::with_audsley()),
            Box::new(AmcMax::new()),
        ];
        for test in &tests {
            let mut state = test.admission_state();
            for t in &sequence {
                let expected = clone_and_retest(test, state.tasks(), t);
                assert_eq!(state.try_admit(t), expected, "{} on {t}", test.name());
                if expected {
                    state.commit(*t);
                }
            }
            // Remove a mid-priority task; the rebuilt cache must keep
            // agreeing with the one-shot test.
            assert!(state.remove(TaskId(2)));
            let back = sequence[2];
            let expected = clone_and_retest(test, state.tasks(), &back);
            assert_eq!(state.try_admit(&back), expected, "{} re-admit", test.name());
            if expected {
                state.commit(back);
            }
            // Overload is rejected just like the one-shot test.
            let heavy = Task::hi(9, 10, 6, 9).unwrap();
            let expected = clone_and_retest(test, state.tasks(), &heavy);
            assert_eq!(state.try_admit(&heavy), expected);
        }
    }

    #[test]
    fn uncommitted_admit_then_commit_of_other_task_rebuilds() {
        // commit() without a matching try_admit must stay correct (the
        // cache is rebuilt from scratch).
        let test = AmcMax::new();
        let mut state = test.new_state();
        let a = Task::hi(0, 10, 2, 4).unwrap();
        let b = Task::lo(1, 20, 5).unwrap();
        assert!(state.try_admit(&a));
        state.commit(b); // not the task we admitted
        state.commit(a);
        let c = Task::lo(2, 30, 4).unwrap();
        let expected = crate::incremental::clone_and_retest(&test, state.tasks(), &c);
        assert_eq!(state.try_admit(&c), expected);
    }

    #[test]
    fn switch_candidates_cover_step_points() {
        let ts = set(vec![
            Task::lo(0, 7, 3).unwrap(),
            Task::hi(1, 11, 1, 2).unwrap(),
            Task::hi(2, 50, 5, 20).unwrap(),
        ]);
        let order = dm_order(&ts);
        let lo = LoRta::compute_with_order(&ts, &order).unwrap();
        // R^LO_2 = 5 + 3·⌈R/7⌉ + 1·⌈R/11⌉ converges at 13.
        assert_eq!(lo[2], Time::new(13));
        let ctx = AmcContext {
            tasks: ts.as_slice(),
            order: &order,
            lo_resp: &lo,
        };
        let cands = ctx.switch_candidates(2);
        assert!(cands.contains(&Time::ZERO));
        // Multiples of 7 (LC period) below R^LO and 11 (HC deadline and
        // period of τ1) below R^LO.
        assert!(cands.contains(&Time::new(7)));
        assert!(cands.contains(&Time::new(11)));
        // Strictly below the LO response time.
        assert!(cands.iter().all(|&c| c < lo[2]));
    }
}
