//! Adaptive Mixed-Criticality (AMC) response-time analyses.
//!
//! Fixed-priority scheduling for dual-criticality systems (Baruah, Burns &
//! Davis, RTSS 2011): every task has a fixed priority; when a HC job
//! exceeds its `C^L` budget the processor switches to high mode and all LC
//! tasks are immediately dropped.
//!
//! Priorities here are **deadline-monotonic** (smaller relative deadline =
//! higher priority, ties broken by task id), the standard choice for
//! constrained-deadline fixed-priority systems.
//!
//! Three analyses:
//!
//! * **Low-mode RTA** ([`LoRta`]) — classic response-time analysis with
//!   `C^L` budgets; every task (LC and HC) must meet its deadline before
//!   any switch.
//! * **AMC-rtb** ([`AmcRtb`]) — response-time bound: HC task `τi`'s
//!   high-mode response satisfies
//!   `R = C^H_i + Σ_{k∈hpH} ⌈R/Tk⌉·C^H_k + Σ_{j∈hpL} ⌈R^LO_i/Tj⌉·C^L_j`.
//! * **AMC-max** ([`AmcMax`]) — enumerates candidate mode-switch instants
//!   `s ∈ [0, R^LO_i)` as the paper describes ("considers all possible mode
//!   switch instants until the low mode response time"): LC interference is
//!   frozen at `(⌊s/Tj⌋+1)·C^L_j`, and of the `⌈R/Tk⌉` hp-HC jobs those
//!   whose deadlines precede `s` — `M(k,s) = (⌊(s−Dk)/Tk⌋+1)₊` of them —
//!   must already have completed and are charged at `C^L_k`, the rest at
//!   `C^H_k`. The final bound takes the best of AMC-max and AMC-rtb, so
//!   AMC-max dominates AMC-rtb by construction (as published).

use crate::incremental::{AdmissionState, AdmissionStats, Committed, IncrementalTest};
use crate::workspace::{AnalysisWorkspace, WorkspaceRef};
use crate::SchedulabilityTest;
use mcsched_model::{Criticality, SystemUtilization, Task, TaskId, TaskSet, Time};

/// Deadline-monotonic priority order: returns task indices from highest to
/// lowest priority.
pub(crate) fn dm_order(ts: &TaskSet) -> Vec<usize> {
    let mut idx = Vec::new();
    dm_order_into(ts.as_slice(), &mut idx);
    idx
}

/// [`dm_order`] into a caller-supplied buffer (cleared first), over a raw
/// task slice — the incremental states and the workspace-backed one-shot
/// path analyse `committed + candidate` unions without materialising a
/// `TaskSet` or allocating the index vector.
fn dm_order_into(tasks: &[Task], idx: &mut Vec<usize>) {
    idx.clear();
    idx.extend(0..tasks.len());
    // The (deadline, id) key is unique, so the unstable sort (which never
    // allocates, unlike the stable one) orders identically.
    idx.sort_unstable_by(|&a, &b| {
        tasks[a]
            .deadline()
            .cmp(&tasks[b].deadline())
            .then_with(|| tasks[a].id().cmp(&tasks[b].id()))
    });
}

/// Iterates the standard RTA fixpoint `R = wcet + interference(R)`,
/// bailing out as soon as `R` exceeds `deadline`.
fn fixpoint(wcet: Time, deadline: Time, interference: impl Fn(Time) -> Time) -> Option<Time> {
    fixpoint_from(wcet, wcet, deadline, interference)
}

/// [`fixpoint`] warm-started at `start`.
///
/// Exactness: for a monotone interference function whose least fixed point
/// is `R*`, Kleene iteration from any `start ≤ R*` with
/// `wcet + interference(start) ≥ start` converges to the same `R*` (the
/// iterates stay monotone nondecreasing and bounded by `R*`). The
/// incremental AMC state warm-starts from the response computed *before* a
/// task was added — interference only grows when the higher-priority set
/// grows, so the old response is such a valid lower bound and the returned
/// fixed point (and verdict) is identical to a cold start, only cheaper.
fn fixpoint_from(
    start: Time,
    wcet: Time,
    deadline: Time,
    interference: impl Fn(Time) -> Time,
) -> Option<Time> {
    let mut r = start.max(wcet);
    loop {
        let next = wcet + interference(r);
        if next > deadline {
            return None;
        }
        if next == r {
            return Some(r);
        }
        r = next;
    }
}

/// Low-mode response-time analysis at `C^L` budgets under
/// deadline-monotonic priorities.
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// use mcsched_analysis::LoRta;
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let ts = TaskSet::try_from_tasks(vec![
///     Task::hi(0, 10, 2, 4)?,
///     Task::lo(1, 20, 5)?,
/// ])?;
/// let r = LoRta::compute(&ts).expect("LO-mode schedulable");
/// assert_eq!(r[0].as_ticks(), 2);  // highest priority: runs alone
/// assert_eq!(r[1].as_ticks(), 7);  // 5 + 2·⌈7/10⌉ = 7: fixpoint
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoRta;

impl LoRta {
    /// Computes every task's low-mode response time, in task-set order.
    /// Returns `None` if any task misses its deadline in low mode.
    pub fn compute(ts: &TaskSet) -> Option<Vec<Time>> {
        let order = dm_order(ts);
        Self::compute_with_order(ts, &order)
    }

    /// As [`LoRta::compute`], under a caller-supplied priority order
    /// (indices from highest to lowest priority).
    pub fn compute_with_order(ts: &TaskSet, order: &[usize]) -> Option<Vec<Time>> {
        let tasks = ts.as_slice();
        let mut resp = vec![Time::ZERO; tasks.len()];
        for (pos, &i) in order.iter().enumerate() {
            let hp = &order[..pos];
            let r = fixpoint(tasks[i].wcet_lo(), tasks[i].deadline(), |r| {
                hp.iter()
                    .map(|&j| tasks[j].wcet_lo() * r.div_ceil(tasks[j].period()))
                    .sum()
            })?;
            resp[i] = r;
        }
        Some(resp)
    }
}

/// Shared AMC machinery: low-mode RTA plus per-variant high-mode RTA,
/// allocating its index and response vectors per call. Only the
/// [`reference`] module still runs this; the hot path goes through
/// [`amc_schedulable_in`].
fn amc_schedulable(ts: &TaskSet, hi_rta: impl Fn(&AmcContext<'_>, usize) -> Option<Time>) -> bool {
    if ts.is_empty() {
        return true;
    }
    let order = dm_order(ts);
    let Some(lo_resp) = LoRta::compute_with_order(ts, &order) else {
        return false;
    };
    let ctx = AmcContext {
        tasks: ts.as_slice(),
        order: &order,
        lo_resp: &lo_resp,
    };
    for &i in order.iter() {
        if ctx.tasks[i].criticality() == Criticality::High {
            match hi_rta(&ctx, i) {
                Some(r) if r <= ctx.tasks[i].deadline() => {}
                _ => return false,
            }
        }
    }
    true
}

/// [`amc_schedulable`] over workspace scratch: delegates to the
/// incremental layer's [`analyze_into`] with the workspace's reusable
/// cache and candidate-walk buffers, so the one-shot and the
/// cache-rebuild paths are literally the same code and the steady-state
/// one-shot path allocates nothing.
fn amc_schedulable_in(ts: &TaskSet, variant: AmcVariant, ws: &mut AnalysisWorkspace) -> bool {
    let AnalysisWorkspace {
        streams, hc, amc, ..
    } = ws;
    analyze_into(ts.as_slice(), variant, streams, hc, amc)
}

/// One step sequence of a single interference term in the streaming
/// AMC-max candidate walk: fires at `next`, `next + stride`, … until the
/// step point reaches the task's low-mode response time (stepping is
/// saturating, see [`AmcContext::fold_candidates`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CandStream {
    /// The next step instant (`Time::MAX`-saturated once exhausted).
    next: Time,
    /// Distance between steps (the interferer's period).
    stride: Time,
    /// Steps fired so far — the term's current job count.
    count: u64,
    /// Which running quantity a fire updates.
    kind: StreamKind,
}

/// What a [`CandStream`] fire contributes.
#[derive(Debug, Clone, Copy)]
enum StreamKind {
    /// LC interferer: a fire freezes one more `C^L` job into the LC sum.
    Lc {
        /// The interferer's `C^L`.
        cost: Time,
    },
    /// HC interferer bound (deadline- or release-based): a fire raises the
    /// completed-job bound `M(k, s)` of the slot.
    Hc {
        /// Index into the walk's [`HcSlot`] array.
        slot: usize,
    },
}

/// Per-hp-HC-task state of the streaming AMC-max walk: the constants of
/// its interference term plus the current completed-job bound `M(k, s)`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HcSlot {
    wcet_lo: Time,
    wcet_hi: Time,
    period: Time,
    /// `max(by_deadline(s), by_release(s))` at the walk's current instant.
    m: u64,
}

/// Bundled inputs for the high-mode analyses.
struct AmcContext<'a> {
    tasks: &'a [Task],
    order: &'a [usize],
    lo_resp: &'a [Time],
}

impl AmcContext<'_> {
    /// Higher-priority task indices for task `i`.
    fn hp(&self, i: usize) -> &[usize] {
        let pos = self
            .order
            .iter()
            .position(|&x| x == i)
            .expect("task in order");
        &self.order[..pos]
    }

    fn rtb_response(&self, i: usize) -> Option<Time> {
        self.rtb_response_from(i, self.tasks[i].wcet_hi())
    }

    /// [`AmcContext::rtb_response`] with a warm-started fixpoint (see
    /// [`fixpoint_from`] for why the result is identical).
    fn rtb_response_from(&self, i: usize, start: Time) -> Option<Time> {
        let ti = &self.tasks[i];
        let hp = self.hp(i);
        let lo_cap = self.lo_resp[i];
        fixpoint_from(start, ti.wcet_hi(), ti.deadline(), |r| {
            hp.iter()
                .map(|&j| {
                    let tj = &self.tasks[j];
                    match tj.criticality() {
                        Criticality::High => tj.wcet_hi() * r.div_ceil(tj.period()),
                        Criticality::Low => tj.wcet_lo() * lo_cap.div_ceil(tj.period()),
                    }
                })
                .sum()
        })
    }

    /// The AMC-max bound for task `i`: the worst response over all switch
    /// instants, never worse than the rtb bound (shared by the one-shot
    /// test and the incremental state so the code paths cannot diverge).
    ///
    /// Candidate switch instants are walked by [`fold_candidates`]'s
    /// streaming k-way merge instead of materialising, sorting and
    /// deduplicating a `Vec<Time>`; the per-candidate interference is
    /// delta-updated as streams fire, so each fixpoint iteration only pays
    /// one `⌈r/T⌉` per higher-priority HC task and nothing at all for LC
    /// tasks. The visited instants and every fixpoint are identical to the
    /// seed implementation retained in [`crate::amc::reference`].
    ///
    /// [`fold_candidates`]: AmcContext::fold_candidates
    fn max_bound_in(
        &self,
        i: usize,
        streams: &mut Vec<CandStream>,
        slots: &mut Vec<HcSlot>,
    ) -> Option<Time> {
        // max over switch instants; infeasible at any instant → None.
        let mut prev_lc = None;
        let worst =
            self.fold_candidates(i, streams, slots, Time::ZERO, |worst, _s, lc, slots| {
                // Dominance skip (a structural win of the delta-updated
                // walk): if no LC term stepped since the last *evaluated*
                // candidate, only the completed-job bounds `M(k, s)` grew,
                // so the interference function shrank pointwise and this
                // candidate's least fixed point is ≤ the previous one — it
                // can neither raise the max nor turn infeasible. The
                // returned bound and verdict are exactly the seed path's
                // (`s = 0` is always evaluated: `prev_lc` starts unset).
                if prev_lc == Some(lc) {
                    return Some(worst);
                }
                prev_lc = Some(lc);
                let r = self.max_response_streamed(i, lc, slots)?;
                Some(worst.max(r))
            })?;
        // AMC-max result never needs to be worse than AMC-rtb.
        match self.rtb_response(i) {
            Some(rtb) => Some(worst.min(rtb)),
            None => Some(worst),
        }
    }

    /// AMC-max response at one switch instant, from the walk's running
    /// interference state: `lc` is the frozen LC demand at `s` and each
    /// [`HcSlot`] carries `M(k, s)`, so the fixpoint body is a single pass
    /// over the hp-HC slots. Computes exactly the sums of
    /// [`AmcContext::max_response_at`] (integer arithmetic, identical
    /// operations per term).
    fn max_response_streamed(&self, i: usize, lc: Time, slots: &[HcSlot]) -> Option<Time> {
        let ti = &self.tasks[i];
        fixpoint(ti.wcet_hi(), ti.deadline(), |r| {
            let mut total = lc;
            for slot in slots {
                let n = r.div_ceil(slot.period);
                let m = slot.m.min(n);
                total += slot.wcet_lo * m + slot.wcet_hi * (n - m);
            }
            total
        })
    }

    /// Folds `f` over every candidate switch instant of task `i`, in
    /// strictly increasing order with coinciding steps merged — exactly
    /// the sorted-deduplicated set `{0} ∪ {step points < R^LO_i}` the seed
    /// implementation materialised.
    ///
    /// `f` receives the accumulator, the instant `s`, the frozen LC
    /// interference `Σ_{j∈hpL} (⌊s/Tj⌋+1)·C^L_j` and the hp-HC slots with
    /// their completed-job bounds `M(k, s)` up to date; returning `None`
    /// aborts the walk.
    fn fold_candidates<T>(
        &self,
        i: usize,
        streams: &mut Vec<CandStream>,
        slots: &mut Vec<HcSlot>,
        init: T,
        mut f: impl FnMut(T, Time, Time, &[HcSlot]) -> Option<T>,
    ) -> Option<T> {
        let r_lo = self.lo_resp[i];
        streams.clear();
        slots.clear();
        let mut lc = Time::ZERO;
        for &j in self.hp(i) {
            let tj = &self.tasks[j];
            match tj.criticality() {
                Criticality::Low => {
                    // (⌊s/T⌋+1)·C^L: one job at s = 0, stepping at every
                    // multiple of T.
                    lc += tj.wcet_lo();
                    streams.push(CandStream {
                        next: tj.period(),
                        stride: tj.period(),
                        count: 0,
                        kind: StreamKind::Lc { cost: tj.wcet_lo() },
                    });
                }
                Criticality::High => {
                    // M(k, s) = max(by_deadline, by_release) steps at
                    // D + a·T (deadline bound) and at multiples of T
                    // (release bound).
                    let slot = slots.len();
                    slots.push(HcSlot {
                        wcet_lo: tj.wcet_lo(),
                        wcet_hi: tj.wcet_hi(),
                        period: tj.period(),
                        m: 0,
                    });
                    streams.push(CandStream {
                        next: tj.deadline(),
                        stride: tj.period(),
                        count: 0,
                        kind: StreamKind::Hc { slot },
                    });
                    streams.push(CandStream {
                        next: tj.period(),
                        stride: tj.period(),
                        count: 0,
                        kind: StreamKind::Hc { slot },
                    });
                }
            }
        }
        // s = 0 is always a candidate.
        let mut acc = f(init, Time::ZERO, lc, slots)?;
        loop {
            // k-way merge: the earliest pending step strictly below R^LO.
            let mut s = r_lo;
            for stream in streams.iter() {
                if stream.next < s {
                    s = stream.next;
                }
            }
            if s >= r_lo {
                return Some(acc);
            }
            // Fire every stream stepping at s (coinciding steps collapse
            // into the one candidate, replacing the seed path's dedup).
            for stream in streams.iter_mut() {
                if stream.next != s {
                    continue;
                }
                stream.count += 1;
                match stream.kind {
                    StreamKind::Lc { cost } => lc += cost,
                    StreamKind::Hc { slot } => {
                        let m = &mut slots[slot].m;
                        *m = (*m).max(stream.count);
                    }
                }
                // Saturating stepping is the exact overflow guard: a
                // mathematical next step beyond `u64::MAX` also lies
                // beyond `R^LO_i ≤ u64::MAX`, and the saturated value
                // fails the `next < r_lo` test just the same, ending the
                // stream instead of wrapping (or panicking) near
                // `Time::MAX`.
                stream.next = stream.next.saturating_add(stream.stride);
            }
            acc = f(acc, s, lc, slots)?;
        }
    }

    /// The seed implementation of the AMC-max bound — materialise, sort
    /// and deduplicate the candidate instants, then re-derive every
    /// interference term per candidate. Retained (not called on the hot
    /// path) as the equivalence reference for the streaming walk; see
    /// [`crate::amc::reference`].
    fn max_bound_reference(&self, i: usize) -> Option<Time> {
        let mut worst = Time::ZERO;
        for s in self.switch_candidates(i) {
            let r = self.max_response_at(i, s)?;
            worst = worst.max(r);
        }
        match self.rtb_response(i) {
            Some(rtb) => Some(worst.min(rtb)),
            None => Some(worst),
        }
    }

    /// AMC-max response for switch instant `s` (reference path).
    fn max_response_at(&self, i: usize, s: Time) -> Option<Time> {
        let ti = &self.tasks[i];
        let hp = self.hp(i);
        fixpoint(ti.wcet_hi(), ti.deadline(), |r| {
            hp.iter()
                .map(|&j| {
                    let tj = &self.tasks[j];
                    match tj.criticality() {
                        Criticality::Low => tj.wcet_lo() * (s.div_floor(tj.period()) + 1),
                        Criticality::High => {
                            let n = r.div_ceil(tj.period());
                            // Two sound lower bounds on the hp-HC jobs that
                            // certainly completed (hence ran at C^L) before
                            // the switch at s:
                            //  * jobs with deadlines at or before s (low-mode
                            //    deadlines are guaranteed): ⌊(s−D)/T⌋ + 1;
                            //  * all releases in [0, s] except at most one —
                            //    with constrained deadlines (D ≤ T), at most
                            //    one job per task is incomplete at any
                            //    deadline-meeting instant: ⌊s/T⌋.
                            let by_deadline = if s >= tj.deadline() {
                                (s - tj.deadline()).div_floor(tj.period()) + 1
                            } else {
                                0
                            };
                            let by_release = s.div_floor(tj.period());
                            let m = by_deadline.max(by_release).min(n);
                            tj.wcet_lo() * m + tj.wcet_hi() * (n - m)
                        }
                    }
                })
                .sum()
        })
    }

    /// Candidate switch instants for task `i`: points in `[0, R^LO_i)`
    /// where some interference term steps, plus 0 (reference path; the hot
    /// path streams the same instants through
    /// [`AmcContext::fold_candidates`] without materialising them).
    fn switch_candidates(&self, i: usize) -> Vec<Time> {
        let r_lo = self.lo_resp[i];
        let mut cands = vec![Time::ZERO];
        for &j in self.hp(i) {
            let tj = &self.tasks[j];
            match tj.criticality() {
                Criticality::Low => {
                    // (⌊s/T⌋+1) steps at multiples of T.
                    let mut t = tj.period();
                    while t < r_lo {
                        cands.push(t);
                        t += tj.period();
                    }
                }
                Criticality::High => {
                    // M(k, s) steps at D + j·T (deadline bound) and at
                    // multiples of T (release bound).
                    let mut t = tj.deadline();
                    while t < r_lo {
                        cands.push(t);
                        t += tj.period();
                    }
                    let mut t = tj.period();
                    while t < r_lo {
                        cands.push(t);
                        t += tj.period();
                    }
                }
            }
        }
        cands.sort_unstable();
        cands.dedup();
        cands
    }
}

/// The AMC-rtb (response-time bound) schedulability test.
///
/// By default priorities are deadline-monotonic. AMC-rtb is
/// **OPA-compatible** (a task's bound depends only on the *set* of
/// higher-priority tasks, not their relative order), so
/// [`AmcRtb::with_audsley`] enables Audsley's Optimal Priority Assignment,
/// which strictly dominates DM for this test.
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// use mcsched_analysis::{AmcRtb, SchedulabilityTest};
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let ts = TaskSet::try_from_tasks(vec![
///     Task::hi(0, 10, 2, 4)?,
///     Task::lo(1, 20, 5)?,
/// ])?;
/// assert!(AmcRtb::new().is_schedulable(&ts));
/// assert!(AmcRtb::with_audsley().is_schedulable(&ts));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AmcRtb {
    audsley: bool,
}

impl AmcRtb {
    /// AMC-rtb under deadline-monotonic priorities.
    pub fn new() -> Self {
        AmcRtb { audsley: false }
    }

    /// AMC-rtb under Audsley's Optimal Priority Assignment: priorities are
    /// assigned from the lowest level up; at each level any task whose
    /// low-mode RTA and (for HC tasks) rtb high-mode RTA pass with *all*
    /// remaining tasks as higher-priority interference can take the level.
    /// Accepts a superset of the DM variant.
    pub fn with_audsley() -> Self {
        AmcRtb { audsley: true }
    }

    /// The Audsley priority order found for this set (highest priority
    /// first), if one exists. Exposed so the simulator can run the
    /// assignment the analysis certified.
    pub fn audsley_order(ts: &TaskSet) -> Option<Vec<usize>> {
        AnalysisWorkspace::with(|ws| {
            let AnalysisWorkspace { idx, idx2, .. } = ws;
            if !audsley_lowest_first(ts.as_slice(), idx, idx2) {
                return None;
            }
            Some(idx2.iter().rev().copied().collect())
        })
    }
}

/// The Audsley search over caller scratch: fills `lowest_first` with the
/// assignment from the lowest priority level up, returning `false` when
/// some level has no feasible task. The allocation-free core behind
/// [`AmcRtb::audsley_order`], the one-shot OPA test and the incremental
/// OPA admission probes.
fn audsley_lowest_first(
    tasks: &[Task],
    unassigned: &mut Vec<usize>,
    lowest_first: &mut Vec<usize>,
) -> bool {
    unassigned.clear();
    unassigned.extend(0..tasks.len());
    lowest_first.clear();
    while !unassigned.is_empty() {
        // Find a task that is feasible at the current (lowest free)
        // priority level, with every other unassigned task above it.
        let found = (0..unassigned.len()).find(|&p| rtb_feasible_at(tasks, unassigned, p));
        match found {
            Some(p) => lowest_first.push(unassigned.remove(p)),
            None => return false,
        }
    }
    true
}

/// Checks `unassigned[p]` at the lowest priority level below every other
/// unassigned task (low-mode RTA, and the rtb high-mode bound when it is
/// HC). The higher-priority set is iterated in place — no materialised
/// `hp` vector; interference sums are integer, so the order of terms is
/// irrelevant to the fixed points.
fn rtb_feasible_at(tasks: &[Task], unassigned: &[usize], p: usize) -> bool {
    let i = unassigned[p];
    let ti = &tasks[i];
    let hp = || {
        unassigned
            .iter()
            .enumerate()
            .filter(move |&(q, _)| q != p)
            .map(|(_, &j)| j)
    };
    let lo = fixpoint(ti.wcet_lo(), ti.deadline(), |r| {
        hp().map(|j| tasks[j].wcet_lo() * r.div_ceil(tasks[j].period()))
            .sum()
    });
    let Some(lo_resp) = lo else {
        return false;
    };
    if ti.criticality() == Criticality::Low {
        return true;
    }
    fixpoint(ti.wcet_hi(), ti.deadline(), |r| {
        hp().map(|j| {
            let tj = &tasks[j];
            match tj.criticality() {
                Criticality::High => tj.wcet_hi() * r.div_ceil(tj.period()),
                Criticality::Low => tj.wcet_lo() * lo_resp.div_ceil(tj.period()),
            }
        })
        .sum()
    })
    .is_some()
}

impl AmcRtb {
    fn variant(&self) -> AmcVariant {
        if self.audsley {
            AmcVariant::RtbAudsley
        } else {
            AmcVariant::RtbDm
        }
    }
}

impl SchedulabilityTest for AmcRtb {
    fn name(&self) -> &'static str {
        if self.audsley {
            "AMC-rtb-OPA"
        } else {
            "AMC-rtb"
        }
    }
    fn is_schedulable(&self, ts: &TaskSet) -> bool {
        AnalysisWorkspace::with(|ws| self.is_schedulable_in(ts, ws))
    }

    fn is_schedulable_in(&self, ts: &TaskSet, ws: &mut AnalysisWorkspace) -> bool {
        if self.audsley {
            let AnalysisWorkspace { idx, idx2, .. } = ws;
            audsley_lowest_first(ts.as_slice(), idx, idx2)
        } else {
            amc_schedulable_in(ts, AmcVariant::RtbDm, ws)
        }
    }

    fn admission_state(&self) -> Box<dyn AdmissionState + '_> {
        Box::new(self.new_state())
    }

    fn admission_state_in(&self, ws: &WorkspaceRef) -> Box<dyn AdmissionState + '_> {
        Box::new(AmcState::with_workspace(self.variant(), ws.clone()))
    }
}

impl IncrementalTest for AmcRtb {
    type State = AmcState;

    fn new_state(&self) -> AmcState {
        AmcState::with_workspace(self.variant(), WorkspaceRef::new())
    }

    fn new_state_in(&self, ws: &WorkspaceRef) -> AmcState {
        AmcState::with_workspace(self.variant(), ws.clone())
    }
}

/// The AMC-max schedulability test (the variant the DATE 2017 paper uses
/// for its "AMC" results).
///
/// Dominates [`AmcRtb`]: the returned response bound is the minimum of the
/// switch-instant enumeration and the rtb bound.
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// use mcsched_analysis::{AmcMax, SchedulabilityTest};
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let ts = TaskSet::try_from_tasks(vec![
///     Task::hi(0, 10, 2, 4)?,
///     Task::hi(1, 25, 3, 7)?,
///     Task::lo(2, 20, 5)?,
/// ])?;
/// assert!(AmcMax::new().is_schedulable(&ts));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AmcMax {
    _priv: (),
}

impl AmcMax {
    /// Creates the test.
    pub fn new() -> Self {
        AmcMax { _priv: () }
    }
}

impl SchedulabilityTest for AmcMax {
    fn name(&self) -> &'static str {
        "AMC-max"
    }
    fn is_schedulable(&self, ts: &TaskSet) -> bool {
        AnalysisWorkspace::with(|ws| self.is_schedulable_in(ts, ws))
    }

    fn is_schedulable_in(&self, ts: &TaskSet, ws: &mut AnalysisWorkspace) -> bool {
        amc_schedulable_in(ts, AmcVariant::Max, ws)
    }

    fn admission_state(&self) -> Box<dyn AdmissionState + '_> {
        Box::new(self.new_state())
    }

    fn admission_state_in(&self, ws: &WorkspaceRef) -> Box<dyn AdmissionState + '_> {
        Box::new(AmcState::with_workspace(AmcVariant::Max, ws.clone()))
    }
}

impl IncrementalTest for AmcMax {
    type State = AmcState;

    fn new_state(&self) -> AmcState {
        AmcState::with_workspace(AmcVariant::Max, WorkspaceRef::new())
    }

    fn new_state_in(&self, ws: &WorkspaceRef) -> AmcState {
        AmcState::with_workspace(AmcVariant::Max, ws.clone())
    }
}

/// Which AMC analysis an [`AmcState`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AmcVariant {
    /// AMC-rtb under deadline-monotonic priorities.
    RtbDm,
    /// AMC-rtb under Audsley's OPA (no incremental structure — every
    /// query re-runs the priority-assignment search).
    RtbAudsley,
    /// AMC-max under deadline-monotonic priorities.
    Max,
}

/// The cached per-processor analysis of a committed, schedulable set:
/// the DM priority order plus every response-time fixed point.
#[derive(Debug, Clone, Default)]
pub(crate) struct AmcCache {
    /// Task indices from highest to lowest priority.
    order: Vec<usize>,
    /// Low-mode response time per task index.
    lo_resp: Vec<Time>,
    /// High-mode response bound per task index (`None` for LC tasks).
    hi_resp: Vec<Option<Time>>,
}

impl AmcCache {
    /// Empties the cache, keeping the buffers for reuse.
    fn clear(&mut self) {
        self.order.clear();
        self.lo_resp.clear();
        self.hi_resp.clear();
    }
}

/// The workspace's name for the same buffers: the one-shot path reuses
/// the incremental layer's cache type as scratch (see
/// [`amc_schedulable_in`]).
pub(crate) type AmcScratch = AmcCache;

/// Incremental admission for the AMC response-time analyses.
///
/// Inserting a candidate into the deadline-monotonic order leaves every
/// higher-priority task's analysis untouched (its higher-priority set is
/// unchanged), so those response times are reused verbatim; the candidate
/// and the tasks below it re-run their fixed-point iterations
/// **warm-started** from the previous responses, which converge to the
/// same least fixed points (see `fixpoint_from`) — the verdict is
/// exactly the one-shot test's, at a fraction of the iterations.
/// All buffers — the committed cache, the candidate scratch cache and the
/// shared [`AnalysisWorkspace`] — are reused across admission queries, so
/// the steady-state probe path performs no heap allocations (pinned by
/// `tests/zero_alloc.rs`).
#[derive(Debug, Clone)]
pub struct AmcState {
    variant: AmcVariant,
    committed: Committed,
    /// The committed set's analysis; meaningful only while `cache_valid`
    /// (an invalid cache forces the next query onto the full-analysis
    /// path, exactly as the seed behaviour after an unchecked commit).
    cache: AmcCache,
    cache_valid: bool,
    /// The analysis computed by the last successful `try_admit`
    /// (`pending` names its task), adopted by a matching `commit` with a
    /// buffer swap instead of a re-run.
    scratch: AmcCache,
    pending: Option<TaskId>,
    /// Scratch buffers shared with the other states of the same
    /// partitioning run.
    ws: WorkspaceRef,
}

impl AmcState {
    fn with_workspace(variant: AmcVariant, ws: WorkspaceRef) -> Self {
        AmcState {
            variant,
            committed: Committed::default(),
            cache: AmcCache::default(),
            cache_valid: variant != AmcVariant::RtbAudsley,
            scratch: AmcCache::default(),
            pending: None,
            ws,
        }
    }

    fn rebuild_cache(&mut self) {
        self.pending = None;
        match self.variant {
            AmcVariant::RtbAudsley => self.cache_valid = false,
            _ => {
                let mut ws = self.ws.borrow_mut();
                let ws = &mut *ws;
                self.cache_valid = analyze_into(
                    self.committed.tasks.as_slice(),
                    self.variant,
                    &mut ws.streams,
                    &mut ws.hc,
                    &mut self.cache,
                );
            }
        }
    }
}

/// Full analysis of `tasks` into `out` (used for the non-incremental
/// paths and cache rebuilds); `streams`/`slots` are candidate-walk
/// scratch. Returns `false` iff the one-shot test rejects — `out` is then
/// partial and must be treated as invalid.
fn analyze_into(
    tasks: &[Task],
    variant: AmcVariant,
    streams: &mut Vec<CandStream>,
    slots: &mut Vec<HcSlot>,
    out: &mut AmcCache,
) -> bool {
    out.clear();
    let AmcCache {
        order,
        lo_resp,
        hi_resp,
    } = out;
    dm_order_into(tasks, order);
    lo_resp.resize(tasks.len(), Time::ZERO);
    for (pos, &i) in order.iter().enumerate() {
        let hp = &order[..pos];
        let Some(r) = fixpoint(tasks[i].wcet_lo(), tasks[i].deadline(), |r| {
            hp.iter()
                .map(|&j| tasks[j].wcet_lo() * r.div_ceil(tasks[j].period()))
                .sum()
        }) else {
            return false;
        };
        lo_resp[i] = r;
    }
    let ctx = AmcContext {
        tasks,
        order: order.as_slice(),
        lo_resp: lo_resp.as_slice(),
    };
    hi_resp.resize(tasks.len(), None);
    for &i in ctx.order.iter() {
        if tasks[i].criticality() != Criticality::High {
            continue;
        }
        let bound = match variant {
            AmcVariant::RtbDm => ctx.rtb_response(i),
            AmcVariant::Max => ctx.max_bound_in(i, streams, slots),
            AmcVariant::RtbAudsley => unreachable!("audsley has no DM cache"),
        };
        match bound {
            Some(r) if r <= tasks[i].deadline() => hi_resp[i] = Some(r),
            _ => return false,
        }
    }
    true
}

/// The incremental admission query: reuse the prefix above the insertion
/// point, warm-start the suffix. The union set is assembled in `union`
/// and the analysis lands in `out`, both reused across probes. Returns
/// `false` iff the one-shot test rejects the union.
#[allow(clippy::too_many_arguments)]
fn admit_incremental_into(
    committed: &[Task],
    cache: &AmcCache,
    cand: &Task,
    variant: AmcVariant,
    union: &mut Vec<Task>,
    streams: &mut Vec<CandStream>,
    slots: &mut Vec<HcSlot>,
    out: &mut AmcCache,
) -> bool {
    let n = committed.len();
    union.clear();
    union.extend_from_slice(committed);
    union.push(*cand);
    let tasks = union.as_slice();

    // Insertion position in the (sorted, duplicate-free) DM order.
    let key = (cand.deadline(), cand.id());
    let p = cache
        .order
        .partition_point(|&i| (committed[i].deadline(), committed[i].id()) < key);
    out.clear();
    let AmcCache {
        order,
        lo_resp,
        hi_resp,
    } = out;
    order.extend_from_slice(&cache.order[..p]);
    order.push(n);
    order.extend_from_slice(&cache.order[p..]);

    // Low-mode RTA: positions above p are untouched; the candidate
    // starts cold, the suffix warm-starts from its previous response.
    lo_resp.resize(n + 1, Time::ZERO);
    for &i in &cache.order[..p] {
        lo_resp[i] = cache.lo_resp[i];
    }
    for pos in p..=n {
        let i = order[pos];
        let hp = &order[..pos];
        let start = if i == n {
            tasks[i].wcet_lo()
        } else {
            cache.lo_resp[i]
        };
        let Some(r) = fixpoint_from(start, tasks[i].wcet_lo(), tasks[i].deadline(), |r| {
            hp.iter()
                .map(|&j| tasks[j].wcet_lo() * r.div_ceil(tasks[j].period()))
                .sum()
        }) else {
            return false;
        };
        lo_resp[i] = r;
    }

    let ctx = AmcContext {
        tasks,
        order: order.as_slice(),
        lo_resp: lo_resp.as_slice(),
    };
    hi_resp.resize(n + 1, None);
    for (pos, &i) in ctx.order.iter().enumerate() {
        if tasks[i].criticality() != Criticality::High {
            continue;
        }
        if pos < p {
            // Higher priority than the candidate: identical inputs,
            // identical bound.
            hi_resp[i] = cache.hi_resp[i];
            continue;
        }
        let bound = match variant {
            AmcVariant::RtbDm => {
                let start = if i == n {
                    tasks[i].wcet_hi()
                } else {
                    cache.hi_resp[i].unwrap_or_else(|| tasks[i].wcet_hi())
                };
                ctx.rtb_response_from(i, start)
            }
            AmcVariant::Max => ctx.max_bound_in(i, streams, slots),
            AmcVariant::RtbAudsley => unreachable!("audsley has no DM cache"),
        };
        match bound {
            Some(r) if r <= tasks[i].deadline() => hi_resp[i] = Some(r),
            _ => return false,
        }
    }
    true
}

impl AdmissionState for AmcState {
    fn try_admit(&mut self, task: &Task) -> bool {
        let mut ws = self.ws.borrow_mut();
        let ws = &mut *ws;
        if self.variant == AmcVariant::RtbAudsley {
            // OPA re-searches priorities from scratch; no DM structure to
            // reuse — but the union and the search run entirely in
            // workspace buffers.
            let AnalysisWorkspace {
                idx, idx2, tasks, ..
            } = ws;
            tasks.clear();
            tasks.extend_from_slice(self.committed.tasks.as_slice());
            tasks.push(*task);
            let ok = audsley_lowest_first(tasks, idx, idx2);
            self.committed.record(false, ok);
            return ok;
        }
        let ok = if self.cache_valid {
            let ok = admit_incremental_into(
                self.committed.tasks.as_slice(),
                &self.cache,
                task,
                self.variant,
                &mut ws.tasks,
                &mut ws.streams,
                &mut ws.hc,
                &mut self.scratch,
            );
            self.committed.record(true, ok);
            ok
        } else {
            // Committed set not known schedulable (e.g. after an
            // unchecked commit): fall back to a full analysis of the
            // union, exactly the one-shot verdict.
            let AnalysisWorkspace {
                tasks, streams, hc, ..
            } = ws;
            tasks.clear();
            tasks.extend_from_slice(self.committed.tasks.as_slice());
            tasks.push(*task);
            let ok = analyze_into(tasks, self.variant, streams, hc, &mut self.scratch);
            self.committed.record(false, ok);
            ok
        };
        self.pending = if ok { Some(task.id()) } else { None };
        ok
    }

    fn commit(&mut self, task: Task) {
        match self.pending.take() {
            Some(id) if id == task.id() => {
                self.committed.push(task);
                // Adopt the probe's analysis by swapping buffers — the
                // displaced cache becomes the next probe's scratch.
                std::mem::swap(&mut self.cache, &mut self.scratch);
                self.cache_valid = true;
            }
            _ => {
                self.committed.push(task);
                self.rebuild_cache();
            }
        }
    }

    fn remove(&mut self, id: TaskId) -> bool {
        if self.committed.remove(id).is_none() {
            return false;
        }
        self.rebuild_cache();
        true
    }

    fn summary(&self) -> SystemUtilization {
        self.committed.summary
    }

    fn tasks(&self) -> &TaskSet {
        &self.committed.tasks
    }

    fn take_tasks(&mut self) -> TaskSet {
        let tasks = self.committed.take();
        self.pending = None;
        self.cache.clear();
        self.cache_valid = self.variant != AmcVariant::RtbAudsley;
        tasks
    }

    fn stats(&self) -> AdmissionStats {
        self.committed.stats
    }
}

/// Seed (allocating) AMC implementations retained **verbatim** as the
/// equivalence reference for the streaming, workspace-backed hot path.
///
/// The property tests (`tests/analysis_workspace.rs`) and the
/// `BENCH_analysis.json` throughput artifact (`mcexp --analysis-json`)
/// compare the hot path against these; nothing on the hot path calls
/// them.
#[doc(hidden)]
pub mod reference {
    use super::*;

    /// The seed AMC-rtb one-shot verdict (per-call allocating path).
    pub fn amc_rtb_is_schedulable(ts: &TaskSet) -> bool {
        amc_schedulable(ts, |ctx, i| ctx.rtb_response(i))
    }

    /// The seed AMC-max one-shot verdict: materialise + sort + dedup the
    /// candidate switch instants per task, then re-derive every
    /// interference term at each candidate.
    pub fn amc_max_is_schedulable(ts: &TaskSet) -> bool {
        amc_schedulable(ts, |ctx, i| ctx.max_bound_reference(i))
    }

    /// The sorted-deduplicated candidate switch instants of `task_index`
    /// under the seed implementation; `None` when the set fails low-mode
    /// RTA (candidates are then undefined).
    pub fn amc_max_candidates(ts: &TaskSet, task_index: usize) -> Option<Vec<Time>> {
        with_ctx(ts, |ctx| ctx.switch_candidates(task_index))
    }

    /// The candidate instants the streaming walk visits, in visit order
    /// (must equal [`amc_max_candidates`] exactly).
    pub fn amc_max_candidates_streamed(ts: &TaskSet, task_index: usize) -> Option<Vec<Time>> {
        with_ctx(ts, |ctx| {
            let mut streams = Vec::new();
            let mut slots = Vec::new();
            ctx.fold_candidates(
                task_index,
                &mut streams,
                &mut slots,
                Vec::new(),
                |mut acc, s, _, _| {
                    acc.push(s);
                    Some(acc)
                },
            )
            .expect("collection never aborts")
        })
    }

    /// The seed AMC-max response bound of `task_index`; outer `None` when
    /// low-mode RTA fails, inner `None` when some switch instant is
    /// infeasible.
    pub fn amc_max_bound(ts: &TaskSet, task_index: usize) -> Option<Option<Time>> {
        with_ctx(ts, |ctx| ctx.max_bound_reference(task_index))
    }

    /// The streaming AMC-max response bound of `task_index` (must equal
    /// [`amc_max_bound`] exactly).
    pub fn amc_max_bound_streamed(ts: &TaskSet, task_index: usize) -> Option<Option<Time>> {
        with_ctx(ts, |ctx| {
            let mut streams = Vec::new();
            let mut slots = Vec::new();
            ctx.max_bound_in(task_index, &mut streams, &mut slots)
        })
    }

    fn with_ctx<R>(ts: &TaskSet, f: impl FnOnce(&AmcContext<'_>) -> R) -> Option<R> {
        let order = dm_order(ts);
        let lo_resp = LoRta::compute_with_order(ts, &order)?;
        let ctx = AmcContext {
            tasks: ts.as_slice(),
            order: &order,
            lo_resp: &lo_resp,
        };
        Some(f(&ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsched_model::Task;

    fn set(tasks: Vec<Task>) -> TaskSet {
        TaskSet::try_from_tasks(tasks).unwrap()
    }

    #[test]
    fn dm_order_sorts_by_deadline() {
        let ts = set(vec![
            Task::lo(0, 30, 1).unwrap(),
            Task::hi(1, 10, 1, 2).unwrap(),
            Task::lo_constrained(2, 40, 1, 5).unwrap(),
        ]);
        assert_eq!(dm_order(&ts), vec![2, 1, 0]);
    }

    #[test]
    fn lo_rta_basic() {
        let ts = set(vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::lo(1, 20, 5).unwrap(),
        ]);
        let r = LoRta::compute(&ts).unwrap();
        assert_eq!(r[0], Time::new(2));
        // τ1: R = 5 + ⌈R/10⌉·2 → R = 7.
        assert_eq!(r[1], Time::new(7));
    }

    #[test]
    fn lo_rta_detects_miss() {
        let ts = set(vec![
            Task::lo_constrained(0, 10, 5, 5).unwrap(),
            Task::lo_constrained(1, 10, 5, 6).unwrap(),
        ]);
        assert!(LoRta::compute(&ts).is_none());
    }

    #[test]
    fn lo_rta_multiple_preemptions() {
        let ts = set(vec![
            Task::lo(0, 5, 2).unwrap(),
            Task::lo(1, 20, 6).unwrap(),
        ]);
        let r = LoRta::compute(&ts).unwrap();
        // τ1: R = 6 + 2·⌈R/5⌉ converges at R = 10 (6 + 2·⌈10/5⌉ = 10).
        assert_eq!(r[1], Time::new(10));
    }

    #[test]
    fn amc_accepts_simple_mixed_set() {
        let ts = set(vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::lo(1, 20, 5).unwrap(),
        ]);
        assert!(AmcRtb::new().is_schedulable(&ts));
        assert!(AmcMax::new().is_schedulable(&ts));
    }

    #[test]
    fn amc_rejects_hi_mode_overload() {
        let ts = set(vec![
            Task::hi(0, 10, 2, 6).unwrap(),
            Task::hi(1, 10, 2, 5).unwrap(),
        ]);
        assert!(!AmcRtb::new().is_schedulable(&ts));
        assert!(!AmcMax::new().is_schedulable(&ts));
    }

    #[test]
    fn amc_rejects_lo_mode_miss() {
        let ts = set(vec![
            Task::lo_constrained(0, 10, 5, 5).unwrap(),
            Task::hi_constrained(1, 10, 4, 4, 6).unwrap(),
        ]);
        // DM: τ0 (D=5) above τ1 (D=6); τ1 LO response = 4+5 = 9 > 6.
        assert!(!AmcRtb::new().is_schedulable(&ts));
        assert!(!AmcMax::new().is_schedulable(&ts));
    }

    #[test]
    fn amc_max_dominates_rtb_on_grid() {
        // Grid sweep: every rtb-accepted set must be max-accepted.
        for ch in 3..=8u64 {
            for cl2 in 1..=4u64 {
                for c3 in 1..=6u64 {
                    let ts = set(vec![
                        Task::hi(0, 12, 2, ch).unwrap(),
                        Task::hi(1, 20, cl2, cl2 + 3).unwrap(),
                        Task::lo(2, 15, c3).unwrap(),
                    ]);
                    let rtb = AmcRtb::new().is_schedulable(&ts);
                    let mx = AmcMax::new().is_schedulable(&ts);
                    if rtb {
                        assert!(mx, "AMC-max rejected an AMC-rtb set: {ts}");
                    }
                }
            }
        }
    }

    #[test]
    fn amc_max_strictly_beats_rtb() {
        // Hand-constructed instance where enumerating switch instants pays:
        // DM order τb (D=14), τa (D=15), τi (D=48).
        // R^LO_i = 23; AMC-rtb gives R = 52 > 48 (LC charged ⌈23/15⌉ = 2
        // jobs and all τb jobs at C^H = 10 over the large window), while
        // every switch instant s ∈ {0, 14, 15, 20} yields R(s) ≤ 37:
        // early s freezes LC at one job, late s lets M(b, s) charge τb's
        // completed job at C^L = 2.
        let ts = set(vec![
            Task::lo(0, 15, 5).unwrap(),
            Task::hi_constrained(1, 20, 2, 10, 14).unwrap(),
            Task::hi_constrained(2, 60, 9, 12, 48).unwrap(),
        ]);
        assert!(!AmcRtb::new().is_schedulable(&ts), "rtb should reject");
        assert!(AmcMax::new().is_schedulable(&ts), "max should accept");
    }

    #[test]
    fn lc_tasks_ignored_after_switch() {
        // A heavy LC task below a HC task in priority affects only the
        // LO-mode phase of the HC task's analysis.
        let ts = set(vec![
            Task::hi_constrained(0, 100, 10, 40, 60).unwrap(),
            Task::lo(1, 100, 50).unwrap(),
        ]);
        // DM: τ0 (D=60) above τ1 (D=100): τ1's interference is irrelevant to
        // τ0. τ0 passes trivially; τ1 needs 50 + 10 = 60 ≤ 100 in LO.
        assert!(AmcMax::new().is_schedulable(&ts));
    }

    #[test]
    fn hc_only_and_lc_only_sets() {
        let hc_only = set(vec![
            Task::hi(0, 10, 1, 3).unwrap(),
            Task::hi(1, 14, 2, 5).unwrap(),
        ]);
        assert!(AmcMax::new().is_schedulable(&hc_only));
        let lc_only = set(vec![
            Task::lo(0, 10, 4).unwrap(),
            Task::lo(1, 14, 5).unwrap(),
        ]);
        assert!(AmcMax::new().is_schedulable(&lc_only));
        assert!(AmcRtb::new().is_schedulable(&lc_only));
    }

    #[test]
    fn empty_set() {
        assert!(AmcRtb::new().is_schedulable(&TaskSet::new()));
        assert!(AmcMax::new().is_schedulable(&TaskSet::new()));
    }

    #[test]
    fn names() {
        assert_eq!(AmcRtb::new().name(), "AMC-rtb");
        assert_eq!(AmcMax::new().name(), "AMC-max");
    }

    #[test]
    fn audsley_dominates_dm_rtb_on_grid() {
        // Grid sweep: OPA accepts everything DM-based rtb accepts.
        for c0 in 1..=5u64 {
            for c1 in 1..=6u64 {
                for d1 in c1..=12 {
                    let ts = set(vec![
                        Task::hi(0, 10, c0, (c0 + 2).min(10)).unwrap(),
                        Task::lo_constrained(1, 12, c1, d1).unwrap(),
                        Task::lo(2, 20, 3).unwrap(),
                    ]);
                    let dm = AmcRtb::new().is_schedulable(&ts);
                    let opa = AmcRtb::with_audsley().is_schedulable(&ts);
                    if dm {
                        assert!(opa, "OPA rejected a DM-accepted set: {ts}");
                    }
                }
            }
        }
    }

    #[test]
    fn audsley_strictly_beats_dm() {
        // DM puts τ1 (D = 9) above the HC task τ0 (D = 10), whose rtb
        // high-mode bound then reads 6 + 5·⌈9/12⌉ = 11 > 10. Audsley finds
        // the order τ0 > τ1 > τ2: τ0's bound is its own C^H = 6 ≤ 10, τ1
        // responds in exactly 9, and τ2 converges at 30 ≤ 40.
        let ts = set(vec![
            Task::hi(0, 10, 4, 6).unwrap(),
            Task::lo_constrained(1, 12, 5, 9).unwrap(),
            Task::lo(2, 40, 3).unwrap(),
        ]);
        assert!(!AmcRtb::new().is_schedulable(&ts), "DM-rtb should reject");
        assert!(
            AmcRtb::with_audsley().is_schedulable(&ts),
            "OPA should accept"
        );
        let order = AmcRtb::audsley_order(&ts).unwrap();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn audsley_order_is_a_permutation() {
        let ts = set(vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::lo(1, 20, 5).unwrap(),
            Task::hi(2, 25, 3, 6).unwrap(),
        ]);
        let order = AmcRtb::audsley_order(&ts).expect("feasible");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn audsley_rejects_infeasible() {
        let ts = set(vec![
            Task::hi(0, 10, 4, 9).unwrap(),
            Task::hi(1, 10, 4, 9).unwrap(),
        ]);
        assert!(AmcRtb::audsley_order(&ts).is_none());
        assert!(!AmcRtb::with_audsley().is_schedulable(&ts));
    }

    #[test]
    fn audsley_names() {
        assert_eq!(AmcRtb::with_audsley().name(), "AMC-rtb-OPA");
        assert_eq!(AmcRtb::new().name(), "AMC-rtb");
    }

    #[test]
    fn incremental_states_match_one_shot_exactly() {
        use crate::incremental::clone_and_retest;
        // Deadlines chosen so successive insertions land at the top,
        // middle and bottom of the DM order (exercising prefix reuse and
        // warm-started suffixes), including a constrained deadline.
        let sequence = vec![
            Task::hi(0, 30, 3, 6).unwrap(),
            Task::lo(1, 10, 2).unwrap(),
            Task::hi_constrained(2, 25, 2, 5, 20).unwrap(),
            Task::lo_constrained(3, 12, 1, 5).unwrap(),
            Task::hi(4, 40, 4, 9).unwrap(),
            Task::lo(5, 15, 3).unwrap(),
            Task::hi(6, 18, 2, 4).unwrap(),
        ];
        let tests: Vec<Box<dyn SchedulabilityTest>> = vec![
            Box::new(AmcRtb::new()),
            Box::new(AmcRtb::with_audsley()),
            Box::new(AmcMax::new()),
        ];
        for test in &tests {
            let mut state = test.admission_state();
            for t in &sequence {
                let expected = clone_and_retest(test, state.tasks(), t);
                assert_eq!(state.try_admit(t), expected, "{} on {t}", test.name());
                if expected {
                    state.commit(*t);
                }
            }
            // Remove a mid-priority task; the rebuilt cache must keep
            // agreeing with the one-shot test.
            assert!(state.remove(TaskId(2)));
            let back = sequence[2];
            let expected = clone_and_retest(test, state.tasks(), &back);
            assert_eq!(state.try_admit(&back), expected, "{} re-admit", test.name());
            if expected {
                state.commit(back);
            }
            // Overload is rejected just like the one-shot test.
            let heavy = Task::hi(9, 10, 6, 9).unwrap();
            let expected = clone_and_retest(test, state.tasks(), &heavy);
            assert_eq!(state.try_admit(&heavy), expected);
        }
    }

    #[test]
    fn uncommitted_admit_then_commit_of_other_task_rebuilds() {
        // commit() without a matching try_admit must stay correct (the
        // cache is rebuilt from scratch).
        let test = AmcMax::new();
        let mut state = test.new_state();
        let a = Task::hi(0, 10, 2, 4).unwrap();
        let b = Task::lo(1, 20, 5).unwrap();
        assert!(state.try_admit(&a));
        state.commit(b); // not the task we admitted
        state.commit(a);
        let c = Task::lo(2, 30, 4).unwrap();
        let expected = crate::incremental::clone_and_retest(&test, state.tasks(), &c);
        assert_eq!(state.try_admit(&c), expected);
    }

    #[test]
    fn streaming_walk_matches_reference_on_grid() {
        // Grid of small sets: the streaming walk must visit exactly the
        // sorted-deduplicated candidate set, return identical bounds and
        // produce identical verdicts.
        for ch in 3..=8u64 {
            for cl2 in 1..=4u64 {
                for c3 in 1..=6u64 {
                    let ts = set(vec![
                        Task::hi(0, 12, 2, ch).unwrap(),
                        Task::hi(1, 20, cl2, cl2 + 3).unwrap(),
                        Task::lo(2, 15, c3).unwrap(),
                    ]);
                    assert_eq!(
                        AmcMax::new().is_schedulable(&ts),
                        reference::amc_max_is_schedulable(&ts),
                        "verdict diverged on {ts}"
                    );
                    for i in 0..ts.len() {
                        assert_eq!(
                            reference::amc_max_candidates_streamed(&ts, i),
                            reference::amc_max_candidates(&ts, i),
                            "candidates diverged for τ{i} of {ts}"
                        );
                        assert_eq!(
                            reference::amc_max_bound_streamed(&ts, i),
                            reference::amc_max_bound(&ts, i),
                            "bounds diverged for τ{i} of {ts}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn candidate_stepping_survives_near_max_times() {
        // Regression: the seed stepping loop (`t += period`) overflowed
        // u64 arithmetic when a step sequence approached Time::MAX; the
        // streaming walk saturates instead, which is exact (a step beyond
        // u64::MAX is also beyond R^LO).
        let big = 1u64 << 63;
        let ts = set(vec![
            Task::hi_constrained(0, big + 2, 1, 1, big).unwrap(),
            Task::hi_constrained(1, big + 100, big + 10, big + 10, big + 50).unwrap(),
        ]);
        // R^LO_1 = 2^63 + 12: τ0's deadline stream fires once (at D = 2^63)
        // and its release stream once (at T = 2^63 + 2); both next steps
        // exceed u64::MAX and must end the streams, not wrap or panic.
        let cands = reference::amc_max_candidates_streamed(&ts, 1).expect("LO feasible");
        assert_eq!(cands, vec![Time::ZERO, Time::new(big), Time::new(big + 2)],);
        // The full tests run without panicking on the same set.
        assert!(AmcMax::new().is_schedulable(&ts));
        assert!(AmcRtb::new().is_schedulable(&ts));
        // And the incremental state handles it identically.
        let mut state = AmcMax::new().new_state();
        assert!(state.try_admit(&ts.as_slice()[0]));
        state.commit(ts.as_slice()[0]);
        assert!(state.try_admit(&ts.as_slice()[1]));
    }

    #[test]
    fn switch_candidates_cover_step_points() {
        let ts = set(vec![
            Task::lo(0, 7, 3).unwrap(),
            Task::hi(1, 11, 1, 2).unwrap(),
            Task::hi(2, 50, 5, 20).unwrap(),
        ]);
        let order = dm_order(&ts);
        let lo = LoRta::compute_with_order(&ts, &order).unwrap();
        // R^LO_2 = 5 + 3·⌈R/7⌉ + 1·⌈R/11⌉ converges at 13.
        assert_eq!(lo[2], Time::new(13));
        let ctx = AmcContext {
            tasks: ts.as_slice(),
            order: &order,
            lo_resp: &lo,
        };
        let cands = ctx.switch_candidates(2);
        assert!(cands.contains(&Time::ZERO));
        // Multiples of 7 (LC period) below R^LO and 11 (HC deadline and
        // period of τ1) below R^LO.
        assert!(cands.contains(&Time::new(7)));
        assert!(cands.contains(&Time::new(11)));
        // Strictly below the LO response time.
        assert!(cands.iter().all(|&c| c < lo[2]));
    }
}
