//! Demand-bound functions for dual-criticality sporadic tasks under
//! virtual-deadline EDF scheduling (the EY / ECDF family of analyses).
//!
//! ## Model
//!
//! In **low mode** every task must meet its *virtual* deadline `Vi ≤ Di`
//! (LC tasks have `Vi = Di`). The classic demand bound applies:
//!
//! ```text
//! dbf_LO(τi, t) = max(0, ⌊(t − Vi)/Ti⌋ + 1) · C^L_i
//! ```
//!
//! In **high mode** (a window of length `t` starting at the mode switch) LC
//! tasks are dropped and each HC task must meet its *real* deadline. With
//! `di = Di − Vi`, the jobs of `τi` whose real deadlines fall in the window
//! number `k(t) = max(0, ⌊(t − di)/Ti⌋ + 1)` in the densest alignment, and
//! the earliest of them (the *carry-over* job) was released before the
//! switch. Because EDF met its virtual deadline `Vi` in low mode, a
//! carry-over job whose real deadline lies `y` after the switch (any
//! carry-over job has `y ≥ di`; jobs with virtual deadlines before the
//! switch must have signalled completion, or the switch would have happened
//! earlier) had at most `y − di` time left to its virtual deadline, hence
//! had already completed at least `C^L_i − (y − di)` units. The densest
//! alignment has `y − di = (t − di) mod Ti`, giving the Ekberg–Yi bound
//!
//! ```text
//! dbf_HI(τi, t) = k(t)·C^H_i − done(t),
//! done(t)       = max(0, C^L_i − ((t − di) mod Ti))          (k ≥ 1)
//! ```
//!
//! A short argument shows this dominates every other alignment, including
//! the no-carry-over one: a first-deadline offset `y` with `done > 0`
//! requires `y − di < C^L_i ≤ Vi`, which forces the no-carry-over job count
//! `⌊(t − Di)/Ti⌋ + 1` strictly below `k(t)`, and `done ≤ C^L ≤ C^H` keeps
//! the formula above `(k−1)·C^H`.
//!
//! Note the untightened assignment (`Vi = Di`, `di = 0`) yields demand
//! `C^H_i − C^L_i` in a zero-length window — an overrunning job whose
//! deadline coincides with the switch cannot finish. This is why EY-style
//! analyses *must* tighten virtual deadlines (see
//! [`vdtune`](crate::vdtune)): slack `di ≥ C^H_i − C^L_i` is needed before
//! any HC task can survive a switch.
//!
//! ## Checking
//!
//! Both demand bounds are nondecreasing, integer-valued functions of `t`,
//! so `Σ dbf(t) ≤ t` is verified with a QPA-style descending fixpoint
//! (Zhang & Burns 2009, which generalises unchanged to any nondecreasing
//! demand function): starting from the busy-window bound
//! `L = Σ(...)/(1 − U)`, repeatedly jump to `t ← h(t)` while `h(t) < t` —
//! nothing in `(h(t), t]` can violate — and step down by one when
//! `h(t) = t`. This is orders of magnitude cheaper than enumerating demand
//! breakpoints and makes dbf tests usable inside partitioning inner loops.
//!
//! ## Layers
//!
//! The public one-shot checks ([`check_lo_mode`] / [`check_hi_mode`]) are
//! thin wrappers over the **incremental demand kernel**
//! ([`crate::demand::DemandKernel`]), which owns the per-task demand-step
//! state, memoises violated `(t, h(t))` samples, and warm-resumes QPA
//! fixpoints across the tuner and admission loops. The seed (flat,
//! per-call) implementations are retained **verbatim** in [`mod@reference`];
//! the kernel's verdicts — including violation witnesses — are pinned
//! bit-identical to them by `tests/demand_kernel.rs`.

use crate::workspace::AnalysisWorkspace;
use mcsched_model::{Task, Time};

/// A task paired with its assigned virtual deadline `Vi`.
///
/// For LC tasks `Vi = Di` always; for HC tasks `C^L_i ≤ Vi ≤ Di`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VdTask {
    /// The underlying task.
    pub task: Task,
    /// Its virtual (low-mode) deadline.
    pub vd: Time,
}

impl VdTask {
    /// Pairs a task with its real deadline (the untightened assignment).
    pub fn untightened(task: Task) -> Self {
        VdTask {
            task,
            vd: task.deadline(),
        }
    }

    /// `di = Di − Vi`, the distance from virtual to real deadline.
    #[inline]
    pub fn dist(&self) -> Time {
        self.task.deadline() - self.vd
    }
}

/// Low-mode demand of one task in an interval of length `t`
/// (deadlines at the *virtual* deadline).
#[inline]
pub fn dbf_lo(vt: &VdTask, t: Time) -> Time {
    if t < vt.vd {
        return Time::ZERO;
    }
    let jobs = (t - vt.vd).div_floor(vt.task.period()).saturating_add(1);
    vt.task.wcet_lo().saturating_mul(jobs)
}

/// High-mode demand of one HC task in a window of length `t` after the
/// mode switch (Ekberg–Yi carry-over bound; see the module docs).
///
/// Returns zero for LC tasks (they are dropped at the switch).
#[inline]
pub fn dbf_hi(vt: &VdTask, t: Time) -> Time {
    if vt.task.criticality().is_low() {
        return Time::ZERO;
    }
    let d = vt.dist();
    if t < d {
        return Time::ZERO;
    }
    let period = vt.task.period();
    let rel = t - d;
    let k = rel.div_floor(period).saturating_add(1);
    let m = rel % period; // (t − di) mod Ti
    let done = vt.task.wcet_lo().saturating_sub(m);
    vt.task.wcet_hi().saturating_mul(k).saturating_sub(done)
}

/// Total low-mode demand `Σ dbf_LO(τi, t)`, clamped at `Time::MAX`
/// (a saturated total already exceeds any supply bound).
pub fn total_dbf_lo(tasks: &[VdTask], t: Time) -> Time {
    tasks
        .iter()
        .map(|vt| dbf_lo(vt, t))
        .fold(Time::ZERO, Time::saturating_add)
}

/// Total high-mode demand `Σ_HC dbf_HI(τi, t)`, clamped at `Time::MAX`.
pub fn total_dbf_hi(tasks: &[VdTask], t: Time) -> Time {
    tasks
        .iter()
        .map(|vt| dbf_hi(vt, t))
        .fold(Time::ZERO, Time::saturating_add)
}

/// Outcome of a demand check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemandCheck {
    /// `Σ dbf(t) ≤ t` for all `t` up to the busy-window bound.
    Ok,
    /// Demand exceeds supply at the reported time.
    Violation(Time),
    /// The check could not be bounded (utilization at or above one with
    /// tightened deadlines, or the QPA iteration budget was exhausted);
    /// treat as *not schedulable*.
    Unbounded,
}

impl DemandCheck {
    /// `true` for [`DemandCheck::Ok`].
    #[inline]
    pub fn is_ok(self) -> bool {
        matches!(self, DemandCheck::Ok)
    }

    /// The violation instant, if any (QPA reports one witness).
    pub fn violation(self) -> Option<Time> {
        match self {
            DemandCheck::Violation(t) => Some(t),
            _ => None,
        }
    }
}

/// Iteration budget for the QPA descent. Generously above what any
/// generated task set needs (typical descents take < 100 steps).
pub(crate) const QPA_BUDGET: usize = 100_000;

/// Epsilon below which a utilization sum is treated as saturating the
/// processor (guards the `1/(1 − U)` busy-window bound).
pub(crate) const UTIL_EPS: f64 = 1e-9;

/// Verifies the low-mode condition `Σ dbf_LO(t) ≤ t` for all `t` up to the
/// busy-window bound `Σ u_i (Ti − Vi) / (1 − Σ u_i)`.
///
/// Returns [`DemandCheck::Unbounded`] when `Σ C^L_i/Ti` reaches 1 and at
/// least one deadline is tightened or constrained (the bound degenerates),
/// and — the typed early-reject — when the busy-window bound is too large
/// to represent (utilization within rounding distance of 1, or extreme
/// task parameters); the exact-utilization-1, implicit-deadline,
/// untightened case is accepted directly (plain EDF optimality). Certain
/// overload (`U > 1`) reports a clamped (saturating) busy-window horizon
/// as its violation witness.
///
/// This is a thin wrapper over the incremental demand kernel
/// ([`crate::demand::DemandKernel`]) on a pooled workspace; the verdict is
/// bit-identical to the retained seed path [`reference::check_lo_mode`].
pub fn check_lo_mode(tasks: &[VdTask]) -> DemandCheck {
    AnalysisWorkspace::with(|ws| {
        ws.demand.load(tasks);
        ws.demand.check_lo()
    })
}

/// Verifies the high-mode condition `Σ_HC dbf_HI(t) ≤ t` for all `t` up to
/// the busy-window bound `Σ_HC (C^H_i + u^H_i·(Ti − di)) / (1 − Σ u^H_i)`.
///
/// A thin wrapper over the incremental demand kernel, which extracts the
/// HC subset once on load (the single HC-subset copy path of the demand
/// stack); bit-identical to [`reference::check_hi_mode`]. The same
/// overload clamping as [`check_lo_mode`] applies.
pub fn check_hi_mode(tasks: &[VdTask]) -> DemandCheck {
    AnalysisWorkspace::with(|ws| {
        ws.demand.load(tasks);
        ws.demand.check_hi()
    })
}

/// As [`check_hi_mode`]. The signature (with its caller-provided HC
/// scratch buffer) predates the incremental demand kernel, which now owns
/// the single HC-subset copy path internally; `hc_scratch` is no longer
/// read and the parameter is retained only for API compatibility.
pub fn check_hi_mode_in(tasks: &[VdTask], hc_scratch: &mut Vec<VdTask>) -> DemandCheck {
    let _ = hc_scratch;
    check_hi_mode(tasks)
}

/// Seed (flat, per-call) demand checks retained **verbatim** as the
/// equivalence reference for the incremental demand kernel — the
/// counterpart of [`crate::amc::reference`] / [`crate::vdtune::reference`].
///
/// The `BENCH_analysis.json` artifact (`mcexp --analysis-json`) and the
/// equivalence suites (`tests/demand_kernel.rs`) compare against these;
/// nothing on the hot path calls them. Note the seed horizons are *not*
/// clamped: the satellite overflow fix applies to the kernel path only.
#[doc(hidden)]
pub mod reference {
    use super::*;

    /// QPA-style verification that `h(t) ≤ t` for all integer
    /// `t ∈ [0, bound]`, for a nondecreasing integer demand function `h`.
    pub(crate) fn qpa_check(bound: u64, h: impl Fn(Time) -> Time) -> DemandCheck {
        // Zero-length windows carry demand when a deadline can coincide with
        // the window start (e.g. an untightened HC task at the mode switch).
        if h(Time::ZERO) > Time::ZERO {
            return DemandCheck::Violation(Time::ZERO);
        }
        if bound == 0 {
            return DemandCheck::Ok;
        }
        let mut t = Time::new(bound);
        for _ in 0..QPA_BUDGET {
            let d = h(t);
            if d > t {
                return DemandCheck::Violation(t);
            }
            if d.is_zero() {
                return DemandCheck::Ok;
            }
            if d < t {
                // No violation possible in (d, t]: for t' there,
                // h(t') ≤ h(t) = d < t'.
                t = d;
            } else {
                // h(t) == t: the point itself is fine; continue below it.
                if t == Time::ONE {
                    return DemandCheck::Ok;
                }
                t -= Time::ONE;
            }
        }
        DemandCheck::Unbounded
    }

    /// The seed low-mode check.
    pub fn check_lo_mode(tasks: &[VdTask]) -> DemandCheck {
        if tasks.is_empty() {
            return DemandCheck::Ok;
        }
        // Insertion-order sum: the ≥/> threshold comparisons below make
        // this verdict-bearing.
        let mut util: f64 = 0.0;
        for vt in tasks {
            util += vt.task.wcet_lo().as_f64() / vt.task.period().as_f64();
        }
        let all_implicit_untightened = tasks.iter().all(|vt| vt.vd == vt.task.period());
        if util > 1.0 + UTIL_EPS {
            // Overload: a violation certainly exists; report the busy-window
            // horizon as witness without searching for the exact point.
            return DemandCheck::Violation(violation_horizon_lo(tasks, util));
        }
        if util >= 1.0 - UTIL_EPS {
            return if all_implicit_untightened {
                DemandCheck::Ok
            } else {
                DemandCheck::Unbounded
            };
        }
        if all_implicit_untightened {
            // Implicit deadlines, no tightening: EDF utilization bound is exact.
            return DemandCheck::Ok;
        }
        // K = Σ u_i (Ti − Vi); horizon = K / (1 − U). Insertion-order sum.
        let mut k: f64 = 0.0;
        for vt in tasks {
            let u = vt.task.wcet_lo().as_f64() / vt.task.period().as_f64();
            k += u * (vt.task.period() - vt.vd.min(vt.task.period())).as_f64();
        }
        let bound = (k / (1.0 - util)).ceil() as u64;
        qpa_check(bound, |t| total_dbf_lo(tasks, t))
    }

    fn violation_horizon_lo(tasks: &[VdTask], util: f64) -> Time {
        // Σ dbf_LO(t) ≥ U·t − Σ u_i·Vi for t ≥ max Vi, so demand exceeds t by
        // t > Σ u_i·Vi / (U − 1).
        // Insertion-order sum.
        let mut k: f64 = 0.0;
        for vt in tasks {
            k += vt.task.wcet_lo().as_f64() / vt.task.period().as_f64() * vt.vd.as_f64();
        }
        let max_v = tasks.iter().map(|vt| vt.vd).fold(Time::ZERO, Time::max);
        Time::new((k / (util - 1.0)).ceil() as u64).max(max_v) + Time::ONE
    }

    /// The seed high-mode check (per-call HC filter + flat QPA).
    pub fn check_hi_mode(tasks: &[VdTask]) -> DemandCheck {
        let hc: Vec<VdTask> = tasks
            .iter()
            .filter(|vt| vt.task.criticality().is_high())
            .copied()
            .collect();
        check_hi_mode_hc(&hc)
    }

    /// The high-mode check over an HC-only slice.
    fn check_hi_mode_hc(hc: &[VdTask]) -> DemandCheck {
        if hc.is_empty() {
            return DemandCheck::Ok;
        }
        // Insertion-order sum (verdict-bearing thresholds below).
        let mut util: f64 = 0.0;
        for vt in hc {
            util += vt.task.wcet_hi().as_f64() / vt.task.period().as_f64();
        }
        if util > 1.0 + UTIL_EPS {
            return DemandCheck::Violation(violation_horizon_hi(hc, util));
        }
        if util >= 1.0 - UTIL_EPS {
            // The busy-window bound degenerates; conservatively refuse.
            return DemandCheck::Unbounded;
        }
        // dbf_HI(τi, t) ≤ k(t)·C^H ≤ u^H_i·t + C^H_i + u^H_i·(Ti − di).
        // Insertion-order sum.
        let mut k: f64 = 0.0;
        for vt in hc {
            let u = vt.task.wcet_hi().as_f64() / vt.task.period().as_f64();
            k += vt.task.wcet_hi().as_f64()
                + u * (vt.task.period().saturating_sub(vt.dist())).as_f64();
        }
        let bound = (k / (1.0 - util)).ceil() as u64;
        qpa_check(bound, |t| {
            hc.iter()
                .map(|vt| dbf_hi(vt, t))
                .fold(Time::ZERO, Time::saturating_add)
        })
    }

    fn violation_horizon_hi(hc: &[VdTask], util: f64) -> Time {
        // Insertion-order sum.
        let mut k: f64 = 0.0;
        for vt in hc {
            let u = vt.task.wcet_hi().as_f64() / vt.task.period().as_f64();
            k += u * vt.dist().as_f64() + vt.task.wcet_lo().as_f64();
        }
        let max_d = hc.iter().map(|vt| vt.dist()).fold(Time::ZERO, Time::max);
        Time::new((k / (util - 1.0)).ceil() as u64).max(max_d) + Time::ONE
    }
}

/// A sampled demand curve, convenient for inspection, plotting and tests.
///
/// # Example
///
/// ```
/// use mcsched_model::Task;
/// use mcsched_analysis::dbf::{DemandCurve, VdTask};
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let t = Task::hi(0, 10, 2, 5)?;
/// let vt = VdTask { task: t, vd: mcsched_model::Time::new(5) };
/// let curve = DemandCurve::hi_mode(&[vt], 30);
/// assert_eq!(curve.points().len(), 31);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DemandCurve {
    points: Vec<(Time, Time)>,
}

impl DemandCurve {
    /// Samples the total low-mode demand at every integer `t ∈ [0, horizon]`.
    pub fn lo_mode(tasks: &[VdTask], horizon: u64) -> Self {
        let points = (0..=horizon)
            .map(|t| (Time::new(t), total_dbf_lo(tasks, Time::new(t))))
            .collect();
        DemandCurve { points }
    }

    /// Samples the total high-mode demand at every integer `t ∈ [0, horizon]`.
    pub fn hi_mode(tasks: &[VdTask], horizon: u64) -> Self {
        let points = (0..=horizon)
            .map(|t| (Time::new(t), total_dbf_hi(tasks, Time::new(t))))
            .collect();
        DemandCurve { points }
    }

    /// The sampled `(t, demand)` pairs.
    pub fn points(&self) -> &[(Time, Time)] {
        &self.points
    }

    /// The first sampled instant where demand exceeds supply, if any.
    pub fn first_violation(&self) -> Option<Time> {
        self.points.iter().find(|&&(t, d)| d > t).map(|&(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsched_model::Task;

    fn vd(task: Task, v: u64) -> VdTask {
        VdTask {
            task,
            vd: Time::new(v),
        }
    }

    #[test]
    fn dbf_lo_step_function() {
        let t = VdTask::untightened(Task::lo(0, 10, 3).unwrap());
        assert_eq!(dbf_lo(&t, Time::new(9)), Time::ZERO);
        assert_eq!(dbf_lo(&t, Time::new(10)), Time::new(3));
        assert_eq!(dbf_lo(&t, Time::new(19)), Time::new(3));
        assert_eq!(dbf_lo(&t, Time::new(20)), Time::new(6));
    }

    #[test]
    fn dbf_lo_uses_virtual_deadline() {
        let t = vd(Task::hi(0, 10, 3, 6).unwrap(), 5);
        assert_eq!(dbf_lo(&t, Time::new(4)), Time::ZERO);
        assert_eq!(dbf_lo(&t, Time::new(5)), Time::new(3));
        assert_eq!(dbf_lo(&t, Time::new(15)), Time::new(6));
    }

    #[test]
    fn dbf_hi_untightened_has_zero_window_demand() {
        // With Vi = Di (di = 0) the carry-over job still owes C^H − C^L at
        // the switch instant itself.
        let t = VdTask::untightened(Task::hi(0, 10, 3, 6).unwrap());
        assert_eq!(dbf_hi(&t, Time::ZERO), Time::new(3));
        // t=10: k=2, mod=0, done=3 → 12−3 = 9.
        assert_eq!(dbf_hi(&t, Time::new(10)), Time::new(9));
        // t=3 (mod=3 ≥ C^L): done=0 → k·C^H = 6.
        assert_eq!(dbf_hi(&t, Time::new(3)), Time::new(6));
    }

    #[test]
    fn dbf_hi_with_tightening() {
        // V = 4 → d = 6 for T = D = 10.
        let t = vd(Task::hi(0, 10, 3, 6).unwrap(), 4);
        // Window shorter than d: no HC deadline inside → zero.
        assert_eq!(dbf_hi(&t, Time::new(5)), Time::ZERO);
        // t = 6: k=1, mod=0, done=3 → 3.
        assert_eq!(dbf_hi(&t, Time::new(6)), Time::new(3));
        // t = 8: mod=2, done=1 → 5.
        assert_eq!(dbf_hi(&t, Time::new(8)), Time::new(5));
        // t = 9: mod=3, done=0 → 6; t = 15: still one job → 6.
        assert_eq!(dbf_hi(&t, Time::new(9)), Time::new(6));
        assert_eq!(dbf_hi(&t, Time::new(15)), Time::new(6));
        // t = 16: second job's real deadline enters → 12−3 = 9.
        assert_eq!(dbf_hi(&t, Time::new(16)), Time::new(9));
    }

    #[test]
    fn dbf_hi_nondecreasing() {
        let task = Task::hi(0, 12, 3, 8).unwrap();
        for v in 3..=12 {
            let vt = vd(task, v);
            let mut prev = Time::ZERO;
            for t in 0..80 {
                let d = dbf_hi(&vt, Time::new(t));
                assert!(d >= prev, "decreasing at t={t}, v={v}");
                prev = d;
            }
        }
    }

    #[test]
    fn dbf_hi_zero_for_lc() {
        let t = VdTask::untightened(Task::lo(0, 10, 3).unwrap());
        assert_eq!(dbf_hi(&t, Time::new(50)), Time::ZERO);
    }

    #[test]
    fn tightening_lowers_hi_demand_at_small_t() {
        let task = Task::hi(0, 20, 4, 10).unwrap();
        let loose = VdTask::untightened(task);
        let tight = vd(task, 10);
        for t in 0..10 {
            assert!(
                dbf_hi(&tight, Time::new(t)) <= dbf_hi(&loose, Time::new(t)),
                "t={t}"
            );
        }
    }

    #[test]
    fn check_lo_accepts_simple_set() {
        let tasks = vec![
            VdTask::untightened(Task::lo(0, 10, 3).unwrap()),
            VdTask::untightened(Task::lo(1, 20, 4).unwrap()),
        ];
        assert!(check_lo_mode(&tasks).is_ok());
    }

    #[test]
    fn check_lo_rejects_overload() {
        let tasks = vec![
            VdTask::untightened(Task::lo(0, 10, 6).unwrap()),
            VdTask::untightened(Task::lo(1, 10, 6).unwrap()),
        ];
        assert!(!check_lo_mode(&tasks).is_ok());
    }

    #[test]
    fn check_lo_exact_utilization_one_implicit() {
        let tasks = vec![
            VdTask::untightened(Task::lo(0, 10, 5).unwrap()),
            VdTask::untightened(Task::lo(1, 10, 5).unwrap()),
        ];
        assert_eq!(check_lo_mode(&tasks), DemandCheck::Ok);
    }

    #[test]
    fn check_lo_exact_utilization_one_tightened_is_unbounded() {
        let tasks = vec![
            vd(Task::hi(0, 10, 5, 5).unwrap(), 7),
            VdTask::untightened(Task::lo(1, 10, 5).unwrap()),
        ];
        assert_eq!(check_lo_mode(&tasks), DemandCheck::Unbounded);
    }

    #[test]
    fn check_lo_tightened_deadline_violation() {
        // Two tasks each demanding 5 by t = 5: demand(5) = 10 > 5.
        let tasks = vec![
            vd(Task::hi(0, 20, 5, 10).unwrap(), 5),
            vd(Task::hi(1, 20, 5, 10).unwrap(), 5),
        ];
        let r = check_lo_mode(&tasks);
        assert!(matches!(r, DemandCheck::Violation(_)), "{r:?}");
    }

    #[test]
    fn check_hi_rejects_untightened_overrunner() {
        // di = 0 and C^H > C^L: zero-window demand → violation at 0.
        let tasks = vec![VdTask::untightened(Task::hi(0, 10, 2, 5).unwrap())];
        assert_eq!(check_hi_mode(&tasks), DemandCheck::Violation(Time::ZERO));
    }

    #[test]
    fn check_hi_accepts_tightened_single_task() {
        // V = 5 → d = 5 ≥ C^H − C^L = 3: demand 2 at t=5, 5 at t=8, ...
        let tasks = vec![vd(Task::hi(0, 10, 2, 5).unwrap(), 5)];
        assert!(check_hi_mode(&tasks).is_ok());
    }

    #[test]
    fn check_hi_rejects_overload() {
        let tasks = vec![
            vd(Task::hi(0, 10, 2, 6).unwrap(), 5),
            vd(Task::hi(1, 10, 2, 6).unwrap(), 5),
        ];
        assert!(!check_hi_mode(&tasks).is_ok());
    }

    #[test]
    fn check_hi_empty_and_lc_only() {
        assert!(check_hi_mode(&[]).is_ok());
        let tasks = vec![VdTask::untightened(Task::lo(0, 10, 9).unwrap())];
        assert!(check_hi_mode(&tasks).is_ok());
    }

    #[test]
    fn qpa_agrees_with_exhaustive_scan_lo() {
        // Cross-validate QPA against brute-force sampling.
        let cases = vec![
            vec![
                vd(Task::hi(0, 10, 2, 4).unwrap(), 6),
                vd(Task::hi(1, 15, 3, 7).unwrap(), 9),
            ],
            vec![
                vd(Task::hi(0, 8, 2, 4).unwrap(), 3),
                VdTask::untightened(Task::lo(1, 12, 5).unwrap()),
            ],
            vec![
                vd(Task::hi(0, 20, 5, 10).unwrap(), 5),
                vd(Task::hi(1, 20, 5, 10).unwrap(), 5),
            ],
            vec![
                VdTask::untightened(Task::lo(0, 6, 2).unwrap()),
                vd(Task::hi(1, 9, 2, 3).unwrap(), 4),
            ],
        ];
        for tasks in cases {
            let qpa = check_lo_mode(&tasks);
            let brute = DemandCurve::lo_mode(&tasks, 600).first_violation();
            match (qpa, brute) {
                (DemandCheck::Ok, None) => {}
                (DemandCheck::Violation(_), Some(_)) => {}
                other => panic!("QPA/brute mismatch: {other:?} for {tasks:?}"),
            }
        }
    }

    #[test]
    fn qpa_agrees_with_exhaustive_scan_hi() {
        let cases = vec![
            vec![
                vd(Task::hi(0, 10, 2, 4).unwrap(), 6),
                vd(Task::hi(1, 15, 3, 7).unwrap(), 9),
            ],
            vec![
                vd(Task::hi(0, 8, 2, 7).unwrap(), 3),
                vd(Task::hi(1, 12, 4, 5).unwrap(), 11),
            ],
            vec![
                vd(Task::hi(0, 10, 3, 9).unwrap(), 4),
                vd(Task::hi(1, 25, 2, 8).unwrap(), 19),
            ],
            vec![vd(Task::hi(0, 10, 2, 5).unwrap(), 5)],
        ];
        for tasks in cases {
            let qpa = check_hi_mode(&tasks);
            let brute = DemandCurve::hi_mode(&tasks, 600).first_violation();
            match (qpa, brute) {
                (DemandCheck::Ok, None) => {}
                (DemandCheck::Violation(_), Some(_)) => {}
                other => panic!("QPA/brute mismatch: {other:?} for {tasks:?}"),
            }
        }
    }

    #[test]
    fn demand_check_accessors() {
        assert!(DemandCheck::Ok.is_ok());
        assert!(!DemandCheck::Unbounded.is_ok());
        assert_eq!(
            DemandCheck::Violation(Time::new(5)).violation(),
            Some(Time::new(5))
        );
        assert_eq!(DemandCheck::Ok.violation(), None);
    }

    #[test]
    fn demand_curve_sampling() {
        let tasks = vec![VdTask::untightened(Task::lo(0, 5, 2).unwrap())];
        let c = DemandCurve::lo_mode(&tasks, 12);
        assert_eq!(c.points().len(), 13);
        assert_eq!(c.points()[5], (Time::new(5), Time::new(2)));
        assert_eq!(c.points()[10], (Time::new(10), Time::new(4)));
        assert_eq!(c.first_violation(), None);
    }

    #[test]
    fn public_checks_match_reference_exactly() {
        let cases = vec![
            vec![
                vd(Task::hi(0, 10, 2, 4).unwrap(), 6),
                vd(Task::hi(1, 15, 3, 7).unwrap(), 9),
            ],
            vec![
                vd(Task::hi(0, 20, 5, 10).unwrap(), 5),
                vd(Task::hi(1, 20, 5, 10).unwrap(), 5),
            ],
            vec![VdTask::untightened(Task::hi(0, 10, 2, 5).unwrap())],
            vec![
                vd(Task::hi(0, 10, 2, 6).unwrap(), 5),
                vd(Task::hi(1, 10, 2, 6).unwrap(), 5),
            ],
            vec![VdTask::untightened(Task::lo(0, 10, 9).unwrap())],
            vec![],
        ];
        for tasks in cases {
            assert_eq!(
                check_lo_mode(&tasks),
                reference::check_lo_mode(&tasks),
                "lo diverged on {tasks:?}"
            );
            assert_eq!(
                check_hi_mode(&tasks),
                reference::check_hi_mode(&tasks),
                "hi diverged on {tasks:?}"
            );
            let mut scratch = Vec::new();
            assert_eq!(
                check_hi_mode_in(&tasks, &mut scratch),
                check_hi_mode(&tasks)
            );
        }
    }

    #[test]
    fn near_unit_utilization_is_typed_early_reject() {
        // U = 1 − 1e-12 with a tightened deadline: the busy-window bound
        // would be astronomically large; the check must answer Unbounded
        // instead of descending from a saturated horizon.
        let period = 1_000_000_000_000u64; // 1e12
        let t = Task::hi(0, period, period - 1, period - 1).unwrap();
        let tasks = vec![vd(t, period - 10)];
        assert_eq!(check_lo_mode(&tasks), DemandCheck::Unbounded);
        // U just above 1 (but within UTIL_EPS): same typed early-reject.
        let a = Task::lo(0, 10, 10).unwrap();
        let b = Task::lo(1, 1_000_000_000_000, 2).unwrap(); // u = 2e-12
        let tasks = vec![
            vd(a, 9), // tightened so the all-implicit fast accept is off
            VdTask::untightened(b),
        ];
        assert_eq!(check_lo_mode(&tasks), DemandCheck::Unbounded);
    }

    #[test]
    fn certain_overload_horizon_is_clamped() {
        // U > 1 + ε with extreme parameters: the seed horizon arithmetic
        // saturated `as u64` and then overflowed on `+ 1`; the kernel path
        // must clamp (saturating) and still report a violation.
        let big = 1_000_000_000_000_000_000u64; // 1e18
        let full = Task::lo(0, big, big).unwrap(); // u = 1.0
        let eps = Task::lo(1, 1_000_000_000, 2).unwrap(); // u = 2e-9 > UTIL_EPS
        let tasks = vec![VdTask::untightened(full), VdTask::untightened(eps)];
        let r = check_lo_mode(&tasks);
        assert!(matches!(r, DemandCheck::Violation(_)), "{r:?}");
        // Ordinary overload keeps its finite busy-window witness,
        // identical to the seed path.
        let tasks = vec![
            VdTask::untightened(Task::lo(0, 10, 6).unwrap()),
            VdTask::untightened(Task::lo(1, 10, 6).unwrap()),
        ];
        assert_eq!(check_lo_mode(&tasks), reference::check_lo_mode(&tasks));
        // High-mode overload: clamped horizon, no panic.
        let h1 = Task::hi(0, big, 1, big).unwrap();
        let h2 = Task::hi(1, 1_000_000_000, 1, 2).unwrap();
        let tasks = vec![vd(h1, 1), vd(h2, 1)];
        let r = check_hi_mode(&tasks);
        assert!(matches!(r, DemandCheck::Violation(_)), "{r:?}");
    }

    #[test]
    fn vdtask_helpers() {
        let t = Task::hi(0, 10, 2, 5).unwrap();
        let u = VdTask::untightened(t);
        assert_eq!(u.vd, Time::new(10));
        assert_eq!(u.dist(), Time::ZERO);
        let v = vd(t, 4);
        assert_eq!(v.dist(), Time::new(6));
    }
}
