//! Log-uniform period sampling (Emberson, Stafford & Davis, WATERS 2010).

use rand::{Rng, RngExt};

/// Draws an integer period log-uniformly from `[lo, hi]`.
///
/// Log-uniform sampling gives each order of magnitude equal probability
/// mass, which matches the period spreads observed in real-time systems
/// and is what the DATE 2017 evaluation uses (`Ti ∈ [10, 500]`).
///
/// # Panics
///
/// Panics if `lo == 0` or `lo > hi`.
///
/// # Example
///
/// ```
/// use mcsched_gen::log_uniform_period;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// for _ in 0..100 {
///     let t = log_uniform_period(&mut rng, 10, 500);
///     assert!((10..=500).contains(&t));
/// }
/// ```
pub fn log_uniform_period(rng: &mut impl Rng, lo: u64, hi: u64) -> u64 {
    assert!(lo > 0, "period lower bound must be positive");
    assert!(lo <= hi, "period range must be non-empty");
    if lo == hi {
        return lo;
    }
    let (ln_lo, ln_hi) = ((lo as f64).ln(), ((hi + 1) as f64).ln());
    let x = rng.random_range(ln_lo..ln_hi).exp();
    // Floor and clamp: exp can land a hair outside through rounding.
    (x as u64).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let t = log_uniform_period(&mut rng, 10, 500);
            assert!((10..=500).contains(&t));
        }
    }

    #[test]
    fn degenerate_range() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(log_uniform_period(&mut rng, 42, 42), 42);
    }

    #[test]
    fn log_uniform_shape() {
        // Equal mass per decade-ish band: count of [10,70) vs [70,500)
        // should be roughly equal (ln 70/10 ≈ ln 500/70 ≈ 1.95).
        let mut rng = StdRng::seed_from_u64(3);
        let (mut low, mut high) = (0u32, 0u32);
        for _ in 0..20_000 {
            let t = log_uniform_period(&mut rng, 10, 500);
            if t < 70 {
                low += 1;
            } else {
                high += 1;
            }
        }
        let ratio = f64::from(low) / f64::from(high);
        assert!(
            (0.85..1.20).contains(&ratio),
            "expected balanced decades, got ratio {ratio}"
        );
    }

    #[test]
    #[should_panic(expected = "period lower bound")]
    fn zero_lower_bound_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = log_uniform_period(&mut rng, 0, 10);
    }

    #[test]
    #[should_panic(expected = "period range")]
    fn inverted_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = log_uniform_period(&mut rng, 10, 5);
    }
}
