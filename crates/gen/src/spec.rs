//! Task-set specification and generation.

use crate::grid::GridPoint;
use crate::periods::log_uniform_period;
use crate::uunifast::{paired_utilizations, uunifast_bounded};
use mcsched_model::{Task, TaskSet};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Whether generated tasks have implicit (`D = T`) or constrained
/// (`D ~ U[C^H, T]`) deadlines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeadlineModel {
    /// `Di = Ti` for every task.
    Implicit,
    /// `Di` drawn uniformly from `[C^H_i, Ti]`.
    Constrained,
}

impl fmt::Display for DeadlineModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeadlineModel::Implicit => write!(f, "implicit"),
            DeadlineModel::Constrained => write!(f, "constrained"),
        }
    }
}

/// A generation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GenError {
    /// No task count in `[n_min, n_max]` can satisfy the utilization
    /// targets under the `umin`/`umax` bounds.
    InfeasibleTaskCount,
    /// Utilization sampling failed to satisfy the per-task bounds within
    /// the retry budget.
    SamplingExhausted,
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::InfeasibleTaskCount => {
                write!(f, "no feasible task count for the utilization targets")
            }
            GenError::SamplingExhausted => {
                write!(f, "utilization sampling exhausted its retry budget")
            }
        }
    }
}

impl Error for GenError {}

/// A complete specification for random dual-criticality task sets,
/// mirroring §IV of the DATE 2017 paper.
///
/// # Example
///
/// ```
/// use mcsched_gen::{TaskSetSpec, DeadlineModel, GridPoint};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let point = GridPoint { u_hh: 0.6, u_hl: 0.3, u_ll: 0.3 };
/// let spec = TaskSetSpec::paper_defaults(4, point, DeadlineModel::Constrained);
/// let mut rng = StdRng::seed_from_u64(1);
/// let ts = spec.generate(&mut rng).expect("feasible");
/// let u = ts.system_utilization();
/// // The integer quantization C = ⌈u·T⌉ only ever rounds up, slightly.
/// assert!(u.u_hh >= 0.6 * 4.0 - 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskSetSpec {
    /// Number of processors `m` (used to scale the normalized targets and
    /// to bound the task count).
    pub processors: usize,
    /// Normalized utilization targets.
    pub point: GridPoint,
    /// Fraction of HC tasks, `P_H`.
    pub p_h: f64,
    /// Deadline model.
    pub deadlines: DeadlineModel,
    /// Minimum individual task utilization.
    pub umin: f64,
    /// Maximum individual task utilization.
    pub umax: f64,
    /// Inclusive task-count bounds (the paper uses `[m+1, 5m]`).
    pub n_min: usize,
    /// See [`TaskSetSpec::n_min`].
    pub n_max: usize,
    /// Inclusive period bounds (the paper uses `[10, 500]`).
    pub period_min: u64,
    /// See [`TaskSetSpec::period_min`].
    pub period_max: u64,
}

impl TaskSetSpec {
    /// The paper's default parameters for `m` processors at one grid point:
    /// `P_H = 0.5`, `umin = 0.001`, `umax = 0.99`, `n ∈ [m+1, 5m]`,
    /// `T ∈ [10, 500]` log-uniform.
    pub fn paper_defaults(m: usize, point: GridPoint, deadlines: DeadlineModel) -> Self {
        TaskSetSpec {
            processors: m,
            point,
            p_h: 0.5,
            deadlines,
            umin: 0.001,
            umax: 0.99,
            n_min: m + 1,
            n_max: 5 * m,
            period_min: 10,
            period_max: 500,
        }
    }

    /// Overrides the HC-task fraction `P_H` (Fig. 6 sweeps it over
    /// `{0.1, 0.3, 0.5, 0.7, 0.9}`).
    pub fn with_p_h(mut self, p_h: f64) -> Self {
        self.p_h = p_h;
        self
    }

    /// The unnormalized utilization targets `(Σ u^L_HC, Σ u^H_HC, Σ u^L_LC)`.
    fn totals(&self) -> (f64, f64, f64) {
        let m = self.processors as f64;
        (
            self.point.u_hl * m,
            self.point.u_hh * m,
            self.point.u_ll * m,
        )
    }

    /// Splits a candidate task count into `(n_hc, n_lc)` and checks both
    /// sides can hit their targets under the bounds.
    fn feasible_split(&self, n: usize) -> Option<(usize, usize)> {
        let (t_hl, t_hh, t_ll) = self.totals();
        let mut n_hc = (self.p_h * n as f64).round() as usize;
        // At least one task on each side that has utilization to place.
        if t_hh > 0.0 {
            n_hc = n_hc.max(1);
        }
        if t_ll > 0.0 && n_hc >= n {
            n_hc = n - 1;
        }
        let n_lc = n - n_hc;
        let ok_side = |count: usize, total: f64| -> bool {
            if total <= 1e-12 {
                return count == 0 || total <= 1e-12;
            }
            count > 0
                && total >= count as f64 * self.umin - 1e-9
                && total <= count as f64 * self.umax + 1e-9
        };
        // The low side of HC pairs must fit the same caps (t_hl ≤ t_hh
        // suffices given the pairing construction, plus the umin floor).
        if ok_side(n_hc, t_hh) && ok_side(n_lc, t_ll) && t_hl <= t_hh + 1e-9 {
            Some((n_hc, n_lc))
        } else {
            None
        }
    }

    /// Generates one task set.
    ///
    /// # Errors
    ///
    /// * [`GenError::InfeasibleTaskCount`] — no `n ∈ [n_min, n_max]` admits
    ///   the utilization targets (e.g. `U_H^H·m = 7.92` needs at least
    ///   eight HC tasks at `umax = 0.99`).
    /// * [`GenError::SamplingExhausted`] — bounded simplex sampling failed
    ///   repeatedly; practically impossible for the paper's grid.
    pub fn generate(&self, rng: &mut impl Rng) -> Result<TaskSet, GenError> {
        let feasible: Vec<(usize, usize, usize)> = (self.n_min..=self.n_max)
            .filter_map(|n| self.feasible_split(n).map(|(h, l)| (n, h, l)))
            .collect();
        if feasible.is_empty() {
            return Err(GenError::InfeasibleTaskCount);
        }
        let &(_, n_hc, n_lc) = &feasible[rng.random_range(0..feasible.len())];
        let (t_hl, t_hh, t_ll) = self.totals();

        const TRIES: usize = 2000;
        let pairs = paired_utilizations(rng, n_hc, t_hl, t_hh, self.umin, self.umax, TRIES)
            .ok_or(GenError::SamplingExhausted)?;
        let lc_utils = if n_lc == 0 {
            Vec::new()
        } else {
            uunifast_bounded(rng, n_lc, t_ll, self.umin, self.umax)
                .ok_or(GenError::SamplingExhausted)?
        };

        let mut ts = TaskSet::with_capacity(n_hc + n_lc);
        let mut id = 0u32;
        for (u_lo, u_hi) in pairs {
            let t = log_uniform_period(rng, self.period_min, self.period_max);
            let c_lo = ((u_lo * t as f64).ceil() as u64).clamp(1, t);
            let c_hi = ((u_hi * t as f64).ceil() as u64).clamp(c_lo, t);
            let task = match self.deadlines {
                DeadlineModel::Implicit => Task::hi(id, t, c_lo, c_hi),
                DeadlineModel::Constrained => {
                    let d = rng.random_range(c_hi..=t);
                    Task::hi_constrained(id, t, c_lo, c_hi, d)
                }
            }
            .expect("generator-produced parameters satisfy the model");
            ts.push_unchecked(task);
            id += 1;
        }
        for u in lc_utils {
            let t = log_uniform_period(rng, self.period_min, self.period_max);
            let c = ((u * t as f64).ceil() as u64).clamp(1, t);
            let task = match self.deadlines {
                DeadlineModel::Implicit => Task::lo(id, t, c),
                DeadlineModel::Constrained => {
                    let d = rng.random_range(c..=t);
                    Task::lo_constrained(id, t, c, d)
                }
            }
            .expect("generator-produced parameters satisfy the model");
            ts.push_unchecked(task);
            id += 1;
        }
        Ok(ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn spec(m: usize, u_hh: f64, u_hl: f64, u_ll: f64) -> TaskSetSpec {
        TaskSetSpec::paper_defaults(m, GridPoint { u_hh, u_hl, u_ll }, DeadlineModel::Implicit)
    }

    #[test]
    fn generates_within_structure() {
        let mut rng = StdRng::seed_from_u64(100);
        let s = spec(2, 0.5, 0.25, 0.3);
        for _ in 0..50 {
            let ts = s.generate(&mut rng).unwrap();
            assert!(ts.len() >= 3 && ts.len() <= 10, "n = {}", ts.len());
            assert!(ts.validate().is_ok());
            for t in &ts {
                assert!((10..=500).contains(&t.period().as_ticks()));
                assert!(t.is_implicit_deadline());
                assert!(t.wcet_lo().as_ticks() >= 1);
            }
            assert!(ts.hi_tasks().count() >= 1);
            assert!(ts.lo_tasks().count() >= 1);
        }
    }

    #[test]
    fn utilization_targets_hit_modulo_quantization() {
        let mut rng = StdRng::seed_from_u64(101);
        let s = spec(4, 0.6, 0.3, 0.35);
        for _ in 0..20 {
            let ts = s.generate(&mut rng).unwrap();
            let u = ts.system_utilization();
            // ⌈u·T⌉ rounds up by at most 1/T ≤ 0.1 per task.
            let slop = 0.1 * ts.len() as f64;
            assert!(u.u_hh >= 0.6 * 4.0 - 1e-9 && u.u_hh <= 0.6 * 4.0 + slop);
            assert!(u.u_hl >= 0.3 * 4.0 - 1e-9 && u.u_hl <= 0.3 * 4.0 + slop);
            assert!(u.u_ll >= 0.35 * 4.0 - 1e-9 && u.u_ll <= 0.35 * 4.0 + slop);
        }
    }

    #[test]
    fn constrained_deadlines_in_range() {
        let mut rng = StdRng::seed_from_u64(102);
        let s = TaskSetSpec::paper_defaults(
            2,
            GridPoint {
                u_hh: 0.4,
                u_hl: 0.2,
                u_ll: 0.3,
            },
            DeadlineModel::Constrained,
        );
        for _ in 0..50 {
            let ts = s.generate(&mut rng).unwrap();
            for t in &ts {
                assert!(t.deadline() <= t.period());
                assert!(t.deadline() >= t.wcet_hi());
            }
        }
    }

    #[test]
    fn high_utilization_needs_more_tasks() {
        // U_H^H = 0.99 on m = 8 → 7.92 total → at least 8 HC tasks; with
        // P_H = 0.5 that means n ≥ 16, still within [9, 40].
        let mut rng = StdRng::seed_from_u64(103);
        let s = spec(8, 0.99, 0.45, 0.35);
        let ts = s.generate(&mut rng).unwrap();
        assert!(ts.hi_tasks().count() >= 8);
    }

    #[test]
    fn infeasible_targets_rejected() {
        // m = 2, U_H^H = 0.99 → 1.98 total. With P_H pushing HC count to 1
        // it's infeasible, but the generator may rebalance n; make it truly
        // impossible: n_max HC tasks cannot absorb 1.98 at umax=0.99 only if
        // fewer than 2 HC tasks — force with tiny n_max.
        let mut s = spec(2, 0.99, 0.5, 0.3);
        s.n_max = 2;
        s.n_min = 2;
        let mut rng = StdRng::seed_from_u64(104);
        assert_eq!(s.generate(&mut rng), Err(GenError::InfeasibleTaskCount));
    }

    #[test]
    fn p_h_sweep_changes_composition() {
        let mut rng = StdRng::seed_from_u64(105);
        let lo_ph = spec(4, 0.3, 0.15, 0.3).with_p_h(0.1);
        let hi_ph = spec(4, 0.3, 0.15, 0.3).with_p_h(0.9);
        let mut lo_frac = 0.0;
        let mut hi_frac = 0.0;
        for _ in 0..30 {
            let a = lo_ph.generate(&mut rng).unwrap();
            let b = hi_ph.generate(&mut rng).unwrap();
            lo_frac += a.hi_tasks().count() as f64 / a.len() as f64;
            hi_frac += b.hi_tasks().count() as f64 / b.len() as f64;
        }
        assert!(
            lo_frac / 30.0 < 0.35,
            "P_H=0.1 should yield few HC tasks ({})",
            lo_frac / 30.0
        );
        assert!(
            hi_frac / 30.0 > 0.65,
            "P_H=0.9 should yield many HC tasks ({})",
            hi_frac / 30.0
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let s = spec(2, 0.5, 0.25, 0.3);
        let a = s.generate(&mut StdRng::seed_from_u64(7)).unwrap();
        let b = s.generate(&mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
        let c = s.generate(&mut StdRng::seed_from_u64(8)).unwrap();
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn display_and_errors() {
        assert_eq!(DeadlineModel::Implicit.to_string(), "implicit");
        assert_eq!(DeadlineModel::Constrained.to_string(), "constrained");
        assert!(GenError::InfeasibleTaskCount
            .to_string()
            .contains("task count"));
        assert!(GenError::SamplingExhausted.to_string().contains("retry"));
    }
}
