//! The paper's normalized utilization grid and `UB` bucketing.
//!
//! §IV of the DATE 2017 paper sweeps:
//!
//! * `U_H^H ∈ {0.1, 0.2, …, 0.9, 0.99}`,
//! * `U_H^L ∈ {0.05, 0.15, …} ∩ (0, U_H^H]`,
//! * `U_L^L ∈ {0.05, 0.15, …} ∩ (0, 0.99 − U_H^L]`,
//!
//! and buckets the resulting configurations by the total normalized
//! utilization `UB = max(U_H^L + U_L^L, U_H^H)`, generating 1000 task sets
//! per bucket. Acceptance ratios are plotted against `UB`.

use serde::{Deserialize, Serialize};

/// One normalized utilization configuration `(U_H^H, U_H^L, U_L^L)`.
///
/// All three values are *normalized by the processor count* `m`, exactly as
/// in the paper; multiply by `m` to get the task-level sums a generator
/// must hit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridPoint {
    /// Normalized total high-mode utilization of HC tasks, `U_H^H`.
    pub u_hh: f64,
    /// Normalized total low-mode utilization of HC tasks, `U_H^L`.
    pub u_hl: f64,
    /// Normalized total low-mode utilization of LC tasks, `U_L^L`.
    pub u_ll: f64,
}

impl GridPoint {
    /// The paper's x-axis value `UB = max(U_H^L + U_L^L, U_H^H)`.
    #[inline]
    pub fn ub(&self) -> f64 {
        (self.u_hl + self.u_ll).max(self.u_hh)
    }
}

/// A `UB` bucket key: `round(UB · 100)`, i.e. `UB` in integer percent.
///
/// Using integer percent keys makes bucketing exact (no float keys in
/// maps) while matching the 0.05-granular paper grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UbBucket(pub u32);

impl UbBucket {
    /// The bucket's `UB` value as a float (center of the percent cell).
    #[inline]
    pub fn as_f64(self) -> f64 {
        f64::from(self.0) / 100.0
    }
}

impl std::fmt::Display for UbBucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}", self.as_f64())
    }
}

/// Buckets a grid point by its `UB` value (integer percent, rounded).
#[inline]
pub fn bucket_of(point: &GridPoint) -> UbBucket {
    UbBucket((point.ub() * 100.0).round() as u32)
}

/// Enumerates the paper's full `(U_H^H, U_H^L, U_L^L)` grid.
///
/// # Example
///
/// ```
/// use mcsched_gen::utilization_grid;
/// let grid = utilization_grid();
/// assert!(grid.len() > 300);
/// assert!(grid.iter().all(|p| p.u_hl <= p.u_hh + 1e-9));
/// assert!(grid.iter().all(|p| p.u_hl + p.u_ll <= 0.99 + 1e-9));
/// ```
pub fn utilization_grid() -> Vec<GridPoint> {
    let mut points = Vec::new();
    let u_hh_values: Vec<f64> = (1..=9)
        .map(|i| f64::from(i) / 10.0)
        .chain(std::iter::once(0.99))
        .collect();
    for &u_hh in &u_hh_values {
        // U_H^L ∈ {0.05, 0.15, ...} up to U_H^H.
        let mut u_hl = 0.05;
        while u_hl <= u_hh + 1e-9 {
            // U_L^L ∈ {0.05, 0.15, ...} up to 0.99 − U_H^L.
            let mut u_ll = 0.05;
            while u_hl + u_ll <= 0.99 + 1e-9 {
                points.push(GridPoint {
                    u_hh,
                    u_hl: u_hl.min(u_hh),
                    u_ll,
                });
                u_ll += 0.10;
            }
            u_hl += 0.10;
        }
    }
    points
}

/// Groups the full grid by `UB` bucket, returning `(bucket, points)` pairs
/// in increasing bucket order.
pub fn bucketed_grid() -> Vec<(UbBucket, Vec<GridPoint>)> {
    let mut map: std::collections::BTreeMap<UbBucket, Vec<GridPoint>> =
        std::collections::BTreeMap::new();
    for p in utilization_grid() {
        map.entry(bucket_of(&p)).or_default().push(p);
    }
    map.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ub_definition() {
        let p = GridPoint {
            u_hh: 0.6,
            u_hl: 0.3,
            u_ll: 0.5,
        };
        assert!((p.ub() - 0.8).abs() < 1e-12);
        let p2 = GridPoint {
            u_hh: 0.9,
            u_hl: 0.3,
            u_ll: 0.2,
        };
        assert!((p2.ub() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn grid_respects_paper_constraints() {
        let grid = utilization_grid();
        assert!(!grid.is_empty());
        for p in &grid {
            assert!(p.u_hh >= 0.1 - 1e-9 && p.u_hh <= 0.99 + 1e-9);
            assert!(p.u_hl >= 0.05 - 1e-9);
            assert!(p.u_hl <= p.u_hh + 1e-9, "{p:?}");
            assert!(p.u_ll >= 0.05 - 1e-9);
            assert!(p.u_hl + p.u_ll <= 0.99 + 1e-9, "{p:?}");
        }
    }

    #[test]
    fn grid_contains_expected_corners() {
        let grid = utilization_grid();
        // Low corner.
        assert!(grid.iter().any(|p| (p.u_hh - 0.1).abs() < 1e-9
            && (p.u_hl - 0.05).abs() < 1e-9
            && (p.u_ll - 0.05).abs() < 1e-9));
        // High U_HH row exists.
        assert!(grid.iter().any(|p| (p.u_hh - 0.99).abs() < 1e-9));
    }

    #[test]
    fn buckets_are_ordered_and_cover_spread() {
        let buckets = bucketed_grid();
        assert!(buckets.len() > 5);
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        let min = buckets.first().unwrap().0;
        let max = buckets.last().unwrap().0;
        assert!(min.0 <= 15, "min bucket {min}");
        assert!(max.0 >= 99, "max bucket {max}");
    }

    #[test]
    fn bucket_display_and_value() {
        let b = UbBucket(85);
        assert_eq!(b.to_string(), "0.85");
        assert!((b.as_f64() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn bucket_of_rounds() {
        let p = GridPoint {
            u_hh: 0.99,
            u_hl: 0.05,
            u_ll: 0.05,
        };
        assert_eq!(bucket_of(&p), UbBucket(99));
    }
}
