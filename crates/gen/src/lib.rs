//! # mcsched-gen
//!
//! Fair task-set generation for dual-criticality systems, following the
//! experiment setup of Ramanathan & Easwaran (DATE 2017, §IV), which uses
//! the fair generator of their WATERS 2016 paper with the
//! parameter-synthesis techniques of Emberson, Stafford & Davis
//! (WATERS 2010):
//!
//! * periods drawn **log-uniformly** from `[10, 500]`,
//! * per-task utilizations drawn by **UUniFast**-style uniform simplex
//!   sampling with individual bounds `umin = 0.001`, `umax = 0.99`,
//! * HC tasks receive a *pair* `(u^L_i ≤ u^H_i)` whose sums hit the
//!   normalized targets `U_H^L · m` and `U_H^H · m`,
//! * execution budgets `C = ⌈u·T⌉`, constrained deadlines drawn uniformly
//!   from `[C^H, T]`,
//! * the task count is drawn from `[m+1, 5m]` and the HC fraction is `P_H`.
//!
//! The [`grid`] module enumerates the paper's `(U_H^H, U_H^L, U_L^L)`
//! utilization grid and buckets it by the total normalized utilization
//! `UB = max(U_H^L + U_L^L, U_H^H)` used on every x-axis of the paper's
//! figures.
//!
//! ## Example
//!
//! ```
//! use mcsched_gen::{TaskSetSpec, DeadlineModel, GridPoint};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let spec = TaskSetSpec::paper_defaults(
//!     2,
//!     GridPoint { u_hh: 0.5, u_hl: 0.25, u_ll: 0.3 },
//!     DeadlineModel::Implicit,
//! );
//! let mut rng = StdRng::seed_from_u64(42);
//! let ts = spec.generate(&mut rng).expect("feasible spec");
//! assert!(ts.len() >= 3 && ts.len() <= 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod periods;
pub mod spec;
pub mod uunifast;

pub use grid::{bucket_of, bucketed_grid, utilization_grid, GridPoint, UbBucket};
pub use periods::log_uniform_period;
pub use spec::{DeadlineModel, GenError, TaskSetSpec};
pub use uunifast::{paired_utilizations, uunifast, uunifast_bounded, uunifast_discard};
