//! UUniFast utilization sampling and the paired HC utilization split.
//!
//! [`uunifast`] samples a point uniformly from the simplex
//! `{u : Σ u_i = total, u_i ≥ 0}` (Bini & Buttazzo 2005);
//! [`uunifast_discard`] adds the `umin`/`umax` per-element bounds of the
//! DATE 2017 setup by rejection; [`paired_utilizations`] produces the
//! `(u^L_i ≤ u^H_i)` pairs for HC tasks whose sums hit both normalized
//! targets, using the sort-and-pair + excess-redistribution approach of the
//! fair WATERS 2016 generator.

use rand::{Rng, RngExt};

/// Samples `n` non-negative values summing to `total`, uniformly over the
/// simplex (UUniFast).
///
/// Returns an empty vector when `n == 0`. `total` may be any non-negative
/// value; the classic schedulability-oriented use has `total ≤ n`.
///
/// # Example
///
/// ```
/// use mcsched_gen::uunifast;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let u = uunifast(&mut rng, 4, 2.0);
/// assert_eq!(u.len(), 4);
/// assert!((u.iter().sum::<f64>() - 2.0).abs() < 1e-9);
/// ```
pub fn uunifast(rng: &mut impl Rng, n: usize, total: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    if n == 0 {
        return out;
    }
    let mut sum = total;
    for i in 1..n {
        let exp = 1.0 / (n - i) as f64;
        let next = sum * rng.random::<f64>().powf(exp);
        out.push(sum - next);
        sum = next;
    }
    out.push(sum);
    out
}

/// UUniFast with per-element bounds (`umin ≤ u_i ≤ umax`), by rejection.
///
/// Returns `None` if no sample satisfying the bounds is found within
/// `max_tries` attempts (the caller should treat the configuration as
/// infeasible or retry with different structure). Feasibility requires
/// `n·umin ≤ total ≤ n·umax`.
pub fn uunifast_discard(
    rng: &mut impl Rng,
    n: usize,
    total: f64,
    umin: f64,
    umax: f64,
    max_tries: usize,
) -> Option<Vec<f64>> {
    if n == 0 {
        return if total.abs() < 1e-12 {
            Some(Vec::new())
        } else {
            None
        };
    }
    if total < n as f64 * umin - 1e-12 || total > n as f64 * umax + 1e-12 {
        return None;
    }
    for _ in 0..max_tries {
        let u = uunifast(rng, n, total);
        if u.iter().all(|&x| x >= umin - 1e-12 && x <= umax + 1e-12) {
            return Some(u);
        }
    }
    None
}

/// UUniFast with per-element bounds, by sequential truncated-marginal
/// inverse-CDF sampling — succeeds on **every** feasible input, unlike
/// rejection ([`uunifast_discard`]), whose acceptance probability vanishes
/// as `total → n·umax` (exactly the paper's `U_H^H = 0.99` corner).
///
/// The first coordinate of a uniform simplex with `k` coordinates summing
/// to `s` has CDF `F(x) = 1 − (1 − x/s)^(k−1)`; each coordinate is drawn
/// from that marginal truncated to its feasible interval
/// `[max(umin, s − (k−1)·umax), min(umax, s − (k−1)·umin)]`, then the
/// result is shuffled (truncation breaks exchangeability slightly; the
/// shuffle removes any index-order bias). Coincides with plain UUniFast
/// when the bounds never bind.
///
/// Returns `None` iff `total` is outside `[n·umin, n·umax]`.
pub fn uunifast_bounded(
    rng: &mut impl Rng,
    n: usize,
    total: f64,
    umin: f64,
    umax: f64,
) -> Option<Vec<f64>> {
    if n == 0 {
        return if total.abs() < 1e-12 {
            Some(Vec::new())
        } else {
            None
        };
    }
    if total < n as f64 * umin - 1e-9 || total > n as f64 * umax + 1e-9 {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    let mut s = total;
    for i in 0..n {
        let k = n - i;
        if k == 1 {
            out.push(s.clamp(umin.min(s), umax.max(s)));
            break;
        }
        let rem = (k - 1) as f64;
        let lo = (s - rem * umax).max(umin);
        let hi = (s - rem * umin).min(umax);
        if lo > hi + 1e-9 {
            return None; // numerically infeasible residue
        }
        let u = if hi - lo < 1e-12 || s < 1e-12 {
            lo.max(hi.min(lo))
        } else {
            let f = |x: f64| 1.0 - (1.0 - (x / s).clamp(0.0, 1.0)).powf(rem);
            let (f_lo, f_hi) = (f(lo), f(hi));
            let y = if f_hi - f_lo < 1e-15 {
                f_lo
            } else {
                rng.random_range(f_lo..=f_hi)
            };
            (s * (1.0 - (1.0 - y).powf(1.0 / rem))).clamp(lo, hi)
        };
        out.push(u);
        s -= u;
    }
    // Fisher–Yates shuffle to remove sequential-truncation order bias.
    for i in (1..out.len()).rev() {
        let j = rng.random_range(0..=i);
        out.swap(i, j);
    }
    Some(out)
}

/// Produces `n` pairs `(u_lo_i, u_hi_i)` with `u_lo_i ≤ u_hi_i`,
/// `Σ u_hi = total_hi`, `Σ u_lo = total_lo`, and `umin ≤ u ≤ umax` on the
/// high side (`u_lo` respects `umin` and its cap `u_hi`).
///
/// Strategy (fair-generator style): draw both vectors with
/// [`uunifast_discard`], sort both descending and pair rank-by-rank — this
/// makes most pairs already satisfy `u_lo ≤ u_hi` — then clamp any
/// violating `u_lo` to its cap and redistribute the clipped excess to
/// pairs with headroom, preserving the low-side sum exactly. The pairs are
/// finally shuffled so rank correlation does not leak into task order.
///
/// Returns `None` when the targets are structurally infeasible
/// (`total_lo > total_hi`, or a bound constraint cannot hold).
pub fn paired_utilizations(
    rng: &mut impl Rng,
    n: usize,
    total_lo: f64,
    total_hi: f64,
    umin: f64,
    umax: f64,
    max_tries: usize,
) -> Option<Vec<(f64, f64)>> {
    if total_lo > total_hi + 1e-12 {
        return None;
    }
    if n == 0 {
        return if total_hi.abs() < 1e-12 {
            Some(Vec::new())
        } else {
            None
        };
    }
    let _ = max_tries;
    let mut hi = uunifast_bounded(rng, n, total_hi, umin, umax)?;
    let mut lo = uunifast_bounded(rng, n, total_lo, umin.min(total_lo / n as f64), umax)?;
    hi.sort_by(|a, b| b.total_cmp(a));
    lo.sort_by(|a, b| b.total_cmp(a));

    // Clamp low values to their caps and redistribute the excess among
    // pairs that still have headroom, keeping Σ lo invariant.
    let mut lo: Vec<f64> = lo;
    for _ in 0..64 {
        let mut excess = 0.0;
        for i in 0..n {
            if lo[i] > hi[i] {
                excess += lo[i] - hi[i];
                lo[i] = hi[i];
            }
        }
        if excess < 1e-12 {
            break;
        }
        let headroom: f64 = (0..n).map(|i| (hi[i] - lo[i]).max(0.0)).sum();
        if headroom < excess - 1e-9 {
            return None; // cannot place the low-side mass under the caps
        }
        for i in 0..n {
            let h = (hi[i] - lo[i]).max(0.0);
            lo[i] += excess * h / headroom;
        }
    }
    // Numerical guard: a final clamp pass may leave a ≤1e-9 deficit, which
    // downstream ⌈u·T⌉ quantization absorbs.
    let mut pairs: Vec<(f64, f64)> = lo.into_iter().zip(hi).map(|(l, h)| (l.min(h), h)).collect();
    // Fisher–Yates shuffle to decouple pair magnitude from task index.
    for i in (1..pairs.len()).rev() {
        let j = rng.random_range(0..=i);
        pairs.swap(i, j);
    }
    Some(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn uunifast_sums_and_nonnegative() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 2, 5, 20] {
            for total in [0.1, 0.7, 1.0, 3.5] {
                let u = uunifast(&mut rng, n, total);
                assert_eq!(u.len(), n);
                assert!((u.iter().sum::<f64>() - total).abs() < 1e-9);
                assert!(u.iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    fn uunifast_zero_tasks() {
        let mut rng = StdRng::seed_from_u64(12);
        assert!(uunifast(&mut rng, 0, 0.5).is_empty());
    }

    #[test]
    fn uunifast_distribution_is_roughly_uniform() {
        // For n = 2, u_0 ~ U(0, total): quartile counts should be flat.
        let mut rng = StdRng::seed_from_u64(13);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            let u = uunifast(&mut rng, 2, 1.0);
            let q = ((u[0] * 4.0) as usize).min(3);
            counts[q] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "quartiles should be flat: {counts:?}"
            );
        }
    }

    #[test]
    fn discard_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(14);
        let u = uunifast_discard(&mut rng, 5, 2.0, 0.05, 0.9, 1000).unwrap();
        assert!(u.iter().all(|&x| (0.05..=0.9).contains(&x)));
        assert!((u.iter().sum::<f64>() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn discard_infeasible_returns_none() {
        let mut rng = StdRng::seed_from_u64(15);
        // total above n·umax.
        assert!(uunifast_discard(&mut rng, 2, 3.0, 0.0, 0.99, 100).is_none());
        // total below n·umin.
        assert!(uunifast_discard(&mut rng, 4, 0.001, 0.01, 0.99, 100).is_none());
    }

    #[test]
    fn discard_zero_n() {
        let mut rng = StdRng::seed_from_u64(16);
        assert_eq!(
            uunifast_discard(&mut rng, 0, 0.0, 0.0, 1.0, 10),
            Some(vec![])
        );
        assert_eq!(uunifast_discard(&mut rng, 0, 0.5, 0.0, 1.0, 10), None);
    }

    #[test]
    fn paired_sums_and_order() {
        let mut rng = StdRng::seed_from_u64(17);
        for (tl, th, n) in [
            (0.4, 1.2, 4usize),
            (0.05, 0.1, 1),
            (1.5, 1.8, 6),
            (0.9, 0.9, 3),
        ] {
            let pairs = paired_utilizations(&mut rng, n, tl, th, 0.001, 0.99, 2000)
                .unwrap_or_else(|| panic!("feasible config {tl}/{th}/{n}"));
            assert_eq!(pairs.len(), n);
            let sum_lo: f64 = pairs.iter().map(|p| p.0).sum();
            let sum_hi: f64 = pairs.iter().map(|p| p.1).sum();
            assert!((sum_lo - tl).abs() < 1e-6, "lo sum {sum_lo} != {tl}");
            assert!((sum_hi - th).abs() < 1e-6, "hi sum {sum_hi} != {th}");
            for &(l, h) in &pairs {
                assert!(l <= h + 1e-9, "pair order violated: {l} > {h}");
                assert!(h <= 0.99 + 1e-9);
                assert!(l > 0.0);
            }
        }
    }

    #[test]
    fn paired_rejects_inverted_totals() {
        let mut rng = StdRng::seed_from_u64(18);
        assert!(paired_utilizations(&mut rng, 3, 1.0, 0.5, 0.001, 0.99, 100).is_none());
    }

    #[test]
    fn paired_zero_tasks() {
        let mut rng = StdRng::seed_from_u64(19);
        assert_eq!(
            paired_utilizations(&mut rng, 0, 0.0, 0.0, 0.001, 0.99, 10),
            Some(vec![])
        );
        assert!(paired_utilizations(&mut rng, 0, 0.0, 0.5, 0.001, 0.99, 10).is_none());
    }

    #[test]
    fn paired_equal_totals_forces_equal_pairs() {
        let mut rng = StdRng::seed_from_u64(20);
        let pairs = paired_utilizations(&mut rng, 3, 0.9, 0.9, 0.001, 0.99, 2000).unwrap();
        for &(l, h) in &pairs {
            assert!((l - h).abs() < 1e-6, "equal totals should pin l == h");
        }
    }
}
