//! Error types for model construction.

use crate::{TaskId, Time};
use std::error::Error;
use std::fmt;

/// An error raised while constructing a [`Task`](crate::Task) or
/// [`TaskSet`](crate::TaskSet) that would violate the dual-criticality
/// sporadic model invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// The period `Ti` must be positive.
    ZeroPeriod {
        /// Offending task.
        task: TaskId,
    },
    /// The low-mode budget `C^L_i` must be positive.
    ZeroWcet {
        /// Offending task.
        task: TaskId,
    },
    /// `C^H_i < C^L_i` violates the Vestal model assumption `C^L ≤ C^H`.
    WcetOrder {
        /// Offending task.
        task: TaskId,
        /// Low-mode budget.
        wcet_lo: Time,
        /// High-mode budget.
        wcet_hi: Time,
    },
    /// The deadline must satisfy `C^χ_i ≤ Di ≤ Ti` (constrained deadlines).
    DeadlineOutOfRange {
        /// Offending task.
        task: TaskId,
        /// The rejected deadline.
        deadline: Time,
        /// The task's period.
        period: Time,
    },
    /// Two tasks in one set share the same identifier.
    DuplicateTaskId {
        /// The duplicated identifier.
        task: TaskId,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ZeroPeriod { task } => {
                write!(f, "task {task} has a zero period")
            }
            ModelError::ZeroWcet { task } => {
                write!(f, "task {task} has a zero low-mode execution budget")
            }
            ModelError::WcetOrder {
                task,
                wcet_lo,
                wcet_hi,
            } => write!(
                f,
                "task {task} has C^H = {wcet_hi} smaller than C^L = {wcet_lo}"
            ),
            ModelError::DeadlineOutOfRange {
                task,
                deadline,
                period,
            } => write!(
                f,
                "task {task} deadline {deadline} outside [C, T] with T = {period}"
            ),
            ModelError::DuplicateTaskId { task } => {
                write!(f, "duplicate task id {task} in task set")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ModelError::ZeroPeriod { task: TaskId(3) };
        assert!(e.to_string().contains("zero period"));
        let e = ModelError::WcetOrder {
            task: TaskId(1),
            wcet_lo: Time::new(5),
            wcet_hi: Time::new(2),
        };
        assert!(e.to_string().contains("C^H = 2"));
        let e = ModelError::DeadlineOutOfRange {
            task: TaskId(0),
            deadline: Time::new(99),
            period: Time::new(10),
        };
        assert!(e.to_string().contains("deadline 99"));
        let e = ModelError::DuplicateTaskId { task: TaskId(7) };
        assert!(e.to_string().contains("duplicate"));
        let e = ModelError::ZeroWcet { task: TaskId(2) };
        assert!(e.to_string().contains("zero low-mode"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ModelError>();
    }
}
