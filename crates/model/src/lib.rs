//! # mcsched-model
//!
//! Dual-criticality sporadic task model for mixed-criticality (MC)
//! scheduling, following the system model of Ramanathan & Easwaran,
//! *"Utilization Difference Based Partitioned Scheduling of
//! Mixed-Criticality Systems"* (DATE 2017), which itself builds on
//! Vestal's MC task model (RTSS 2007).
//!
//! A task system `τ` consists of `n` sporadic tasks scheduled on `m`
//! identical processors. Each task `τi` is a tuple
//! `(Ti, χi, C^L_i, C^H_i, Di)`:
//!
//! * `Ti` — minimum release separation (period),
//! * `χi ∈ {LC, HC}` — the task's criticality level,
//! * `C^L_i ≤ C^H_i` — low-mode and high-mode execution budgets,
//! * `Di` — relative deadline (`Di = Ti` implicit, `Di ≤ Ti` constrained).
//!
//! All temporal parameters are integer ticks ([`Time`]), so every analysis
//! downstream can be exact.
//!
//! ## Example
//!
//! ```
//! use mcsched_model::{Task, TaskSet, Criticality};
//!
//! # fn main() -> Result<(), mcsched_model::ModelError> {
//! let tasks = TaskSet::try_from_tasks(vec![
//!     Task::hi(0, 10, 2, 4)?,          // HC task: T=D=10, C^L=2, C^H=4
//!     Task::lo(1, 20, 5)?,             // LC task: T=D=20, C=5
//!     Task::hi_constrained(2, 50, 5, 10, 30)?, // HC with D=30 < T=50
//! ])?;
//!
//! assert_eq!(tasks.len(), 3);
//! assert_eq!(tasks.hi_tasks().count(), 2);
//! // Utilization difference of the HC tasks: Σ (u^H − u^L).
//! let diff = tasks.utilization_difference();
//! assert!(diff > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod criticality;
mod error;
mod task;
mod taskset;
mod time;

pub use criticality::Criticality;
pub use error::ModelError;
pub use task::{Task, TaskBuilder, TaskId};
pub use taskset::{DeadlineKind, SystemUtilization, TaskSet};
pub use time::Time;
