//! Integer time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in (or span of) discrete time, measured in integer ticks.
///
/// All task parameters (periods, deadlines, execution budgets) and all
/// schedulability analyses in this workspace use `Time`, so demand-bound
/// and response-time computations are exact — no floating-point drift in
/// correctness-critical code.
///
/// `Time` is a transparent newtype over `u64` implementing the arithmetic
/// a scheduling analysis needs. Subtraction saturates at zero
/// ([`Time::saturating_sub`] is also provided explicitly); plain `-` panics
/// on underflow in debug builds like `u64` does, so analyses use
/// `saturating_sub` where an underflow is a legitimate "clamp to zero".
///
/// # Example
///
/// ```
/// use mcsched_model::Time;
///
/// let period = Time::new(10);
/// let deadline = Time::new(7);
/// assert!(deadline < period);
/// assert_eq!((period - deadline).as_ticks(), 3);
/// assert_eq!(period.saturating_sub(Time::new(12)), Time::ZERO);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Time(u64);

impl Time {
    /// The zero instant / empty span.
    pub const ZERO: Time = Time(0);
    /// One tick.
    pub const ONE: Time = Time(1);
    /// The maximum representable time.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a `Time` from raw ticks.
    ///
    /// ```
    /// use mcsched_model::Time;
    /// assert_eq!(Time::new(5).as_ticks(), 5);
    /// ```
    #[inline]
    pub const fn new(ticks: u64) -> Self {
        Time(ticks)
    }

    /// Returns the raw tick count.
    #[inline]
    pub const fn as_ticks(self) -> u64 {
        self.0
    }

    /// Returns this time as an `f64` (for utilization-style statistics only;
    /// never used inside exact analyses).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// `true` if this is the zero instant.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction clamped at zero.
    #[inline]
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Addition clamped at `u64::MAX`.
    #[inline]
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Time) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }

    /// Multiplication by a scalar job count, clamped at `u64::MAX`.
    ///
    /// Demand terms are `WCET × ⌈·⌉` products; outside the certified
    /// fast kernels they must saturate rather than wrap at 2^64 — a
    /// saturated demand keeps a violation a violation, a wrapped one
    /// can fake schedulability.
    #[inline]
    pub const fn saturating_mul(self, rhs: u64) -> Time {
        Time(self.0.saturating_mul(rhs))
    }

    /// Checked multiplication by a scalar job count; `None` on overflow.
    #[inline]
    pub fn checked_mul(self, k: u64) -> Option<Time> {
        self.0.checked_mul(k).map(Time)
    }

    /// Integer division rounding up: `ceil(self / rhs)`.
    ///
    /// This is the `⌈t/T⌉` that appears throughout response-time analysis.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    ///
    /// ```
    /// use mcsched_model::Time;
    /// assert_eq!(Time::new(10).div_ceil(Time::new(4)), 3);
    /// assert_eq!(Time::new(8).div_ceil(Time::new(4)), 2);
    /// assert_eq!(Time::ZERO.div_ceil(Time::new(4)), 0);
    /// ```
    #[inline]
    pub const fn div_ceil(self, rhs: Time) -> u64 {
        self.0.div_ceil(rhs.0)
    }

    /// Integer division rounding down: `floor(self / rhs)`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    pub const fn div_floor(self, rhs: Time) -> u64 {
        self.0 / rhs.0
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Time {
    fn from(ticks: u64) -> Self {
        Time(ticks)
    }
}

impl From<u32> for Time {
    fn from(ticks: u32) -> Self {
        Time(u64::from(ticks))
    }
}

impl From<Time> for u64 {
    fn from(t: Time) -> Self {
        t.0
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Mul<Time> for u64 {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: Time) -> Time {
        Time(self * rhs.0)
    }
}

impl Div<Time> for Time {
    type Output = u64;
    #[inline]
    fn div(self, rhs: Time) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Time> for Time {
    type Output = Time;
    #[inline]
    fn rem(self, rhs: Time) -> Time {
        Time(self.0 % rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Time> for Time {
    fn sum<I: Iterator<Item = &'a Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(Time::new(42).as_ticks(), 42);
        assert_eq!(Time::ZERO.as_ticks(), 0);
        assert_eq!(Time::ONE.as_ticks(), 1);
        assert!(Time::ZERO.is_zero());
        assert!(!Time::ONE.is_zero());
        assert_eq!(Time::default(), Time::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Time::new(10);
        let b = Time::new(3);
        assert_eq!(a + b, Time::new(13));
        assert_eq!(a - b, Time::new(7));
        assert_eq!(a * 2, Time::new(20));
        assert_eq!(3 * b, Time::new(9));
        assert_eq!(a / b, 3);
        assert_eq!(a % b, Time::new(1));
    }

    #[test]
    fn assign_ops() {
        let mut t = Time::new(5);
        t += Time::new(2);
        assert_eq!(t, Time::new(7));
        t -= Time::new(3);
        assert_eq!(t, Time::new(4));
    }

    #[test]
    fn saturating() {
        assert_eq!(Time::new(3).saturating_sub(Time::new(5)), Time::ZERO);
        assert_eq!(Time::new(5).saturating_sub(Time::new(3)), Time::new(2));
        assert_eq!(Time::MAX.saturating_add(Time::ONE), Time::MAX);
    }

    #[test]
    fn checked() {
        assert_eq!(Time::MAX.checked_add(Time::ONE), None);
        assert_eq!(Time::new(2).checked_add(Time::new(3)), Some(Time::new(5)));
        assert_eq!(Time::MAX.checked_mul(2), None);
        assert_eq!(Time::new(4).checked_mul(3), Some(Time::new(12)));
    }

    #[test]
    fn div_rounding() {
        assert_eq!(Time::new(10).div_ceil(Time::new(3)), 4);
        assert_eq!(Time::new(9).div_ceil(Time::new(3)), 3);
        assert_eq!(Time::new(10).div_floor(Time::new(3)), 3);
        assert_eq!(Time::ZERO.div_ceil(Time::new(3)), 0);
    }

    #[test]
    fn min_max() {
        let a = Time::new(2);
        let b = Time::new(7);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(b.min(b), b);
    }

    #[test]
    fn ordering_and_display() {
        assert!(Time::new(1) < Time::new(2));
        assert_eq!(format!("{}", Time::new(17)), "17");
        assert_eq!(format!("{:?}", Time::new(17)), "Time(17)");
    }

    #[test]
    fn conversions() {
        assert_eq!(Time::from(7u64), Time::new(7));
        assert_eq!(Time::from(7u32), Time::new(7));
        assert_eq!(u64::from(Time::new(9)), 9);
        assert_eq!(Time::new(3).as_f64(), 3.0);
    }

    #[test]
    fn sums() {
        let v = [Time::new(1), Time::new(2), Time::new(3)];
        let owned: Time = v.iter().copied().sum();
        let borrowed: Time = v.iter().sum();
        assert_eq!(owned, Time::new(6));
        assert_eq!(borrowed, Time::new(6));
    }
}
