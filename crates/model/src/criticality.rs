//! Criticality levels for dual-criticality systems.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The criticality level `χi` of a task in a dual-criticality system.
///
/// Ordered so that `Low < High`, which lets criticality-aware partitioning
/// strategies sort on it directly.
///
/// # Example
///
/// ```
/// use mcsched_model::Criticality;
///
/// assert!(Criticality::Low < Criticality::High);
/// assert!(Criticality::High.is_high());
/// assert_eq!(Criticality::Low.to_string(), "LC");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Criticality {
    /// Low criticality (`LC`). Deadlines only guaranteed in low mode.
    #[default]
    Low,
    /// High criticality (`HC`). Deadlines guaranteed in both modes.
    High,
}

impl Criticality {
    /// `true` for [`Criticality::High`].
    #[inline]
    pub const fn is_high(self) -> bool {
        matches!(self, Criticality::High)
    }

    /// `true` for [`Criticality::Low`].
    #[inline]
    pub const fn is_low(self) -> bool {
        matches!(self, Criticality::Low)
    }

    /// Both levels, low first.
    pub const ALL: [Criticality; 2] = [Criticality::Low, Criticality::High];
}

impl fmt::Display for Criticality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Criticality::Low => write!(f, "LC"),
            Criticality::High => write!(f, "HC"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_low_below_high() {
        assert!(Criticality::Low < Criticality::High);
        assert_eq!(Criticality::Low.max(Criticality::High), Criticality::High);
    }

    #[test]
    fn predicates() {
        assert!(Criticality::High.is_high());
        assert!(!Criticality::High.is_low());
        assert!(Criticality::Low.is_low());
        assert!(!Criticality::Low.is_high());
    }

    #[test]
    fn display() {
        assert_eq!(Criticality::Low.to_string(), "LC");
        assert_eq!(Criticality::High.to_string(), "HC");
    }

    #[test]
    fn default_is_low() {
        assert_eq!(Criticality::default(), Criticality::Low);
    }

    #[test]
    fn all_covers_both() {
        assert_eq!(Criticality::ALL.len(), 2);
        assert_eq!(Criticality::ALL[0], Criticality::Low);
        assert_eq!(Criticality::ALL[1], Criticality::High);
    }
}
