//! The dual-criticality sporadic task.

use crate::{Criticality, ModelError, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a task within a task set.
///
/// ```
/// use mcsched_model::TaskId;
/// let id = TaskId(3);
/// assert_eq!(id.to_string(), "τ3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

impl From<u32> for TaskId {
    fn from(v: u32) -> Self {
        TaskId(v)
    }
}

/// A dual-criticality sporadic task `τi = (Ti, χi, C^L_i, C^H_i, Di)`.
///
/// Invariants (enforced at construction):
///
/// * `Ti > 0`, `C^L_i > 0`,
/// * `C^L_i ≤ C^H_i` (for LC tasks the two coincide),
/// * `C^H_i ≤ Di ≤ Ti` (implicit deadlines have `Di = Ti`).
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, Criticality};
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let hc = Task::hi(0, 100, 10, 25)?;
/// assert_eq!(hc.criticality(), Criticality::High);
/// assert_eq!(hc.utilization_lo(), 0.10);
/// assert_eq!(hc.utilization_hi(), 0.25);
/// assert!(hc.is_implicit_deadline());
///
/// let lc = Task::lo_constrained(1, 100, 10, 60)?;
/// assert!(lc.criticality().is_low());
/// assert!(!lc.is_implicit_deadline());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Task {
    id: TaskId,
    period: Time,
    criticality: Criticality,
    wcet_lo: Time,
    wcet_hi: Time,
    deadline: Time,
}

impl Task {
    /// Creates an implicit-deadline low-criticality task (`D = T`,
    /// `C^H = C^L`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if `period == 0`, `wcet == 0` or
    /// `wcet > period`.
    pub fn lo(id: impl Into<TaskId>, period: u64, wcet: u64) -> Result<Self, ModelError> {
        let period = Time::new(period);
        Self::build(
            id.into(),
            period,
            Criticality::Low,
            Time::new(wcet),
            None,
            period,
        )
    }

    /// Creates a constrained-deadline low-criticality task (`D ≤ T`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if a model invariant is violated
    /// (see [`Task`]).
    pub fn lo_constrained(
        id: impl Into<TaskId>,
        period: u64,
        wcet: u64,
        deadline: u64,
    ) -> Result<Self, ModelError> {
        Self::build(
            id.into(),
            Time::new(period),
            Criticality::Low,
            Time::new(wcet),
            None,
            Time::new(deadline),
        )
    }

    /// Creates an implicit-deadline high-criticality task (`D = T`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if a model invariant is violated
    /// (see [`Task`]).
    pub fn hi(
        id: impl Into<TaskId>,
        period: u64,
        wcet_lo: u64,
        wcet_hi: u64,
    ) -> Result<Self, ModelError> {
        let period = Time::new(period);
        Self::build(
            id.into(),
            period,
            Criticality::High,
            Time::new(wcet_lo),
            Some(Time::new(wcet_hi)),
            period,
        )
    }

    /// Creates a constrained-deadline high-criticality task (`D ≤ T`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if a model invariant is violated
    /// (see [`Task`]).
    pub fn hi_constrained(
        id: impl Into<TaskId>,
        period: u64,
        wcet_lo: u64,
        wcet_hi: u64,
        deadline: u64,
    ) -> Result<Self, ModelError> {
        Self::build(
            id.into(),
            Time::new(period),
            Criticality::High,
            Time::new(wcet_lo),
            Some(Time::new(wcet_hi)),
            Time::new(deadline),
        )
    }

    /// Starts a [`TaskBuilder`] for step-by-step construction.
    pub fn builder(id: impl Into<TaskId>) -> TaskBuilder {
        TaskBuilder::new(id)
    }

    fn build(
        id: TaskId,
        period: Time,
        criticality: Criticality,
        wcet_lo: Time,
        wcet_hi: Option<Time>,
        deadline: Time,
    ) -> Result<Self, ModelError> {
        if period.is_zero() {
            return Err(ModelError::ZeroPeriod { task: id });
        }
        if wcet_lo.is_zero() {
            return Err(ModelError::ZeroWcet { task: id });
        }
        let wcet_hi = wcet_hi.unwrap_or(wcet_lo);
        if wcet_hi < wcet_lo {
            return Err(ModelError::WcetOrder {
                task: id,
                wcet_lo,
                wcet_hi,
            });
        }
        // The budget relevant at the task's own criticality level must fit
        // inside the deadline, and the deadline inside the period.
        let own_budget = match criticality {
            Criticality::Low => wcet_lo,
            Criticality::High => wcet_hi,
        };
        if deadline < own_budget || deadline > period {
            return Err(ModelError::DeadlineOutOfRange {
                task: id,
                deadline,
                period,
            });
        }
        Ok(Task {
            id,
            period,
            criticality,
            wcet_lo,
            wcet_hi,
            deadline,
        })
    }

    /// The task identifier.
    #[inline]
    pub const fn id(&self) -> TaskId {
        self.id
    }

    /// Minimum release separation `Ti`.
    #[inline]
    pub const fn period(&self) -> Time {
        self.period
    }

    /// Criticality level `χi`.
    #[inline]
    pub const fn criticality(&self) -> Criticality {
        self.criticality
    }

    /// Low-mode execution budget `C^L_i`.
    #[inline]
    pub const fn wcet_lo(&self) -> Time {
        self.wcet_lo
    }

    /// High-mode execution budget `C^H_i` (equals `C^L_i` for LC tasks).
    #[inline]
    pub const fn wcet_hi(&self) -> Time {
        self.wcet_hi
    }

    /// Relative deadline `Di`.
    #[inline]
    pub const fn deadline(&self) -> Time {
        self.deadline
    }

    /// The execution budget at the given system mode: `C^L` in low mode,
    /// `C^H` in high mode.
    #[inline]
    pub const fn wcet_at(&self, level: Criticality) -> Time {
        match level {
            Criticality::Low => self.wcet_lo,
            Criticality::High => self.wcet_hi,
        }
    }

    /// The budget at the task's **own** criticality level — `C^L` for LC
    /// tasks, `C^H` for HC tasks. This is the utilization the paper sorts
    /// tasks by ("utilization values at their respective criticality
    /// levels").
    #[inline]
    pub const fn wcet_own(&self) -> Time {
        self.wcet_at(self.criticality)
    }

    /// Low-mode utilization `u^L_i = C^L_i / Ti`.
    #[inline]
    pub fn utilization_lo(&self) -> f64 {
        self.wcet_lo.as_f64() / self.period.as_f64()
    }

    /// High-mode utilization `u^H_i = C^H_i / Ti`.
    #[inline]
    pub fn utilization_hi(&self) -> f64 {
        self.wcet_hi.as_f64() / self.period.as_f64()
    }

    /// Utilization at the task's own criticality level
    /// (`u^L` for LC, `u^H` for HC).
    #[inline]
    pub fn utilization_own(&self) -> f64 {
        self.wcet_own().as_f64() / self.period.as_f64()
    }

    /// The per-task utilization difference `u^H_i − u^L_i`
    /// (zero for LC tasks).
    #[inline]
    pub fn utilization_difference(&self) -> f64 {
        self.utilization_hi() - self.utilization_lo()
    }

    /// Low-mode density `C^L_i / min(Di, Ti)`.
    #[inline]
    pub fn density_lo(&self) -> f64 {
        self.wcet_lo.as_f64() / self.deadline.min(self.period).as_f64()
    }

    /// High-mode density `C^H_i / min(Di, Ti)`.
    #[inline]
    pub fn density_hi(&self) -> f64 {
        self.wcet_hi.as_f64() / self.deadline.min(self.period).as_f64()
    }

    /// `true` if `Di = Ti`.
    #[inline]
    pub fn is_implicit_deadline(&self) -> bool {
        self.deadline == self.period
    }

    /// Returns a copy with a different deadline (used by constrained-deadline
    /// generators and deadline-tuning analyses).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DeadlineOutOfRange`] if the new deadline
    /// violates `C ≤ D ≤ T`.
    pub fn with_deadline(&self, deadline: Time) -> Result<Self, ModelError> {
        Self::build(
            self.id,
            self.period,
            self.criticality,
            self.wcet_lo,
            Some(self.wcet_hi),
            deadline,
        )
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({}, T={}, C^L={}, C^H={}, D={})",
            self.id, self.criticality, self.period, self.wcet_lo, self.wcet_hi, self.deadline
        )
    }
}

/// Builder for [`Task`], useful when parameters arrive piecemeal
/// (e.g. from a generator or a config file).
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, Criticality};
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let t = Task::builder(7)
///     .period(50)
///     .criticality(Criticality::High)
///     .wcet_lo(5)
///     .wcet_hi(12)
///     .deadline(30)
///     .try_build()?;
/// assert_eq!(t.deadline().as_ticks(), 30);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TaskBuilder {
    id: TaskId,
    period: Time,
    criticality: Criticality,
    wcet_lo: Time,
    wcet_hi: Option<Time>,
    deadline: Option<Time>,
}

impl TaskBuilder {
    /// Creates a builder for the task with the given id.
    pub fn new(id: impl Into<TaskId>) -> Self {
        TaskBuilder {
            id: id.into(),
            period: Time::ZERO,
            criticality: Criticality::Low,
            wcet_lo: Time::ZERO,
            wcet_hi: None,
            deadline: None,
        }
    }

    /// Sets the period `Ti`.
    pub fn period(mut self, period: u64) -> Self {
        self.period = Time::new(period);
        self
    }

    /// Sets the criticality level `χi`.
    pub fn criticality(mut self, criticality: Criticality) -> Self {
        self.criticality = criticality;
        self
    }

    /// Sets the low-mode budget `C^L_i`.
    pub fn wcet_lo(mut self, wcet: u64) -> Self {
        self.wcet_lo = Time::new(wcet);
        self
    }

    /// Sets the high-mode budget `C^H_i` (defaults to `C^L_i`).
    pub fn wcet_hi(mut self, wcet: u64) -> Self {
        self.wcet_hi = Some(Time::new(wcet));
        self
    }

    /// Sets the relative deadline `Di` (defaults to `Ti`).
    pub fn deadline(mut self, deadline: u64) -> Self {
        self.deadline = Some(Time::new(deadline));
        self
    }

    /// Finalizes the task.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the assembled parameters violate a model
    /// invariant (see [`Task`]).
    pub fn try_build(self) -> Result<Task, ModelError> {
        let deadline = self.deadline.unwrap_or(self.period);
        Task::build(
            self.id,
            self.period,
            self.criticality,
            self.wcet_lo,
            self.wcet_hi,
            deadline,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lo_task_defaults() {
        let t = Task::lo(0, 10, 3).unwrap();
        assert_eq!(t.criticality(), Criticality::Low);
        assert_eq!(t.wcet_lo(), t.wcet_hi());
        assert_eq!(t.deadline(), t.period());
        assert!(t.is_implicit_deadline());
        assert_eq!(t.utilization_lo(), 0.3);
        assert_eq!(t.utilization_difference(), 0.0);
        assert_eq!(t.wcet_own(), Time::new(3));
    }

    #[test]
    fn hi_task() {
        let t = Task::hi(1, 20, 4, 10).unwrap();
        assert_eq!(t.utilization_lo(), 0.2);
        assert_eq!(t.utilization_hi(), 0.5);
        assert!((t.utilization_difference() - 0.3).abs() < 1e-12);
        assert_eq!(t.wcet_at(Criticality::Low), Time::new(4));
        assert_eq!(t.wcet_at(Criticality::High), Time::new(10));
        assert_eq!(t.wcet_own(), Time::new(10));
        assert_eq!(t.utilization_own(), 0.5);
    }

    #[test]
    fn constrained_deadline() {
        let t = Task::hi_constrained(2, 100, 5, 20, 40).unwrap();
        assert!(!t.is_implicit_deadline());
        assert_eq!(t.density_hi(), 0.5);
        assert_eq!(t.density_lo(), 0.125);
    }

    #[test]
    fn zero_period_rejected() {
        assert_eq!(
            Task::lo(0, 0, 1),
            Err(ModelError::ZeroPeriod { task: TaskId(0) })
        );
    }

    #[test]
    fn zero_wcet_rejected() {
        assert_eq!(
            Task::lo(0, 10, 0),
            Err(ModelError::ZeroWcet { task: TaskId(0) })
        );
    }

    #[test]
    fn wcet_order_rejected() {
        assert!(matches!(
            Task::hi(0, 10, 5, 3),
            Err(ModelError::WcetOrder { .. })
        ));
    }

    #[test]
    fn deadline_bounds_rejected() {
        // deadline above period
        assert!(matches!(
            Task::hi_constrained(0, 10, 2, 4, 11),
            Err(ModelError::DeadlineOutOfRange { .. })
        ));
        // deadline below own budget (HC: C^H)
        assert!(matches!(
            Task::hi_constrained(0, 10, 2, 4, 3),
            Err(ModelError::DeadlineOutOfRange { .. })
        ));
        // LC task: deadline only needs to fit C^L
        assert!(Task::lo_constrained(0, 10, 2, 2).is_ok());
    }

    #[test]
    fn lc_wcet_exceeding_deadline_rejected() {
        assert!(matches!(
            Task::lo(0, 10, 11),
            Err(ModelError::DeadlineOutOfRange { .. })
        ));
    }

    #[test]
    fn builder_roundtrip() {
        let t = Task::builder(5)
            .period(40)
            .criticality(Criticality::High)
            .wcet_lo(4)
            .wcet_hi(8)
            .try_build()
            .unwrap();
        assert_eq!(t.id(), TaskId(5));
        assert_eq!(t.deadline(), Time::new(40)); // defaulted to period
        assert_eq!(t.wcet_hi(), Time::new(8));
    }

    #[test]
    fn builder_defaults_hi_to_lo() {
        let t = Task::builder(1).period(10).wcet_lo(2).try_build().unwrap();
        assert_eq!(t.wcet_hi(), Time::new(2));
    }

    #[test]
    fn with_deadline() {
        let t = Task::hi(0, 50, 5, 10).unwrap();
        let tightened = t.with_deadline(Time::new(20)).unwrap();
        assert_eq!(tightened.deadline(), Time::new(20));
        assert!(t.with_deadline(Time::new(9)).is_err()); // below C^H
        assert!(t.with_deadline(Time::new(51)).is_err()); // above T
    }

    #[test]
    fn display() {
        let t = Task::hi_constrained(3, 100, 5, 20, 40).unwrap();
        let s = t.to_string();
        assert!(s.contains("τ3"), "{s}");
        assert!(s.contains("HC"), "{s}");
        assert!(s.contains("T=100"), "{s}");
        assert!(s.contains("D=40"), "{s}");
    }

    #[test]
    fn task_id_display_and_from() {
        assert_eq!(TaskId::from(4u32), TaskId(4));
        assert_eq!(TaskId(4).to_string(), "τ4");
    }
}
