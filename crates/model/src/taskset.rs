//! Collections of dual-criticality tasks and their system-level statistics.

use crate::{Criticality, ModelError, Task, TaskId, Time};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Whether every task in a set has an implicit deadline (`D = T`) or the
/// set contains constrained deadlines (`D ≤ T`, at least one strict).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeadlineKind {
    /// All tasks have `Di = Ti`.
    Implicit,
    /// All tasks have `Di ≤ Ti` and at least one has `Di < Ti`.
    Constrained,
}

impl fmt::Display for DeadlineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeadlineKind::Implicit => write!(f, "implicit"),
            DeadlineKind::Constrained => write!(f, "constrained"),
        }
    }
}

/// The three system-level utilization sums the paper's analysis revolves
/// around (unnormalized — divide by `m` for the paper's normalized values):
///
/// * `u_ll = Σ_{LC} u^L_i`   (the paper's `U_L^L · m`)
/// * `u_hl = Σ_{HC} u^L_i`   (the paper's `U_H^L · m`)
/// * `u_hh = Σ_{HC} u^H_i`   (the paper's `U_H^H · m`)
///
/// ```
/// use mcsched_model::{Task, TaskSet};
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let ts = TaskSet::try_from_tasks(vec![
///     Task::hi(0, 10, 2, 4)?,
///     Task::lo(1, 10, 5)?,
/// ])?;
/// let u = ts.system_utilization();
/// assert_eq!(u.u_ll, 0.5);
/// assert_eq!(u.u_hl, 0.2);
/// assert_eq!(u.u_hh, 0.4);
/// assert!((u.difference() - 0.2).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SystemUtilization {
    /// Total low-mode utilization of the LC tasks.
    pub u_ll: f64,
    /// Total low-mode utilization of the HC tasks.
    pub u_hl: f64,
    /// Total high-mode utilization of the HC tasks.
    pub u_hh: f64,
}

impl SystemUtilization {
    /// Adds one task's contribution to the running sums.
    ///
    /// This is the single accumulation routine shared by
    /// [`TaskSet::system_utilization`] and the incremental admission states
    /// in `mcsched-analysis`: because both paths add the same per-task terms
    /// in the same (insertion) order, a cached running triple is
    /// **bit-identical** to a from-scratch recomputation — which is what
    /// lets incremental partitioning reproduce the clone-and-retest
    /// partitions exactly.
    #[inline]
    pub fn accumulate(&mut self, task: &Task) {
        match task.criticality() {
            Criticality::Low => self.u_ll += task.utilization_lo(),
            Criticality::High => {
                self.u_hl += task.utilization_lo();
                self.u_hh += task.utilization_hi();
            }
        }
    }

    /// The triple with `task`'s contribution added last (the candidate
    /// summary an admission test evaluates before committing).
    #[inline]
    #[must_use]
    pub fn with_task(mut self, task: &Task) -> Self {
        self.accumulate(task);
        self
    }

    /// The utilization difference `u_hh − u_hl` — the quantity UDP
    /// balances across processors.
    #[inline]
    pub fn difference(&self) -> f64 {
        self.u_hh - self.u_hl
    }

    /// Total low-mode utilization `u_ll + u_hl` (all tasks at `C^L`).
    #[inline]
    pub fn lo_mode_total(&self) -> f64 {
        self.u_ll + self.u_hl
    }

    /// The paper's total normalized utilization bucket value
    /// `UB = max(U_H^L + U_L^L, U_H^H)` for a platform of `m` processors.
    #[inline]
    pub fn normalized_bound(&self, m: usize) -> f64 {
        let m = m as f64;
        ((self.u_hl + self.u_ll) / m).max(self.u_hh / m)
    }
}

/// An ordered collection of dual-criticality tasks with unique ids.
///
/// `TaskSet` is the unit of work for generators, schedulability tests and
/// partitioning strategies. It keeps insertion order (partitioning
/// strategies re-sort copies as needed) and exposes the system-level
/// utilization statistics of the paper's §II.
///
/// # Example
///
/// ```
/// use mcsched_model::{Task, TaskSet, Criticality};
///
/// # fn main() -> Result<(), mcsched_model::ModelError> {
/// let mut ts = TaskSet::new();
/// ts.try_push(Task::hi(0, 10, 1, 2)?)?;
/// ts.try_push(Task::lo(1, 5, 1)?)?;
///
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.hi_tasks().count(), 1);
/// assert_eq!(ts.lo_tasks().count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Creates an empty task set.
    pub fn new() -> Self {
        TaskSet { tasks: Vec::new() }
    }

    /// Creates an empty task set with room for `capacity` tasks.
    pub fn with_capacity(capacity: usize) -> Self {
        TaskSet {
            tasks: Vec::with_capacity(capacity),
        }
    }

    /// Builds a task set from tasks, checking id uniqueness.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateTaskId`] if two tasks share an id.
    pub fn try_from_tasks(tasks: impl IntoIterator<Item = Task>) -> Result<Self, ModelError> {
        let mut ts = TaskSet::new();
        for t in tasks {
            ts.try_push(t)?;
        }
        Ok(ts)
    }

    /// Appends a task, checking id uniqueness.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateTaskId`] if the id is already present.
    pub fn try_push(&mut self, task: Task) -> Result<(), ModelError> {
        if self.tasks.iter().any(|t| t.id() == task.id()) {
            return Err(ModelError::DuplicateTaskId { task: task.id() });
        }
        self.tasks.push(task);
        Ok(())
    }

    /// Appends a task **without** the duplicate-id check.
    ///
    /// Partitioning inner loops use this after the ids have been validated
    /// once at generation time.
    #[inline]
    pub fn push_unchecked(&mut self, task: Task) {
        self.tasks.push(task);
    }

    /// Number of tasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if the set has no tasks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Iterates over the tasks in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Task> {
        self.tasks.iter()
    }

    /// The tasks as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Task] {
        &self.tasks
    }

    /// Looks a task up by id.
    pub fn get(&self, id: TaskId) -> Option<&Task> {
        self.tasks.iter().find(|t| t.id() == id)
    }

    /// Removes the task with `id`, preserving the order of the remaining
    /// tasks. Returns the removed task, or `None` if absent.
    pub fn remove(&mut self, id: TaskId) -> Option<Task> {
        let pos = self.tasks.iter().position(|t| t.id() == id)?;
        Some(self.tasks.remove(pos))
    }

    /// Iterates over the high-criticality tasks (`τH`).
    pub fn hi_tasks(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter().filter(|t| t.criticality().is_high())
    }

    /// Iterates over the low-criticality tasks (`τL`).
    pub fn lo_tasks(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter().filter(|t| t.criticality().is_low())
    }

    /// Splits into `(τH, τL)` copies, preserving relative order.
    pub fn split_by_criticality(&self) -> (TaskSet, TaskSet) {
        let (hi, lo): (Vec<Task>, Vec<Task>) = self
            .tasks
            .iter()
            .copied()
            .partition(|t| t.criticality().is_high());
        (TaskSet { tasks: hi }, TaskSet { tasks: lo })
    }

    /// The system-level utilization sums (`Σ u^L` over LC, `Σ u^L` over HC,
    /// `Σ u^H` over HC) — see [`SystemUtilization`].
    pub fn system_utilization(&self) -> SystemUtilization {
        let mut u = SystemUtilization::default();
        for t in &self.tasks {
            u.accumulate(t);
        }
        u
    }

    /// Total low-mode utilization of **all** tasks (`Σ u^L_i`).
    pub fn utilization_lo_total(&self) -> f64 {
        // Insertion-order sum: verdicts compare this against thresholds,
        // so the accumulation order must never reassociate.
        let mut u = 0.0;
        for t in &self.tasks {
            u += t.utilization_lo();
        }
        u
    }

    /// Total high-mode utilization of the HC tasks (`Σ_{HC} u^H_i`).
    pub fn utilization_hi_total(&self) -> f64 {
        // Insertion-order sum (see `utilization_lo_total`).
        let mut u = 0.0;
        for t in self.hi_tasks() {
            u += t.utilization_hi();
        }
        u
    }

    /// The utilization difference of this set:
    /// `Σ_{HC} u^H_i − Σ_{HC} u^L_i`.
    ///
    /// This is the quantity the UDP strategies balance across processors
    /// (`U_H^H(φk) − U_H^L(φk)` in the paper).
    pub fn utilization_difference(&self) -> f64 {
        // Insertion-order sum (see `utilization_lo_total`).
        let mut u = 0.0;
        for t in self.hi_tasks() {
            u += t.utilization_difference();
        }
        u
    }

    /// Whether all deadlines are implicit or some are constrained.
    pub fn deadline_kind(&self) -> DeadlineKind {
        if self.tasks.iter().all(Task::is_implicit_deadline) {
            DeadlineKind::Implicit
        } else {
            DeadlineKind::Constrained
        }
    }

    /// The largest period in the set, or zero when empty.
    pub fn max_period(&self) -> Time {
        self.tasks
            .iter()
            .map(Task::period)
            .fold(Time::ZERO, Time::max)
    }

    /// The largest deadline in the set, or zero when empty.
    pub fn max_deadline(&self) -> Time {
        self.tasks
            .iter()
            .map(Task::deadline)
            .fold(Time::ZERO, Time::max)
    }

    /// Checks the id-uniqueness invariant; `Ok` if all ids are distinct.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateTaskId`] naming the first repeated id.
    pub fn validate(&self) -> Result<(), ModelError> {
        let mut seen = HashSet::with_capacity(self.tasks.len());
        for t in &self.tasks {
            if !seen.insert(t.id()) {
                return Err(ModelError::DuplicateTaskId { task: t.id() });
            }
        }
        Ok(())
    }

    /// Consumes the set and returns the underlying tasks.
    pub fn into_tasks(self) -> Vec<Task> {
        self.tasks
    }
}

impl fmt::Display for TaskSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TaskSet ({} tasks):", self.tasks.len())?;
        for t in &self.tasks {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a Task;
    type IntoIter = std::slice::Iter<'a, Task>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

impl IntoIterator for TaskSet {
    type Item = Task;
    type IntoIter = std::vec::IntoIter<Task>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.into_iter()
    }
}

/// Collects tasks **without** the duplicate-id check (use
/// [`TaskSet::try_from_tasks`] for checked construction).
impl FromIterator<Task> for TaskSet {
    fn from_iter<I: IntoIterator<Item = Task>>(iter: I) -> Self {
        TaskSet {
            tasks: iter.into_iter().collect(),
        }
    }
}

/// Extends **without** the duplicate-id check.
impl Extend<Task> for TaskSet {
    fn extend<I: IntoIterator<Item = Task>>(&mut self, iter: I) {
        self.tasks.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TaskSet {
        TaskSet::try_from_tasks(vec![
            Task::hi(0, 10, 2, 4).unwrap(),
            Task::hi(1, 20, 2, 8).unwrap(),
            Task::lo(2, 10, 3).unwrap(),
            Task::lo(3, 40, 10).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_len() {
        let ts = sample();
        assert_eq!(ts.len(), 4);
        assert!(!ts.is_empty());
        assert!(TaskSet::new().is_empty());
        assert_eq!(TaskSet::with_capacity(8).len(), 0);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut ts = TaskSet::new();
        ts.try_push(Task::lo(0, 10, 1).unwrap()).unwrap();
        assert_eq!(
            ts.try_push(Task::lo(0, 20, 1).unwrap()),
            Err(ModelError::DuplicateTaskId { task: TaskId(0) })
        );
    }

    #[test]
    fn validate_catches_unchecked_duplicates() {
        let mut ts = TaskSet::new();
        ts.push_unchecked(Task::lo(0, 10, 1).unwrap());
        ts.push_unchecked(Task::lo(0, 20, 1).unwrap());
        assert!(ts.validate().is_err());
        let ok = sample();
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn criticality_filters() {
        let ts = sample();
        assert_eq!(ts.hi_tasks().count(), 2);
        assert_eq!(ts.lo_tasks().count(), 2);
        let (hi, lo) = ts.split_by_criticality();
        assert_eq!(hi.len(), 2);
        assert_eq!(lo.len(), 2);
        assert!(hi.iter().all(|t| t.criticality().is_high()));
        assert!(lo.iter().all(|t| t.criticality().is_low()));
    }

    #[test]
    fn system_utilization_sums() {
        let ts = sample();
        let u = ts.system_utilization();
        // HC: 2/10 + 2/20 = 0.3 low; 4/10 + 8/20 = 0.8 high.
        // LC: 3/10 + 10/40 = 0.55.
        assert!((u.u_hl - 0.3).abs() < 1e-12);
        assert!((u.u_hh - 0.8).abs() < 1e-12);
        assert!((u.u_ll - 0.55).abs() < 1e-12);
        assert!((u.difference() - 0.5).abs() < 1e-12);
        assert!((u.lo_mode_total() - 0.85).abs() < 1e-12);
        assert!((ts.utilization_difference() - 0.5).abs() < 1e-12);
        assert!((ts.utilization_lo_total() - 0.85).abs() < 1e-12);
        assert!((ts.utilization_hi_total() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn normalized_bound_matches_paper_definition() {
        let ts = sample();
        let u = ts.system_utilization();
        // UB = max(U_H^L + U_L^L, U_H^H) normalized by m = 2.
        let ub = u.normalized_bound(2);
        assert!((ub - (0.85f64 / 2.0).max(0.8 / 2.0)).abs() < 1e-12);
    }

    #[test]
    fn deadline_kind_detection() {
        let ts = sample();
        assert_eq!(ts.deadline_kind(), DeadlineKind::Implicit);
        let mut constrained = sample();
        constrained.push_unchecked(Task::hi_constrained(9, 100, 5, 10, 50).unwrap());
        assert_eq!(constrained.deadline_kind(), DeadlineKind::Constrained);
        assert_eq!(DeadlineKind::Implicit.to_string(), "implicit");
        assert_eq!(DeadlineKind::Constrained.to_string(), "constrained");
    }

    #[test]
    fn lookup_and_maxima() {
        let ts = sample();
        assert_eq!(ts.get(TaskId(1)).unwrap().period(), Time::new(20));
        assert!(ts.get(TaskId(42)).is_none());
        assert_eq!(ts.max_period(), Time::new(40));
        assert_eq!(ts.max_deadline(), Time::new(40));
        assert_eq!(TaskSet::new().max_period(), Time::ZERO);
    }

    #[test]
    fn iteration_traits() {
        let ts = sample();
        let ids: Vec<u32> = (&ts).into_iter().map(|t| t.id().0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        let collected: TaskSet = ts.clone().into_iter().collect();
        assert_eq!(collected, ts);
        let mut ext = TaskSet::new();
        ext.extend(ts.clone().into_tasks());
        assert_eq!(ext.len(), 4);
    }

    #[test]
    fn display_lists_tasks() {
        let s = sample().to_string();
        assert!(s.contains("TaskSet (4 tasks):"));
        assert!(s.contains("τ0"));
        assert!(s.contains("τ3"));
    }

    #[test]
    fn accumulate_matches_from_scratch_bitwise() {
        // The incremental admission layer relies on running sums being
        // bit-identical to a recomputation in insertion order.
        let ts = sample();
        let mut running = SystemUtilization::default();
        for t in &ts {
            running.accumulate(t);
        }
        let fresh = ts.system_utilization();
        assert_eq!(running.u_ll.to_bits(), fresh.u_ll.to_bits());
        assert_eq!(running.u_hl.to_bits(), fresh.u_hl.to_bits());
        assert_eq!(running.u_hh.to_bits(), fresh.u_hh.to_bits());
        let extra = Task::hi(9, 30, 3, 7).unwrap();
        let candidate = running.with_task(&extra);
        let mut grown = ts.clone();
        grown.push_unchecked(extra);
        let fresh = grown.system_utilization();
        assert_eq!(candidate.u_hl.to_bits(), fresh.u_hl.to_bits());
        assert_eq!(candidate.u_hh.to_bits(), fresh.u_hh.to_bits());
    }

    #[test]
    fn remove_by_id_preserves_order() {
        let mut ts = sample();
        let removed = ts.remove(TaskId(1)).unwrap();
        assert_eq!(removed.id(), TaskId(1));
        let ids: Vec<u32> = ts.iter().map(|t| t.id().0).collect();
        assert_eq!(ids, vec![0, 2, 3]);
        assert!(ts.remove(TaskId(1)).is_none());
    }

    #[test]
    fn empty_set_statistics() {
        let ts = TaskSet::new();
        let u = ts.system_utilization();
        assert_eq!(u.u_ll, 0.0);
        assert_eq!(u.u_hl, 0.0);
        assert_eq!(u.u_hh, 0.0);
        assert_eq!(ts.utilization_difference(), 0.0);
        assert_eq!(ts.deadline_kind(), DeadlineKind::Implicit);
    }
}
