//! Service-level throughput/latency benchmark: the `BENCH_service.json`
//! artifact CI uploads to track the admission-control server.
//!
//! The workload replays online task arrivals against a live server, two
//! ways, over one pipelined connection:
//!
//! * **cold** — the stateless path: every arrival re-evaluates the whole
//!   prefix with an `eval` request (a from-scratch partition of all
//!   tasks seen so far — what a client must do without sessions);
//! * **warm** — the session path: `open_session` once per task set, then
//!   one `admit` per arrival against the persistent cluster (incremental
//!   verdicts on warm per-processor analysis state).
//!
//! Both phases pipeline the same number of in-flight requests, so the
//! comparison isolates the analysis cost, not protocol round-trips.
//! The headline number is `speedup` — warm decisions/sec over cold
//! decisions/sec; the service exists because this is large.
//!
//! An optional **overload burst** opens more simultaneous connections
//! than the server's pool + queue can hold and counts the typed
//! `{"type": "overload"}` sheds — exercising backpressure end to end.
//!
//! With [`ServiceBenchConfig::retries`] set, the benchmark client
//! retries refused connects and shed (overload-replied) phase
//! connections with linear backoff, and the warm phase switches to
//! *named* sessions with `op_id`-tagged admits — so a retried phase
//! replays committed operations idempotently instead of double-applying
//! them on a journaled server. [`ServiceBenchConfig::journal`] turns the
//! same durable workload on for the in-process server.

use crate::analysis_perf::uniprocessor_corpus;
use crate::protocol::{Envelope, EvalRequest, Reply, Request, RequestId};
use crate::server::{Server, ServerConfig};
use mcsched_core::AlgorithmRegistry;
use netframe::{write_frame, FrameReader};
use serde::Serialize;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader};
use std::net::TcpStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// What to run and where (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct ServiceBenchConfig {
    /// Server to benchmark; `None` starts an in-process server on a
    /// loopback port (workers 2, queue depth 2 — small enough that the
    /// burst phase sheds deterministically).
    pub addr: Option<String>,
    /// Algorithm for both phases.
    pub algorithm: String,
    /// Cluster size for sessions and `eval` requests.
    pub m: usize,
    /// Task sets replayed (each contributes `n ∈ [m+1, 5m]` arrivals).
    pub sets: usize,
    /// Corpus seed.
    pub seed: u64,
    /// Requests kept in flight on the benchmark connection.
    pub pipeline: usize,
    /// Connections to open in the overload burst (0 skips the phase).
    pub burst: usize,
    /// Finish by asking the server to shut down (in-band `shutdown` for
    /// an external server, the handle for an in-process one).
    pub shutdown_after: bool,
    /// Bounded retries on refused connects and shed phase connections
    /// (`0` fails fast). Any positive value also switches the warm
    /// phase to named sessions with idempotent `op_id` admits.
    pub retries: usize,
    /// Linear backoff between retries: attempt `k` sleeps `k *
    /// backoff_ms` milliseconds first.
    pub backoff_ms: u64,
    /// Journal path for the in-process server (ignored with an external
    /// [`ServiceBenchConfig::addr`] — the external server owns its
    /// journal). Implies named sessions + `op_id` admits, like
    /// [`ServiceBenchConfig::retries`].
    pub journal: Option<std::path::PathBuf>,
}

impl Default for ServiceBenchConfig {
    fn default() -> Self {
        ServiceBenchConfig {
            addr: None,
            algorithm: "CU-UDP-ECDF".to_owned(),
            m: 4,
            sets: 40,
            seed: 42,
            pipeline: 32,
            burst: 8,
            shutdown_after: false,
            retries: 0,
            backoff_ms: 50,
            journal: None,
        }
    }
}

/// Latency/throughput totals for one phase.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PhaseStats {
    /// Requests sent (warm includes one `open_session` per set).
    pub requests: usize,
    /// Positive verdicts (schedulable evals / admitted tasks).
    pub accepted: usize,
    /// Wall-clock for the whole phase, in milliseconds.
    pub elapsed_ms: f64,
    /// Requests per second over the phase.
    pub throughput_rps: f64,
    /// Median request latency (send to reply, pipelined), microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
}

/// Outcome of the overload burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct OverloadStats {
    /// Connections opened in the burst.
    pub connections: usize,
    /// Connections shed with a typed overload reply.
    pub overloads: usize,
}

/// The full service benchmark (serialized to `BENCH_service.json`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServiceBenchReport {
    /// Algorithm benchmarked.
    pub algorithm: String,
    /// Cluster size.
    pub m: usize,
    /// Task sets replayed.
    pub sets: usize,
    /// Corpus seed.
    pub seed: u64,
    /// Total arrivals (admission decisions) per phase.
    pub arrivals: usize,
    /// In-flight request window.
    pub pipeline: usize,
    /// The stateless per-arrival re-evaluation phase.
    pub cold: PhaseStats,
    /// The session phase.
    pub warm: PhaseStats,
    /// Warm decisions/sec over cold decisions/sec
    /// (= cold elapsed / warm elapsed; both phases decide `arrivals`
    /// admissions).
    pub speedup: f64,
    /// The backpressure burst, when run.
    pub overload: Option<OverloadStats>,
    /// Connect/shed retries the client spent across both phases.
    pub retries_used: usize,
}

/// A pipelining JSONL client over one TCP connection.
struct Client {
    writer: TcpStream,
    frames: FrameReader<BufReader<TcpStream>>,
    next_id: u64,
}

impl Client {
    fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            frames: FrameReader::new(reader, 1 << 20),
            next_id: 0,
        })
    }

    /// Sends one request with a fresh numeric id; returns the id.
    fn send(&mut self, request: &Request) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let line = Envelope::with_id(RequestId::Num(id), request.clone()).render();
        write_frame(&mut self.writer, &line)?;
        Ok(id)
    }

    /// Receives the next reply.
    fn recv(&mut self) -> io::Result<(Option<RequestId>, Reply)> {
        let line = self
            .frames
            .next_frame()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
            })?;
        crate::protocol::parse_reply(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}: {line}")))
    }
}

/// Streams `requests` through the client with up to `window` in flight,
/// checking id echoes and counting positive verdicts.
fn run_phase(client: &mut Client, requests: &[Request], window: usize) -> io::Result<PhaseStats> {
    let window = window.max(1);
    let mut latencies_us: Vec<f64> = Vec::with_capacity(requests.len());
    let mut accepted = 0usize;
    let mut inflight: VecDeque<(u64, Instant)> = VecDeque::with_capacity(window);
    let mut pending = requests.iter();
    let start = Instant::now();
    loop {
        while inflight.len() < window {
            match pending.next() {
                Some(req) => {
                    let id = client.send(req)?;
                    inflight.push_back((id, Instant::now()));
                }
                None => break,
            }
        }
        let Some((id, sent)) = inflight.pop_front() else {
            break;
        };
        let (reply_id, reply) = client.recv()?;
        latencies_us.push(sent.elapsed().as_secs_f64() * 1e6);
        if reply_id != Some(RequestId::Num(id)) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("reply out of order: expected id {id}, got {reply_id:?}"),
            ));
        }
        match reply {
            Reply::Eval(r) => accepted += usize::from(r.schedulable),
            Reply::Admit(a) => accepted += usize::from(a.admitted),
            Reply::Session(_) | Reply::Remove(_) | Reply::Query(_) => {}
            // A shed connection gets one overload reply before any
            // request is processed — retryable (ConnectionRefused, so
            // `run_phase_with_retry` can tell it from a protocol bug).
            Reply::Overload { error } => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("connection shed: {error}"),
                ));
            }
            Reply::Error { error } => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("server answered request {id} with an error: {error}"),
                ));
            }
            Reply::Closed { reason } => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("server closed the connection mid-phase: {reason}"),
                ));
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    latencies_us.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        if latencies_us.is_empty() {
            return 0.0;
        }
        let idx = ((p / 100.0) * (latencies_us.len() - 1) as f64).round() as usize;
        latencies_us[idx]
    };
    Ok(PhaseStats {
        requests: latencies_us.len(),
        accepted,
        elapsed_ms: elapsed * 1e3,
        throughput_rps: if elapsed > 0.0 {
            latencies_us.len() as f64 / elapsed
        } else {
            f64::INFINITY
        },
        p50_us: pct(50.0),
        p95_us: pct(95.0),
        p99_us: pct(99.0),
    })
}

/// Connects with up to `retries` extra attempts on a refused connect,
/// sleeping `attempt * backoff_ms` before each retry.
fn connect_with_retry(
    addr: &str,
    retries: usize,
    backoff_ms: u64,
    retries_used: &mut usize,
) -> io::Result<Client> {
    let mut attempt = 0usize;
    loop {
        match Client::connect(addr) {
            Ok(client) => return Ok(client),
            Err(e) if attempt < retries => {
                attempt += 1;
                *retries_used += 1;
                eprintln!("[bench-service] connect failed ({e}); retry {attempt}/{retries}");
                std::thread::sleep(Duration::from_millis(backoff_ms * attempt as u64));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Runs one phase, reconnecting and restarting on a shed connection
/// (bounded by `retries`). Restart-from-scratch is safe: a shed happens
/// before the server reads any request, and the `op_id`s on retried
/// workloads make replays of committed admits idempotent on a journaled
/// server besides.
fn run_phase_with_retry(
    client: &mut Client,
    addr: &str,
    requests: &[Request],
    window: usize,
    retries: usize,
    backoff_ms: u64,
    retries_used: &mut usize,
) -> io::Result<PhaseStats> {
    let mut attempt = 0usize;
    loop {
        match run_phase(client, requests, window) {
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused && attempt < retries => {
                attempt += 1;
                *retries_used += 1;
                eprintln!("[bench-service] phase shed ({e}); retry {attempt}/{retries}");
                std::thread::sleep(Duration::from_millis(backoff_ms * attempt as u64));
                *client = connect_with_retry(addr, retries, backoff_ms, retries_used)?;
            }
            other => return other,
        }
    }
}

/// Opens `count` extra connections as fast as possible and counts the
/// typed overload sheds. Connections the server *does* take are held
/// open until the burst ends, so they keep occupying pool capacity.
fn overload_burst(addr: &str, count: usize) -> OverloadStats {
    let mut held = Vec::new();
    let mut overloads = 0usize;
    for _ in 0..count {
        let Ok(stream) = TcpStream::connect(addr) else {
            continue;
        };
        let _ = stream.set_read_timeout(Some(Duration::from_millis(300)));
        let mut line = String::new();
        let mut reader = match stream.try_clone() {
            Ok(clone) => BufReader::new(clone),
            Err(_) => continue,
        };
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 && line.contains("\"type\":\"overload\"") => overloads += 1,
            // No reply within the timeout: the connection was accepted
            // (queued or being served) — keep it open to hold the slot.
            _ => held.push(stream),
        }
    }
    drop(held);
    OverloadStats {
        connections: count,
        overloads,
    }
}

/// Runs the benchmark against `config.addr`, or an in-process server
/// when none is given. See the [module docs](self) for the phases.
///
/// # Errors
///
/// Propagates connection failures and protocol violations (an error
/// reply mid-phase is a violation: the workload is well-formed).
pub fn run_service_bench(config: &ServiceBenchConfig) -> io::Result<ServiceBenchReport> {
    let corpus = uniprocessor_corpus(config.m, config.sets, config.seed);
    let arrivals: usize = corpus.iter().map(|ts| ts.len()).sum();

    // Cold: every arrival re-evaluates the whole prefix, from scratch.
    let mut cold_requests = Vec::with_capacity(arrivals);
    for ts in &corpus {
        for i in 1..=ts.len() {
            let mut prefix = mcsched_model::TaskSet::with_capacity(i);
            for task in ts.iter().take(i) {
                prefix.push_unchecked(*task);
            }
            cold_requests.push(Request::Eval(EvalRequest {
                algorithm: config.algorithm.clone(),
                m: config.m,
                tasks: prefix,
            }));
        }
    }

    // Warm: one session per set (reopening replaces it), one admit per
    // arrival. The durable variant (retries or a journal) names each
    // session and tags every admit with an op_id, so replays after a
    // retry hit the journal's idempotency window instead of
    // double-committing.
    let durable = config.retries > 0 || config.journal.is_some();
    let mut warm_requests = Vec::with_capacity(arrivals + corpus.len());
    for (set, ts) in corpus.iter().enumerate() {
        warm_requests.push(Request::OpenSession {
            algorithm: config.algorithm.clone(),
            m: config.m,
            session: durable.then(|| format!("bench-{}-{set}", config.seed)),
        });
        for (i, task) in ts.iter().enumerate() {
            warm_requests.push(Request::Admit {
                task: *task,
                op_id: durable.then(|| format!("b{set}-{i}")),
            });
        }
    }

    let in_process = match &config.addr {
        Some(_) => None,
        None => {
            let server = Server::bind(
                AlgorithmRegistry::standard(),
                ServerConfig {
                    workers: 2,
                    queue_depth: 2,
                    allow_shutdown: true,
                    journal: config.journal.clone(),
                    ..ServerConfig::default()
                },
            )?;
            let handle = server.handle();
            let thread = std::thread::spawn(move || server.run());
            Some((handle, thread))
        }
    };
    let addr = match (&config.addr, &in_process) {
        (Some(addr), _) => addr.clone(),
        (None, Some((handle, _))) => handle.addr().to_string(),
        (None, None) => unreachable!("in-process server exists when no addr is given"),
    };

    let mut retries_used = 0usize;
    let result = (|| {
        let mut client =
            connect_with_retry(&addr, config.retries, config.backoff_ms, &mut retries_used)?;
        let cold = run_phase_with_retry(
            &mut client,
            &addr,
            &cold_requests,
            config.pipeline,
            config.retries,
            config.backoff_ms,
            &mut retries_used,
        )?;
        let warm = run_phase_with_retry(
            &mut client,
            &addr,
            &warm_requests,
            config.pipeline,
            config.retries,
            config.backoff_ms,
            &mut retries_used,
        )?;
        let overload = if config.burst > 0 {
            Some(overload_burst(&addr, config.burst))
        } else {
            None
        };
        if config.shutdown_after && config.addr.is_some() {
            // External server: stop it in-band (it must have been
            // started with shutdown enabled).
            client.send(&Request::Shutdown)?;
            let (_, reply) = client.recv()?;
            if !matches!(reply, Reply::Closed { .. }) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("shutdown request was refused: {reply:?}"),
                ));
            }
        }
        let speedup = if warm.elapsed_ms > 0.0 {
            cold.elapsed_ms / warm.elapsed_ms
        } else {
            f64::INFINITY
        };
        Ok(ServiceBenchReport {
            algorithm: config.algorithm.clone(),
            m: config.m,
            sets: corpus.len(),
            seed: config.seed,
            arrivals,
            pipeline: config.pipeline,
            cold,
            warm,
            speedup,
            overload,
            retries_used,
        })
    })();

    if let Some((handle, thread)) = in_process {
        handle.shutdown();
        let _ = thread.join().expect("server thread panicked");
    }
    result
}

/// Writes the report as pretty-printed JSON.
pub fn write_service_json(report: &ServiceBenchReport, path: &Path) -> io::Result<()> {
    let json = serde_json::to_string_pretty(report)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, json + "\n")
}

/// Renders the report as a compact human-readable summary.
pub fn render_service_bench(report: &ServiceBenchReport) -> String {
    let mut out = format!(
        "service bench: {} on m={} — {} arrivals over {} sets (pipeline {})\n\
         | phase | requests | accepted | elapsed ms | req/s | p50 µs | p95 µs | p99 µs |\n\
         |----|----|----|----|----|----|----|----|\n",
        report.algorithm, report.m, report.arrivals, report.sets, report.pipeline
    );
    for (name, phase) in [("cold", &report.cold), ("warm", &report.warm)] {
        out.push_str(&format!(
            "| {} | {} | {} | {:.1} | {:.0} | {:.0} | {:.0} | {:.0} |\n",
            name,
            phase.requests,
            phase.accepted,
            phase.elapsed_ms,
            phase.throughput_rps,
            phase.p50_us,
            phase.p95_us,
            phase.p99_us
        ));
    }
    out.push_str(&format!("warm/cold speedup: {:.2}x\n", report.speedup));
    if let Some(o) = &report.overload {
        out.push_str(&format!(
            "overload burst: {}/{} connections shed\n",
            o.overloads, o.connections
        ));
    }
    if report.retries_used > 0 {
        out.push_str(&format!("client retries spent: {}\n", report.retries_used));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_end_to_end_in_process() {
        let config = ServiceBenchConfig {
            sets: 3,
            m: 2,
            pipeline: 4,
            burst: 0,
            ..ServiceBenchConfig::default()
        };
        let report = run_service_bench(&config).unwrap();
        assert_eq!(report.sets, 3);
        assert!(report.arrivals >= 3 * 3, "n >= m+1 per set");
        assert_eq!(report.cold.requests, report.arrivals);
        assert_eq!(report.warm.requests, report.arrivals + report.sets);
        assert!(report.cold.p50_us <= report.cold.p99_us);
        assert!(report.speedup > 0.0);
        let text = render_service_bench(&report);
        assert!(text.contains("speedup"), "{text}");
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"warm\""));
    }

    #[test]
    fn durable_bench_journals_named_sessions() {
        let path =
            std::env::temp_dir().join(format!("mcexp-bench-journal-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let config = ServiceBenchConfig {
            sets: 2,
            m: 2,
            pipeline: 4,
            burst: 0,
            retries: 2,
            backoff_ms: 1,
            journal: Some(path.clone()),
            ..ServiceBenchConfig::default()
        };
        let report = run_service_bench(&config).unwrap();
        assert_eq!(report.retries_used, 0, "no faults, no retries");
        let journal = std::fs::read_to_string(&path).unwrap();
        assert!(
            journal.contains("\"s\":\"bench-42-0\""),
            "warm sessions are named and journaled: {journal}"
        );
        assert!(
            journal.contains("\"op\":\"b0-0\""),
            "admits carry idempotent op ids: {journal}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn overload_burst_sheds_when_saturated() {
        // Tiny pool: 1 worker, queue of 1, degraded tier disabled so
        // overflow sheds instead of spilling. With 6 connections at
        // least a few must be shed with a typed overload reply.
        let server = Server::bind(
            AlgorithmRegistry::standard(),
            ServerConfig {
                workers: 1,
                queue_depth: 1,
                degraded_workers: 0,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run());
        let stats = overload_burst(&handle.addr().to_string(), 6);
        assert_eq!(stats.connections, 6);
        assert!(stats.overloads >= 3, "expected sheds, got {stats:?}");
        handle.shutdown();
        let server_stats = thread.join().unwrap().unwrap();
        assert_eq!(server_stats.overloads as usize, stats.overloads);
    }
}
