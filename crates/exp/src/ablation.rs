//! Ablation studies for the UDP design choices (DESIGN.md per-experiment
//! index, "Ablations" row).
//!
//! Questions answered:
//!
//! 1. **Metric** — does worst-fit on `U_H^H − U_H^L` beat worst-fit on
//!    `U_H^H` alone (CA-Wu-F) or on the low-mode load?
//! 2. **Sorting** — how much of UDP's gain comes from decreasing-utilization
//!    ordering (CA-UDP vs CA-UDP(nosort))?
//! 3. **Fit direction** — worst-fit vs best-fit on the same metric.
//! 4. **CA vs CU** — criticality-aware vs -unaware ordering.
//! 5. **AMC variant** — AMC-max vs AMC-rtb under CU-UDP.
//!
//! Each ablation reports the weighted acceptance ratio (WAR) of every
//! variant over the Fig. 3 workload, so a single number summarises each
//! design decision.

use crate::algorithms::{ablation_lineup, amc_ablation_lineup, AlgoBox};
use crate::sweep::{acceptance_sweep, SweepConfig};
use mcsched_core::AdmissionStats;
use mcsched_gen::DeadlineModel;
use serde::{Deserialize, Serialize};

/// The WAR of one algorithm variant in an ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Variant name.
    pub algorithm: String,
    /// Weighted acceptance ratio on the ablation workload.
    pub war: f64,
}

/// Runs the strategy ablation (metric / sorting / fit direction / CA-CU)
/// on the Fig. 3 workload for the given `m`.
pub fn strategy_ablation(
    m: usize,
    sets_per_bucket: usize,
    seed: u64,
    threads: usize,
) -> Vec<AblationRow> {
    let cfg =
        SweepConfig::paper(m, DeadlineModel::Implicit, sets_per_bucket, seed).with_threads(threads);
    let result = acceptance_sweep(&cfg, &ablation_lineup());
    result
        .curves
        .iter()
        .map(|c| AblationRow {
            algorithm: c.algorithm.clone(),
            war: c.weighted_acceptance_ratio(),
        })
        .collect()
}

/// Runs the AMC-max vs AMC-rtb ablation on the constrained-deadline
/// workload.
pub fn amc_ablation(
    m: usize,
    sets_per_bucket: usize,
    seed: u64,
    threads: usize,
) -> Vec<AblationRow> {
    let cfg = SweepConfig::paper(m, DeadlineModel::Constrained, sets_per_bucket, seed)
        .with_threads(threads);
    let result = acceptance_sweep(&cfg, &amc_ablation_lineup());
    result
        .curves
        .iter()
        .map(|c| AblationRow {
            algorithm: c.algorithm.clone(),
            war: c.weighted_acceptance_ratio(),
        })
        .collect()
}

/// Per-algorithm admission-layer counters over a seeded corpus: how many
/// `(task, processor)` admission queries each strategy issued and how many
/// were answered incrementally vs by a full re-analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionRow {
    /// Algorithm display name.
    pub algorithm: String,
    /// Task sets judged.
    pub sets: usize,
    /// Sets accepted.
    pub accepted: usize,
    /// Aggregated admission counters.
    pub stats: AdmissionStats,
}

/// Profiles the admission layer: runs every algorithm of the line-up over
/// the same seeded corpus and aggregates its per-build
/// [`AdmissionStats`]. This is the throughput sweep of
/// [`partition_throughput`](crate::perf::partition_throughput) with the
/// timing columns dropped.
pub fn admission_profile(
    m: usize,
    sets: usize,
    seed: u64,
    algorithms: &[AlgoBox],
) -> Vec<AdmissionRow> {
    crate::perf::partition_throughput(m, sets, seed, algorithms)
        .rows
        .into_iter()
        .map(|r| AdmissionRow {
            algorithm: r.algorithm,
            sets: r.sets,
            accepted: r.accepted,
            stats: r.stats,
        })
        .collect()
}

/// Renders admission-profile rows as a markdown table.
///
/// The three `qpa *` columns surface the demand kernel's fixpoint reuse
/// (EY / ECDF states): descents started cold from the busy-window bound,
/// checks answered warm from the previous fixpoint, and low-mode probes
/// rejected by a memoised violation anchor with no descent at all. The
/// `rta seeded` column is the AMC analogue: response-time fixpoints an
/// incremental probe warm-started from cached sound lower bounds.
pub fn render_admission(rows: &[AdmissionRow]) -> String {
    let mut out = String::from(
        "| algorithm | sets | accepted | attempts | admits | incremental | full \
         | qpa cold | qpa resumed | qpa anchor | rta seeded |\n\
         |----|----|----|----|----|----|----|----|----|----|----|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            r.algorithm,
            r.sets,
            r.accepted,
            r.stats.attempts,
            r.stats.admits,
            r.stats.incremental,
            r.stats.full,
            r.stats.qpa_cold,
            r.stats.qpa_resumed,
            r.stats.qpa_anchor_hits,
            r.stats.rta_seeded
        ));
    }
    out
}

/// Renders ablation rows as a markdown table, best first.
pub fn render_ablation(title: &str, mut rows: Vec<AblationRow>) -> String {
    rows.sort_by(|a, b| b.war.total_cmp(&a.war));
    let mut out = format!("| {title} | WAR |\n|----|-----|\n");
    for r in rows {
        out.push_str(&format!("| {} | {:.4} |\n", r.algorithm, r.war));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_ablation_smoke() {
        let rows = strategy_ablation(2, 4, 5, 2);
        assert!(rows.len() >= 6);
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.war)));
        assert!(rows.iter().any(|r| r.algorithm == "CA-UDP-EDF-VD"));
    }

    #[test]
    fn amc_ablation_dominance() {
        let rows = amc_ablation(2, 6, 9, 2);
        let war = |name: &str| {
            rows.iter()
                .find(|r| r.algorithm.contains(name))
                .map(|r| r.war)
                .unwrap()
        };
        // AMC-max dominates AMC-rtb, so its WAR can never be lower.
        assert!(war("max") >= war("rtb") - 1e-9);
    }

    #[test]
    fn admission_profile_counts_queries() {
        use crate::algorithms::perf_lineup;
        let rows = admission_profile(2, 4, 7, &perf_lineup());
        assert_eq!(rows.len(), perf_lineup().len());
        for r in &rows {
            assert_eq!(r.sets, 4);
            assert!(r.stats.attempts >= r.stats.admits);
            assert_eq!(r.stats.attempts, r.stats.incremental + r.stats.full);
            // The native states answer every query without a full
            // clone-and-retest re-analysis on the reject fast path;
            // EDF-VD answers all of them incrementally.
            if r.algorithm.contains("EDF-VD") {
                assert_eq!(r.stats.full, 0, "{}", r.algorithm);
            }
            // The EY/ECDF demand kernel reports its fixpoint reuse;
            // any tuner activity at all implies cold descents ran.
            if r.algorithm.ends_with("-EY") || r.algorithm.ends_with("-ECDF") {
                assert!(
                    r.stats.qpa_cold > 0,
                    "{}: no QPA activity recorded",
                    r.algorithm
                );
            }
            // The AMC states report warm-seeded suffix fixpoints whenever
            // any probe ran incrementally.
            if (r.algorithm.contains("AMC-rtb") && !r.algorithm.contains("OPA"))
                || r.algorithm.contains("AMC-max")
            {
                assert!(
                    r.stats.incremental == 0 || r.stats.rta_seeded > 0,
                    "{}: incremental AMC probes but no seeded fixpoints",
                    r.algorithm
                );
            }
        }
        let table = render_admission(&rows);
        assert!(table.contains("incremental"));
        assert!(table.contains("qpa resumed"));
        assert!(table.contains("rta seeded"));
    }

    #[test]
    fn render_sorts_best_first() {
        let rows = vec![
            AblationRow {
                algorithm: "weak".into(),
                war: 0.3,
            },
            AblationRow {
                algorithm: "strong".into(),
                war: 0.9,
            },
        ];
        let t = render_ablation("variant", rows);
        let strong_pos = t.find("strong").unwrap();
        let weak_pos = t.find("weak").unwrap();
        assert!(strong_pos < weak_pos);
    }
}
