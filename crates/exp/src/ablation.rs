//! Ablation studies for the UDP design choices (DESIGN.md per-experiment
//! index, "Ablations" row).
//!
//! Questions answered:
//!
//! 1. **Metric** — does worst-fit on `U_H^H − U_H^L` beat worst-fit on
//!    `U_H^H` alone (CA-Wu-F) or on the low-mode load?
//! 2. **Sorting** — how much of UDP's gain comes from decreasing-utilization
//!    ordering (CA-UDP vs CA-UDP(nosort))?
//! 3. **Fit direction** — worst-fit vs best-fit on the same metric.
//! 4. **CA vs CU** — criticality-aware vs -unaware ordering.
//! 5. **AMC variant** — AMC-max vs AMC-rtb under CU-UDP.
//!
//! Each ablation reports the weighted acceptance ratio (WAR) of every
//! variant over the Fig. 3 workload, so a single number summarises each
//! design decision.

use crate::algorithms::{ablation_lineup, amc_ablation_lineup};
use crate::sweep::{acceptance_sweep, SweepConfig};
use mcsched_gen::DeadlineModel;
use serde::{Deserialize, Serialize};

/// The WAR of one algorithm variant in an ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Variant name.
    pub algorithm: String,
    /// Weighted acceptance ratio on the ablation workload.
    pub war: f64,
}

/// Runs the strategy ablation (metric / sorting / fit direction / CA-CU)
/// on the Fig. 3 workload for the given `m`.
pub fn strategy_ablation(
    m: usize,
    sets_per_bucket: usize,
    seed: u64,
    threads: usize,
) -> Vec<AblationRow> {
    let cfg =
        SweepConfig::paper(m, DeadlineModel::Implicit, sets_per_bucket, seed).with_threads(threads);
    let result = acceptance_sweep(&cfg, &ablation_lineup());
    result
        .curves
        .iter()
        .map(|c| AblationRow {
            algorithm: c.algorithm.clone(),
            war: c.weighted_acceptance_ratio(),
        })
        .collect()
}

/// Runs the AMC-max vs AMC-rtb ablation on the constrained-deadline
/// workload.
pub fn amc_ablation(
    m: usize,
    sets_per_bucket: usize,
    seed: u64,
    threads: usize,
) -> Vec<AblationRow> {
    let cfg = SweepConfig::paper(m, DeadlineModel::Constrained, sets_per_bucket, seed)
        .with_threads(threads);
    let result = acceptance_sweep(&cfg, &amc_ablation_lineup());
    result
        .curves
        .iter()
        .map(|c| AblationRow {
            algorithm: c.algorithm.clone(),
            war: c.weighted_acceptance_ratio(),
        })
        .collect()
}

/// Renders ablation rows as a markdown table, best first.
pub fn render_ablation(title: &str, mut rows: Vec<AblationRow>) -> String {
    rows.sort_by(|a, b| b.war.partial_cmp(&a.war).expect("finite"));
    let mut out = format!("| {title} | WAR |\n|----|-----|\n");
    for r in rows {
        out.push_str(&format!("| {} | {:.4} |\n", r.algorithm, r.war));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_ablation_smoke() {
        let rows = strategy_ablation(2, 4, 5, 2);
        assert!(rows.len() >= 6);
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.war)));
        assert!(rows.iter().any(|r| r.algorithm == "CA-UDP-EDF-VD"));
    }

    #[test]
    fn amc_ablation_dominance() {
        let rows = amc_ablation(2, 6, 9, 2);
        let war = |name: &str| {
            rows.iter()
                .find(|r| r.algorithm.contains(name))
                .map(|r| r.war)
                .unwrap()
        };
        // AMC-max dominates AMC-rtb, so its WAR can never be lower.
        assert!(war("max") >= war("rtb") - 1e-9);
    }

    #[test]
    fn render_sorts_best_first() {
        let rows = vec![
            AblationRow {
                algorithm: "weak".into(),
                war: 0.3,
            },
            AblationRow {
                algorithm: "strong".into(),
                war: 0.9,
            },
        ];
        let t = render_ablation("variant", rows);
        let strong_pos = t.find("strong").unwrap();
        let weak_pos = t.find("weak").unwrap();
        assert!(strong_pos < weak_pos);
    }
}
