//! `mcexp` — regenerate the figures of the DATE 2017 UDP partitioning
//! paper.
//!
//! ```text
//! mcexp --fig 3 [--m 2,4,8] [--sets N] [--seed S] [--threads T] [--out DIR]
//! mcexp --fig 4 | --fig 5 | --fig 6a | --fig 6b
//! mcexp --headline [--sets N]
//! mcexp --ablation [--m M]
//! mcexp --all            # everything, at the configured --sets
//! ```
//!
//! Defaults: `--sets 200` (the paper uses 1000; raise it for final runs),
//! `--seed 42`, `--threads` = available parallelism.

use mcsched_exp::ablation::{
    admission_profile, amc_ablation, render_ablation, render_admission, strategy_ablation,
};
use mcsched_exp::algorithms::perf_lineup;
use mcsched_exp::figures::{
    fig3_panel, fig4_panel, fig5_panel, fig6a, fig6b, render_war_table, FIGURE_M,
};
use mcsched_exp::headline::{headlines, render_headlines};
use mcsched_exp::isolation::{isolation_experiment, render_isolation};
use mcsched_exp::perf::{partition_throughput, render_perf, write_perf_json};
use mcsched_exp::report::{render_table, write_csv};
use mcsched_exp::sweep::default_threads;
use std::path::PathBuf;

#[derive(Debug, Clone)]
struct Args {
    fig: Option<String>,
    m_values: Vec<usize>,
    sets: usize,
    seed: u64,
    threads: usize,
    out: Option<PathBuf>,
    headline: bool,
    ablation: bool,
    isolation: bool,
    all: bool,
    perf_json: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        fig: None,
        m_values: FIGURE_M.to_vec(),
        sets: 200,
        seed: 42,
        threads: default_threads(),
        out: None,
        headline: false,
        ablation: false,
        isolation: false,
        all: false,
        perf_json: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--fig" => args.fig = Some(value(&mut i)?),
            "--m" => {
                args.m_values = value(&mut i)?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("bad --m list: {e}"))?;
            }
            "--sets" => {
                args.sets = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --sets: {e}"))?;
            }
            "--seed" => {
                args.seed = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--threads" => {
                args.threads = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--out" => args.out = Some(PathBuf::from(value(&mut i)?)),
            "--perf-json" => args.perf_json = Some(PathBuf::from(value(&mut i)?)),
            "--headline" => args.headline = true,
            "--ablation" => args.ablation = true,
            "--isolation" => args.isolation = true,
            "--all" => args.all = true,
            "--help" | "-h" => {
                println!("{}", HELP);
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    Ok(args)
}

const HELP: &str = "mcexp — regenerate the DATE 2017 UDP partitioning figures
usage: mcexp [--fig 3|4|5|6a|6b] [--headline] [--ablation] [--isolation] [--all]
             [--m 2,4,8] [--sets N] [--seed S] [--threads T] [--out DIR]
             [--perf-json FILE]   # partition-throughput artifact (BENCH_partition.json)";

fn run_panel_figure(
    fig: &str,
    args: &Args,
    panel: fn(usize, usize, u64, usize) -> mcsched_exp::SweepResult,
) {
    for &m in &args.m_values {
        eprintln!("[mcexp] {fig} m={m} sets/bucket={} ...", args.sets);
        let result = panel(m, args.sets, args.seed, args.threads);
        println!("\n## {fig} (m = {m})\n");
        println!("{}", render_table(&result));
        if let Some(dir) = &args.out {
            let path = dir.join(format!("{}_m{}.csv", fig.to_lowercase(), m));
            if let Err(e) = write_csv(&result, &path) {
                eprintln!("[mcexp] failed to write {}: {e}", path.display());
            } else {
                eprintln!("[mcexp] wrote {}", path.display());
            }
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{HELP}");
            std::process::exit(2);
        }
    };

    let mut did_something = false;
    let figs: Vec<String> = if args.all {
        vec!["3", "4", "5", "6a", "6b"]
            .into_iter()
            .map(String::from)
            .collect()
    } else {
        args.fig.clone().into_iter().collect()
    };

    for fig in &figs {
        did_something = true;
        match fig.as_str() {
            "3" => run_panel_figure("Fig3", &args, fig3_panel),
            "4" => run_panel_figure("Fig4", &args, fig4_panel),
            "5" => run_panel_figure("Fig5", &args, fig5_panel),
            "6a" => {
                eprintln!("[mcexp] Fig6a sets/bucket={} ...", args.sets);
                let points = fig6a(args.sets, args.seed, args.threads);
                println!("\n## Fig6a (WAR vs P_H, implicit, EDF-VD)\n");
                println!("{}", render_war_table(&points));
            }
            "6b" => {
                eprintln!("[mcexp] Fig6b sets/bucket={} ...", args.sets);
                let points = fig6b(args.sets, args.seed, args.threads);
                println!("\n## Fig6b (WAR vs P_H, constrained, AMC/ECDF)\n");
                println!("{}", render_war_table(&points));
            }
            other => {
                eprintln!("error: unknown figure {other}\n{HELP}");
                std::process::exit(2);
            }
        }
    }

    if args.headline || args.all {
        did_something = true;
        eprintln!("[mcexp] headline numbers (sets/bucket={}) ...", args.sets);
        let hs = headlines(args.sets, args.seed, args.threads);
        println!("\n## Headline improvements (paper §IV)\n");
        println!("{}", render_headlines(&hs));
    }

    if args.ablation || args.all {
        did_something = true;
        for &m in &args.m_values {
            eprintln!("[mcexp] strategy ablation m={m} ...");
            let rows = strategy_ablation(m, args.sets, args.seed, args.threads);
            println!("\n## Strategy ablation (m = {m}, implicit, EDF-VD)\n");
            println!("{}", render_ablation("strategy", rows));
        }
        let m = args.m_values.first().copied().unwrap_or(2);
        eprintln!("[mcexp] AMC ablation m={m} ...");
        let rows = amc_ablation(m, args.sets, args.seed, args.threads);
        println!("\n## AMC variant ablation (m = {m}, constrained)\n");
        println!("{}", render_ablation("AMC variant", rows));

        eprintln!(
            "[mcexp] admission-layer profile m={m} sets={} ...",
            args.sets
        );
        let rows = admission_profile(m, args.sets, args.seed, &perf_lineup());
        println!("\n## Admission-layer profile (m = {m}, seeded corpus)\n");
        println!("{}", render_admission(&rows));
    }

    if args.isolation || args.all {
        did_something = true;
        for &m in &args.m_values {
            eprintln!("[mcexp] isolation experiment m={m} ...");
            let r = isolation_experiment(m, args.sets.min(100), args.seed, 0.25, 20_000);
            println!("\n## Mode-switch isolation (m = {m}, 25% overruns)\n");
            println!("{}", render_isolation(&r));
        }
    }

    if let Some(path) = &args.perf_json {
        did_something = true;
        let m = args.m_values.first().copied().unwrap_or(2);
        eprintln!("[mcexp] partition throughput m={m} sets={} ...", args.sets);
        let report = partition_throughput(m, args.sets, args.seed, &perf_lineup());
        println!("\n## Partition throughput (m = {m})\n");
        println!("{}", render_perf(&report));
        match write_perf_json(&report, path) {
            Ok(()) => eprintln!("[mcexp] wrote {}", path.display()),
            Err(e) => {
                eprintln!("[mcexp] failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    if !did_something {
        println!("{}", HELP);
    }
}
