//! `mcexp` — regenerate the figures of the DATE 2017 UDP partitioning
//! paper, answer one-off schedulability requests, and serve persistent
//! admission-control sessions.
//!
//! ```text
//! mcexp sweep --fig 3 [--m 2,4,8] [--sets N] [--seed S] [--threads T] [--out DIR]
//! mcexp headline | ablation | isolation | all
//! mcexp perf [--json FILE]        # partition throughput (BENCH_partition.json)
//! mcexp analysis [--json FILE] [--gate TEST:MIN]  # per-test throughput
//!                                 # (BENCH_analysis.json, gated speedups)
//! mcexp eval [--input FILE] [--output FILE]   # JSONL request/response
//! mcexp serve [--addr H:P] [--workers N] [--queue N] [--idle-secs S]
//!             [--max-requests N] [--allow-shutdown]
//!             [--journal FILE] [--recover]
//! mcexp bench-service [--addr H:P] [--algorithm NAME] [--m M] [--sets N]
//!                     [--pipeline K] [--burst N] [--out FILE] [--shutdown]
//!                     [--retries N] [--backoff-ms MS] [--journal FILE]
//!                     [--gate-speedup X]
//! mcexp chaos [--seeds N] [--steps N] [--out FILE]
//! mcexp lint [--json | --fixable] [--baseline FILE] [--root DIR]
//! ```
//!
//! The old flag spellings (`--fig`, `--headline`, `--ablation`,
//! `--isolation`, `--all`, `--perf-json`, `--analysis-json`) still work
//! as deprecated aliases and print a pointer to the subcommand form.
//!
//! Defaults: `--sets 200` (the paper uses 1000; raise it for final runs),
//! `--seed 42`, `--threads` = available parallelism.

use mcsched_core::AlgorithmRegistry;
use mcsched_exp::ablation::{
    admission_profile, amc_ablation, render_ablation, render_admission, strategy_ablation,
};
use mcsched_exp::algorithms::perf_lineup;
use mcsched_exp::analysis_perf::{
    analysis_throughput, check_gates, parse_gate, render_analysis_perf, write_analysis_json,
};
use mcsched_exp::bench_service::{
    render_service_bench, run_service_bench, write_service_json, ServiceBenchConfig,
};
use mcsched_exp::chaos::{render_chaos, run_chaos, write_chaos_json, ChaosConfig};
use mcsched_exp::figures::{
    fig3_panel, fig4_panel, fig5_panel, fig6a, fig6b, render_war_table, FIGURE_M,
};
use mcsched_exp::headline::{headlines, render_headlines};
use mcsched_exp::isolation::{isolation_experiment, render_isolation};
use mcsched_exp::perf::{partition_throughput, render_perf, write_perf_json};
use mcsched_exp::report::{render_table, write_csv};
use mcsched_exp::server::{Server, ServerConfig};
use mcsched_exp::service::run_eval;
use mcsched_exp::sweep::default_threads;
use std::io::{BufReader, BufWriter, Write};
use std::path::PathBuf;
use std::time::Duration;

/// Ceiling on the isolation experiment's workload count: each workload
/// runs two full discrete-event simulations over a 20k-tick horizon, so
/// the experiment costs orders of magnitude more per set than a
/// schedulability sweep. `--sets` above this is clamped (with a warning
/// on stderr — never silently).
const MAX_ISOLATION_SETS: usize = 100;

#[derive(Debug, Clone)]
struct Args {
    eval: bool,
    serve: bool,
    bench: bool,
    input: Option<PathBuf>,
    output: Option<PathBuf>,
    fig: Option<String>,
    m_values: Vec<usize>,
    m_explicit: bool,
    sets: usize,
    sets_explicit: bool,
    seed: u64,
    threads: usize,
    out: Option<PathBuf>,
    headline: bool,
    ablation: bool,
    isolation: bool,
    all: bool,
    perf_json: Option<PathBuf>,
    analysis_json: Option<PathBuf>,
    perf: bool,
    analysis: bool,
    json: Option<PathBuf>,
    gates: Vec<(String, f64)>,
    // serve / bench-service options
    addr: Option<String>,
    workers: Option<usize>,
    queue: Option<usize>,
    idle_secs: Option<u64>,
    max_requests: Option<u64>,
    allow_shutdown: bool,
    algorithm: Option<String>,
    pipeline: Option<usize>,
    burst: Option<usize>,
    shutdown: bool,
    journal: Option<PathBuf>,
    recover: bool,
    retries: Option<usize>,
    backoff_ms: Option<u64>,
    gate_speedup: Option<f64>,
    // chaos options
    chaos: bool,
    seeds: Option<u64>,
    steps: Option<usize>,
    help: bool,
    // lint options
    lint: bool,
    lint_json: bool,
    lint_fixable: bool,
    lint_baseline: Option<PathBuf>,
    lint_root: PathBuf,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        eval: false,
        serve: false,
        bench: false,
        input: None,
        output: None,
        fig: None,
        m_values: FIGURE_M.to_vec(),
        m_explicit: false,
        sets: 200,
        sets_explicit: false,
        seed: 42,
        threads: default_threads(),
        out: None,
        headline: false,
        ablation: false,
        isolation: false,
        all: false,
        perf_json: None,
        analysis_json: None,
        perf: false,
        analysis: false,
        json: None,
        gates: Vec::new(),
        addr: None,
        workers: None,
        queue: None,
        idle_secs: None,
        max_requests: None,
        allow_shutdown: false,
        algorithm: None,
        pipeline: None,
        burst: None,
        shutdown: false,
        journal: None,
        recover: false,
        retries: None,
        backoff_ms: None,
        gate_speedup: None,
        chaos: false,
        seeds: None,
        steps: None,
        help: false,
        lint: false,
        lint_json: false,
        lint_fixable: false,
        lint_baseline: None,
        lint_root: PathBuf::from("."),
    };
    let mut i = 0;

    // Leading bare word = subcommand. Flags-only invocations fall
    // through to the deprecated spellings below.
    let mut subcommand = false;
    if let Some(first) = argv.first() {
        subcommand = true;
        match first.as_str() {
            "sweep" => {}
            "headline" => args.headline = true,
            "ablation" => args.ablation = true,
            "isolation" => args.isolation = true,
            "all" => args.all = true,
            "perf" => args.perf = true,
            "analysis" => args.analysis = true,
            "eval" => args.eval = true,
            "serve" => args.serve = true,
            "bench-service" => args.bench = true,
            "chaos" => args.chaos = true,
            "lint" => args.lint = true,
            "help" => {
                args.help = true;
                return Ok(args);
            }
            flag if flag.starts_with('-') => subcommand = false,
            other => {
                return Err(format!(
                    "unknown subcommand `{other}` (expected sweep, headline, ablation, \
                     isolation, all, perf, analysis, eval, serve, bench-service, chaos, \
                     or lint)"
                ));
            }
        }
        if subcommand {
            i = 1;
        }
    }

    let deprecated = |old: &str, new: &str| {
        eprintln!("[mcexp] note: `{old}` is deprecated; use `mcexp {new}`");
    };

    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
    };

    // `lint` takes its own flag set: `--json` here is a boolean (emit the
    // JSON report), unlike the artifact-path `--json FILE` of perf/analysis.
    if args.lint {
        while i < argv.len() {
            match argv[i].as_str() {
                "--json" => args.lint_json = true,
                "--fixable" => args.lint_fixable = true,
                "--baseline" => args.lint_baseline = Some(PathBuf::from(value(&mut i)?)),
                "--root" => args.lint_root = PathBuf::from(value(&mut i)?),
                "--help" | "-h" => {
                    args.help = true;
                    return Ok(args);
                }
                other => return Err(format!("unknown argument for lint: {other}")),
            }
            i += 1;
        }
        if args.lint_json && args.lint_fixable {
            return Err("--json and --fixable are mutually exclusive".to_owned());
        }
        return Ok(args);
    }

    while i < argv.len() {
        match argv[i].as_str() {
            "--input" => args.input = Some(PathBuf::from(value(&mut i)?)),
            "--output" => args.output = Some(PathBuf::from(value(&mut i)?)),
            "--fig" => {
                if !subcommand {
                    deprecated("--fig", "sweep --fig");
                }
                args.fig = Some(value(&mut i)?);
            }
            "--m" => {
                args.m_values = value(&mut i)?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("bad --m list: {e}"))?;
                args.m_explicit = true;
            }
            "--sets" => {
                args.sets = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --sets: {e}"))?;
                args.sets_explicit = true;
            }
            "--seed" => {
                args.seed = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--threads" => {
                args.threads = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--out" => args.out = Some(PathBuf::from(value(&mut i)?)),
            "--json" => args.json = Some(PathBuf::from(value(&mut i)?)),
            "--gate" => args.gates.push(parse_gate(&value(&mut i)?)?),
            "--perf-json" => {
                deprecated("--perf-json", "perf --json");
                args.perf_json = Some(PathBuf::from(value(&mut i)?));
            }
            "--analysis-json" => {
                deprecated("--analysis-json", "analysis --json");
                args.analysis_json = Some(PathBuf::from(value(&mut i)?));
            }
            "--headline" => {
                if !subcommand {
                    deprecated("--headline", "headline");
                }
                args.headline = true;
            }
            "--ablation" => {
                if !subcommand {
                    deprecated("--ablation", "ablation");
                }
                args.ablation = true;
            }
            "--isolation" => {
                if !subcommand {
                    deprecated("--isolation", "isolation");
                }
                args.isolation = true;
            }
            "--all" => {
                if !subcommand {
                    deprecated("--all", "all");
                }
                args.all = true;
            }
            "--addr" => args.addr = Some(value(&mut i)?),
            "--workers" => {
                args.workers = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --workers: {e}"))?,
                );
            }
            "--queue" => {
                args.queue = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --queue: {e}"))?,
                );
            }
            "--idle-secs" => {
                args.idle_secs = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --idle-secs: {e}"))?,
                );
            }
            "--max-requests" => {
                args.max_requests = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --max-requests: {e}"))?,
                );
            }
            "--allow-shutdown" => args.allow_shutdown = true,
            "--algorithm" => args.algorithm = Some(value(&mut i)?),
            "--pipeline" => {
                args.pipeline = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --pipeline: {e}"))?,
                );
            }
            "--burst" => {
                args.burst = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --burst: {e}"))?,
                );
            }
            "--shutdown" => args.shutdown = true,
            "--journal" => args.journal = Some(PathBuf::from(value(&mut i)?)),
            "--recover" => args.recover = true,
            "--retries" => {
                args.retries = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --retries: {e}"))?,
                );
            }
            "--backoff-ms" => {
                args.backoff_ms = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --backoff-ms: {e}"))?,
                );
            }
            "--gate-speedup" => {
                args.gate_speedup = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --gate-speedup: {e}"))?,
                );
            }
            "--seeds" => {
                args.seeds = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --seeds: {e}"))?,
                );
            }
            "--steps" => {
                args.steps = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --steps: {e}"))?,
                );
            }
            "--help" | "-h" => {
                args.help = true;
                return Ok(args);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    validate(&args)?;
    Ok(args)
}

/// Parse-time validation: reject nonsense values with a usage error
/// (exit 2) instead of letting them surface later as a runtime failure
/// (exit 1) — or worse, as a silent empty sweep.
fn validate(args: &Args) -> Result<(), String> {
    if args.threads == 0 {
        return Err("--threads must be at least 1".to_owned());
    }
    if args.sets == 0 {
        return Err("--sets must be at least 1".to_owned());
    }
    if args.m_values.is_empty() {
        return Err("--m needs a non-empty list of processor counts".to_owned());
    }
    if args.m_values.contains(&0) {
        return Err("--m values must be at least 1".to_owned());
    }
    for (flag, v) in [
        ("--workers", args.workers),
        ("--queue", args.queue),
        ("--pipeline", args.pipeline),
        ("--burst", args.burst),
        ("--steps", args.steps),
    ] {
        if v == Some(0) {
            return Err(format!("{flag} must be at least 1"));
        }
    }
    if args.seeds == Some(0) {
        return Err("--seeds must be at least 1".to_owned());
    }
    if args.recover && args.journal.is_none() {
        return Err("--recover needs --journal FILE to recover from".to_owned());
    }
    if args.bench && args.journal.is_some() && args.addr.is_some() {
        return Err(
            "bench-service --journal only applies to the in-process server; \
             an external server (--addr) owns its own journal"
                .to_owned(),
        );
    }
    if let Some(gate) = args.gate_speedup {
        if !gate.is_finite() || gate <= 0.0 {
            return Err("--gate-speedup must be a positive number".to_owned());
        }
    }
    if let Some(addr) = &args.addr {
        // Resolve now so `serve --addr garbage` is a usage error, not a
        // bind failure after the registry has been built.
        use std::net::ToSocketAddrs;
        addr.to_socket_addrs()
            .map_err(|e| format!("bad --addr `{addr}`: {e}"))?
            .next()
            .ok_or_else(|| format!("bad --addr `{addr}`: resolves to no address"))?;
    }
    Ok(())
}

const HELP: &str = r#"mcexp — the DATE 2017 UDP partitioning experiment driver
usage: mcexp <subcommand> [options]

subcommands:
  sweep --fig 3|4|5|6a|6b   acceptance-ratio sweeps (figures of §IV)
  headline                  the paper's headline improvement numbers
  ablation                  strategy/AMC ablations + admission profile
  isolation                 mode-switch isolation simulation
  all                       every figure, headline, ablation, isolation
  perf [--json FILE]        partition-throughput artifact (BENCH_partition.json)
  analysis [--json FILE] [--gate TEST:MIN ...]
                            per-test throughput artifact (BENCH_analysis.json);
                            each --gate fails the run (exit 1) if TEST's
                            speedup over the reference pass drops below MIN
                            at any measured m (e.g. --gate AMC-rtb:1.5)
  eval [--input F] [--output F]   one-shot JSONL verdicts (stdin/stdout)
  serve [--addr H:P] [--workers N] [--queue N] [--idle-secs S]
        [--max-requests N] [--allow-shutdown] [--journal FILE] [--recover]
                            persistent admission-control server (JSONL/TCP);
                            --journal makes named sessions durable,
                            --recover replays the journal on startup
  bench-service [--addr H:P] [--algorithm NAME] [--m M] [--sets N] [--seed S]
                [--pipeline K] [--burst N] [--out FILE] [--shutdown]
                [--retries N] [--backoff-ms MS] [--journal FILE]
                [--gate-speedup X]
                            cold vs warm service benchmark (BENCH_service.json);
                            --retries bounds connect/shed retry-with-backoff,
                            --gate-speedup fails the run (exit 1) if the
                            warm/cold speedup drops below X
  chaos [--seeds N] [--steps N] [--out FILE]
                            deterministic fault-injection soak: N seeded
                            schedules driven through the full protocol state
                            machine behind a faulty transport; exit 1 on any
                            panic or divergence from the replay/oracle state
                            (CHAOS.json)
  lint [--json | --fixable] [--baseline FILE] [--root DIR]
                            project-native static analysis (mclint); exit 0
                            clean, 1 findings, 2 usage error

shared options: --m 2,4,8  --sets N  --seed S  --threads T  --out DIR

Old flag spellings (--fig/--headline/--ablation/--isolation/--all/
--perf-json/--analysis-json) still work and print a deprecation note.

eval mode: read JSONL schedulability requests (one JSON object per line,
from --input or stdin) and stream one JSON verdict per line (to --output
or stdout). A request names any registered algorithm ("<strategy>-<test>",
e.g. CU-UDP-EDF-VD, CA-UDP-AMC, ECA-Wu-F-EY); unknown names are answered
with an error listing every registered name. Example request line:

  {"algorithm":"CU-UDP-EDF-VD","m":2,"tasks":[{"id":0,"period":10,"criticality":"HI","wcet_lo":2,"wcet_hi":4},{"id":1,"period":20,"wcet_lo":6}]}

The verdict carries the partition witness (task ids per processor):

  {"type":"eval","v":1,"algorithm":"CU-UDP-EDF-VD","m":2,"schedulable":true,"partition":[[0],[1]],"rejected_task":null,"detail":null}

serve mode speaks protocol v1: the same eval lines plus session verbs
(open_session, admit, remove, query, close) with per-connection state;
see README.md § Service."#;

fn run_panel_figure(
    fig: &str,
    args: &Args,
    panel: fn(usize, usize, u64, usize) -> mcsched_exp::SweepResult,
) {
    for &m in &args.m_values {
        eprintln!("[mcexp] {fig} m={m} sets/bucket={} ...", args.sets);
        let result = panel(m, args.sets, args.seed, args.threads);
        println!("\n## {fig} (m = {m})\n");
        println!("{}", render_table(&result));
        if let Some(dir) = &args.out {
            let path = dir.join(format!("{}_m{}.csv", fig.to_lowercase(), m));
            if let Err(e) = write_csv(&result, &path) {
                eprintln!("[mcexp] failed to write {}: {e}", path.display());
            } else {
                eprintln!("[mcexp] wrote {}", path.display());
            }
        }
    }
}

/// Runs `mcexp eval`: JSONL requests in, JSON verdicts out.
fn run_eval_mode(args: &Args) -> std::io::Result<()> {
    let registry = AlgorithmRegistry::standard();
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let input: Box<dyn std::io::BufRead> = match &args.input {
        Some(path) => Box::new(BufReader::new(std::fs::File::open(path)?)),
        None => Box::new(stdin.lock()),
    };
    let output: Box<dyn Write> = match &args.output {
        Some(path) => Box::new(BufWriter::new(std::fs::File::create(path)?)),
        None => Box::new(stdout.lock()),
    };
    let summary = run_eval(&registry, input, output)?;
    eprintln!(
        "[mcexp] eval: {} request(s), {} error verdict(s)",
        summary.requests, summary.errors
    );
    Ok(())
}

/// Runs `mcexp serve`: the persistent admission-control server. Blocks
/// until shutdown (in-band when `--allow-shutdown`, else SIGKILL).
fn run_serve_mode(args: &Args) -> std::io::Result<()> {
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        addr: args.addr.clone().unwrap_or(defaults.addr),
        workers: args.workers.unwrap_or(defaults.workers),
        queue_depth: args.queue.unwrap_or(defaults.queue_depth),
        max_requests: args.max_requests.unwrap_or(defaults.max_requests),
        idle_timeout: match args.idle_secs {
            Some(0) => None,
            Some(secs) => Some(Duration::from_secs(secs)),
            None => defaults.idle_timeout,
        },
        allow_shutdown: args.allow_shutdown,
        journal: args.journal.clone(),
        recover: args.recover,
        ..defaults
    };
    let server = Server::bind(AlgorithmRegistry::standard(), config.clone())?;
    if let Some(journal) = server.journal() {
        let stats = journal.stats();
        eprintln!(
            "[mcexp] journal: {} ({} session op(s) recovered, {} torn record(s) skipped)",
            config
                .journal
                .as_deref()
                .unwrap_or_else(|| std::path::Path::new("?"))
                .display(),
            stats.recovered,
            stats.skipped
        );
    }
    eprintln!(
        "[mcexp] serving protocol v1 on {} ({} worker(s), queue {}, shutdown {})",
        server.local_addr(),
        config.workers,
        config.queue_depth,
        if config.allow_shutdown {
            "in-band"
        } else {
            "signal-only"
        }
    );
    let stats = server.run()?;
    eprintln!(
        "[mcexp] server stopped: {} connection(s), {} request(s), {} error(s), {} shed",
        stats.connections, stats.requests, stats.errors, stats.overloads
    );
    Ok(())
}

/// Runs `mcexp bench-service`: cold vs warm throughput/latency.
fn run_bench_service_mode(args: &Args) -> std::io::Result<()> {
    let defaults = ServiceBenchConfig::default();
    let config = ServiceBenchConfig {
        addr: args.addr.clone(),
        algorithm: args.algorithm.clone().unwrap_or(defaults.algorithm),
        m: if args.m_explicit {
            args.m_values.first().copied().unwrap_or(defaults.m)
        } else {
            defaults.m
        },
        sets: if args.sets_explicit {
            args.sets
        } else {
            defaults.sets
        },
        seed: args.seed,
        pipeline: args.pipeline.unwrap_or(defaults.pipeline),
        burst: args.burst.unwrap_or(defaults.burst),
        shutdown_after: args.shutdown,
        retries: args.retries.unwrap_or(defaults.retries),
        backoff_ms: args.backoff_ms.unwrap_or(defaults.backoff_ms),
        journal: args.journal.clone(),
    };
    eprintln!(
        "[mcexp] service bench: {} m={} sets={} pipeline={} burst={} ({})",
        config.algorithm,
        config.m,
        config.sets,
        config.pipeline,
        config.burst,
        match &config.addr {
            Some(addr) => format!("against {addr}"),
            None => "in-process server".to_owned(),
        }
    );
    let report = run_service_bench(&config)?;
    println!("{}", render_service_bench(&report));
    if let Some(path) = &args.out {
        write_service_json(&report, path)?;
        eprintln!("[mcexp] wrote {}", path.display());
    }
    // Gate after the artifact is written, so a failing run still ships
    // the report that explains it.
    if let Some(gate) = args.gate_speedup {
        if report.speedup < gate {
            eprintln!(
                "[mcexp] GATE FAILED: warm/cold speedup {:.2}x < {gate}x",
                report.speedup
            );
            std::process::exit(1);
        }
        eprintln!(
            "[mcexp] speedup gate passed: {:.2}x >= {gate}x",
            report.speedup
        );
    }
    Ok(())
}

/// Runs `mcexp chaos`: the deterministic fault-injection soak. Returns
/// the process exit code (0 every seed consistent, 1 divergence).
fn run_chaos_mode(args: &Args) -> i32 {
    let defaults = ChaosConfig::default();
    let config = ChaosConfig {
        seeds: args.seeds.unwrap_or(defaults.seeds),
        steps: args.steps.unwrap_or(defaults.steps),
        ..defaults
    };
    eprintln!(
        "[mcexp] chaos soak: {} seed(s), {} step(s) each",
        config.seeds, config.steps
    );
    let report = run_chaos(&config);
    println!("{}", render_chaos(&report));
    if let Some(path) = &args.out {
        match write_chaos_json(&report, path) {
            Ok(()) => eprintln!("[mcexp] wrote {}", path.display()),
            Err(e) => {
                eprintln!("[mcexp] failed to write {}: {e}", path.display());
                return 1;
            }
        }
    }
    i32::from(!report.passed())
}

/// Runs `mcexp lint`: the project-native static analysis. Returns the
/// process exit code (0 clean, 1 findings, 2 engine error).
fn run_lint_mode(args: &Args) -> i32 {
    let opts = mcsched_lint::Options {
        root: args.lint_root.clone(),
        baseline: args.lint_baseline.clone(),
    };
    match mcsched_lint::run(&opts) {
        Ok(report) => {
            if args.lint_json {
                print!("{}", mcsched_lint::render_json(&report));
            } else if args.lint_fixable {
                print!("{}", mcsched_lint::render_fixable(&report));
            } else {
                print!("{}", mcsched_lint::render_human(&report));
            }
            i32::from(!report.is_clean())
        }
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{HELP}");
            std::process::exit(2);
        }
    };

    if args.help {
        println!("{HELP}");
        return;
    }

    if args.lint {
        std::process::exit(run_lint_mode(&args));
    }

    if args.eval {
        if let Err(e) = run_eval_mode(&args) {
            eprintln!("[mcexp] eval failed: {e}");
            std::process::exit(1);
        }
        return;
    }

    if args.serve {
        if let Err(e) = run_serve_mode(&args) {
            eprintln!("[mcexp] serve failed: {e}");
            std::process::exit(1);
        }
        return;
    }

    if args.bench {
        if let Err(e) = run_bench_service_mode(&args) {
            eprintln!("[mcexp] bench-service failed: {e}");
            std::process::exit(1);
        }
        return;
    }

    if args.chaos {
        std::process::exit(run_chaos_mode(&args));
    }

    // Create the CSV output directory once up front so per-figure writes
    // cannot fail one by one later.
    if let Some(dir) = &args.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create --out {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    let mut did_something = false;
    let figs: Vec<String> = if args.all {
        vec!["3", "4", "5", "6a", "6b"]
            .into_iter()
            .map(String::from)
            .collect()
    } else {
        args.fig.clone().into_iter().collect()
    };

    for fig in &figs {
        did_something = true;
        match fig.as_str() {
            "3" => run_panel_figure("Fig3", &args, fig3_panel),
            "4" => run_panel_figure("Fig4", &args, fig4_panel),
            "5" => run_panel_figure("Fig5", &args, fig5_panel),
            "6a" => {
                eprintln!("[mcexp] Fig6a sets/bucket={} ...", args.sets);
                let points = fig6a(args.sets, args.seed, args.threads);
                println!("\n## Fig6a (WAR vs P_H, implicit, EDF-VD)\n");
                println!("{}", render_war_table(&points));
            }
            "6b" => {
                eprintln!("[mcexp] Fig6b sets/bucket={} ...", args.sets);
                let points = fig6b(args.sets, args.seed, args.threads);
                println!("\n## Fig6b (WAR vs P_H, constrained, AMC/ECDF)\n");
                println!("{}", render_war_table(&points));
            }
            other => {
                eprintln!("error: unknown figure {other}\n{HELP}");
                std::process::exit(2);
            }
        }
    }

    if args.headline || args.all {
        did_something = true;
        eprintln!("[mcexp] headline numbers (sets/bucket={}) ...", args.sets);
        let hs = headlines(args.sets, args.seed, args.threads);
        println!("\n## Headline improvements (paper §IV)\n");
        println!("{}", render_headlines(&hs));
    }

    if args.ablation || args.all {
        did_something = true;
        for &m in &args.m_values {
            eprintln!("[mcexp] strategy ablation m={m} ...");
            let rows = strategy_ablation(m, args.sets, args.seed, args.threads);
            println!("\n## Strategy ablation (m = {m}, implicit, EDF-VD)\n");
            println!("{}", render_ablation("strategy", rows));
        }
        let m = args.m_values.first().copied().unwrap_or(2);
        eprintln!("[mcexp] AMC ablation m={m} ...");
        let rows = amc_ablation(m, args.sets, args.seed, args.threads);
        println!("\n## AMC variant ablation (m = {m}, constrained)\n");
        println!("{}", render_ablation("AMC variant", rows));

        eprintln!(
            "[mcexp] admission-layer profile m={m} sets={} ...",
            args.sets
        );
        let rows = admission_profile(m, args.sets, args.seed, &perf_lineup());
        println!("\n## Admission-layer profile (m = {m}, seeded corpus)\n");
        println!("{}", render_admission(&rows));
    }

    if args.isolation || args.all {
        did_something = true;
        let sets = args.sets.min(MAX_ISOLATION_SETS);
        if sets < args.sets {
            eprintln!(
                "[mcexp] isolation: clamping --sets {} to {MAX_ISOLATION_SETS} \
                 (simulation cost; see MAX_ISOLATION_SETS)",
                args.sets
            );
        }
        for &m in &args.m_values {
            eprintln!("[mcexp] isolation experiment m={m} sets={sets} ...");
            let r = isolation_experiment(m, sets, args.seed, 0.25, 20_000, args.threads);
            println!("\n## Mode-switch isolation (m = {m}, 25% overruns)\n");
            println!("{}", render_isolation(&r));
        }
    }

    if args.perf || args.perf_json.is_some() {
        did_something = true;
        let m = args.m_values.first().copied().unwrap_or(2);
        eprintln!("[mcexp] partition throughput m={m} sets={} ...", args.sets);
        let report = partition_throughput(m, args.sets, args.seed, &perf_lineup());
        println!("\n## Partition throughput (m = {m})\n");
        println!("{}", render_perf(&report));
        if let Some(path) = args.json.as_ref().or(args.perf_json.as_ref()) {
            match write_perf_json(&report, path) {
                Ok(()) => eprintln!("[mcexp] wrote {}", path.display()),
                Err(e) => {
                    eprintln!("[mcexp] failed to write {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
    }

    if args.analysis || args.analysis_json.is_some() {
        did_something = true;
        eprintln!(
            "[mcexp] analysis throughput m={:?} sets={} ...",
            args.m_values, args.sets
        );
        let report = analysis_throughput(&args.m_values, args.sets, args.seed);
        println!("\n## Analysis throughput (reference vs workspace)\n");
        println!("{}", render_analysis_perf(&report));
        if let Some(path) = args.json.as_ref().or(args.analysis_json.as_ref()) {
            match write_analysis_json(&report, path) {
                Ok(()) => eprintln!("[mcexp] wrote {}", path.display()),
                Err(e) => {
                    eprintln!("[mcexp] failed to write {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        // Gates are checked after the artifact is written, so a failing
        // run still uploads the report that explains the failure.
        if !args.gates.is_empty() {
            let failures = check_gates(&report, &args.gates);
            for f in &failures {
                eprintln!("[mcexp] GATE FAILED: {f}");
            }
            if !failures.is_empty() {
                std::process::exit(1);
            }
            eprintln!("[mcexp] all {} speedup gate(s) passed", args.gates.len());
        }
    }

    if !did_something {
        println!("{HELP}");
    }
}

#[cfg(test)]
mod tests {
    use super::parse_args;

    fn argv(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn subcommands_parse() {
        assert!(parse_args(&argv(&["sweep", "--fig", "3"]))
            .unwrap()
            .fig
            .is_some());
        assert!(parse_args(&argv(&["serve"])).unwrap().serve);
        assert!(parse_args(&argv(&["eval"])).unwrap().eval);
        assert!(parse_args(&argv(&["help"])).unwrap().help);
        assert!(parse_args(&argv(&["analysis", "--help"])).unwrap().help);
    }

    #[test]
    fn unknown_subcommand_and_flag_are_usage_errors() {
        assert!(parse_args(&argv(&["frobnicate"])).is_err());
        assert!(parse_args(&argv(&["sweep", "--frob"])).is_err());
        assert!(parse_args(&argv(&["--sets"])).is_err(), "missing value");
        assert!(
            parse_args(&argv(&["--sets", "abc"])).is_err(),
            "non-numeric"
        );
    }

    #[test]
    fn nonsense_values_are_rejected_at_parse_time() {
        assert!(parse_args(&argv(&["sweep", "--fig", "3", "--threads", "0"])).is_err());
        assert!(parse_args(&argv(&["sweep", "--fig", "3", "--sets", "0"])).is_err());
        assert!(parse_args(&argv(&["sweep", "--fig", "3", "--m", "2,0"])).is_err());
        assert!(parse_args(&argv(&["serve", "--workers", "0"])).is_err());
        assert!(parse_args(&argv(&["serve", "--queue", "0"])).is_err());
        assert!(parse_args(&argv(&["bench-service", "--pipeline", "0"])).is_err());
        assert!(parse_args(&argv(&["bench-service", "--burst", "0"])).is_err());
    }

    #[test]
    fn chaos_and_durability_flags_parse() {
        let a = parse_args(&argv(&[
            "chaos", "--seeds", "8", "--steps", "40", "--out", "c.json",
        ]))
        .unwrap();
        assert!(a.chaos);
        assert_eq!(a.seeds, Some(8));
        assert_eq!(a.steps, Some(40));
        assert!(a.out.is_some());
        assert!(parse_args(&argv(&["chaos", "--seeds", "0"])).is_err());
        assert!(parse_args(&argv(&["chaos", "--steps", "0"])).is_err());

        let a = parse_args(&argv(&["serve", "--journal", "j.jsonl", "--recover"])).unwrap();
        assert_eq!(a.journal.as_deref(), Some(std::path::Path::new("j.jsonl")));
        assert!(a.recover);
        assert!(
            parse_args(&argv(&["serve", "--recover"])).is_err(),
            "--recover without --journal is a usage error"
        );

        let a = parse_args(&argv(&[
            "bench-service",
            "--retries",
            "3",
            "--backoff-ms",
            "10",
            "--gate-speedup",
            "2.0",
        ]))
        .unwrap();
        assert_eq!(a.retries, Some(3));
        assert_eq!(a.backoff_ms, Some(10));
        assert_eq!(a.gate_speedup, Some(2.0));
        assert!(parse_args(&argv(&["bench-service", "--gate-speedup", "0"])).is_err());
        assert!(
            parse_args(&argv(&[
                "bench-service",
                "--addr",
                "127.0.0.1:7070",
                "--journal",
                "j.jsonl"
            ]))
            .is_err(),
            "an external server owns its own journal"
        );
    }

    #[test]
    fn serve_addr_is_validated_at_parse_time() {
        assert!(parse_args(&argv(&["serve", "--addr", "garbage"])).is_err());
        assert!(parse_args(&argv(&["serve", "--addr", "127.0.0.1"])).is_err());
        let ok = parse_args(&argv(&["serve", "--addr", "127.0.0.1:0"])).unwrap();
        assert_eq!(ok.addr.as_deref(), Some("127.0.0.1:0"));
    }

    #[test]
    fn lint_has_its_own_flag_set() {
        let a = parse_args(&argv(&["lint"])).unwrap();
        assert!(a.lint && !a.lint_json && !a.lint_fixable);
        let a = parse_args(&argv(&[
            "lint",
            "--json",
            "--baseline",
            "b",
            "--root",
            "/x",
        ]))
        .unwrap();
        assert!(a.lint_json);
        assert_eq!(a.lint_baseline.as_deref(), Some(std::path::Path::new("b")));
        assert_eq!(a.lint_root, std::path::PathBuf::from("/x"));
        assert!(parse_args(&argv(&["lint", "--json", "--fixable"])).is_err());
        assert!(
            parse_args(&argv(&["lint", "--sets", "3"])).is_err(),
            "sweep flags do not leak in"
        );
    }
}
